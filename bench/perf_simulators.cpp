// Library performance: the extension simulators (scale-out phase-level,
// dispatch policies, trace replay) and the M/G/1 analytics.
#include <benchmark/benchmark.h>

#include "hcep/cluster/dispatch.hpp"
#include "hcep/cluster/scaleout_sim.hpp"
#include "hcep/cluster/trace.hpp"
#include "hcep/queueing/mg1.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::literals;

const workload::Workload& ep() {
  static const workload::Workload kEp = workload::make_workload("EP");
  return kEp;
}

void BM_ScaleoutSim(benchmark::State& state) {
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), ep());
  for (auto _ : state) {
    cluster::ScaleoutOptions opts;
    opts.utilization = 0.6;
    opts.min_jobs = static_cast<std::uint64_t>(state.range(0));
    const auto r = cluster::simulate_scaleout(m, opts);
    benchmark::DoNotOptimize(r.jobs_completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ScaleoutSim)->Arg(500)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_DispatchPolicies(benchmark::State& state) {
  const auto cluster_spec = model::make_a9_k10_cluster(8, 2);
  const auto policy = static_cast<cluster::DispatchPolicy>(state.range(0));
  for (auto _ : state) {
    cluster::DispatchOptions opts;
    opts.policy = policy;
    opts.utilization = 0.6;
    opts.jobs = 2000;
    const auto r = cluster::simulate_dispatch(cluster_spec, ep(), opts);
    benchmark::DoNotOptimize(r.jobs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2000);
}
BENCHMARK(BM_DispatchPolicies)
    ->Arg(static_cast<int>(cluster::DispatchPolicy::kRoundRobin))
    ->Arg(static_cast<int>(cluster::DispatchPolicy::kFastestFirst))
    ->Unit(benchmark::kMillisecond);

void BM_TraceReplay(benchmark::State& state) {
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), ep());
  const auto day = cluster::LoadTrace::diurnal(Seconds{120.0}, 0.2, 0.8);
  for (auto _ : state) {
    const auto r = cluster::replay_trace(m, day);
    benchmark::DoNotOptimize(r.jobs_completed);
  }
}
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMillisecond);

void BM_Mg1Percentile(benchmark::State& state) {
  const queueing::MG1 q =
      queueing::MG1::from_utilization(10_ms, 0.8, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.response_percentile(95.0));
  }
}
BENCHMARK(BM_Mg1Percentile);

}  // namespace

BENCHMARK_MAIN();
