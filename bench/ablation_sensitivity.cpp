// Ablation — seed-sensitivity of the paper's conclusions.
//
// The reproduction is calibrated against the paper's published PPR/IPR
// values. How much measurement error in those seeds would it take to
// change the conclusions? 200 perturbed calibrations per program.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/sensitivity.hpp"

int main() {
  using namespace hcep;
  bench::banner("Ablation: calibration-seed sensitivity (10% PPR / 5% IPR "
                "noise, 200 trials)",
                "DESIGN.md §1 calibration discussion");

  TextTable table({"Program", "Table6 winner flips", "Table8 DPR(64:8)",
                   "Fig9 (25,7) crossover", "sub@50% rate"});
  for (const auto& program : workload::program_names()) {
    const auto r = analysis::run_sensitivity_study(program);
    table.add_row(
        {program,
         std::to_string(r.winner_flips) + "/" + std::to_string(r.trials),
         fmt(r.dpr_mixed.mean(), 2) + " +/- " + fmt(r.dpr_mixed.stddev(), 2),
         fmt(r.crossover_25_7.mean(), 3) + " +/- " +
             fmt(r.crossover_25_7.stddev(), 3),
         fmt(100.0 * r.sublinear_at_half_25_7 / r.trials, 0) + "%"});
  }
  std::cout << table
            << "reading: the qualitative story (who wins PPR, roughly where\n"
               "sub-linearity begins) is robust for the wide-margin programs;\n"
               "RSA-2048's Table 6 winner is within measurement noise, and\n"
               "(25,7)'s 50%-boundary is a knife-edge example by design\n";
  return 0;
}
