// Ablation — power-profile family (DESIGN.md §5.2).
//
// The paper's utilization model yields power linear in U, under which
// EPM = LDR(paper) = 1 - IPR and the literal LDR degenerates to 0.
// Hsu & Poole (ICPP'13) observe real servers trend quadratic. This bench
// re-runs the Table 7 metric computation under linear and quadratic
// profiles (several curvatures) to show which conclusions survive:
// rankings (K10 more proportional than A9) do, metric *identities* do not.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/single_node.hpp"
#include "hcep/hw/catalog.hpp"

int main() {
  using namespace hcep;
  bench::banner("Ablation: linear vs quadratic power-vs-utilization profile",
                "DESIGN.md ablation 2 (Hsu-Poole, related work)");

  struct Family {
    const char* name;
    model::CurveFamily family;
    double curvature;
  };
  const Family families[] = {
      {"linear (paper)", model::CurveFamily::kLinear, 0.0},
      {"quadratic a=0.3", model::CurveFamily::kQuadratic, 0.3},
      {"quadratic a=0.6", model::CurveFamily::kQuadratic, 0.6},
      {"quadratic a=-0.3", model::CurveFamily::kQuadratic, -0.3},
  };

  for (const auto& f : families) {
    TextTable table({"Program", "Node", "IPR", "EPM", "LDR(lit)",
                     "EPM==1-IPR?"});
    for (const auto* program : {"EP", "x264"}) {
      const auto& w = bench::study().workload(program);
      for (const auto& node : {hw::cortex_a9(), hw::opteron_k10()}) {
        const auto a =
            analysis::analyze_single_node(w, node, f.family, f.curvature);
        const bool identity =
            std::abs(a.report.epm - (1.0 - a.report.ipr)) < 1e-6;
        table.add_row({program, node.name, fmt(a.report.ipr, 3),
                       fmt(a.report.epm, 3), fmt(a.report.ldr_literal, 3),
                       identity ? "yes" : "no"});
      }
    }
    std::cout << "\n[" << f.name << "]\n" << table;
  }
  std::cout << "\ntakeaway: under quadratic profiles the paper's identity\n"
               "EPM = 1-IPR breaks and the literal LDR becomes informative,\n"
               "but the brawny-vs-wimpy proportionality ranking is stable\n";
  return 0;
}
