// Figure 7 — Cluster-wide energy proportionality of EP across the 1 kW
// budget mixes: % of peak power vs % utilization (log-scale x in the
// paper).
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/cluster_study.hpp"
#include "hcep/config/budget.hpp"

int main() {
  using namespace hcep;
  bench::banner("Figure 7: Cluster-wide energy proportionality of EP",
                "Figure 7, Section III-C");

  const auto mixes = analysis::analyze_mixes(config::paper_budget_mixes(),
                                             bench::study().workload("EP"));

  std::vector<std::string> header{"util[%]", "Ideal"};
  for (const auto& m : mixes) header.push_back(m.label);
  TextTable table(header);
  for (double up : bench::fig7_grid()) {
    std::vector<std::string> row{fmt(up, 0), fmt(up, 1)};
    for (const auto& m : mixes)
      row.push_back(fmt(metrics::percent_of_peak(m.curve, up), 1));
    table.add_row(std::move(row));
  }
  std::cout << table
            << "expected: every mix sits above the ideal line; the all-K10\n"
               "mix has the smallest proportionality gap, the all-A9 the "
               "largest\n";
  return 0;
}
