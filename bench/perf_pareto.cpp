// Library performance: configuration-space evaluation and Pareto-frontier
// extraction — memoized fast path vs the naive per-config model path,
// serial vs thread pool.
#include <benchmark/benchmark.h>

#include "hcep/config/pareto.hpp"
#include "hcep/config/space.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;

const workload::Workload& ep() {
  static const workload::Workload kEp = workload::make_workload("EP");
  return kEp;
}

void BM_EvaluateSpace(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const config::ConfigSpace space = config::make_a9_k10_space(n, n);
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    auto evals = config::evaluate_space(space, ep(), &pool);
    benchmark::DoNotOptimize(evals.times().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(space.size()));
}
BENCHMARK(BM_EvaluateSpace)
    ->Args({6, 1})
    ->Args({6, 2})
    ->Args({10, 1})
    ->Args({10, 4})
    ->Unit(benchmark::kMillisecond);

void BM_EvaluateSpaceNaive(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const config::ConfigSpace space = config::make_a9_k10_space(n, n);
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    auto evals = config::evaluate_space_naive(space, ep(), &pool);
    benchmark::DoNotOptimize(evals.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(space.size()));
}
BENCHMARK(BM_EvaluateSpaceNaive)
    ->Args({6, 1})
    ->Args({10, 1})
    ->Unit(benchmark::kMillisecond);

void BM_OperatingPointTableBuild(benchmark::State& state) {
  const config::ConfigSpace space = config::make_a9_k10_space(10, 10);
  for (auto _ : state) {
    config::OperatingPointTable table(space, ep());
    benchmark::DoNotOptimize(table.num_types());
  }
}
BENCHMARK(BM_OperatingPointTableBuild);

void BM_ParetoFront(benchmark::State& state) {
  const config::ConfigSpace space = config::make_a9_k10_space(8, 8);
  const auto evals = config::evaluate_space(space, ep());
  for (auto _ : state) {
    auto front = config::pareto_front(evals);
    benchmark::DoNotOptimize(front.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(evals.size()));
}
BENCHMARK(BM_ParetoFront)->Unit(benchmark::kMillisecond);

void BM_ParetoFrontMaterialized(benchmark::State& state) {
  const config::ConfigSpace space = config::make_a9_k10_space(8, 8);
  const auto evals = config::evaluate_space_naive(space, ep());
  for (auto _ : state) {
    auto copy = evals;
    auto front = config::pareto_front(std::move(copy));
    benchmark::DoNotOptimize(front.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(evals.size()));
}
BENCHMARK(BM_ParetoFrontMaterialized)->Unit(benchmark::kMillisecond);

void BM_DeadlineSelection(benchmark::State& state) {
  const config::ConfigSpace space = config::make_a9_k10_space(8, 8);
  const auto evals = config::evaluate_space(space, ep());
  const auto fastest_eval = config::fastest(evals);
  const Seconds deadline = fastest_eval->time * 1.5;
  for (auto _ : state) {
    auto pick = config::min_energy_within_deadline(evals, deadline);
    benchmark::DoNotOptimize(pick.has_value());
  }
}
BENCHMARK(BM_DeadlineSelection);

}  // namespace

BENCHMARK_MAIN();
