// Library performance: discrete-event kernel throughput and the cluster
// simulator's jobs-per-second rate.
#include <benchmark/benchmark.h>

#include "hcep/cluster/simulator.hpp"
#include "hcep/des/simulator.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::literals;

void BM_EventQueueChurn(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    des::Simulator sim;
    std::uint64_t fired = 0;
    // Self-rescheduling chain exercises push/pop under a hot queue.
    std::function<void()> tick = [&] {
      if (++fired < events) sim.schedule_in(1_us, tick);
    };
    sim.schedule_at(Seconds{0.0}, tick);
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(100000);

void BM_FanOutEvents(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    des::Simulator sim;
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < events; ++i) {
      sim.schedule_at(Seconds{static_cast<double>((i * 7919) % events)},
                      [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_FanOutEvents)->Arg(100000);

void BM_ClusterSimulation(benchmark::State& state) {
  static const workload::Workload ep = workload::make_workload("EP");
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), ep);
  for (auto _ : state) {
    cluster::SimOptions opts;
    opts.utilization = 0.6;
    opts.min_jobs = static_cast<std::uint64_t>(state.range(0));
    const auto r = cluster::simulate(m, opts);
    benchmark::DoNotOptimize(r.jobs_completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ClusterSimulation)->Arg(200)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
