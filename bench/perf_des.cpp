// Library performance: discrete-event kernel throughput.
//
// The interesting numbers are the twins:
//
//   BM_ChurnCalendar vs BM_ChurnLegacy    the full kernel rewrite vs a
//                                         faithful replica of the seed
//                                         kernel (std::priority_queue +
//                                         std::function + top() copy) —
//                                         the within-run ratio the
//                                         BENCH_des.json gate enforces
//   BM_ChurnCalendar vs BM_ChurnHeap      calendar queue vs binary heap,
//                                         both on des::Callback
//   BM_ChurnBimodal{Calendar,Legacy}      the traffic simulator's delay
//                                         mix (service completions +
//                                         retry timers) — guards the
//                                         cursor-bucket heap drain
//   BM_CallbackInline vs BM_CallbackHeapSpill
//                                         SBO hit vs heap spill on the
//                                         callback type alone
//   BM_ShardedTraffic/1..8                end-to-end scaling of the
//                                         sharded traffic simulator
//
// Every loop folds event times into a checksum that feeds
// benchmark::DoNotOptimize, so the compiler cannot dead-code the
// callbacks away and "fast" cannot mean "didn't run". Measured ratios
// and the analysis of where they come from live in docs/PERF.md.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "hcep/cluster/simulator.hpp"
#include "hcep/des/simulator.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::literals;

// ---------------------------------------------------------------------------
// A faithful replica of the seed DES kernel (pre-rewrite): binary heap via
// std::priority_queue, std::function callbacks, the `Event ev =
// queue_.top()` copy forced by top()'s const& (copying the std::function —
// an extra allocation per pop on top of the one per push), the same
// precondition checks, and noinline methods to match the seed's
// out-of-line definitions in simulator.cpp (no cross-TU inlining).
class LegacySim {
 public:
  [[nodiscard]] Seconds now() const { return now_; }

#if defined(__GNUC__) || defined(__clang__)
#define HCEP_BENCH_NOINLINE __attribute__((noinline))
#else
#define HCEP_BENCH_NOINLINE
#endif

  HCEP_BENCH_NOINLINE void schedule_at(Seconds t, std::function<void()> cb) {
    require(t >= now_, "LegacySim::schedule_at: time lies in the past");
    require(static_cast<bool>(cb), "LegacySim::schedule_at: empty callback");
    queue_.push(Event{t, next_seq_++, std::move(cb)});
  }
  HCEP_BENCH_NOINLINE void schedule_in(Seconds delay, std::function<void()> cb) {
    require(delay.value() >= 0.0, "LegacySim::schedule_in: negative delay");
    schedule_at(now_ + delay, std::move(cb));
  }
  HCEP_BENCH_NOINLINE bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();  // const&: copy, then pop
    queue_.pop();
    now_ = ev.time;
    ev.callback();
    return true;
  }
#undef HCEP_BENCH_NOINLINE

  void run() {
    while (step()) {
    }
  }

 private:
  struct Event {
    Seconds time{};
    std::uint64_t seq = 0;
    std::function<void()> callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Seconds now_{0.0};
  std::uint64_t next_seq_ = 0;
};

// ---------------------------------------------------------------------------
// Steady-state churn: `pending` self-rescheduling events keep the queue at
// a constant depth while `budget` total events execute — the regime where
// scheduler complexity dominates (heap: O(log n) per op at n = pending;
// calendar: O(1) amortized). Each event carries a realistic hot-path
// capture — a context pointer, a 24-byte request record and a Seconds, 40
// bytes total, the shape traffic::simulate_traffic schedules — which fits
// des::Callback's 48-byte inline budget but spills std::function's
// 16-byte SBO, exactly as the real kernels did before and after the
// rewrite. Delays are continuous uniform in [1us, ~1ms] (no lattice —
// quantized timestamps would gift the calendar artificial bucket
// locality); the bimodal variant mixes 95% short service delays with 5%
// ~1s retry timers, the traffic simulator's distribution.
struct Req {
  std::size_t cls;
  double first_arrival;
  std::uint32_t attempt;
};

template <class Sim, bool Bimodal>
struct ChurnState {
  Sim* sim;
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t budget = 0;
  std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
  double checksum = 0.0;

  Seconds next_delay() {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = static_cast<double>(lcg >> 11) * 0x1.0p-53;
    if constexpr (Bimodal) {
      if (u < 0.95) return Seconds{1e-6 * (1.0 + 997.0 * (u / 0.95))};
      return Seconds{0.5 + (u - 0.95) / 0.05};
    } else {
      return Seconds{1e-6 * (1.0 + 997.0 * u)};
    }
  }
};

template <class Sim, bool B>
void churn_tick(ChurnState<Sim, B>* st, const Req& r, Seconds w) {
  ++st->fired;
  st->checksum += st->sim->now().value() + w.value() + static_cast<double>(r.cls);
  if (st->scheduled < st->budget) {
    ++st->scheduled;
    const Req nr{st->scheduled, st->sim->now().value(), 1};
    const Seconds delay = st->next_delay();
    st->sim->schedule_in(delay, [st, nr, delay] { churn_tick(st, nr, delay); });
  }
}

template <class Sim, bool B>
double run_churn(std::uint64_t pending, std::uint64_t budget) {
  Sim sim;
  ChurnState<Sim, B> st;
  st.sim = &sim;
  st.budget = budget;
  for (std::uint64_t i = 0; i < pending && st.scheduled < budget; ++i) {
    ++st.scheduled;
    const Req r{i, 0.0, 1};
    const Seconds d = st.next_delay();
    auto cb = [stp = &st, r, d] { churn_tick(stp, r, d); };
    if constexpr (std::is_same_v<Sim, des::Simulator> ||
                  std::is_same_v<Sim, des::HeapSimulator>) {
      static_assert(des::Callback::stores_inline<decltype(cb)>);
    }
    sim.schedule_at(d, std::move(cb));
  }
  sim.run();
  if (st.fired != budget) throw std::logic_error("churn under-ran");
  return st.checksum;
}

template <class Sim, bool Bimodal = false>
void churn_bench(benchmark::State& state) {
  const auto pending = static_cast<std::uint64_t>(state.range(0));
  // At least 2M events per iteration regardless of depth: the gate is
  // specified at 1M+ executed events, and a constant budget makes the
  // per-event times comparable across depths.
  const std::uint64_t budget =
      std::max<std::uint64_t>(2 * pending, std::uint64_t{1} << 21);
  for (auto _ : state) {
    double checksum = run_churn<Sim, Bimodal>(pending, budget);
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(budget));
}

void BM_ChurnCalendar(benchmark::State& state) {
  churn_bench<des::Simulator>(state);
}
void BM_ChurnHeap(benchmark::State& state) {
  churn_bench<des::HeapSimulator>(state);
}
void BM_ChurnLegacy(benchmark::State& state) { churn_bench<LegacySim>(state); }
// 65536 pending is cache-resident churn (scheduler instruction cost);
// 1<<20 pending is DRAM-bound churn (a ~56MB event arena — memory-system
// cost). Both execute 2M+ events per iteration.
BENCHMARK(BM_ChurnCalendar)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_ChurnHeap)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_ChurnLegacy)->Arg(65536)->Arg(1 << 20);

void BM_ChurnBimodalCalendar(benchmark::State& state) {
  churn_bench<des::Simulator, true>(state);
}
void BM_ChurnBimodalLegacy(benchmark::State& state) {
  churn_bench<LegacySim, true>(state);
}
BENCHMARK(BM_ChurnBimodalCalendar)->Arg(65536);
BENCHMARK(BM_ChurnBimodalLegacy)->Arg(65536);

// ---------------------------------------------------------------------------
// The seed kernel's churn shape, kept under its original name so numbers
// stay comparable across releases (now runs on the calendar kernel).
void BM_EventQueueChurn(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    des::Simulator sim;
    ChurnState<des::Simulator, false> st;
    st.sim = &sim;
    st.budget = events;
    ++st.scheduled;
    sim.schedule_at(Seconds{0.0},
                    [stp = &st] { churn_tick(stp, Req{0, 0.0, 1}, Seconds{}); });
    sim.run();
    benchmark::DoNotOptimize(st.checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(100000);

// ---------------------------------------------------------------------------
// One-shot fan-out: schedule everything, then drain. Stresses bulk insert
// (and the calendar's rebuild heuristics) rather than steady-state churn.
template <class Sim>
void fanout_bench(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < events; ++i) {
      sim.schedule_at(Seconds{static_cast<double>((i * 7919) % events)},
                      [&fired] { ++fired; });
    }
    sim.run();
    if (fired != events) throw std::logic_error("fan-out under-ran");
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}

void BM_FanOutEvents(benchmark::State& state) {
  fanout_bench<des::Simulator>(state);
}
void BM_FanOutLegacy(benchmark::State& state) { fanout_bench<LegacySim>(state); }
BENCHMARK(BM_FanOutEvents)->Arg(100000);
BENCHMARK(BM_FanOutLegacy)->Arg(100000);

// ---------------------------------------------------------------------------
// The callback type alone: construct + invoke + destroy, inline (40-byte
// capture, SBO hit) vs heap spill (72-byte capture).
void BM_CallbackInline(benchmark::State& state) {
  std::uint64_t sink = 0;
  std::array<std::uint64_t, 4> payload{1, 2, 3, 4};
  for (auto _ : state) {
    auto fn = [&sink, payload] { sink += payload[0] + payload[3]; };
    static_assert(des::Callback::stores_inline<decltype(fn)>);
    des::Callback cb(fn);
    cb();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CallbackInline);

void BM_CallbackHeapSpill(benchmark::State& state) {
  std::uint64_t sink = 0;
  std::array<std::uint64_t, 8> payload{1, 2, 3, 4, 5, 6, 7, 8};
  for (auto _ : state) {
    auto fn = [&sink, payload] { sink += payload[0] + payload[7]; };
    static_assert(!des::Callback::stores_inline<decltype(fn)>);
    des::Callback cb(fn);
    cb();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CallbackHeapSpill);

// ---------------------------------------------------------------------------
// End-to-end: the cluster simulator (unchanged shape, new kernel under it).
void BM_ClusterSimulation(benchmark::State& state) {
  static const workload::Workload ep = workload::make_workload("EP");
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), ep);
  for (auto _ : state) {
    cluster::SimOptions opts;
    opts.utilization = 0.6;
    opts.min_jobs = static_cast<std::uint64_t>(state.range(0));
    const auto r = cluster::simulate(m, opts);
    benchmark::DoNotOptimize(r.jobs_completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ClusterSimulation)->Arg(200)->Arg(2000)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Sharded traffic scaling: the same 200k-request run on 1/2/4/8 event-loop
// shards (wall-clock, hence UseRealTime — the shards run on the pool).
void BM_ShardedTraffic(benchmark::State& state) {
  static const auto kCatalog = workload::paper_workloads();
  const workload::Workload* ep = nullptr;
  for (const auto& w : kCatalog)
    if (w.name == "EP") ep = &w;
  const auto cluster_spec = model::make_a9_k10_cluster(8, 4);
  const auto arrivals = traffic::make_poisson(2000.0);
  for (auto _ : state) {
    traffic::TrafficOptions o;
    o.requests = 200000;
    o.seed = 42;
    o.shards = static_cast<std::size_t>(state.range(0));
    const auto r = traffic::simulate_traffic(
        cluster_spec, {traffic::TrafficClass{*ep, 1.0, {}}}, *arrivals, o);
    if (r.completed != o.requests) throw std::logic_error("traffic under-ran");
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          200000);
}
BENCHMARK(BM_ShardedTraffic)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
