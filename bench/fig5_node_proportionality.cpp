// Figure 5 (a,b,c) — Single-node energy proportionality curves for EP,
// x264 and blackscholes: % of peak power vs % utilization for the ideal
// line, the K10 and the A9.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/single_node.hpp"
#include "hcep/hw/catalog.hpp"

int main() {
  using namespace hcep;
  bench::banner("Figure 5: Energy proportionality of brawny and wimpy nodes",
                "Figures 5a-5c, Section III-B");

  for (const auto* program : {"EP", "x264", "blackscholes"}) {
    const auto& w = bench::study().workload(program);
    const auto a9 = analysis::analyze_single_node(w, hw::cortex_a9());
    const auto k10 = analysis::analyze_single_node(w, hw::opteron_k10());

    std::cout << "\n[" << program << "]  (ideal / K10 / A9, % of peak power)\n";
    TextTable table({"util[%]", "Ideal", "K10", "A9"});
    for (double up : bench::fig5_grid()) {
      table.add_row({fmt(up, 0), fmt(up, 1),
                     fmt(metrics::percent_of_peak(k10.curve, up), 1),
                     fmt(metrics::percent_of_peak(a9.curve, up), 1)});
    }
    std::cout << table;
  }
  std::cout << "\nexpected shape: both nodes sit above the ideal line; the\n"
               "K10 curve lies below the A9 curve (K10 more proportional)\n";
  return 0;
}
