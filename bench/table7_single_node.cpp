// Table 7 — Single-node energy proportionality: DPR, IPR, EPM, LDR per
// (program, node type). The LDR column prints the paper's convention
// (== EPM for its linear model profiles); the literal Table 3 LDR is
// shown in the last column for reference (identically 0 here).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace hcep;
  bench::banner("Table 7: Single-node energy proportionality",
                "Table 7, Section III-B");

  TextTable table({"Program", "Node", "DPR", "IPR", "EPM", "LDR(paper)",
                   "LDR(literal)"});
  for (const auto& a : bench::study().single_node_analyses()) {
    table.add_row({a.program, a.node, fmt(a.report.dpr, 2),
                   fmt(a.report.ipr, 2), fmt(a.report.epm, 2),
                   fmt(a.report.ldr_paper, 2), fmt(a.report.ldr_literal, 3)});
  }
  std::cout << table
            << "paper identities: DPR = (1-IPR)*100, EPM = LDR = 1-IPR\n"
            << "absolute idle power: A9 ~1.8 W vs K10 ~45 W (>= 25x)\n";
  return 0;
}
