// Figure 9 — Energy proportionality of Pareto-optimal configurations for
// EP (max 32 A9 + 12 K10): % of the REFERENCE (32A9:12K10) peak power vs
// % utilization. Mixes whose curve dips below the ideal line are the
// sub-linear configurations that scale the proportionality wall.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/pareto_study.hpp"

int main() {
  using namespace hcep;
  bench::banner(
      "Figure 9: Energy proportionality of Pareto-optimal configs (EP)",
      "Figure 9, Section III-D");

  const auto result = bench::study().pareto_study("EP");
  std::cout << "reference peak (32A9:12K10 busy power): "
            << fmt(result.reference_peak.value(), 1) << " W\n"
            << "energy-deadline Pareto frontier size over the full "
            << "<=32 A9 x <=12 K10 space: " << result.frontier.size()
            << " configurations\n\n";

  std::vector<std::string> header{"util[%]", "Ideal"};
  for (const auto& m : result.mixes) header.push_back(m.mix.label());
  TextTable table(header);
  for (double up : {20.0, 25.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0,
                    100.0}) {
    std::vector<std::string> row{fmt(up, 0), fmt(up, 1)};
    for (const auto& m : result.mixes) {
      row.push_back(
          fmt(metrics::percent_of_peak(m.curve, up, result.reference_peak),
              1));
    }
    table.add_row(std::move(row));
  }
  std::cout << table << "\nsub-linearity crossover utilization per mix:\n";

  TextTable crossings({"mix", "becomes sub-linear at u", "sub-linear @50%?",
                       "best T_P [ms]", "job energy [J]"});
  for (const auto& m : result.mixes) {
    crossings.add_row(
        {m.mix.label(),
         m.crossover_utilization > 1.0
             ? std::string("never")
             : fmt(m.crossover_utilization * 100.0, 0) + "%",
         m.sublinear_at_half ? "yes" : "no",
         fmt(m.best_job_time.value() * 1e3, 2),
         fmt(m.best_job_energy.value(), 2)});
  }
  std::cout << crossings
            << "paper: (25,8) is above the ideal at 50% utilization while\n"
               "(25,7) is below it; fewer K10 nodes -> earlier crossover\n";
  return 0;
}
