// Zero-overhead guard for hcep::units.
//
// Quantity<Dim, Ratio> promises to lower to the exact same machine code
// as a raw double: same size, same FP operations, nothing hidden. These
// benchmarks run each hot-path shape twice — once on raw doubles, once on
// the typed API — over identical buffers. The paired entries should
// report indistinguishable times; tools/bench_regress.py treats a typed
// entry running materially slower than its raw twin as a regression the
// same way it treats an absolute slowdown.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "hcep/power/meter.hpp"
#include "hcep/util/units.hpp"

namespace {

using namespace hcep;
using namespace hcep::literals;

constexpr std::size_t kN = 4096;

std::vector<double> make_levels() {
  std::vector<double> v(kN);
  for (std::size_t i = 0; i < kN; ++i)
    v[i] = 5.0 + static_cast<double>(i % 97) * 0.73;
  return v;
}

std::vector<double> make_durations() {
  std::vector<double> v(kN);
  for (std::size_t i = 0; i < kN; ++i)
    v[i] = 0.001 * static_cast<double>(1 + (i % 13));
  return v;
}

// --- energy integration: sum(P_i * dt_i) --------------------------------

void BM_IntegrateRawDouble(benchmark::State& state) {
  const auto p = make_levels();
  const auto dt = make_durations();
  for (auto _ : state) {
    double e = 0.0;
    for (std::size_t i = 0; i < kN; ++i) e += p[i] * dt[i];
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_IntegrateRawDouble);

void BM_IntegrateTyped(benchmark::State& state) {
  const auto p = make_levels();
  const auto dt = make_durations();
  for (auto _ : state) {
    Joules e{};
    for (std::size_t i = 0; i < kN; ++i)
      e += Watts{p[i]} * Seconds{dt[i]};
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_IntegrateTyped);

// --- frequency scaling: t = cycles / f, e = p * t -----------------------

void BM_DvfsSweepRawDouble(benchmark::State& state) {
  const auto cyc = make_levels();
  for (auto _ : state) {
    double total = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
      const double t = cyc[i] * 1e9 / 1.4e9;
      total += (45.0 + 0.02 * cyc[i]) * t;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_DvfsSweepRawDouble);

void BM_DvfsSweepTyped(benchmark::State& state) {
  const auto cyc = make_levels();
  const Hertz f{1.4e9};
  for (auto _ : state) {
    Joules total{};
    for (std::size_t i = 0; i < kN; ++i) {
      const Seconds t = Cycles{cyc[i] * 1e9} / f;
      total += Watts{45.0 + 0.02 * cyc[i]} * t;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_DvfsSweepTyped);

// --- trace re-integration through the typed PowerTrace API --------------

void BM_TraceEnergyTyped(benchmark::State& state) {
  power::PowerTrace trace;
  double t = 0.0;
  for (std::size_t i = 0; i < 512; ++i) {
    trace.step(Seconds{t}, Watts{5.0 + static_cast<double>(i % 29)});
    t += 0.01;
  }
  const Seconds horizon{t + 1.0};
  for (auto _ : state) benchmark::DoNotOptimize(trace.energy(horizon));
}
BENCHMARK(BM_TraceEnergyTyped);

}  // namespace

BENCHMARK_MAIN();
