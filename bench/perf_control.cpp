// Library performance: the closed-loop control plane.
//
// Quantifies the overhead the control machinery adds to the request hot
// path. The headline pair: BM_OpenLoopTraffic vs BM_FrozenControlTraffic
// push the same request stream through simulate_traffic with no
// controller and with the frozen (no-op) controller ticking at a
// realistic cadence — the difference is pure tick overhead (window
// accounting, status materialization, controller dispatch), which
// tools/bench_regress.py --suite control gates at <= 5% for the 1M-
// request configuration (max_ratio 1.05 in BENCH_control.json's suite).
// Actuating controllers (power gate, DVFS) are recorded for reference
// but not ratio-gated: their actuations change the simulated workload
// itself, so their "overhead" is not comparable.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "hcep/control/controller.hpp"
#include "hcep/control/controllers.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::traffic;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

std::vector<TrafficClass> one_class() {
  return {TrafficClass{wl("EP"), 1.0, SloTarget{}}};
}

/// Shared scenario: 4 A9 + 2 K10 at 70% utilization, identical to the
/// BM_SimulateTraffic scenario in perf_traffic.cpp so numbers compare.
TrafficOptions scenario_options(std::uint64_t requests, double rate,
                                std::shared_ptr<const control::Controller>
                                    controller) {
  TrafficOptions options;
  options.requests = requests;
  if (controller != nullptr) {
    options.control.controller = std::move(controller);
    // ~1 tick per 50 requests: 20k+ ticks over the 1M-request run, a
    // deliberately aggressive cadence so the gate bounds the worst case.
    options.control.period = Seconds{50.0 / rate};
  }
  return options;
}

void run_traffic(benchmark::State& state,
                 std::shared_ptr<const control::Controller> controller) {
  const auto cluster = model::make_a9_k10_cluster(4, 2);
  const auto classes = one_class();
  const double rate = 0.7 * cluster_capacity_per_s(cluster, classes);
  const auto arrivals = make_poisson(rate);
  const TrafficOptions options = scenario_options(
      static_cast<std::uint64_t>(state.range(0)), rate,
      std::move(controller));
  for (auto _ : state) {
    const TrafficResult r =
        simulate_traffic(cluster, classes, *arrivals, options);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

/// Baseline: the open-loop path, no control machinery installed.
void BM_OpenLoopTraffic(benchmark::State& state) {
  run_traffic(state, nullptr);
}
BENCHMARK(BM_OpenLoopTraffic)->Arg(1 << 17)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

/// Tick overhead in isolation: the frozen controller observes every tick
/// and actuates nothing, so the request stream is byte-identical to the
/// open loop (the tests/test_control.cpp oracle) and the throughput
/// difference is exactly the control plane's cost.
void BM_FrozenControlTraffic(benchmark::State& state) {
  run_traffic(state, control::make_frozen());
}
BENCHMARK(BM_FrozenControlTraffic)->Arg(1 << 17)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

/// Reference: a live power-gating run (actuations change the workload,
/// so this is recorded, never ratio-gated against the open loop).
void BM_PowerGateTraffic(benchmark::State& state) {
  run_traffic(state, control::make_power_gate());
}
BENCHMARK(BM_PowerGateTraffic)->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);

/// Reference: a live DVFS-governed run.
void BM_DvfsControlTraffic(benchmark::State& state) {
  run_traffic(state, control::make_dvfs_governor());
}
BENCHMARK(BM_DvfsControlTraffic)->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);

// --- Controller tick microbenchmark --------------------------------------

/// Fixed-table actuator: answers the planning queries in O(1) and counts
/// refused/accepted commands, isolating the controller's own decision
/// cost from the simulation around it.
class TableActuator final : public control::Actuator {
 public:
  bool sleep_node(std::size_t) override { return true; }
  bool wake_node(std::size_t) override { return true; }
  bool set_operating_point(std::size_t, std::uint32_t) override {
    return true;
  }
  [[nodiscard]] std::size_t num_points(std::uint32_t) const override {
    return 10;
  }
  [[nodiscard]] Watts busy_power(std::size_t node,
                                 std::uint32_t point) const override {
    return Watts{5.0 + static_cast<double>(node % 3) +
                 0.5 * static_cast<double>(point)};
  }
  [[nodiscard]] Seconds mean_service(std::size_t node,
                                     std::uint32_t point) const override {
    return Seconds{0.2 / (1.0 + static_cast<double>(node % 3)) /
                   (1.0 + static_cast<double>(point))};
  }
  [[nodiscard]] double service_rate(std::size_t node,
                                    std::uint32_t point) const override {
    return 1.0 / mean_service(node, point).value();
  }
};

/// Cost of one PowerGateController decision over an n-node fleet: the
/// efficiency ranking plus the keep/park/wake sweep.
void BM_PowerGateTick(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<control::NodeStatus> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].type = static_cast<std::uint32_t>(i % 3);
    nodes[i].queued = i % 5;
    nodes[i].utilization = 0.1 * static_cast<double>(i % 10);
    nodes[i].idle_power = Watts{5.0};
    nodes[i].sleep_power = Watts{0.5};
  }
  control::TickContext ctx;
  ctx.now = Seconds{100.0};
  ctx.period = Seconds{5.0};
  ctx.window_arrivals_per_s = 40.0;
  ctx.nodes = nodes.data();
  ctx.num_nodes = nodes.size();
  TableActuator actuator;
  const auto controller = control::make_power_gate();
  // One pristine clone per iteration batch would allocate; tick the same
  // instance — the controller is a pure function of (ctx, state).
  const auto instance = controller->clone();
  for (auto _ : state) {
    instance->tick(ctx, actuator);
    benchmark::DoNotOptimize(actuator);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PowerGateTick)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
