// Figure 12 — 95th-percentile response time of the sub-linear mixes for
// x264 (seconds axis): the K10-poor mixes cannot meet the deadline and
// degrade by seconds.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/response_study.hpp"

int main() {
  using namespace hcep;
  bench::banner("Figure 12: 95th-percentile response time, x264",
                "Figure 12, Section III-E");

  const auto result = bench::study().response_study("x264");
  std::cout << "deadline: " << fmt(result.deadline.value(), 2) << " s\n\n";

  TextTable config({"mix", "meets deadline", "service [s]",
                    "degradation [s]"});
  for (const auto& m : result.mixes) {
    const double degradation =
        std::max(0.0, m.service_time.value() - result.deadline.value());
    config.add_row({m.mix.label(), m.meets_deadline ? "yes" : "NO",
                    fmt(m.service_time.value(), 3), fmt(degradation, 3)});
  }
  std::cout << config << "\np95 response [s] vs utilization:\n";

  std::vector<std::string> header{"util[%]"};
  for (const auto& m : result.mixes) header.push_back(m.mix.label());
  TextTable table(header);
  const std::size_t points = result.mixes.front().points.size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row{
        fmt(result.mixes.front().points[i].utilization_percent, 0)};
    for (const auto& m : result.mixes)
      row.push_back(fmt(m.points[i].p95_analytic.value(), 2));
    table.add_row(std::move(row));
  }
  std::cout << table
            << "paper: sub-linear x264 mixes degrade response time to the\n"
               "order of seconds (brawny PPR > wimpy PPR for x264)\n";
  return 0;
}
