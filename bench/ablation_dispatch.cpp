// Ablation — dispatch policy on a heterogeneous floor.
//
// The paper defers dynamic workload adaptation to complementary work;
// here five dispatcher policies route atomic jobs over the individual
// nodes of an 8 A9 + 2 K10 cluster, quantifying the latency/energy spread
// that heterogeneity-aware dispatch buys.
#include <iostream>

#include <vector>

#include "bench_common.hpp"
#include "hcep/cluster/dispatch.hpp"

int main() {
  using namespace hcep;
  bench::banner("Ablation: dispatch policies on 8 A9 + 2 K10",
                "Section I's 'dynamic adaptation' complement");

  const auto cluster = model::make_a9_k10_cluster(8, 2);
  for (const auto* program : {"EP", "x264"}) {
    const auto& w = bench::study().workload(program);
    for (double u : {0.5, 0.8}) {
      std::cout << "\n[" << program << " @ " << fmt(u * 100, 0)
                << "% utilization]\n";
      TextTable table({"policy", "p95 [ms]", "mean [ms]", "J/job",
                       "A9 jobs", "K10 jobs"});
      for (const auto policy : cluster::all_dispatch_policies()) {
        cluster::DispatchOptions opts;
        opts.policy = policy;
        opts.utilization = u;
        opts.jobs = 3000;
        const auto r = cluster::simulate_dispatch(cluster, w, opts);
        std::uint64_t a9_jobs = 0, k10_jobs = 0;
        for (const auto& n : r.nodes) {
          if (n.node_name == "A9") a9_jobs = n.jobs_served;
          if (n.node_name == "K10") k10_jobs = n.jobs_served;
        }
        table.add_row({cluster::to_string(policy),
                       fmt(r.p95_response.value() * 1e3, 1),
                       fmt(r.mean_response.value() * 1e3, 1),
                       fmt(r.energy_per_job.value(), 2), std::to_string(a9_jobs),
                       std::to_string(k10_jobs)});
      }
      std::cout << table;
    }
  }
  // Mixed stream: a 3:1 EP / x264 diet, where per-job node choice must
  // account for the job's program, not just the node.
  std::cout << "\n[mixed stream: 75% EP + 25% x264 @ 60% utilization]\n";
  {
    std::vector<cluster::MixedStream> streams{
        {bench::study().workload("EP"), 3.0},
        {bench::study().workload("x264"), 1.0}};
    TextTable table({"policy", "overall p95 [s]", "EP p95 [s]",
                     "x264 p95 [s]", "J/job"});
    for (const auto policy : cluster::all_dispatch_policies()) {
      cluster::DispatchOptions opts;
      opts.policy = policy;
      opts.utilization = 0.6;
      opts.jobs = 4000;
      const auto r = cluster::simulate_mixed_dispatch(cluster, streams, opts);
      table.add_row({cluster::to_string(policy),
                     fmt(r.overall.p95_response.value(), 3),
                     fmt(r.per_program[0].p95_response.value(), 3),
                     fmt(r.per_program[1].p95_response.value(), 3),
                     fmt(r.overall.energy_per_job.value(), 2)});
    }
    std::cout << table;
  }

  std::cout << "\nreading: heterogeneity-blind policies (round-robin,\n"
               "random) pay heavily on x264 where node speeds differ ~37x;\n"
               "completion-aware dispatch recovers most of it — also under\n"
               "a mixed diet, where the x264 minority dominates blind tails\n";
  return 0;
}
