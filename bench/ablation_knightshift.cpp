// Ablation — server-level vs inter-node heterogeneity.
//
// The paper's Related Work contrasts its inter-node mixes with KnightShift
// [43][44], which pairs a wimpy knight with each brawny primary. With both
// modeled in the same framework we can put numbers on the comparison: the
// KnightShift composite crushes the idle floor (low IPR, near-ideal EPM)
// but its peak capacity is one brawny node; the inter-node mix keeps
// linear-profile proportionality but spends less energy per unit of work
// where the wimpy PPR wins.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/knightshift.hpp"
#include "hcep/analysis/single_node.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/model/time_energy.hpp"

int main() {
  using namespace hcep;
  bench::banner("Ablation: KnightShift composite vs inter-node mix",
                "Related Work Section IV-A, refs [43][44]");

  TextTable table({"Program", "system", "IPR", "EPM", "LDR(lit)",
                   "idle [W]", "peak [W]", "PPR@peak"});
  for (const auto& w : bench::study().workloads()) {
    const auto ks = analysis::analyze_knightshift(w);
    const auto k10 = analysis::analyze_single_node(w, hw::opteron_k10());

    // An iso-capacity inter-node alternative: 1 K10 + 1 A9 (the knight
    // repurposed as a peer worker instead of a shadow).
    model::TimeEnergyModel mix(model::make_a9_k10_cluster(1, 1), w);
    const auto mix_curve = mix.power_curve();
    const auto mix_report = metrics::analyze(mix_curve);

    const auto add = [&](const std::string& name, double iprv, double epmv,
                         double ldrv, double idle, double peak, double pprv) {
      table.add_row({w.name, name, fmt(iprv, 2), fmt(epmv, 2), fmt(ldrv, 3),
                     fmt(idle, 1), fmt(peak, 1),
                     pprv >= 100 ? fmt_grouped(pprv) : fmt(pprv, 2)});
    };
    add("bare K10", k10.report.ipr, k10.report.epm, k10.report.ldr_literal,
        k10.idle_power.value(), k10.peak_power.value(), k10.ppr_peak);
    add("KnightShift", ks.report.ipr, ks.report.epm, ks.report.ldr_literal,
        ks.curve.idle().value(), ks.curve.peak().value(),
        ks.peak_throughput / ks.curve.peak().value());
    add("1A9+1K10 mix", mix_report.ipr, mix_report.epm,
        mix_report.ldr_literal, mix.idle_power().value(),
        mix.busy_power().value(),
        metrics::ppr(mix_curve, mix.peak_throughput(), 1.0));
  }
  std::cout << table
            << "reading: KnightShift buys proportionality (IPR collapses\n"
               "below the threshold); the inter-node mix buys PPR where the\n"
               "wimpy node's PPR beats the brawny's — complementary levers\n";
  return 0;
}
