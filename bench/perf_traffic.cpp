// Library performance: the request-level traffic path.
//
// Quantifies (a) arrival-generator throughput (the open-loop pump must
// never be the bottleneck of a simulation), (b) the token-bucket
// admission primitive, and (c) end-to-end requests/second through the
// full simulate_traffic path — queueing, dispatch, SLO ledger and
// energy accounting — with and without admission control. The largest
// size pushes >1M requests through the admission/SLO path, the
// regression-gated configuration in BENCH_traffic.json.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "hcep/model/cluster_spec.hpp"
#include "hcep/traffic/admission.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::traffic;
using namespace hcep::literals;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

std::vector<TrafficClass> one_class() {
  return {TrafficClass{wl("EP"), 1.0, SloTarget{}}};
}

// --- Generators ----------------------------------------------------------

void BM_PoissonArrivals(benchmark::State& state) {
  const auto gen = make_poisson(100.0);
  Rng rng(1);
  Seconds now{0.0};
  for (auto _ : state) {
    now = gen->next(now, rng);
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PoissonArrivals);

void BM_BurstyArrivals(benchmark::State& state) {
  const auto gen = make_bursty(50.0, Seconds{2.0}, 300.0, Seconds{0.5});
  Rng rng(1);
  Seconds now{0.0};
  for (auto _ : state) {
    now = gen->next(now, rng);
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BurstyArrivals);

void BM_DiurnalArrivals(benchmark::State& state) {
  // Thinning draws several uniforms per accepted arrival; this bounds
  // the generator overhead of the time-varying profile.
  const auto gen = make_diurnal(100.0, 0.6, Seconds{60.0});
  Rng rng(1);
  Seconds now{0.0};
  for (auto _ : state) {
    now = gen->next(now, rng);
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DiurnalArrivals);

// --- Admission primitive -------------------------------------------------

void BM_TokenBucketAcquire(benchmark::State& state) {
  TokenBucket bucket(1e9, 64.0);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucket.try_acquire(Seconds{t}));
    t += 1e-9;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TokenBucketAcquire);

// --- End-to-end request path ---------------------------------------------

/// Open-loop requests through the plain path: dispatch + queue + SLO
/// ledger + energy, no admission control.
void BM_SimulateTraffic(benchmark::State& state) {
  const auto cluster = model::make_a9_k10_cluster(4, 2);
  const auto classes = one_class();
  const double rate = 0.7 * cluster_capacity_per_s(cluster, classes);
  const auto arrivals = make_poisson(rate);
  TrafficOptions options;
  options.requests = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const TrafficResult r =
        simulate_traffic(cluster, classes, *arrivals, options);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SimulateTraffic)->Arg(1 << 14)->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);

/// The gated configuration: >1M requests per iteration through the FULL
/// admission/SLO path — token bucket, queue-depth shedding, retries with
/// exponential backoff, per-class SLO ledger.
void BM_AdmissionSloPath(benchmark::State& state) {
  const auto cluster = model::make_a9_k10_cluster(4, 2);
  auto classes = one_class();
  const double capacity = cluster_capacity_per_s(cluster, classes);
  classes[0].slo = SloTarget{Seconds{20.0 / capacity}, 0.95};
  // Slightly overloaded so the bucket, the shedder and the retry loop
  // all stay hot instead of benchmarking an idle fast path.
  const auto arrivals = make_poisson(1.05 * capacity);
  TrafficOptions options;
  options.requests = static_cast<std::uint64_t>(state.range(0));
  options.admission.bucket_rate_per_s = 0.95 * capacity;
  options.admission.bucket_burst = 64.0;
  options.admission.max_queue_depth = 128;
  options.retry.max_attempts = 3;
  options.retry.base_backoff = Seconds{2.0 / capacity};
  for (auto _ : state) {
    const TrafficResult r =
        simulate_traffic(cluster, classes, *arrivals, options);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AdmissionSloPath)->Arg(1 << 17)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
