// Ablation — analytic M/D/1 percentiles vs event-driven simulation
// (DESIGN.md §5.3): agreement across the utilization range validates both
// the Erlang-series CDF inversion and the simulator.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/queueing/md1.hpp"
#include "hcep/util/math.hpp"

int main() {
  using namespace hcep;
  using namespace hcep::literals;
  bench::banner("Ablation: M/D/1 analytic percentiles vs simulation",
                "DESIGN.md ablation 3 (queueing cross-validation)");

  const Seconds service = 12.0_ms;
  TextTable table({"rho", "mean wait ana [ms]", "mean wait sim [ms]",
                   "p95 resp ana [ms]", "p95 resp sim [ms]", "p95 err[%]"});
  for (double rho : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const queueing::MD1 q = queueing::MD1::from_utilization(service, rho);
    const auto sim =
        queueing::simulate_md1(service, rho / service.value(), 150000, 3);
    const double ana95 = q.response_percentile(95.0).value();
    table.add_row({fmt(rho, 2), fmt(q.mean_wait().value() * 1e3, 3),
                   fmt(sim.mean_wait_s * 1e3, 3), fmt(ana95 * 1e3, 2),
                   fmt(sim.p95_response_s * 1e3, 2),
                   fmt(percent_error(ana95, sim.p95_response_s), 1)});
  }
  std::cout << table
            << "expected: percent error in the low single digits across the\n"
               "whole range (finite-sample noise only)\n";
  return 0;
}
