// Library performance: observability overhead.
//
// Quantifies (a) the raw cost of the metrics/tracer primitives, (b) the
// null-sink cost of an instrumentation site with no observer installed,
// and (c) the end-to-end cost an observer adds to the DES kernel and the
// cluster simulator (the numbers quoted in docs/OBSERVABILITY.md).
#include <benchmark/benchmark.h>

#include <functional>

#include "hcep/cluster/simulator.hpp"
#include "hcep/des/simulator.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/obs/metrics.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/obs/profile.hpp"
#include "hcep/obs/run_report.hpp"
#include "hcep/obs/trace.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::literals;

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry reg;
  const obs::MetricId id = reg.counter("c");
  for (auto _ : state) reg.add(id);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterAdd);

void BM_CounterAddContended(benchmark::State& state) {
  // Shards make "contention" a misnomer: every thread writes its own
  // cache line, so this should scale ~linearly.
  static obs::MetricsRegistry reg;
  const obs::MetricId id = reg.counter("c");
  for (auto _ : state) reg.add(id);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterAddContended)->Threads(1)->Threads(4)->Threads(8);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  const obs::MetricId id =
      reg.histogram("h", {1, 2, 4, 8, 16, 32, 64, 128});
  double v = 0.0;
  for (auto _ : state) {
    reg.observe(id, v);
    v = v < 200.0 ? v + 0.7 : 0.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramObserve);

void BM_TracerInstant(benchmark::State& state) {
  obs::EventTracer tracer(1u << 16);
  const obs::StringId cat = tracer.intern("bench");
  const obs::StringId name = tracer.intern("tick");
  double ts = 0.0;
  for (auto _ : state) tracer.instant(ts += 1.0, cat, name);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerInstant);

void BM_NullSinkSite(benchmark::State& state) {
  // The cost every instrumentation site pays with no observer installed:
  // resolve obs::current() and branch on nullptr.
  for (auto _ : state) {
    obs::Observer* o = obs::current();
    benchmark::DoNotOptimize(o);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NullSinkSite);

void des_churn(std::uint64_t events) {
  des::Simulator sim;
  std::uint64_t fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < events) sim.schedule_in(1_us, tick);
  };
  sim.schedule_at(Seconds{0.0}, tick);
  sim.run();
  benchmark::DoNotOptimize(fired);
}

void BM_DesChurnNullSink(benchmark::State& state) {
  for (auto _ : state) des_churn(100000);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_DesChurnNullSink)->Unit(benchmark::kMillisecond);

void BM_DesChurnObserved(benchmark::State& state) {
  obs::Observer o;
  obs::ScopedObserver scope(o);
  for (auto _ : state) des_churn(100000);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_DesChurnObserved)->Unit(benchmark::kMillisecond);

void BM_ClusterSimObserved(benchmark::State& state) {
  static const workload::Workload ep = workload::make_workload("EP");
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), ep);
  obs::Observer o;
  obs::ScopedObserver scope(o);
  for (auto _ : state) {
    o.tracer.clear();
    cluster::SimOptions opts;
    opts.utilization = 0.6;
    opts.min_jobs = static_cast<std::uint64_t>(state.range(0));
    const auto r = cluster::simulate(m, opts);
    benchmark::DoNotOptimize(r.jobs_completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ClusterSimObserved)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_ClusterSimNullSink(benchmark::State& state) {
  static const workload::Workload ep = workload::make_workload("EP");
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), ep);
  for (auto _ : state) {
    cluster::SimOptions opts;
    opts.utilization = 0.6;
    opts.min_jobs = static_cast<std::uint64_t>(state.range(0));
    const auto r = cluster::simulate(m, opts);
    benchmark::DoNotOptimize(r.jobs_completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ClusterSimNullSink)->Arg(2000)->Unit(benchmark::kMillisecond);

// Analysis-layer cost: profiling / rolling up a full 100k-event ring
// (the offline pass; docs/OBSERVABILITY.md quotes these numbers).
obs::Trace make_bench_trace(std::size_t spans) {
  obs::EventTracer tracer(2 * spans + spans / 10 + 16);
  const obs::StringId cat = tracer.intern("bench");
  const obs::StringId name = tracer.intern("job");
  const obs::StringId wait = tracer.intern("wait_s");
  const obs::StringId power = tracer.intern("cluster_W");
  double ts = 0.0;
  for (std::size_t i = 0; i < spans; ++i) {
    tracer.begin(ts, cat, name, wait, 0.01);
    if (i % 10 == 0)
      tracer.counter(ts, cat, power,
                     100.0 + static_cast<double>(i % 7) * 25.0);
    ts += 0.5;
    tracer.end(ts, cat, name);
    ts += 0.1;
  }
  return obs::Trace::from(tracer);
}

void BM_ProfileTrace100k(benchmark::State& state) {
  const obs::Trace trace = make_bench_trace(50000);  // ~105k events
  for (auto _ : state) {
    const obs::TraceProfile p = obs::profile_trace(trace);
    benchmark::DoNotOptimize(p.critical_path_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.events.size()));
}
BENCHMARK(BM_ProfileTrace100k)->Unit(benchmark::kMillisecond);

void BM_RollupCounter100k(benchmark::State& state) {
  const obs::Trace trace = make_bench_trace(50000);
  for (auto _ : state) {
    const obs::SeriesRollup r =
        obs::rollup_counter(trace, "cluster_W", 100.0);
    benchmark::DoNotOptimize(r.total_energy_j);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.events.size()));
}
BENCHMARK(BM_RollupCounter100k)->Unit(benchmark::kMillisecond);

void BM_RunReportJson100k(benchmark::State& state) {
  const obs::Trace trace = make_bench_trace(50000);
  for (auto _ : state) {
    const std::string json =
        obs::make_run_report(trace, "bench", 100.0).json();
    benchmark::DoNotOptimize(json.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.events.size()));
}
BENCHMARK(BM_RunReportJson100k)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
