// Ablation — phase overlap in the time model (DESIGN.md §5.1).
//
// Table 2 takes T_CPU = max(T_core, T_mem) and T = max(T_CPU, T_I/O),
// crediting out-of-order cores and DMA with full overlap. The ablation
// recomputes per-unit times with ADDITIVE phases (no overlap) and reports
// how much the predicted single-node throughput shifts per workload —
// large shifts mark workloads whose validation error is most sensitive to
// the overlap assumption.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/workload/node_ops.hpp"

int main() {
  using namespace hcep;
  bench::banner("Ablation: max-overlap vs additive phase composition",
                "DESIGN.md ablation 1 (Table 2 overlap assumption)");

  TextTable table({"Program", "Node", "thr overlap [u/s]",
                   "thr additive [u/s]", "overlap gain"});
  for (const auto& w : bench::study().workloads()) {
    for (const auto& node : {hw::cortex_a9(), hw::opteron_k10()}) {
      const auto& d = w.demand_for(node.name);
      const workload::UnitTime t =
          workload::unit_time(d, node, node.cores, node.dvfs.max());
      const double overlap = 1.0 / t.total.value();
      const double additive =
          1.0 / (t.core + t.mem + t.io).value();
      table.add_row({w.name, node.name, fmt_grouped(overlap),
                     fmt_grouped(additive), fmt(overlap / additive, 2) + "x"});
    }
  }
  std::cout << table
            << "reading: gains near 1x mean one phase dominates (overlap\n"
               "barely matters); larger gains mark balanced core/memory/I/O\n"
               "demand where the OoO-overlap assumption carries the model\n";
  return 0;
}
