// Library performance: instrumented workload kernels — how fast the
// characterization substrate itself runs.
#include <benchmark/benchmark.h>

#include "hcep/kernels/registry.hpp"

namespace {

using namespace hcep;

void run_kernel(benchmark::State& state, const char* program,
                std::uint64_t units) {
  auto kernel = kernels::make_kernel(program);
  for (auto _ : state) {
    Rng rng(42);
    auto result = kernel->run(units, rng);
    benchmark::DoNotOptimize(result.checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(units));
}

void BM_KernelEp(benchmark::State& state) { run_kernel(state, "EP", 100000); }
void BM_KernelMemcached(benchmark::State& state) {
  run_kernel(state, "memcached", 50000);
}
void BM_KernelX264(benchmark::State& state) { run_kernel(state, "x264", 2); }
void BM_KernelBlackscholes(benchmark::State& state) {
  run_kernel(state, "blackscholes", 20000);
}
void BM_KernelJulius(benchmark::State& state) {
  run_kernel(state, "Julius", 1000);
}
void BM_KernelRsa(benchmark::State& state) {
  run_kernel(state, "RSA-2048", 2);
}

BENCHMARK(BM_KernelEp)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelMemcached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelX264)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelBlackscholes)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelJulius)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelRsa)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
