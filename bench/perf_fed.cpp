// Library performance: the federation tier.
//
// Quantifies what the global-routing pipeline adds on top of a plain
// single-cluster traffic run. The headline pair: BM_OpenLoopTraffic vs
// BM_FedSingleSite push the same Poisson demand through the same
// cluster — directly via simulate_traffic, and through the full
// simulate_fleet pipeline (arrival generation, routing pre-pass,
// assigned-arrival replay, ledger merge) with one site, where every
// placement is trivially local. Both sides record the same obs
// telemetry (simulate_fleet always snapshots a per-site Observer, so
// the baseline installs one too); the difference is pure federation
// overhead, which tools/bench_regress.py --suite fed gates at <= 5%
// for the 1M-request configuration (max_ratio 1.05 in BENCH_fed.json's
// suite). The 3-site hybrid fleet and the bare router decision loop
// are recorded for reference, not ratio-gated: multi-site runs change
// the simulated work itself.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hcep/fed/curves.hpp"
#include "hcep/fed/fleet.hpp"
#include "hcep/fed/router.hpp"
#include "hcep/fed/site.hpp"
#include "hcep/hw/network.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::fed;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

std::vector<traffic::TrafficClass> one_class() {
  return {traffic::TrafficClass{wl("EP"), 1.0, traffic::SloTarget{}}};
}

/// Shared scenario: 4 A9 + 2 K10 at 70% utilization, identical to the
/// BM_OpenLoopTraffic scenario in perf_control.cpp so numbers compare.
struct SingleSite {
  model::ClusterSpec cluster = model::make_a9_k10_cluster(4, 2);
  std::vector<traffic::TrafficClass> classes = one_class();
  double rate = 0.7 * traffic::cluster_capacity_per_s(cluster, classes);
};

/// Baseline: the plain single-cluster open loop, no federation tier.
void BM_OpenLoopTraffic(benchmark::State& state) {
  const SingleSite s;
  const auto arrivals = traffic::make_poisson(s.rate);
  traffic::TrafficOptions options;
  options.requests = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
#if HCEP_OBS
    // Telemetry parity with simulate_fleet's per-site Observer.
    obs::Observer local;
    obs::ScopedObserver install(local);
#endif
    const traffic::TrafficResult r =
        traffic::simulate_traffic(s.cluster, s.classes, *arrivals, options);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_OpenLoopTraffic)->Arg(1 << 17)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

/// The same demand through the whole federation pipeline with a single
/// site: generation, routing (every placement local), assigned-arrival
/// replay, cost/ledger merge. Throughput delta vs BM_OpenLoopTraffic is
/// the federation tier's overhead.
void BM_FedSingleSite(benchmark::State& state) {
  const SingleSite s;
  std::vector<Site> sites(1);
  sites[0].name = "solo";
  sites[0].cluster = s.cluster;
  sites[0].arrivals = traffic::make_poisson(s.rate);
  sites[0].rack_budget = s.cluster.nameplate_power();
  sites[0].price = EnergyPriceCurve::flat(0.10);
  sites[0].carbon = CarbonCurve::flat(420.0);
  const hw::InterSiteNetwork network(1);
  FleetOptions options;
  options.requests_per_site = static_cast<std::uint64_t>(state.range(0));
  options.router.policy = RoutePolicy::kNearest;
  for (auto _ : state) {
    const FleetReport r =
        simulate_fleet(sites, network, s.classes, options);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FedSingleSite)->Arg(1 << 17)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

/// Reference: a 3-site diurnal fleet under the hybrid policy (the
/// keystone shape at bench scale). Work moves across sites, so this is
/// recorded, never ratio-gated against the single-site pipeline.
void BM_FedFleetHybrid(benchmark::State& state) {
  const std::vector<unsigned> k10 = {4, 2, 2};
  const char* names[] = {"alpha", "beta", "gamma"};
  const auto classes = one_class();
  double fleet_capacity = 0.0;
  for (const unsigned n : k10)
    fleet_capacity += traffic::cluster_capacity_per_s(
        model::make_a9_k10_cluster(0, n), classes);
  const double site_rate = 0.55 * fleet_capacity / 3.0;
  const auto requests =
      static_cast<std::uint64_t>(state.range(0)) / 3;
  const Seconds period{static_cast<double>(requests) / site_rate};
  std::vector<Site> sites;
  for (std::size_t s = 0; s < 3; ++s) {
    Site site;
    site.name = names[s];
    site.cluster = model::make_a9_k10_cluster(0, k10[s]);
    site.rack_budget = site.cluster.nameplate_power();
    const Seconds offset{period.value() * static_cast<double>(s) / 3.0};
    site.arrivals = traffic::make_diurnal(site_rate, 0.85, period, offset);
    site.price = make_diurnal_curve(
        0.10, 0.8, period, Seconds{offset.value() + 0.25 * period.value()},
        100 + s);
    site.carbon = CarbonCurve::flat(420.0);
    sites.push_back(std::move(site));
  }
  const auto network = hw::InterSiteNetwork::uniform(
      3, Seconds{0.01}, BytesPerSecond{0.0});
  FleetOptions options;
  options.requests_per_site = requests;
  options.shards = 3;
  for (auto _ : state) {
    const FleetReport r = simulate_fleet(sites, network, classes, options);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests) * 3);
}
BENCHMARK(BM_FedFleetHybrid)->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);

/// The bare routing decision, no simulation behind it: one hybrid
/// placement per iteration against 3 sites with live price curves and a
/// warm sliding load window.
void BM_RouterDecision(benchmark::State& state) {
  const auto classes = one_class();
  std::vector<Site> sites(3);
  for (std::size_t s = 0; s < 3; ++s) {
    sites[s].name = "site" + std::to_string(s);
    sites[s].cluster = model::make_a9_k10_cluster(0, 2);
    sites[s].arrivals = traffic::make_poisson(1.0);
    sites[s].price = make_diurnal_curve(0.10, 0.8, Seconds{86400.0},
                                        Seconds{14.0 * 3600.0}, 100 + s);
    sites[s].carbon = CarbonCurve::flat(420.0);
  }
  const auto network = hw::InterSiteNetwork::uniform(
      3, Seconds{0.01}, BytesPerSecond{0.0});
  GlobalRouter router(sites, network, classes, RouterOptions{});
  double t = 0.0;
  std::size_t origin = 0;
  for (auto _ : state) {
    const Assignment a =
        router.route(origin, 0, Seconds{t});
    benchmark::DoNotOptimize(a.target);
    t += 0.05;
    origin = (origin + 1) % 3;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RouterDecision);

}  // namespace

BENCHMARK_MAIN();
