// Table 8 — Cluster-wide energy proportionality for the 1 kW budget mixes
// (128A9:0K10 ... 0A9:16K10), all six programs.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace hcep;
  bench::banner("Table 8: Cluster-wide energy proportionality (1 kW budget)",
                "Table 8, Section III-C");

  for (const auto& program : workload::program_names()) {
    const auto mixes = bench::study().budget_mix_analyses(program);
    TextTable table({"Mix", "DPR", "IPR", "EPM", "LDR(paper)", "idle[W]",
                     "peak[W]", "nameplate[W]"});
    for (const auto& m : mixes) {
      table.add_row({m.label, fmt(m.report.dpr, 2), fmt(m.report.ipr, 2),
                     fmt(m.report.epm, 2), fmt(m.report.ldr_paper, 2),
                     fmt(m.idle_power.value(), 1),
                     fmt(m.peak_power.value(), 1),
                     fmt(m.nameplate.value(), 0)});
    }
    std::cout << "\n[" << program << "]\n" << table;
  }
  std::cout << "\npaper columns (DPR, 128A9 / 64A9:8K10 / 16K10): EP "
               "25.97/32.66/34.57; memcached 16.78/12.44/11.05;\n"
               "x264 35.54/37.73/38.41; blackscholes 32.11/36.10/37.30; "
               "Julius 30.48/36.39/38.09; RSA 35.62/39.92/41.19\n";
  return 0;
}
