// Library performance: proportionality metrics and M/D/1 analytics.
#include <benchmark/benchmark.h>

#include "hcep/metrics/proportionality.hpp"
#include "hcep/power/curve.hpp"
#include "hcep/queueing/md1.hpp"

namespace {

using namespace hcep;
using namespace hcep::literals;

void BM_AnalyzeLinearCurve(benchmark::State& state) {
  const auto curve = power::PowerCurve::linear(45_W, 69_W);
  for (auto _ : state) {
    auto r = metrics::analyze(curve);
    benchmark::DoNotOptimize(r.epm);
  }
}
BENCHMARK(BM_AnalyzeLinearCurve);

void BM_AnalyzeQuadraticCurve(benchmark::State& state) {
  const auto curve = power::PowerCurve::quadratic(45_W, 69_W, 0.4);
  for (auto _ : state) {
    auto r = metrics::analyze(curve);
    benchmark::DoNotOptimize(r.ldr_literal);
  }
}
BENCHMARK(BM_AnalyzeQuadraticCurve);

void BM_SublinearCrossover(benchmark::State& state) {
  const auto curve = power::PowerCurve::linear(100_W, 400_W);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::sublinear_crossover(curve, Watts{900.0}));
  }
}
BENCHMARK(BM_SublinearCrossover);

void BM_Md1WaitCdf(benchmark::State& state) {
  const queueing::MD1 q =
      queueing::MD1::from_utilization(10_ms, 0.01 * state.range(0));
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.wait_cdf(Seconds{t}));
    t += 0.0007;
    if (t > 0.2) t = 0.0;
  }
}
BENCHMARK(BM_Md1WaitCdf)->Arg(50)->Arg(90);

void BM_Md1Percentile(benchmark::State& state) {
  const queueing::MD1 q =
      queueing::MD1::from_utilization(10_ms, 0.01 * state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.response_percentile(95.0));
  }
}
BENCHMARK(BM_Md1Percentile)->Arg(50)->Arg(90)->Arg(97);

}  // namespace

BENCHMARK_MAIN();
