// Ablation — failure resilience of the 1 kW mixes.
//
// A wimpy-heavy cluster loses 1/128 of its capacity per failed node; the
// all-brawny cluster loses 1/16. At equal per-node reliability the mixes
// therefore degrade differently under failures — a heterogeneity effect
// the paper's always-healthy models cannot see.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/cluster/failures.hpp"
#include "hcep/config/budget.hpp"

int main() {
  using namespace hcep;
  using namespace hcep::literals;
  bench::banner("Ablation: node failures across the 1 kW mixes (EP)",
                "extension: failure granularity of wimpy vs brawny mixes");

  const auto& ep = bench::study().workload("EP");
  TextTable table({"mix", "nodes", "availability", "service inflation",
                   "p95 [ms]", "avg power [W]"});
  for (const auto& mix : config::paper_budget_mixes()) {
    const model::TimeEnergyModel m(mix, ep);
    cluster::FailureOptions opts;
    opts.utilization = 0.5;
    opts.min_jobs = 1500;
    opts.node_mtbf = 120.0_s;   // compressed timescale
    opts.repair_time = 20.0_s;
    const auto r = cluster::simulate_with_failures(m, opts);
    table.add_row({mix.label(), std::to_string(mix.total_nodes()),
                   fmt(r.availability * 100.0, 1) + "%",
                   fmt(r.service_inflation, 3) + "x",
                   fmt(r.p95_response.value() * 1e3, 1),
                   fmt(r.average_power.value(), 1)});
  }
  std::cout << table
            << "reading: per-node availability is identical by construction\n"
               "(MTBF/(MTBF+MTTR)), but the many-node wimpy mixes smooth\n"
               "capacity loss into small service inflation while the 16-node\n"
               "brawny cluster takes coarse 1/16-capacity hits — failure\n"
               "granularity is another axis where wimpy fleets help\n";
  return 0;
}
