// Shared helpers for the reproduction bench binaries.
#pragma once

#include <iostream>
#include <string>

#include "hcep/core/paper_study.hpp"
#include "hcep/util/table.hpp"

namespace hcep::bench {

/// One calibrated study shared across a binary's sections.
inline const core::PaperStudy& study() {
  static const core::PaperStudy kStudy;
  return kStudy;
}

inline void banner(const std::string& what, const std::string& paper_ref) {
  std::cout << "==========================================================\n"
            << what << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "==========================================================\n";
}

/// Figure sample grids used by the paper's plots.
inline std::vector<double> fig5_grid() {
  return {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

inline std::vector<double> fig7_grid() {
  // Figure 7 uses a log-scale 1..100 % axis.
  return {1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

}  // namespace hcep::bench
