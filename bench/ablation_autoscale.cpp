// Ablation — static mixes vs dynamic node autoscaling.
//
// The paper's sub-linear static configurations (Figure 9) trade time for
// energy but keep every node powered. The complementary "dynamic
// adaptation" the paper defers — parking whole nodes against a diurnal
// load — collapses the idle floor and pushes the effective power profile
// toward the ideal line no static mix can reach.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/cluster/autoscale.hpp"
#include "hcep/config/budget.hpp"

int main() {
  using namespace hcep;
  using namespace hcep::literals;
  bench::banner("Ablation: static 1 kW mixes vs autoscaling (EP, diurnal day)",
                "Section I's 'dynamic adaptation' complement; Figure 9");

  const auto& ep = bench::study().workload("EP");
  const auto day = cluster::LoadTrace::diurnal(600_s, 0.1, 0.8);

  TextTable table({"system", "energy/day [kJ]", "EPM", "idle floor [W]",
                   "worst p95 [ms]"});
  // Static mixes: replay the same trace with every node always on.
  for (const auto& mix : config::paper_budget_mixes()) {
    const model::TimeEnergyModel m(mix, ep);
    cluster::TraceReplayOptions opts;
    opts.bucket = 25_s;
    const auto r = cluster::replay_trace(m, day, opts);
    const auto report = metrics::analyze(m.power_curve());
    table.add_row({"static " + mix.label(),
                   fmt(r.total_energy.value() / 1e3, 1),
                   fmt(report.epm, 2), fmt(m.idle_power().value(), 1),
                   fmt(r.worst_p95.value() * 1e3, 1)});
  }
  // Autoscaled: the 32A9:12K10 fleet with node parking.
  {
    const model::TimeEnergyModel m(model::make_a9_k10_cluster(32, 12), ep);
    const auto r = cluster::autoscale_replay(m, day);
    table.add_row({"autoscaled 32A9:12K10",
                   fmt(r.total_energy.value() / 1e3, 1),
                   fmt(r.effective_report.epm, 2),
                   fmt(r.effective_curve.idle().value(), 1),
                   fmt(r.worst_p95.value() * 1e3, 1)});
  }
  std::cout << table
            << "reading: static mixes are pinned at EPM = 1 - IPR (the\n"
               "proportionality wall); parking nodes collapses the idle\n"
               "floor and lifts EPM toward 1 — dynamic adaptation, not mix\n"
               "choice, is what actually scales the wall. The latency cost\n"
               "is bounded by the controller's headroom.\n";
  return 0;
}
