// Figure 8 — Cluster-wide PPR of EP across the 1 kW budget mixes
// (10^6 ops/W axis in the paper).
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/cluster_study.hpp"
#include "hcep/config/budget.hpp"

int main() {
  using namespace hcep;
  bench::banner("Figure 8: Cluster-wide PPR of EP",
                "Figure 8, Section III-C");

  const auto mixes = analysis::analyze_mixes(config::paper_budget_mixes(),
                                             bench::study().workload("EP"));

  std::vector<std::string> header{"util[%]"};
  for (const auto& m : mixes) header.push_back(m.label);
  TextTable table(header);
  for (double up : bench::fig5_grid()) {
    std::vector<std::string> row{fmt(up, 0)};
    for (const auto& m : mixes) {
      const double ppr =
          metrics::ppr(m.curve, m.peak_throughput, up / 100.0);
      row.push_back(fmt(ppr / 1e6, 3));  // 10^6 ops/W, as the figure's axis
    }
    table.add_row(std::move(row));
  }
  std::cout << table
            << "expected (paper): 128A9 best PPR, 16K10 worst — the exact\n"
               "opposite of the Figure 7 proportionality ranking\n";
  return 0;
}
