// Figure 2 — Energy proportionality metric relationships: the ideal line,
// a super-linear and a sub-linear server profile, with DPR/IPR/EPM/PG
// annotated per curve.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/power/curve.hpp"

int main() {
  using namespace hcep;
  using namespace hcep::literals;
  bench::banner("Figure 2: Energy proportionality metric relationships",
                "Figure 2, Section II-B");

  struct Case {
    const char* name;
    power::PowerCurve curve;
  };
  const Case cases[] = {
      {"ideal", power::PowerCurve::linear(0_W, 100_W)},
      {"super-linear (idle floor)", power::PowerCurve::linear(40_W, 100_W)},
      {"sub-linear (quadratic lag)",
       power::PowerCurve::quadratic(5_W, 100_W, 0.9)},
  };

  TextTable table({"curve", "DPR", "IPR", "EPM", "LDR(lit)", "PG(30%)",
                   "PG(100%)"});
  for (const auto& c : cases) {
    const auto r = metrics::analyze(c.curve);
    table.add_row({c.name, fmt(r.dpr, 1), fmt(r.ipr, 2), fmt(r.epm, 2),
                   fmt(r.ldr_literal, 3), fmt(metrics::pg(c.curve, 0.3), 3),
                   fmt(metrics::pg(c.curve, 1.0), 3)});
  }
  std::cout << table;

  std::cout << "\n% of peak power vs % utilization (gnuplot blocks):\n";
  SeriesWriter series;
  for (const auto& c : cases) {
    series.begin_series(c.name);
    for (double up : bench::fig5_grid())
      series.point(up, metrics::percent_of_peak(c.curve, up));
  }
  std::cout << series.str();
  return 0;
}
