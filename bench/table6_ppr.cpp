// Table 6 — Performance-to-power ratio at the most energy-efficient
// configuration per node type, for every program on A9 and K10.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace hcep;
  bench::banner("Table 6: Performance-to-power ratio", "Table 6, Section III-A");

  TextTable table({"Program", "Performance per Watt (PPR)", "A9 node",
                   "K10 node", "winner"});
  const auto analyses = bench::study().single_node_analyses();
  for (std::size_t i = 0; i + 1 < analyses.size(); i += 2) {
    const auto& a9 = analyses[i];
    const auto& k10 = analyses[i + 1];
    const auto fmt_ppr = [](double v) {
      return v >= 100.0 ? fmt_grouped(v) : fmt(v, 1);
    };
    table.add_row({a9.program, "(" + a9.work_unit + "/s)/W",
                   fmt_ppr(a9.ppr_peak), fmt_ppr(k10.ppr_peak),
                   a9.ppr_peak > k10.ppr_peak ? "A9" : "K10"});
  }
  std::cout << table
            << "paper: A9 wins everywhere except x264 (memory bandwidth) and\n"
               "RSA-2048 (K10 crypto acceleration)\n";
  return 0;
}
