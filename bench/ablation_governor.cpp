// Ablation — race-to-idle vs DVFS pacing on a heterogeneous mix.
//
// The paper's configurations hold (c, f) fixed; this ablation lets the
// cluster re-pick its operating point per sustained utilization and
// reports the power saved plus the effect on the proportionality metrics.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/governor.hpp"

int main() {
  using namespace hcep;
  bench::banner("Ablation: race-to-idle vs DVFS pacing (4 A9 + 2 K10)",
                "DESIGN.md extension; Section II-A's (c, f) dimension");

  for (const auto* program : {"EP", "blackscholes", "x264"}) {
    const auto r =
        analysis::run_governor_study(bench::study().workload(program));
    std::cout << "\n[" << program << "]\n";
    TextTable table({"util", "race [W]", "pace [W]", "saving", "pace point"});
    for (const auto& pt : r.points) {
      table.add_row({fmt(pt.utilization * 100, 0) + "%",
                     fmt(pt.race_power.value(), 1),
                     fmt(pt.pace_power.value(), 1),
                     fmt(pt.saving_percent, 1) + "%", pt.pace_label});
    }
    std::cout << table << "proportionality: race EPM "
              << fmt(r.race_report.epm, 3) << " -> pace EPM "
              << fmt(r.pace_report.epm, 3) << "\n";
  }
  std::cout << "\nreading: pacing helps most at low-mid utilization and\n"
               "converges to race-to-idle at full load; it bends the power\n"
               "curve toward the ideal line (EPM rises)\n";
  return 0;
}
