// Library performance: configuration-space enumeration (google-benchmark).
// Also asserts the footnote-4 count as a startup sanity check.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "hcep/config/space.hpp"

namespace {

using namespace hcep;

void BM_SpaceConstruction(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    config::ConfigSpace space = config::make_a9_k10_space(n, n);
    benchmark::DoNotOptimize(space.size());
  }
}
BENCHMARK(BM_SpaceConstruction)->Arg(10)->Arg(32);

void BM_ConfigDecode(benchmark::State& state) {
  const config::ConfigSpace space = config::make_a9_k10_space(10, 10);
  std::uint64_t i = 0;
  for (auto _ : state) {
    model::ClusterSpec cfg = space.config_at(i);
    benchmark::DoNotOptimize(cfg.total_nodes());
    i = (i + 7919) % space.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ConfigDecode);

void BM_DecodeAt(benchmark::State& state) {
  const config::ConfigSpace space = config::make_a9_k10_space(10, 10);
  std::uint64_t i = 0;
  for (auto _ : state) {
    config::DecodedGroup groups[config::kMaxTypes];
    const std::size_t n = space.decode_at(i, groups);
    std::uint64_t nodes = 0;
    for (std::size_t g = 0; g < n; ++g) nodes += groups[g].count;
    benchmark::DoNotOptimize(nodes);
    i = (i + 7919) % space.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeAt);

void BM_FullSweep(benchmark::State& state) {
  const config::ConfigSpace space = config::make_a9_k10_space(10, 10);
  for (auto _ : state) {
    std::uint64_t nodes = 0;
    space.for_each_decoded([&](const config::DecodedGroup* groups,
                               std::size_t n, std::uint64_t) {
      for (std::size_t g = 0; g < n; ++g) nodes += groups[g].count;
    });
    benchmark::DoNotOptimize(nodes);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(space.size()));
}
BENCHMARK(BM_FullSweep);

void BM_FullSweepMaterialized(benchmark::State& state) {
  const config::ConfigSpace space = config::make_a9_k10_space(10, 10);
  for (auto _ : state) {
    std::uint64_t nodes = 0;
    space.for_each([&](const model::ClusterSpec& cfg, std::uint64_t) {
      nodes += cfg.total_nodes();
    });
    benchmark::DoNotOptimize(nodes);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(space.size()));
}
BENCHMARK(BM_FullSweepMaterialized);

}  // namespace

int main(int argc, char** argv) {
  // Startup sanity: the paper's footnote-4 combinatorics.
  const auto count = hcep::config::make_a9_k10_space(10, 10).size();
  if (count != 36380) {
    std::cerr << "FATAL: footnote-4 configuration count is " << count
              << ", expected 36380\n";
    return EXIT_FAILURE;
  }
  std::cout << "footnote-4 check: |space(10 ARM, 10 AMD)| = " << count
            << " (paper: 36,380)\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
