// Figure 6 (a,b,c) — Single-node PPR across utilization for EP, x264 and
// blackscholes (higher is better; log-scale y in the paper).
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/single_node.hpp"
#include "hcep/hw/catalog.hpp"

int main() {
  using namespace hcep;
  bench::banner("Figure 6: PPR of brawny and wimpy nodes",
                "Figures 6a-6c, Section III-B");

  for (const auto* program : {"EP", "x264", "blackscholes"}) {
    const auto& w = bench::study().workload(program);
    const auto a9 = analysis::analyze_single_node(w, hw::cortex_a9());
    const auto k10 = analysis::analyze_single_node(w, hw::opteron_k10());

    std::cout << "\n[" << program << "]  PPR in (" << w.work_unit << "/s)/W\n";
    TextTable table({"util[%]", "K10", "A9", "winner"});
    for (double up : bench::fig5_grid()) {
      const double pk =
          metrics::ppr(k10.curve, k10.peak_throughput, up / 100.0);
      const double pa = metrics::ppr(a9.curve, a9.peak_throughput, up / 100.0);
      const auto fmt_ppr = [](double v) {
        return v >= 100.0 ? fmt_grouped(v) : fmt(v, 2);
      };
      table.add_row({fmt(up, 0), fmt_ppr(pk), fmt_ppr(pa),
                     pa > pk ? "A9" : "K10"});
    }
    std::cout << table;
  }
  std::cout << "\nexpected: A9 wins EP and blackscholes at every utilization\n"
               "(contradicting the proportionality metrics); K10 wins x264\n";
  return 0;
}
