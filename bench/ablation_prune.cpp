// Ablation — configuration-space pruning (the paper's footnote-4 future
// work): dominated per-type operating points are removed before
// enumeration; the energy-deadline Pareto frontier is preserved while the
// space shrinks by the product of the per-type reductions.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "hcep/config/pareto.hpp"
#include "hcep/config/prune.hpp"

int main() {
  using namespace hcep;
  bench::banner("Ablation: operating-point pruning of the footnote-4 space",
                "footnote 4: 'an approach to reduce the configuration "
                "space is beyond the scope of this paper'");

  TextTable table({"Program", "|space| full", "|space| pruned", "reduction",
                   "A9 points", "K10 points", "frontier preserved"});
  for (const auto& w : bench::study().workloads()) {
    const config::ConfigSpace space = config::make_a9_k10_space(10, 10);
    config::PruneStats stats;
    const config::ConfigSpace pruned =
        config::prune_operating_points(space, w, &stats);

    // Frontier check on a smaller sub-space (the full 36k x2 evaluation
    // is exercised by the perf bench; here we verify the invariant).
    const config::ConfigSpace small = config::make_a9_k10_space(4, 3);
    const config::ConfigSpace small_pruned =
        config::prune_operating_points(small, w);
    const auto full_front =
        config::pareto_front(config::evaluate_space(small, w));
    const auto pruned_evals = config::evaluate_space(small_pruned, w);
    bool preserved = true;
    for (const auto& f : full_front) {
      bool matched = false;
      for (std::size_t i = 0; i < pruned_evals.size(); ++i) {
        if (pruned_evals.times()[i] <= f.time.value() * (1 + 1e-9) &&
            pruned_evals.energies()[i] <= f.energy.value() * (1 + 1e-9)) {
          matched = true;
          break;
        }
      }
      preserved = preserved && matched;
    }

    table.add_row(
        {w.name, fmt_grouped(static_cast<double>(stats.configurations_before)),
         fmt_grouped(static_cast<double>(stats.configurations_after)),
         fmt(stats.reduction_factor(), 1) + "x",
         std::to_string(stats.per_type[0].first) + "/" +
             std::to_string(stats.per_type[0].second),
         std::to_string(stats.per_type[1].first) + "/" +
             std::to_string(stats.per_type[1].second),
         preserved ? "yes" : "NO"});
  }
  std::cout << table
            << "reading: per-type dominance pruning cuts the footnote-4\n"
               "space severalfold with the frontier intact — the sweep\n"
               "cost of the paper's methodology drops by the same factor\n";
  return 0;
}
