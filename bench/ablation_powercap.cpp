// Ablation — throughput under average-power caps: racing vs pacing on a
// heterogeneous mix. Extends the paper's nameplate-budget view (Table 8)
// to drawn-power capping.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/power_cap.hpp"

int main() {
  using namespace hcep;
  bench::banner("Ablation: power capping on 4 A9 + 2 K10 (race vs pace)",
                "extends the Section III-C power-budget theme");

  for (const auto* program : {"EP", "x264"}) {
    const auto r =
        analysis::run_power_cap_study(bench::study().workload(program));
    std::cout << "\n[" << program << "]  idle "
              << fmt(r.idle_power.value(), 1) << " W, busy "
              << fmt(r.busy_power.value(), 1) << " W\n";
    TextTable table({"cap [W]", "race [units/s]", "paced [units/s]",
                     "gain", "paced point"});
    for (const auto& p : r.points) {
      table.add_row({fmt(p.cap.value(), 1), fmt_grouped(p.race_throughput),
                     fmt_grouped(p.paced_throughput),
                     fmt(p.pacing_gain, 2) + "x", p.paced_label});
    }
    std::cout << table;
  }
  std::cout << "\nreading: near the idle floor every spare watt matters and\n"
               "downclocked points beat duty-cycled racing; the gain fades\n"
               "as the cap approaches the full busy power\n";
  return 0;
}
