// Figure 11 — 95th-percentile response time of the sub-linear
// heterogeneous mixes for EP vs cluster utilization (ms axis in the
// paper). Every mix meets the EP deadline, so the curves stay close.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/response_study.hpp"

int main() {
  using namespace hcep;
  bench::banner("Figure 11: 95th-percentile response time, EP",
                "Figure 11, Section III-E");

  const auto result = bench::study().response_study("EP");
  std::cout << "deadline: " << fmt(result.deadline.value() * 1e3, 1)
            << " ms (all mixes run their min-energy point meeting it)\n\n";

  TextTable config({"mix", "meets deadline", "service [ms]",
                    "job energy [J]"});
  for (const auto& m : result.mixes) {
    config.add_row({m.mix.label(), m.meets_deadline ? "yes" : "NO",
                    fmt(m.service_time.value() * 1e3, 2),
                    fmt(m.job_energy.value(), 2)});
  }
  std::cout << config << "\np95 response [ms] vs utilization:\n";

  std::vector<std::string> header{"util[%]"};
  for (const auto& m : result.mixes) header.push_back(m.mix.label());
  TextTable table(header);
  const std::size_t points = result.mixes.front().points.size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row{
        fmt(result.mixes.front().points[i].utilization_percent, 0)};
    for (const auto& m : result.mixes)
      row.push_back(fmt(m.points[i].p95_analytic.value() * 1e3, 2));
    table.add_row(std::move(row));
  }
  std::cout << table
            << "paper: differences among mixes stay small (the EP PPR of\n"
               "wimpy nodes beats brawny, so shedding K10s costs little "
               "time)\n";
  return 0;
}
