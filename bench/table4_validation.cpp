// Table 4 — Cluster validation: percent error between the Table 2 analytic
// model and the simulated testbed's measured per-job execution time and
// energy, for all six programs.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/validation.hpp"

int main() {
  using namespace hcep;
  bench::banner("Table 4: Cluster validation (model vs simulated testbed)",
                "Table 4, Section II-C");

  TextTable table({"Domain", "Program", "Execution time error[%]",
                   "Energy error[%]"});
  for (const auto& row : bench::study().table4()) {
    table.add_row({row.domain, row.program, fmt(row.time_error_percent, 1),
                   fmt(row.energy_error_percent, 1)});
  }
  std::cout << table
            << "paper reports: EP 3/10, memcached 10/8, x264 11/10, "
               "blackscholes 4/7, Julius 13/1, RSA-2048 2/8 (time/energy %)\n";
  return 0;
}
