// Figure 10 — Energy proportionality of Pareto-optimal configurations for
// x264 (max 32 A9 + 12 K10), normalized against the reference peak.
#include <iostream>

#include "bench_common.hpp"
#include "hcep/analysis/pareto_study.hpp"

int main() {
  using namespace hcep;
  bench::banner(
      "Figure 10: Energy proportionality of Pareto-optimal configs (x264)",
      "Figure 10, Section III-D");

  const auto result = bench::study().pareto_study("x264");
  std::cout << "reference peak (32A9:12K10 busy power): "
            << fmt(result.reference_peak.value(), 1) << " W\n"
            << "Pareto frontier size: " << result.frontier.size() << "\n\n";

  std::vector<std::string> header{"util[%]", "Ideal"};
  for (const auto& m : result.mixes) header.push_back(m.mix.label());
  TextTable table(header);
  for (double up : {20.0, 25.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0,
                    100.0}) {
    std::vector<std::string> row{fmt(up, 0), fmt(up, 1)};
    for (const auto& m : result.mixes) {
      row.push_back(
          fmt(metrics::percent_of_peak(m.curve, up, result.reference_peak),
              1));
    }
    table.add_row(std::move(row));
  }
  std::cout << table << "\nsub-linearity crossovers:\n";

  TextTable crossings({"mix", "becomes sub-linear at u", "sub-linear @50%?"});
  for (const auto& m : result.mixes) {
    crossings.add_row(
        {m.mix.label(),
         m.crossover_utilization > 1.0
             ? std::string("never")
             : fmt(m.crossover_utilization * 100.0, 0) + "%",
         m.sublinear_at_half ? "yes" : "no"});
  }
  std::cout << crossings
            << "paper: x264 exposes MORE sub-linear configurations than EP,\n"
               "but Section III-E shows they pay for it in response time\n";
  return 0;
}
