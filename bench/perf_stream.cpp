// Library performance: streaming telemetry.
//
// Quantifies the overhead the tumbling-window collector adds to the
// request hot path. The headline pair: BM_StreamOffTraffic vs
// BM_StreamOnTraffic push the same request stream through
// simulate_traffic with streaming disabled and enabled (256 windows,
// default sketch accuracy) — the difference is pure collector cost
// (window accounting, energy integration, sketch inserts), which
// tools/bench_regress.py --suite stream gates at <= 5% for the
// 1M-request configuration (max_ratio 1.05 in BENCH_stream.json's
// suite). BM_SketchInsert isolates the amortized per-sample cost of the
// quantile summary itself.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "hcep/obs/stream.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::traffic;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

std::vector<TrafficClass> one_class() {
  return {TrafficClass{wl("EP"), 1.0, SloTarget{}}};
}

/// Shared scenario: 4 A9 + 2 K10 at 70% utilization, identical to the
/// perf_control.cpp open-loop scenario so numbers compare across suites.
void run_traffic(benchmark::State& state, bool streamed) {
  const auto cluster = model::make_a9_k10_cluster(4, 2);
  const auto classes = one_class();
  const double rate = 0.7 * cluster_capacity_per_s(cluster, classes);
  const auto arrivals = make_poisson(rate);
  TrafficOptions options;
  options.requests = static_cast<std::uint64_t>(state.range(0));
  if (streamed) {
    // ~256 windows over the run regardless of request count — the
    // cadence a `hcep timeline` invocation would pick.
    const double span = static_cast<double>(options.requests) / rate;
    options.stream.window = Seconds{span / 256.0};
  }
  for (auto _ : state) {
    const TrafficResult r =
        simulate_traffic(cluster, classes, *arrivals, options);
    benchmark::DoNotOptimize(r.completed);
    if (streamed) benchmark::DoNotOptimize(r.timeline.windows.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

/// Baseline: streaming disabled — no collector installed.
void BM_StreamOffTraffic(benchmark::State& state) {
  run_traffic(state, false);
}
BENCHMARK(BM_StreamOffTraffic)->Arg(1 << 17)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

/// Streamed run: identical request stream (the collector is purely
/// observational — the tests/test_stream.cpp oracle), so the throughput
/// difference is exactly the telemetry cost.
void BM_StreamOnTraffic(benchmark::State& state) {
  run_traffic(state, true);
}
BENCHMARK(BM_StreamOnTraffic)->Arg(1 << 17)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

// --- Sketch microbenchmark -----------------------------------------------

/// Amortized per-sample insert cost at a given accuracy: the buffered
/// batch design makes this a push_back most of the time with a sort +
/// merge every 64 samples.
void BM_SketchInsert(benchmark::State& state) {
  const double eps =
      1.0 / static_cast<double>(state.range(0));  // 1/200, 1/1000
  Rng rng(42);
  std::vector<double> samples(1 << 16);
  for (auto& s : samples) s = rng.exponential(3.0);
  for (auto _ : state) {
    obs::stream::QuantileSketch sk(eps);
    for (const double s : samples) sk.insert(s);
    benchmark::DoNotOptimize(sk.quantile(0.99));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_SketchInsert)->Arg(200)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
