// The Table 2 cluster time-energy model.
#include <gtest/gtest.h>

#include <cmath>

#include "hcep/hw/catalog.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::model;
using namespace hcep::literals;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

TEST(ClusterSpec, DefaultsResolveToFullCoresAndFmax) {
  NodeGroup g{hw::cortex_a9(), 2, 0, Hertz{}};
  EXPECT_EQ(g.cores(), 4u);
  EXPECT_DOUBLE_EQ(g.freq().value(), 1.4e9);
  g.active_cores = 2;
  g.frequency = 0.8_GHz;
  EXPECT_EQ(g.cores(), 2u);
  EXPECT_DOUBLE_EQ(g.freq().value(), 0.8e9);
}

TEST(ClusterSpec, LabelAndTotals) {
  const ClusterSpec c = make_a9_k10_cluster(32, 12);
  EXPECT_EQ(c.label(), "32A9:12K10");
  EXPECT_EQ(c.total_nodes(), 44u);
  EXPECT_EQ(make_a9_k10_cluster(0, 16).label(), "16K10");
  EXPECT_EQ(make_a9_k10_cluster(128, 0).label(), "128A9");
}

TEST(ClusterSpec, NameplateIncludesSwitches) {
  // 32 A9 (160 W) + 4 switches (80 W) + 12 K10 (720 W) = 960 W.
  EXPECT_DOUBLE_EQ(make_a9_k10_cluster(32, 12).nameplate_power().value(),
                   960.0);
  EXPECT_DOUBLE_EQ(make_a9_k10_cluster(0, 16).nameplate_power().value(),
                   960.0);
  EXPECT_DOUBLE_EQ(make_a9_k10_cluster(128, 0).nameplate_power().value(),
                   960.0);
}

TEST(ClusterSpec, ValidationCatchesBadGroups) {
  ClusterSpec c;
  EXPECT_THROW(c.validate(), PreconditionError);  // empty

  c = make_a9_k10_cluster(1, 1);
  c.groups[0].active_cores = 9;
  EXPECT_THROW(c.validate(), PreconditionError);

  c = make_a9_k10_cluster(1, 1);
  c.groups[0].frequency = 9_GHz;
  EXPECT_THROW(c.validate(), PreconditionError);

  EXPECT_THROW((void)make_a9_k10_cluster(0, 0), PreconditionError);
}

TEST(TimeEnergyModel, RequiresDemandForEveryGroup) {
  workload::Workload w;
  w.name = "partial";
  w.demand["A9"] = workload::NodeDemand{1e6, 1e5, Bytes{0.0}};
  EXPECT_THROW(TimeEnergyModel(make_a9_k10_cluster(1, 1), w),
               PreconditionError);
}

TEST(TimeEnergyModel, ClusterThroughputIsSumOfGroupRates) {
  const auto& ep = wl("EP");
  const TimeEnergyModel a9_only(make_a9_k10_cluster(3, 0), ep);
  const TimeEnergyModel k10_only(make_a9_k10_cluster(0, 2), ep);
  const TimeEnergyModel both(make_a9_k10_cluster(3, 2), ep);
  EXPECT_NEAR(both.peak_throughput(),
              a9_only.peak_throughput() + k10_only.peak_throughput(), 1e-6);
}

TEST(TimeEnergyModel, RateMatchedGroupsFinishTogether) {
  const auto& ep = wl("EP");
  const TimeEnergyModel m(make_a9_k10_cluster(5, 3), ep);
  const TimeResult t = m.execution_time(1e8);
  ASSERT_EQ(t.groups.size(), 2u);
  // EP has no binding I/O floor, so the balanced split equalizes times.
  EXPECT_NEAR(t.groups[0].per_node.total.value(),
              t.groups[1].per_node.total.value(),
              t.t_p.value() * 1e-9);
  EXPECT_NEAR(t.t_p.value(), t.groups[0].per_node.total.value(),
              t.t_p.value() * 1e-9);
}

TEST(TimeEnergyModel, WorkSharesSumToTotal) {
  const auto& bs = wl("blackscholes");
  const TimeEnergyModel m(make_a9_k10_cluster(4, 2), bs);
  const double total = 5e6;
  const TimeResult t = m.execution_time(total);
  double assigned = 0.0;
  for (std::size_t i = 0; i < t.groups.size(); ++i) {
    assigned += t.groups[i].units_per_node *
                static_cast<double>(m.cluster().groups[i].count);
  }
  EXPECT_NEAR(assigned, total, total * 1e-12);
}

TEST(TimeEnergyModel, TimeScalesLinearlyWithWork) {
  const auto& ep = wl("EP");
  const TimeEnergyModel m(make_a9_k10_cluster(2, 1), ep);
  const Seconds t1 = m.execution_time(1e7).t_p;
  const Seconds t2 = m.execution_time(2e7).t_p;
  EXPECT_NEAR(t2.value(), 2.0 * t1.value(), t1.value() * 1e-9);
}

TEST(TimeEnergyModel, MoreNodesNeverSlower) {
  const auto& x = wl("x264");
  const Seconds small =
      TimeEnergyModel(make_a9_k10_cluster(4, 1), x).execution_time(100).t_p;
  const Seconds large =
      TimeEnergyModel(make_a9_k10_cluster(8, 2), x).execution_time(100).t_p;
  EXPECT_LT(large, small);
}

TEST(TimeEnergyModel, EnergyComponentsSumToTotal) {
  const auto& ep = wl("EP");
  const TimeEnergyModel m(make_a9_k10_cluster(2, 2), ep);
  const EnergyResult e = m.job_energy(1e7);
  Joules sum{0.0};
  for (const auto& g : e.groups) sum += g.total();
  EXPECT_NEAR(sum.value(), e.e_p.value(), e.e_p.value() * 1e-12);
  for (const auto& g : e.groups) {
    EXPECT_GE(g.cpu_active.value(), 0.0);
    EXPECT_GE(g.idle.value(), 0.0);
  }
}

TEST(TimeEnergyModel, IdleEnergyMatchesIdlePowerTimesJobTime) {
  const auto& ep = wl("EP");
  const TimeEnergyModel m(make_a9_k10_cluster(3, 1), ep);
  const TimeResult t = m.execution_time(1e7);
  const EnergyResult e = m.job_energy(1e7);
  Joules idle{0.0};
  for (const auto& g : e.groups) idle += g.idle;
  EXPECT_NEAR(idle.value(), (m.idle_power() * t.t_p).value(),
              idle.value() * 1e-9);
}

TEST(TimeEnergyModel, PowerCurveEndpoints) {
  const auto& ep = wl("EP");
  const TimeEnergyModel m(make_a9_k10_cluster(64, 8), ep);
  const power::PowerCurve c = m.power_curve();
  EXPECT_NEAR(c.idle().value(), m.idle_power().value(), 1e-9);
  EXPECT_NEAR(c.peak().value(), m.busy_power().value(), 1e-9);
  // Linear family: midpoint is the average.
  EXPECT_NEAR(c.at(0.5).value(),
              0.5 * (m.idle_power() + m.busy_power()).value(), 1e-9);
}

TEST(TimeEnergyModel, ClusterIprIsIdleOverBusySum) {
  // The Table 8 identity: cluster IPR = sum(P_idle) / sum(P_peak).
  const auto& ep = wl("EP");
  const TimeEnergyModel m(make_a9_k10_cluster(64, 8), ep);
  const double expected = (64 * 1.8 + 8 * 45.0) /
                          (64 * (1.8 / 0.74) + 8 * (45.0 / 0.65));
  EXPECT_NEAR(m.idle_power() / m.busy_power(), expected, 1e-6);
}

TEST(TimeEnergyModel, WindowEnergyEndpoints) {
  const auto& ep = wl("EP");
  const TimeEnergyModel m(make_a9_k10_cluster(1, 1), ep);
  // Section II-B: P_idle = E(U=0)/T and P_peak = E(U=1)/T.
  EXPECT_NEAR(m.window_energy(0.0, 100_s).value(),
              (m.idle_power() * 100_s).value(), 1e-9);
  EXPECT_NEAR(m.window_energy(1.0, 100_s).value(),
              (m.busy_power() * 100_s).value(), 1e-9);
  EXPECT_THROW((void)m.window_energy(1.5, 1_s), PreconditionError);
  EXPECT_THROW((void)m.window_energy(0.5, 0_s), PreconditionError);
}

TEST(TimeEnergyModel, PprAtFullUtilizationMatchesTable6) {
  const auto& ep = wl("EP");
  const TimeEnergyModel a9(make_a9_k10_cluster(1, 0), ep);
  EXPECT_NEAR(a9.ppr(1.0), 6048057.0, 6048057.0 * 1e-9);
  const TimeEnergyModel k10(make_a9_k10_cluster(0, 1), ep);
  EXPECT_NEAR(k10.ppr(1.0), 1414922.0, 1414922.0 * 1e-9);
}

TEST(TimeEnergyModel, PprIncreasesWithUtilization) {
  const auto& ep = wl("EP");
  const TimeEnergyModel m(make_a9_k10_cluster(2, 1), ep);
  double prev = 0.0;
  for (double u = 0.1; u <= 1.0; u += 0.1) {
    const double p = m.ppr(u);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_THROW((void)m.ppr(0.0), PreconditionError);
}

TEST(TimeEnergyModel, QuadraticFamilyKeepsEndpoints) {
  const auto& ep = wl("EP");
  const TimeEnergyModel m(make_a9_k10_cluster(2, 1), ep);
  const power::PowerCurve lin = m.power_curve(CurveFamily::kLinear);
  const power::PowerCurve quad = m.power_curve(CurveFamily::kQuadratic, 0.4);
  EXPECT_NEAR(quad.idle().value(), lin.idle().value(), 1e-9);
  EXPECT_NEAR(quad.peak().value(), lin.peak().value(), 1e-9);
  EXPECT_LT(quad.at(0.5).value(), lin.at(0.5).value());
}

TEST(TimeEnergyModel, MemcachedIoFloorBindsOnManyNodes) {
  // With the 1/lambda_I/O floor divided by n_i (Table 2), a single-node
  // group's I/O floor can exceed its transfer time on tiny jobs.
  auto mc = wl("memcached");
  mc.units_per_job = 1.0;  // one byte: transfer time ~ns, floor 50 us
  const TimeEnergyModel m(make_a9_k10_cluster(1, 0), mc);
  const TimeResult t = m.execution_time(mc.units_per_job);
  EXPECT_GE(t.groups[0].per_node.io.value(), 50e-6 - 1e-12);
}

TEST(TimeEnergyModel, SmallerInputScalesTimeLinearly) {
  // Table 1's P_s: job time and energy-above-idle scale with the input.
  const auto& ep = wl("EP");
  const auto small = workload::with_input_scale(ep, 0.5);
  const TimeEnergyModel big_m(make_a9_k10_cluster(3, 1), ep);
  const TimeEnergyModel small_m(make_a9_k10_cluster(3, 1), small);
  EXPECT_NEAR(small_m.job_time().value(), big_m.job_time().value() * 0.5,
              big_m.job_time().value() * 1e-9);
  const double big_dyn =
      (big_m.job_energy(ep.units_per_job).e_p -
       big_m.idle_power() * big_m.job_time())
          .value();
  const double small_dyn =
      (small_m.job_energy(small.units_per_job).e_p -
       small_m.idle_power() * small_m.job_time())
          .value();
  EXPECT_NEAR(small_dyn, big_dyn * 0.5, std::abs(big_dyn) * 1e-9);
}

TEST(TimeEnergyModel, RejectsNonPositiveWork) {
  const auto& ep = wl("EP");
  const TimeEnergyModel m(make_a9_k10_cluster(1, 0), ep);
  EXPECT_THROW((void)m.execution_time(0.0), PreconditionError);
  EXPECT_THROW((void)m.execution_time(-1.0), PreconditionError);
}

}  // namespace
