// End-to-end integration: the full pipeline from kernels through
// characterization, calibration, the analytic model, and the simulated
// testbed must stay mutually consistent.
#include <gtest/gtest.h>

#include <cctype>

#include "hcep/cluster/simulator.hpp"
#include "hcep/config/budget.hpp"
#include "hcep/config/pareto.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/queueing/md1.hpp"
#include "hcep/workload/calibrate.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::literals;

const std::vector<workload::Workload>& catalog() {
  static const auto kCatalog = workload::paper_workloads();
  return kCatalog;
}

class EveryWorkload : public ::testing::TestWithParam<int> {
 protected:
  const workload::Workload& w() const { return catalog()[GetParam()]; }
};

TEST_P(EveryWorkload, SimulatedThroughputMatchesModelAtFullLoad) {
  // Back-to-back jobs (ideal overheads) must reproduce the model's T_P.
  model::TimeEnergyModel m(model::make_a9_k10_cluster(2, 1), w());
  const cluster::JobMeasurement meas =
      cluster::measure_batch(m, 20, 5, /*use_testbed_overheads=*/false);
  const Seconds model_time = m.execution_time(w().units_per_job).t_p;
  EXPECT_NEAR(meas.time_per_job.value(), model_time.value(),
              model_time.value() * 1e-9);
}

TEST_P(EveryWorkload, SimulatedEnergyMatchesModelAtFullLoad) {
  model::TimeEnergyModel m(model::make_a9_k10_cluster(2, 1), w());
  const cluster::JobMeasurement meas =
      cluster::measure_batch(m, 20, 5, /*use_testbed_overheads=*/false);
  const Joules model_energy = m.job_energy(w().units_per_job).e_p;
  // Meter noise only: within a percent.
  EXPECT_NEAR(meas.energy_per_job.value(), model_energy.value(),
              model_energy.value() * 0.02);
}

TEST_P(EveryWorkload, ClusterPprInterpolatesSingleNodePprs) {
  // A mixed cluster's full-load PPR must lie between the two node PPRs.
  model::TimeEnergyModel a9(model::make_a9_k10_cluster(1, 0), w());
  model::TimeEnergyModel k10(model::make_a9_k10_cluster(0, 1), w());
  model::TimeEnergyModel mixed(model::make_a9_k10_cluster(8, 1), w());
  const double lo = std::min(a9.ppr(1.0), k10.ppr(1.0));
  const double hi = std::max(a9.ppr(1.0), k10.ppr(1.0));
  EXPECT_GE(mixed.ppr(1.0), lo * 0.999);
  EXPECT_LE(mixed.ppr(1.0), hi * 1.001);
}

TEST_P(EveryWorkload, EnergyNeverBelowIdleFloorTimesTime) {
  model::TimeEnergyModel m(model::make_a9_k10_cluster(3, 2), w());
  const auto t = m.execution_time(w().units_per_job);
  const auto e = m.job_energy(w().units_per_job);
  EXPECT_GE(e.e_p.value(), (m.idle_power() * t.t_p).value() * 0.999);
  EXPECT_LE(e.e_p.value(), (m.busy_power() * t.t_p).value() * 1.001);
}

TEST_P(EveryWorkload, MetricIdentitiesHoldOnEveryBudgetMix) {
  for (const auto& mix : config::paper_budget_mixes()) {
    model::TimeEnergyModel m(mix, w());
    const auto curve = m.power_curve();
    const auto r = metrics::analyze(curve);
    EXPECT_NEAR(r.dpr, (1.0 - r.ipr) * 100.0, 1e-6) << mix.label();
    EXPECT_NEAR(r.epm, 1.0 - r.ipr, 1e-6) << mix.label();
    EXPECT_NEAR(r.ldr_paper, r.epm, 1e-9) << mix.label();
    EXPECT_NEAR(metrics::pg(curve, 1.0), 0.0, 1e-9) << mix.label();
  }
}

TEST_P(EveryWorkload, HeterogeneousMixesInterpolateClusterIpr) {
  // Moving from the all-K10 mix to the all-A9 mix, the cluster IPR moves
  // monotonically between the two homogeneous endpoints.
  std::vector<double> iprs;
  for (const auto& mix : config::paper_budget_mixes()) {
    model::TimeEnergyModel m(mix, w());
    iprs.push_back(m.idle_power() / m.busy_power());
  }
  const bool increasing = iprs.back() > iprs.front();
  for (std::size_t i = 1; i < iprs.size(); ++i) {
    if (increasing) {
      EXPECT_GE(iprs[i], iprs[i - 1] - 1e-9);
    } else {
      EXPECT_LE(iprs[i], iprs[i - 1] + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSix, EveryWorkload,
                         ::testing::Range(0, 6),
                         [](const auto& inst) {
                           std::string n = catalog()[inst.param].name;
                           for (auto& ch : n)
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           return n;
                         });

TEST(Integration, QueueingViewMatchesClusterSimulatorResponse) {
  // The paper treats the cluster as an M/D/1 server; the DES implements
  // exactly that, so analytic and simulated p95 must agree closely when
  // testbed noise is off.
  const auto& ep = catalog()[0];
  model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), ep);
  const Seconds service = m.execution_time(ep.units_per_job).t_p;

  cluster::SimOptions so;
  so.utilization = 0.6;
  so.min_jobs = 4000;
  so.use_testbed_overheads = false;
  const auto sim = cluster::simulate(m, so);

  const queueing::MD1 q(service, so.utilization / service.value());
  EXPECT_NEAR(sim.p95_response.value(), q.response_percentile(95.0).value(),
              q.response_percentile(95.0).value() * 0.15);
}

TEST(Integration, SubLinearParetoMixSavesEnergyAgainstReference) {
  // The Figure 9 story end-to-end: the sub-linear (25,5) mix consumes
  // less energy per EP job than the (32,12) reference but takes longer.
  const auto& ep = catalog()[0];
  model::TimeEnergyModel ref(model::make_a9_k10_cluster(32, 12), ep);
  model::TimeEnergyModel small(model::make_a9_k10_cluster(25, 5), ep);
  const auto t_ref = ref.execution_time(ep.units_per_job).t_p;
  const auto t_small = small.execution_time(ep.units_per_job).t_p;
  const auto e_ref = ref.job_energy(ep.units_per_job).e_p;
  const auto e_small = small.job_energy(ep.units_per_job).e_p;
  EXPECT_GT(t_small, t_ref);   // trades time...
  EXPECT_LT(e_small, e_ref);   // ...for energy
}

TEST(Integration, EvaluateSpaceAgreesWithDirectModel) {
  const auto& ep = catalog()[0];
  const config::ConfigSpace space = config::make_a9_k10_space(2, 1);
  const auto evals = config::evaluate_space(space, ep);
  for (std::uint64_t i : std::vector<std::uint64_t>{0, 5, space.size() - 1}) {
    model::TimeEnergyModel m(space.config_at(i), ep);
    EXPECT_NEAR(evals.time(i).value(),
                m.execution_time(ep.units_per_job).t_p.value(), 1e-12);
    EXPECT_NEAR(evals.energy(i).value(),
                m.job_energy(ep.units_per_job).e_p.value(), 1e-9);
  }
}

TEST(Integration, RecalibrationIsIdempotent) {
  // Re-running calibration on an already calibrated profile must not
  // drift: targets are fixed points of the procedure.
  auto w = workload::make_workload("blackscholes");
  const auto a9 = hw::cortex_a9();
  const auto target = workload::paper_target("blackscholes", "A9");
  ASSERT_TRUE(target.has_value());
  const double before = w.demand_for("A9").cycles_core;
  workload::calibrate_node(w, a9, *target);
  const double after = w.demand_for("A9").cycles_core;
  EXPECT_NEAR(after / before, 1.0, 1e-9);
}

}  // namespace
