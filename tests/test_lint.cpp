// Unit tests for the hcep-lint analyzer passes (tools/lint/). The
// end-to-end rule behavior is pinned by `hcep_lint --selftest` over the
// fixture tree; these tests pin the *layers* the rules stand on — the
// tokenizer's comment/string/raw-string handling, the scope tracker's
// brace classification, the analyzer's per-file and cross-file passes,
// the SARIF export (re-parsed with the repo's own strict JSON parser),
// and the result cache's hit/miss semantics.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "cache.hpp"
#include "hcep/util/json.hpp"
#include "lexer.hpp"
#include "rules.hpp"
#include "sarif.hpp"
#include "scope.hpp"

namespace lint = hcep::lint;

namespace {

bool has_ident(const lint::LexResult& lr, const std::string& name) {
  for (const auto& t : lr.tokens)
    if (t.kind == lint::TokenKind::kIdentifier && t.text == name) return true;
  return false;
}

std::vector<std::string> rules_fired(const lint::FileFacts& facts) {
  std::vector<std::string> out;
  for (const auto& f : facts.findings) out.push_back(f.rule);
  return out;
}

// --- Lexer -------------------------------------------------------------------

TEST(LintLexer, RawStringBodyIsOpaque) {
  // rand() inside a raw string must not surface as identifier tokens —
  // the old line-oriented checker false-positived on exactly this.
  const lint::LexResult lr =
      lint::lex("const char* s = R\"doc(call rand() now)doc\";\n"
                "int x = 0;\n");
  EXPECT_FALSE(has_ident(lr, "rand"));
  ASSERT_EQ(lr.tokens.size(), 12u);  // const char * s = <str> ; int x = 0 ;
  EXPECT_EQ(lr.tokens[5].kind, lint::TokenKind::kString);
  EXPECT_EQ(lr.tokens[5].text, "call rand() now");
}

TEST(LintLexer, RawStringDelimiterMustMatch) {
  // A ")x" inside the body does not close an R"y(...)y" literal.
  const lint::LexResult lr =
      lint::lex("auto s = R\"y(a )x\" b)y\"; int after = 1;\n");
  EXPECT_TRUE(has_ident(lr, "after"));
  EXPECT_FALSE(has_ident(lr, "b"));
}

TEST(LintLexer, LineContinuationCommentSwallowsNextLine) {
  // A `//` comment ending in a backslash continues onto the next source
  // line, taking any "code" there with it.
  const lint::LexResult lr =
      lint::lex("int a = 1;\n"
                "// swallowed \\\n"
                "int hidden = 2;\n"
                "int b = 3;\n");
  EXPECT_TRUE(has_ident(lr, "a"));
  EXPECT_FALSE(has_ident(lr, "hidden"));
  EXPECT_TRUE(has_ident(lr, "b"));
  // Line numbers survive the swallow: b sits on line 4.
  for (const auto& t : lr.tokens) {
    if (t.kind == lint::TokenKind::kIdentifier && t.text == "b") {
      EXPECT_EQ(t.line, 4u);
    }
  }
}

TEST(LintLexer, DirectivesFoldToOneToken) {
  const lint::LexResult lr =
      lint::lex("#include \"hcep/util/units.hpp\"\n"
                "#define TWO \\\n"
                "  2\n"
                "int x = TWO;\n");
  std::size_t directives = 0;
  for (const auto& t : lr.tokens)
    if (t.kind == lint::TokenKind::kDirective) ++directives;
  EXPECT_EQ(directives, 2u);
  EXPECT_TRUE(has_ident(lr, "x"));
}

TEST(LintLexer, GreedyPunctuators) {
  const lint::LexResult lr = lint::lex("a <=> b; c += d; e->f; g::h;\n");
  std::vector<std::string> puncts;
  for (const auto& t : lr.tokens)
    if (t.kind == lint::TokenKind::kPunct) puncts.push_back(t.text);
  EXPECT_EQ(puncts, (std::vector<std::string>{"<=>", ";", "+=", ";", "->",
                                              ";", "::", ";"}));
}

TEST(LintLexer, SuppressionCommentsBothSpellings) {
  const lint::LexResult lr =
      lint::lex("int a;  // hcep-lint: allow(unit-double)\n"
                "int b;  // NOLINT(banned-call)\n"
                "int c;\n");
  EXPECT_TRUE(lint::suppressed(lr, 1, "unit-double"));
  EXPECT_FALSE(lint::suppressed(lr, 1, "banned-call"));
  EXPECT_TRUE(lint::suppressed(lr, 2, "banned-call"));
  EXPECT_FALSE(lint::suppressed(lr, 3, "unit-double"));
}

// --- Scope tracker -----------------------------------------------------------

TEST(LintScope, ClassMemberVsFunctionLocal) {
  const std::string src =
      "namespace hcep::power {\n"
      "class Meter {\n"
      " public:\n"
      "  void run() {\n"
      "    int local = 0;\n"
      "  }\n"
      "  int member_;\n"
      "};\n"
      "}\n";
  const lint::LexResult lr = lint::lex(src);
  const std::vector<lint::ScopeInfo> scopes = lint::track_scopes(lr.tokens);
  ASSERT_EQ(scopes.size(), lr.tokens.size());
  for (std::size_t i = 0; i < lr.tokens.size(); ++i) {
    const auto& t = lr.tokens[i];
    if (t.kind != lint::TokenKind::kIdentifier) continue;
    if (t.text == "local") {
      EXPECT_TRUE(scopes[i].in_function);
      EXPECT_EQ(scopes[i].function_name, "run");
      EXPECT_FALSE(scopes[i].at_class_scope);
    } else if (t.text == "member_") {
      EXPECT_FALSE(scopes[i].in_function);
      EXPECT_TRUE(scopes[i].at_class_scope);
      EXPECT_EQ(scopes[i].class_name, "Meter");
      EXPECT_EQ(scopes[i].namespace_path, "hcep::power");
    }
  }
}

TEST(LintScope, ControlFlowBracesAreNotFunctions) {
  const std::string src =
      "void f() {\n"
      "  if (1) { int inside_if = 0; }\n"
      "  for (int i = 0; i < 3; ++i) { int inside_for = 0; }\n"
      "}\n";
  const lint::LexResult lr = lint::lex(src);
  const std::vector<lint::ScopeInfo> scopes = lint::track_scopes(lr.tokens);
  for (std::size_t i = 0; i < lr.tokens.size(); ++i) {
    const auto& t = lr.tokens[i];
    if (t.text == "inside_if" || t.text == "inside_for") {
      EXPECT_TRUE(scopes[i].in_function);
      EXPECT_EQ(scopes[i].function_name, "f");  // still inside f, not a
                                                // new "if" function
    }
  }
}

// --- Analyzer ----------------------------------------------------------------

TEST(LintAnalyzer, RngSeedFlow) {
  const lint::FileFacts bad = lint::analyze_source(
      "void f() { Rng r; }\n", "src/cluster/x.cpp");
  ASSERT_EQ(bad.findings.size(), 1u);
  EXPECT_EQ(bad.findings[0].rule, "rng-seed-flow");
  EXPECT_EQ(bad.findings[0].line, 1u);

  const lint::FileFacts good = lint::analyze_source(
      "void f(std::uint64_t seed) { Rng r(seed); }\n", "src/cluster/x.cpp");
  EXPECT_TRUE(good.findings.empty());

  // A member seeded by a mem-initializer elsewhere in the file is clean.
  const lint::FileFacts member = lint::analyze_source(
      "struct S { explicit S(std::uint64_t seed) : rng_(seed) {} Rng rng_; };\n",
      "src/cluster/x.cpp");
  EXPECT_TRUE(member.findings.empty());
}

TEST(LintAnalyzer, UnorderedFlowAndFloatReduction) {
  const std::string src =
      "double f(const std::unordered_map<int, double>& m) {\n"
      "  double total = 0.0;\n"
      "  for (const auto& kv : m) {\n"
      "    total += kv.second;\n"
      "  }\n"
      "  return total;\n"
      "}\n";
  const lint::FileFacts facts = lint::analyze_source(src, "src/cluster/x.cpp");
  const std::vector<std::string> fired = rules_fired(facts);
  EXPECT_EQ(fired, (std::vector<std::string>{"unordered-iteration",
                                             "float-order-reduction"}));
}

TEST(LintAnalyzer, SharedMutableStaticNeedsReachability) {
  lint::FileFacts header = lint::analyze_source(
      "static int g_count = 0;\n", "src/include/hcep/shared/c.hpp");
  ASSERT_EQ(header.mutable_statics.size(), 1u);
  EXPECT_TRUE(header.findings.empty());  // per-file pass never fires it

  lint::FileFacts plain_user = lint::analyze_source(
      "#include \"hcep/shared/c.hpp\"\nvoid f();\n", "src/cluster/a.cpp");
  lint::FileFacts shard_user = lint::analyze_source(
      "#include \"hcep/shared/c.hpp\"\nvoid g() { parallel_for(0, 4); }\n",
      "src/cluster/b.cpp");

  // Header + non-shard user: unreachable, no finding.
  EXPECT_TRUE(lint::project_findings({header, plain_user}).empty());
  // Header + shard user: reachable, fires.
  const std::vector<lint::Finding> cross =
      lint::project_findings({header, plain_user, shard_user});
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0].rule, "shared-mutable-static");
  EXPECT_EQ(cross[0].file, "src/include/hcep/shared/c.hpp");
}

// --- SARIF -------------------------------------------------------------------

TEST(LintSarif, ParsesWithOwnJsonParserAndCoversCatalog) {
  const std::vector<lint::Finding> findings = {
      {"src/a.cpp", 12, "rng-seed-flow", "message \"with quotes\""},
  };
  const std::string doc = lint::to_sarif(findings);
  const hcep::JsonValue root = hcep::JsonValue::parse(doc);

  EXPECT_EQ(root.at("version").as_string(), "2.1.0");
  const hcep::JsonValue& run = root.at("runs").at(std::size_t{0});
  const hcep::JsonValue& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").as_string(), "hcep-lint");

  // One descriptor per catalog rule, ids matching.
  const auto& catalog = lint::rule_catalog();
  ASSERT_EQ(driver.at("rules").size(), catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i)
    EXPECT_EQ(driver.at("rules").at(i).at("id").as_string(), catalog[i].id);

  const hcep::JsonValue& results = run.at("results");
  ASSERT_EQ(results.size(), 1u);
  const hcep::JsonValue& r0 = results.at(std::size_t{0});
  EXPECT_EQ(r0.at("ruleId").as_string(), "rng-seed-flow");
  EXPECT_EQ(r0.at("message").at("text").as_string(), "message \"with quotes\"");
  const hcep::JsonValue& loc =
      r0.at("locations").at(std::size_t{0}).at("physicalLocation");
  EXPECT_EQ(loc.at("artifactLocation").at("uri").as_string(), "src/a.cpp");
  EXPECT_EQ(loc.at("region").at("startLine").as_int(), 12);

  // Byte-stable for identical input: reports diff cleanly in CI.
  EXPECT_EQ(doc, lint::to_sarif(findings));
}

// --- Cache -------------------------------------------------------------------

TEST(LintCache, RoundTripAndInvalidation) {
  const std::string path =
      ::testing::TempDir() + "/hcep_lint_cache_test.txt";

  lint::FileFacts facts;
  facts.path = "src/a.cpp";
  facts.includes = {"hcep/util/units.hpp"};
  facts.uses_shard_markers = true;
  facts.mutable_statics.push_back({7, "g_x"});
  facts.findings.push_back({"src/a.cpp", 3, "banned-call", "msg\twith tab"});

  lint::CacheKey key{100, 555, lint::fnv1a64("content")};
  lint::ResultCache cache;
  cache.store("src/a.cpp", key, facts);
  ASSERT_TRUE(cache.save(path));

  const lint::ResultCache loaded = lint::ResultCache::load(path);
  ASSERT_EQ(loaded.entries(), 1u);

  // mtime+size fast path.
  auto hit = loaded.lookup("src/a.cpp", {100, 555, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->includes, facts.includes);
  EXPECT_TRUE(hit->uses_shard_markers);
  ASSERT_EQ(hit->findings.size(), 1u);
  EXPECT_EQ(hit->findings[0].message, "msg\twith tab");

  // mtime changed, same content hash: still a hit.
  EXPECT_TRUE(loaded.lookup("src/a.cpp", {100, 999, lint::fnv1a64("content")})
                  .has_value());
  // Content changed: miss.
  EXPECT_FALSE(loaded.lookup("src/a.cpp", {100, 999, lint::fnv1a64("edited")})
                   .has_value());
  // Unknown file: miss.
  EXPECT_FALSE(loaded.lookup("src/b.cpp", key).has_value());
}

TEST(LintCache, CorruptFileYieldsEmptyCache) {
  const std::string path = ::testing::TempDir() + "/hcep_lint_cache_bad.txt";
  {
    std::ofstream out(path);
    out << "not-a-cache\nfile\tx\t1\t2\t3\t0\n";
  }
  EXPECT_EQ(lint::ResultCache::load(path).entries(), 0u);
}

}  // namespace
