// Markdown report generation.
#include <gtest/gtest.h>

#include "hcep/analysis/report.hpp"
#include "hcep/util/error.hpp"

namespace {

using namespace hcep;
using namespace hcep::analysis;

TEST(MarkdownTable, BasicShape) {
  const std::string md =
      markdown_table({"a", "b"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
  EXPECT_NE(md.find("| 3 | 4 |"), std::string::npos);
}

TEST(MarkdownTable, Validation) {
  EXPECT_THROW((void)markdown_table({}, {}), PreconditionError);
  EXPECT_THROW((void)markdown_table({"a"}, {{"1", "2"}}),
               PreconditionError);
}

TEST(Report, RendersEverySection) {
  const core::PaperStudy study;
  const std::string report = render_report(study);

  EXPECT_NE(report.find("# hcep reproduction report"), std::string::npos);
  EXPECT_NE(report.find("## Table 4"), std::string::npos);
  EXPECT_NE(report.find("## Tables 6/7"), std::string::npos);
  EXPECT_NE(report.find("## Table 8"), std::string::npos);
  EXPECT_NE(report.find("Figures 9-12"), std::string::npos);
  EXPECT_NE(report.find("KnightShift"), std::string::npos);

  // Every program appears.
  for (const auto& name : workload::program_names())
    EXPECT_NE(report.find(name), std::string::npos) << name;

  // Key values show up: EP/A9 PPR and the five mixes.
  EXPECT_NE(report.find("6,048,057"), std::string::npos);
  EXPECT_NE(report.find("32A9:12K10"), std::string::npos);
  EXPECT_NE(report.find("25A9:7K10"), std::string::npos);
}

TEST(Report, FrontierOptionAddsFrontierSize) {
  const core::PaperStudy study;
  ReportOptions opts;
  opts.include_frontier = false;
  const std::string without = render_report(study, opts);
  EXPECT_EQ(without.find("frontier size"), std::string::npos);
}

TEST(Report, ObservabilityOptionAppendsTracedRunSection) {
  const core::PaperStudy study;
  const std::string without = render_report(study);
  EXPECT_EQ(without.find("## Observability"), std::string::npos);

  ReportOptions opts;
  opts.include_observability = true;
  const std::string with = render_report(study, opts);
  EXPECT_NE(with.find("## Observability"), std::string::npos);
#if HCEP_OBS
  // The traced-run profile and the energy-attribution cross-check
  // render when the instrumentation is compiled in.
  EXPECT_NE(with.find("cluster:job"), std::string::npos);
  EXPECT_NE(with.find("Queue decomposition"), std::string::npos);
  EXPECT_NE(with.find("Windowed energy attribution"), std::string::npos);
#endif
}

TEST(Report, TrafficOptionAppendsRequestLevelSection) {
  const core::PaperStudy study;
  const std::string without = render_report(study);
  EXPECT_EQ(without.find("## Traffic"), std::string::npos);

  ReportOptions opts;
  opts.include_traffic = true;
  const std::string with = render_report(study, opts);
  EXPECT_NE(with.find("## Traffic"), std::string::npos);
  EXPECT_NE(with.find("Ledger:"), std::string::npos);
  EXPECT_NE(with.find("queue wait"), std::string::npos);
  EXPECT_NE(with.find("p95 SLO met"), std::string::npos);
  EXPECT_NE(with.find("memcached"), std::string::npos);
  // Deterministic: two renders are byte-identical.
  EXPECT_EQ(with, render_report(study, opts));
}

}  // namespace
