// Scale-out phase-granular simulator: per-node channels must reconcile
// with the analytic model's energy algebra.
#include <gtest/gtest.h>

#include "hcep/cluster/scaleout_sim.hpp"
#include "hcep/queueing/md1.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::cluster;

const std::vector<workload::Workload>& catalog() {
  static const auto kCatalog = workload::paper_workloads();
  return kCatalog;
}

class EveryProgram : public ::testing::TestWithParam<int> {
 protected:
  const workload::Workload& w() const { return catalog()[GetParam()]; }
};

TEST_P(EveryProgram, AveragePowerMatchesModelAtRealizedUtilization) {
  model::TimeEnergyModel m(model::make_a9_k10_cluster(3, 2), w());
  ScaleoutOptions opts;
  opts.utilization = 0.5;
  opts.min_jobs = 400;
  const ScaleoutResult r = simulate_scaleout(m, opts);
  const double model_power =
      m.average_power(r.measured_utilization).value();
  EXPECT_NEAR(r.average_power.value(), model_power, model_power * 0.02)
      << w().name;
}

TEST_P(EveryProgram, PerNodeEnergyReconcilesWithGroupAlgebra) {
  // Channel energy = idle*window + jobs * (unit_energy - idle*unit_time)
  // per node; cross-check against the model's group energies.
  model::TimeEnergyModel m(model::make_a9_k10_cluster(2, 1), w());
  ScaleoutOptions opts;
  opts.utilization = 0.4;
  opts.min_jobs = 200;
  const ScaleoutResult r = simulate_scaleout(m, opts);
  const model::TimeResult split = m.execution_time(w().units_per_job);
  const model::EnergyResult energy = m.job_energy(w().units_per_job);

  for (std::size_t i = 0; i < r.channels.size(); ++i) {
    const auto& ch = r.channels[i];
    const auto& group = m.cluster().groups[i];
    // Per job per node: dynamic energy above the idle floor.
    const double group_dynamic_per_node =
        (energy.groups[i].total() - energy.groups[i].idle).value() /
        static_cast<double>(group.count);
    const double expected =
        group.spec.power.idle.value() * r.window.value() +
        static_cast<double>(r.jobs_completed) * group_dynamic_per_node;
    EXPECT_NEAR(ch.energy_per_node.value(), expected, expected * 1e-6)
        << w().name << "/" << ch.node_name;
  }
}

TEST_P(EveryProgram, MeteredChannelsTrackExactChannels) {
  model::TimeEnergyModel m(model::make_a9_k10_cluster(2, 1), w());
  const ScaleoutResult r = simulate_scaleout(m, {});
  for (const auto& ch : r.channels) {
    // The 10 Hz meter aliases against millisecond phase steps, so the
    // tolerance is wider than the instrument's accuracy class.
    EXPECT_NEAR(ch.metered_energy_per_node.value(),
                ch.energy_per_node.value(),
                ch.energy_per_node.value() * 0.05 + 1.0)
        << ch.node_name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSix, EveryProgram, ::testing::Range(0, 6));

TEST(Scaleout, IdleWindowIsIdleFloorExactly) {
  model::TimeEnergyModel m(model::make_a9_k10_cluster(2, 1),
                           catalog().front());
  ScaleoutOptions opts;
  opts.utilization = 0.0;
  opts.min_jobs = 10;
  const ScaleoutResult r = simulate_scaleout(m, opts);
  EXPECT_EQ(r.jobs_completed, 0u);
  EXPECT_NEAR(r.average_power.value(), m.idle_power().value(), 1e-9);
}

TEST(Scaleout, ResponsesMatchJobLevelSimulatorStatistics) {
  // Same M/D/1 discipline as the job-level simulator: the percentiles
  // must land close for the same utilization.
  const auto& ep = catalog().front();
  model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), ep);
  ScaleoutOptions opts;
  opts.utilization = 0.6;
  opts.min_jobs = 3000;
  const ScaleoutResult r = simulate_scaleout(m, opts);
  const Seconds service = m.execution_time(ep.units_per_job).t_p;
  const queueing::MD1 q =
      queueing::MD1::from_utilization(service, opts.utilization);
  EXPECT_NEAR(r.p95_response.value(), q.response_percentile(95.0).value(),
              q.response_percentile(95.0).value() * 0.15);
}

TEST(Scaleout, Validation) {
  model::TimeEnergyModel m(model::make_a9_k10_cluster(1, 0),
                           catalog().front());
  ScaleoutOptions opts;
  opts.utilization = 1.0;
  EXPECT_THROW((void)simulate_scaleout(m, opts), PreconditionError);
  opts.utilization = 0.5;
  opts.min_jobs = 0;
  EXPECT_THROW((void)simulate_scaleout(m, opts), PreconditionError);
}

}  // namespace
