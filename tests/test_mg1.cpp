// M/G/1 queueing: P-K with SCV, moments, gamma-approximated percentiles
// cross-checked against simulation and the M/D/1 / M/M/1 specializations.
#include <gtest/gtest.h>

#include <cmath>

#include "hcep/queueing/md1.hpp"
#include "hcep/queueing/mg1.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/math.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/util/stats.hpp"

namespace {

using namespace hcep;
using namespace hcep::queueing;
using namespace hcep::literals;

TEST(GammaP, ReferenceValues) {
  // P(1, x) = 1 - e^-x (exponential CDF).
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << x;
  }
  // P(a, 0) = 0 and P -> 1 for large x.
  EXPECT_DOUBLE_EQ(gamma_p(2.5, 0.0), 0.0);
  EXPECT_NEAR(gamma_p(2.5, 100.0), 1.0, 1e-12);
  // Median of gamma(shape=2): P(2, x*) = 0.5 at x* ~ 1.6783.
  EXPECT_NEAR(gamma_p(2.0, 1.67835), 0.5, 1e-4);
  EXPECT_THROW((void)gamma_p(0.0, 1.0), PreconditionError);
  EXPECT_THROW((void)gamma_p(1.0, -1.0), PreconditionError);
}

TEST(RngGamma, MomentsMatch) {
  Rng rng(21);
  for (double shape : {0.5, 1.0, 4.0}) {
    const double scale = 2.0;
    RunningStats s;
    for (int i = 0; i < 200000; ++i) s.add(rng.gamma(shape, scale));
    EXPECT_NEAR(s.mean(), shape * scale, shape * scale * 0.02) << shape;
    EXPECT_NEAR(s.variance(), shape * scale * scale,
                shape * scale * scale * 0.06)
        << shape;
  }
}

TEST(MG1, ScvZeroMatchesMD1) {
  const MD1 d = MD1::from_utilization(10_ms, 0.7);
  const MG1 g = MG1::from_utilization(10_ms, 0.7, 0.0);
  EXPECT_NEAR(g.mean_wait().value(), d.mean_wait().value(), 1e-15);
  // CDF atom agrees.
  EXPECT_NEAR(g.wait_cdf(0_s), 0.3, 1e-12);
}

TEST(MG1, ScvOneMatchesMM1MeanWait) {
  // M/M/1: W = rho S / (1 - rho) — exactly the P-K value at SCV = 1.
  const MG1 g = MG1::from_utilization(10_ms, 0.6, 1.0);
  EXPECT_NEAR(g.mean_wait().value(), 0.6 * 0.010 / 0.4, 1e-15);
}

TEST(MG1, ScvOnePercentileIsExactExponential) {
  // At SCV = 1 the conditional wait is exponential and the two-moment
  // gamma fit is exact: P(W <= t) = 1 - rho e^{-(mu - lam) t}.
  const double rho = 0.5;
  const Seconds s = 10_ms;
  const MG1 g = MG1::from_utilization(s, rho, 1.0);
  const double mu = 1.0 / s.value();
  const double lam = rho * mu;
  for (double t : {0.005, 0.02, 0.05}) {
    const double exact = 1.0 - rho * std::exp(-(mu - lam) * t);
    EXPECT_NEAR(g.wait_cdf(Seconds{t}), exact, 1e-9) << t;
  }
}

class ScvSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScvSweep, PercentilesTrackSimulation) {
  const double scv = GetParam();
  const Seconds s = 10_ms;
  const double rho = 0.7;
  const MG1 g = MG1::from_utilization(s, rho, scv);
  const auto sim = simulate_mg1(s, rho / s.value(), scv, 200000, 17);
  EXPECT_NEAR(sim.mean_wait_s, g.mean_wait().value(),
              g.mean_wait().value() * 0.05)
      << "scv=" << scv;
  EXPECT_NEAR(sim.p95_response_s, g.response_percentile(95.0).value(),
              g.response_percentile(95.0).value() * 0.08)
      << "scv=" << scv;
}

INSTANTIATE_TEST_SUITE_P(Scvs, ScvSweep,
                         ::testing::Values(0.0, 0.05, 0.25, 1.0, 2.0));

TEST(MG1, WaitGrowsWithScv) {
  double prev = 0.0;
  for (double scv : {0.0, 0.5, 1.0, 2.0}) {
    const MG1 g = MG1::from_utilization(10_ms, 0.8, scv);
    EXPECT_GT(g.mean_wait().value(), prev);
    prev = g.mean_wait().value();
  }
}

TEST(MG1, VarianceReducesToKnownCases) {
  // M/M/1 waiting-time variance: rho (2 - rho) / (mu - lam)^2... use the
  // standard result Var(W) = (2 - rho) rho / ((1-rho)^2 mu^2) for M/M/1.
  const double rho = 0.5;
  const double mu = 100.0;
  const MG1 g(Seconds{1.0 / mu}, rho * mu, 1.0);
  const double expected = rho * (2.0 - rho) / ((1.0 - rho) * (1.0 - rho)) /
                          (mu * mu);
  EXPECT_NEAR(g.wait_variance(), expected, expected * 1e-9);
}

TEST(MG1, PercentileInvertsCdf) {
  const MG1 g = MG1::from_utilization(1_s, 0.75, 0.3);
  for (double p : {50.0, 90.0, 99.0}) {
    const Seconds t = g.wait_percentile(p);
    EXPECT_NEAR(g.wait_cdf(t), p / 100.0, 1e-6) << p;
  }
  EXPECT_DOUBLE_EQ(
      MG1::from_utilization(1_s, 0.3, 0.5).wait_percentile(50.0).value(),
      0.0);  // below the atom
}

TEST(MG1, Validation) {
  EXPECT_THROW(MG1(0_s, 1.0, 0.0), PreconditionError);
  EXPECT_THROW(MG1(1_s, 1.0, 0.0), PreconditionError);
  EXPECT_THROW(MG1(1_s, 0.5, -0.1), PreconditionError);
  EXPECT_THROW((void)simulate_mg1(1_s, 0.5, -1.0, 10), PreconditionError);
  EXPECT_THROW((void)simulate_mg1(1_s, 0.5, 0.0, 0), PreconditionError);
}

}  // namespace
