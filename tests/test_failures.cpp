// Failure injection: availability, response inflation and power under
// node failures.
#include <gtest/gtest.h>

#include "hcep/cluster/failures.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::cluster;
using namespace hcep::literals;

const workload::Workload& ep() {
  static const workload::Workload kEp = workload::make_workload("EP");
  return kEp;
}

model::TimeEnergyModel ep_model() {
  return {model::make_a9_k10_cluster(4, 2), ep()};
}

TEST(Failures, NoFailuresReproducesHealthyCluster) {
  const auto m = ep_model();
  FailureOptions opts;
  opts.node_mtbf = Seconds{1e12};  // effectively never fails
  opts.min_jobs = 400;
  const auto r = simulate_with_failures(m, opts);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  EXPECT_NEAR(r.service_inflation, 1.0, 1e-9);
  // Average power matches the linear model at the realized utilization.
  const double realized =
      static_cast<double>(r.jobs_completed) *
      m.execution_time(ep().units_per_job).t_p.value() / r.window.value();
  EXPECT_NEAR(r.average_power.value(),
              m.average_power(std::min(realized, 1.0)).value(),
              m.average_power(0.5).value() * 0.05);
}

TEST(Failures, AvailabilityMatchesRenewalTheory) {
  const auto m = ep_model();
  FailureOptions opts;
  opts.node_mtbf = Seconds{50.0};
  opts.repair_time = Seconds{10.0};
  opts.utilization = 0.3;
  opts.min_jobs = 3000;  // long window for the time average
  const auto r = simulate_with_failures(m, opts);
  // Steady-state availability = MTBF / (MTBF + MTTR) = 50/60.
  EXPECT_NEAR(r.availability, 50.0 / 60.0, 0.05);
  EXPECT_GT(r.failures, 10u);
}

TEST(Failures, FailuresInflateServiceAndResponse) {
  const auto m = ep_model();
  FailureOptions healthy;
  healthy.node_mtbf = Seconds{1e12};
  healthy.min_jobs = 600;
  FailureOptions flaky = healthy;
  flaky.node_mtbf = Seconds{20.0};
  flaky.repair_time = Seconds{5.0};

  const auto a = simulate_with_failures(m, healthy);
  const auto b = simulate_with_failures(m, flaky);
  EXPECT_GT(b.service_inflation, 1.02);
  EXPECT_GT(b.p95_response.value(), a.p95_response.value());
}

TEST(Failures, DownNodesDrawNoPower) {
  // With very frequent failures the average power must sit clearly below
  // the healthy cluster's at the same offered load.
  const auto m = ep_model();
  FailureOptions healthy;
  healthy.node_mtbf = Seconds{1e12};
  healthy.utilization = 0.2;
  healthy.min_jobs = 800;
  FailureOptions flaky = healthy;
  flaky.node_mtbf = Seconds{10.0};
  flaky.repair_time = Seconds{10.0};  // ~50 % availability

  const auto a = simulate_with_failures(m, healthy);
  const auto b = simulate_with_failures(m, flaky);
  EXPECT_LT(b.average_power.value(), a.average_power.value() * 0.75);
}

TEST(Failures, DeterministicForFixedSeed) {
  const auto m = ep_model();
  FailureOptions opts;
  opts.node_mtbf = Seconds{30.0};
  opts.repair_time = Seconds{5.0};
  opts.min_jobs = 300;
  const auto a = simulate_with_failures(m, opts);
  const auto b = simulate_with_failures(m, opts);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.energy.value(), b.energy.value());
  EXPECT_DOUBLE_EQ(a.p95_response.value(), b.p95_response.value());
}

TEST(Failures, Validation) {
  const auto m = ep_model();
  FailureOptions opts;
  opts.utilization = 1.0;
  EXPECT_THROW((void)simulate_with_failures(m, opts), PreconditionError);
  opts.utilization = 0.5;
  opts.min_jobs = 0;
  EXPECT_THROW((void)simulate_with_failures(m, opts), PreconditionError);
  opts.min_jobs = 10;
  opts.node_mtbf = Seconds{0.0};
  EXPECT_THROW((void)simulate_with_failures(m, opts), PreconditionError);
}

}  // namespace
