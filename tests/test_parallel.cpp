// Thread pool and parallel loop helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "hcep/parallel/thread_pool.hpp"

namespace {

using namespace hcep;

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeReflectsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { ++hits[i]; }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SmallRangeRunsInline) {
  ThreadPool pool(2);
  int count = 0;  // non-atomic: safe only if inline
  parallel_for(pool, 0, 4, [&](std::size_t) { ++count; }, 64);
  EXPECT_EQ(count, 4);
}

TEST(ParallelFor, MinBlockLargerThanRangeRunsInline) {
  ThreadPool pool(4);
  int count = 0;  // non-atomic: safe only if inline
  parallel_for(pool, 0, 100, [&](std::size_t) { ++count; }, 1000);
  EXPECT_EQ(count, 100);
}

TEST(ParallelFor, NestedCallsFromWorkersRunInlineWithoutDeadlock) {
  // A parallel_for issued from inside a pool worker used to enqueue
  // blocks back onto the same (busy) pool and wait — with every worker
  // waiting, nothing drained the queue. Nested calls now detect the
  // worker-thread context and execute inline.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  parallel_for(
      pool, 0, 8,
      [&](std::size_t) {
        parallel_for(
            pool, 0, 100, [&](std::size_t) { ++inner_total; }, 1);
      },
      1);
  EXPECT_EQ(inner_total.load(), 8 * 100);
}

TEST(ParallelFor, DeeplyNestedCallsComplete) {
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  parallel_for(
      pool, 0, 4,
      [&](std::size_t) {
        parallel_for(
            pool, 0, 4,
            [&](std::size_t) {
              parallel_for(pool, 0, 4, [&](std::size_t) { ++leaf; }, 1);
            },
            1);
      },
      1);
  EXPECT_EQ(leaf.load(), 4 * 4 * 4);
}

TEST(ParallelReduce, NestedCallsFromWorkersRunInline) {
  ThreadPool pool(2);
  const auto total = parallel_reduce<long long>(
      pool, 0, 16, 0LL,
      [&](std::size_t) {
        return parallel_reduce<long long>(
            pool, 1, 11, 0LL,
            [](std::size_t i) { return static_cast<long long>(i); },
            [](long long a, long long b) { return a + b; }, 1);
      },
      [](long long a, long long b) { return a + b; }, 1);
  EXPECT_EQ(total, 16 * 55);
}

TEST(ParallelFor, NestedExceptionPropagatesToOuterCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(
          pool, 0, 8,
          [&](std::size_t) {
            parallel_for(
                pool, 0, 50,
                [](std::size_t i) {
                  if (i == 33) throw std::runtime_error("nested boom");
                },
                1);
          },
          1),
      std::runtime_error);
}

TEST(ThreadPool, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  auto f = pool.submit([&] { return pool.on_worker_thread(); });
  EXPECT_TRUE(f.get());
  // Workers of one pool are not workers of another.
  ThreadPool other(1);
  auto g = pool.submit([&] { return other.on_worker_thread(); });
  EXPECT_FALSE(g.get());
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(
          pool, 0, 1000,
          [](std::size_t i) {
            if (i == 777) throw std::runtime_error("at 777");
          },
          8),
      std::runtime_error);
}

TEST(ParallelReduce, SumsRange) {
  ThreadPool pool(4);
  const auto total = parallel_reduce<long long>(
      pool, 1, 1001, 0LL,
      [](std::size_t i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; }, 16);
  EXPECT_EQ(total, 500500LL);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const auto v = parallel_reduce<int>(
      pool, 3, 3, -7, [](std::size_t) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(v, -7);
}

TEST(GlobalPool, Works) {
  std::atomic<int> counter{0};
  parallel_for(0, 100, [&](std::size_t) { ++counter; }, 4);
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
