// M/D/1 analytics: Pollaczek-Khinchine, exact waiting CDF, percentiles —
// cross-validated against event-driven simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "hcep/queueing/md1.hpp"
#include "hcep/util/error.hpp"

namespace {

using namespace hcep;
using namespace hcep::queueing;
using namespace hcep::literals;

TEST(MD1, UtilizationIsLambdaTimesService) {
  const MD1 q(10_ms, 50.0);
  EXPECT_DOUBLE_EQ(q.utilization(), 0.5);
  EXPECT_DOUBLE_EQ(q.service().value(), 0.010);
  EXPECT_DOUBLE_EQ(q.arrival_rate(), 50.0);
}

TEST(MD1, FromUtilization) {
  const MD1 q = MD1::from_utilization(10_ms, 0.8);
  EXPECT_NEAR(q.utilization(), 0.8, 1e-12);
}

TEST(MD1, PollaczekKhinchineMeanWait) {
  // W = rho S / (2 (1 - rho)); at rho = 0.5, W = S / 2.
  const MD1 q = MD1::from_utilization(10_ms, 0.5);
  EXPECT_NEAR(q.mean_wait().value(), 0.005, 1e-12);
  EXPECT_NEAR(q.mean_response().value(), 0.015, 1e-12);
}

TEST(MD1, LittlesLaw) {
  const MD1 q = MD1::from_utilization(10_ms, 0.7);
  EXPECT_NEAR(q.mean_in_system(),
              q.arrival_rate() * q.mean_response().value(), 1e-12);
}

TEST(MD1, ZeroArrivalRateMeansNoWait) {
  const MD1 q(10_ms, 0.0);
  EXPECT_DOUBLE_EQ(q.mean_wait().value(), 0.0);
  EXPECT_DOUBLE_EQ(q.wait_cdf(0_s), 1.0);
}

TEST(MD1, WaitCdfAtomAtZeroIsOneMinusRho) {
  for (double rho : {0.2, 0.5, 0.8}) {
    const MD1 q = MD1::from_utilization(1_s, rho);
    EXPECT_NEAR(q.wait_cdf(0_s), 1.0 - rho, 1e-9) << "rho=" << rho;
  }
}

TEST(MD1, WaitCdfIsMonotoneAndBounded) {
  const MD1 q = MD1::from_utilization(1_s, 0.8);
  double prev = -1.0;
  for (double t = 0.0; t <= 30.0; t += 0.5) {
    const double c = q.wait_cdf(Seconds{t});
    // The alternating series leaves ~1e-9 cancellation noise deep in the
    // tail (lambda*t ~ 24 here); monotone up to that.
    EXPECT_GE(c, prev - 1e-8);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_LT(q.wait_cdf(Seconds{-1.0}), 1e-12);
}

TEST(MD1, MeanWaitConsistentWithCdf) {
  // Integrate the complementary CDF numerically and compare to P-K.
  const MD1 q = MD1::from_utilization(1_s, 0.6);
  double mean = 0.0;
  const double dt = 0.005;
  for (double t = 0.0; t < 40.0; t += dt)
    mean += (1.0 - q.wait_cdf(Seconds{t + dt / 2})) * dt;
  EXPECT_NEAR(mean, q.mean_wait().value(), 0.01);
}

class MD1SimCrossCheck : public ::testing::TestWithParam<double> {};

TEST_P(MD1SimCrossCheck, AnalyticMatchesSimulation) {
  const double rho = GetParam();
  const Seconds service = 10_ms;
  const MD1 q = MD1::from_utilization(service, rho);
  const QueueSimResult sim =
      simulate_md1(service, rho / service.value(), 200000, 5);

  EXPECT_NEAR(sim.mean_wait_s, q.mean_wait().value(),
              q.mean_wait().value() * 0.10 + 1e-5);
  EXPECT_NEAR(sim.p95_response_s, q.response_percentile(95.0).value(),
              q.response_percentile(95.0).value() * 0.10);
  EXPECT_NEAR(sim.measured_utilization, rho, 0.02);
}

INSTANTIATE_TEST_SUITE_P(RhoSweep, MD1SimCrossCheck,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.85, 0.95));

TEST(MD1, PercentileInvertsCdf) {
  const MD1 q = MD1::from_utilization(1_s, 0.75);
  for (double p : {50.0, 90.0, 95.0, 99.0}) {
    const Seconds t = q.wait_percentile(p);
    EXPECT_NEAR(q.wait_cdf(t), p / 100.0, 1e-6) << "p=" << p;
  }
}

TEST(MD1, PercentileBelowAtomIsZero) {
  const MD1 q = MD1::from_utilization(1_s, 0.3);  // P(W=0) = 0.7
  EXPECT_DOUBLE_EQ(q.wait_percentile(50.0).value(), 0.0);
  EXPECT_GT(q.wait_percentile(90.0).value(), 0.0);
}

TEST(MD1, ResponsePercentileAddsService) {
  const MD1 q = MD1::from_utilization(2_s, 0.6);
  EXPECT_NEAR(q.response_percentile(95.0).value(),
              q.wait_percentile(95.0).value() + 2.0, 1e-9);
}

TEST(MD1, HighRhoTailPathIsUsable) {
  // lambda * t beyond the direct-series limit exercises the geometric
  // tail; CDF must stay monotone and reach ~1.
  const MD1 q = MD1::from_utilization(1_s, 0.97);
  const double far = q.wait_cdf(Seconds{300.0});
  EXPECT_GT(far, 0.999);
  EXPECT_LE(far, 1.0);
  const Seconds p99 = q.wait_percentile(99.0);
  EXPECT_GT(p99.value(), q.mean_wait().value());
}

TEST(MD1, ExtremeRhoCdfIsMonotone) {
  // Regression: the geometric-tail constant used to be anchored on the
  // alternating series' value at the switchover point, whose cancellation
  // noise leaked into the far tail at rho >= 0.98. With the exact
  // pole-residue constant the CDF must be monotone through the series
  // region, across the switchover and arbitrarily deep into the tail.
  for (double rho : {0.98, 0.99, 0.995}) {
    const MD1 q = MD1::from_utilization(1_s, rho);
    double prev = 0.0;
    for (double t = 0.0; t <= 4000.0; t += 2.0) {
      const double cdf = q.wait_cdf(Seconds{t});
      EXPECT_GE(cdf, prev) << "rho=" << rho << " t=" << t;
      EXPECT_LE(cdf, 1.0) << "rho=" << rho << " t=" << t;
      prev = cdf;
    }
    EXPECT_GT(prev, 0.999) << "rho=" << rho;
    // Fine grid across the series-to-tail switchover (lambda * t = 18).
    prev = 0.0;
    for (double t = 15.0; t <= 22.0; t += 0.01) {
      const double cdf = q.wait_cdf(Seconds{t});
      EXPECT_GE(cdf, prev) << "rho=" << rho << " t=" << t;
      prev = cdf;
    }
  }
}

TEST(MD1, ExtremePercentileRoundTrip) {
  // Regression: p >= 99.9 at rho >= 0.98 lands deep in the geometric
  // tail, where bisecting a 1 - epsilon plateau used to lose precision;
  // the analytic inversion must round-trip through wait_cdf to within a
  // sliver of the tail mass it targets.
  for (double rho : {0.98, 0.99, 0.995}) {
    const MD1 q = MD1::from_utilization(1_s, rho);
    double prev_t = 0.0;
    for (double p : {99.0, 99.9, 99.99, 99.999}) {
      const Seconds t = q.wait_percentile(p);
      EXPECT_GT(t.value(), prev_t) << "rho=" << rho << " p=" << p;
      const double back = q.wait_cdf(t);
      EXPECT_NEAR(back, p / 100.0, (1.0 - p / 100.0) * 1e-6)
          << "rho=" << rho << " p=" << p;
      prev_t = t.value();
    }
  }
}

TEST(MD1, Validation) {
  EXPECT_THROW(MD1(0_s, 1.0), PreconditionError);
  EXPECT_THROW(MD1(1_s, 1.0), PreconditionError);  // rho = 1
  EXPECT_THROW(MD1(1_s, -0.1), PreconditionError);
  EXPECT_THROW((void)MD1::from_utilization(1_s, 1.0), PreconditionError);
  const MD1 q = MD1::from_utilization(1_s, 0.5);
  EXPECT_THROW((void)q.wait_percentile(0.0), PreconditionError);
  EXPECT_THROW((void)q.wait_percentile(100.0), PreconditionError);
}

TEST(MM1, MeanWaitIsTwiceMD1) {
  // Deterministic service halves the P-K waiting time.
  const MD1 d = MD1::from_utilization(10_ms, 0.6);
  const MM1 m(10_ms, 60.0);
  EXPECT_NEAR(m.mean_wait().value(), 2.0 * d.mean_wait().value(), 1e-12);
}

TEST(MM1, ResponseIsExponential) {
  const MM1 m(10_ms, 50.0);  // rho = 0.5, mu - lambda = 50
  EXPECT_NEAR(m.response_cdf(Seconds{1.0 / 50.0}), 1.0 - std::exp(-1.0),
              1e-12);
  EXPECT_NEAR(m.response_percentile(95.0).value(), -std::log(0.05) / 50.0,
              1e-12);
}

TEST(MM1, Validation) {
  EXPECT_THROW(MM1(0_s, 1.0), PreconditionError);
  EXPECT_THROW(MM1(1_s, 1.0), PreconditionError);
  const MM1 m(1_s, 0.5);
  EXPECT_THROW((void)m.response_percentile(100.0), PreconditionError);
}

TEST(SimulateMD1, Validation) {
  EXPECT_THROW((void)simulate_md1(0_s, 1.0, 10), PreconditionError);
  EXPECT_THROW((void)simulate_md1(1_s, 0.5, 0), PreconditionError);
}

}  // namespace
