// hcep::control — closed-loop energy control under live traffic.
//
// Two pillars:
//  1. The frozen-controller ORACLE: installing a controller that never
//     actuates must reproduce the open-loop TrafficResult byte-for-byte
//     (same JSON bytes, same energy bits). This pins the entire control
//     machinery — tick scheduling, window accounting, energy arithmetic —
//     as a zero-cost observer, so any behavioral difference in a real
//     controlled run is attributable to its actuations alone.
//  2. The KEYSTONE: under diurnal and MMPP load, the closed-loop
//     power-gating run beats every static Table 8 mix (the paper's 1 kW
//     budget fleet sweep) on energy-per-request while still meeting the
//     same p99-vs-SLO bar — reproducing the paper's energy-
//     proportionality thesis as an online result rather than an offline
//     sweep. Reproducible from the CLI: `hcep control`.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "hcep/config/budget.hpp"
#include "hcep/control/controller.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/control/controllers.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::traffic;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

std::vector<TrafficClass> one_class(const std::string& name = "EP") {
  return {TrafficClass{wl(name), 1.0, SloTarget{}}};
}

// ---------------------------------------------------------------- oracle

/// Open-loop vs frozen-controller runs must be byte-identical: same JSON
/// bytes and bitwise-equal energy. Exercised over every code path the
/// control plane hooks: plain runs, admission + retries, multi-class,
/// and sharded execution.
struct OracleCase {
  const char* label;
  std::size_t shards;
  bool admission;
  bool multi_class;
};

class FrozenOracle : public ::testing::TestWithParam<OracleCase> {};

TEST_P(FrozenOracle, ReproducesOpenLoopByteIdentically) {
  const OracleCase& c = GetParam();
  const auto cluster = model::make_a9_k10_cluster(4, 2);
  std::vector<TrafficClass> classes =
      c.multi_class ? std::vector<TrafficClass>{
                          TrafficClass{wl("EP"), 3.0, SloTarget{}},
                          TrafficClass{wl("memcached"), 1.0,
                                       SloTarget{Seconds{0.05}, 0.95}}}
                    : one_class();

  TrafficOptions open;
  open.requests = 4000;
  open.seed = 20260809;
  open.shards = c.shards;
  if (c.admission) {
    open.admission.bucket_rate_per_s = 60.0;
    open.admission.bucket_burst = 20.0;
    open.admission.max_queue_depth = 6;
    open.retry.max_attempts = 3;
    open.retry.base_backoff = Seconds{0.01};
  }

  TrafficOptions frozen = open;
  frozen.control.controller = control::make_frozen();
  frozen.control.period = Seconds{2.0};
  frozen.control.record_power_trace = true;

  const auto arrivals = make_bursty(40.0, Seconds{3.0}, 250.0, Seconds{0.5});
  const auto a = simulate_traffic(cluster, classes, *arrivals, open);
  const auto b = simulate_traffic(cluster, classes, *arrivals, frozen);

  // The core result document is byte-identical...
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump()) << c.label;
  // ...including the bits of every energy figure.
  EXPECT_EQ(a.energy.value(), b.energy.value()) << c.label;
  EXPECT_EQ(a.energy_per_request.value(), b.energy_per_request.value());
  ASSERT_EQ(a.classes.size(), b.classes.size());
  for (std::size_t i = 0; i < a.classes.size(); ++i) {
    EXPECT_EQ(a.classes[i].energy_per_request.value(),
              b.classes[i].energy_per_request.value())
        << c.label << " class " << i;
  }

  // The frozen run still ticked — and ledgered zero actuations.
  EXPECT_FALSE(a.control.enabled);
  EXPECT_TRUE(b.control.enabled);
  EXPECT_EQ(b.control.controller, "frozen");
  EXPECT_GT(b.control.ticks, 0u);
  EXPECT_EQ(b.control.sleeps, 0u);
  EXPECT_EQ(b.control.wakes, 0u);
  EXPECT_EQ(b.control.point_changes, 0u);
  EXPECT_EQ(b.control.gating_savings.value(), 0.0);
  EXPECT_EQ(b.control.wake_energy.value(), 0.0);
  EXPECT_TRUE(b.control.all_dispatches_available);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, FrozenOracle,
    ::testing::Values(OracleCase{"plain", 1, false, false},
                      OracleCase{"admission", 1, true, false},
                      OracleCase{"multiclass", 1, false, true},
                      OracleCase{"sharded", 3, false, false},
                      OracleCase{"sharded_admission", 3, true, true}),
    [](const auto& inst) { return std::string(inst.param.label); });

// ---------------------------------------------------------- determinism

TEST(Control, SameSeedControlledRunsAreByteIdentical) {
  const auto cluster = model::make_a9_k10_cluster(8, 2);
  TrafficOptions options;
  options.requests = 6000;
  options.seed = 13;
  options.control.controller = control::make_power_gate({});
  options.control.period = Seconds{2.0};
  options.control.wake_delay = Seconds{1.0};
  options.control.record_power_trace = true;
  const auto run = [&]() {
    return simulate_traffic(cluster, one_class(),
                            *make_diurnal(30.0, 0.6, Seconds{30.0}), options);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(a.control.to_json().dump(), b.control.to_json().dump());
  EXPECT_EQ(a.control.gating_savings.value(),
            b.control.gating_savings.value());
}

TEST(Control, ControlledShardsSerialAndParallelAreByteIdentical) {
  const auto cluster = model::make_a9_k10_cluster(8, 4);
  TrafficOptions options;
  options.requests = 12000;
  options.seed = 21;
  options.shards = 3;
  options.control.controller = control::make_power_gate({});
  options.control.period = Seconds{1.0};
  options.control.wake_delay = Seconds{0.5};
  const auto par = simulate_traffic(cluster, one_class(),
                                    *make_poisson(200.0), options);
  options.parallel_shards = false;
  const auto ser = simulate_traffic(cluster, one_class(),
                                    *make_poisson(200.0), options);
  EXPECT_EQ(par.to_json().dump(), ser.to_json().dump());
  EXPECT_EQ(par.control.to_json().dump(), ser.control.to_json().dump());
}

// ------------------------------------------------------------ behaviors

TEST(Control, PowerGatingSavesEnergyUnderLowLoad) {
  // A lightly loaded fleet: the autoscaler must park nodes and convert
  // idle floor into gating savings without losing a single request.
  const auto cluster = model::make_a9_k10_cluster(8, 2);
  TrafficOptions open;
  open.requests = 6000;
  open.seed = 5;
  TrafficOptions gated = open;
  gated.control.controller = control::make_power_gate({});
  gated.control.period = Seconds{2.0};
  gated.control.wake_delay = Seconds{1.0};

  const auto arrivals = make_diurnal(25.0, 0.6, Seconds{60.0});
  const auto base = simulate_traffic(cluster, one_class(), *arrivals, open);
  const auto r = simulate_traffic(cluster, one_class(), *arrivals, gated);

  EXPECT_EQ(r.completed, open.requests);
  EXPECT_GT(r.control.sleeps, 0u);
  EXPECT_GT(r.control.gating_savings.value(), 0.0);
  EXPECT_TRUE(r.control.all_dispatches_available);
  EXPECT_LT(r.energy.value(), base.energy.value());
  // The savings are real joules, not accounting noise: at least the
  // wake penalties were recovered several times over.
  EXPECT_GT(r.control.gating_savings.value(),
            2.0 * r.control.wake_energy.value());
}

TEST(Control, DvfsGovernorTradesFrequencyForLatencyHeadroom) {
  // Generous SLO at low utilization: the governor must step nodes down
  // to cheaper operating points (point changes > 0) and cut energy; the
  // p99 must stay within the SLO it was given headroom against.
  const auto cluster = model::make_a9_k10_cluster(4, 2);
  auto classes = one_class();
  const double capacity = cluster_capacity_per_s(cluster, classes);
  classes[0].slo = SloTarget{Seconds{400.0 / capacity}, 0.99};

  TrafficOptions open;
  open.requests = 6000;
  open.seed = 3;
  TrafficOptions paced = open;
  paced.control.controller = control::make_dvfs_governor({});
  paced.control.period = Seconds{2.0};

  const auto arrivals = make_poisson(0.2 * capacity);
  const auto base = simulate_traffic(cluster, classes, *arrivals, open);
  const auto r = simulate_traffic(cluster, classes, *arrivals, paced);

  EXPECT_EQ(r.completed, open.requests);
  EXPECT_GT(r.control.point_changes, 0u);
  EXPECT_EQ(r.control.sleeps, 0u);  // the governor never gates
  EXPECT_LT(r.energy.value(), base.energy.value());
  EXPECT_LE(r.sojourn.p99.value(), classes[0].slo.latency.value());
}

TEST(Control, PowerCapThrottlesBeforeShedding) {
  // Cap set below the fleet's worst-case draw at full frequency but
  // above it at min frequency: the enforcer must throttle operating
  // points, never shed a request, and keep every request completing.
  const auto cluster = model::make_a9_k10_cluster(4, 2);
  TrafficOptions options;
  options.requests = 4000;
  options.seed = 9;
  // Cap at 85% of the fleet's all-busy draw at configured points: below
  // the worst case (so the enforcer must act) yet comfortably above the
  // all-min-frequency draw (so throttling alone satisfies it).
  const model::TimeEnergyModel m(cluster, wl("EP"));
  options.control.controller = control::make_power_cap(
      {.cap = m.busy_power() * 0.85});
  options.control.period = Seconds{1.0};
  const auto r = simulate_traffic(cluster, one_class(),
                                  *make_poisson(40.0), options);
  EXPECT_EQ(r.completed, options.requests);
  EXPECT_EQ(r.shed_bucket + r.shed_queue, 0u);
  EXPECT_GT(r.control.point_changes, 0u);
  EXPECT_TRUE(r.control.all_dispatches_available);
}

// -------------------------------------------------------------- keystone

/// The paper's Table 8 question asked offline — which static 1 kW mix is
/// most energy-proportional? — answered online: a closed-loop power-
/// gated fleet must beat EVERY static mix on energy-per-request at the
/// same p99-vs-SLO bar, under both diurnal and MMPP (bursty Markov-
/// modulated) arrival processes.
class Keystone : public ::testing::TestWithParam<const char*> {};

TEST_P(Keystone, ClosedLoopBeatsEveryStaticTable8Mix) {
  const std::string shape = GetParam();
  const auto mixes = config::paper_budget_mixes();
  ASSERT_GE(mixes.size(), 5u);
  const auto classes = one_class();

  // Arrival rate every mix can absorb: 30% of the weakest mix's capacity
  // on average (diurnal swings to 1.6x of that at peak).
  double min_capacity = std::numeric_limits<double>::infinity();
  for (const auto& mix : mixes)
    min_capacity =
        std::min(min_capacity, cluster_capacity_per_s(mix, classes));
  const double rate = 0.3 * min_capacity;

  const auto make_arrivals = [&]() -> std::unique_ptr<ArrivalProcess> {
    if (shape == "diurnal")
      return make_diurnal(rate, 0.6, Seconds{400.0 / rate});
    return make_mmpp({{0.4 * rate, Seconds{150.0 / rate}},
                      {2.2 * rate, Seconds{75.0 / rate}}});
  };

  TrafficOptions open;
  open.requests = 6000;
  open.seed = 42;

  // Static sweep: every Table 8 mix, open loop.
  std::vector<double> static_epr, static_p99;
  for (const auto& mix : mixes) {
    const auto r =
        simulate_traffic(mix, classes, *make_arrivals(), open);
    EXPECT_EQ(r.completed, open.requests) << mix.label();
    static_epr.push_back(r.energy_per_request.value());
    static_p99.push_back(r.sojourn.p99.value());
  }

  // Closed loop on the most gating-friendly mix: the all-wimpy fleet
  // (mixes are ordered from the all-K10 end, so .back() is 128A9) has
  // the finest power-gating granularity.
  TrafficOptions closed = open;
  closed.control.controller = control::make_power_gate({});
  closed.control.period = Seconds{20.0 / rate};
  closed.control.wake_delay = Seconds{5.0 / rate};
  closed.control.wake_energy = Joules{5.0};
  const auto controlled =
      simulate_traffic(mixes.back(), classes, *make_arrivals(), closed);
  EXPECT_EQ(controlled.completed, open.requests);
  EXPECT_GT(controlled.control.sleeps, 0u);

  // Equal p99-vs-SLO bar: the SLO is set so every static mix meets it
  // (4x the worst static p99); the controlled run must meet it too...
  const double slo =
      4.0 * *std::max_element(static_p99.begin(), static_p99.end());
  EXPECT_LE(controlled.sojourn.p99.value(), slo)
      << "closed loop blew the p99 bar every static mix meets";
  // ...and beat every static mix on energy per request.
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    EXPECT_LT(controlled.energy_per_request.value(), static_epr[i])
        << "static mix " << mixes[i].label() << " (" << shape
        << ") beat the closed loop: " << static_epr[i] << " vs "
        << controlled.energy_per_request.value() << " J/request";
  }
}

INSTANTIATE_TEST_SUITE_P(ArrivalShapes, Keystone,
                         ::testing::Values("diurnal", "mmpp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ------------------------------------------------------------ validation

TEST(Control, Validation) {
  const auto cluster = model::make_a9_k10_cluster(1, 1);
  TrafficOptions options;
  options.control.controller = control::make_frozen();
  options.control.period = Seconds{0.0};
  EXPECT_THROW((void)simulate_traffic(cluster, one_class(),
                                      *make_poisson(10.0), options),
               PreconditionError);
  options.control.period = Seconds{1.0};
  options.control.min_event_spacing = Seconds{-1.0};
  EXPECT_THROW((void)simulate_traffic(cluster, one_class(),
                                      *make_poisson(10.0), options),
               PreconditionError);
}

TEST(Control, SummaryJsonRoundTrips) {
  const auto cluster = model::make_a9_k10_cluster(4, 1);
  TrafficOptions options;
  options.requests = 2000;
  options.control.controller = control::make_power_gate({});
  options.control.period = Seconds{1.0};
  options.control.wake_delay = Seconds{0.5};
  const auto r = simulate_traffic(cluster, one_class(),
                                  *make_diurnal(15.0, 0.5, Seconds{30.0}),
                                  options);
  const JsonValue j = r.control.to_json();
  EXPECT_TRUE(j.at("enabled").as_bool());
  EXPECT_EQ(j.at("controller").as_string(), "power_gate");
  EXPECT_EQ(static_cast<std::uint64_t>(j.at("ticks").as_int()),
            r.control.ticks);
  EXPECT_EQ(static_cast<std::uint64_t>(j.at("sleeps").as_int()),
            r.control.sleeps);
  const JsonValue parsed = JsonValue::parse(j.dump());
  EXPECT_EQ(parsed.dump(), j.dump());
}

}  // namespace
