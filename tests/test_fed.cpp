// hcep::fed — multi-site federation with energy/carbon-aware routing.
//
// Keystone: a 3-site fleet with phase-shifted diurnal demand, tariffs
// peaking with local load and a capacity-heterogeneous site mix. The
// SLO-aware hybrid router must beat every single-site (pinned) baseline
// AND the static round-robin baseline on BOTH total energy cost and
// per-class end-to-end p99 — the federation counterpart of the paper's
// claim that heterogeneity-aware placement dominates static policies.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "hcep/fed/curves.hpp"
#include "hcep/fed/fleet.hpp"
#include "hcep/fed/router.hpp"
#include "hcep/fed/site.hpp"
#include "hcep/hw/network.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::fed;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

// ------------------------------------------------------------- curves

TEST(Curves, FlatCurveIsConstantEverywhere) {
  const auto c = PiecewiseCurve::flat(0.25);
  EXPECT_DOUBLE_EQ(c.at(Seconds{0.0}), 0.25);
  EXPECT_DOUBLE_EQ(c.at(Seconds{12345.0}), 0.25);
  EXPECT_DOUBLE_EQ(c.mean(), 0.25);
  EXPECT_NEAR(c.integral(Seconds{10.0}, Seconds{110.0}), 25.0, 1e-9);
}

TEST(Curves, InterpolatesAndWrapsPeriodically) {
  // Two knots on a 100 s period: 1.0 at t=10, 3.0 at t=60. Linear in
  // between, linear again across the wrap (60 -> 110==10).
  const PiecewiseCurve c(Seconds{100.0},
                         {{Seconds{10.0}, 1.0}, {Seconds{60.0}, 3.0}});
  EXPECT_DOUBLE_EQ(c.at(Seconds{10.0}), 1.0);
  EXPECT_DOUBLE_EQ(c.at(Seconds{35.0}), 2.0);
  EXPECT_DOUBLE_EQ(c.at(Seconds{60.0}), 3.0);
  EXPECT_DOUBLE_EQ(c.at(Seconds{85.0}), 2.0);  // halfway down the wrap
  // Periodicity: any t and t + period agree.
  for (const double t : {0.0, 7.5, 42.0, 99.0})
    EXPECT_DOUBLE_EQ(c.at(Seconds{t}), c.at(Seconds{t + 100.0})) << t;
}

TEST(Curves, IntegralIsAdditiveAndMatchesMeanOverFullPeriods) {
  const PiecewiseCurve c(Seconds{100.0},
                         {{Seconds{10.0}, 1.0}, {Seconds{60.0}, 3.0}});
  const double full = c.integral(Seconds{0.0}, Seconds{100.0});
  EXPECT_NEAR(full, c.mean() * 100.0, 1e-9);
  EXPECT_NEAR(c.integral(Seconds{0.0}, Seconds{300.0}), 3.0 * full, 1e-9);
  // Additivity over an awkward split straddling a wrap.
  const double a = c.integral(Seconds{35.0}, Seconds{95.0});
  const double b = c.integral(Seconds{95.0}, Seconds{135.0});
  EXPECT_NEAR(a + b, c.integral(Seconds{35.0}, Seconds{135.0}), 1e-9);
}

TEST(Curves, DiurnalCurveIsSeedDeterministicAndPeaksWhereAsked) {
  const Seconds period{86400.0};
  const auto a = make_diurnal_curve(0.10, 0.8, period, Seconds{43200.0},
                                    /*seed=*/7, /*jitter=*/0.05);
  const auto b = make_diurnal_curve(0.10, 0.8, period, Seconds{43200.0},
                                    /*seed=*/7, /*jitter=*/0.05);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  const auto other = make_diurnal_curve(0.10, 0.8, period, Seconds{43200.0},
                                        /*seed=*/8, /*jitter=*/0.05);
  EXPECT_NE(a.to_json().dump(), other.to_json().dump());
  // Without jitter the curve peaks at peak_at and troughs half a period
  // away.
  const auto clean =
      make_diurnal_curve(0.10, 0.8, period, Seconds{43200.0}, 7);
  EXPECT_NEAR(clean.at(Seconds{43200.0}), 0.18, 1e-9);
  EXPECT_NEAR(clean.at(Seconds{0.0}), 0.02, 1e-6);
  EXPECT_GT(clean.at(Seconds{43200.0}), clean.at(Seconds{20000.0}));
}

TEST(Curves, RejectsMalformedKnots) {
  EXPECT_THROW(PiecewiseCurve(Seconds{0.0}, {{Seconds{0.0}, 1.0}}),
               PreconditionError);
  EXPECT_THROW(PiecewiseCurve(Seconds{10.0}, {}), PreconditionError);
  EXPECT_THROW(PiecewiseCurve(Seconds{10.0}, {{Seconds{12.0}, 1.0}}),
               PreconditionError);
  EXPECT_THROW(PiecewiseCurve(Seconds{10.0},
                              {{Seconds{5.0}, 1.0}, {Seconds{5.0}, 2.0}}),
               PreconditionError);
  EXPECT_THROW(PiecewiseCurve(Seconds{10.0}, {{Seconds{1.0}, -0.5}}),
               PreconditionError);
}

// ------------------------------------------------------------ network

TEST(InterSiteNetwork, TransitIsZeroOnDiagonalAndLatencyPlusTransfer) {
  auto net = hw::InterSiteNetwork::uniform(3, Seconds{0.04},
                                           BytesPerSecond{1.0e6});
  EXPECT_DOUBLE_EQ(net.transit(1, 1, Bytes{1.0e6}).value(), 0.0);
  EXPECT_NEAR(net.transit(0, 2, Bytes{1.0e6}).value(), 1.04, 1e-12);
  // Zero bandwidth = unconstrained: latency only.
  auto flat = hw::InterSiteNetwork::uniform(3, Seconds{0.04},
                                            BytesPerSecond{0.0});
  EXPECT_NEAR(flat.transit(0, 2, Bytes{1.0e9}).value(), 0.04, 1e-12);
}

TEST(InterSiteNetwork, DirectedLinksAndValidation) {
  hw::InterSiteNetwork net(2);
  net.set_directed_link(0, 1, {Seconds{0.1}, BytesPerSecond{0.0}});
  EXPECT_NEAR(net.transit(0, 1, Bytes{0.0}).value(), 0.1, 1e-12);
  EXPECT_NEAR(net.transit(1, 0, Bytes{0.0}).value(), 0.0, 1e-12);
  EXPECT_THROW(net.set_link(0, 0, {}), PreconditionError);
  EXPECT_THROW((void)net.link(0, 5), PreconditionError);
  EXPECT_THROW(hw::InterSiteNetwork(0), PreconditionError);
}

// --------------------------------------------- diurnal phase offsets

// Satellite property: two diurnal processes whose peak offsets differ
// by half a period see anti-correlated windowed load; a full-period
// offset restores positive correlation.
double windowed_correlation(const traffic::ArrivalProcess& a,
                            const traffic::ArrivalProcess& b,
                            Seconds window, std::size_t windows) {
  const auto count = [&](const traffic::ArrivalProcess& p,
                         std::uint64_t seed) {
    auto gen = p.clone();
    Rng rng(seed);
    std::vector<double> counts(windows, 0.0);
    Seconds t{0.0};
    while (true) {
      t = gen->next(t, rng);
      const auto w =
          static_cast<std::size_t>(t.value() / window.value());
      if (!std::isfinite(t.value()) || w >= windows) break;
      counts[w] += 1.0;
    }
    return counts;
  };
  const auto xs = count(a, 11);
  const auto ys = count(b, 22);
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < windows; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(windows);
  my /= static_cast<double>(windows);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < windows; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  return sxy / std::sqrt(sxx * syy);
}

TEST(DiurnalOffset, HalfPeriodOffsetAntiCorrelatesWindowedArrivals) {
  const Seconds period{240.0};
  const double rate = 40.0;
  const double swing = 0.9;
  const auto base = traffic::make_diurnal(rate, swing, period, Seconds{0.0});
  const auto shifted =
      traffic::make_diurnal(rate, swing, period, Seconds{120.0});
  const auto aligned =
      traffic::make_diurnal(rate, swing, period, Seconds{240.0});
  // 48 windows of 20 s = 4 full periods, ~800 arrivals per window set.
  const double anti =
      windowed_correlation(*base, *shifted, Seconds{20.0}, 48);
  const double pro =
      windowed_correlation(*base, *aligned, Seconds{20.0}, 48);
  EXPECT_LT(anti, -0.5) << "12h-offset sites should anti-correlate";
  EXPECT_GT(pro, 0.5) << "24h-offset sites should correlate";
}

TEST(DiurnalOffset, OffsetShiftsTheProfileLater) {
  // The Seconds overload is documented as rate(t) = unshifted(t - off):
  // the offset process at t == the base process at t - off. Compare
  // windowed counts of base vs shifted-by-quarter against each other
  // shifted by a quarter period.
  const Seconds period{200.0};
  const auto base =
      traffic::make_diurnal(30.0, 0.9, period, Seconds{0.0});
  const auto quarter =
      traffic::make_diurnal(30.0, 0.9, period, Seconds{50.0});
  auto count = [&](const traffic::ArrivalProcess& p) {
    auto gen = p.clone();
    Rng rng(5);
    std::vector<double> counts(40, 0.0);
    Seconds t{0.0};
    while (true) {
      t = gen->next(t, rng);
      const auto w = static_cast<std::size_t>(t.value() / 10.0);
      if (!std::isfinite(t.value()) || w >= counts.size()) break;
      counts[w] += 1.0;
    }
    return counts;
  };
  const auto b = count(*base);
  const auto q = count(*quarter);
  // windows are 10 s, the shift is 5 windows; correlate b[i] vs q[i+5].
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  double mb = 0.0, mq = 0.0;
  const std::size_t n = 35;
  for (std::size_t i = 0; i < n; ++i) {
    mb += b[i];
    mq += q[i + 5];
  }
  mb /= static_cast<double>(n);
  mq /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (b[i] - mb) * (q[i + 5] - mq);
    sxx += (b[i] - mb) * (b[i] - mb);
    syy += (q[i + 5] - mq) * (q[i + 5] - mq);
  }
  EXPECT_GT(sxy / std::sqrt(sxx * syy), 0.5);
}

// ------------------------------------- assigned-arrival traffic path

TEST(AssignedArrivals, ReplaysExplicitStreamAndRecordsOutcomes) {
  const auto cluster = model::make_a9_k10_cluster(0, 2);
  const std::vector<traffic::TrafficClass> classes = {
      {wl("memcached"), 1.0, traffic::SloTarget{}}};
  std::vector<traffic::Arrival> arrivals;
  for (std::uint64_t k = 0; k < 500; ++k)
    arrivals.push_back({Seconds{0.01 * static_cast<double>(k)}, 0});
  traffic::TrafficOptions options;
  options.record_requests = true;
  const auto r = simulate_traffic(cluster, classes, arrivals, options);
  EXPECT_EQ(r.arrival_process, "assigned");
  EXPECT_EQ(r.offered, 500u);
  EXPECT_EQ(r.completed, 500u);
  ASSERT_EQ(r.requests.size(), 500u);
  for (std::size_t k = 0; k < r.requests.size(); ++k) {
    EXPECT_EQ(r.requests[k].index, k);
    EXPECT_EQ(r.requests[k].failed, 0u);
    EXPECT_GT(r.requests[k].sojourn.value(), 0.0);
  }
}

TEST(AssignedArrivals, ValidatesShardsOrderAndClasses) {
  const auto cluster = model::make_a9_k10_cluster(0, 1);
  const std::vector<traffic::TrafficClass> classes = {
      {wl("memcached"), 1.0, traffic::SloTarget{}}};
  traffic::TrafficOptions options;
  options.shards = 2;
  const std::vector<traffic::Arrival> ok = {{Seconds{0.0}, 0},
                                            {Seconds{1.0}, 0}};
  EXPECT_THROW((void)simulate_traffic(cluster, classes, ok, options),
               PreconditionError);
  options.shards = 1;
  const std::vector<traffic::Arrival> unsorted = {{Seconds{1.0}, 0},
                                                  {Seconds{0.0}, 0}};
  EXPECT_THROW((void)simulate_traffic(cluster, classes, unsorted, options),
               PreconditionError);
  const std::vector<traffic::Arrival> bad_class = {{Seconds{0.0}, 3}};
  EXPECT_THROW(
      (void)simulate_traffic(cluster, classes, bad_class, options),
      PreconditionError);
  // Empty streams are legal (a pinned fleet routes zero requests to
  // the non-pinned sites).
  const auto r = simulate_traffic(cluster, classes, {}, options);
  EXPECT_EQ(r.offered, 0u);
  EXPECT_EQ(r.completed, 0u);
}

TEST(AssignedArrivals, RecordingIsObservational) {
  // record_requests must not perturb the core result document.
  const auto cluster = model::make_a9_k10_cluster(0, 2);
  const std::vector<traffic::TrafficClass> classes = {
      {wl("EP"), 1.0, traffic::SloTarget{}}};
  traffic::TrafficOptions options;
  options.requests = 4000;
  options.seed = 99;
  const auto off =
      simulate_traffic(cluster, classes, *traffic::make_poisson(40.0),
                       options);
  options.record_requests = true;
  const auto on =
      simulate_traffic(cluster, classes, *traffic::make_poisson(40.0),
                       options);
  EXPECT_EQ(off.to_json().dump(), on.to_json().dump());
  EXPECT_TRUE(off.requests.empty());
  EXPECT_EQ(on.requests.size(), 4000u);
  // Records cover every request exactly once, sorted by arrival index.
  for (std::size_t k = 0; k < on.requests.size(); ++k)
    EXPECT_EQ(on.requests[k].index, k);
}

// ------------------------------------------------------------- router

struct RouterFixture {
  std::vector<Site> sites;
  hw::InterSiteNetwork network;
  std::vector<traffic::TrafficClass> classes;

  explicit RouterFixture(Seconds latency = Seconds{0.04}) {
    for (int s = 0; s < 3; ++s) {
      Site site;
      site.name = "site" + std::to_string(s);
      site.cluster = model::make_a9_k10_cluster(0, 2);
      site.arrivals = traffic::make_poisson(10.0);
      site.price = PiecewiseCurve::flat(0.10);
      site.carbon = PiecewiseCurve::flat(400.0);
      sites.push_back(std::move(site));
    }
    network = hw::InterSiteNetwork::uniform(3, latency,
                                            BytesPerSecond{0.0});
    classes = {{wl("memcached"), 1.0,
                traffic::SloTarget{Seconds{0.08}, 0.99}}};
  }
};

TEST(GlobalRouter, PinnedAndRoundRobinAreStatic) {
  RouterFixture fx;
  RouterOptions pinned;
  pinned.policy = RoutePolicy::kPinned;
  pinned.pinned_site = 2;
  GlobalRouter router(fx.sites, fx.network, fx.classes, pinned);
  for (int k = 0; k < 5; ++k)
    EXPECT_EQ(router.route(0, 0, Seconds{0.1 * k}).target, 2u);

  RouterOptions rr;
  rr.policy = RoutePolicy::kRoundRobin;
  GlobalRouter rrr(fx.sites, fx.network, fx.classes, rr);
  for (int k = 0; k < 6; ++k)
    EXPECT_EQ(rrr.route(1, 0, Seconds{0.1 * k}).target,
              static_cast<std::uint32_t>(k % 3));
}

TEST(GlobalRouter, NearestStaysLocalAndHybridHonorsTransitGate) {
  RouterFixture fx;
  RouterOptions nearest;
  nearest.policy = RoutePolicy::kNearest;
  GlobalRouter router(fx.sites, fx.network, fx.classes, nearest);
  EXPECT_EQ(router.route(1, 0, Seconds{0.0}).target, 1u);
  EXPECT_DOUBLE_EQ(router.route(1, 0, Seconds{0.1}).transit.value(), 0.0);

  // Hybrid: SLO 0.08 s, slack 0.25 -> remote feasible only under 0.02 s
  // transit; the 0.04 s WAN excludes every remote site, so the class
  // stays local regardless of price.
  RouterOptions hybrid;
  hybrid.policy = RoutePolicy::kSloHybrid;
  hybrid.transit_slack = 0.25;
  GlobalRouter h(fx.sites, fx.network, fx.classes, hybrid);
  for (int k = 0; k < 10; ++k)
    EXPECT_EQ(h.route(2, 0, Seconds{0.01 * k}).target, 2u);
}

TEST(GlobalRouter, CheapestEnergyChasesTheTariffTrough) {
  RouterFixture fx;
  fx.sites[0].price = PiecewiseCurve::flat(0.30);
  fx.sites[1].price = PiecewiseCurve::flat(0.05);
  fx.sites[2].price = PiecewiseCurve::flat(0.20);
  RouterOptions cheap;
  cheap.policy = RoutePolicy::kCheapestEnergy;
  GlobalRouter router(fx.sites, fx.network, fx.classes, cheap);
  EXPECT_EQ(router.route(0, 0, Seconds{0.0}).target, 1u);
  fx.sites[1].carbon = PiecewiseCurve::flat(800.0);
  fx.sites[2].carbon = PiecewiseCurve::flat(100.0);
  RouterOptions green;
  green.policy = RoutePolicy::kLowestCarbon;
  GlobalRouter greener(fx.sites, fx.network, fx.classes, green);
  EXPECT_EQ(greener.route(0, 0, Seconds{0.0}).target, 2u);
}

TEST(GlobalRouter, ParsePolicyRoundTripsAndRejectsUnknown) {
  for (const RoutePolicy p :
       {RoutePolicy::kNearest, RoutePolicy::kRoundRobin, RoutePolicy::kPinned,
        RoutePolicy::kCheapestEnergy, RoutePolicy::kLowestCarbon,
        RoutePolicy::kSloHybrid})
    EXPECT_EQ(parse_route_policy(route_policy_name(p)), p);
  EXPECT_THROW((void)parse_route_policy("teleport"), PreconditionError);
}

// -------------------------------------------------------------- fleet

/// The keystone scenario: three time zones, one fleet.
///
/// Site "alpha" is a brawny region (4 K10 nodes); "beta" and "gamma"
/// are half its size. Each region's demand is diurnal with peaks a
/// third of a (compressed) day apart, and each region's tariff and
/// carbon curves peak with its local load — busy hours are expensive
/// hours. Interactive traffic (memcached, tight SLO) cannot afford the
/// WAN; batch (x264, loose SLO, energy-dominant) can.
struct FleetScenario {
  std::vector<Site> sites;
  hw::InterSiteNetwork network;
  std::vector<traffic::TrafficClass> classes;
  FleetOptions options;
  Seconds period{};

  explicit FleetScenario(std::uint64_t requests_per_site = 1500) {
    const std::vector<unsigned> k10 = {4, 2, 2};
    const char* names[] = {"alpha", "beta", "gamma"};

    // Services and SLOs derived from the catalog so the scenario stays
    // valid if the workload constants move.
    const auto probe = model::make_a9_k10_cluster(0, 1);
    const std::vector<traffic::TrafficClass> mc_only = {
        {wl("memcached"), 1.0, {}}};
    const std::vector<traffic::TrafficClass> x264_only = {
        {wl("x264"), 1.0, {}}};
    const Seconds s_i{1.0 / traffic::cluster_capacity_per_s(probe, mc_only)};
    const Seconds s_b{1.0 /
                      traffic::cluster_capacity_per_s(probe, x264_only)};

    const Seconds slo_i{12.0 * s_i.value()};
    const Seconds slo_b{40.0 * s_b.value()};
    classes = {{wl("memcached"), 0.80, traffic::SloTarget{slo_i, 0.95}},
               {wl("x264"), 0.20, traffic::SloTarget{slo_b, 0.95}}};

    // WAN: half the interactive SLO — the hybrid's transit gate
    // (slack 0.25) excludes remote sites for interactive traffic.
    network = hw::InterSiteNetwork::uniform(3, Seconds{0.5 * slo_i.value()},
                                            BytesPerSecond{0.0});

    // Demand: equal volume per region at ~55% of FLEET capacity, so
    // round-robin (capacity-blind) overdrives the half-size regions.
    double fleet_capacity = 0.0;
    for (const unsigned n : k10)
      fleet_capacity += traffic::cluster_capacity_per_s(
          model::make_a9_k10_cluster(0, n), classes);
    const double site_rate = 0.55 * fleet_capacity / 3.0;
    period = Seconds{static_cast<double>(requests_per_site) / site_rate};

    for (std::size_t s = 0; s < 3; ++s) {
      Site site;
      site.name = names[s];
      site.cluster = model::make_a9_k10_cluster(0, k10[s]);
      site.rack_budget = site.cluster.nameplate_power();
      const Seconds offset{period.value() * static_cast<double>(s) / 3.0};
      site.arrivals =
          traffic::make_diurnal(site_rate, 0.85, period, offset);
      // The sinusoidal load peaks a quarter period after its offset;
      // align the tariff peak with the load peak.
      const Seconds price_peak{offset.value() + 0.25 * period.value()};
      site.price = make_diurnal_curve(0.10, 0.8, period, price_peak,
                                      /*seed=*/100 + s, /*jitter=*/0.03);
      site.carbon = make_diurnal_curve(420.0, 0.6, period, price_peak,
                                       /*seed=*/200 + s, /*jitter=*/0.03);
      sites.push_back(std::move(site));
    }

    options.requests_per_site = requests_per_site;
    options.seed = 20260809;
    options.stream.window = Seconds{period.value() / 48.0};
    options.router.policy = RoutePolicy::kSloHybrid;
    options.router.headroom = 0.60;
    options.router.transit_slack = 0.25;
    // Short relative to the diurnal ramp: the router only sees arrivals
    // (placement is a pre-pass, no completion feedback), so a long
    // window lags the ramp and lets backlog build before the headroom
    // gate reacts.
    options.router.load_window = Seconds{6.0 * s_b.value()};
  }

  [[nodiscard]] FleetReport run(RoutePolicy policy,
                                std::size_t pinned = 0) const {
    FleetOptions o = options;
    o.router.policy = policy;
    o.router.pinned_site = pinned;
    return simulate_fleet(sites, network, classes, o);
  }
};

TEST(Fleet, KeystoneHybridBeatsPinnedAndRoundRobin) {
  const FleetScenario scenario;
  const FleetReport hybrid = scenario.run(RoutePolicy::kSloHybrid);

  ASSERT_EQ(hybrid.sites.size(), 3u);
  ASSERT_EQ(hybrid.classes.size(), 2u);
  EXPECT_EQ(hybrid.offered, 3u * scenario.options.requests_per_site);
  EXPECT_EQ(hybrid.completed + hybrid.failed, hybrid.offered);

  std::vector<std::pair<std::string, FleetReport>> baselines;
  baselines.emplace_back("round-robin",
                         scenario.run(RoutePolicy::kRoundRobin));
  for (std::size_t s = 0; s < 3; ++s)
    baselines.emplace_back("pinned:" + scenario.sites[s].name,
                           scenario.run(RoutePolicy::kPinned, s));

  for (const auto& [name, baseline] : baselines) {
    EXPECT_LT(hybrid.energy_cost, baseline.energy_cost)
        << "hybrid should be cheaper than " << name;
    for (std::size_t c = 0; c < hybrid.classes.size(); ++c) {
      EXPECT_LT(hybrid.classes[c].e2e.p99.value(),
                baseline.classes[c].e2e.p99.value())
          << "class " << hybrid.classes[c].name << " p99 vs " << name;
      EXPECT_LE(hybrid.classes[c].violation_fraction(),
                baseline.classes[c].violation_fraction())
          << "class " << hybrid.classes[c].name << " violations vs "
          << name;
    }
  }

  // The win comes from actually using the federation: the hybrid must
  // move batch work across sites, and interactive must stay local
  // (zero transit) under the SLO gate.
  EXPECT_GT(hybrid.cross_site, 0u);
  EXPECT_DOUBLE_EQ(hybrid.classes[0].mean_transit.value(), 0.0);
  EXPECT_GT(hybrid.classes[1].mean_transit.value(), 0.0);
}

TEST(Fleet, ReportIsByteDeterministicAcrossRunsAndShards) {
  const FleetScenario scenario(600);
  const FleetReport a = scenario.run(RoutePolicy::kSloHybrid);
  const FleetReport b = scenario.run(RoutePolicy::kSloHybrid);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());

  FleetOptions sharded = scenario.options;
  sharded.shards = 4;
  const FleetReport c = simulate_fleet(scenario.sites, scenario.network,
                                       scenario.classes, sharded);
  EXPECT_EQ(a.to_json().dump(), c.to_json().dump());
  // Per-site traffic results are unchanged 1 vs N shards.
  for (std::size_t s = 0; s < a.sites.size(); ++s)
    EXPECT_EQ(a.sites[s].result.to_json().dump(),
              c.sites[s].result.to_json().dump());
}

TEST(Fleet, LedgersConserveAndCostWindowsSumToTotals) {
  const FleetScenario scenario(600);
  const FleetReport r = scenario.run(RoutePolicy::kSloHybrid);

  // Request conservation: routes row sums = per-origin demand; routed
  // column sums = per-site offered; class ledgers cover everything.
  std::uint64_t routed_total = 0;
  for (std::size_t o = 0; o < 3; ++o) {
    std::uint64_t row = 0;
    for (std::size_t t = 0; t < 3; ++t) row += r.routes[o][t];
    EXPECT_EQ(row, scenario.options.requests_per_site);
  }
  for (std::size_t t = 0; t < 3; ++t) {
    std::uint64_t col = 0;
    for (std::size_t o = 0; o < 3; ++o) col += r.routes[o][t];
    EXPECT_EQ(col, r.sites[t].routed);
    routed_total += col;
  }
  EXPECT_EQ(routed_total, r.offered);
  std::uint64_t class_total = 0;
  for (const auto& c : r.classes) class_total += c.completed + c.failed;
  EXPECT_EQ(class_total, r.completed + r.failed);

  // Fleet totals = site sums; window sums + idle tails = totals.
  double site_cost = 0.0, site_carbon = 0.0, site_energy = 0.0;
  for (const auto& s : r.sites) {
    site_cost += s.energy_cost;
    site_carbon += s.carbon_g;
    site_energy += s.energy.value();
  }
  EXPECT_NEAR(r.energy_cost, site_cost, 1e-9 * site_cost);
  EXPECT_NEAR(r.carbon_g, site_carbon, 1e-9 * site_carbon);
  EXPECT_NEAR(r.energy.value(), site_energy, 1e-9 * site_energy);
  ASSERT_FALSE(r.cost_windows.empty());
  double window_energy = 0.0;
  for (const auto& w : r.cost_windows) window_energy += w.energy.value();
  double tail_energy = 0.0;
  for (std::size_t s = 0; s < 3; ++s) {
    const Seconds tail{r.horizon.value() -
                       r.sites[s].result.makespan.value()};
    tail_energy += (scenario.sites[s].idle_floor() * tail).value();
  }
  EXPECT_NEAR(window_energy + tail_energy, r.energy.value(),
              1e-6 * r.energy.value());
}

TEST(Fleet, SingleSiteFleetIsLocalOnly) {
  FleetScenario scenario(400);
  std::vector<Site> one = {scenario.sites[0]};
  hw::InterSiteNetwork net(1);
  FleetOptions o = scenario.options;
  o.router.policy = RoutePolicy::kNearest;
  const FleetReport r =
      simulate_fleet(one, net, scenario.classes, o);
  EXPECT_EQ(r.cross_site, 0u);
  EXPECT_EQ(r.offered, 400u);
  EXPECT_EQ(r.sites[0].routed, 400u);
  EXPECT_EQ(r.completed + r.failed, 400u);
  for (const auto& c : r.classes)
    EXPECT_DOUBLE_EQ(c.mean_transit.value(), 0.0);
}

TEST(Fleet, ValidatesScenario) {
  FleetScenario scenario(100);
  FleetOptions o = scenario.options;
  EXPECT_THROW((void)simulate_fleet({}, scenario.network, scenario.classes,
                                    o),
               PreconditionError);
  hw::InterSiteNetwork wrong(2);
  EXPECT_THROW((void)simulate_fleet(scenario.sites, wrong, scenario.classes,
                                    o),
               PreconditionError);
  std::vector<Site> missing = scenario.sites;
  missing[1].arrivals = nullptr;
  EXPECT_THROW(
      (void)simulate_fleet(missing, scenario.network, scenario.classes, o),
      PreconditionError);
  o.requests_per_site = 0;
  EXPECT_THROW((void)simulate_fleet(scenario.sites, scenario.network,
                                    scenario.classes, o),
               PreconditionError);
}

}  // namespace
