// Observability subsystem: metrics registry (concurrent counters,
// histogram bucketing), event tracer (ring overflow, exporters),
// observer sinks, power probe fidelity and deterministic replay of the
// cluster simulator's exported traces.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "hcep/cluster/simulator.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/obs/metrics.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/obs/power_probe.hpp"
#include "hcep/obs/trace.hpp"
#include "hcep/util/error.hpp"

namespace {

using namespace hcep;

// ---------------------------------------------------------------- metrics

TEST(MetricsRegistry, CounterSumsExactlyUnderConcurrentWriters) {
  obs::MetricsRegistry reg;
  const obs::MetricId shared = reg.counter("shared");
  const obs::MetricId hist = reg.histogram("lat", {1.0, 2.0, 4.0});

  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncrements = 50000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) {
      }
      // Per-thread registration of the same names must yield the same ids.
      EXPECT_EQ(reg.counter("shared"), shared);
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        reg.add(shared);
        reg.observe(hist, static_cast<double>(t % 5));
      }
    });
  }
  go.store(true);
  for (auto& th : threads) th.join();

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("shared"), kThreads * kIncrements);
  const obs::HistogramSnapshot* h = snap.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kIncrements);
}

TEST(MetricsRegistry, HistogramBucketBoundariesAreInclusiveUpperEdges) {
  obs::MetricsRegistry reg;
  const obs::MetricId id = reg.histogram("h", {1.0, 2.0, 4.0});
  // Exactly-on-boundary values land in the bucket they bound.
  for (double v : {0.5, 1.0}) reg.observe(id, v);            // <= 1
  for (double v : {1.5, 2.0}) reg.observe(id, v);            // <= 2
  for (double v : {2.5, 4.0}) reg.observe(id, v);            // <= 4
  for (double v : {4.5, 100.0, 1e9}) reg.observe(id, v);     // overflow

  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::HistogramSnapshot* h = snap.histogram("h");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h->counts[0], 2u);
  EXPECT_EQ(h->counts[1], 2u);
  EXPECT_EQ(h->counts[2], 2u);
  EXPECT_EQ(h->counts[3], 3u);
  EXPECT_EQ(h->count, 9u);
  EXPECT_NEAR(h->sum, 0.5 + 1.0 + 1.5 + 2.0 + 2.5 + 4.0 + 4.5 + 100.0 + 1e9,
              1e-6);
}

TEST(MetricsRegistry, SnapshotExposesOverflowAndQuantileEstimates) {
  obs::MetricsRegistry reg;
  const obs::MetricId id = reg.histogram("lat", {1.0, 2.0, 4.0});
  // 10 in (1,2], 10 in (2,4], 5 above every bound.
  for (int i = 0; i < 10; ++i) reg.observe(id, 1.5);
  for (int i = 0; i < 10; ++i) reg.observe(id, 3.0);
  for (int i = 0; i < 5; ++i) reg.observe(id, 100.0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::HistogramSnapshot* h = snap.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->overflow(), 5u);

  // rank(0.5) = 12.5 of 25 -> 2.5 into the (2,4] bucket of 10: 2.5.
  EXPECT_NEAR(h->quantile(0.5), 2.0 + 2.0 * (12.5 - 10.0) / 10.0, 1e-12);
  // rank(0.2) = 5 of 25 -> inside the first occupied bucket (1,2]:
  // interpolates from its lower edge.
  EXPECT_NEAR(h->quantile(0.2), 1.0 + 1.0 * 5.0 / 10.0, 1e-12);
  // Ranks landing in the overflow bucket clamp to the last bound.
  EXPECT_DOUBLE_EQ(h->quantile(0.99), 4.0);
  EXPECT_DOUBLE_EQ(h->quantile(1.0), 4.0);
  // Monotone in q.
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_GE(h->quantile(q), prev) << q;
    prev = h->quantile(q);
  }
  EXPECT_THROW((void)h->quantile(1.5), PreconditionError);

  // Empty histograms estimate zero; JSON spells the +Inf bucket out.
  obs::MetricsRegistry reg2;
  (void)reg2.histogram("empty", {1.0});
  const obs::MetricsSnapshot snap2 = reg2.snapshot();
  EXPECT_DOUBLE_EQ(snap2.histogram("empty")->quantile(0.95), 0.0);
  EXPECT_NE(snap.to_json().dump().find("\"overflow\":5"),
            std::string::npos);
}

TEST(MetricsRegistry, GaugeIsLastWriterWinsAndResetZeroes) {
  obs::MetricsRegistry reg;
  const obs::MetricId g = reg.gauge("g");
  const obs::MetricId c = reg.counter("c");
  reg.set(g, 1.5);
  reg.set(g, -3.25);
  reg.add(c, 7);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("g"), -3.25);

  reg.reset();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauge("g"), 0.0);
  EXPECT_EQ(snap.counter("c"), 0u);
  // Absent names resolve to zero / nullptr, not errors.
  EXPECT_EQ(snap.counter("nope"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("nope"), 0.0);
  EXPECT_EQ(snap.histogram("nope"), nullptr);
}

TEST(MetricsRegistry, ReRegistrationChecksKindAndBounds) {
  obs::MetricsRegistry reg;
  const obs::MetricId h = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(reg.histogram("h", {1.0, 2.0}), h);  // idempotent
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), PreconditionError);
  EXPECT_THROW((void)reg.counter("h"), PreconditionError);
  EXPECT_THROW(reg.histogram("bad", {2.0, 1.0}), PreconditionError);
}

// ----------------------------------------------------------------- tracer

TEST(EventTracer, RingOverflowDropsOldestAndCounts) {
  obs::EventTracer tracer(8);
  const obs::StringId cat = tracer.intern("t");
  const obs::StringId name = tracer.intern("tick");
  for (int i = 0; i < 12; ++i)
    tracer.instant(static_cast<double>(i), cat, name);

  EXPECT_EQ(tracer.capacity(), 8u);
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.recorded(), 12u);
  EXPECT_EQ(tracer.dropped(), 4u);

  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Oldest-first, with the first 4 events overwritten.
    EXPECT_DOUBLE_EQ(events[i].ts, static_cast<double>(i + 4));
  }

  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.string_at(cat), "t");  // interned strings survive
}

TEST(EventTracer, ChromeTraceRoundTripsThroughUtilJson) {
  obs::EventTracer tracer(64);
  const obs::StringId cat = tracer.intern("cluster");
  const obs::StringId job = tracer.intern("job");
  const obs::StringId wait = tracer.intern("wait_s");
  const obs::StringId pw = tracer.intern("cluster_W");
  tracer.begin(0.25, cat, job, wait, 0.125);
  tracer.counter(0.25, cat, pw, 42.5);
  tracer.instant(0.5, cat, tracer.intern("arrival"));
  tracer.end(0.75, cat, job);

  // The exporter goes through util/json: the JsonValue tree must dump to
  // the same bytes the convenience string method produces.
  const JsonValue tree = tracer.chrome_trace();
  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(tree.dump(), json);

  // Chrome trace_event structure: phases as letters, timestamps in µs.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("250000"), std::string::npos);  // 0.25 s -> 250000 µs
  EXPECT_EQ(json.find("droppedEvents"), std::string::npos);

  // A saturated tracer flags the loss in the export.
  obs::EventTracer tiny(2);
  const obs::StringId c2 = tiny.intern("x");
  for (int i = 0; i < 5; ++i) tiny.instant(i, c2, c2);
  EXPECT_NE(tiny.chrome_trace_json().find("\"droppedEvents\":3"),
            std::string::npos);
}

TEST(EventTracer, CsvAndJsonlCoverEveryRetainedEvent) {
  obs::EventTracer tracer(16);
  const obs::StringId cat = tracer.intern("c");
  tracer.begin(0.0, cat, tracer.intern("span"));
  tracer.end(1.0, cat, tracer.intern("span"));
  tracer.counter(1.5, cat, tracer.intern("w"), 3.0);

  const std::string csv = tracer.csv();
  EXPECT_NE(csv.find("ts,phase,category,name,arg_key,arg_value"),
            std::string::npos);
  const std::string jsonl = tracer.jsonl();
  std::size_t lines = 0;
  for (char ch : jsonl) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);
}

TEST(EventTracer, ExportersEscapeHostileStrings) {
  // Regression: category/name/arg strings with embedded quotes,
  // backslashes, commas and newlines must survive every text exporter —
  // JSONL lines stay valid JSON, CSV fields get RFC 4180 quoting.
  obs::EventTracer tracer(16);
  const std::string cat = "bad\"cat\\with\nnewline";
  const std::string name = "name,with,commas";
  const std::string key = "arg\tkey";
  const obs::StringId cat_s = tracer.intern(cat);
  const obs::StringId name_s = tracer.intern(name);
  const obs::StringId key_s = tracer.intern(key);
  tracer.begin(0.5, cat_s, name_s, key_s, 1.25);
  tracer.end(1.0, cat_s, name_s);

  // Every JSONL line parses, and the strings round-trip exactly.
  const std::string jsonl = tracer.jsonl();
  std::size_t start = 0;
  std::size_t lines = 0;
  while (start < jsonl.size()) {
    const std::size_t nl = jsonl.find('\n', start);
    ASSERT_NE(nl, std::string::npos);
    const JsonValue line =
        JsonValue::parse(jsonl.substr(start, nl - start));
    EXPECT_EQ(line.at("cat").as_string(), cat);
    EXPECT_EQ(line.at("name").as_string(), name);
    start = nl + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);

  // The chrome export is a valid JSON document carrying the raw strings.
  const JsonValue chrome = JsonValue::parse(tracer.chrome_trace_json());
  EXPECT_EQ(chrome.at("traceEvents").at(0).at("cat").as_string(), cat);

  // CSV: fields with separators/quotes/newlines are quoted and doubled.
  const std::string csv = tracer.csv();
  EXPECT_NE(csv.find("\"bad\"\"cat\\with\nnewline\""), std::string::npos);
  EXPECT_NE(csv.find("\"name,with,commas\""), std::string::npos);
  // Unquoted fields stay bare (header row untouched).
  EXPECT_NE(csv.find("ts,phase,category,name,arg_key,arg_value\n"),
            std::string::npos);
}

// -------------------------------------------------------------- observer

TEST(Observer, ScopedInstallRestoresPreviousAndGlobalIsFallback) {
  ASSERT_EQ(obs::current(), nullptr);
  obs::Observer outer;
  obs::Observer inner;
  obs::Observer global;
  {
    obs::ScopedObserver a(outer);
    EXPECT_EQ(obs::current(), &outer);
    {
      obs::ScopedObserver b(inner);
      EXPECT_EQ(obs::current(), &inner);
    }
    EXPECT_EQ(obs::current(), &outer);

    // The thread-local override shadows the global fallback.
    obs::set_global(&global);
    EXPECT_EQ(obs::current(), &outer);
  }
  EXPECT_EQ(obs::current(), &global);
  obs::set_global(nullptr);
  EXPECT_EQ(obs::current(), nullptr);
}

// ------------------------------------------------------------ power probe

TEST(PowerProbe, CounterTrackRebuildsTheExactTrace) {
  obs::Observer o;
  obs::PowerProbe probe(&o, "node_W");
  probe.step(Seconds{0.0}, Watts{10.0});
  probe.step(Seconds{1.0}, Watts{25.0});
  probe.step(Seconds{3.0}, Watts{10.0});

  const power::PowerTrace rebuilt = obs::counter_track(o.tracer, "node_W");
  const Seconds horizon{4.0};
  EXPECT_DOUBLE_EQ(rebuilt.energy(horizon).value(),
                   probe.energy(horizon).value());
  EXPECT_DOUBLE_EQ(probe.energy(horizon).value(),
                   10.0 * 1.0 + 25.0 * 2.0 + 10.0 * 1.0);

  // A different channel on the same tracer stays separate.
  obs::PowerProbe other(&o, "other_W");
  other.step(Seconds{0.0}, Watts{100.0});
  EXPECT_DOUBLE_EQ(
      obs::counter_track(o.tracer, "node_W").energy(horizon).value(),
      probe.energy(horizon).value());
}

TEST(PowerProbe, MeasuredSeriesIntegratesToMeasuredEnergy) {
  obs::PowerProbe probe(nullptr, "w");
  probe.step(Seconds{0.0}, Watts{50.0});
  probe.step(Seconds{2.5}, Watts{120.0});

  const power::MeterSpec spec;
  const Seconds horizon{5.0};
  const std::vector<power::PowerSample> series =
      probe.measured_series(spec, horizon, 99);
  ASSERT_FALSE(series.empty());
  double integral = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double end = i + 1 < series.size() ? series[i + 1].start.value()
                                             : horizon.value();
    integral += series[i].level.value() * (end - series[i].start.value());
  }
  EXPECT_NEAR(integral, probe.measured_energy(spec, horizon, 99).value(),
              1e-9);
}

// ------------------------------------------------- deterministic replay

TEST(Replay, SameSeedClusterRunsExportByteIdenticalTraces) {
#if !HCEP_OBS
  GTEST_SKIP() << "simulator instrumentation compiled out (HCEP_OBS=OFF)";
#endif
  workload::Workload w;
  w.name = "replay";
  w.units_per_job = 5e5;
  w.demand["A9"] = workload::NodeDemand{2e5, 1e4, Bytes{0.0}};
  w.demand["K10"] = workload::NodeDemand{2e5, 1e4, Bytes{0.0}};
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(3, 2), w);

  cluster::SimOptions opts;
  opts.utilization = 0.6;
  opts.min_jobs = 40;
  opts.seed = 4242;
  opts.use_testbed_overheads = false;  // synthetic workload, no table row

  const auto run = [&](obs::Observer& o) {
    obs::ScopedObserver scope(o);
    return cluster::simulate(m, opts);
  };
  obs::Observer a;
  obs::Observer b;
  const cluster::SimResult ra = run(a);
  const cluster::SimResult rb = run(b);

  EXPECT_EQ(ra.jobs_completed, rb.jobs_completed);
  EXPECT_GT(a.tracer.recorded(), 0u);
  EXPECT_EQ(a.tracer.jsonl(), b.tracer.jsonl());
  EXPECT_EQ(a.tracer.csv(), b.tracer.csv());
  EXPECT_EQ(a.tracer.chrome_trace_json(), b.tracer.chrome_trace_json());
}

}  // namespace
