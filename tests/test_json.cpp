// JSON writer and study export.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "hcep/analysis/export.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/json.hpp"

namespace {

using namespace hcep;

TEST(Json, Scalars) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
  EXPECT_EQ(JsonValue::boolean(false).dump(), "false");
  EXPECT_EQ(JsonValue::number(std::int64_t{42}).dump(), "42");
  EXPECT_EQ(JsonValue::number(-3.5).dump(), "-3.5");
  EXPECT_EQ(JsonValue::string("hi").dump(), "\"hi\"");
}

TEST(Json, RejectsNonFiniteNumbers) {
  EXPECT_THROW((void)JsonValue::number(
                   std::numeric_limits<double>::quiet_NaN()),
               PreconditionError);
  EXPECT_THROW((void)JsonValue::number(
                   std::numeric_limits<double>::infinity()),
               PreconditionError);
}

TEST(Json, Escaping) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonValue::string("tab\there").dump(), "\"tab\\there\"");
}

TEST(Json, ArraysAndObjects) {
  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::number(std::int64_t{1}))
      .push(JsonValue::string("two"));
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");

  JsonValue obj = JsonValue::object();
  obj.set("a", JsonValue::number(std::int64_t{1}));
  obj.set("b", std::move(arr));
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[1,\"two\"]}");
}

TEST(Json, KindMismatchAndDuplicateKeysThrow) {
  JsonValue arr = JsonValue::array();
  EXPECT_THROW(arr.set("k", JsonValue()), PreconditionError);
  JsonValue obj = JsonValue::object();
  obj.set("k", JsonValue());
  EXPECT_THROW(obj.set("k", JsonValue()), PreconditionError);
  EXPECT_THROW(obj.push(JsonValue()), PreconditionError);
}

TEST(Json, PrettyPrintIndents) {
  JsonValue obj = JsonValue::object();
  obj.set("k", JsonValue::number(std::int64_t{1}));
  const std::string pretty = obj.dump_pretty();
  EXPECT_NE(pretty.find("{\n  \"k\": 1\n}"), std::string::npos);
  EXPECT_EQ(JsonValue::object().dump_pretty(), "{}");
  EXPECT_EQ(JsonValue::array().dump_pretty(), "[]");
}

TEST(Export, StudyDocumentContainsEverySection) {
  const core::PaperStudy study;
  const JsonValue doc = analysis::export_study(study);
  const std::string json = doc.dump();

  for (const auto* key :
       {"\"table4\"", "\"single_node\"", "\"table8\"", "\"pareto\"",
        "\"response\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Spot values: EP PPR seed and the knife-edge mix.
  EXPECT_NE(json.find("6048057"), std::string::npos);
  EXPECT_NE(json.find("25A9:7K10"), std::string::npos);
  // Valid bracket balance (cheap sanity: equal counts).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
