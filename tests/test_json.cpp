// JSON writer, parser and study export.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "hcep/analysis/export.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/json.hpp"

namespace {

using namespace hcep;

TEST(Json, Scalars) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
  EXPECT_EQ(JsonValue::boolean(false).dump(), "false");
  EXPECT_EQ(JsonValue::number(std::int64_t{42}).dump(), "42");
  EXPECT_EQ(JsonValue::number(-3.5).dump(), "-3.5");
  EXPECT_EQ(JsonValue::string("hi").dump(), "\"hi\"");
}

TEST(Json, RejectsNonFiniteNumbers) {
  EXPECT_THROW((void)JsonValue::number(
                   std::numeric_limits<double>::quiet_NaN()),
               PreconditionError);
  EXPECT_THROW((void)JsonValue::number(
                   std::numeric_limits<double>::infinity()),
               PreconditionError);
}

TEST(Json, Escaping) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonValue::string("tab\there").dump(), "\"tab\\there\"");
}

TEST(Json, ArraysAndObjects) {
  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::number(std::int64_t{1}))
      .push(JsonValue::string("two"));
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");

  JsonValue obj = JsonValue::object();
  obj.set("a", JsonValue::number(std::int64_t{1}));
  obj.set("b", std::move(arr));
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[1,\"two\"]}");
}

TEST(Json, KindMismatchAndDuplicateKeysThrow) {
  JsonValue arr = JsonValue::array();
  EXPECT_THROW(arr.set("k", JsonValue()), PreconditionError);
  JsonValue obj = JsonValue::object();
  obj.set("k", JsonValue());
  EXPECT_THROW(obj.set("k", JsonValue()), PreconditionError);
  EXPECT_THROW(obj.push(JsonValue()), PreconditionError);
}

TEST(Json, PrettyPrintIndents) {
  JsonValue obj = JsonValue::object();
  obj.set("k", JsonValue::number(std::int64_t{1}));
  const std::string pretty = obj.dump_pretty();
  EXPECT_NE(pretty.find("{\n  \"k\": 1\n}"), std::string::npos);
  EXPECT_EQ(JsonValue::object().dump_pretty(), "{}");
  EXPECT_EQ(JsonValue::array().dump_pretty(), "[]");
}

TEST(JsonParse, ScalarsAndContainers) {
  EXPECT_EQ(JsonValue::parse("null").kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse(" false ").as_bool());
  EXPECT_EQ(JsonValue::parse("42").as_int(), 42);
  EXPECT_EQ(JsonValue::parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");

  const JsonValue arr = JsonValue::parse("[1, \"two\", [3]]");
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.at(0).as_int(), 1);
  EXPECT_EQ(arr.at(1).as_string(), "two");
  EXPECT_EQ(arr.at(2).at(0).as_int(), 3);

  const JsonValue obj = JsonValue::parse("{\"a\": 1, \"b\": {\"c\": true}}");
  ASSERT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.at("a").as_int(), 1);
  EXPECT_TRUE(obj.at("b").at("c").as_bool());
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW((void)obj.at("missing"), PreconditionError);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(JsonValue::parse("\"a\\\"b\"").as_string(), "a\"b");
  EXPECT_EQ(JsonValue::parse("\"back\\\\slash\"").as_string(),
            "back\\slash");
  EXPECT_EQ(JsonValue::parse("\"line\\nbreak\\t!\"").as_string(),
            "line\nbreak\t!");
  EXPECT_EQ(JsonValue::parse("\"\\u0001\"").as_string(),
            std::string(1, '\x01'));
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(JsonParse, DumpParseDumpIsIdentity) {
  JsonValue obj = JsonValue::object();
  obj.set("s", JsonValue::string("quote\" and \\ and \nnewline"));
  obj.set("n", JsonValue::number(-12.0625));
  obj.set("i", JsonValue::number(std::int64_t{1234567890}));
  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::boolean(true)).push(JsonValue());
  obj.set("a", std::move(arr));

  const std::string once = obj.dump();
  EXPECT_EQ(JsonValue::parse(once).dump(), once);
  const std::string pretty = obj.dump_pretty();
  EXPECT_EQ(JsonValue::parse(pretty).dump(), once);
}

TEST(JsonParse, MalformedDocumentsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "[1]extra", "\"bad\\q\"", "nul", "--1", "1e"}) {
    EXPECT_THROW((void)JsonValue::parse(bad), PreconditionError) << bad;
  }
}

TEST(JsonParse, ReadAccessorsCheckKinds) {
  const JsonValue num = JsonValue::parse("1.5");
  EXPECT_THROW((void)num.as_int(), PreconditionError);  // not integral
  EXPECT_THROW((void)num.as_string(), PreconditionError);
  EXPECT_THROW((void)num.size(), PreconditionError);
  EXPECT_THROW((void)JsonValue::parse("[1]").at("k"), PreconditionError);
  EXPECT_THROW((void)JsonValue::parse("{}").at(std::size_t{0}),
               PreconditionError);
  EXPECT_THROW((void)JsonValue::parse("[]").at(std::size_t{0}),
               PreconditionError);
}

TEST(Export, StudyDocumentContainsEverySection) {
  const core::PaperStudy study;
  const JsonValue doc = analysis::export_study(study);
  const std::string json = doc.dump();

  for (const auto* key :
       {"\"table4\"", "\"single_node\"", "\"table8\"", "\"pareto\"",
        "\"response\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Spot values: EP PPR seed and the knife-edge mix.
  EXPECT_NE(json.find("6048057"), std::string::npos);
  EXPECT_NE(json.find("25A9:7K10"), std::string::npos);
  // Valid bracket balance (cheap sanity: equal counts).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
