// Energy-proportionality metrics: Table 3 definitions and the identities
// the paper reports (Section III-B).
#include <gtest/gtest.h>

#include "hcep/metrics/proportionality.hpp"
#include "hcep/util/error.hpp"

namespace {

using namespace hcep;
using namespace hcep::metrics;
using namespace hcep::literals;
using power::PowerCurve;

PowerCurve ideal_curve() { return PowerCurve::linear(0_W, 100_W); }

TEST(Metrics, IdealCurveIsPerfectlyProportional) {
  const PowerCurve c = ideal_curve();
  EXPECT_DOUBLE_EQ(ipr(c), 0.0);
  EXPECT_DOUBLE_EQ(dpr(c), 100.0);
  EXPECT_NEAR(epm(c), 1.0, 1e-9);
  EXPECT_NEAR(pg(c, 0.3), 0.0, 1e-12);
  EXPECT_NEAR(pg(c, 1.0), 0.0, 1e-12);
}

TEST(Metrics, ConstantPowerIsZeroProportional) {
  const PowerCurve c = PowerCurve::linear(100_W, 100_W);
  EXPECT_DOUBLE_EQ(ipr(c), 1.0);
  EXPECT_DOUBLE_EQ(dpr(c), 0.0);
  EXPECT_NEAR(epm(c), 0.0, 1e-9);
}

class LinearIdentity : public ::testing::TestWithParam<double> {};

TEST_P(LinearIdentity, PaperIdentitiesHoldForLinearProfiles) {
  // Section III-B: "the EPM and LDR values are equal to 1 - IPR, the DPR
  // value is (1 - IPR) x 100".
  const double ipr_target = GetParam();
  const PowerCurve c = PowerCurve::linear(Watts{100.0 * ipr_target}, 100_W);
  EXPECT_NEAR(ipr(c), ipr_target, 1e-12);
  EXPECT_NEAR(dpr(c), (1.0 - ipr_target) * 100.0, 1e-9);
  EXPECT_NEAR(epm(c), 1.0 - ipr_target, 1e-9);
  EXPECT_NEAR(ldr_paper(c), 1.0 - ipr_target, 1e-9);
  // The literal Table 3 LDR degenerates to 0 on linear profiles.
  EXPECT_NEAR(ldr(c), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(IprSweep, LinearIdentity,
                         ::testing::Values(0.59, 0.64, 0.68, 0.74, 0.83,
                                           0.89));

TEST(Metrics, PgFormulaForLinearCurve) {
  // PG(u) = IPR (1/u - 1) for a linear profile.
  const PowerCurve c = PowerCurve::linear(50_W, 100_W);
  for (double u : {0.1, 0.3, 0.5, 1.0}) {
    EXPECT_NEAR(pg(c, u), 0.5 * (1.0 / u - 1.0), 1e-9) << "u=" << u;
  }
}

TEST(Metrics, PgDecreasesWithUtilization) {
  const PowerCurve c = PowerCurve::linear(45_W, 69_W);
  double prev = 1e18;
  for (double u = 0.1; u <= 1.0; u += 0.1) {
    const double g = pg(c, u);
    EXPECT_LT(g, prev);
    prev = g;
  }
  EXPECT_NEAR(pg(c, 1.0), 0.0, 1e-12);
}

TEST(Metrics, QuadraticCurveHasNonzeroLiteralLdr) {
  const PowerCurve c = PowerCurve::quadratic(40_W, 100_W, 0.5);
  EXPECT_LT(ldr(c), 0.0);   // bows below the secant -> negative deviation
  EXPECT_GT(epm(c), epm(PowerCurve::linear(40_W, 100_W)));
}

TEST(Metrics, NegativeCurvatureGivesPositiveLdr) {
  const PowerCurve c = PowerCurve::quadratic(40_W, 100_W, -0.5);
  EXPECT_GT(ldr(c), 0.0);
}

TEST(Metrics, PprScalesThroughputOverPower) {
  const PowerCurve c = PowerCurve::linear(50_W, 100_W);
  EXPECT_DOUBLE_EQ(ppr(c, 1000.0, 1.0), 10.0);
  // At half utilization: 500 ops over 75 W.
  EXPECT_NEAR(ppr(c, 1000.0, 0.5), 500.0 / 75.0, 1e-12);
}

TEST(Metrics, PprIncreasesWithUtilizationWhenIdleDominates) {
  const PowerCurve c = PowerCurve::linear(80_W, 100_W);
  double prev = 0.0;
  for (double u = 0.1; u <= 1.0; u += 0.1) {
    const double v = ppr(c, 1e6, u);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Metrics, AnalyzeBundlesAllMetrics) {
  const PowerCurve c = PowerCurve::linear(65_W, 100_W);
  const ProportionalityReport r = analyze(c);
  EXPECT_NEAR(r.ipr, 0.65, 1e-12);
  EXPECT_NEAR(r.dpr, 35.0, 1e-9);
  EXPECT_NEAR(r.epm, 0.35, 1e-9);
  EXPECT_NEAR(r.ldr_paper, 0.35, 1e-9);
  EXPECT_NEAR(r.ldr_literal, 0.0, 1e-9);
}

TEST(Metrics, PercentOfPeakSelfNormalized) {
  const PowerCurve c = PowerCurve::linear(50_W, 100_W);
  EXPECT_DOUBLE_EQ(percent_of_peak(c, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_of_peak(c, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(percent_of_peak(c, 50.0), 75.0);
}

TEST(Metrics, PercentOfPeakAgainstReference) {
  // A small config against a large reference peak can sit below the
  // ideal line — the Figure 9 normalization.
  const PowerCurve small = PowerCurve::linear(10_W, 40_W);
  EXPECT_DOUBLE_EQ(percent_of_peak(small, 100.0, 100_W), 40.0);
  EXPECT_DOUBLE_EQ(percent_of_peak(small, 0.0, 100_W), 10.0);
}

TEST(Metrics, SublinearityAgainstReference) {
  const PowerCurve small = PowerCurve::linear(10_W, 40_W);
  const Watts ref{100.0};
  // At u=0.1 ideal share is 10 W, curve sits at 13 W: super-linear.
  EXPECT_FALSE(is_sublinear_at(small, 0.1, ref));
  // At u=0.5 ideal share is 50 W, curve sits at 25 W: sub-linear.
  EXPECT_TRUE(is_sublinear_at(small, 0.5, ref));
  const double crossover = sublinear_crossover(small, ref);
  EXPECT_GT(crossover, 0.1);
  EXPECT_LT(crossover, 0.5);
  // Against its own peak a linear curve never goes sub-linear.
  EXPECT_GT(sublinear_crossover(small, Watts{40.0}), 1.0);
}

TEST(Metrics, Validation) {
  const PowerCurve c = PowerCurve::linear(50_W, 100_W);
  EXPECT_THROW((void)pg(c, 0.0), PreconditionError);
  EXPECT_THROW((void)pg(c, 1.5), PreconditionError);
  EXPECT_THROW((void)ppr(c, 0.0, 0.5), PreconditionError);
  EXPECT_THROW((void)ppr(c, 10.0, 0.0), PreconditionError);
  EXPECT_THROW((void)percent_of_peak(c, 150.0), PreconditionError);
  EXPECT_THROW((void)is_sublinear_at(c, 0.5, Watts{0.0}), PreconditionError);
  EXPECT_THROW((void)ldr(c, 1), PreconditionError);
}

}  // namespace
