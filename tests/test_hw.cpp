// Hardware node models: Table 5 specs, DVFS, power components, catalog.
#include <gtest/gtest.h>

#include "hcep/hw/catalog.hpp"
#include "hcep/hw/node.hpp"
#include "hcep/util/error.hpp"

namespace {

using namespace hcep;
using namespace hcep::hw;
using namespace hcep::literals;

TEST(Catalog, A9MatchesTable5) {
  const NodeSpec a9 = cortex_a9();
  EXPECT_EQ(a9.name, "A9");
  EXPECT_EQ(a9.isa, Isa::kArmV7A);
  EXPECT_EQ(a9.cores, 4u);
  EXPECT_EQ(a9.dvfs.size(), 5u);  // footnote 4: 5 core frequencies
  EXPECT_DOUBLE_EQ(a9.dvfs.min().value(), 0.2e9);
  EXPECT_DOUBLE_EQ(a9.dvfs.max().value(), 1.4e9);
  EXPECT_DOUBLE_EQ(a9.memory.value(), 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(a9.nic_bandwidth.value(), 100e6 / 8.0);  // 100 Mbps
  EXPECT_NEAR(a9.power.idle.value(), 1.8, 1e-9);   // Section III-B
  EXPECT_DOUBLE_EQ(a9.nameplate_peak.value(), 5.0);
  EXPECT_DOUBLE_EQ(a9.caches.l3.value(), 0.0);  // no L3
}

TEST(Catalog, K10MatchesTable5) {
  const NodeSpec k10 = opteron_k10();
  EXPECT_EQ(k10.name, "K10");
  EXPECT_EQ(k10.isa, Isa::kX86_64);
  EXPECT_EQ(k10.cores, 6u);
  EXPECT_EQ(k10.dvfs.size(), 3u);  // footnote 4: 3 core frequencies
  EXPECT_DOUBLE_EQ(k10.dvfs.min().value(), 0.8e9);
  EXPECT_DOUBLE_EQ(k10.dvfs.max().value(), 2.1e9);
  EXPECT_DOUBLE_EQ(k10.nic_bandwidth.value(), 1e9 / 8.0);  // 1 Gbps
  EXPECT_NEAR(k10.power.idle.value(), 45.0, 1e-9);
  EXPECT_DOUBLE_EQ(k10.nameplate_peak.value(), 60.0);
  EXPECT_GT(k10.cost.crypto_speedup, 1.0);  // RSA acceleration
}

TEST(Catalog, IdlePowerRatioIsAtLeast25x) {
  // Section III-B: A9 idle (~1.8 W) at least 25x lower than K10 (~45 W).
  EXPECT_GE(opteron_k10().power.idle / cortex_a9().power.idle, 25.0);
}

TEST(Catalog, ByNameRoundTrip) {
  for (const auto& name : catalog_names()) {
    EXPECT_EQ(by_name(name).name, name);
  }
  EXPECT_THROW((void)by_name("Pentium"), PreconditionError);
}

TEST(Catalog, ExtensionNodesValidate) {
  cortex_a15().validate();
  xeon_e5().validate();
  EXPECT_GT(xeon_e5().cores, opteron_k10().cores);
}

TEST(Catalog, SwitchPowerAmortization) {
  EXPECT_DOUBLE_EQ(a9_switch_power().value(), 20.0);
  EXPECT_EQ(a9_nodes_per_switch(), 8u);
  EXPECT_DOUBLE_EQ(switch_power_for(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(switch_power_for(1).value(), 20.0);
  EXPECT_DOUBLE_EQ(switch_power_for(8).value(), 20.0);
  EXPECT_DOUBLE_EQ(switch_power_for(9).value(), 40.0);
  EXPECT_DOUBLE_EQ(switch_power_for(128).value(), 320.0);
}

TEST(DvfsLadder, MinMaxStepAccess) {
  DvfsLadder l({1_GHz, 2_GHz, 3_GHz});
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(l.min(), 1_GHz);
  EXPECT_EQ(l.max(), 3_GHz);
  EXPECT_EQ(l.step(1), 2_GHz);
  EXPECT_THROW((void)l.step(3), PreconditionError);
}

TEST(DvfsLadder, QuantizeUp) {
  DvfsLadder l({1_GHz, 2_GHz, 3_GHz});
  EXPECT_EQ(l.quantize_up(1.5_GHz), 2_GHz);
  EXPECT_EQ(l.quantize_up(2_GHz), 2_GHz);
  EXPECT_EQ(l.quantize_up(9_GHz), 3_GHz);  // clamps
  EXPECT_EQ(l.quantize_up(0.1_GHz), 1_GHz);
}

TEST(DvfsLadder, RejectsBadLadders) {
  EXPECT_THROW(DvfsLadder(std::vector<Hertz>{}), PreconditionError);
  EXPECT_THROW(DvfsLadder({2_GHz, 1_GHz}), PreconditionError);
}

TEST(PowerComponents, DvfsScaleIsOneAtFmax) {
  const NodeSpec a9 = cortex_a9();
  EXPECT_DOUBLE_EQ(a9.power.dvfs_scale(a9.dvfs.max(), a9.dvfs.max()), 1.0);
}

TEST(PowerComponents, DvfsScaleDecreasesSuperLinearly) {
  const NodeSpec a9 = cortex_a9();
  const double half = a9.power.dvfs_scale(a9.dvfs.max() * 0.5, a9.dvfs.max());
  EXPECT_LT(half, 0.5);  // exponent > 1
  EXPECT_GT(half, 0.0);
}

TEST(NodePower, IdleWhenNothingActive) {
  const NodeSpec a9 = cortex_a9();
  EXPECT_DOUBLE_EQ(a9.node_power(0, 0, false, false, a9.dvfs.max()).value(),
                   a9.power.idle.value());
}

TEST(NodePower, FullBlastNearNameplate) {
  const NodeSpec a9 = cortex_a9();
  const Watts p = a9.node_power(a9.cores, 0, true, true, a9.dvfs.max());
  EXPECT_GT(p.value(), a9.power.idle.value());
  EXPECT_NEAR(p.value(), a9.nameplate_peak.value(), 1.0);
}

TEST(NodePower, MonotoneInActiveCores) {
  const NodeSpec k10 = opteron_k10();
  double prev = 0.0;
  for (unsigned c = 0; c <= k10.cores; ++c) {
    const double p = k10.node_power(c, 0, false, false, k10.dvfs.max()).value();
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(NodePower, RejectsTooManyBusyCores) {
  const NodeSpec a9 = cortex_a9();
  EXPECT_THROW((void)a9.node_power(3, 2, false, false, a9.dvfs.max()),
               PreconditionError);
}

TEST(NodeSpec, ValidateCatchesCorruption) {
  NodeSpec n = cortex_a9();
  n.power.idle = Watts{0.0};
  EXPECT_THROW(n.validate(), PreconditionError);

  n = cortex_a9();
  n.nameplate_peak = Watts{0.5};
  EXPECT_THROW(n.validate(), PreconditionError);

  n = cortex_a9();
  n.cost.crypto_speedup = 0.5;
  EXPECT_THROW(n.validate(), PreconditionError);
}

TEST(Isa, ToString) {
  EXPECT_EQ(to_string(Isa::kArmV7A), "ARMv7-A");
  EXPECT_EQ(to_string(Isa::kX86_64), "x86_64");
  EXPECT_EQ(to_string(Isa::kArmV8A), "ARMv8-A");
}

TEST(CostModel, MemParallelismGrowsSubLinearly) {
  const CostModel& cm = cortex_a9().cost;
  EXPECT_DOUBLE_EQ(cm.mem_parallelism(1), 1.0);
  EXPECT_GT(cm.mem_parallelism(4), 1.0);
  EXPECT_LT(cm.mem_parallelism(4), 4.0);
  EXPECT_THROW((void)cm.mem_parallelism(0), PreconditionError);
}

}  // namespace
