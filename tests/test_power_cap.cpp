// Power-cap study (extension): throughput under average-power caps,
// racing vs pacing.
#include <gtest/gtest.h>

#include "hcep/analysis/power_cap.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::analysis;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

TEST(PowerCap, UncappedRegimeKeepsFullThroughput) {
  PowerCapOptions opts;
  opts.mix = {4, 2};
  const auto base = run_power_cap_study(wl("EP"), opts);
  opts.caps = {base.busy_power * 2.0};
  const auto r = run_power_cap_study(wl("EP"), opts);
  model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), wl("EP"));
  EXPECT_NEAR(r.points[0].race_throughput, m.peak_throughput(),
              m.peak_throughput() * 1e-9);
  EXPECT_GE(r.points[0].paced_throughput,
            r.points[0].race_throughput * (1.0 - 1e-9));
}

TEST(PowerCap, CapBelowIdleSustainsNothing) {
  PowerCapOptions opts;
  const auto base = run_power_cap_study(wl("EP"), opts);
  opts.caps = {base.idle_power * 0.5};
  const auto r = run_power_cap_study(wl("EP"), opts);
  EXPECT_DOUBLE_EQ(r.points[0].race_throughput, 0.0);
  EXPECT_DOUBLE_EQ(r.points[0].paced_throughput, 0.0);
}

TEST(PowerCap, PacedNeverWorseThanRace) {
  const auto r = run_power_cap_study(wl("blackscholes"));
  ASSERT_FALSE(r.points.empty());
  for (const auto& p : r.points) {
    EXPECT_GE(p.paced_throughput, p.race_throughput - 1e-9)
        << "cap=" << p.cap.value();
    EXPECT_GE(p.pacing_gain, 1.0 - 1e-12);
  }
}

TEST(PowerCap, ThroughputMonotoneInCap) {
  const auto r = run_power_cap_study(wl("EP"));
  double prev_race = -1.0, prev_paced = -1.0;
  for (const auto& p : r.points) {
    EXPECT_GE(p.race_throughput, prev_race - 1e-9);
    EXPECT_GE(p.paced_throughput, prev_paced - 1e-9);
    prev_race = p.race_throughput;
    prev_paced = p.paced_throughput;
  }
}

TEST(PowerCap, TightCapsRewardPacing) {
  // Near the idle floor, downclocked points convert scarce watts into
  // more work than duty-cycled full-speed execution.
  const auto base = run_power_cap_study(wl("EP"));
  PowerCapOptions opts;
  opts.caps = {base.idle_power + (base.busy_power - base.idle_power) * 0.15};
  const auto r = run_power_cap_study(wl("EP"), opts);
  EXPECT_GT(r.points[0].pacing_gain, 1.01);
  EXPECT_FALSE(r.points[0].paced_label.empty());
}

TEST(PowerCap, RaceLinearInterpolationFormula) {
  // X(C) = X_peak * (C - idle)/(busy - idle) in the binding regime.
  model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), wl("EP"));
  const Watts cap = m.idle_power() + (m.busy_power() - m.idle_power()) * 0.4;
  PowerCapOptions opts;
  opts.caps = {cap};
  const auto r = run_power_cap_study(wl("EP"), opts);
  EXPECT_NEAR(r.points[0].race_throughput, m.peak_throughput() * 0.4,
              m.peak_throughput() * 1e-9);
}

TEST(PowerCap, HomogeneousMixesWork) {
  PowerCapOptions opts;
  opts.mix = {6, 0};
  EXPECT_FALSE(run_power_cap_study(wl("EP"), opts).points.empty());
  opts.mix = {0, 3};
  EXPECT_FALSE(run_power_cap_study(wl("EP"), opts).points.empty());
}

TEST(PowerCap, Validation) {
  PowerCapOptions opts;
  opts.mix = {0, 0};
  EXPECT_THROW((void)run_power_cap_study(wl("EP"), opts),
               PreconditionError);
}

}  // namespace
