// Golden-series tests: pin the exact figure data the benches print so a
// regression in any layer (kernels, calibration, model, metrics) breaks a
// visible number, not just a shape. Values are derived from the seeds and
// verified against the paper's figures' readable features.
#include <gtest/gtest.h>

#include "hcep/analysis/cluster_study.hpp"
#include "hcep/analysis/pareto_study.hpp"
#include "hcep/analysis/single_node.hpp"
#include "hcep/config/budget.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::analysis;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

// ---------------------------------------------------------- Figure 5a (EP)

TEST(Fig5, EpCurveValuesAtTenPercentSteps) {
  const auto a9 = analyze_single_node(wl("EP"), hw::cortex_a9());
  const auto k10 = analyze_single_node(wl("EP"), hw::opteron_k10());
  // p(u) = IPR + (1 - IPR) u, in percent of peak.
  EXPECT_NEAR(metrics::percent_of_peak(a9.curve, 10.0), 76.6, 0.05);
  EXPECT_NEAR(metrics::percent_of_peak(a9.curve, 50.0), 87.0, 0.05);
  EXPECT_NEAR(metrics::percent_of_peak(k10.curve, 10.0), 68.5, 0.05);
  EXPECT_NEAR(metrics::percent_of_peak(k10.curve, 50.0), 82.5, 0.05);
  // K10 strictly below A9 across the sweep (more proportional).
  for (double u = 10.0; u < 100.0; u += 10.0) {
    EXPECT_LT(metrics::percent_of_peak(k10.curve, u),
              metrics::percent_of_peak(a9.curve, u))
        << u;
  }
}

// ---------------------------------------------------------- Figure 6a (EP)

TEST(Fig6, EpPprRatioHoldsAcrossUtilization) {
  const auto a9 = analyze_single_node(wl("EP"), hw::cortex_a9());
  const auto k10 = analyze_single_node(wl("EP"), hw::opteron_k10());
  // At u = 1 the ratio is the Table 6 ratio; at lower u it shifts with
  // the IPR difference but A9 stays >3x ahead everywhere.
  EXPECT_NEAR(a9.ppr_peak / k10.ppr_peak, 6048057.0 / 1414922.0, 1e-6);
  for (double u = 0.1; u <= 1.0; u += 0.1) {
    const double ratio =
        metrics::ppr(a9.curve, a9.peak_throughput, u) /
        metrics::ppr(k10.curve, k10.peak_throughput, u);
    EXPECT_GT(ratio, 3.0) << u;
    EXPECT_LT(ratio, 5.0) << u;
  }
}

// -------------------------------------------------------------- Figure 7

TEST(Fig7, MixOrderingIsMonotoneInA9Share) {
  const auto mixes =
      analyze_mixes(config::paper_budget_mixes(), wl("EP"));
  // At any utilization below 100 %, % of peak rises monotonically from
  // the all-K10 mix (index 0) to the all-A9 mix (index 4).
  for (double u : {1.0, 10.0, 40.0, 80.0}) {
    double prev = 0.0;
    for (const auto& m : mixes) {
      const double v = metrics::percent_of_peak(m.curve, u);
      EXPECT_GT(v, prev) << m.label << " at " << u;
      prev = v;
    }
  }
}

TEST(Fig7, LowUtilizationAnchors) {
  const auto mixes =
      analyze_mixes(config::paper_budget_mixes(), wl("EP"));
  EXPECT_NEAR(metrics::percent_of_peak(mixes[0].curve, 1.0), 65.4, 0.1);
  EXPECT_NEAR(metrics::percent_of_peak(mixes[4].curve, 1.0), 74.3, 0.1);
}

// -------------------------------------------------------------- Figure 8

TEST(Fig8, PprOrderingOppositeToFig7) {
  const auto mixes =
      analyze_mixes(config::paper_budget_mixes(), wl("EP"));
  for (double u : {0.2, 0.5, 1.0}) {
    double prev = 0.0;
    for (const auto& m : mixes) {
      const double v = metrics::ppr(m.curve, m.peak_throughput, u);
      EXPECT_GT(v, prev) << m.label;  // A9-heavier -> better PPR
      prev = v;
    }
  }
  // Endpoints at u = 1 are the single-node Table 6 PPRs.
  EXPECT_NEAR(metrics::ppr(mixes[0].curve, mixes[0].peak_throughput, 1.0),
              1414922.0, 1.0);
  EXPECT_NEAR(metrics::ppr(mixes[4].curve, mixes[4].peak_throughput, 1.0),
              6048057.0, 1.0);
}

// -------------------------------------------------------------- Figure 9

TEST(Fig9, CrossoverGoldenValues) {
  ParetoStudyOptions opts;
  opts.compute_frontier = false;
  const auto r = run_pareto_study(wl("EP"), opts);
  ASSERT_EQ(r.mixes.size(), 5u);
  EXPECT_NEAR(r.reference_peak.value(), 908.6, 0.5);
  // Crossovers, in order (32,12)(25,10)(25,8)(25,7)(25,5).
  EXPECT_GT(r.mixes[0].crossover_utilization, 1.0);  // never
  EXPECT_NEAR(r.mixes[1].crossover_utilization, 0.76, 0.02);
  EXPECT_NEAR(r.mixes[2].crossover_utilization, 0.58, 0.02);
  EXPECT_NEAR(r.mixes[3].crossover_utilization, 0.50, 0.02);
  EXPECT_NEAR(r.mixes[4].crossover_utilization, 0.35, 0.02);
}

TEST(Fig9, PercentOfReferenceAtFiftyPercent) {
  ParetoStudyOptions opts;
  opts.compute_frontier = false;
  const auto r = run_pareto_study(wl("EP"), opts);
  // The figure's u = 50 % column (values from the fig9 bench output).
  const double expected[] = {82.9, 68.7, 56.1, 49.8, 37.3};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(metrics::percent_of_peak(r.mixes[i].curve, 50.0,
                                         r.reference_peak),
                expected[i], 0.2)
        << r.mixes[i].mix.label();
  }
}

// --------------------------------------------------- Figures 9/10 contrast

TEST(Fig10, X264CrossesEarlierThanEpForSmallMixes) {
  ParetoStudyOptions opts;
  opts.compute_frontier = false;
  const auto ep = run_pareto_study(wl("EP"), opts);
  const auto x264 = run_pareto_study(wl("x264"), opts);
  // "the number of sub-linear configurations for x264 is larger":
  // every labelled mix crosses at or before EP's crossover.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_LE(x264.mixes[i].crossover_utilization,
              ep.mixes[i].crossover_utilization + 1e-9)
        << x264.mixes[i].mix.label();
  }
}

}  // namespace
