// Replication statistics: confidence intervals over independent runs.
#include <gtest/gtest.h>

#include <cmath>

#include "hcep/cluster/replication.hpp"
#include "hcep/cluster/simulator.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::cluster;

TEST(TCritical, TableValuesAndLimit) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-9);
  EXPECT_NEAR(t_critical_95(9), 2.262, 1e-9);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-9);
  EXPECT_NEAR(t_critical_95(1000), 1.960, 1e-9);
  EXPECT_GT(t_critical_95(2), t_critical_95(20));  // monotone down
  EXPECT_THROW((void)t_critical_95(0), PreconditionError);
}

TEST(Replicate, RecoversKnownMean) {
  // Metric: mean of 1000 normals with mu = 5; CI must cover 5.
  const auto estimate = replicate(
      [](std::uint64_t seed) {
        Rng rng(seed);
        double acc = 0.0;
        for (int i = 0; i < 1000; ++i) acc += rng.normal(5.0, 2.0);
        return acc / 1000.0;
      },
      20, 99);
  EXPECT_EQ(estimate.replications, 20u);
  EXPECT_TRUE(estimate.covers(5.0))
      << estimate.mean << " +/- " << estimate.half_width;
  EXPECT_LT(estimate.half_width, 0.2);
  EXPECT_NEAR(estimate.upper() - estimate.lower(),
              2.0 * estimate.half_width, 1e-12);
}

TEST(Replicate, DeterministicMetricHasZeroWidth) {
  const auto estimate =
      replicate([](std::uint64_t) { return 7.0; }, 5, 1);
  EXPECT_DOUBLE_EQ(estimate.mean, 7.0);
  EXPECT_DOUBLE_EQ(estimate.half_width, 0.0);
}

TEST(Replicate, MoreReplicationsShrinkTheInterval) {
  const auto metric = [](std::uint64_t seed) {
    Rng rng(seed);
    return rng.normal(0.0, 1.0);
  };
  const auto small = replicate(metric, 5, 7);
  const auto large = replicate(metric, 80, 7);
  EXPECT_LT(large.half_width, small.half_width);
}

TEST(Replicate, ClusterSimPowerIntervalCoversModel) {
  static const auto ep = workload::make_workload("EP");
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(2, 1), ep);
  const auto estimate = replicate(
      [&](std::uint64_t seed) {
        SimOptions opts;
        opts.utilization = 0.5;
        opts.min_jobs = 400;
        opts.seed = seed;
        opts.use_testbed_overheads = false;
        const auto r = simulate(m, opts);
        // Normalize out the realized-utilization jitter.
        return r.average_power.value() -
               m.average_power(r.measured_utilization).value();
      },
      12, 3);
  // The sim-minus-model discrepancy interval must cover zero up to
  // floating-point residue (the deterministic parts cancel exactly, so
  // both mean and width sit at the 1e-13 level).
  EXPECT_LE(std::abs(estimate.mean), estimate.half_width + 1e-9)
      << estimate.mean << " +/- " << estimate.half_width;
}

TEST(Replicate, Validation) {
  EXPECT_THROW((void)replicate([](std::uint64_t) { return 0.0; }, 1),
               PreconditionError);
}

}  // namespace
