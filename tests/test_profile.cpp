// Telemetry analysis layer: trace profiler, time-series rollups and the
// run-report pipeline (hcep::obs::profile / run_report).
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hcep/cluster/simulator.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/obs/power_probe.hpp"
#include "hcep/obs/profile.hpp"
#include "hcep/obs/run_report.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/characterize.hpp"

namespace {

using namespace hcep;

// --------------------------------------------------------- trace decode

obs::Trace synthetic_trace() {
  // Hand-built timeline:
  //   t=0   B outer          t=4  E inner
  //   t=1   C power=100      t=6  E outer
  //   t=2   B inner (wait)   t=7  C power=50
  //   t=3   C power=300
  obs::Trace t;
  const obs::StringId cat = t.intern("cat");
  const obs::StringId outer = t.intern("outer");
  const obs::StringId inner = t.intern("inner");
  const obs::StringId wait = t.intern("wait_s");
  const obs::StringId power = t.intern("power_W");
  const auto no_arg = obs::EventTracer::kNoArg;
  t.events = {
      {0.0, obs::EventType::kBegin, cat, outer, no_arg, 0.0},
      {1.0, obs::EventType::kCounter, cat, power, no_arg, 100.0},
      {2.0, obs::EventType::kBegin, cat, inner, wait, 0.5},
      {3.0, obs::EventType::kCounter, cat, power, no_arg, 300.0},
      {4.0, obs::EventType::kEnd, cat, inner, no_arg, 0.0},
      {6.0, obs::EventType::kEnd, cat, outer, no_arg, 0.0},
      {7.0, obs::EventType::kCounter, cat, power, no_arg, 50.0},
  };
  return t;
}

TEST(TraceDecode, FromLiveTracerRemapsStringIds) {
  obs::EventTracer tracer(8);
  // Intern a string the retained events never reference, so the decoded
  // table must be remapped, not copied.
  tracer.intern("unreferenced");
  const obs::StringId cat = tracer.intern("cluster");
  const obs::StringId name = tracer.intern("job");
  tracer.begin(1.0, cat, name);
  tracer.end(2.0, cat, name);

  const obs::Trace t = obs::Trace::from(tracer);
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.string_at(t.events[0].category), "cluster");
  EXPECT_EQ(t.string_at(t.events[0].name), "job");
  EXPECT_EQ(t.events[0].arg_key, obs::EventTracer::kNoArg);
}

TEST(TraceDecode, JsonlRoundTripPreservesEventsExactly) {
  obs::EventTracer tracer(64);
  const obs::StringId cat = tracer.intern("c\"at\\");
  const obs::StringId name = tracer.intern("na\nme");
  const obs::StringId key = tracer.intern("wait_s");
  tracer.begin(0.25, cat, name, key, 1.0 / 3.0);
  tracer.counter(0.5, cat, name, 123.456789012345);
  tracer.instant(0.75, cat, name);
  tracer.end(1.0, cat, name);

  const obs::Trace t = obs::read_trace_jsonl(tracer.jsonl());
  ASSERT_EQ(t.events.size(), 4u);
  EXPECT_EQ(t.string_at(t.events[0].category), "c\"at\\");
  EXPECT_EQ(t.string_at(t.events[0].name), "na\nme");
  EXPECT_EQ(t.string_at(t.events[0].arg_key), "wait_s");
  EXPECT_EQ(t.events[0].arg_value, 1.0 / 3.0);  // byte-exact round trip
  EXPECT_EQ(t.events[1].type, obs::EventType::kCounter);
  EXPECT_EQ(t.events[1].arg_key, obs::EventTracer::kNoArg);
  EXPECT_EQ(t.events[1].arg_value, 123.456789012345);
  EXPECT_EQ(t.events[2].type, obs::EventType::kInstant);
  EXPECT_EQ(t.events[3].type, obs::EventType::kEnd);
}

TEST(TraceDecode, MalformedJsonlNamesTheLine) {
  try {
    (void)obs::read_trace_jsonl(
        "{\"ts\":0,\"ph\":\"B\",\"cat\":\"c\",\"name\":\"n\"}\n"
        "{not json}\n");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(
      (void)obs::read_trace_jsonl(
          "{\"ts\":0,\"ph\":\"X\",\"cat\":\"c\",\"name\":\"n\"}\n"),
      PreconditionError);
}

// ------------------------------------------------------------- profiler

TEST(Profiler, RollupsSelfTimeWallTimeAndCriticalPath) {
  const obs::TraceProfile p = obs::profile_trace(synthetic_trace());
  EXPECT_EQ(p.events, 7u);
  EXPECT_DOUBLE_EQ(p.horizon_s, 7.0);
  // Spans open during [0, 6): critical path 6, idle 1.
  EXPECT_DOUBLE_EQ(p.critical_path_s, 6.0);
  EXPECT_DOUBLE_EQ(p.idle_s, 1.0);
  EXPECT_EQ(p.unmatched_begins, 0u);
  EXPECT_EQ(p.unmatched_ends, 0u);

  ASSERT_EQ(p.spans.size(), 2u);  // sorted: inner before outer
  const obs::SpanRollup& inner = p.spans[0];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.count, 1u);
  EXPECT_DOUBLE_EQ(inner.wall_s, 2.0);
  EXPECT_DOUBLE_EQ(inner.self_s, 2.0);
  EXPECT_DOUBLE_EQ(inner.wait_s, 0.5);
  const obs::SpanRollup& outer = p.spans[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_DOUBLE_EQ(outer.wall_s, 6.0);
  EXPECT_DOUBLE_EQ(outer.self_s, 4.0);  // 6 minus inner's 2

  // Queue decomposition covers only the wait-tagged span.
  EXPECT_EQ(p.queue.jobs, 1u);
  EXPECT_DOUBLE_EQ(p.queue.total_wait_s, 0.5);
  EXPECT_DOUBLE_EQ(p.queue.total_service_s, 2.0);
  EXPECT_DOUBLE_EQ(p.queue.p95_wait_s, 0.5);

  // Census and counter rollups.
  EXPECT_EQ(p.count_of("cat", "power_W", 'C'), 3u);
  EXPECT_EQ(p.count_of("cat", "outer", 'B'), 1u);
  EXPECT_EQ(p.count_of("cat", "missing", 'B'), 0u);
  ASSERT_EQ(p.counters.size(), 1u);
  EXPECT_EQ(p.counters[0].samples, 3u);
  EXPECT_DOUBLE_EQ(p.counters[0].min, 50.0);
  EXPECT_DOUBLE_EQ(p.counters[0].max, 300.0);
  EXPECT_DOUBLE_EQ(p.counters[0].last, 50.0);
}

TEST(Profiler, CountsUnmatchedBeginsAndEndsFromRingTruncation) {
  obs::Trace t;
  const obs::StringId cat = t.intern("c");
  const obs::StringId a = t.intern("a");
  const obs::StringId b = t.intern("b");
  const auto no_arg = obs::EventTracer::kNoArg;
  // End without begin (truncated head), begin without end (still open).
  t.events = {
      {1.0, obs::EventType::kEnd, cat, a, no_arg, 0.0},
      {2.0, obs::EventType::kBegin, cat, b, no_arg, 0.0},
  };
  const obs::TraceProfile p = obs::profile_trace(t);
  EXPECT_EQ(p.unmatched_ends, 1u);
  EXPECT_EQ(p.unmatched_begins, 1u);
  EXPECT_TRUE(p.spans.empty());
}

TEST(Profiler, InterleavedSpansCloseInnermostMatchingKey) {
  obs::Trace t;
  const obs::StringId cat = t.intern("c");
  const obs::StringId a = t.intern("a");
  const obs::StringId b = t.intern("b");
  const auto no_arg = obs::EventTracer::kNoArg;
  // a opens, b opens, a closes (non-LIFO), b closes: both well-formed.
  t.events = {
      {0.0, obs::EventType::kBegin, cat, a, no_arg, 0.0},
      {1.0, obs::EventType::kBegin, cat, b, no_arg, 0.0},
      {2.0, obs::EventType::kEnd, cat, a, no_arg, 0.0},
      {3.0, obs::EventType::kEnd, cat, b, no_arg, 0.0},
  };
  const obs::TraceProfile p = obs::profile_trace(t);
  EXPECT_EQ(p.unmatched_begins + p.unmatched_ends, 0u);
  ASSERT_EQ(p.spans.size(), 2u);
  EXPECT_DOUBLE_EQ(p.spans[0].wall_s, 2.0);  // a
  EXPECT_DOUBLE_EQ(p.spans[1].wall_s, 2.0);  // b
  EXPECT_DOUBLE_EQ(p.critical_path_s, 3.0);
}

TEST(Profiler, FoldedStacksExportNestedSelfTime) {
  const std::string folded = obs::folded_stacks(synthetic_trace());
  // outer alone for 4 s (1e6-us samples are exact), outer;inner for 2 s.
  EXPECT_NE(folded.find("cat:outer 4000000\n"), std::string::npos)
      << folded;
  EXPECT_NE(folded.find("cat:outer;cat:inner 2000000\n"),
            std::string::npos)
      << folded;
}

// -------------------------------------------------------------- rollups

TEST(Rollup, WindowEnergySumsToExactTraceEnergy) {
  const obs::Trace t = synthetic_trace();
  const obs::SeriesRollup r = obs::rollup_counter(t, "power_W", 2.0, 7.0);
  ASSERT_EQ(r.windows.size(), 4u);
  // Track: 0 W on [0,1), 100 W on [1,3), 300 W on [3,7).
  const double exact = 100.0 * 2.0 + 300.0 * 4.0;
  EXPECT_NEAR(r.total_energy_j.value(), exact, std::abs(exact) * 1e-12);
  EXPECT_DOUBLE_EQ(r.windows[0].energy_j.value(), 100.0);   // [0,2): 1 s of 100
  EXPECT_DOUBLE_EQ(r.windows[1].energy_j.value(), 400.0);   // [2,4): 100 + 300
  EXPECT_DOUBLE_EQ(r.windows[2].energy_j.value(), 600.0);   // [4,6): 2 s of 300
  EXPECT_DOUBLE_EQ(r.windows[3].energy_j.value(), 300.0);   // [6,7): partial
  EXPECT_DOUBLE_EQ(r.windows[3].t1_s, 7.0);

  // Window stats: [2,4) holds 1 s at 100 and 1 s at 300.
  EXPECT_DOUBLE_EQ(r.windows[1].min, 100.0);
  EXPECT_DOUBLE_EQ(r.windows[1].max, 300.0);
  EXPECT_DOUBLE_EQ(r.windows[1].mean, 200.0);
  // p95 lands 90% of the way through the 300 W occupancy bucket; the
  // histogram estimator interpolates linearly: 100 + 0.9 * (300 - 100).
  EXPECT_NEAR(r.windows[1].p95, 280.0, 1e-9);
  // Constant window: p95 equals the level exactly.
  EXPECT_DOUBLE_EQ(r.windows[2].p95, 300.0);
  EXPECT_EQ(r.windows[1].samples, 1u);  // the t=3 counter event

  EXPECT_THROW((void)obs::rollup_counter(t, "power_W", 0.0),
               PreconditionError);
  EXPECT_THROW((void)obs::rollup_counter(t, "no_such_channel", 1.0),
               PreconditionError);
}

TEST(Rollup, ChannelsAreDiscoveredAndSorted) {
  obs::Trace t;
  const obs::StringId cat = t.intern("c");
  const obs::StringId zeta = t.intern("zeta_W");
  const obs::StringId alpha = t.intern("alpha_W");
  const auto no_arg = obs::EventTracer::kNoArg;
  t.events = {
      {0.0, obs::EventType::kCounter, cat, zeta, no_arg, 1.0},
      {1.0, obs::EventType::kCounter, cat, alpha, no_arg, 2.0},
  };
  const std::vector<std::string> channels = obs::counter_channels(t);
  ASSERT_EQ(channels.size(), 2u);
  EXPECT_EQ(channels[0], "alpha_W");
  EXPECT_EQ(channels[1], "zeta_W");
}

// ------------------------------------------- simulator round trip + report

#if HCEP_OBS

workload::Workload synthetic_workload() {
  workload::Workload w;
  w.name = "synthetic";
  w.units_per_job = 5e5;
  w.demand["A9"] = workload::NodeDemand{5e4, 1e4, Bytes{0.0}};
  w.demand["K10"] = workload::NodeDemand{5e4, 1e4, Bytes{0.0}};
  return w;
}

cluster::SimResult traced_run(obs::Observer& observer) {
  // The model keeps a reference to the workload; it must outlive it.
  static const workload::Workload w = synthetic_workload();
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(3, 2), w);
  cluster::SimOptions options;
  options.utilization = 0.55;
  options.batch_size = 2;
  options.min_jobs = 40;
  options.seed = 77;
  options.use_testbed_overheads = false;
  obs::ScopedObserver scope(observer);
  return cluster::simulate(m, options);
}

TEST(RoundTrip, ExportedTraceProfileMatchesLiveCounters) {
  obs::Observer observer;
  const cluster::SimResult r = traced_run(observer);
  ASSERT_EQ(observer.tracer.dropped(), 0u);

  // Export -> re-read through the JSONL reader -> profile; the event
  // census must equal the live per-category metric counters.
  const obs::Trace t = obs::read_trace_jsonl(observer.tracer.jsonl());
  const obs::TraceProfile p = obs::profile_trace(t);
  const obs::MetricsSnapshot snap = observer.metrics.snapshot();

  EXPECT_EQ(p.count_of("cluster", "arrival", 'i'),
            snap.counter("sim.arrival_events"));
  EXPECT_EQ(p.count_of("cluster", "job", 'E'),
            snap.counter("sim.completion_events"));
  EXPECT_EQ(p.count_of("cluster", "job", 'E'), r.jobs_completed);
  // cluster_W counter events: the t=0 initial level plus one per step.
  std::uint64_t power_samples = 0;
  for (const obs::EventCount& c : p.counts)
    if (c.name == "cluster_W" && c.phase == 'C') power_samples += c.count;
  EXPECT_EQ(power_samples, 1u + snap.counter("sim.power_events"));

  // Node spans carry the group name and balance per group.
  EXPECT_EQ(p.count_of("node", "A9", 'B'), p.count_of("node", "A9", 'E'));
  EXPECT_GT(p.count_of("node", "A9", 'B'), 0u);
  EXPECT_EQ(p.count_of("node", "K10", 'B'),
            p.count_of("node", "K10", 'E'));

  // Queue decomposition covers every completed job.
  EXPECT_EQ(p.queue.jobs, r.jobs_completed);
  EXPECT_NEAR(p.queue.mean_service_s, r.mean_service.value(), 1e-9);
}

TEST(RoundTrip, RollupEnergyMatchesPowerTraceExactly) {
  obs::Observer observer;
  const cluster::SimResult r = traced_run(observer);
  const obs::Trace t = obs::Trace::from(observer.tracer);

  // The attribution invariant: windowed energies over cluster_W sum to
  // the exact PowerTrace integral within 1e-9 relative — for several
  // window widths, including ones that straddle step edges.
  const double window = r.window.value();
  const double exact = r.energy_exact.value();
  for (const double interval :
       {window / 3.0, window / 7.0, window / 16.0, window / 97.0}) {
    const obs::SeriesRollup rollup =
        obs::rollup_counter(t, "cluster_W", interval, window);
    EXPECT_NEAR(rollup.total_energy_j.value(), exact, std::abs(exact) * 1e-9)
        << "interval " << interval;
    double sum = 0.0;
    for (const obs::RollupWindow& w : rollup.windows) sum += w.energy_j.value();
    EXPECT_DOUBLE_EQ(sum, rollup.total_energy_j.value());
    for (const obs::RollupWindow& w : rollup.windows) {
      EXPECT_LE(w.min, w.mean + 1e-12);
      EXPECT_LE(w.mean, w.max + 1e-12);
      EXPECT_LE(w.p95, w.max + 1e-12);
      EXPECT_GE(w.p95, w.min - 1e-12);
    }
  }
}

TEST(RunReport, SameSeedRunsProduceByteIdenticalJson) {
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    obs::Observer observer;
    const cluster::SimResult r = traced_run(observer);
    const obs::Trace t = obs::Trace::from(observer.tracer);
    const obs::MetricsSnapshot snap = observer.metrics.snapshot();
    *out = obs::make_run_report(t, "determinism", r.window.value() / 8.0,
                                &snap)
               .json();
  }
  EXPECT_EQ(first, second);
  // And the bytes are valid JSON that round-trips through the parser.
  EXPECT_EQ(JsonValue::parse(first).dump(), first);
}

#endif  // HCEP_OBS

TEST(RunReport, SynthesizesCensusCountersWithoutLiveMetrics) {
  const obs::RunReport report =
      obs::make_run_report(synthetic_trace(), "file", 2.0);
  EXPECT_EQ(report.title, "file");
  ASSERT_EQ(report.rollups.size(), 1u);
  EXPECT_EQ(report.rollups[0].channel, "power_W");
  // File-loaded traces get census counters for Prometheus exposition.
  std::uint64_t census = 0;
  for (const auto& [name, value] : report.metrics.counters)
    if (name == "trace.events.cat.power_W.C") census = value;
  EXPECT_EQ(census, 3u);
}

// ----------------------------------------------------------- prometheus

TEST(Prometheus, TextExpositionIsLineParseable) {
  obs::MetricsSnapshot snap;
  snap.counters = {{"sim.jobs", 42}, {"des.events", 7}};
  snap.gauges = {{"cluster.load", 0.75}};
  obs::HistogramSnapshot h;
  h.name = "wait seconds";  // space must be sanitized
  h.bounds = {0.1, 1.0};
  h.counts = {3, 2, 1};  // last is the overflow bucket
  h.count = 6;
  h.sum = 4.5;
  snap.histograms = {h};

  const std::string text = obs::prometheus_text(snap);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // Every line is either "# TYPE <name> <kind>" or "<name>[{...}] <num>".
  std::size_t lines = 0, start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++lines;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string kind = rest.substr(space + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "histogram")
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    for (const char ch : name.substr(0, name.find('{'))) {
      const bool valid = (ch >= 'a' && ch <= 'z') ||
                         (ch >= 'A' && ch <= 'Z') ||
                         (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
      EXPECT_TRUE(valid) << "invalid char '" << ch << "' in " << line;
    }
    EXPECT_NO_THROW({ (void)std::stod(line.substr(space + 1)); }) << line;
  }
  EXPECT_GT(lines, 8u);

  // Histogram exposition: cumulative buckets, +Inf equals _count.
  EXPECT_NE(text.find("wait_seconds_bucket{le=\"0.1\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wait_seconds_bucket{le=\"1\"} 5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wait_seconds_bucket{le=\"+Inf\"} 6"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wait_seconds_sum 4.5"), std::string::npos);
  EXPECT_NE(text.find("wait_seconds_count 6"), std::string::npos);
}

TEST(Prometheus, MergeSumsCountersAndAddsHistogramsBucketwise) {
  obs::MetricsSnapshot a, b;
  a.counters = {{"jobs", 10}};
  b.counters = {{"jobs", 5}, {"extra", 1}};
  a.gauges = {{"level", 1.0}};
  b.gauges = {{"level", 2.0}};
  obs::HistogramSnapshot ha;
  ha.name = "h";
  ha.bounds = {1.0};
  ha.counts = {2, 1};
  ha.count = 3;
  ha.sum = 2.5;
  obs::HistogramSnapshot hb = ha;
  hb.counts = {1, 0};
  hb.count = 1;
  hb.sum = 0.5;
  a.histograms = {ha};
  b.histograms = {hb};

  const obs::MetricsSnapshot merged = obs::merge_snapshots({a, b});
  EXPECT_EQ(merged.counter("jobs"), 15u);
  EXPECT_EQ(merged.counter("extra"), 1u);
  EXPECT_DOUBLE_EQ(merged.gauge("level"), 2.0);  // last writer wins
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].count, 4u);
  EXPECT_EQ(merged.histograms[0].counts[0], 3u);
  EXPECT_DOUBLE_EQ(merged.histograms[0].sum, 3.0);

  obs::HistogramSnapshot hc = ha;
  hc.bounds = {2.0};
  obs::MetricsSnapshot c;
  c.histograms = {hc};
  EXPECT_THROW((void)obs::merge_snapshots({a, c}), PreconditionError);
}

TEST(Prometheus, MergeKeepsFirstSeenOrderAcrossDisjointNames) {
  // Entry order of the merged snapshot is first-seen across the inputs
  // in input order — the property that makes merged fleet reports
  // byte-deterministic. Disjoint name sets must interleave exactly as
  // encountered, never re-sort.
  obs::MetricsSnapshot a, b;
  a.counters = {{"zeta", 1}, {"alpha", 2}};
  b.counters = {{"mid", 3}, {"alpha", 4}};
  a.gauges = {{"g2", 1.0}};
  b.gauges = {{"g1", 2.0}};

  const obs::MetricsSnapshot merged = obs::merge_snapshots({a, b});
  ASSERT_EQ(merged.counters.size(), 3u);
  EXPECT_EQ(merged.counters[0].first, "zeta");
  EXPECT_EQ(merged.counters[1].first, "alpha");
  EXPECT_EQ(merged.counters[2].first, "mid");
  EXPECT_EQ(merged.counters[1].second, 6u);
  ASSERT_EQ(merged.gauges.size(), 2u);
  EXPECT_EQ(merged.gauges[0].first, "g2");
  EXPECT_EQ(merged.gauges[1].first, "g1");

  // Merging in the opposite input order flips the entry order — the
  // order is a function of the input sequence, not of the names.
  const obs::MetricsSnapshot flipped = obs::merge_snapshots({b, a});
  EXPECT_EQ(flipped.counters[0].first, "mid");
  EXPECT_EQ(flipped.counters[1].first, "alpha");
  EXPECT_EQ(flipped.counters[2].first, "zeta");
}

TEST(Prometheus, MergeRejectsMismatchedBucketLayouts) {
  // Equal bounds do not imply equal bucket layouts for hand-built
  // snapshots; before the explicit length check the merge indexed the
  // longer counts vector into the shorter one (out-of-bounds write).
  obs::HistogramSnapshot ha;
  ha.name = "h";
  ha.bounds = {1.0};
  ha.counts = {2, 1};
  ha.count = 3;
  ha.sum = 2.5;
  obs::HistogramSnapshot hb = ha;
  hb.counts = {1, 0, 7};  // same bounds, extra bucket
  obs::MetricsSnapshot a, b;
  a.histograms = {ha};
  b.histograms = {hb};
  EXPECT_THROW((void)obs::merge_snapshots({a, b}), PreconditionError);

  // The other direction (shorter into longer) must also throw, not
  // silently drop the tail bucket.
  EXPECT_THROW((void)obs::merge_snapshots({b, a}), PreconditionError);
}

}  // namespace
