// Discrete-event kernel: ordering, FIFO tie-breaking, horizons.
#include <gtest/gtest.h>

#include <vector>

#include "hcep/des/simulator.hpp"
#include "hcep/util/error.hpp"

namespace {

using namespace hcep;
using namespace hcep::des;
using namespace hcep::literals;

TEST(Des, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3_s, [&] { order.push_back(3); });
  sim.schedule_at(1_s, [&] { order.push_back(1); });
  sim.schedule_at(2_s, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Des, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(1_s, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Des, ClockAdvancesToEventTime) {
  Simulator sim;
  Seconds seen{};
  sim.schedule_at(5_s, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen.value(), 5.0);
  EXPECT_DOUBLE_EQ(sim.now().value(), 5.0);
}

TEST(Des, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(2_s, [&] {
    sim.schedule_in(3_s, [&] { times.push_back(sim.now().value()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(Des, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) sim.schedule_in(1_ms, chain);
  };
  sim.schedule_at(0_s, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_NEAR(sim.now().value(), 0.099, 1e-12);
}

TEST(Des, RunUntilStopsAtHorizonAndSetsClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_s, [&] { ++fired; });
  sim.schedule_at(10_s, [&] { ++fired; });
  sim.run_until(5_s);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().value(), 5.0);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Des, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5_s, [&] { fired = true; });
  sim.run_until(5_s);
  EXPECT_TRUE(fired);
}

TEST(Des, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1_s, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Des, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(2_s, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1_s, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_in(Seconds{-1.0}, [] {}), PreconditionError);
  EXPECT_THROW(sim.run_until(1_s), PreconditionError);
}

TEST(Des, RejectsEmptyCallback) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1_s, EventCallback{}), PreconditionError);
}

}  // namespace
