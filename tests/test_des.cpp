// Discrete-event kernel: ordering, FIFO tie-breaking, horizons, the
// calendar-vs-heap oracle cross-check, callback SBO, and sharded
// conservative-lookahead execution.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hcep/des/callback.hpp"
#include "hcep/des/sharded.hpp"
#include "hcep/des/simulator.hpp"
#include "hcep/util/error.hpp"

namespace {

using namespace hcep;
using namespace hcep::des;
using namespace hcep::literals;

TEST(Des, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3_s, [&] { order.push_back(3); });
  sim.schedule_at(1_s, [&] { order.push_back(1); });
  sim.schedule_at(2_s, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Des, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(1_s, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Des, ClockAdvancesToEventTime) {
  Simulator sim;
  Seconds seen{};
  sim.schedule_at(5_s, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen.value(), 5.0);
  EXPECT_DOUBLE_EQ(sim.now().value(), 5.0);
}

TEST(Des, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(2_s, [&] {
    sim.schedule_in(3_s, [&] { times.push_back(sim.now().value()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(Des, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) sim.schedule_in(1_ms, chain);
  };
  sim.schedule_at(0_s, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_NEAR(sim.now().value(), 0.099, 1e-12);
}

TEST(Des, RunUntilStopsAtHorizonAndSetsClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_s, [&] { ++fired; });
  sim.schedule_at(10_s, [&] { ++fired; });
  sim.run_until(5_s);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().value(), 5.0);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Des, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5_s, [&] { fired = true; });
  sim.run_until(5_s);
  EXPECT_TRUE(fired);
}

TEST(Des, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1_s, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Des, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(2_s, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1_s, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_in(Seconds{-1.0}, [] {}), PreconditionError);
  EXPECT_THROW(sim.run_until(1_s), PreconditionError);
}

TEST(Des, RejectsEmptyCallback) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1_s, EventCallback{}), PreconditionError);
}

// ---------------------------------------------------------------------------
// Calendar-vs-heap oracle cross-check: both schedulers execute identical
// schedules in identical order — the (time, seq) total order is the
// kernel's contract, the scheduler only changes how fast it is realized.

/// Runs a pseudo-random self-rescheduling workload and records the exact
/// execution order as (time, tag) pairs. Duplicate timestamps (FIFO
/// ties), a far-future tail (overflow-heap traffic) and enough churn to
/// cross the calendar's rebuild thresholds are all exercised.
template <class Sim>
std::vector<std::pair<double, std::uint64_t>> run_oracle_workload(
    std::uint64_t seeds, std::uint64_t budget) {
  Sim sim;
  std::vector<std::pair<double, std::uint64_t>> order;
  order.reserve(budget + seeds);
  std::uint64_t lcg = 0x2545f4914f6cdd1dULL;
  std::uint64_t scheduled = 0;
  std::uint64_t tag = 0;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg;
  };
  // Mutually recursive via a stable heap cell (the lambda captures 24
  // bytes, well inside the inline budget).
  struct Hooks {
    std::function<void(std::uint64_t)> tick;
  };
  auto hooks = std::make_shared<Hooks>();
  hooks->tick = [&, hooks](std::uint64_t t) {
    order.emplace_back(sim.now().value(), t);
    if (scheduled < budget) {
      const std::uint64_t r = next();
      const std::uint64_t my_tag = ++tag;
      // 1/8 of events are simultaneous re-posts (FIFO ties), 1/8 land
      // ~1000s out (overflow), the rest microseconds-to-milliseconds.
      Seconds delay{0.0};
      if ((r & 7u) == 1) {
        delay = Seconds{1000.0 + static_cast<double>((r >> 8) % 977)};
      } else if ((r & 7u) != 0) {
        delay = Seconds{1e-6 * static_cast<double>(1 + ((r >> 8) % 99991))};
      }
      ++scheduled;
      sim.schedule_in(delay, [&, hooks, my_tag] { hooks->tick(my_tag); });
    }
  };
  for (std::uint64_t i = 0; i < seeds; ++i) {
    const std::uint64_t my_tag = ++tag;
    ++scheduled;
    sim.schedule_at(Seconds{1e-6 * static_cast<double>(next() % 100000)},
                    [&, hooks, my_tag] { hooks->tick(my_tag); });
  }
  sim.run();
  return order;
}

TEST(Des, CalendarMatchesHeapOracleEventForEvent) {
  // 20k events starting from 600 pending: crosses the calendar's initial
  // geometry (256 buckets), at least one load-factor rebuild, overflow
  // cascades and empty-wheel re-anchors.
  const auto calendar = run_oracle_workload<Simulator>(600, 20000);
  const auto heap = run_oracle_workload<HeapSimulator>(600, 20000);
  ASSERT_EQ(calendar.size(), heap.size());
  for (std::size_t i = 0; i < calendar.size(); ++i) {
    ASSERT_EQ(calendar[i], heap[i]) << "divergence at event " << i;
  }
}

TEST(Des, CalendarFifoTiesAcrossRebuilds) {
  // Many distinct times, each with a burst of simultaneous events, at a
  // scale that forces bucket-count growth: FIFO order must hold within
  // every burst even as entries migrate between wheel and overflow.
  Simulator sim;
  std::vector<int> order;
  int id = 0;
  for (int wave = 0; wave < 400; ++wave) {
    for (int k = 0; k < 12; ++k) {
      sim.schedule_at(Seconds{static_cast<double>((wave * 7919) % 400)},
                      [&order, my = id++] { order.push_back(my); });
    }
  }
  sim.run();
  ASSERT_EQ(order.size(), 4800u);
  // Events at the same time must appear in schedule order; schedule order
  // within a wave IS id order, and waves at the same time are scheduled
  // in id order too, so any same-time run must be increasing.
  for (std::size_t i = 1; i < order.size(); ++i) {
    // Reconstruct times: id -> wave -> time.
    const int t_prev = ((order[i - 1] / 12) * 7919) % 400;
    const int t_cur = ((order[i] / 12) * 7919) % 400;
    ASSERT_LE(t_prev, t_cur);
    if (t_prev == t_cur) {
      ASSERT_LT(order[i - 1], order[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// des::Callback: the allocation-free event representation.

TEST(DesCallback, HotPathCapturesStayInline) {
  struct Capture {
    void* ctx;
    double a, b, c;
    std::uint64_t d;
  };  // 40 bytes: the traffic hot-path shape
  Capture cap{nullptr, 1, 2, 3, 4};
  auto fn = [cap] { (void)cap; };
  static_assert(Callback::stores_inline<decltype(fn)>);
  Callback cb(fn);
  EXPECT_TRUE(cb.is_inline());
}

TEST(DesCallback, OversizedCapturesSpillButWork) {
  std::array<double, 9> big{};
  big[8] = 42.0;
  double seen = 0.0;
  auto fn = [big, &seen] { seen = big[8]; };
  static_assert(!Callback::stores_inline<decltype(fn)>);
  Callback cb(fn);
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(DesCallback, MoveTransfersOwnershipAndState) {
  auto counter = std::make_shared<int>(0);
  Callback a([counter] { ++*counter; });
  Callback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);
  // Destruction releases the capture: the shared_ptr refcount drops.
  EXPECT_EQ(counter.use_count(), 2);
  b = Callback{[] {}};
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(DesCallback, EmplaceReplacesInPlace) {
  auto counter = std::make_shared<int>(0);
  Callback cb([counter] { *counter += 1; });
  cb.emplace([counter] { *counter += 10; });
  cb();
  EXPECT_EQ(*counter, 10);
  cb.emplace([] {});
  EXPECT_EQ(counter.use_count(), 1);  // old capture destroyed
}

// ---------------------------------------------------------------------------
// ShardedSimulator: conservative lookahead, deterministic merge.

struct ShardTrace {
  std::vector<std::string> events;
};

/// A two-shard ping-pong with shard-local chatter; returns the exact
/// per-shard event interleaving.
std::vector<ShardTrace> run_sharded(bool parallel) {
  ShardedSimulator sharded(2, Seconds{0.5});
  auto traces = std::vector<ShardTrace>(2);
  auto* tr = traces.data();
  struct Hooks {
    std::function<void(std::size_t, int)> ping;
  };
  auto hooks = std::make_shared<Hooks>();
  auto* sh = &sharded;
  hooks->ping = [sh, tr, hooks](std::size_t me, int hops) {
    tr[me].events.push_back("ping@" +
                            std::to_string(sh->shard(me).now().value()));
    // Local follow-up inside the window.
    sh->shard(me).schedule_in(Seconds{0.01}, [tr, me, sh] {
      tr[me].events.push_back("local@" +
                              std::to_string(sh->shard(me).now().value()));
    });
    if (hops > 0) {
      const std::size_t other = 1 - me;
      sh->post(me, other, sh->shard(me).now() + Seconds{0.6},
               [hooks, other, hops] { hooks->ping(other, hops - 1); });
    }
  };
  sharded.schedule_on(0, Seconds{0.0}, [hooks] { hooks->ping(0, 8); });
  sharded.run(parallel);
  return traces;
}

TEST(DesSharded, ParallelMatchesSerialExactly) {
  const auto serial = run_sharded(false);
  const auto parallel = run_sharded(true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    EXPECT_EQ(serial[s].events, parallel[s].events) << "shard " << s;
  }
  EXPECT_FALSE(serial[0].events.empty());
  EXPECT_FALSE(serial[1].events.empty());
}

TEST(DesSharded, RepeatedRunsAreIdentical) {
  const auto a = run_sharded(true);
  const auto b = run_sharded(true);
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].events, b[s].events) << "shard " << s;
  }
}

TEST(DesSharded, PostsBelowLookaheadAreRejected) {
  ShardedSimulator sharded(2, Seconds{1.0});
  EXPECT_THROW(sharded.post(0, 1, Seconds{0.5}, [] {}), PreconditionError);
  // At exactly now + lookahead the post is legal.
  sharded.post(0, 1, Seconds{1.0}, [] {});
  sharded.run(false);
  EXPECT_EQ(sharded.events_processed(), 1u);
}

TEST(DesSharded, SimultaneousPostsDeliverInSenderOrder) {
  // Both shards post to shard 0 at the same absolute time; delivery must
  // order by (time, sender, per-sender index) — byte-stable regardless
  // of which shard's window callback ran first.
  std::vector<int> order;
  for (int rep = 0; rep < 2; ++rep) {
    std::vector<int> this_run;
    ShardedSimulator sharded(3, Seconds{0.1});
    auto* o = &this_run;
    for (std::size_t sender : {2u, 1u}) {
      sharded.schedule_on(sender, Seconds{0.0}, [&sharded, sender, o] {
        for (int k = 0; k < 3; ++k) {
          sharded.post(sender, 0, Seconds{5.0},
                       [o, sender, k] {
                         o->push_back(static_cast<int>(sender) * 10 + k);
                       });
        }
      });
    }
    sharded.run(true);
    ASSERT_EQ(this_run.size(), 6u);
    if (rep == 0) {
      order = this_run;
      // Sender 1 before sender 2 at equal times, FIFO within a sender.
      EXPECT_EQ(this_run, (std::vector<int>{10, 11, 12, 20, 21, 22}));
    } else {
      EXPECT_EQ(order, this_run);
    }
  }
}

}  // namespace
