// Phase-level traces: the rendered trace must integrate exactly to the
// model's energy algebra — an independent check of Table 2's energy rows.
#include <gtest/gtest.h>

#include "hcep/cluster/phase_trace.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::cluster;

const std::vector<workload::Workload>& catalog() {
  static const auto kCatalog = workload::paper_workloads();
  return kCatalog;
}

class EveryProgram : public ::testing::TestWithParam<int> {
 protected:
  const workload::Workload& w() const { return catalog()[GetParam()]; }
};

TEST_P(EveryProgram, TraceEnergyEqualsModelEnergy) {
  for (const auto& node : {hw::cortex_a9(), hw::opteron_k10()}) {
    const auto& d = w().demand_for(node.name);
    const double kappa = w().power_scale_for(node.name);
    const double units = w().units_per_job / 4.0;

    const power::PowerTrace trace = node_phase_trace(
        d, node, node.cores, node.dvfs.max(), units, kappa);
    const workload::UnitTime t =
        workload::unit_time(d, node, node.cores, node.dvfs.max());
    const Seconds total = t.total * units;
    const Joules model_energy =
        workload::unit_energy(d, node, node.cores, node.dvfs.max(), kappa) *
        units;

    EXPECT_NEAR(trace.energy(total).value(), model_energy.value(),
                model_energy.value() * 1e-9)
        << w().name << "/" << node.name;
  }
}

TEST_P(EveryProgram, PhaseDurationsSumCorrectly) {
  const auto& node = hw::cortex_a9();
  const auto& d = w().demand_for(node.name);
  const double units = 1000.0;
  const PhaseBreakdown ph =
      phase_breakdown(d, node, node.cores, node.dvfs.max(), units);
  const workload::UnitTime t =
      workload::unit_time(d, node, node.cores, node.dvfs.max());

  // overlap + compute_only == core time; overlap + stall_only == mem time.
  EXPECT_NEAR((ph.overlap + ph.compute_only).value(),
              t.core.value() * units, 1e-12);
  EXPECT_NEAR((ph.overlap + ph.stall_only).value(), t.mem.value() * units,
              1e-12);
  EXPECT_NEAR(ph.io_total.value(), t.io.value() * units, 1e-12);
  EXPECT_NEAR(ph.total.value(), t.total.value() * units,
              t.total.value() * units * 1e-12);
  // Exactly one of compute_only / stall_only is non-zero.
  EXPECT_TRUE(ph.compute_only.value() < 1e-15 ||
              ph.stall_only.value() < 1e-15);
}

INSTANTIATE_TEST_SUITE_P(AllSix, EveryProgram, ::testing::Range(0, 6));

TEST(PhaseTrace, ComputeBoundShape) {
  // Pure compute demand: one flat busy level, then idle.
  workload::NodeDemand d{.cycles_core = 1.4e9, .cycles_mem = 0.0,
                         .io_bytes = Bytes{0.0}};
  const auto node = hw::cortex_a9();
  const auto trace = node_phase_trace(d, node, 1, node.dvfs.max(), 1.0);
  EXPECT_NEAR(trace.at(Seconds{0.5}).value(),
              (node.power.idle + node.power.core_active).value(), 1e-9);
  EXPECT_NEAR(trace.at(Seconds{1.5}).value(), node.power.idle.value(),
              1e-9);
}

TEST(PhaseTrace, MemoryBoundShowsStallPhase) {
  workload::NodeDemand d{.cycles_core = 0.7e9, .cycles_mem = 1.4e9,
                         .io_bytes = Bytes{0.0}};
  const auto node = hw::cortex_a9();
  const auto trace = node_phase_trace(d, node, 1, node.dvfs.max(), 1.0);
  // Overlap phase [0, 0.5): active + mem.
  EXPECT_NEAR(trace.at(Seconds{0.25}).value(),
              (node.power.idle + node.power.core_active +
               node.power.mem_active)
                  .value(),
              1e-9);
  // Stall phase [0.5, 1.0): stalled + mem.
  EXPECT_NEAR(trace.at(Seconds{0.75}).value(),
              (node.power.idle + node.power.core_stalled +
               node.power.mem_active)
                  .value(),
              1e-9);
}

TEST(PhaseTrace, IoTailKeepsNicOnly) {
  // I/O longer than CPU: the tail draws idle + NIC.
  workload::NodeDemand d{.cycles_core = 0.14e9, .cycles_mem = 0.0,
                         .io_bytes = Bytes{12.5e6}};  // 1 s at 100 Mbps
  const auto node = hw::cortex_a9();
  const auto trace = node_phase_trace(d, node, 1, node.dvfs.max(), 1.0);
  EXPECT_NEAR(trace.at(Seconds{0.5}).value(),
              (node.power.idle + node.power.net_active).value(), 1e-9);
}

TEST(PhaseTrace, Validation) {
  workload::NodeDemand d{.cycles_core = 1.0, .cycles_mem = 1.0,
                         .io_bytes = Bytes{0.0}};
  EXPECT_THROW((void)phase_breakdown(d, hw::cortex_a9(), 1,
                                     hw::cortex_a9().dvfs.max(), 0.0),
               PreconditionError);
}

}  // namespace
