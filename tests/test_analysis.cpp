// Analysis studies: each must reproduce the corresponding paper result.
#include <gtest/gtest.h>

#include <cctype>
#include <map>

#include "hcep/analysis/cluster_study.hpp"
#include "hcep/analysis/pareto_study.hpp"
#include "hcep/analysis/response_study.hpp"
#include "hcep/analysis/single_node.hpp"
#include "hcep/analysis/validation.hpp"
#include "hcep/config/budget.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::analysis;

const std::vector<workload::Workload>& catalog() {
  static const auto kCatalog = workload::paper_workloads();
  return kCatalog;
}

const workload::Workload& wl(const std::string& name) {
  for (const auto& w : catalog())
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

// ------------------------------------------------- Table 7 reproduction

struct Table7Row {
  const char* program;
  const char* node;
  double dpr;
  double ipr;
  double epm;
  double ldr;
};

class Table7 : public ::testing::TestWithParam<Table7Row> {};

TEST_P(Table7, SingleNodeMetricsMatchPaper) {
  const Table7Row row = GetParam();
  const auto a = analyze_single_node(wl(row.program), hw::by_name(row.node));
  // The paper prints two decimals; allow rounding slack.
  EXPECT_NEAR(a.report.dpr, row.dpr, 0.51);
  EXPECT_NEAR(a.report.ipr, row.ipr, 0.006);
  // The paper's own EPM/LDR cells round inconsistently against its DPR
  // column (e.g. EP/K10: DPR 34.57 but EPM printed 0.34); allow 0.011.
  EXPECT_NEAR(a.report.epm, row.epm, 0.011);
  EXPECT_NEAR(a.report.ldr_paper, row.ldr, 0.011);
}

// Values transcribed from Table 7 of the paper.
INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table7,
    ::testing::Values(
        Table7Row{"EP", "A9", 25.97, 0.74, 0.26, 0.26},
        Table7Row{"EP", "K10", 34.57, 0.65, 0.34, 0.35},
        Table7Row{"memcached", "A9", 16.78, 0.83, 0.17, 0.17},
        Table7Row{"memcached", "K10", 11.05, 0.89, 0.11, 0.11},
        Table7Row{"x264", "A9", 35.54, 0.64, 0.36, 0.36},
        Table7Row{"x264", "K10", 38.41, 0.62, 0.38, 0.39},
        Table7Row{"blackscholes", "A9", 32.11, 0.68, 0.32, 0.32},
        Table7Row{"blackscholes", "K10", 37.30, 0.63, 0.37, 0.37},
        Table7Row{"Julius", "A9", 30.48, 0.70, 0.30, 0.31},
        Table7Row{"Julius", "K10", 38.10, 0.62, 0.38, 0.38},
        Table7Row{"RSA-2048", "A9", 35.62, 0.64, 0.36, 0.36},
        Table7Row{"RSA-2048", "K10", 41.19, 0.59, 0.41, 0.41}),
    [](const auto& inst) {
      std::string n =
          std::string(inst.param.program) + "_" + inst.param.node;
      for (auto& ch : n)
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return n;
    });

// ------------------------------------------------- Table 6 reproduction

TEST(Table6, PeakPprMatchesPaper) {
  const std::map<std::string, std::pair<double, double>> expected = {
      {"EP", {6048057.0, 1414922.0}},
      {"memcached", {5224004.0, 268067.0}},
      {"x264", {0.7, 1.0}},
      {"blackscholes", {11413.0, 2902.0}},
      {"Julius", {69654.0, 21390.0}},
      {"RSA-2048", {968.0, 1091.0}},
  };
  for (const auto& [program, pprs] : expected) {
    const auto a9 = analyze_single_node(wl(program), hw::cortex_a9());
    const auto k10 = analyze_single_node(wl(program), hw::opteron_k10());
    EXPECT_NEAR(a9.ppr_peak / pprs.first, 1.0, 1e-6) << program;
    EXPECT_NEAR(k10.ppr_peak / pprs.second, 1.0, 1e-6) << program;
  }
}

TEST(Table6, WimpyWinsExceptRsaAndX264) {
  // "A9 has a better PPR than K10, but with two notable exceptions" —
  // RSA-2048 (crypto acceleration) and x264 (memory bandwidth).
  for (const auto& w : catalog()) {
    const auto a9 = analyze_single_node(w, hw::cortex_a9());
    const auto k10 = analyze_single_node(w, hw::opteron_k10());
    if (w.name == "RSA-2048" || w.name == "x264") {
      EXPECT_GT(k10.ppr_peak, a9.ppr_peak) << w.name;
    } else {
      EXPECT_GT(a9.ppr_peak, k10.ppr_peak) << w.name;
    }
  }
}

TEST(SingleNode, BrawnyIsMoreProportionalButWimpyDrawsLess) {
  // Section III-B's counter-intuitive pair of facts for EP.
  const auto a9 = analyze_single_node(wl("EP"), hw::cortex_a9());
  const auto k10 = analyze_single_node(wl("EP"), hw::opteron_k10());
  EXPECT_GT(k10.report.epm, a9.report.epm);     // K10 more proportional
  EXPECT_GT(a9.report.ipr, k10.report.ipr);
  EXPECT_GE(k10.idle_power.value() / a9.idle_power.value(), 25.0);
}

TEST(SingleNode, SeriesHelpers) {
  const auto a = analyze_single_node(wl("EP"), hw::cortex_a9());
  const auto prop = proportionality_series(a.curve, {10, 50, 100});
  ASSERT_EQ(prop.size(), 3u);
  EXPECT_NEAR(prop[2].second, 100.0, 1e-9);
  EXPECT_GT(prop[0].second, 70.0);  // IPR 0.74 -> ~76.6 % at u=10 %

  const auto pprs = ppr_series(a.curve, a.peak_throughput, {10, 100});
  ASSERT_EQ(pprs.size(), 2u);
  EXPECT_LT(pprs[0].second, pprs[1].second);  // PPR grows with utilization
  EXPECT_NEAR(pprs[1].second, a.ppr_peak, 1e-6);
  EXPECT_THROW((void)ppr_series(a.curve, a.peak_throughput, {0.0}),
               PreconditionError);
}

// ------------------------------------------------- Table 8 reproduction

struct Table8Row {
  const char* program;
  // DPR for 128A9:0K10, 64A9:8K10, 0A9:16K10 (paper's three columns).
  double dpr_all_a9;
  double dpr_mixed;
  double dpr_all_k10;
};

class Table8 : public ::testing::TestWithParam<Table8Row> {};

TEST_P(Table8, ClusterMetricsMatchPaperColumns) {
  const Table8Row row = GetParam();
  const auto mixes = analyze_mixes(config::paper_budget_mixes(),
                                   wl(row.program));
  ASSERT_EQ(mixes.size(), 5u);
  // Order: 16K10, 32:12, 64:8, 96:4, 128A9.
  EXPECT_NEAR(mixes[0].report.dpr, row.dpr_all_k10, 0.6);
  EXPECT_NEAR(mixes[2].report.dpr, row.dpr_mixed, 0.8);
  EXPECT_NEAR(mixes[4].report.dpr, row.dpr_all_a9, 0.6);
  for (const auto& m : mixes) {
    // Identities hold at cluster level too.
    EXPECT_NEAR(m.report.dpr, (1.0 - m.report.ipr) * 100.0, 1e-6);
    EXPECT_NEAR(m.report.epm, 1.0 - m.report.ipr, 1e-6);
  }
}

// Values transcribed from Table 8.
INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table8,
    ::testing::Values(Table8Row{"EP", 25.97, 32.66, 34.57},
                      Table8Row{"memcached", 16.78, 12.44, 11.05},
                      Table8Row{"x264", 35.54, 37.73, 38.41},
                      Table8Row{"blackscholes", 32.11, 36.10, 37.30},
                      Table8Row{"Julius", 30.48, 36.39, 38.09},
                      Table8Row{"RSA-2048", 35.62, 39.92, 41.19}),
    [](const auto& inst) {
      std::string n = inst.param.program;
      for (auto& ch : n)
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return n;
    });

TEST(ClusterStudy, K10ClusterIdleIsAboutThreeTimesA9Cluster) {
  // Section III-C: "the K10 cluster consumes an idle power of around
  // 720 W which is about three times higher compared to the A9 cluster".
  const auto mixes = analyze_mixes(config::paper_budget_mixes(), wl("EP"));
  const double k10_idle = mixes[0].idle_power.value();
  const double a9_idle = mixes[4].idle_power.value();
  EXPECT_NEAR(k10_idle, 720.0, 1.0);
  EXPECT_NEAR(k10_idle / a9_idle, 3.0, 0.3);
}

// -------------------------------------------- Figures 9/10 (Pareto study)

TEST(ParetoStudy, Fig9SublinearityPatternForEp) {
  ParetoStudyOptions opts;
  opts.compute_frontier = false;
  const auto result = run_pareto_study(wl("EP"), opts);
  ASSERT_EQ(result.mixes.size(), 5u);

  // The paper's Section III-D example: (25,8) is above the ideal line at
  // u = 50 % while (25,7) is below it.
  std::map<std::string, const ParetoMixAnalysis*> by_label;
  for (const auto& m : result.mixes) by_label[m.mix.label()] = &m;
  EXPECT_FALSE(by_label.at("25A9:8K10")->sublinear_at_half);
  EXPECT_TRUE(by_label.at("25A9:7K10")->sublinear_at_half);
  // The reference configuration itself never dips below its own ideal.
  EXPECT_GT(by_label.at("32A9:12K10")->crossover_utilization, 1.0);
  // Fewer brawny nodes -> earlier crossover (more sub-linear).
  EXPECT_LT(by_label.at("25A9:5K10")->crossover_utilization,
            by_label.at("25A9:7K10")->crossover_utilization);
}

TEST(ParetoStudy, FrontierMembersAreMutuallyNonDominated) {
  ParetoStudyOptions opts;
  opts.max_a9 = 6;
  opts.max_k10 = 3;
  opts.mixes = {{6, 3}, {5, 2}};
  const auto result = run_pareto_study(wl("EP"), opts);
  ASSERT_GT(result.frontier.size(), 0u);
  for (std::size_t i = 1; i < result.frontier.size(); ++i) {
    EXPECT_GT(result.frontier[i].time, result.frontier[i - 1].time);
    EXPECT_LT(result.frontier[i].energy, result.frontier[i - 1].energy);
  }
}

TEST(ParetoStudy, OperatingPointSearch) {
  const MixCounts mix{25, 5};
  const auto fast = fastest_operating_point(mix, wl("EP"));
  // Fastest point uses all cores at max frequency.
  for (const auto& g : fast.config.groups) {
    EXPECT_EQ(g.cores(), g.spec.cores);
    EXPECT_DOUBLE_EQ(g.freq().value(), g.spec.dvfs.max().value());
  }
  // A deadline below the fastest time is infeasible.
  EXPECT_FALSE(
      best_operating_point(mix, wl("EP"), fast.time * 0.9).has_value());
  // A generous deadline returns a point that meets it.
  const auto pt = best_operating_point(mix, wl("EP"), fast.time * 3.0);
  ASSERT_TRUE(pt.has_value());
  EXPECT_LE(pt->time, fast.time * 3.0);
  EXPECT_LE(pt->energy, fast.energy);
}

// ----------------------------------------- Figures 11/12 (response study)

TEST(ResponseStudy, EpEveryMixMeetsTheDeadline) {
  const auto result = run_response_study(wl("EP"));
  ASSERT_EQ(result.mixes.size(), 5u);
  for (const auto& m : result.mixes) {
    EXPECT_TRUE(m.meets_deadline) << m.mix.label();
    EXPECT_LE(m.service_time, result.deadline);
  }
}

TEST(ResponseStudy, X264LosesTheDeadlineWithoutBrawnyNodes) {
  // Section III-E: for x264 the sub-linear mixes degrade to seconds.
  const auto result = run_response_study(wl("x264"));
  std::map<std::string, const MixResponse*> by_label;
  for (const auto& m : result.mixes) by_label[m.mix.label()] = &m;
  EXPECT_TRUE(by_label.at("32A9:12K10")->meets_deadline);
  EXPECT_FALSE(by_label.at("25A9:5K10")->meets_deadline);
  const double degradation =
      by_label.at("25A9:5K10")->service_time.value() -
      result.deadline.value();
  EXPECT_GT(degradation, 0.3);  // order of seconds, not milliseconds
}

TEST(ResponseStudy, P95GrowsWithUtilization) {
  const auto result = run_response_study(wl("EP"));
  for (const auto& m : result.mixes) {
    double prev = 0.0;
    for (const auto& pt : m.points) {
      EXPECT_GT(pt.p95_analytic.value(), prev) << m.mix.label();
      prev = pt.p95_analytic.value();
    }
  }
}

TEST(ResponseStudy, DesCrossCheckAgreesAtModerateLoad) {
  ResponseStudyOptions opts;
  opts.mixes = {{25, 5}};
  opts.utilization_percents = {50};
  opts.cross_check_des = true;
  const auto result = run_response_study(wl("EP"), opts);
  ASSERT_EQ(result.mixes.size(), 1u);
  const ResponsePoint& pt = result.mixes[0].points[0];
  EXPECT_GT(pt.p95_simulated.value(), 0.0);
  EXPECT_NEAR(pt.p95_simulated.value(), pt.p95_analytic.value(),
              pt.p95_analytic.value() * 0.25);
}

// ------------------------------------------------- Table 4 (validation)

TEST(Validation, ErrorsAreNonTrivialAndBounded) {
  const auto rows = validate_all(catalog());
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    // Table 4's errors span 1-13 %; ours must land in the same regime:
    // nonzero (the testbed is not the model) yet clearly bounded.
    EXPECT_GT(r.time_error_percent, 0.1) << r.program;
    EXPECT_LT(r.time_error_percent, 20.0) << r.program;
    EXPECT_LT(r.energy_error_percent, 20.0) << r.program;
    EXPECT_GT(r.measured_time, r.model_time) << r.program;
  }
}

TEST(Validation, DomainsMatchTable4) {
  EXPECT_EQ(program_domain("EP"), "HPC");
  EXPECT_EQ(program_domain("memcached"), "Web Server");
  EXPECT_EQ(program_domain("x264"), "Streaming video");
  EXPECT_EQ(program_domain("blackscholes"), "Financial");
  EXPECT_EQ(program_domain("Julius"), "Speech recognition");
  EXPECT_EQ(program_domain("RSA-2048"), "Web security");
  EXPECT_THROW((void)program_domain("doom"), PreconditionError);
}

TEST(Validation, TimeErrorOrderingFollowsOverheadTable) {
  // Julius carries the largest modelling gap (13 % in Table 4), RSA the
  // smallest (2 %); the reproduction must preserve that ordering.
  const auto rows = validate_all(catalog());
  std::map<std::string, double> err;
  for (const auto& r : rows) err[r.program] = r.time_error_percent;
  EXPECT_GT(err.at("Julius"), err.at("EP"));
  EXPECT_GT(err.at("x264"), err.at("RSA-2048"));
  EXPECT_GT(err.at("memcached"), err.at("blackscholes"));
}

}  // namespace
