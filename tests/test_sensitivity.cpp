// Calibration-sensitivity study: the paper's conclusions should be robust
// to plausible measurement error in the seeds.
#include <gtest/gtest.h>

#include "hcep/analysis/sensitivity.hpp"
#include "hcep/util/error.hpp"

namespace {

using namespace hcep;
using namespace hcep::analysis;

TEST(Sensitivity, ZeroNoiseReproducesNominalExactly) {
  SensitivityOptions opts;
  opts.ppr_noise = 0.0;
  opts.ipr_noise = 0.0;
  opts.trials = 3;
  const auto r = run_sensitivity_study("EP", opts);
  EXPECT_EQ(r.trials, 3u);
  EXPECT_EQ(r.winner_flips, 0u);
  // Nominal: (25,7) sub-linear at 50 %, (25,8) not — in every trial.
  EXPECT_EQ(r.sublinear_at_half_25_7, 3u);
  EXPECT_EQ(r.superlinear_at_half_25_8, 3u);
  // Nominal Table 8 middle column DPR.
  EXPECT_NEAR(r.dpr_mixed.mean(), 33.03, 0.1);
  EXPECT_NEAR(r.crossover_25_7.max(), r.crossover_25_7.min(), 1e-12);
}

TEST(Sensitivity, EpConclusionsRobustAtTenPercentNoise) {
  SensitivityOptions opts;
  opts.trials = 120;
  const auto r = run_sensitivity_study("EP", opts);
  // EP's PPR gap is 4.3x; 10 % noise must essentially never flip it.
  EXPECT_LT(r.winner_flips, 3u);
  // The (25,7) sub-linearity boundary sits right AT 50 % nominally, so
  // noise pushes it to either side — but the crossover itself stays in a
  // tight band around 0.5.
  EXPECT_NEAR(r.crossover_25_7.mean(), 0.50, 0.05);
  EXPECT_GT(r.sublinear_at_half_25_7, r.trials / 5);
  // Table 8's mixed DPR varies by a couple of points, not tens.
  EXPECT_NEAR(r.dpr_mixed.mean(), 33.0, 1.5);
  EXPECT_LT(r.dpr_mixed.stddev(), 4.0);
}

TEST(Sensitivity, Rsa2048WinnerIsFragile) {
  // RSA's PPR margin is only ~13 % (968 vs 1091): at 10 % noise the
  // Table 6 winner flips in a substantial fraction of trials — a caveat
  // the reproduction surfaces.
  SensitivityOptions opts;
  opts.trials = 150;
  const auto r = run_sensitivity_study("RSA-2048", opts);
  EXPECT_GT(r.winner_flips, 10u);
  EXPECT_LT(r.winner_flips, r.trials);
}

TEST(Sensitivity, DeterministicForFixedSeed) {
  SensitivityOptions opts;
  opts.trials = 20;
  const auto a = run_sensitivity_study("blackscholes", opts);
  const auto b = run_sensitivity_study("blackscholes", opts);
  EXPECT_EQ(a.winner_flips, b.winner_flips);
  EXPECT_DOUBLE_EQ(a.dpr_mixed.mean(), b.dpr_mixed.mean());
}

TEST(Sensitivity, Validation) {
  SensitivityOptions opts;
  opts.trials = 0;
  EXPECT_THROW((void)run_sensitivity_study("EP", opts), PreconditionError);
  opts.trials = 1;
  opts.ppr_noise = -0.1;
  EXPECT_THROW((void)run_sensitivity_study("EP", opts), PreconditionError);
  opts.ppr_noise = 0.1;
  EXPECT_THROW((void)run_sensitivity_study("doom", opts),
               PreconditionError);
}

}  // namespace
