// Configuration-space pruning: dominated operating points go, the
// energy-deadline Pareto frontier stays.
#include <gtest/gtest.h>

#include <cmath>

#include "hcep/config/prune.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/config/pareto.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::config;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

TEST(Prune, ShrinksTheSpace) {
  const ConfigSpace space = make_a9_k10_space(10, 10);
  PruneStats stats;
  const ConfigSpace pruned =
      prune_operating_points(space, wl("EP"), &stats);
  EXPECT_EQ(stats.configurations_before, 36380u);
  EXPECT_LT(stats.configurations_after, stats.configurations_before);
  EXPECT_GT(stats.reduction_factor(), 2.0);  // substantial pruning
  ASSERT_EQ(stats.per_type.size(), 2u);
  for (const auto& [kept, total] : stats.per_type) {
    EXPECT_GE(kept, 1u);
    EXPECT_LT(kept, total);
  }
}

TEST(Prune, KeptPointsAreMutuallyNonDominated) {
  const ConfigSpace space = make_a9_k10_space(2, 2);
  const ConfigSpace pruned = prune_operating_points(space, wl("EP"));
  for (const auto& t : pruned.types()) {
    const auto& demand = wl("EP").demand_for(t.spec.name);
    const double kappa = wl("EP").power_scale_for(t.spec.name);
    const auto& pts = t.operating_points;
    ASSERT_FALSE(pts.empty());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (i == j) continue;
        const double xi = workload::unit_throughput(
            demand, t.spec, pts[i].cores, pts[i].frequency);
        const double xj = workload::unit_throughput(
            demand, t.spec, pts[j].cores, pts[j].frequency);
        const double pi = workload::busy_power(demand, t.spec, pts[i].cores,
                                               pts[i].frequency, kappa)
                              .value();
        const double pj = workload::busy_power(demand, t.spec, pts[j].cores,
                                               pts[j].frequency, kappa)
                              .value();
        const bool j_dominates_i =
            xj >= xi && pj <= pi && (xj > xi || pj < pi);
        EXPECT_FALSE(j_dominates_i) << t.spec.name << " " << i << "," << j;
      }
    }
  }
}

class FrontierPreservation : public ::testing::TestWithParam<const char*> {};

TEST_P(FrontierPreservation, ParetoFrontierSurvivesPruning) {
  // For every point on the FULL space's frontier there is a pruned-space
  // configuration at least as good in both coordinates (the dominance
  // argument of prune.hpp), so the pruned frontier matches the full one.
  const auto& w = wl(GetParam());
  const ConfigSpace space = make_a9_k10_space(4, 3);
  const ConfigSpace pruned = prune_operating_points(space, w);

  const auto full_front = pareto_front(evaluate_space(space, w));
  const auto pruned_evals = evaluate_space(pruned, w);

  for (const auto& f : full_front) {
    bool matched = false;
    for (std::size_t i = 0; i < pruned_evals.size(); ++i) {
      if (pruned_evals.times()[i] <= f.time.value() * (1.0 + 1e-9) &&
          pruned_evals.energies()[i] <= f.energy.value() * (1.0 + 1e-9)) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << GetParam() << ": frontier point at t="
                         << f.time.value() << " e=" << f.energy.value()
                         << " lost by pruning";
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, FrontierPreservation,
                         ::testing::Values("EP", "x264", "RSA-2048"));

TEST(Prune, PrunedSpaceDecodesValidConfigs) {
  const ConfigSpace pruned =
      prune_operating_points(make_a9_k10_space(3, 2), wl("EP"));
  pruned.for_each([](const model::ClusterSpec& cfg, std::uint64_t) {
    cfg.validate();
  });
}

TEST(Prune, IdempotentOnPrunedSpaces) {
  const ConfigSpace once =
      prune_operating_points(make_a9_k10_space(3, 2), wl("EP"));
  PruneStats stats;
  const ConfigSpace twice = prune_operating_points(once, wl("EP"), &stats);
  EXPECT_EQ(once.size(), twice.size());
  EXPECT_DOUBLE_EQ(stats.reduction_factor(), 1.0);
}

TEST(Prune, RejectsUncoveredWorkloads) {
  workload::CatalogOptions opts;
  opts.nodes = {hw::cortex_a9()};
  const auto a9_only = workload::make_workload("EP", opts);
  EXPECT_THROW(
      (void)prune_operating_points(make_a9_k10_space(1, 1), a9_only),
      PreconditionError);
}

}  // namespace
