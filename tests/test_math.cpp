// Numerical toolbox: integration, interpolation, root finding.
#include <gtest/gtest.h>

#include <cmath>

#include "hcep/util/error.hpp"
#include "hcep/util/math.hpp"

namespace {

using namespace hcep;

TEST(PercentError, Basics) {
  EXPECT_DOUBLE_EQ(percent_error(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_error(90.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_error(100.0, 100.0), 0.0);
  EXPECT_THROW((void)percent_error(1.0, 0.0), PreconditionError);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.1));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
  EXPECT_TRUE(approx_equal(1e6, 1e6 * (1 + 1e-10)));
}

TEST(Trapezoid, IntegratesLinearExactly) {
  const auto f = [](double x) { return 2.0 * x + 1.0; };
  EXPECT_NEAR(trapezoid(f, 0.0, 4.0, 1), 20.0, 1e-12);
}

TEST(Trapezoid, ConvergesForQuadratic) {
  const auto f = [](double x) { return x * x; };
  EXPECT_NEAR(trapezoid(f, 0.0, 1.0, 2000), 1.0 / 3.0, 1e-6);
}

TEST(Trapezoid, SampledForm) {
  std::vector<double> xs{0.0, 1.0, 3.0};
  std::vector<double> ys{0.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(trapezoid(xs, ys), 1.0 + 8.0);
}

TEST(Trapezoid, RejectsBadInput) {
  std::vector<double> xs{0.0, 0.0};
  std::vector<double> ys{1.0, 1.0};
  EXPECT_THROW((void)trapezoid(xs, ys), PreconditionError);
  std::vector<double> one{0.0};
  EXPECT_THROW((void)trapezoid(one, one), PreconditionError);
}

TEST(Bisect, FindsRoot) {
  const double r =
      bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0, 1e-13);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, HandlesEndpointRoot) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(Bisect, RequiresSignChange) {
  EXPECT_THROW((void)bisect([](double) { return 1.0; }, 0.0, 1.0),
               PreconditionError);
}

TEST(PiecewiseLinear, EvaluatesAndClamps) {
  PiecewiseLinear pl({0.0, 1.0, 2.0}, {0.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(pl(0.5), 5.0);
  EXPECT_DOUBLE_EQ(pl(1.5), 10.0);
  EXPECT_DOUBLE_EQ(pl(-1.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(pl(5.0), 10.0);   // clamp right
}

TEST(PiecewiseLinear, IntegralExact) {
  PiecewiseLinear pl({0.0, 1.0, 2.0}, {0.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(pl.integral(0.0, 2.0), 5.0 + 10.0);
  EXPECT_DOUBLE_EQ(pl.integral(0.0, 0.5), 0.5 * 0.5 * 5.0);
  EXPECT_DOUBLE_EQ(pl.integral(2.0, 0.0), -15.0);  // reversed bounds
  EXPECT_DOUBLE_EQ(pl.integral(1.0, 1.0), 0.0);
}

TEST(PiecewiseLinear, IntegralClampsOutsideKnots) {
  PiecewiseLinear pl({0.0, 1.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(pl.integral(-1.0, 2.0), 6.0);
}

TEST(PiecewiseLinear, AddEnforcesOrder) {
  PiecewiseLinear pl;
  pl.add(0.0, 1.0);
  pl.add(1.0, 2.0);
  EXPECT_THROW(pl.add(0.5, 3.0), PreconditionError);
}

TEST(PiecewiseLinear, SumOverUnionOfKnots) {
  PiecewiseLinear a({0.0, 2.0}, {0.0, 2.0});
  PiecewiseLinear b({0.0, 1.0, 2.0}, {1.0, 1.0, 3.0});
  PiecewiseLinear c = a + b;
  EXPECT_DOUBLE_EQ(c(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c(1.0), 2.0);
  EXPECT_DOUBLE_EQ(c(2.0), 5.0);
  EXPECT_DOUBLE_EQ(c(0.5), 0.5 + 1.0);
}

TEST(PiecewiseLinear, Scaled) {
  PiecewiseLinear a({0.0, 1.0}, {1.0, 3.0});
  PiecewiseLinear s = a.scaled(2.0);
  EXPECT_DOUBLE_EQ(s(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s(1.0), 6.0);
}

TEST(PiecewiseLinear, RejectsMismatchedKnots) {
  EXPECT_THROW(PiecewiseLinear({0.0, 1.0}, {1.0}), PreconditionError);
  EXPECT_THROW(PiecewiseLinear({1.0, 0.0}, {1.0, 2.0}), PreconditionError);
}

TEST(Linspace, CoversRangeInclusive) {
  const auto g = linspace(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  EXPECT_DOUBLE_EQ(g[2], 0.5);
  EXPECT_THROW((void)linspace(0.0, 1.0, 1), PreconditionError);
}

}  // namespace
