// Characterization and calibration: the measurement-driven pipeline that
// pins workload profiles to the paper's published Table 6/7 seeds.
#include <gtest/gtest.h>

#include <cctype>
#include <map>

#include "hcep/hw/catalog.hpp"
#include "hcep/kernels/registry.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/calibrate.hpp"
#include "hcep/workload/catalog.hpp"
#include "hcep/workload/characterize.hpp"
#include "hcep/workload/node_ops.hpp"

namespace {

using namespace hcep;
using namespace hcep::workload;

const std::vector<Workload>& catalog() {
  static const std::vector<Workload> kCatalog = paper_workloads();
  return kCatalog;
}

TEST(Demand, ScaledMultipliesEveryField) {
  NodeDemand d{.cycles_core = 10.0, .cycles_mem = 4.0, .io_bytes = Bytes{2.0}};
  const NodeDemand s = d.scaled(3.0);
  EXPECT_DOUBLE_EQ(s.cycles_core, 30.0);
  EXPECT_DOUBLE_EQ(s.cycles_mem, 12.0);
  EXPECT_DOUBLE_EQ(s.io_bytes.value(), 6.0);
}

TEST(Workload, DemandLookupValidates) {
  Workload w;
  w.name = "test";
  w.demand["A9"] = NodeDemand{1.0, 1.0, Bytes{0.0}};
  EXPECT_TRUE(w.has_node("A9"));
  EXPECT_FALSE(w.has_node("K10"));
  EXPECT_NO_THROW((void)w.demand_for("A9"));
  EXPECT_THROW((void)w.demand_for("K10"), PreconditionError);
  EXPECT_DOUBLE_EQ(w.power_scale_for("K10"), 1.0);  // uncalibrated default
}

TEST(Characterize, ProducesPositiveDemand) {
  auto kernel = kernels::make_kernel("blackscholes");
  const NodeDemand d = characterize(*kernel, hw::cortex_a9(), 2000);
  EXPECT_GT(d.cycles_core, 0.0);
  EXPECT_GT(d.cycles_mem, 0.0);
}

TEST(Characterize, FasterCostModelYieldsFewerCycles) {
  auto kernel = kernels::make_kernel("blackscholes");
  const NodeDemand a9 = characterize(*kernel, hw::cortex_a9(), 2000);
  const NodeDemand k10 = characterize(*kernel, hw::opteron_k10(), 2000);
  // The K10's CPI and bandwidth are better across the board.
  EXPECT_LT(k10.cycles_core, a9.cycles_core);
}

TEST(Characterize, CryptoAccelerationCutsRsaCycles) {
  auto kernel = kernels::make_kernel("RSA-2048");
  const NodeDemand a9 = characterize(*kernel, hw::cortex_a9(), 2);
  const NodeDemand k10 = characterize(*kernel, hw::opteron_k10(), 2);
  // Crypto ops dominate RSA; the K10's 9x acceleration must show on
  // top of its generally lower CPI.
  EXPECT_LT(k10.cycles_core, a9.cycles_core / 2.5);
}

TEST(Characterize, DeterministicForFixedSeed) {
  auto k1 = kernels::make_kernel("EP");
  auto k2 = kernels::make_kernel("EP");
  const NodeDemand a = characterize(*k1, hw::cortex_a9(), 10000, 7);
  const NodeDemand b = characterize(*k2, hw::cortex_a9(), 10000, 7);
  EXPECT_DOUBLE_EQ(a.cycles_core, b.cycles_core);
  EXPECT_DOUBLE_EQ(a.cycles_mem, b.cycles_mem);
}

TEST(PaperTargets, CoverAllSixProgramsOnBothNodes) {
  for (const auto& program : program_names()) {
    for (const auto* node : {"A9", "K10"}) {
      const auto t = paper_target(program, node);
      ASSERT_TRUE(t.has_value()) << program << "/" << node;
      EXPECT_GT(t->ppr, 0.0);
      EXPECT_GT(t->ipr, 0.0);
      EXPECT_LT(t->ipr, 1.0);
    }
  }
  EXPECT_FALSE(paper_target("EP", "XeonE5").has_value());
  EXPECT_FALSE(paper_target("doom", "A9").has_value());
}

TEST(PaperTargets, Table6And7SpotChecks) {
  EXPECT_DOUBLE_EQ(paper_target("EP", "A9")->ppr, 6048057.0);
  EXPECT_DOUBLE_EQ(paper_target("EP", "K10")->ipr, 0.65);
  EXPECT_DOUBLE_EQ(paper_target("RSA-2048", "K10")->ppr, 1091.0);
  EXPECT_DOUBLE_EQ(paper_target("memcached", "A9")->ipr, 0.83);
}

struct CalCase {
  const char* program;
  const char* node;
};

class Calibration : public ::testing::TestWithParam<CalCase> {};

TEST_P(Calibration, PinsThroughputAndPeakPower) {
  const auto& [program, node_name] = GetParam();
  const hw::NodeSpec node = hw::by_name(node_name);
  const Workload* w = nullptr;
  for (const auto& cand : catalog())
    if (cand.name == program) w = &cand;
  ASSERT_NE(w, nullptr);

  const auto target = paper_target(program, node_name);
  ASSERT_TRUE(target.has_value());

  const double thr =
      unit_throughput(w->demand_for(node_name), node, node.cores,
                      node.dvfs.max());
  EXPECT_NEAR(thr / target_peak_throughput(node, *target), 1.0, 1e-9);

  const Watts busy =
      busy_power(w->demand_for(node_name), node, node.cores, node.dvfs.max(),
                 w->power_scale_for(node_name));
  EXPECT_NEAR(busy.value(), target_peak_power(node, *target).value(), 1e-6);

  // IPR of the calibrated node equals the Table 7 target.
  EXPECT_NEAR(node.power.idle / busy, target->ipr, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, Calibration,
    ::testing::Values(CalCase{"EP", "A9"}, CalCase{"EP", "K10"},
                      CalCase{"memcached", "A9"}, CalCase{"memcached", "K10"},
                      CalCase{"x264", "A9"}, CalCase{"x264", "K10"},
                      CalCase{"blackscholes", "A9"},
                      CalCase{"blackscholes", "K10"},
                      CalCase{"Julius", "A9"}, CalCase{"Julius", "K10"},
                      CalCase{"RSA-2048", "A9"}, CalCase{"RSA-2048", "K10"}),
    [](const auto& inst) {
      std::string n = std::string(inst.param.program) + "_" + inst.param.node;
      for (auto& ch : n)
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return n;
    });

TEST(Calibrate, RejectsBadTargets) {
  Workload w;
  w.name = "test";
  w.demand["A9"] = NodeDemand{1e6, 1e5, Bytes{10.0}};
  const hw::NodeSpec a9 = hw::cortex_a9();
  EXPECT_THROW(calibrate_node(w, a9, {.ppr = 100.0, .ipr = 1.5}),
               PreconditionError);
  EXPECT_THROW(calibrate_node(w, a9, {.ppr = -1.0, .ipr = 0.5}),
               PreconditionError);
  Workload empty;
  empty.name = "none";
  EXPECT_THROW(calibrate_node(empty, a9, {.ppr = 1.0, .ipr = 0.5}),
               PreconditionError);
}

TEST(Catalog, BuildsAllSixWithBothNodes) {
  ASSERT_EQ(catalog().size(), 6u);
  for (const auto& w : catalog()) {
    EXPECT_TRUE(w.has_node("A9")) << w.name;
    EXPECT_TRUE(w.has_node("K10")) << w.name;
    EXPECT_GT(w.units_per_job, 0.0);
    EXPECT_FALSE(w.work_unit.empty());
    EXPECT_EQ(w.power_cal.size(), 2u);
  }
}

TEST(Catalog, WorkUnitsMatchTable6) {
  const std::map<std::string, std::string> expected = {
      {"EP", "random no."},   {"memcached", "bytes"},
      {"x264", "frames"},     {"blackscholes", "options"},
      {"Julius", "samples"},  {"RSA-2048", "verify"}};
  for (const auto& w : catalog()) {
    EXPECT_EQ(w.work_unit, expected.at(w.name)) << w.name;
  }
}

TEST(Catalog, OnlyMemcachedIsRequestPaced) {
  for (const auto& w : catalog()) {
    if (w.name == "memcached") {
      EXPECT_GT(w.io_request_interval.value(), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(w.io_request_interval.value(), 0.0);
    }
  }
}

TEST(Catalog, UncalibratedExtensionNodesWork) {
  CatalogOptions opts;
  opts.nodes = {hw::cortex_a15(), hw::xeon_e5()};
  const Workload w = make_workload("blackscholes", opts);
  EXPECT_TRUE(w.has_node("A15"));
  EXPECT_TRUE(w.has_node("XeonE5"));
  EXPECT_TRUE(w.power_cal.empty());  // no paper seeds for these
}

TEST(InputScale, ScalesJobSizeOnly) {
  const Workload base = make_workload("EP");
  const Workload small = with_input_scale(base, 0.25);
  EXPECT_DOUBLE_EQ(small.units_per_job, base.units_per_job * 0.25);
  // Per-unit demand untouched.
  EXPECT_DOUBLE_EQ(small.demand_for("A9").cycles_core,
                   base.demand_for("A9").cycles_core);
  EXPECT_DOUBLE_EQ(small.power_scale_for("K10"),
                   base.power_scale_for("K10"));
  EXPECT_THROW((void)with_input_scale(base, 0.0), PreconditionError);
  EXPECT_THROW((void)with_input_scale(base, -1.0), PreconditionError);
}

TEST(Catalog, UnknownProgramThrows) {
  EXPECT_THROW((void)make_workload("doom"), PreconditionError);
  EXPECT_THROW((void)default_units_per_job("doom"), PreconditionError);
  EXPECT_THROW((void)default_characterization_units("doom"),
               PreconditionError);
}

}  // namespace
