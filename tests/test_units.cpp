// Unit-type algebra: the compile-time dimensional rules plus runtime
// arithmetic identities used throughout the Table 2/3 implementations.
#include <gtest/gtest.h>

#include <sstream>

#include "hcep/util/units.hpp"

namespace {

using namespace hcep;
using namespace hcep::literals;

TEST(Units, LiteralsProduceExpectedValues) {
  EXPECT_DOUBLE_EQ((5_W).value(), 5.0);
  EXPECT_DOUBLE_EQ((1_kW).value(), 1000.0);
  EXPECT_DOUBLE_EQ((2.5_J).value(), 2.5);
  EXPECT_DOUBLE_EQ((3_s).value(), 3.0);
  EXPECT_DOUBLE_EQ((10_ms).value(), 0.010);
  EXPECT_DOUBLE_EQ((50_us).value(), 50e-6);
  EXPECT_DOUBLE_EQ((1.4_GHz).value(), 1.4e9);
  EXPECT_DOUBLE_EQ((800_MHz).value(), 0.8e9);
  EXPECT_DOUBLE_EQ((1_KB).value(), 1024.0);
  EXPECT_DOUBLE_EQ((1_MB).value(), 1024.0 * 1024.0);
}

TEST(Units, AdditionAndSubtraction) {
  EXPECT_DOUBLE_EQ((2_W + 3_W).value(), 5.0);
  EXPECT_DOUBLE_EQ((5_W - 3_W).value(), 2.0);
  Watts w{1.0};
  w += 2_W;
  EXPECT_DOUBLE_EQ(w.value(), 3.0);
  w -= 1_W;
  EXPECT_DOUBLE_EQ(w.value(), 2.0);
}

TEST(Units, ScalarScaling) {
  EXPECT_DOUBLE_EQ((4_W * 2.5).value(), 10.0);
  EXPECT_DOUBLE_EQ((2.5 * 4_W).value(), 10.0);
  EXPECT_DOUBLE_EQ((10_W / 4.0).value(), 2.5);
  Watts w{8.0};
  w *= 0.5;
  EXPECT_DOUBLE_EQ(w.value(), 4.0);
  w /= 2.0;
  EXPECT_DOUBLE_EQ(w.value(), 2.0);
}

TEST(Units, SameDimensionRatioIsDimensionless) {
  const double ratio = 30_W / 60_W;
  EXPECT_DOUBLE_EQ(ratio, 0.5);
}

TEST(Units, EnergyEqualsPowerTimesTime) {
  const Joules e = 10_W * 3_s;
  EXPECT_DOUBLE_EQ(e.value(), 30.0);
  EXPECT_DOUBLE_EQ((3_s * 10_W).value(), 30.0);
}

TEST(Units, PowerEqualsEnergyOverTime) {
  const Watts p = 30_J / 3_s;
  EXPECT_DOUBLE_EQ(p.value(), 10.0);
}

TEST(Units, TimeEqualsEnergyOverPower) {
  const Seconds t = 30_J / 10_W;
  EXPECT_DOUBLE_EQ(t.value(), 3.0);
}

TEST(Units, CyclesOverFrequencyIsTime) {
  const Seconds t = Cycles{2.8e9} / 1.4_GHz;
  EXPECT_DOUBLE_EQ(t.value(), 2.0);
}

TEST(Units, FrequencyTimesTimeIsCycles) {
  EXPECT_DOUBLE_EQ((1.4_GHz * 2_s).value(), 2.8e9);
  EXPECT_DOUBLE_EQ((2_s * 1.4_GHz).value(), 2.8e9);
}

TEST(Units, BytesOverBandwidthIsTime) {
  const Seconds t = Bytes{1e6} / BytesPerSecond{1e5};
  EXPECT_DOUBLE_EQ(t.value(), 10.0);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(1_W, 2_W);
  EXPECT_GT(3_s, 2_s);
  EXPECT_EQ(5_J, 5_J);
  EXPECT_LE(2_W, 2_W);
  EXPECT_GE(2_W, 1_W);
}

TEST(Units, StreamOutputIncludesSymbol) {
  std::ostringstream os;
  os << 5_W << " " << 2_s;
  EXPECT_EQ(os.str(), "5W 2s");
}

TEST(Units, NegationAndDefaultConstruction) {
  EXPECT_DOUBLE_EQ((-(3_W)).value(), -3.0);
  EXPECT_DOUBLE_EQ(Watts{}.value(), 0.0);
}

}  // namespace
