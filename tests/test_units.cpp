// Unit-type algebra: the compile-time dimensional rules plus runtime
// arithmetic identities used throughout the Table 2/3 implementations,
// the scaled-unit (Ratio) conversion round-trips, and the zero-overhead
// contract of Quantity<Dim, Ratio>. Wrong-dimension programs are covered
// by the compile-fail harness under tests/compile_fail/ (ctest -L lint).
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <vector>

#include "hcep/power/meter.hpp"
#include "hcep/util/units.hpp"

namespace {

using namespace hcep;
using namespace hcep::literals;

TEST(Units, LiteralsProduceExpectedValues) {
  EXPECT_DOUBLE_EQ((5_W).value(), 5.0);
  EXPECT_DOUBLE_EQ((1_kW).value(), 1000.0);
  EXPECT_DOUBLE_EQ((2.5_J).value(), 2.5);
  EXPECT_DOUBLE_EQ((3_s).value(), 3.0);
  EXPECT_DOUBLE_EQ((10_ms).value(), 0.010);
  EXPECT_DOUBLE_EQ((50_us).value(), 50e-6);
  EXPECT_DOUBLE_EQ((1.4_GHz).value(), 1.4e9);
  EXPECT_DOUBLE_EQ((800_MHz).value(), 0.8e9);
  EXPECT_DOUBLE_EQ((1_KB).value(), 1024.0);
  EXPECT_DOUBLE_EQ((1_MB).value(), 1024.0 * 1024.0);
}

TEST(Units, AdditionAndSubtraction) {
  EXPECT_DOUBLE_EQ((2_W + 3_W).value(), 5.0);
  EXPECT_DOUBLE_EQ((5_W - 3_W).value(), 2.0);
  Watts w{1.0};
  w += 2_W;
  EXPECT_DOUBLE_EQ(w.value(), 3.0);
  w -= 1_W;
  EXPECT_DOUBLE_EQ(w.value(), 2.0);
}

TEST(Units, ScalarScaling) {
  EXPECT_DOUBLE_EQ((4_W * 2.5).value(), 10.0);
  EXPECT_DOUBLE_EQ((2.5 * 4_W).value(), 10.0);
  EXPECT_DOUBLE_EQ((10_W / 4.0).value(), 2.5);
  Watts w{8.0};
  w *= 0.5;
  EXPECT_DOUBLE_EQ(w.value(), 4.0);
  w /= 2.0;
  EXPECT_DOUBLE_EQ(w.value(), 2.0);
}

TEST(Units, SameDimensionRatioIsDimensionless) {
  const double ratio = 30_W / 60_W;
  EXPECT_DOUBLE_EQ(ratio, 0.5);
}

TEST(Units, EnergyEqualsPowerTimesTime) {
  const Joules e = 10_W * 3_s;
  EXPECT_DOUBLE_EQ(e.value(), 30.0);
  EXPECT_DOUBLE_EQ((3_s * 10_W).value(), 30.0);
}

TEST(Units, PowerEqualsEnergyOverTime) {
  const Watts p = 30_J / 3_s;
  EXPECT_DOUBLE_EQ(p.value(), 10.0);
}

TEST(Units, TimeEqualsEnergyOverPower) {
  const Seconds t = 30_J / 10_W;
  EXPECT_DOUBLE_EQ(t.value(), 3.0);
}

TEST(Units, CyclesOverFrequencyIsTime) {
  const Seconds t = Cycles{2.8e9} / 1.4_GHz;
  EXPECT_DOUBLE_EQ(t.value(), 2.0);
}

TEST(Units, FrequencyTimesTimeIsCycles) {
  EXPECT_DOUBLE_EQ((1.4_GHz * 2_s).value(), 2.8e9);
  EXPECT_DOUBLE_EQ((2_s * 1.4_GHz).value(), 2.8e9);
}

TEST(Units, BytesOverBandwidthIsTime) {
  const Seconds t = Bytes{1e6} / BytesPerSecond{1e5};
  EXPECT_DOUBLE_EQ(t.value(), 10.0);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(1_W, 2_W);
  EXPECT_GT(3_s, 2_s);
  EXPECT_EQ(5_J, 5_J);
  EXPECT_LE(2_W, 2_W);
  EXPECT_GE(2_W, 1_W);
}

TEST(Units, StreamOutputIncludesSymbol) {
  std::ostringstream os;
  os << 5_W << " " << 2_s;
  EXPECT_EQ(os.str(), "5W 2s");
}

TEST(Units, NegationAndDefaultConstruction) {
  EXPECT_DOUBLE_EQ((-(3_W)).value(), -3.0);
  EXPECT_DOUBLE_EQ(Watts{}.value(), 0.0);
}

// ------------------------------------------------- derived dimensions

TEST(Units, DerivedDimensionAliases) {
  const JoulesPerOp jpo = 300_J / Ops{100.0};
  EXPECT_DOUBLE_EQ(jpo.value(), 3.0);
  const Joules back = jpo * Ops{100.0};
  EXPECT_DOUBLE_EQ(back.value(), 300.0);

  const OpsPerSecond rate = Ops{500.0} / 2_s;
  EXPECT_DOUBLE_EQ(rate.value(), 250.0);

  const JouleSeconds edp = 30_J * 2_s;
  EXPECT_DOUBLE_EQ(edp.value(), 60.0);
  const JouleSecondsSquared ed2p = edp * 2_s;
  EXPECT_DOUBLE_EQ(ed2p.value(), 120.0);
}

TEST(Units, ReciprocalOfTimeTimesEnergyIsPower) {
  // scalar / quantity derives the inverse dimension.
  const auto per_second = 1.0 / 4_s;
  const Watts p = 100_J * per_second;
  EXPECT_DOUBLE_EQ(p.value(), 25.0);
}

// --------------------------------------------- scaled-unit round trips

TEST(Units, MillijouleJouleKilowattHourRoundTrip) {
  const Millijoules mj{1500.0};
  const Joules j = mj;  // implicit same-dimension conversion
  EXPECT_DOUBLE_EQ(j.value(), 1.5);

  const KilowattHours kwh = quantity_cast<KilowattHours>(Joules{7.2e6});
  EXPECT_DOUBLE_EQ(kwh.value(), 2.0);
  const Joules back = kwh;
  EXPECT_DOUBLE_EQ(back.value(), 7.2e6);

  const Millijoules round = quantity_cast<Millijoules>(Joules{Millijoules{123.0}});
  EXPECT_DOUBLE_EQ(round.value(), 123.0);

  // kWh literal: 1 kWh = 3.6e6 J exactly.
  EXPECT_DOUBLE_EQ((1_kWh).value(), 3.6e6);
  EXPECT_DOUBLE_EQ((2_mJ).value(), 0.002);
}

TEST(Units, MegahertzGigahertzRoundTrip) {
  const Megahertz mhz{800.0};
  const Hertz f = mhz;
  EXPECT_DOUBLE_EQ(f.value(), 8e8);
  const Gigahertz ghz = quantity_cast<Gigahertz>(f);
  EXPECT_DOUBLE_EQ(ghz.value(), 0.8);
  const Megahertz back = quantity_cast<Megahertz>(ghz);
  EXPECT_DOUBLE_EQ(back.value(), 800.0);

  // The MHz-vs-GHz slip the layer exists to kill: equality compares in
  // base units, so 800 MHz == 0.8 GHz and 800 MHz != 0.8 MHz.
  EXPECT_EQ(Megahertz{800.0}, Gigahertz{0.8});
  EXPECT_NE(Megahertz{800.0}, Megahertz{0.8});
}

TEST(Units, MixedRatioArithmeticConvertsToLeftOperand) {
  const Joules sum = Joules{1.0} + Millijoules{500.0};
  EXPECT_DOUBLE_EQ(sum.value(), 1.5);
  const Millijoules msum = Millijoules{500.0} + Joules{1.0};
  EXPECT_DOUBLE_EQ(msum.value(), 1500.0);
  EXPECT_LT(Millijoules{999.0}, Joules{1.0});
  const double ratio = Joules{1.8e6} / KilowattHours{1.0};
  EXPECT_DOUBLE_EQ(ratio, 0.5);
}

TEST(Units, ScaledCrossDimensionProductsNormalizeToCoherentUnits) {
  // kW * ms -> J via base-unit normalization.
  const Joules e = Kilowatts{2.0} * Milliseconds{500.0};
  EXPECT_DOUBLE_EQ(e.value(), 1000.0);
  const Seconds t = Cycles{1.6e9} / Gigahertz{0.8};
  EXPECT_DOUBLE_EQ(t.value(), 2.0);
}

TEST(Units, StreamOutputIncludesScaledSymbols) {
  std::ostringstream os;
  os << Millijoules{5.0} << " " << Megahertz{800.0} << " "
     << (10_J / Ops{2.0});
  EXPECT_EQ(os.str(), "5mJ 800MHz 5J/op");
}

// -------------------------------------------------- zero overhead

TEST(Units, QuantityIsATransparentDouble) {
  // Layout asserts also live in the header as static_asserts; repeating
  // the load-bearing ones here keeps the contract visible in the suite.
  static_assert(sizeof(Joules) == sizeof(double));
  static_assert(sizeof(KilowattHours) == sizeof(double));
  static_assert(alignof(Watts) == alignof(double));
  static_assert(std::is_trivially_copyable_v<Seconds>);

  // An array of typed metrics must have raw-double layout (the SoA
  // EvaluationSet and the OperatingPointTable rely on this).
  Joules column[4] = {1_J, 2_J, 3_J, 4_J};
  const auto* raw = reinterpret_cast<const double*>(column);
  EXPECT_DOUBLE_EQ(raw[2], 3.0);
}

TEST(Units, TypedIntegrationIsNotPessimized) {
  // Coarse runtime guard against catastrophic pessimization (virtual
  // dispatch, allocation, missed inlining): the typed power-integration
  // loop must stay within 8x of the raw-double loop even under CI noise.
  // The precise codegen comparison is bench/perf_units.cpp.
  constexpr std::size_t kN = 1 << 16;
  std::vector<double> raw_p(kN), raw_t(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    raw_p[i] = 5.0 + static_cast<double>(i % 97);
    raw_t[i] = 0.001 * static_cast<double>(1 + (i % 13));
  }
  const std::vector<Watts>& tp = *reinterpret_cast<std::vector<Watts>*>(&raw_p);
  const std::vector<Seconds>& tt =
      *reinterpret_cast<std::vector<Seconds>*>(&raw_t);

  using clock = std::chrono::steady_clock;
  double raw_sum = 0.0;
  const auto t0 = clock::now();
  for (int rep = 0; rep < 64; ++rep)
    for (std::size_t i = 0; i < kN; ++i) raw_sum += raw_p[i] * raw_t[i];
  const auto t1 = clock::now();
  Joules typed_sum{};
  for (int rep = 0; rep < 64; ++rep)
    for (std::size_t i = 0; i < kN; ++i) typed_sum += tp[i] * tt[i];
  const auto t2 = clock::now();

  EXPECT_DOUBLE_EQ(typed_sum.value(), raw_sum);
  const auto raw_ns = std::chrono::nanoseconds(t1 - t0).count();
  const auto typed_ns = std::chrono::nanoseconds(t2 - t1).count();
  EXPECT_LT(typed_ns, raw_ns * 8 + 1000000)
      << "typed " << typed_ns << " ns vs raw " << raw_ns << " ns";
}

// ---------------------------------- energy re-integration regression

TEST(Units, PowerTraceEnergyMatchesRawIntegrationAfterTypedRefactor) {
  // PowerTrace::energy() runs entirely on Quantity arithmetic; it must
  // agree with a raw-double rectangle integration of the same steps to
  // 1e-9 relative — the regression gate for the typed refactor.
  power::PowerTrace trace;
  std::vector<std::pair<double, double>> steps;  // (start_s, level_w)
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double level = 5.0 + 0.37 * static_cast<double>(i % 29);
    trace.step(Seconds{t}, Watts{level});
    steps.emplace_back(t, level);
    t += 0.01 + 0.003 * static_cast<double>(i % 7);
  }
  const double horizon = t + 0.5;

  double raw_energy = 0.0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const double start = steps[i].first;
    const double end = i + 1 < steps.size() ? steps[i + 1].first : horizon;
    raw_energy += steps[i].second * (end - start);
  }

  const Joules typed = trace.energy(Seconds{horizon});
  EXPECT_NEAR(typed.value(), raw_energy, std::abs(raw_energy) * 1e-9);

  // And the average-power identity: E / T == average(T).
  const Watts avg = typed / Seconds{horizon};
  EXPECT_NEAR(avg.value(), trace.average(Seconds{horizon}).value(),
              std::abs(raw_energy) * 1e-9);
}

}  // namespace
