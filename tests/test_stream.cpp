// hcep::obs::stream — streaming telemetry and the control-plane flight
// recorder.
//
// Three pillars:
//  1. The QuantileSketch is HONEST: quantile(q) always lands within the
//     reported epsilon() relative value-error bound of the exact order
//     statistic, at scale and after shard merges — and its memory never
//     exceeds the hard bucket cap.
//  2. The Collector is EXACT where it claims to be: per-window energy
//     and busy time are closed-form integrals of the same deltas the
//     power trace records (hand-computed scenarios here; the 1e-9
//     re-integration against PowerTrace::energy() runs in the 256-triple
//     sweep of tests/test_properties.cpp).
//  3. Streaming is purely OBSERVATIONAL: enabling it leaves every other
//     result byte byte-identical, and its own artifacts (JSON, CSV,
//     diff) are deterministic and round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "hcep/model/time_energy.hpp"
#include "hcep/obs/run_report.hpp"
#include "hcep/obs/stream.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::obs::stream;

// ------------------------------------------------------- quantile sketch

/// Asserts the histogram guarantee: for the exact order statistic x at
/// rank ceil(q*n), the sketch's answer v satisfies
/// |v - x| <= epsilon() * |x| (plus float dust).
void expect_within_value_bounds(const QuantileSketch& sk,
                                const std::vector<double>& sorted, double q,
                                const std::string& tag) {
  const auto n = static_cast<double>(sorted.size());
  ASSERT_EQ(sk.count(), sorted.size()) << tag;
  const double v = sk.quantile(q);
  const auto rank = static_cast<std::size_t>(std::clamp(std::ceil(q * n),
                                                        1.0, n));
  const double exact = sorted[rank - 1];
  EXPECT_NEAR(v, exact, sk.epsilon() * std::abs(exact) + 1e-12)
      << tag << " q=" << q;
}

TEST(QuantileSketch, EmptyAndSingleValue) {
  QuantileSketch sk{0.01};
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_DOUBLE_EQ(sk.quantile(0.5), 0.0);
  sk.insert(42.0);
  EXPECT_EQ(sk.count(), 1u);
  for (const double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_NEAR(sk.quantile(q), 42.0, sk.epsilon() * 42.0);
}

TEST(QuantileSketch, ZeroAndSignHandling) {
  // Zero has its own exact bucket; negative values live in a mirrored
  // histogram, so quantiles ascend correctly across the sign change.
  QuantileSketch sk{0.01};
  for (const double v : {-8.0, -1.0, 0.0, 0.0, 2.0, 4.0, 16.0}) sk.insert(v);
  const double eps = sk.epsilon();
  EXPECT_NEAR(sk.quantile(0.0), -8.0, eps * 8.0);
  EXPECT_NEAR(sk.quantile(2.0 / 7.0), -1.0, eps * 1.0);
  EXPECT_DOUBLE_EQ(sk.quantile(4.0 / 7.0), 0.0);  // zeros are exact
  EXPECT_NEAR(sk.quantile(5.0 / 7.0), 2.0, eps * 2.0);
  EXPECT_NEAR(sk.quantile(1.0), 16.0, eps * 16.0);
  // Monotone in q even across the sign regions.
  double prev = sk.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = sk.quantile(q);
    EXPECT_GE(cur, prev - 1e-12) << "q=" << q;
    prev = cur;
  }
}

TEST(QuantileSketch, ValueBoundsHoldAtScaleWithTiesAndTails) {
  for (const double eps : {0.001, 0.005, 0.02}) {
    Rng rng(11);
    std::vector<double> values;
    values.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      const double u = rng.uniform01();
      if (u < 0.4) {
        values.push_back(rng.uniform(0.0, 1.0));
      } else if (u < 0.7) {
        values.push_back(std::floor(rng.uniform(0.0, 8.0)));  // heavy ties
      } else {
        values.push_back(rng.exponential(0.5));  // long tail
      }
    }
    QuantileSketch sk{eps};
    for (const double v : values) sk.insert(v);
    EXPECT_LE(sk.buckets(), QuantileSketch::max_buckets());
    // Finest eps may escalate under this many-octave value range (small
    // uniforms near zero); the reported bound stays honest regardless.
    if (eps >= 0.005) {
      EXPECT_LE(sk.epsilon(), eps);
    }
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (const double q : {0.001, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999})
      expect_within_value_bounds(sk, sorted, q,
                                 "eps=" + std::to_string(eps));
  }
}

TEST(QuantileSketch, EscalatesHonestlyUnderBucketCapPressure) {
  // A value range spanning ~60 octaves at fine resolution cannot fit
  // the bucket cap: the sketch must coarsen deterministically and
  // report the escalated bound, which the guarantee then still meets.
  Rng rng(31);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(std::ldexp(rng.uniform(1.0, 2.0),
                                static_cast<int>(rng.uniform_int(60)) - 30));
  }
  QuantileSketch sk{0.001};
  for (const double v : values) sk.insert(v);
  EXPECT_LE(sk.buckets(), QuantileSketch::max_buckets());
  EXPECT_GT(sk.epsilon(), 0.001);  // escalated, and says so
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99})
    expect_within_value_bounds(sk, sorted, q, "escalated");
}

TEST(QuantileSketch, ShardMergeTakesMaxBoundAndKeepsGuarantee) {
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 30000; ++i) values.push_back(rng.exponential(1.0));

  QuantileSketch a{0.004};
  QuantileSketch b{0.006};
  QuantileSketch c{0.004};
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).insert(values[i]);
  }
  const double worst =
      std::max({a.epsilon(), b.epsilon(), c.epsilon()});
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a.count(), values.size());
  EXPECT_LE(a.buckets(), QuantileSketch::max_buckets());
  // Bucket counts add, so the merged bound is the coarsest shard's
  // bound — it does NOT grow additively.
  EXPECT_DOUBLE_EQ(a.epsilon(), worst);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99})
    expect_within_value_bounds(a, sorted, q, "merged");

  // Merging into an empty sketch adopts the other's samples.
  QuantileSketch fresh{0.05};
  QuantileSketch one{0.01};
  one.insert(3.0);
  fresh.merge(one);
  EXPECT_EQ(fresh.count(), 1u);
  EXPECT_NEAR(fresh.quantile(0.5), 3.0, fresh.epsilon() * 3.0);
}

TEST(QuantileSketch, DeterministicForAFixedInsertSequence) {
  Rng rng(5);
  QuantileSketch a{0.01};
  QuantileSketch b{0.01};
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.normal(10.0, 3.0));
  for (const double v : values) a.insert(v);
  for (const double v : values) b.insert(v);
  EXPECT_EQ(a.buckets(), b.buckets());
  for (const double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q));
}

// ------------------------------------------------------------- collector

/// One class ("A9", 2 nodes, 10 W idle floor), 1 s windows. Every number
/// below is a hand-computed piecewise-constant integral.
TEST(Collector, HandComputedWindowsAreExact) {
  StreamOptions opt;
  opt.window = Seconds{1.0};
  Collector c(opt, {NodeClassInfo{"A9", 2}}, {Watts{10.0}});

  c.on_arrival(Seconds{0.2});
  c.on_dispatch(0, Seconds{0.2}, Seconds{0.2}, Seconds{1.5}, Watts{5.0});
  c.on_arrival(Seconds{0.4});
  c.on_dispatch(0, Seconds{0.4}, Seconds{0.4}, Seconds{0.9}, Watts{5.0});
  c.on_complete(0, Seconds{0.9}, Seconds{0.5});
  c.on_complete(0, Seconds{1.5}, Seconds{1.3});
  c.on_shed(Seconds{1.6});

  const StreamTimeline tl = Collector::merge_finalize({&c}, Seconds{2.0});
  ASSERT_EQ(tl.windows.size(), 2u);
  ASSERT_EQ(tl.node_classes.size(), 1u);
  EXPECT_EQ(tl.node_classes[0].nodes, 2u);

  const StreamWindow& w0 = tl.windows[0];
  EXPECT_EQ(w0.arrivals, 2u);
  EXPECT_EQ(w0.completions, 1u);
  EXPECT_EQ(w0.shed, 0u);
  EXPECT_EQ(w0.classes[0].dispatched, 2u);
  // Levels: 10 W on [0,0.2), 15 on [0.2,0.4), 20 on [0.4,0.9), 15 on
  // [0.9,1.0) -> 2.0 + 3.0 + 10.0 + 1.5 J.
  EXPECT_NEAR(w0.energy.value(), 16.5, 1e-12);
  // Busy population: 0,1,2,1 over the same segments -> 1.3 node-seconds.
  EXPECT_NEAR(w0.classes[0].busy.value(), 1.3, 1e-12);
  EXPECT_NEAR(w0.classes[0].utilization, 0.65, 1e-12);
  // One job still in flight at the boundary snapshot.
  EXPECT_EQ(w0.classes[0].queue_depth, 1u);
  EXPECT_EQ(w0.sojourn_count, 1u);
  EXPECT_NEAR(w0.sojourn_p50.value(), 0.5, tl.sketch_epsilon * 0.5);

  const StreamWindow& w1 = tl.windows[1];
  EXPECT_EQ(w1.arrivals, 0u);
  EXPECT_EQ(w1.completions, 1u);
  EXPECT_EQ(w1.shed, 1u);
  // 15 W until the 1.5 s completion, 10 W to the 2.0 s horizon.
  EXPECT_NEAR(w1.energy.value(), 12.5, 1e-12);
  EXPECT_NEAR(w1.classes[0].busy.value(), 0.5, 1e-12);
  EXPECT_NEAR(w1.classes[0].utilization, 0.25, 1e-12);
  EXPECT_EQ(w1.classes[0].queue_depth, 0u);
  EXPECT_NEAR(w1.sojourn_p99.value(), 1.3, tl.sketch_epsilon * 1.3);

  // The timeline total is the exact integral: floor + dynamic.
  EXPECT_NEAR(tl.total_energy.value(), 29.0, 1e-12);
  EXPECT_NEAR(tl.total_energy.value(),
              10.0 * 2.0 + 5.0 * 1.3 + 5.0 * 0.5, 1e-12);
}

TEST(Collector, BoundaryEventsLandInTheNewWindow) {
  StreamOptions opt;
  opt.window = Seconds{1.0};
  Collector c(opt, {NodeClassInfo{"A9", 1}}, {Watts{2.0}});
  c.on_arrival(Seconds{1.0});  // exactly at the 0/1 boundary
  const StreamTimeline tl = Collector::merge_finalize({&c}, Seconds{2.0});
  ASSERT_EQ(tl.windows.size(), 2u);
  EXPECT_EQ(tl.windows[0].arrivals, 0u);
  EXPECT_EQ(tl.windows[1].arrivals, 1u);
}

TEST(Collector, FloorDeltasAndWakeLumpsAreChargedToTheRightWindow) {
  StreamOptions opt;
  opt.window = Seconds{1.0};
  Collector c(opt, {NodeClassInfo{"K10", 1}}, {Watts{10.0}});
  c.on_floor_delta(0, Seconds{0.5}, Watts{-4.0});  // gate to sleep
  c.on_floor_delta(0, Seconds{1.25}, Watts{4.0});  // wake
  c.on_wake_energy(0, Seconds{1.25}, Joules{2.5});
  const StreamTimeline tl = Collector::merge_finalize({&c}, Seconds{2.0});
  ASSERT_EQ(tl.windows.size(), 2u);
  EXPECT_NEAR(tl.windows[0].energy.value(), 10.0 * 0.5 + 6.0 * 0.5, 1e-12);
  EXPECT_NEAR(tl.windows[1].energy.value(), 6.0 * 0.25 + 10.0 * 0.75,
              1e-12);
  EXPECT_DOUBLE_EQ(tl.windows[0].wake.value(), 0.0);
  EXPECT_DOUBLE_EQ(tl.windows[1].wake.value(), 2.5);
  EXPECT_NEAR(tl.total_energy.value() + tl.total_wake.value(),
              8.0 + 9.0 + 2.5, 1e-12);
}

TEST(Collector, ShardMergeSumsCountsAndMergesSketches) {
  StreamOptions opt;
  opt.window = Seconds{1.0};
  Collector a(opt, {NodeClassInfo{"A9", 1}}, {Watts{3.0}});
  Collector b(opt, {NodeClassInfo{"A9", 2}}, {Watts{6.0}});
  a.on_arrival(Seconds{0.1});
  a.on_complete(0, Seconds{0.6}, Seconds{0.5});
  b.on_arrival(Seconds{0.2});
  b.on_arrival(Seconds{0.3});
  b.on_complete(0, Seconds{0.7}, Seconds{0.4});
  const StreamTimeline tl =
      Collector::merge_finalize({&a, &b}, Seconds{1.0});
  ASSERT_EQ(tl.windows.size(), 1u);
  EXPECT_EQ(tl.node_classes[0].nodes, 3u);  // fleets add
  EXPECT_EQ(tl.windows[0].arrivals, 3u);
  EXPECT_EQ(tl.windows[0].completions, 2u);
  EXPECT_EQ(tl.windows[0].sojourn_count, 2u);
  EXPECT_NEAR(tl.windows[0].energy.value(), 9.0, 1e-12);
  // Merged sketch over {0.5, 0.4}: the median is the lower value.
  EXPECT_NEAR(tl.windows[0].sojourn_p50.value(), 0.4,
              tl.sketch_epsilon * 0.4);
  EXPECT_NEAR(tl.windows[0].sojourn_p99.value(), 0.5,
              tl.sketch_epsilon * 0.5);
}

// ------------------------------------------- serialization and the diff

/// Small two-window timeline for serialization/diff tests.
StreamTimeline sample_timeline() {
  StreamOptions opt;
  opt.window = Seconds{1.0};
  Collector c(opt, {NodeClassInfo{"A9", 2}, NodeClassInfo{"K10", 1}},
              {Watts{10.0}, Watts{7.0}});
  c.on_arrival(Seconds{0.2});
  c.on_dispatch(0, Seconds{0.2}, Seconds{0.2}, Seconds{0.9}, Watts{4.0});
  c.on_complete(0, Seconds{0.9}, Seconds{0.7});
  c.on_arrival(Seconds{1.1});
  c.on_dispatch(1, Seconds{1.1}, Seconds{1.1}, Seconds{1.8}, Watts{6.0});
  c.on_complete(1, Seconds{1.8}, Seconds{0.7});
  c.on_shed(Seconds{1.9});
  return Collector::merge_finalize({&c}, Seconds{2.0});
}

TEST(StreamTimeline, JsonRoundTripIsByteIdentical) {
  const StreamTimeline tl = sample_timeline();
  const std::string bytes = tl.to_json().dump();
  const StreamTimeline back =
      StreamTimeline::from_json(JsonValue::parse(bytes));
  EXPECT_EQ(back.to_json().dump(), bytes);
  EXPECT_THROW(StreamTimeline::from_json(JsonValue::parse("{\"kind\":\"x\"}")),
               PreconditionError);
}

TEST(StreamTimeline, CsvShapeAndQuoting) {
  StreamTimeline tl = sample_timeline();
  const std::string csv = tl.csv();
  // Header + per window: one aggregate row + one row per class.
  std::size_t lines = 0;
  for (const char ch : csv) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1 + tl.windows.size() * (1 + tl.node_classes.size()));
  EXPECT_EQ(csv.rfind("window,t0_s,t1_s,class,", 0), 0u);
  EXPECT_NE(csv.find(",A9,"), std::string::npos);
  EXPECT_NE(csv.find(",K10,"), std::string::npos);

  // RFC 4180: a hostile class name is quoted, quotes doubled.
  tl.node_classes[0].name = "A9,\"big\"";
  EXPECT_NE(tl.csv().find("\"A9,\"\"big\"\"\""), std::string::npos);
}

TEST(TimelineDiff, IdenticalTimelinesDiffEmpty) {
  const StreamTimeline a = sample_timeline();
  const StreamTimeline b = sample_timeline();
  const TimelineDiff d = diff_timelines(a, b);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.windows_compared, a.windows.size());
  EXPECT_TRUE(d.flagged_windows().empty());
  EXPECT_EQ(d.to_json().at("identical").as_bool(), true);
}

TEST(TimelineDiff, FlagsExactlyThePerturbedMetrics) {
  const StreamTimeline a = sample_timeline();
  StreamTimeline b = sample_timeline();
  b.windows[1].arrivals += 1;
  b.windows[1].classes[0].busy += Seconds{0.25};
  const TimelineDiff d = diff_timelines(a, b);
  ASSERT_EQ(d.entries.size(), 2u);
  EXPECT_EQ(d.entries[0].metric, "arrivals");
  EXPECT_EQ(d.entries[1].metric, "A9.busy_s");
  EXPECT_EQ(d.flagged_windows(), (std::vector<std::uint64_t>{1}));
}

TEST(TimelineDiff, TolerancesGateContinuousMetrics) {
  const StreamTimeline a = sample_timeline();
  StreamTimeline b = sample_timeline();
  b.windows[0].energy *= 1.0 + 1e-13;  // below the default 1e-9
  EXPECT_TRUE(diff_timelines(a, b).empty());
  EXPECT_FALSE(diff_timelines(a, b, DiffTolerances{0.0, 0.0}).empty());
  b.windows[0].energy *= 1.0 + 1e-6;
  const TimelineDiff d = diff_timelines(a, b);
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].metric, "energy_j");
  // Loose tolerances wave the same delta through.
  EXPECT_TRUE(diff_timelines(a, b, DiffTolerances{1e-3, 0.0}).empty());
}

TEST(TimelineDiff, ShapeMismatchAndMissingWindows) {
  const StreamTimeline a = sample_timeline();
  StreamTimeline narrower = a;
  narrower.window = Seconds{0.5};
  const TimelineDiff d1 = diff_timelines(a, narrower);
  EXPECT_TRUE(d1.shape_mismatch);
  EXPECT_FALSE(d1.empty());

  StreamTimeline longer = sample_timeline();
  longer.windows.push_back(longer.windows.back());
  longer.windows.back().index = 2;
  const TimelineDiff d2 = diff_timelines(a, longer);
  ASSERT_EQ(d2.entries.size(), 1u);
  EXPECT_EQ(d2.entries[0].metric, "missing_window");
  EXPECT_EQ(d2.entries[0].window, 2u);
  EXPECT_EQ(d2.flagged_windows(), (std::vector<std::uint64_t>{2}));
}

// -------------------------------------------------------- flight recorder

DecisionRecord make_record(std::uint64_t tick, std::uint32_t shard,
                           double t) {
  DecisionRecord r;
  r.tick = tick;
  r.shard = shard;
  r.t = Seconds{t};
  return r;
}

TEST(FlightRecorder, DropOldestCountsEvictions) {
  FlightRecorder fr{4};
  for (std::uint64_t i = 0; i < 6; ++i) fr.append(make_record(i, 0, 1.0));
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.dropped(), 2u);
  EXPECT_EQ(fr.at(0).tick, 2u);  // oldest records went first
  EXPECT_EQ(fr.at(3).tick, 5u);
  EXPECT_EQ(fr.to_json().at("dropped").as_int(), 2);
}

TEST(FlightRecorder, MergeInterleavesByTimeShardTick) {
  FlightRecorder a{8};
  FlightRecorder b{8};
  a.append(make_record(0, 0, 1.0));
  a.append(make_record(1, 0, 3.0));
  b.append(make_record(0, 1, 1.0));
  b.append(make_record(1, 1, 2.0));
  const FlightRecorder m = FlightRecorder::merge({&a, &b});
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m.capacity(), 16u);  // capacities add: merging never evicts
  // (t=1,shard 0), (t=1,shard 1), (t=2,shard 1), (t=3,shard 0).
  EXPECT_EQ(m.at(0).shard, 0u);
  EXPECT_EQ(m.at(1).shard, 1u);
  EXPECT_DOUBLE_EQ(m.at(2).t.value(), 2.0);
  EXPECT_DOUBLE_EQ(m.at(3).t.value(), 3.0);
}

// ----------------------------------------- end-to-end traffic integration

const workload::Workload& ep() {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == "EP") return w;
  throw std::runtime_error("missing workload EP");
}

TEST(StreamedTraffic, StreamingIsPurelyObservational) {
  const auto cluster = model::make_a9_k10_cluster(2, 1);
  const std::vector<traffic::TrafficClass> classes{
      traffic::TrafficClass{ep(), 1.0, traffic::SloTarget{}}};
  const double rate =
      0.6 * traffic::cluster_capacity_per_s(cluster, classes);
  const auto arrivals = traffic::make_poisson(rate);

  traffic::TrafficOptions off;
  off.requests = 600;
  off.seed = 17;
  traffic::TrafficOptions on = off;
  on.stream.window = Seconds{60.0 / rate};

  const auto base = simulate_traffic(cluster, classes, *arrivals, off);
  const auto streamed = simulate_traffic(cluster, classes, *arrivals, on);

  // Same run, byte for byte — the collector drew no randomness and
  // scheduled no events.
  EXPECT_TRUE(base.timeline.empty());
  ASSERT_FALSE(streamed.timeline.empty());
  EXPECT_EQ(base.to_json().dump(), streamed.to_json().dump());
  EXPECT_EQ(base.energy.value(), streamed.energy.value());  // bit-exact

  // Open-loop ledger: window energies re-integrate the run's exact
  // energy (idle floor + dynamic), and counts conserve.
  const StreamTimeline& tl = streamed.timeline;
  double energy = 0.0;
  std::uint64_t arrived = 0;
  std::uint64_t completed = 0;
  for (const StreamWindow& w : tl.windows) {
    energy += w.energy.value();
    arrived += w.arrivals;
    completed += w.completions;
  }
  EXPECT_NEAR(energy, streamed.energy.value(),
              1e-9 * streamed.energy.value());
  EXPECT_NEAR(tl.total_energy.value(), energy, 1e-9 * energy);
  EXPECT_EQ(arrived, streamed.offered);
  EXPECT_EQ(completed, streamed.completed);
  EXPECT_DOUBLE_EQ(tl.horizon.value(), streamed.makespan.value());
}

TEST(StreamedTraffic, RunReportCarriesTimelineFlightAndWarnings) {
  obs::RunReport report;
  report.title = "streamed";
  EXPECT_TRUE(report.warnings().empty());
  const std::string without = report.json();
  EXPECT_EQ(without.find("\"stream\""), std::string::npos);
  EXPECT_EQ(without.find("\"flight\""), std::string::npos);

  report.timeline = sample_timeline();
  FlightRecorder fr{1};
  fr.append(make_record(0, 0, 1.0));
  fr.append(make_record(1, 0, 2.0));  // evicts -> warning
  report.flight = FlightRecorder::merge({&fr});
  const std::string with = report.json();
  EXPECT_NE(with.find("\"stream\""), std::string::npos);
  EXPECT_NE(with.find("\"flight\""), std::string::npos);
  const auto warns = report.warnings();
  ASSERT_EQ(warns.size(), 1u);
  EXPECT_NE(warns[0].find("flight recorder evicted 1"), std::string::npos);
  EXPECT_NE(with.find("\"warnings\""), std::string::npos);
}

}  // namespace
