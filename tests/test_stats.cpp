// Statistics: Welford moments, percentiles, P2 estimator, histograms.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/util/stats.hpp"

namespace {

using namespace hcep;

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW((void)s.mean(), PreconditionError);
  EXPECT_THROW((void)s.min(), PreconditionError);
  s.add(1.0);
  EXPECT_THROW((void)s.variance(), PreconditionError);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Percentile, SingleSample) {
  std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 95.0), 42.0);
}

TEST(Percentile, Validation) {
  std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), PreconditionError);
  std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, 101.0), PreconditionError);
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile q(0.5);
  q.add(3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

TEST(P2Quantile, TracksMedianOfUniform) {
  P2Quantile q(0.5);
  Rng rng(17);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform01());
  EXPECT_NEAR(q.value(), 0.5, 0.02);
}

TEST(P2Quantile, Tracks95thOfExponential) {
  P2Quantile q(0.95);
  Rng rng(19);
  std::vector<double> all;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.exponential(1.0);
    q.add(x);
    all.push_back(x);
  }
  const double exact = percentile_inplace(all, 95.0);
  EXPECT_NEAR(q.value(), exact, exact * 0.05);
}

TEST(P2Quantile, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), PreconditionError);
  EXPECT_THROW(P2Quantile(1.0), PreconditionError);
  P2Quantile q(0.9);
  EXPECT_THROW((void)q.value(), PreconditionError);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, WeightedSamples) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  h.add(0.75, 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, PercentileAtBinGranularity) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(95.0), 95.0, 1.0);
  EXPECT_NEAR(h.percentile(50.0), 50.0, 1.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 0.0, 10), PreconditionError);
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)h.percentile(50.0), PreconditionError);  // empty
}

}  // namespace
