// Text output: tables, number formatting, CSV, gnuplot series.
#include <gtest/gtest.h>

#include "hcep/util/error.hpp"
#include "hcep/util/table.hpp"

namespace {

using namespace hcep;

TEST(TextTable, AlignsColumns) {
  TextTable t({"Program", "PPR"});
  t.add_row({"EP", "6,048,057"});
  t.add_row({"x264", "0.7"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Program | PPR       |"), std::string::npos);
  EXPECT_NE(s.find("| EP      | 6,048,057 |"), std::string::npos);
  EXPECT_NE(s.find("| x264    | 0.7       |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(0.5, 3), "0.500");
}

TEST(FmtGrouped, ThousandsSeparators) {
  EXPECT_EQ(fmt_grouped(6048057.0), "6,048,057");
  EXPECT_EQ(fmt_grouped(968.0), "968");
  EXPECT_EQ(fmt_grouped(1000.0), "1,000");
  EXPECT_EQ(fmt_grouped(0.0), "0");
  EXPECT_EQ(fmt_grouped(-12345.0), "-12,345");
  EXPECT_EQ(fmt_grouped(1414922.4), "1,414,922");  // rounds
}

TEST(SeriesWriter, GnuplotIndexBlocks) {
  SeriesWriter w;
  w.begin_series("A9");
  w.point(10.0, 76.6);
  w.begin_series("K10");
  w.point(10.0, 68.5);
  const std::string s = w.str();
  EXPECT_NE(s.find("# A9\n"), std::string::npos);
  EXPECT_NE(s.find("\n\n\n# K10\n"), std::string::npos);
}

TEST(SeriesWriter, MultiColumnPoints) {
  SeriesWriter w;
  w.begin_series("multi");
  w.point(1.0, {2.0, 3.0});
  EXPECT_NE(w.str().find("1.000000 2.000000 3.000000\n"), std::string::npos);
}

TEST(SeriesWriter, PointBeforeSeriesThrows) {
  SeriesWriter w;
  EXPECT_THROW(w.point(1.0, 2.0), PreconditionError);
}

TEST(CsvWriter, HeaderAndQuoting) {
  CsvWriter w({"name", "value"});
  w.add_row({"plain", "1"});
  w.add_row({"with,comma", "with\"quote"});
  const std::string s = w.str();
  EXPECT_NE(s.find("name,value\n"), std::string::npos);
  EXPECT_NE(s.find("plain,1\n"), std::string::npos);
  EXPECT_NE(s.find("\"with,comma\",\"with\"\"quote\"\n"), std::string::npos);
}

TEST(CsvWriter, RejectsWidthMismatch) {
  CsvWriter w({"a"});
  EXPECT_THROW(w.add_row({"1", "2"}), PreconditionError);
}

}  // namespace
