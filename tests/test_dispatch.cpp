// Heterogeneity-aware dispatch policies (extension).
#include <gtest/gtest.h>

#include <cctype>
#include <map>

#include "hcep/cluster/dispatch.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::cluster;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

DispatchOptions opts(DispatchPolicy policy, double u = 0.5,
                     std::uint64_t jobs = 1500) {
  DispatchOptions o;
  o.policy = policy;
  o.utilization = u;
  o.jobs = jobs;
  return o;
}

TEST(Dispatch, PolicyNamesAndList) {
  const auto policies = all_dispatch_policies();
  EXPECT_EQ(policies.size(), 5u);
  for (const auto p : policies) EXPECT_FALSE(to_string(p).empty());
  EXPECT_EQ(to_string(DispatchPolicy::kRoundRobin), "round-robin");
}

class EveryPolicy : public ::testing::TestWithParam<DispatchPolicy> {};

TEST_P(EveryPolicy, CompletesAllJobsAndAccountsEnergy) {
  const auto cluster = model::make_a9_k10_cluster(6, 2);
  const auto r = simulate_dispatch(cluster, wl("EP"), opts(GetParam()));
  EXPECT_EQ(r.jobs, 1500u);
  EXPECT_GT(r.makespan.value(), 0.0);
  EXPECT_GT(r.energy.value(), 0.0);
  EXPECT_GT(r.p95_response, r.mean_response);

  std::uint64_t served = 0;
  for (const auto& n : r.nodes) {
    served += n.jobs_served;
    EXPECT_GE(n.busy_fraction, 0.0);
    EXPECT_LE(n.busy_fraction, 1.0 + 1e-9);
  }
  EXPECT_EQ(served, r.jobs);
}

TEST_P(EveryPolicy, DeterministicForFixedSeed) {
  const auto cluster = model::make_a9_k10_cluster(4, 1);
  const auto a = simulate_dispatch(cluster, wl("EP"),
                                   opts(GetParam(), 0.5, 500));
  const auto b = simulate_dispatch(cluster, wl("EP"),
                                   opts(GetParam(), 0.5, 500));
  EXPECT_DOUBLE_EQ(a.p95_response.value(), b.p95_response.value());
  EXPECT_DOUBLE_EQ(a.energy.value(), b.energy.value());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EveryPolicy,
                         ::testing::ValuesIn(all_dispatch_policies()),
                         [](const auto& inst) {
                           std::string n = to_string(inst.param);
                           for (auto& ch : n)
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           return n;
                         });

TEST(Dispatch, FastestFirstBeatsBlindPoliciesOnLatency) {
  // On a heterogeneous floor with EP (K10 ~6.7x faster per node),
  // completion-time-aware dispatch must beat round-robin on p95.
  const auto cluster = model::make_a9_k10_cluster(8, 2);
  const auto smart = simulate_dispatch(
      cluster, wl("EP"), opts(DispatchPolicy::kFastestFirst, 0.6, 3000));
  const auto blind = simulate_dispatch(
      cluster, wl("EP"), opts(DispatchPolicy::kRoundRobin, 0.6, 3000));
  EXPECT_LT(smart.p95_response.value(), blind.p95_response.value());
}

TEST(Dispatch, LeastEnergyPrefersTheEfficientType) {
  // For EP the A9 costs less dynamic energy per job; the least-energy
  // policy must route the bulk of the jobs there.
  const auto cluster = model::make_a9_k10_cluster(6, 2);
  const auto r = simulate_dispatch(
      cluster, wl("EP"), opts(DispatchPolicy::kLeastEnergy, 0.3, 2000));
  std::map<std::string, std::uint64_t> served;
  for (const auto& n : r.nodes) served[n.node_name] = n.jobs_served;
  EXPECT_GT(served.at("A9"), served.at("K10"));
}

TEST(Dispatch, LeastEnergyUsesLessDynamicEnergyThanFastestFirst) {
  const auto cluster = model::make_a9_k10_cluster(6, 2);
  const auto green = simulate_dispatch(
      cluster, wl("EP"), opts(DispatchPolicy::kLeastEnergy, 0.3, 2000));
  const auto fast = simulate_dispatch(
      cluster, wl("EP"), opts(DispatchPolicy::kFastestFirst, 0.3, 2000));
  // Same idle floor dominates total energy; compare per-job energy with
  // the makespan effect: green must not be more power-hungry on average.
  EXPECT_LE(green.average_power.value(), fast.average_power.value() * 1.05);
}

TEST(Dispatch, HigherUtilizationRaisesResponse) {
  const auto cluster = model::make_a9_k10_cluster(4, 1);
  const auto low = simulate_dispatch(
      cluster, wl("EP"), opts(DispatchPolicy::kJoinShortestQueue, 0.3, 2000));
  const auto high = simulate_dispatch(
      cluster, wl("EP"), opts(DispatchPolicy::kJoinShortestQueue, 0.85, 2000));
  EXPECT_GT(high.p95_response.value(), low.p95_response.value());
}

TEST(Dispatch, Validation) {
  const auto cluster = model::make_a9_k10_cluster(2, 1);
  DispatchOptions o;
  o.utilization = 1.0;
  EXPECT_THROW((void)simulate_dispatch(cluster, wl("EP"), o),
               PreconditionError);
  o.utilization = 0.5;
  o.jobs = 0;
  EXPECT_THROW((void)simulate_dispatch(cluster, wl("EP"), o),
               PreconditionError);
}

TEST(MixedDispatch, JobSharesFollowWeights) {
  const auto cluster = model::make_a9_k10_cluster(4, 2);
  std::vector<MixedStream> streams{{wl("EP"), 3.0}, {wl("blackscholes"), 1.0}};
  DispatchOptions o;
  o.policy = DispatchPolicy::kFastestFirst;
  o.utilization = 0.5;
  o.jobs = 4000;
  const auto r = simulate_mixed_dispatch(cluster, streams, o);
  ASSERT_EQ(r.per_program.size(), 2u);
  EXPECT_EQ(r.per_program[0].program, "EP");
  EXPECT_EQ(r.per_program[1].program, "blackscholes");
  const double share = static_cast<double>(r.per_program[0].jobs) /
                       static_cast<double>(o.jobs);
  EXPECT_NEAR(share, 0.75, 0.03);  // weight 3:1
  EXPECT_EQ(r.per_program[0].jobs + r.per_program[1].jobs, o.jobs);
}

TEST(MixedDispatch, PerProgramResponsesDiffer) {
  // blackscholes jobs (~3 s on an A9) dwarf EP jobs (~1.4 s on an A9);
  // their percentiles must separate.
  const auto cluster = model::make_a9_k10_cluster(4, 2);
  std::vector<MixedStream> streams{{wl("EP"), 1.0}, {wl("x264"), 1.0}};
  DispatchOptions o;
  o.policy = DispatchPolicy::kFastestFirst;
  o.utilization = 0.4;
  o.jobs = 2000;
  const auto r = simulate_mixed_dispatch(cluster, streams, o);
  EXPECT_GT(r.per_program[1].p95_response.value(),
            r.per_program[0].p95_response.value());
}

TEST(MixedDispatch, SingleStreamMatchesSimpleEntryPoint) {
  const auto cluster = model::make_a9_k10_cluster(3, 1);
  DispatchOptions o;
  o.policy = DispatchPolicy::kJoinShortestQueue;
  o.utilization = 0.5;
  o.jobs = 800;
  const auto simple = simulate_dispatch(cluster, wl("EP"), o);
  const auto mixed =
      simulate_mixed_dispatch(cluster, {MixedStream{wl("EP"), 1.0}}, o);
  EXPECT_DOUBLE_EQ(simple.p95_response.value(),
                   mixed.overall.p95_response.value());
  EXPECT_DOUBLE_EQ(simple.energy.value(), mixed.overall.energy.value());
}

TEST(MixedDispatch, Validation) {
  const auto cluster = model::make_a9_k10_cluster(2, 1);
  DispatchOptions o;
  EXPECT_THROW((void)simulate_mixed_dispatch(cluster, {}, o),
               PreconditionError);
  EXPECT_THROW((void)simulate_mixed_dispatch(
                   cluster, {MixedStream{wl("EP"), 0.0}}, o),
               PreconditionError);
}

TEST(Dispatch, RejectsWorkloadWithoutDemand) {
  workload::CatalogOptions copts;
  copts.nodes = {hw::cortex_a9()};
  const auto a9_only = workload::make_workload("EP", copts);
  const auto cluster = model::make_a9_k10_cluster(2, 1);
  EXPECT_THROW((void)simulate_dispatch(cluster, a9_only, {}),
               PreconditionError);
}

}  // namespace
