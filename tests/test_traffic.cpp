// hcep::traffic — request-level load generation, admission control and
// SLO accounting. The keystone check: with one node, one class and
// Poisson arrivals the simulator IS an M/D/1 queue, so its measured
// waiting/response statistics must match queueing::MD1's closed forms.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "hcep/obs/obs.hpp"
#include "hcep/obs/run_report.hpp"
#include "hcep/queueing/md1.hpp"
#include "hcep/traffic/admission.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::traffic;
using namespace hcep::literals;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

std::vector<TrafficClass> one_class(const std::string& name = "EP") {
  return {TrafficClass{wl(name), 1.0, SloTarget{}}};
}

// ---------------------------------------------------------------- keystone

class PoissonVsMD1 : public ::testing::TestWithParam<double> {};

TEST_P(PoissonVsMD1, MatchesClosedForms) {
  // Single K10 node, one class, no admission control: an M/D/1 queue.
  const double rho = GetParam();
  const auto cluster = model::make_a9_k10_cluster(0, 1);
  const auto classes = one_class();
  const double capacity = cluster_capacity_per_s(cluster, classes);
  const Seconds service{1.0 / capacity};
  const double lambda = rho * capacity;

  TrafficOptions options;
  options.requests = 200000;
  options.seed = 20160919;
  const auto r =
      simulate_traffic(cluster, classes, *make_poisson(lambda), options);
  ASSERT_EQ(r.completed, options.requests);

  const queueing::MD1 q(service, lambda);
  EXPECT_NEAR(r.wait.mean.value(), q.mean_wait().value(),
              0.1 * q.mean_wait().value() + 0.02 * service.value())
      << "rho=" << rho;
  EXPECT_NEAR(r.sojourn.p95.value(), q.response_percentile(95.0).value(),
              0.1 * q.response_percentile(95.0).value())
      << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(RhoSweep, PoissonVsMD1,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.8, 0.9),
                         [](const auto& inst) {
                           return "rho" + std::to_string(static_cast<int>(
                                              inst.param * 100.0));
                         });

// ------------------------------------------------------------- invariants

TEST(Traffic, SojournIsWaitPlusServiceWithoutAdmission) {
  const auto cluster = model::make_a9_k10_cluster(2, 1);
  TrafficOptions options;
  options.requests = 5000;
  const auto r = simulate_traffic(cluster, one_class(), *make_poisson(50.0),
                                  options);
  EXPECT_EQ(r.offered, 5000u);
  EXPECT_EQ(r.admitted, 5000u);
  EXPECT_EQ(r.completed, 5000u);
  EXPECT_EQ(r.shed_bucket + r.shed_queue, 0u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_NEAR(r.sojourn.mean.value(),
              r.wait.mean.value() + r.service.mean.value(), 1e-9);
  EXPECT_GT(r.energy.value(), 0.0);
  EXPECT_GT(r.energy_per_request.value(), 0.0);
  EXPECT_GT(r.average_power.value(), 0.0);
}

TEST(Traffic, SameSeedRunsAreByteIdentical) {
  const auto cluster = model::make_a9_k10_cluster(2, 1);
  TrafficOptions options;
  options.requests = 2000;
  options.seed = 7;
  const auto a = simulate_traffic(cluster, one_class(),
                                  *make_bursty(20.0, 5_s, 200.0, 1_s),
                                  options);
  const auto b = simulate_traffic(cluster, one_class(),
                                  *make_bursty(20.0, 5_s, 200.0, 1_s),
                                  options);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

TEST(Traffic, SameSeedRunReportsAreByteIdentical) {
  const auto cluster = model::make_a9_k10_cluster(1, 1);
  TrafficOptions options;
  options.requests = 1000;
  const auto report = [&]() {
    obs::Observer observer;
    obs::ScopedObserver scope(observer);
    const auto r = simulate_traffic(cluster, one_class(),
                                    *make_poisson(40.0), options);
    EXPECT_EQ(r.completed, 1000u);
    const auto trace = obs::Trace::from(observer.tracer);
    const auto snapshot = observer.metrics.snapshot();
    return obs::make_run_report(trace, "traffic", 1.0, &snapshot).json();
  };
  EXPECT_EQ(report(), report());
}

#if HCEP_OBS
TEST(Traffic, ObsCountersLedgerTheRun) {
  const auto cluster = model::make_a9_k10_cluster(1, 0);
  obs::Observer observer;
  obs::ScopedObserver scope(observer);
  TrafficOptions options;
  options.requests = 800;
  options.admission.bucket_rate_per_s = 5.0;
  options.admission.bucket_burst = 10.0;
  options.retry.max_attempts = 2;
  options.retry.base_backoff = Seconds{0.05};
  const auto r = simulate_traffic(cluster, one_class(),
                                  *make_poisson(50.0), options);
  const auto snap = observer.metrics.snapshot();
  EXPECT_EQ(snap.counter("traffic.offered"), r.offered);
  EXPECT_EQ(snap.counter("traffic.admitted"), r.admitted);
  EXPECT_EQ(snap.counter("traffic.shed"), r.shed_bucket + r.shed_queue);
  EXPECT_EQ(snap.counter("traffic.retries"), r.retries);
  EXPECT_EQ(snap.counter("traffic.completed"), r.completed);
  EXPECT_EQ(snap.counter("traffic.failed"), r.failed);
  const auto* h = snap.histogram("traffic.sojourn_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, r.completed);
}
#endif

// ------------------------------------------------------ admission control

TEST(TokenBucketTest, StartsFullAndRefillsAtRate) {
  TokenBucket bucket(10.0, 3.0);
  EXPECT_TRUE(bucket.try_acquire(Seconds{0.0}));
  EXPECT_TRUE(bucket.try_acquire(Seconds{0.0}));
  EXPECT_TRUE(bucket.try_acquire(Seconds{0.0}));
  EXPECT_FALSE(bucket.try_acquire(Seconds{0.0}));  // burst exhausted
  // 0.1 s at 10 tokens/s refills exactly one token.
  EXPECT_TRUE(bucket.try_acquire(Seconds{0.1}));
  EXPECT_FALSE(bucket.try_acquire(Seconds{0.1}));
  // Level is capped at burst no matter how long the idle gap.
  EXPECT_NEAR(bucket.level(Seconds{1000.0}), 3.0, 1e-12);
}

TEST(TokenBucketTest, RejectsBackwardsTimeAndBadParameters) {
  EXPECT_THROW(TokenBucket(0.0, 1.0), PreconditionError);
  EXPECT_THROW(TokenBucket(1.0, 0.0), PreconditionError);
  TokenBucket bucket(1.0, 1.0);
  EXPECT_TRUE(bucket.try_acquire(Seconds{5.0}));
  EXPECT_THROW((void)bucket.try_acquire(Seconds{4.0}), PreconditionError);
  EXPECT_THROW((void)bucket.try_acquire(Seconds{5.0}, 0.0),
               PreconditionError);
}

TEST(RetryPolicyTest, ExponentialBackoff) {
  RetryPolicy retry;
  retry.base_backoff = Seconds{0.1};
  retry.multiplier = 2.0;
  EXPECT_NEAR(retry.backoff_after(1).value(), 0.1, 1e-12);
  EXPECT_NEAR(retry.backoff_after(2).value(), 0.2, 1e-12);
  EXPECT_NEAR(retry.backoff_after(4).value(), 0.8, 1e-12);
  EXPECT_THROW((void)retry.backoff_after(0), PreconditionError);
}

TEST(Traffic, BucketShedsAndRetriesAreAccounted) {
  // Offered rate far above the bucket's sustained rate: the bucket must
  // shed, retries must re-enter, and every request must resolve.
  const auto cluster = model::make_a9_k10_cluster(0, 1);
  TrafficOptions options;
  options.requests = 2000;
  options.admission.bucket_rate_per_s = 10.0;
  options.admission.bucket_burst = 5.0;
  options.retry.max_attempts = 3;
  options.retry.base_backoff = Seconds{0.01};
  const auto r = simulate_traffic(cluster, one_class(),
                                  *make_poisson(100.0), options);
  EXPECT_GT(r.shed_bucket, 0u);
  EXPECT_GT(r.retries, 0u);
  EXPECT_GT(r.failed, 0u);
  EXPECT_EQ(r.completed + r.failed, r.offered);
  EXPECT_EQ(r.admitted, r.completed);
  // Sojourn of retried completions includes backoff: mean sojourn must be
  // at least mean wait + mean service.
  EXPECT_GE(r.sojourn.mean.value(),
            r.wait.mean.value() + r.service.mean.value() - 1e-9);
}

TEST(Traffic, QueueDepthSheddingBoundsTheWait) {
  // Overloaded single node with queue-depth shedding: no admitted request
  // can wait longer than the depth bound times the service time.
  const auto cluster = model::make_a9_k10_cluster(0, 1);
  const auto classes = one_class();
  const double capacity = cluster_capacity_per_s(cluster, classes);
  TrafficOptions options;
  options.requests = 3000;
  options.admission.max_queue_depth = 4;
  const auto r = simulate_traffic(cluster, classes,
                                  *make_deterministic(2.0 * capacity),
                                  options);
  EXPECT_GT(r.shed_queue, 0u);
  EXPECT_GT(r.failed, 0u);  // max_attempts defaults to 1: shed = failed
  EXPECT_EQ(r.shed_queue, r.failed);
  const double bound = 4.0 / capacity;
  EXPECT_LE(r.wait.max.value(), bound + 1e-9);
}

// --------------------------------------------------------- SLO accounting

TEST(Traffic, SloViolationsAreCounted) {
  const auto cluster = model::make_a9_k10_cluster(0, 1);
  auto classes = one_class();
  classes[0].slo = SloTarget{Seconds{1e-9}, 0.95};  // impossible SLO
  TrafficOptions options;
  options.requests = 500;
  const auto strict = simulate_traffic(cluster, classes,
                                       *make_poisson(10.0), options);
  ASSERT_EQ(strict.classes.size(), 1u);
  EXPECT_EQ(strict.classes[0].slo_violations, strict.completed);
  EXPECT_DOUBLE_EQ(strict.classes[0].violation_fraction(), 1.0);
  EXPECT_FALSE(strict.classes[0].slo_met());

  classes[0].slo = SloTarget{Seconds{1e9}, 0.95};  // trivially met
  const auto loose = simulate_traffic(cluster, classes,
                                      *make_poisson(10.0), options);
  EXPECT_EQ(loose.classes[0].slo_violations, 0u);
  EXPECT_TRUE(loose.classes[0].slo_met());
}

TEST(Traffic, MultiClassWeightsSplitTheStream) {
  const auto cluster = model::make_a9_k10_cluster(4, 2);
  std::vector<TrafficClass> classes = {
      TrafficClass{wl("EP"), 3.0, SloTarget{}},
      TrafficClass{wl("memcached"), 1.0, SloTarget{}},
  };
  TrafficOptions options;
  options.requests = 8000;
  const auto r = simulate_traffic(cluster, classes, *make_poisson(100.0),
                                  options);
  ASSERT_EQ(r.classes.size(), 2u);
  EXPECT_EQ(r.classes[0].offered + r.classes[1].offered, r.offered);
  EXPECT_EQ(r.classes[0].completed + r.classes[1].completed, r.completed);
  const double share = static_cast<double>(r.classes[0].offered) /
                       static_cast<double>(r.offered);
  EXPECT_NEAR(share, 0.75, 0.03);
  for (const auto& c : r.classes)
    EXPECT_GT(c.energy_per_request.value(), 0.0);
}

// ------------------------------------------------------------ replay I/O

TEST(Traffic, ReplayTraceDrivesTheRunAndExhausts) {
  const auto cluster = model::make_a9_k10_cluster(0, 1);
  const auto arrivals = make_replay(
      {Seconds{0.5}, Seconds{1.0}, Seconds{1.5}}, /*loop=*/false);
  TrafficOptions options;
  options.requests = 10;  // more than the trace holds
  const auto r = simulate_traffic(cluster, one_class(), *arrivals, options);
  EXPECT_EQ(r.offered, 3u);
  EXPECT_EQ(r.completed, 3u);
}

TEST(Traffic, CsvAndJsonlParsersRoundTrip) {
  const auto csv = read_arrivals_csv("ts,node\n0.25,a\n0.75,b\n2,c\n");
  ASSERT_EQ(csv.size(), 3u);
  EXPECT_DOUBLE_EQ(csv[1].value(), 0.75);
  const auto jsonl = read_arrivals_jsonl(
      "{\"ts\":0.25}\n{\"ts\":0.75,\"node\":\"b\"}\n");
  ASSERT_EQ(jsonl.size(), 2u);
  EXPECT_DOUBLE_EQ(jsonl[1].value(), 0.75);
  EXPECT_THROW((void)read_arrivals_csv("ts\n0.5\nnot-a-number\n"),
               PreconditionError);
  EXPECT_THROW((void)read_arrivals_jsonl("{\"no_ts\":1}\n"),
               PreconditionError);
  EXPECT_THROW((void)read_arrivals_csv("ts\n2.0\n1.0\n"),
               PreconditionError);  // must be sorted
}

// ----------------------------------------------------------- other shapes

TEST(Traffic, BurstyAndDiurnalGeneratorsCompleteTheirLoad) {
  const auto cluster = model::make_a9_k10_cluster(2, 1);
  TrafficOptions options;
  options.requests = 3000;
  std::vector<std::unique_ptr<ArrivalProcess>> generators;
  generators.push_back(make_bursty(30.0, 2_s, 300.0, 0.2_s));
  generators.push_back(make_diurnal(60.0, 0.5, Seconds{20.0}));
  for (const auto& gen : generators) {
    const auto r = simulate_traffic(cluster, one_class(), *gen, options);
    EXPECT_EQ(r.completed, options.requests) << gen->name();
    EXPECT_GT(r.makespan.value(), 0.0) << gen->name();
  }
}

TEST(Traffic, CapacityFollowsClusterSize) {
  const auto one = model::make_a9_k10_cluster(0, 1);
  const auto two = model::make_a9_k10_cluster(0, 2);
  const auto classes = one_class();
  const double c1 = cluster_capacity_per_s(one, classes);
  const double c2 = cluster_capacity_per_s(two, classes);
  EXPECT_GT(c1, 0.0);
  EXPECT_NEAR(c2, 2.0 * c1, 1e-9 * c1);
}

// -------------------------------------------------------------- sharding

TEST(TrafficSharded, RepeatedRunsAreByteIdentical) {
  // Fixed (seed, shards): the serialized result must be byte-identical
  // across repeated runs AND across serial/parallel shard execution —
  // the determinism contract of des::ShardedSimulator's window barrier.
  const auto cluster = model::make_a9_k10_cluster(4, 2);
  TrafficOptions options;
  options.requests = 20000;
  options.seed = 7;
  options.shards = 3;
  const auto first =
      simulate_traffic(cluster, one_class(), *make_poisson(800.0), options);
  const auto again =
      simulate_traffic(cluster, one_class(), *make_poisson(800.0), options);
  options.parallel_shards = false;
  const auto serial =
      simulate_traffic(cluster, one_class(), *make_poisson(800.0), options);
  EXPECT_EQ(first.to_json().dump(), again.to_json().dump());
  EXPECT_EQ(first.to_json().dump(), serial.to_json().dump());
  EXPECT_EQ(first.shards, 3u);
}

TEST(TrafficSharded, ShardedRunConservesRequests) {
  const auto cluster = model::make_a9_k10_cluster(4, 4);
  TrafficOptions options;
  options.requests = 30000;
  options.shards = 4;
  const auto r =
      simulate_traffic(cluster, one_class(), *make_poisson(1000.0), options);
  EXPECT_EQ(r.offered, options.requests);
  EXPECT_EQ(r.completed + r.failed, options.requests);
  EXPECT_EQ(r.completed, options.requests);  // no admission control
  EXPECT_GT(r.energy.value(), 0.0);
  std::uint64_t node_completed = 0;
  for (const auto& n : r.nodes) node_completed += n.jobs_served;
  EXPECT_EQ(node_completed, r.completed);
}

TEST(TrafficSharded, SingleShardOptionMatchesDefaultPath) {
  // shards = 1 must take the classic single-loop path: byte-identical to
  // an options struct that never mentions sharding.
  const auto cluster = model::make_a9_k10_cluster(2, 1);
  TrafficOptions classic;
  classic.requests = 10000;
  classic.seed = 11;
  TrafficOptions explicit_one = classic;
  explicit_one.shards = 1;
  explicit_one.parallel_shards = false;
  const auto a =
      simulate_traffic(cluster, one_class(), *make_poisson(400.0), classic);
  const auto b = simulate_traffic(cluster, one_class(), *make_poisson(400.0),
                                  explicit_one);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

TEST(Traffic, Validation) {
  const auto cluster = model::make_a9_k10_cluster(1, 1);
  TrafficOptions options;
  EXPECT_THROW((void)simulate_traffic(cluster, {}, *make_poisson(1.0),
                                      options),
               PreconditionError);
  auto zero_weight = one_class();
  zero_weight[0].weight = 0.0;
  EXPECT_THROW((void)simulate_traffic(cluster, zero_weight,
                                      *make_poisson(1.0), options),
               PreconditionError);
  options.requests = 0;
  EXPECT_THROW((void)simulate_traffic(cluster, one_class(),
                                      *make_poisson(1.0), options),
               PreconditionError);
  EXPECT_THROW((void)make_poisson(0.0), PreconditionError);
  EXPECT_THROW((void)make_diurnal(10.0, 1.5, Seconds{60.0}),
               PreconditionError);
  EXPECT_THROW((void)make_replay({}), PreconditionError);
}

}  // namespace
