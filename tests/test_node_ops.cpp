// Single-node per-unit primitives: the Table 2 single-node rows.
#include <gtest/gtest.h>

#include "hcep/hw/catalog.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/node_ops.hpp"

namespace {

using namespace hcep;
using namespace hcep::workload;
using namespace hcep::literals;

NodeDemand core_bound() {
  return NodeDemand{.cycles_core = 1.4e9, .cycles_mem = 1e6,
                    .io_bytes = Bytes{0.0}};
}

NodeDemand mem_bound() {
  return NodeDemand{.cycles_core = 1e6, .cycles_mem = 1.4e9,
                    .io_bytes = Bytes{0.0}};
}

NodeDemand io_bound() {
  return NodeDemand{.cycles_core = 1e3, .cycles_mem = 1e3,
                    .io_bytes = Bytes{12.5e6}};  // 1 s at A9's 100 Mbps
}

TEST(UnitTime, CoreBoundScalesWithFrequencyAndCores) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  const UnitTime one = unit_time(core_bound(), a9, 1, 1.4_GHz);
  EXPECT_NEAR(one.core.value(), 1.0, 1e-9);
  EXPECT_NEAR(one.total.value(), 1.0, 1e-9);

  const UnitTime four = unit_time(core_bound(), a9, 4, 1.4_GHz);
  EXPECT_NEAR(four.core.value(), 0.25, 1e-9);  // ideal core scaling

  const UnitTime slow = unit_time(core_bound(), a9, 1, 0.7_GHz);
  EXPECT_NEAR(slow.core.value(), 2.0, 1e-9);  // T = cycles / f
}

TEST(UnitTime, CpuIsMaxOfCoreAndMem) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  const UnitTime t = unit_time(mem_bound(), a9, 1, 1.4_GHz);
  EXPECT_DOUBLE_EQ(t.cpu.value(), t.mem.value());
  EXPECT_GT(t.mem, t.core);
}

TEST(UnitTime, MemTimeScalesSubLinearlyWithCores) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  const UnitTime one = unit_time(mem_bound(), a9, 1, 1.4_GHz);
  const UnitTime four = unit_time(mem_bound(), a9, 4, 1.4_GHz);
  EXPECT_LT(four.mem, one.mem);                        // some scaling
  EXPECT_GT(four.mem.value(), one.mem.value() / 4.0);  // but not ideal
}

TEST(UnitTime, IoOverlapsWithCpu) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  const UnitTime t = unit_time(io_bound(), a9, 4, 1.4_GHz);
  EXPECT_NEAR(t.io.value(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(t.total.value(), t.io.value());  // DMA fully overlapped
}

TEST(UnitTime, Validation) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  EXPECT_THROW((void)unit_time(core_bound(), a9, 0, 1.4_GHz),
               PreconditionError);
  EXPECT_THROW((void)unit_time(core_bound(), a9, 5, 1.4_GHz),
               PreconditionError);
  EXPECT_THROW((void)unit_time(core_bound(), a9, 1, Hertz{0.0}),
               PreconditionError);
}

TEST(UnitThroughput, InverseOfUnitTime) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  const double thr = unit_throughput(core_bound(), a9, 4, 1.4_GHz);
  const Seconds t = unit_time(core_bound(), a9, 4, 1.4_GHz).total;
  EXPECT_NEAR(thr * t.value(), 1.0, 1e-12);
}

TEST(BusyPower, AboveIdleBelowComponentSum) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  const Watts p = busy_power(core_bound(), a9, 4, 1.4_GHz);
  EXPECT_GT(p, a9.power.idle);
  const Watts ceiling = a9.power.idle + a9.power.core_active * 4.0 +
                        a9.power.core_stalled * 4.0 + a9.power.mem_active +
                        a9.power.net_active;
  EXPECT_LT(p, ceiling);
}

TEST(BusyPower, PowerScaleIsLinearInDynamicPart) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  const Watts p1 = busy_power(core_bound(), a9, 4, 1.4_GHz, 1.0);
  const Watts p2 = busy_power(core_bound(), a9, 4, 1.4_GHz, 2.0);
  EXPECT_NEAR((p2 - a9.power.idle).value(),
              2.0 * (p1 - a9.power.idle).value(), 1e-9);
}

TEST(BusyPower, LowerFrequencyDrawsLessPower) {
  const hw::NodeSpec k10 = hw::opteron_k10();
  const Watts fast = busy_power(core_bound(), k10, 6, 2.1_GHz);
  const Watts slow = busy_power(core_bound(), k10, 6, 0.8_GHz);
  EXPECT_LT(slow, fast);
  EXPECT_GT(slow, k10.power.idle);
}

TEST(BusyPower, MemBoundChargesStallPower) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  // Memory-bound: cores stall most of the time, so busy power sits well
  // below the core-active ceiling but above idle + mem alone.
  const Watts p = busy_power(mem_bound(), a9, 1, 1.4_GHz);
  EXPECT_GT(p, a9.power.idle + a9.power.mem_active * 0.9);
  EXPECT_LT(p, a9.power.idle + a9.power.core_active +
                   a9.power.mem_active + Watts{0.5});
}

TEST(UnitEnergy, EqualsBusyPowerTimesUnitTime) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  const Joules e = unit_energy(core_bound(), a9, 2, 1.1_GHz, 1.3);
  const Watts p = busy_power(core_bound(), a9, 2, 1.1_GHz, 1.3);
  const Seconds t = unit_time(core_bound(), a9, 2, 1.1_GHz).total;
  EXPECT_NEAR(e.value(), (p * t).value(), 1e-12);
}

class FrequencySweep : public ::testing::TestWithParam<double> {};

TEST_P(FrequencySweep, EnergyTimeTradeoffIsConsistent) {
  // Property: at any frequency, throughput x unit energy == busy power.
  const hw::NodeSpec a9 = hw::cortex_a9();
  const Hertz f{GetParam()};
  const double thr = unit_throughput(core_bound(), a9, 4, f);
  const Joules e = unit_energy(core_bound(), a9, 4, f);
  const Watts p = busy_power(core_bound(), a9, 4, f);
  EXPECT_NEAR(thr * e.value(), p.value(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(A9Ladder, FrequencySweep,
                         ::testing::Values(0.2e9, 0.5e9, 0.8e9, 1.1e9, 1.4e9));

}  // namespace
