// Power curves, traces and the Yokogawa-style meter emulation.
#include <gtest/gtest.h>

#include "hcep/power/curve.hpp"
#include "hcep/power/meter.hpp"
#include "hcep/util/error.hpp"

namespace {

using namespace hcep;
using namespace hcep::power;
using namespace hcep::literals;

TEST(PowerCurve, LinearEndpointsAndMidpoint) {
  const PowerCurve c = PowerCurve::linear(40_W, 100_W);
  EXPECT_DOUBLE_EQ(c.idle().value(), 40.0);
  EXPECT_DOUBLE_EQ(c.peak().value(), 100.0);
  EXPECT_DOUBLE_EQ(c.at(0.5).value(), 70.0);
}

TEST(PowerCurve, AtClampsUtilization) {
  const PowerCurve c = PowerCurve::linear(40_W, 100_W);
  EXPECT_DOUBLE_EQ(c.at(-0.5).value(), 40.0);
  EXPECT_DOUBLE_EQ(c.at(1.5).value(), 100.0);
}

TEST(PowerCurve, LinearArea) {
  const PowerCurve c = PowerCurve::linear(40_W, 100_W);
  EXPECT_NEAR(c.area(), 70.0, 1e-9);  // average of endpoints
}

TEST(PowerCurve, QuadraticBowsBelowSecantForPositiveA) {
  const PowerCurve lin = PowerCurve::linear(40_W, 100_W);
  const PowerCurve quad = PowerCurve::quadratic(40_W, 100_W, 0.5);
  EXPECT_DOUBLE_EQ(quad.idle().value(), 40.0);
  EXPECT_DOUBLE_EQ(quad.peak().value(), 100.0);
  EXPECT_LT(quad.at(0.5).value(), lin.at(0.5).value());
  EXPECT_LT(quad.area(), lin.area());
}

TEST(PowerCurve, QuadraticBowsAboveSecantForNegativeA) {
  const PowerCurve lin = PowerCurve::linear(40_W, 100_W);
  const PowerCurve quad = PowerCurve::quadratic(40_W, 100_W, -0.5);
  EXPECT_GT(quad.at(0.5).value(), lin.at(0.5).value());
}

TEST(PowerCurve, SumIsPointwise) {
  const PowerCurve a = PowerCurve::linear(10_W, 20_W);
  const PowerCurve b = PowerCurve::linear(5_W, 45_W);
  const PowerCurve s = a + b;
  EXPECT_DOUBLE_EQ(s.idle().value(), 15.0);
  EXPECT_DOUBLE_EQ(s.peak().value(), 65.0);
  EXPECT_DOUBLE_EQ(s.at(0.5).value(), 15.0 + 25.0);
}

TEST(PowerCurve, ScaledByNodeCount) {
  const PowerCurve one = PowerCurve::linear(1.8_W, 5_W);
  const PowerCurve many = one.scaled(128.0);
  EXPECT_DOUBLE_EQ(many.idle().value(), 1.8 * 128.0);
  EXPECT_DOUBLE_EQ(many.peak().value(), 5.0 * 128.0);
  EXPECT_THROW((void)one.scaled(-1.0), PreconditionError);
}

TEST(PowerCurve, SampledFromMeasurements) {
  PiecewiseLinear samples({0.0, 0.5, 1.0}, {50.0, 90.0, 100.0});
  const PowerCurve c = PowerCurve::sampled(std::move(samples));
  EXPECT_DOUBLE_EQ(c.at(0.25).value(), 70.0);
}

TEST(PowerCurve, Validation) {
  EXPECT_THROW((void)PowerCurve::linear(10_W, 5_W), PreconditionError);
  EXPECT_THROW((void)PowerCurve::quadratic(1_W, 2_W, 1.5), PreconditionError);
  PiecewiseLinear partial({0.2, 0.9}, {1.0, 2.0});
  EXPECT_THROW((void)PowerCurve::sampled(std::move(partial)),
               PreconditionError);
}

TEST(PowerTrace, ExactEnergyOfSteps) {
  PowerTrace t;
  t.step(0_s, 10_W);
  t.step(2_s, 20_W);
  t.step(5_s, 0_W);
  EXPECT_DOUBLE_EQ(t.energy(5_s).value(), 10.0 * 2 + 20.0 * 3);
  EXPECT_DOUBLE_EQ(t.energy(10_s).value(), 80.0);  // trailing zero level
  EXPECT_DOUBLE_EQ(t.energy(1_s).value(), 10.0);   // clipped window
  EXPECT_DOUBLE_EQ(t.average(4_s).value(), (20.0 + 40.0) / 4.0);
}

TEST(PowerTrace, AtReturnsCurrentLevel) {
  PowerTrace t;
  t.step(1_s, 5_W);
  t.step(3_s, 7_W);
  EXPECT_DOUBLE_EQ(t.at(0.5_s).value(), 0.0);  // before first step
  EXPECT_DOUBLE_EQ(t.at(1_s).value(), 5.0);
  EXPECT_DOUBLE_EQ(t.at(2.9_s).value(), 5.0);
  EXPECT_DOUBLE_EQ(t.at(3_s).value(), 7.0);
  EXPECT_DOUBLE_EQ(t.at(100_s).value(), 7.0);
}

TEST(PowerTrace, SameInstantUpdateWins) {
  PowerTrace t;
  t.step(0_s, 5_W);
  t.step(0_s, 9_W);
  EXPECT_DOUBLE_EQ(t.at(0_s).value(), 9.0);
  EXPECT_EQ(t.steps().size(), 1u);
}

TEST(PowerTrace, RejectsDecreasingStarts) {
  PowerTrace t;
  t.step(2_s, 5_W);
  EXPECT_THROW(t.step(1_s, 1_W), PreconditionError);
}

TEST(PowerMeter, AccurateOnConstantLoad) {
  PowerTrace t;
  t.step(0_s, 100_W);
  PowerMeter meter({}, 42);
  const Joules measured = meter.measure_energy(t, 100_s);
  EXPECT_NEAR(measured.value(), 100.0 * 100.0, 100.0 * 100.0 * 0.005);
}

TEST(PowerMeter, CapturesStepChanges) {
  PowerTrace t;
  t.step(0_s, 50_W);
  t.step(50_s, 150_W);
  PowerMeter meter({}, 43);
  const Joules measured = meter.measure_energy(t, 100_s);
  EXPECT_NEAR(measured.value(), 50.0 * 50 + 150.0 * 50, 10000.0 * 0.01);
}

TEST(PowerMeter, NoiseFreeSpecIsExactForAlignedSteps) {
  MeterSpec spec;
  spec.gain_error = 0.0;
  spec.noise_floor = Watts{0.0};
  spec.quantization = Watts{0.0};
  spec.sample_rate = Hertz{10.0};
  PowerTrace t;
  t.step(0_s, 80_W);
  PowerMeter meter(spec, 44);
  EXPECT_NEAR(meter.measure_energy(t, 10_s).value(), 800.0, 1e-9);
}

TEST(PowerMeter, MeasureAverage) {
  PowerTrace t;
  t.step(0_s, 60_W);
  PowerMeter meter({}, 45);
  EXPECT_NEAR(meter.measure_average(t, 20_s).value(), 60.0, 1.0);
}

TEST(PowerMeter, Validation) {
  MeterSpec spec;
  spec.sample_rate = Hertz{0.0};
  EXPECT_THROW(PowerMeter{spec}, PreconditionError);
  PowerMeter ok({}, 1);
  PowerTrace t;
  t.step(0_s, 1_W);
  EXPECT_THROW((void)ok.measure_energy(t, 0_s), PreconditionError);
}

}  // namespace
