// The PaperStudy facade: consistency between the one-stop entry points and
// the underlying studies.
#include <gtest/gtest.h>

#include "hcep/core/paper_study.hpp"
#include "hcep/util/error.hpp"

namespace {

using namespace hcep;

const core::PaperStudy& study() {
  static const core::PaperStudy kStudy;
  return kStudy;
}

TEST(PaperStudy, CarriesAllSixWorkloads) {
  ASSERT_EQ(study().workloads().size(), 6u);
  EXPECT_EQ(study().workload("EP").name, "EP");
  EXPECT_EQ(study().workload("RSA-2048").work_unit, "verify");
  EXPECT_THROW((void)study().workload("doom"), PreconditionError);
}

TEST(PaperStudy, Table4HasOneRowPerProgram) {
  const auto rows = study().table4();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].program, "EP");
  EXPECT_EQ(rows[0].domain, "HPC");
}

TEST(PaperStudy, SingleNodeAnalysesCoverTwelvePairs) {
  const auto analyses = study().single_node_analyses();
  ASSERT_EQ(analyses.size(), 12u);
  // Program-major, A9 then K10.
  EXPECT_EQ(analyses[0].program, "EP");
  EXPECT_EQ(analyses[0].node, "A9");
  EXPECT_EQ(analyses[1].node, "K10");
  EXPECT_EQ(analyses[10].program, "RSA-2048");
}

TEST(PaperStudy, BudgetMixAnalysesReturnFiveMixes) {
  const auto mixes = study().budget_mix_analyses("EP");
  ASSERT_EQ(mixes.size(), 5u);
  EXPECT_EQ(mixes[0].label, "16K10");
  EXPECT_EQ(mixes[4].label, "128A9");
}

TEST(PaperStudy, ParetoStudySkipsFrontierWhenAsked) {
  const auto r = study().pareto_study("EP", /*compute_frontier=*/false);
  EXPECT_TRUE(r.frontier.empty());
  EXPECT_EQ(r.mixes.size(), 5u);
  EXPECT_GT(r.reference_peak.value(), 0.0);
}

TEST(PaperStudy, ResponseStudyUsesWorkloadDefaults) {
  const auto r = study().response_study("x264");
  EXPECT_NEAR(r.deadline.value(),
              analysis::default_deadline("x264").value(), 1e-12);
  ASSERT_EQ(r.mixes.size(), 5u);
  ASSERT_FALSE(r.mixes[0].points.empty());
  // DES cross-check disabled by default: simulated percentile left zero.
  EXPECT_DOUBLE_EQ(r.mixes[0].points[0].p95_simulated.value(), 0.0);
}

TEST(PaperStudy, CustomCatalogOptionsPropagate) {
  workload::CatalogOptions opts;
  opts.calibrate = false;
  const core::PaperStudy uncalibrated(opts);
  for (const auto& w : uncalibrated.workloads())
    EXPECT_TRUE(w.power_cal.empty()) << w.name;
}

}  // namespace
