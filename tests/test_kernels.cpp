// Workload kernels: the computations are real — verify them against
// reference values — and the instrumentation is consistent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>

#include "hcep/kernels/blackscholes.hpp"
#include "hcep/kernels/ep.hpp"
#include "hcep/kernels/julius.hpp"
#include "hcep/kernels/kvstore.hpp"
#include "hcep/kernels/registry.hpp"
#include "hcep/kernels/rsa.hpp"
#include "hcep/kernels/x264.hpp"
#include "hcep/util/error.hpp"

namespace {

using namespace hcep;
using namespace hcep::kernels;

// ---------------------------------------------------------------- generic

class EveryKernel : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryKernel, DeterministicForFixedSeed) {
  auto k1 = make_kernel(GetParam());
  auto k2 = make_kernel(GetParam());
  Rng r1(99), r2(99);
  const auto units = GetParam() == "RSA-2048" ? 2ULL
                     : GetParam() == "x264"   ? 2ULL
                                              : 2000ULL;
  const KernelResult a = k1->run(units, r1);
  const KernelResult b = k2->run(units, r2);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.counts.int_ops, b.counts.int_ops);
  EXPECT_EQ(a.counts.fp_ops, b.counts.fp_ops);
  EXPECT_EQ(a.counts.work_units, b.counts.work_units);
}

TEST_P(EveryKernel, ReportsWork) {
  auto k = make_kernel(GetParam());
  Rng rng(5);
  const auto units = GetParam() == "RSA-2048" ? 2ULL
                     : GetParam() == "x264"   ? 2ULL
                                              : 1000ULL;
  const KernelResult r = k->run(units, rng);
  EXPECT_GE(r.counts.work_units, units);
  EXPECT_GT(r.counts.int_ops + r.counts.fp_ops + r.counts.crypto_ops, 0u);
  EXPECT_FALSE(k->work_unit().empty());
  EXPECT_EQ(k->name(), GetParam());
}

TEST_P(EveryKernel, CountsScaleRoughlyLinearly) {
  auto k = make_kernel(GetParam());
  Rng r1(5), r2(5);
  const std::uint64_t base = GetParam() == "RSA-2048" ? 3ULL
                             : GetParam() == "x264"   ? 2ULL
                                                      : 2000ULL;
  const auto small = k->run(base, r1);
  const auto large = k->run(base * 3, r2);
  const double ratio =
      (static_cast<double>(large.counts.int_ops) +
       static_cast<double>(large.counts.fp_ops) +
       static_cast<double>(large.counts.crypto_ops)) /
      (static_cast<double>(small.counts.int_ops) +
       static_cast<double>(small.counts.fp_ops) +
       static_cast<double>(small.counts.crypto_ops));
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, EveryKernel,
                         ::testing::ValuesIn(kernel_names()),
                         [](const auto& inst) {
                           std::string n = inst.param;
                           for (auto& ch : n)
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           return n;
                         });

TEST(Registry, SixProgramsInPaperOrder) {
  const auto names = kernel_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "EP");
  EXPECT_EQ(names[1], "memcached");
  EXPECT_EQ(names[2], "x264");
  EXPECT_EQ(names[3], "blackscholes");
  EXPECT_EQ(names[4], "Julius");
  EXPECT_EQ(names[5], "RSA-2048");
}

TEST(Registry, UnknownProgramThrows) {
  EXPECT_THROW((void)make_kernel("doom"), PreconditionError);
}

TEST(OpCounts, AccumulateAndPerUnit) {
  OpCounts a{.int_ops = 10, .fp_ops = 20, .branch_ops = 2, .crypto_ops = 0,
             .mem_traffic = Bytes{100.0}, .io_bytes = Bytes{8.0},
             .work_units = 2};
  OpCounts b = a;
  b += a;
  EXPECT_EQ(b.int_ops, 20u);
  EXPECT_EQ(b.work_units, 4u);
  const OpCounts per = b.per_unit();
  EXPECT_EQ(per.int_ops, 5u);
  EXPECT_EQ(per.work_units, 1u);
  EXPECT_DOUBLE_EQ(per.mem_traffic.value(), 50.0);
  OpCounts empty;
  EXPECT_THROW((void)empty.per_unit(), PreconditionError);
}

// --------------------------------------------------------------------- EP

TEST(EpKernel, TalliesTrackAcceptedGaussians) {
  EpKernel ep;
  Rng rng(1);
  const auto r = ep.run(100000, rng);
  std::uint64_t tallied = 0;
  for (auto t : ep.tallies()) tallied += t;
  EXPECT_GT(tallied, 0u);
  // Acceptance rate of the polar method is pi/4 ~ 0.785; each accepted
  // pair contributes one tally.
  EXPECT_NEAR(static_cast<double>(tallied) / 50000.0, 0.785, 0.05);
  // Gaussians concentrate in the first annuli.
  EXPECT_GT(ep.tallies()[0], ep.tallies()[2]);
  EXPECT_EQ(r.counts.io_bytes.value(), 0.0);
}

// ----------------------------------------------------------- blackscholes

TEST(BlackScholes, MatchesReferencePrice) {
  // Standard textbook case: S=100, K=100, r=5 %, sigma=20 %, T=1y.
  const double call =
      BlackScholesKernel::price(100.0, 100.0, 0.05, 0.2, 1.0, true);
  const double put =
      BlackScholesKernel::price(100.0, 100.0, 0.05, 0.2, 1.0, false);
  EXPECT_NEAR(call, 10.4506, 1e-3);
  EXPECT_NEAR(put, 5.5735, 1e-3);
}

TEST(BlackScholes, PutCallParity) {
  const double s = 120.0, k = 95.0, r = 0.03, v = 0.35, t = 0.7;
  const double call = BlackScholesKernel::price(s, k, r, v, t, true);
  const double put = BlackScholesKernel::price(s, k, r, v, t, false);
  EXPECT_NEAR(call - put, s - k * std::exp(-r * t), 1e-6);
}

TEST(BlackScholes, DeepInTheMoneyCallNearIntrinsic) {
  const double call =
      BlackScholesKernel::price(200.0, 50.0, 0.01, 0.1, 0.1, true);
  EXPECT_NEAR(call, 200.0 - 50.0 * std::exp(-0.001), 0.01);
}

// -------------------------------------------------------------------- RSA

TEST(Rsa, MulModMatchesNativeForSmallModulus) {
  // Single-limb modulus: cross-check against __int128 arithmetic.
  const std::uint64_t n = 0x0000000100000001ULL | 1ULL;  // odd
  UInt2048 modulus(n);
  ModContext ctx(modulus);
  const std::uint64_t a = 0x123456789ULL % n;
  const std::uint64_t b = 0xfedcba987ULL % n;
  const UInt2048 r = ctx.mul_mod(UInt2048(a), UInt2048(b));
  __extension__ using u128 = unsigned __int128;
  const std::uint64_t expected =
      static_cast<std::uint64_t>((static_cast<u128>(a) * b) % n);
  EXPECT_EQ(r.limb(0), expected);
  for (std::size_t i = 1; i < UInt2048::kLimbs; ++i) EXPECT_EQ(r.limb(i), 0u);
}

TEST(Rsa, PowF4MatchesNativeForSmallModulus) {
  const std::uint64_t n = 1000003ULL;  // odd prime-ish small modulus
  UInt2048 modulus(n);
  ModContext ctx(modulus);
  const std::uint64_t a = 123456ULL;
  const UInt2048 r = ctx.pow_f4(UInt2048(a));
  // Native square-and-multiply of a^65537 mod n.
  __extension__ using u128 = unsigned __int128;
  std::uint64_t acc = a % n;
  for (int i = 0; i < 16; ++i)
    acc = static_cast<std::uint64_t>((static_cast<u128>(acc) * acc) % n);
  acc = static_cast<std::uint64_t>((static_cast<u128>(acc) * (a % n)) % n);
  EXPECT_EQ(r.limb(0), acc);
}

TEST(Rsa, ResultAlwaysBelowModulus) {
  Rng rng(77);
  UInt2048 modulus;
  SplitMix64 sm(123);
  for (std::size_t i = 0; i < UInt2048::kLimbs; ++i)
    modulus.set_limb(i, sm.next());
  modulus.set_limb(UInt2048::kLimbs - 1,
                   modulus.limb(UInt2048::kLimbs - 1) | (1ULL << 63));
  modulus.set_limb(0, modulus.limb(0) | 1ULL);
  ModContext ctx(modulus);
  for (int trial = 0; trial < 3; ++trial) {
    const UInt2048 a = UInt2048::random_below(modulus, rng);
    const UInt2048 b = UInt2048::random_below(modulus, rng);
    const UInt2048 r = ctx.mul_mod(a, b);
    EXPECT_TRUE(r < modulus);
  }
}

TEST(Rsa, BitLengthAndComparison) {
  UInt2048 x(0x10ULL);
  EXPECT_EQ(x.bit_length(), 5u);
  EXPECT_EQ(x.bit(4), 1);
  EXPECT_EQ(x.bit(3), 0);
  UInt2048 y(0x11ULL);
  EXPECT_TRUE(x < y);
  EXPECT_FALSE(y < x);
  EXPECT_FALSE(UInt2048().bit_length());
  EXPECT_TRUE(UInt2048().is_zero());
}

TEST(Rsa, SubtractionWithBorrow) {
  UInt2048 a;
  a.set_limb(1, 1);  // 2^64
  UInt2048 b(1ULL);
  a.sub(b);  // 2^64 - 1
  EXPECT_EQ(a.limb(0), ~0ULL);
  EXPECT_EQ(a.limb(1), 0u);
}

TEST(Rsa, ModContextRejectsBadModulus) {
  EXPECT_THROW(ModContext{UInt2048{}}, PreconditionError);
  EXPECT_THROW(ModContext{UInt2048{4ULL}}, PreconditionError);  // even
}

TEST(Rsa, CountsCryptoOps) {
  RsaKernel k;
  Rng rng(3);
  const auto r = k.run(1, rng);
  // 17 modular multiplications of 32x32 limbs each; a random operand has
  // no zero limbs (probability ~2^-64 per limb), so the count is exact.
  EXPECT_EQ(r.counts.crypto_ops, 17u * 32u * 32u);
  Rng rng2(3);
  const auto r3 = RsaKernel().run(3, rng2);
  EXPECT_EQ(r3.counts.crypto_ops, 3u * 17u * 32u * 32u);
}

TEST(BlackScholesKernel, ExactPerUnitInstrumentation) {
  BlackScholesKernel k;
  Rng rng(5);
  const auto r = k.run(1000, rng);
  // The kernel charges a fixed op budget per pricing.
  EXPECT_EQ(r.counts.fp_ops, 1000u * 58u);
  EXPECT_EQ(r.counts.int_ops, 1000u * 4u);
  EXPECT_DOUBLE_EQ(r.counts.mem_traffic.value(), 1000.0 * 36.0);
}

TEST(X264, Sad16FindsAKnownShift) {
  // Build a 64x64 textured frame and a copy shifted by (+3, -2); the SAD
  // landscape over candidate offsets must bottom out at that shift.
  constexpr int W = 64, H = 64;
  std::uint8_t ref[W * H], cur[W * H];
  Rng rng(9);
  for (int i = 0; i < W * H; ++i)
    ref[i] = static_cast<std::uint8_t>(rng.uniform_int(256));
  const int dx = 3, dy = -2;
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      const int sx = std::clamp(x + dx, 0, W - 1);
      const int sy = std::clamp(y + dy, 0, H - 1);
      cur[y * W + x] = ref[sy * W + sx];
    }
  }
  // Search the central macroblock.
  const int bx = 24, by = 24;
  std::uint32_t best = ~0u;
  int best_dx = 99, best_dy = 99;
  for (int cy = -4; cy <= 4; ++cy) {
    for (int cx = -4; cx <= 4; ++cx) {
      const std::uint32_t s =
          X264Kernel::sad16(&cur[by * W + bx], W,
                            &ref[(by + cy) * W + bx + cx], W);
      if (s < best) {
        best = s;
        best_dx = cx;
        best_dy = cy;
      }
    }
  }
  EXPECT_EQ(best, 0u);
  EXPECT_EQ(best_dx, dx);
  EXPECT_EQ(best_dy, dy);
}

// ------------------------------------------------------------------- x264

TEST(X264, Sad16ZeroForIdenticalBlocks) {
  std::uint8_t block[16 * 16];
  for (auto& b : block) b = 42;
  EXPECT_EQ(X264Kernel::sad16(block, 16, block, 16), 0u);
}

TEST(X264, Sad16CountsAbsoluteDifferences) {
  std::uint8_t a[16 * 16], b[16 * 16];
  for (int i = 0; i < 256; ++i) {
    a[i] = 10;
    b[i] = 13;
  }
  EXPECT_EQ(X264Kernel::sad16(a, 16, b, 16), 256u * 3u);
}

TEST(X264, Dct4x4DcOnlyForFlatBlock) {
  std::int16_t block[16];
  for (auto& v : block) v = 1;
  X264Kernel::dct4x4(block);
  EXPECT_EQ(block[0], 16);  // 4x4 butterfly gain on DC
  for (int i = 1; i < 16; ++i) EXPECT_EQ(block[i], 0);
}

TEST(X264, Dct4x4IsLinear) {
  std::int16_t a[16], b[16], sum[16];
  for (int i = 0; i < 16; ++i) {
    a[i] = static_cast<std::int16_t>(i);
    b[i] = static_cast<std::int16_t>(3 - (i % 7));
    sum[i] = static_cast<std::int16_t>(a[i] + b[i]);
  }
  X264Kernel::dct4x4(a);
  X264Kernel::dct4x4(b);
  X264Kernel::dct4x4(sum);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(sum[i], a[i] + b[i]);
}

TEST(X264, RejectsBadGeometry) {
  EXPECT_THROW(X264Kernel(100, 240), PreconditionError);  // not /16
  EXPECT_THROW(X264Kernel(16, 16), PreconditionError);    // too small
}

TEST(X264, MemoryTrafficDominatesPerFrame) {
  X264Kernel k(320, 240);
  Rng rng(4);
  const auto r = k.run(2, rng);
  // Memory-bound: traffic per frame well above the plane size.
  EXPECT_GT(r.counts.mem_traffic.value() / 2.0, 320.0 * 240.0);
}

// ----------------------------------------------------------------- Julius

TEST(Julius, ScoreIsFiniteAndDeterministic) {
  JuliusKernel a, b;
  Rng r1(6), r2(6);
  const auto ra = a.run(500, r1);
  const auto rb = b.run(500, r2);
  EXPECT_TRUE(std::isfinite(a.last_score()));
  EXPECT_DOUBLE_EQ(a.last_score(), b.last_score());
  EXPECT_EQ(ra.checksum, rb.checksum);
}

TEST(Julius, RejectsDegenerateModels) {
  EXPECT_THROW(JuliusKernel(1, 4, 13), PreconditionError);
  EXPECT_THROW(JuliusKernel(8, 0, 13), PreconditionError);
  EXPECT_THROW(JuliusKernel(8, 4, 0), PreconditionError);
}

// -------------------------------------------------------------- memcached

TEST(KvTable, SetGetRoundTrip) {
  FlatKvTable t(64);
  unsigned char in[FlatKvTable::kValueSize], out[FlatKvTable::kValueSize];
  for (std::size_t i = 0; i < sizeof(in); ++i)
    in[i] = static_cast<unsigned char>(i * 3);
  ASSERT_TRUE(t.set(7, in));
  ASSERT_TRUE(t.get(7, out));
  EXPECT_EQ(0, std::memcmp(in, out, sizeof(in)));
  EXPECT_EQ(t.size(), 1u);
}

TEST(KvTable, MissReturnsFalse) {
  FlatKvTable t(64);
  unsigned char out[FlatKvTable::kValueSize];
  EXPECT_FALSE(t.get(123, out));
}

TEST(KvTable, OverwriteKeepsSize) {
  FlatKvTable t(64);
  unsigned char v[FlatKvTable::kValueSize] = {};
  ASSERT_TRUE(t.set(1, v));
  v[0] = 9;
  ASSERT_TRUE(t.set(1, v));
  EXPECT_EQ(t.size(), 1u);
  unsigned char out[FlatKvTable::kValueSize];
  ASSERT_TRUE(t.get(1, out));
  EXPECT_EQ(out[0], 9);
}

TEST(KvTable, LoadFactorCapRejectsOverfill) {
  FlatKvTable t(4);  // capacity rounds to 8, cap at 4 entries
  unsigned char v[FlatKvTable::kValueSize] = {};
  std::size_t inserted = 0;
  for (std::uint64_t k = 0; k < 100; ++k)
    if (t.set(k, v)) ++inserted;
  EXPECT_EQ(inserted, t.capacity() / 2);
}

TEST(KvTable, HandlesManyKeys) {
  FlatKvTable t(5000);
  unsigned char v[FlatKvTable::kValueSize] = {};
  for (std::uint64_t k = 0; k < 5000; ++k) {
    v[0] = static_cast<unsigned char>(k);
    ASSERT_TRUE(t.set(k, v));
  }
  unsigned char out[FlatKvTable::kValueSize];
  for (std::uint64_t k = 0; k < 5000; k += 37) {
    ASSERT_TRUE(t.get(k, out));
    EXPECT_EQ(out[0], static_cast<unsigned char>(k));
  }
}

TEST(KvStoreKernel, ServesRequestedBytesWithIo) {
  KvStoreKernel k(4096);
  Rng rng(8);
  const auto r = k.run(50000, rng);
  EXPECT_GE(r.counts.work_units, 50000u);
  EXPECT_GT(r.counts.io_bytes.value(), 0.0);
  // Every served byte crossed the NIC (work unit == byte).
  EXPECT_NEAR(r.counts.io_bytes.value(),
              static_cast<double>(r.counts.work_units), 1e-6);
}

}  // namespace
