// RNG: determinism, stream splitting, distribution sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hcep/util/rng.hpp"

namespace {

using hcep::Rng;
using hcep::SplitMix64;

TEST(SplitMix, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitLeavesParentUntouched) {
  Rng parent(3);
  Rng reference(3);
  (void)parent.split(2);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(parent.next(), reference.next());
}

TEST(Rng, SplitStreamsAreDistinct) {
  Rng base(11);
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (s0.next() == s1.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, Uniform01Range) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01Mean) {
  Rng rng(5);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += rng.uniform01();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit in 1000 draws
}

TEST(Rng, UniformIntZeroIsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(0), 0u);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(9);
  const double rate = 4.0;
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(rate);
  EXPECT_NEAR(acc / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(2.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
  Rng rng(1);
  (void)rng();  // callable
}

}  // namespace
