// Simulated testbed: with ideal overheads the simulator must reproduce the
// analytic model; with testbed overheads it must deviate like real
// hardware does.
#include <gtest/gtest.h>

#include "hcep/cluster/campaign.hpp"
#include "hcep/cluster/overheads.hpp"
#include "hcep/cluster/simulator.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::cluster;
using namespace hcep::literals;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

model::TimeEnergyModel ep_model() {
  return {model::make_a9_k10_cluster(4, 2), wl("EP")};
}

TEST(Overheads, TableCoversAllProgramsAndIdealIsIdentity) {
  for (const auto& p : workload::program_names()) {
    const WorkloadOverheads o = testbed_overheads(p);
    EXPECT_GE(o.time_factor, 1.0) << p;
    EXPECT_GT(o.power_factor, 0.5) << p;
    EXPECT_GE(o.dispatch.value(), 0.0) << p;
  }
  EXPECT_THROW((void)testbed_overheads("doom"), PreconditionError);
  const WorkloadOverheads ideal = ideal_overheads();
  EXPECT_DOUBLE_EQ(ideal.time_factor, 1.0);
  EXPECT_DOUBLE_EQ(ideal.power_factor, 1.0);
  EXPECT_DOUBLE_EQ(ideal.dispatch.value(), 0.0);
  EXPECT_DOUBLE_EQ(ideal.service_noise_cv, 0.0);
}

TEST(Simulate, IdleWindowDrawsExactlyIdlePower) {
  const auto m = ep_model();
  SimOptions opts;
  opts.utilization = 0.0;
  opts.min_jobs = 10;
  const SimResult r = simulate(m, opts);
  EXPECT_EQ(r.jobs_arrived, 0u);
  EXPECT_EQ(r.jobs_completed, 0u);
  EXPECT_NEAR(r.average_power.value(), m.idle_power().value(), 1e-9);
  EXPECT_DOUBLE_EQ(r.measured_utilization, 0.0);
}

class UtilizationSweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilizationSweep, AveragePowerTracksLinearModel) {
  const double u = GetParam();
  const auto m = ep_model();
  SimOptions opts;
  opts.utilization = u;
  opts.min_jobs = 600;
  opts.use_testbed_overheads = false;  // model-exact service/power
  const SimResult r = simulate(m, opts);
  // The simulator realizes a slightly different utilization (arrival
  // stream truncation); compare against the model at the realized value.
  const double model_power =
      m.average_power(r.measured_utilization).value();
  EXPECT_NEAR(r.average_power.value(), model_power, model_power * 0.02)
      << "target u=" << u;
}

TEST_P(UtilizationSweep, RealizedUtilizationNearTarget) {
  const double u = GetParam();
  const auto m = ep_model();
  SimOptions opts;
  opts.utilization = u;
  opts.min_jobs = 2500;
  opts.use_testbed_overheads = false;
  const SimResult r = simulate(m, opts);
  EXPECT_NEAR(r.measured_utilization, u, 0.08) << "target u=" << u;
}

INSTANTIATE_TEST_SUITE_P(Grid, UtilizationSweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(Simulate, MeteredEnergyTracksExactTraceIntegral) {
  const auto m = ep_model();
  SimOptions opts;
  opts.utilization = 0.5;
  opts.min_jobs = 300;
  const SimResult r = simulate(m, opts);
  EXPECT_NEAR(r.energy_measured.value(), r.energy_exact.value(),
              r.energy_exact.value() * 0.01);
}

TEST(Simulate, AllArrivedJobsComplete) {
  const auto m = ep_model();
  SimOptions opts;
  opts.utilization = 0.7;
  opts.min_jobs = 200;
  const SimResult r = simulate(m, opts);
  EXPECT_EQ(r.jobs_completed, r.jobs_arrived);
  EXPECT_EQ(r.response_samples.size(), r.jobs_completed);
  EXPECT_GT(r.jobs_completed, 50u);
}

TEST(Simulate, ResponseGrowsWithUtilization) {
  const auto m = ep_model();
  double prev = 0.0;
  for (double u : {0.2, 0.5, 0.8}) {
    SimOptions opts;
    opts.utilization = u;
    opts.min_jobs = 800;
    opts.use_testbed_overheads = false;
    const SimResult r = simulate(m, opts);
    EXPECT_GT(r.p95_response.value(), prev);
    prev = r.mean_response.value();  // compare p95 against previous mean
  }
}

TEST(Simulate, ServiceTimeMatchesModelWithoutOverheads) {
  const auto m = ep_model();
  SimOptions opts;
  opts.utilization = 0.3;
  opts.min_jobs = 200;
  opts.use_testbed_overheads = false;
  const SimResult r = simulate(m, opts);
  const Seconds model_time =
      m.execution_time(wl("EP").units_per_job).t_p;
  EXPECT_NEAR(r.mean_service.value(), model_time.value(),
              model_time.value() * 1e-6);
}

TEST(Simulate, TestbedOverheadsInflateServiceTime) {
  const auto m = ep_model();
  SimOptions with, without;
  with.utilization = without.utilization = 0.3;
  with.min_jobs = without.min_jobs = 300;
  without.use_testbed_overheads = false;
  const SimResult a = simulate(m, with);
  const SimResult b = simulate(m, without);
  EXPECT_GT(a.mean_service.value(), b.mean_service.value());
}

TEST(Simulate, CountersAccumulatePerJob) {
  const auto m = ep_model();
  SimOptions opts;
  opts.utilization = 0.4;
  opts.min_jobs = 100;
  const SimResult r = simulate(m, opts);
  ASSERT_EQ(r.counters.size(), 2u);
  for (const auto& c : r.counters) {
    EXPECT_EQ(c.jobs_served, r.jobs_completed);
    EXPECT_GT(c.work_cycles, 0.0);
  }
  // Counter totals scale with completed jobs: cycles per job constant.
  const double per_job = r.counters[0].work_cycles /
                         static_cast<double>(r.jobs_completed);
  EXPECT_GT(per_job, 0.0);
}

TEST(Simulate, DeterministicForFixedSeed) {
  const auto m = ep_model();
  SimOptions opts;
  opts.utilization = 0.5;
  opts.min_jobs = 100;
  opts.seed = 77;
  const SimResult a = simulate(m, opts);
  const SimResult b = simulate(m, opts);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_DOUBLE_EQ(a.energy_exact.value(), b.energy_exact.value());
  EXPECT_DOUBLE_EQ(a.p95_response.value(), b.p95_response.value());
}

TEST(Simulate, BatchArrivalsPreserveUtilization) {
  const auto m = ep_model();
  SimOptions opts;
  opts.utilization = 0.5;
  opts.min_jobs = 1500;
  opts.use_testbed_overheads = false;
  opts.batch_size = 5;
  const SimResult r = simulate(m, opts);
  EXPECT_NEAR(r.measured_utilization, 0.5, 0.08);
  EXPECT_EQ(r.jobs_completed % 5, 0u);  // whole batches
}

TEST(Simulate, LargerBatchesLengthenTheTail) {
  const auto m = ep_model();
  SimOptions single, batched;
  single.utilization = batched.utilization = 0.6;
  single.min_jobs = batched.min_jobs = 2000;
  single.use_testbed_overheads = batched.use_testbed_overheads = false;
  batched.batch_size = 10;
  const SimResult a = simulate(m, single);
  const SimResult b = simulate(m, batched);
  // At equal utilization, batching bursts the queue: the 95th percentile
  // response must grow markedly.
  EXPECT_GT(b.p95_response.value(), a.p95_response.value() * 1.5);
}

TEST(Simulate, Validation) {
  const auto m = ep_model();
  SimOptions opts;
  opts.utilization = 1.0;
  EXPECT_THROW((void)simulate(m, opts), PreconditionError);
  opts.utilization = 0.5;
  opts.min_jobs = 0;
  EXPECT_THROW((void)simulate(m, opts), PreconditionError);
  opts.min_jobs = 10;
  opts.batch_size = 0;
  EXPECT_THROW((void)simulate(m, opts), PreconditionError);
}

TEST(MeasureBatch, PerJobTimeMatchesOverheadFactor) {
  const auto m = ep_model();
  const Seconds model_time = m.execution_time(wl("EP").units_per_job).t_p;
  const JobMeasurement meas = measure_batch(m, 40, 9);
  const WorkloadOverheads ovh = testbed_overheads("EP");
  const double expected =
      model_time.value() * ovh.time_factor + ovh.dispatch.value();
  EXPECT_NEAR(meas.time_per_job.value(), expected, expected * 0.02);
}

TEST(MeasureBatch, IdealOverheadsReproduceModelEnergy) {
  const auto m = ep_model();
  const JobMeasurement meas = measure_batch(m, 30, 9, false);
  const Seconds model_time = m.execution_time(wl("EP").units_per_job).t_p;
  const Joules model_energy = m.job_energy(wl("EP").units_per_job).e_p;
  EXPECT_NEAR(meas.time_per_job.value(), model_time.value(),
              model_time.value() * 1e-9);
  EXPECT_NEAR(meas.energy_per_job.value(), model_energy.value(),
              model_energy.value() * 0.02);
}

TEST(MeasureBatch, Validation) {
  const auto m = ep_model();
  EXPECT_THROW((void)measure_batch(m, 0), PreconditionError);
}

TEST(Campaign, MeasuredCurveTracksModelCurve) {
  const auto m = ep_model();
  CampaignOptions opts;
  opts.use_testbed_overheads = false;
  opts.min_jobs = 250;
  opts.utilizations = {0.0, 0.25, 0.5, 0.75};
  const CampaignResult r = run_campaign(m, opts);
  ASSERT_EQ(r.points.size(), 4u);
  const power::PowerCurve measured = r.measured_curve();
  for (double u : {0.0, 0.25, 0.5, 0.75}) {
    const double model_p = m.average_power(u).value();
    EXPECT_NEAR(measured.at(u).value(), model_p, model_p * 0.06)
        << "u=" << u;
  }
}

TEST(Campaign, ThroughputScalesWithUtilization) {
  const auto m = ep_model();
  CampaignOptions opts;
  opts.use_testbed_overheads = false;
  opts.min_jobs = 250;
  opts.utilizations = {0.2, 0.6};
  const CampaignResult r = run_campaign(m, opts);
  EXPECT_GT(r.points[1].throughput, 2.0 * r.points[0].throughput * 0.8);
}

TEST(Campaign, MeasuredCurveKeepsFinalDuplicateKnot) {
  // Regression: a grid ending on a repeated utilization (a re-measured
  // point) used to drop the final measurement entirely and extend the
  // curve to u=1 from the stale earlier knot.
  CampaignResult r;
  const auto mk = [](double u, double p) {
    CampaignPoint pt;
    pt.target_utilization = u;
    pt.average_power = Watts{p};
    return pt;
  };
  r.points = {mk(0.0, 100.0), mk(0.5, 150.0), mk(0.9, 180.0),
              mk(0.9, 200.0)};
  const power::PowerCurve curve = r.measured_curve();
  EXPECT_DOUBLE_EQ(curve.at(0.0).value(), 100.0);
  EXPECT_DOUBLE_EQ(curve.at(0.5).value(), 150.0);
  // Last measurement wins the duplicate knot and anchors the u=1 tail.
  EXPECT_DOUBLE_EQ(curve.at(0.9).value(), 200.0);
  EXPECT_DOUBLE_EQ(curve.at(1.0).value(), 200.0);
}

TEST(Campaign, RejectsUnsortedGrid) {
  const auto m = ep_model();
  CampaignOptions opts;
  opts.utilizations = {0.5, 0.2};
  EXPECT_THROW((void)run_campaign(m, opts), PreconditionError);
}

}  // namespace
