// M/D/c analytics: Erlang-C and the Allen-Cunneen approximation,
// cross-checked against the queue specializations and the dispatch
// simulator on a homogeneous pool.
#include <gtest/gtest.h>

#include "hcep/cluster/dispatch.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/queueing/md1.hpp"
#include "hcep/queueing/mdc.hpp"
#include "hcep/workload/node_ops.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::queueing;
using namespace hcep::literals;

TEST(ErlangC, KnownValues) {
  // Textbook value: a = 2 Erlang, c = 3 servers -> C ~ 0.4444.
  EXPECT_NEAR(erlang_c(2.0, 3), 4.0 / 9.0, 1e-9);
  // c = 1: C(a, 1) = a (pure birth-death).
  EXPECT_NEAR(erlang_c(0.6, 1), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(erlang_c(0.0, 4), 0.0);
}

TEST(ErlangC, BoundsAndMonotonicity) {
  for (unsigned c = 1; c <= 8; ++c) {
    double prev = 0.0;
    for (double rho = 0.1; rho < 1.0; rho += 0.1) {
      const double v = erlang_c(rho * c, c);
      EXPECT_GE(v, prev);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      prev = v;
    }
  }
  EXPECT_THROW((void)erlang_c(3.0, 3), PreconditionError);
  EXPECT_THROW((void)erlang_c(1.0, 0), PreconditionError);
}

TEST(MDc, SingleServerReducesToMD1Exactly) {
  // Allen-Cunneen at c=1: Wq(M/M/1)/2 == the exact M/D/1 P-K value.
  for (double rho : {0.2, 0.5, 0.8}) {
    const MDc mdc = MDc::from_utilization(10_ms, rho, 1);
    const MD1 md1 = MD1::from_utilization(10_ms, rho);
    EXPECT_NEAR(mdc.mean_wait().value(), md1.mean_wait().value(), 1e-15)
        << rho;
  }
}

TEST(MDc, MoreServersWaitLessAtEqualUtilization) {
  double prev = 1e9;
  for (unsigned c : {1u, 2u, 4u, 8u}) {
    const MDc q = MDc::from_utilization(10_ms, 0.7, c);
    EXPECT_LT(q.mean_wait().value(), prev);
    prev = q.mean_wait().value();
  }
}

TEST(MDc, TracksHomogeneousDispatchSimulation) {
  // 4 identical A9 nodes under JSQ ~ an M/D/4 queue.
  static const auto ep = workload::make_workload("EP");
  const auto cluster_spec = model::make_a9_k10_cluster(4, 0);
  cluster::DispatchOptions opts;
  opts.policy = cluster::DispatchPolicy::kJoinShortestQueue;
  opts.utilization = 0.7;
  opts.jobs = 6000;
  const auto sim = cluster::simulate_dispatch(cluster_spec, ep, opts);

  const Seconds per_node_service{
      ep.units_per_job /
      workload::unit_throughput(ep.demand_for("A9"), hw::cortex_a9(),
                                hw::cortex_a9().cores,
                                hw::cortex_a9().dvfs.max())};
  const MDc q = MDc::from_utilization(per_node_service, 0.7, 4);
  EXPECT_NEAR(sim.mean_response.value(), q.mean_response().value(),
              q.mean_response().value() * 0.25);
}

TEST(MDc, Validation) {
  EXPECT_THROW(MDc(0_s, 1.0, 2), PreconditionError);
  EXPECT_THROW(MDc(1_s, 2.0, 2), PreconditionError);  // rho = 1
  EXPECT_THROW(MDc(1_s, 0.5, 0), PreconditionError);
  EXPECT_THROW((void)MDc::from_utilization(1_s, 1.0, 2),
               PreconditionError);
}

}  // namespace
