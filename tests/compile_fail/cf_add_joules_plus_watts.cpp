// MUST NOT COMPILE: J + W adds energy to power — the classic unit slip
// the hcep::units layer exists to reject.
#include "hcep/util/units.hpp"

int main() {
  const hcep::Joules e = hcep::Joules{1.0} + hcep::Watts{1.0};
  return static_cast<int>(e.value());
}
