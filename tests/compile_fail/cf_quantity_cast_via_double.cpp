// MUST NOT COMPILE: laundering a quantity across dimensions through an
// intermediate double. `.value()` strips the unit tag, but the Quantity
// constructor is explicit, so the naked double cannot silently re-enter
// the typed layer as a different dimension — the round-trip must be
// spelled out (and therefore reviewed) at both ends.
#include "hcep/util/units.hpp"

int main() {
  const hcep::Watts p{5.0};
  const double raw = p.value();
  const hcep::Joules e = raw;  // implicit double -> Joules: rejected
  return static_cast<int>(e.value());
}
