// MUST NOT COMPILE: Quantity as an unordered_map key without an explicit
// hash. hcep::units deliberately specializes no std::hash — a hashed
// quantity key invites hash-order iteration into result paths, the exact
// nondeterminism hcep-lint's unordered-iteration rule polices. Keying by
// quantity is allowed only with an explicit, reviewed hasher (see the
// ok_quantity_containers control).
#include <unordered_map>

#include "hcep/util/units.hpp"

int main() {
  std::unordered_map<hcep::Joules, int> by_energy;
  by_energy[hcep::Joules{1.0}] = 1;
  return static_cast<int>(by_energy.size());
}
