// MUST COMPILE: the sanctioned container/conversion idioms next to the
// cf_quantity_* rejections. Ordered maps key quantities through the
// defaulted operator<=> (deterministic iteration order); unordered maps
// are allowed with an explicit, named hasher; cross-RATIO casts within
// one dimension (J <-> kWh) are exactly what quantity_cast is for.
#include <cstddef>
#include <map>
#include <unordered_map>

#include "hcep/util/units.hpp"

namespace {

struct JoulesHash {
  std::size_t operator()(hcep::Joules e) const noexcept {
    return std::hash<double>{}(e.value());
  }
};

}  // namespace

int main() {
  std::map<hcep::Joules, int> ordered;
  ordered[hcep::Joules{1.0}] = 1;

  std::unordered_map<hcep::Joules, int, JoulesHash> explicit_hash;
  explicit_hash[hcep::Joules{2.0}] = 2;

  const hcep::KilowattHours kwh{1.0};
  const hcep::Joules j = hcep::quantity_cast<hcep::Joules>(kwh);

  const double roundtrip = j.value();
  const hcep::Joules back{roundtrip};  // explicit re-entry is fine

  return static_cast<int>(ordered.size() + explicit_hash.size() +
                          back.value() * 0.0);
}
