// MUST NOT COMPILE: passing Watts where a Joules parameter is expected —
// the acceptance-criteria seeded bug. Average power is NOT energy until
// multiplied by a window.
#include "hcep/util/units.hpp"

namespace {
double record_energy(hcep::Joules e) { return e.value(); }
}  // namespace

int main() {
  const hcep::Watts p{42.0};
  return static_cast<int>(record_energy(p));
}
