// MUST NOT COMPILE: cycles and seconds are different dimensions; the
// Table 2 identity requires dividing by a frequency first.
#include "hcep/util/units.hpp"

int main() {
  const auto bogus = hcep::Cycles{1e9} + hcep::Seconds{1.0};
  return static_cast<int>(bogus.value());
}
