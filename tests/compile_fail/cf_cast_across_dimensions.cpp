// MUST NOT COMPILE: quantity_cast converts between units of ONE
// dimension (J <-> kWh); it must refuse to launder Watts into Joules.
#include "hcep/util/units.hpp"

int main() {
  const hcep::Joules e = hcep::quantity_cast<hcep::Joules>(hcep::Watts{5.0});
  return static_cast<int>(e.value());
}
