// Control snippet: MUST COMPILE. Exercises the derived-dimension algebra
// the cf_* snippets violate, so a broken include path or a units-layer
// regression cannot make the compile-fail harness pass vacuously.
#include "hcep/util/units.hpp"

using namespace hcep;
using namespace hcep::literals;

int main() {
  const Joules e = 10_W * 3_s;                  // W * s -> J
  const Watts p = e / 3_s;                      // J / s -> W
  const Seconds t = Cycles{2.8e9} / 1.4_GHz;    // cyc / Hz -> s
  const Cycles c = 1.4_GHz * t;                 // Hz * s -> cyc
  const Seconds xfer = Bytes{1e6} / BytesPerSecond{1e5};
  const JoulesPerOp jpo = e / Ops{100.0};
  const JouleSeconds edp = e * t;
  const Joules from_mj = Millijoules{1500.0};   // exact scaled conversion
  const KilowattHours kwh = quantity_cast<KilowattHours>(e);
  const double ratio = p / 5_W;                 // dimensionless decay
  return static_cast<int>(e.value() + p.value() + t.value() + c.value() +
                          xfer.value() + jpo.value() + edp.value() +
                          from_mj.value() + kwh.value() + ratio) > 1e9;
}
