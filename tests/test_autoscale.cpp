// Autoscaling replay: dynamic node on/off following the load must beat
// every static mix's proportionality.
#include <gtest/gtest.h>

#include "hcep/cluster/autoscale.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::cluster;
using namespace hcep::literals;

const workload::Workload& ep() {
  static const workload::Workload kEp = workload::make_workload("EP");
  return kEp;
}

model::TimeEnergyModel fleet() {
  return {model::make_a9_k10_cluster(32, 4), ep()};
}

const LoadTrace& day_trace() {
  static const LoadTrace kTrace = LoadTrace::diurnal(600_s, 0.1, 0.8);
  return kTrace;
}

TEST(Autoscale, SavesEnergyAgainstAlwaysOn) {
  const auto m = fleet();
  const auto r = autoscale_replay(m, day_trace());
  // The always-on fleet pays idle power over the whole horizon; the
  // autoscaled fleet parks most nodes in the trough.
  const double always_on_floor =
      m.idle_power().value() * day_trace().horizon().value();
  EXPECT_LT(r.total_energy.value(), always_on_floor);
  EXPECT_GT(r.jobs_completed, 500u);
}

TEST(Autoscale, ActiveFractionFollowsTheLoad) {
  const auto r = autoscale_replay(fleet(), day_trace());
  ASSERT_EQ(r.buckets.size(), 24u);
  // Peak (~bucket 6) runs far more of the fleet than the trough (~18).
  EXPECT_GT(r.buckets[6].active_fraction,
            r.buckets[18].active_fraction + 0.2);
  EXPECT_GT(r.buckets[6].average_power.value(),
            r.buckets[18].average_power.value());
}

TEST(Autoscale, EffectiveProfileBeatsTheStaticCurve) {
  // The headline: dynamic adaptation pushes EPM well above the static
  // mix's (which is capped at 1 - IPR ~ 0.33 for this fleet).
  const auto r = autoscale_replay(fleet(), day_trace());
  EXPECT_GT(r.effective_report.epm, r.static_report.epm + 0.2);
  // And the effective idle floor collapses towards the sleep power.
  EXPECT_LT(r.effective_curve.idle().value(),
            fleet().idle_power().value() * 0.25);
}

TEST(Autoscale, HeadroomBoundsTheLatencyDamage) {
  // More headroom -> more active capacity -> lower p95.
  AutoscaleOptions lean;
  lean.headroom = 0.05;
  AutoscaleOptions generous;
  generous.headroom = 0.6;
  const auto a = autoscale_replay(fleet(), day_trace(), lean);
  const auto b = autoscale_replay(fleet(), day_trace(), generous);
  EXPECT_GT(a.worst_p95.value(), b.worst_p95.value());
  EXPECT_LT(a.total_energy.value(), b.total_energy.value());
}

TEST(Autoscale, FlatTraceHoldsASteadyFleet) {
  const auto r =
      autoscale_replay(fleet(), LoadTrace::flat(300_s, 0.5));
  double lo = 1.0, hi = 0.0;
  for (const auto& b : r.buckets) {
    lo = std::min(lo, b.active_fraction);
    hi = std::max(hi, b.active_fraction);
  }
  EXPECT_LT(hi - lo, 0.15);  // no thrash under constant load
}

TEST(Autoscale, DeterministicForFixedSeed) {
  const auto a = autoscale_replay(fleet(), day_trace());
  const auto b = autoscale_replay(fleet(), day_trace());
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_DOUBLE_EQ(a.total_energy.value(), b.total_energy.value());
}

TEST(Autoscale, Validation) {
  AutoscaleOptions opts;
  opts.control_period = Seconds{0.0};
  EXPECT_THROW((void)autoscale_replay(fleet(), day_trace(), opts),
               PreconditionError);
  opts.control_period = Seconds{5.0};
  opts.min_active_fraction = 1.5;
  EXPECT_THROW((void)autoscale_replay(fleet(), day_trace(), opts),
               PreconditionError);
}

}  // namespace
