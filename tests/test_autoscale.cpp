// Autoscaling replay: dynamic node on/off following the load must beat
// every static mix's proportionality. The closed-loop section cross-
// checks the same scenarios on the control::PowerGateController driven by
// DES-clock ticks inside traffic::simulate_traffic — no bucket-position
// (hour-of-day) or wall-clock assumptions, only load-derived ones.
#include <gtest/gtest.h>

#include <memory>

#include "hcep/cluster/autoscale.hpp"
#include "hcep/control/controllers.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::cluster;
using namespace hcep::literals;

const workload::Workload& ep() {
  static const workload::Workload kEp = workload::make_workload("EP");
  return kEp;
}

model::TimeEnergyModel fleet() {
  return {model::make_a9_k10_cluster(32, 4), ep()};
}

const LoadTrace& day_trace() {
  static const LoadTrace kTrace = LoadTrace::diurnal(600_s, 0.1, 0.8);
  return kTrace;
}

TEST(Autoscale, SavesEnergyAgainstAlwaysOn) {
  const auto m = fleet();
  const auto r = autoscale_replay(m, day_trace());
  // The always-on fleet pays idle power over the whole horizon; the
  // autoscaled fleet parks most nodes in the trough.
  const double always_on_floor =
      m.idle_power().value() * day_trace().horizon().value();
  EXPECT_LT(r.total_energy.value(), always_on_floor);
  EXPECT_GT(r.jobs_completed, 500u);
}

TEST(Autoscale, ActiveFractionFollowsTheLoad) {
  const auto r = autoscale_replay(fleet(), day_trace());
  ASSERT_EQ(r.buckets.size(), 24u);
  // Locate peak and trough by the buckets' own offered load rather than
  // assuming which hour of the synthetic day they land on.
  std::size_t peak = 0, trough = 0;
  for (std::size_t i = 1; i < r.buckets.size(); ++i) {
    if (r.buckets[i].target_utilization >
        r.buckets[peak].target_utilization)
      peak = i;
    if (r.buckets[i].target_utilization <
        r.buckets[trough].target_utilization)
      trough = i;
  }
  // The peak-load hour runs far more of the fleet than the trough.
  EXPECT_GT(r.buckets[peak].active_fraction,
            r.buckets[trough].active_fraction + 0.2);
  EXPECT_GT(r.buckets[peak].average_power.value(),
            r.buckets[trough].average_power.value());
}

TEST(Autoscale, EffectiveProfileBeatsTheStaticCurve) {
  // The headline: dynamic adaptation pushes EPM well above the static
  // mix's (which is capped at 1 - IPR ~ 0.33 for this fleet).
  const auto r = autoscale_replay(fleet(), day_trace());
  EXPECT_GT(r.effective_report.epm, r.static_report.epm + 0.2);
  // And the effective idle floor collapses towards the sleep power.
  EXPECT_LT(r.effective_curve.idle().value(),
            fleet().idle_power().value() * 0.25);
}

TEST(Autoscale, HeadroomBoundsTheLatencyDamage) {
  // More headroom -> more active capacity -> lower p95.
  AutoscaleOptions lean;
  lean.headroom = 0.05;
  AutoscaleOptions generous;
  generous.headroom = 0.6;
  const auto a = autoscale_replay(fleet(), day_trace(), lean);
  const auto b = autoscale_replay(fleet(), day_trace(), generous);
  EXPECT_GT(a.worst_p95.value(), b.worst_p95.value());
  EXPECT_LT(a.total_energy.value(), b.total_energy.value());
}

TEST(Autoscale, FlatTraceHoldsASteadyFleet) {
  const auto r =
      autoscale_replay(fleet(), LoadTrace::flat(300_s, 0.5));
  double lo = 1.0, hi = 0.0;
  for (const auto& b : r.buckets) {
    lo = std::min(lo, b.active_fraction);
    hi = std::max(hi, b.active_fraction);
  }
  EXPECT_LT(hi - lo, 0.15);  // no thrash under constant load
}

TEST(Autoscale, DeterministicForFixedSeed) {
  const auto a = autoscale_replay(fleet(), day_trace());
  const auto b = autoscale_replay(fleet(), day_trace());
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.total_energy.value(), b.total_energy.value());  // bit-exact
}

TEST(Autoscale, Validation) {
  AutoscaleOptions opts;
  opts.control_period = Seconds{0.0};
  EXPECT_THROW((void)autoscale_replay(fleet(), day_trace(), opts),
               PreconditionError);
  opts.control_period = Seconds{5.0};
  opts.min_active_fraction = 1.5;
  EXPECT_THROW((void)autoscale_replay(fleet(), day_trace(), opts),
               PreconditionError);
}

// ----------------------------------------------- closed-loop cross-check
//
// The replay scenarios above, re-run through the request-level control
// plane: the PowerGateController under traffic::simulate_traffic drives
// the same park/wake policy from DES-clock ticks. Every assertion is
// derived from the load or the ledger, never from event positions in
// time — the suite is deterministic for a fixed seed by construction.

std::vector<traffic::TrafficClass> ep_class() {
  return {traffic::TrafficClass{ep(), 1.0, traffic::SloTarget{}}};
}

traffic::TrafficResult gated_run(
    std::unique_ptr<traffic::ArrivalProcess> arrivals, double rate,
    double headroom, bool gated) {
  const auto cluster = model::make_a9_k10_cluster(12, 2);
  traffic::TrafficOptions opts;
  opts.requests = 4000;
  opts.seed = 99;
  if (gated) {
    opts.control.controller =
        control::make_power_gate({.headroom = headroom});
    opts.control.period = Seconds{20.0 / rate};
    opts.control.wake_delay = Seconds{5.0 / rate};
    opts.control.wake_energy = Joules{5.0};
  }
  return traffic::simulate_traffic(cluster, ep_class(), *arrivals, opts);
}

double diurnal_rate() {
  static const double kRate =
      0.3 * traffic::cluster_capacity_per_s(model::make_a9_k10_cluster(12, 2),
                                            ep_class());
  return kRate;
}

std::unique_ptr<traffic::ArrivalProcess> diurnal_arrivals() {
  const double rate = diurnal_rate();
  return traffic::make_diurnal(rate, 0.7, Seconds{400.0 / rate});
}

TEST(AutoscaleClosedLoop, SavesEnergyAgainstAlwaysOn) {
  const double rate = diurnal_rate();
  const auto open = gated_run(diurnal_arrivals(), rate, 0.25, false);
  const auto gated = gated_run(diurnal_arrivals(), rate, 0.25, true);
  // Same completions, less energy: the gated fleet parks the trough.
  EXPECT_EQ(gated.completed, open.completed);
  EXPECT_GT(gated.control.sleeps, 0u);
  EXPECT_TRUE(gated.control.all_dispatches_available);
  EXPECT_LT(gated.energy.value(), open.energy.value());
  EXPECT_GT(gated.control.gating_savings.value(), 0.0);
}

TEST(AutoscaleClosedLoop, HeadroomBoundsTheLatencyDamage) {
  // More headroom -> more awake capacity -> more idle burn, less queueing
  // (the replay suite's lean-vs-generous scenario on the live ledger).
  const double rate = diurnal_rate();
  const auto lean = gated_run(diurnal_arrivals(), rate, 0.05, true);
  const auto generous = gated_run(diurnal_arrivals(), rate, 1.0, true);
  EXPECT_LT(lean.energy.value(), generous.energy.value());
  EXPECT_GE(lean.control.gating_savings.value(),
            generous.control.gating_savings.value());
  EXPECT_GE(lean.sojourn.p99.value(), generous.sojourn.p99.value());
}

TEST(AutoscaleClosedLoop, FlatLoadDoesNotThrash) {
  // Constant load: after the initial park-down the controller must hold
  // the fleet steady — wake transitions stay a small fraction of ticks.
  const double rate = diurnal_rate();
  const auto r =
      gated_run(traffic::make_deterministic(rate), rate, 0.25, true);
  ASSERT_GT(r.control.ticks, 20u);
  EXPECT_GT(r.control.sleeps, 0u);
  EXPECT_LE(r.control.wakes, r.control.ticks / 4);
}

TEST(AutoscaleClosedLoop, DeterministicForFixedSeed) {
  const double rate = diurnal_rate();
  const auto a = gated_run(diurnal_arrivals(), rate, 0.25, true);
  const auto b = gated_run(diurnal_arrivals(), rate, 0.25, true);
  // Byte-identical, not merely close: same JSON bytes, same ledgers.
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(a.control.to_json().dump(), b.control.to_json().dump());
}

}  // namespace
