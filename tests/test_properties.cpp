// Property-based suites: invariants that must hold over randomized inputs
// (random power curves, random demand mixes, random traces), checked over
// many seeds via TEST_P sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hcep/cluster/simulator.hpp"
#include "hcep/control/controllers.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/obs/power_probe.hpp"
#include "hcep/obs/stream.hpp"
#include "hcep/power/curve.hpp"
#include "hcep/queueing/md1.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/math.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/workload/catalog.hpp"
#include "hcep/workload/node_ops.hpp"

namespace {

using namespace hcep;

/// Random monotone-nondecreasing power curve with positive peak.
power::PowerCurve random_curve(Rng& rng) {
  const std::size_t knots = 3 + rng.uniform_int(8);
  const double idle = rng.uniform(1.0, 100.0);
  PiecewiseLinear samples;
  double level = idle;
  for (std::size_t i = 0; i < knots; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(knots - 1);
    samples.add(u, level);
    level += rng.uniform(0.0, 40.0);
  }
  return power::PowerCurve::sampled(std::move(samples));
}

class RandomCurves : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCurves, EpmEqualsOneMinusTwicePgWeightedArea) {
  // Identity relating the two families of metrics:
  //   EPM = 1 - 2 * Int_0^1 PG(u) * u du
  // (both sides measure the normalized area between P(u)/P_peak and the
  // ideal line).
  Rng rng(GetParam());
  const auto curve = random_curve(rng);
  const double pg_area = trapezoid(
      [&](double u) {
        return u < 1e-9 ? 0.0 : metrics::pg(curve, u) * u;
      },
      1e-9, 1.0, 4000);
  EXPECT_NEAR(metrics::epm(curve), 1.0 - 2.0 * pg_area, 1e-3);
}

TEST_P(RandomCurves, MetricRangesAndEndpoints) {
  Rng rng(GetParam() ^ 0xabcdULL);
  const auto curve = random_curve(rng);
  const double i = metrics::ipr(curve);
  EXPECT_GE(i, 0.0);
  EXPECT_LE(i, 1.0);
  EXPECT_NEAR(metrics::dpr(curve), (1.0 - i) * 100.0, 1e-9);
  // PG at u=1 vanishes by construction (power normalized by P(1)).
  EXPECT_NEAR(metrics::pg(curve, 1.0), 0.0, 1e-12);
  // EPM of a monotone curve with idle >= 0 stays within [0 - eps, 2].
  EXPECT_GT(metrics::epm(curve), -1e-9);
  EXPECT_LT(metrics::epm(curve), 2.0);
}

TEST_P(RandomCurves, SumPreservesIpBounds) {
  // Cluster composition: the IPR of a sum of curves lies between the
  // member IPRs (weighted mediant property).
  Rng rng(GetParam() ^ 0x1234ULL);
  const auto a = random_curve(rng);
  const auto b = random_curve(rng);
  const double ia = metrics::ipr(a);
  const double ib = metrics::ipr(b);
  const double isum = metrics::ipr(a + b);
  EXPECT_GE(isum, std::min(ia, ib) - 1e-9);
  EXPECT_LE(isum, std::max(ia, ib) + 1e-9);
}

TEST_P(RandomCurves, ScalingLeavesNormalizedMetricsInvariant) {
  Rng rng(GetParam() ^ 0x5678ULL);
  const auto curve = random_curve(rng);
  const auto scaled = curve.scaled(rng.uniform(2.0, 50.0));
  EXPECT_NEAR(metrics::ipr(curve), metrics::ipr(scaled), 1e-9);
  EXPECT_NEAR(metrics::epm(curve), metrics::epm(scaled), 1e-9);
  EXPECT_NEAR(metrics::pg(curve, 0.4), metrics::pg(scaled, 0.4), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCurves,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---------------------------------------------------------------- model

class RandomMixes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMixes, ThroughputAdditiveAndTimeConsistent) {
  // For random demands and random mixes: cluster throughput is the sum of
  // group rates, and T_P * throughput == work.
  Rng rng(GetParam());
  workload::Workload w;
  w.name = "random";
  w.units_per_job = rng.uniform(1e4, 1e7);
  w.demand["A9"] = workload::NodeDemand{
      rng.uniform(1e3, 1e6), rng.uniform(1e2, 1e6),
      Bytes{rng.uniform(0.0, 100.0)}};
  w.demand["K10"] = workload::NodeDemand{
      rng.uniform(1e3, 1e6), rng.uniform(1e2, 1e6),
      Bytes{rng.uniform(0.0, 100.0)}};

  const auto n_a9 = static_cast<unsigned>(1 + rng.uniform_int(16));
  const auto n_k10 = static_cast<unsigned>(1 + rng.uniform_int(8));
  model::TimeEnergyModel m(model::make_a9_k10_cluster(n_a9, n_k10), w);

  const double thr_a9 =
      workload::unit_throughput(w.demand_for("A9"), hw::cortex_a9(),
                                hw::cortex_a9().cores,
                                hw::cortex_a9().dvfs.max()) *
      n_a9;
  const double thr_k10 =
      workload::unit_throughput(w.demand_for("K10"), hw::opteron_k10(),
                                hw::opteron_k10().cores,
                                hw::opteron_k10().dvfs.max()) *
      n_k10;
  EXPECT_NEAR(m.peak_throughput(), thr_a9 + thr_k10,
              (thr_a9 + thr_k10) * 1e-9);

  const auto t = m.execution_time(w.units_per_job);
  EXPECT_NEAR(t.t_p.value() * m.peak_throughput(), w.units_per_job,
              w.units_per_job * 1e-6);
}

TEST_P(RandomMixes, EnergyBoundedByPowerEnvelope) {
  Rng rng(GetParam() ^ 0x9999ULL);
  workload::Workload w;
  w.name = "random";
  w.units_per_job = rng.uniform(1e4, 1e6);
  w.demand["A9"] = workload::NodeDemand{rng.uniform(1e3, 1e5),
                                        rng.uniform(1e2, 1e5), Bytes{0.0}};
  w.demand["K10"] = workload::NodeDemand{rng.uniform(1e3, 1e5),
                                         rng.uniform(1e2, 1e5), Bytes{0.0}};
  model::TimeEnergyModel m(model::make_a9_k10_cluster(3, 2), w);
  const auto t = m.execution_time(w.units_per_job).t_p;
  const auto e = m.job_energy(w.units_per_job).e_p;
  EXPECT_GE(e.value(), (m.idle_power() * t).value() * (1.0 - 1e-9));
  EXPECT_LE(e.value(), (m.busy_power() * t).value() * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMixes,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ------------------------------------------------------------- queueing

class RandomQueues : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomQueues, CdfMonotoneAndPercentileConsistent) {
  Rng rng(GetParam());
  const Seconds d{rng.uniform(1e-3, 2.0)};
  const double rho = rng.uniform(0.05, 0.93);
  const queueing::MD1 q = queueing::MD1::from_utilization(d, rho);

  double prev = -1.0;
  for (double k = 0.0; k <= 12.0; k += 0.25) {
    const double c = q.wait_cdf(d * k);
    EXPECT_GE(c, prev - 1e-8) << "k=" << k;
    prev = c;
  }
  for (double p : {60.0, 90.0, 99.0}) {
    const Seconds t = q.wait_percentile(p);
    EXPECT_GE(q.wait_cdf(t), p / 100.0 - 1e-5);
  }
  // M/M/1 with equal mean waits more: deterministic service dominates.
  const queueing::MM1 mm1(d, rho / d.value());
  EXPECT_GE(mm1.mean_wait().value(), q.mean_wait().value() - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueues,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------- arrival generators

/// First `n` arrival instants of a pristine clone under a fresh seed.
std::vector<double> draw_arrivals(const traffic::ArrivalProcess& process,
                                  std::size_t n, std::uint64_t seed) {
  auto gen = process.clone();
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  Seconds t{0.0};
  while (out.size() < n) {
    t = gen->next(t, rng);
    if (std::isinf(t.value())) break;
    out.push_back(t.value());
  }
  return out;
}

/// The generator catalog exercised by the properties below.
std::vector<std::unique_ptr<traffic::ArrivalProcess>> generator_catalog() {
  std::vector<std::unique_ptr<traffic::ArrivalProcess>> out;
  out.push_back(traffic::make_poisson(80.0));
  out.push_back(traffic::make_deterministic(80.0));
  out.push_back(traffic::make_bursty(30.0, Seconds{2.0}, 300.0,
                                     Seconds{0.2}));
  out.push_back(traffic::make_diurnal(100.0, 0.6, Seconds{20.0}));
  out.push_back(traffic::make_replay(
      {Seconds{0.1}, Seconds{0.4}, Seconds{0.5}, Seconds{0.9}},
      /*loop=*/true));
  return out;
}

class ArrivalGenerators : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArrivalGenerators, EmpiricalRateConvergesToDeclaredMeanRate) {
  for (const auto& gen : generator_catalog()) {
    const auto t = draw_arrivals(*gen, 50000, GetParam());
    ASSERT_EQ(t.size(), 50000u) << gen->name();
    const double span = t.back() - t.front();
    ASSERT_GT(span, 0.0) << gen->name();
    const double empirical = static_cast<double>(t.size() - 1) / span;
    // 10%: wide enough for the MMPP's slow (per-dwell-cycle) mixing.
    EXPECT_NEAR(empirical, gen->mean_rate_per_s(),
                0.10 * gen->mean_rate_per_s())
        << gen->name();
  }
}

TEST_P(ArrivalGenerators, ArrivalInstantsAreStrictlyOrdered) {
  for (const auto& gen : generator_catalog()) {
    const auto t = draw_arrivals(*gen, 5000, GetParam());
    for (std::size_t i = 1; i < t.size(); ++i)
      ASSERT_GE(t[i], t[i - 1]) << gen->name() << " i=" << i;
    EXPECT_GE(t.front(), 0.0) << gen->name();
  }
}

TEST_P(ArrivalGenerators, SameSeedStreamsAreIdentical) {
  for (const auto& gen : generator_catalog()) {
    const auto a = draw_arrivals(*gen, 20000, GetParam());
    const auto b = draw_arrivals(*gen, 20000, GetParam());
    ASSERT_EQ(a.size(), b.size()) << gen->name();
    for (std::size_t i = 0; i < a.size(); ++i)
      ASSERT_EQ(a[i], b[i]) << gen->name() << " i=" << i;  // bit-exact
  }
}

TEST_P(ArrivalGenerators, DifferentSeedsProduceDifferentStochasticStreams) {
  for (const auto& gen : generator_catalog()) {
    if (gen->name() == "deterministic" || gen->name() == "replay")
      continue;  // seed-independent by design
    const auto a = draw_arrivals(*gen, 100, GetParam());
    const auto b = draw_arrivals(*gen, 100, GetParam() + 1);
    EXPECT_NE(a, b) << gen->name();
  }
}

TEST_P(ArrivalGenerators, PoissonInterArrivalsAreExponentialAndIndependent) {
  const double rate = 80.0;
  const auto t = draw_arrivals(*traffic::make_poisson(rate), 50000,
                               GetParam());
  std::vector<double> gaps;
  gaps.reserve(t.size());
  gaps.push_back(t.front());
  for (std::size_t i = 1; i < t.size(); ++i)
    gaps.push_back(t[i] - t[i - 1]);

  const auto n = static_cast<double>(gaps.size());
  double sum = 0.0;
  for (const double g : gaps) sum += g;
  const double mean = sum / n;
  double var = 0.0;
  for (const double g : gaps) var += (g - mean) * (g - mean);
  var /= n - 1.0;

  // Exponential(rate): mean 1/rate, coefficient of variation exactly 1.
  EXPECT_NEAR(mean, 1.0 / rate, 0.03 / rate);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);

  // Independence: lag-1 autocorrelation of the gap sequence vanishes
  // (SE = 1/sqrt(n) ~ 0.0045; 0.03 is a >6-sigma gate).
  double lag1 = 0.0;
  for (std::size_t i = 1; i < gaps.size(); ++i)
    lag1 += (gaps[i] - mean) * (gaps[i - 1] - mean);
  lag1 /= (n - 1.0) * var;
  EXPECT_LT(std::abs(lag1), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrivalGenerators,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------- controlled traffic

const workload::Workload& control_wl() {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == "EP") return w;
  throw std::runtime_error("missing workload EP");
}

/// The cluster with every group pinned to its slowest DVFS step — the
/// floor the cap enforcer can reach by throttling alone.
model::ClusterSpec at_min_frequency(model::ClusterSpec cluster) {
  for (auto& g : cluster.groups) g.frequency = g.spec.dvfs.steps().front();
  return cluster;
}

std::unique_ptr<traffic::ArrivalProcess> control_arrivals(
    const std::string& process, double rate) {
  if (process == "poisson") return traffic::make_poisson(rate);
  if (process == "mmpp")
    return traffic::make_mmpp({{0.4 * rate, Seconds{120.0 / rate}},
                               {2.2 * rate, Seconds{60.0 / rate}}});
  if (process == "diurnal")
    return traffic::make_diurnal(rate, 0.6, Seconds{300.0 / rate});
  return traffic::make_bursty(0.5 * rate, Seconds{80.0 / rate}, 3.0 * rate,
                              Seconds{16.0 / rate});
}

/// The closed-loop invariant sweep (>= 200 triples across the seed
/// instantiation): every (arrival process, node mix, controller) triple
/// must satisfy, for any seed,
///  - ENERGY LEDGER: the recorded rack power trace re-integrates to the
///    run's exact energy (trace integral + wake penalties) within 1e-9,
///  - AVAILABILITY: no request was ever dispatched to a sleeping or
///    draining node,
///  - POWER CAP: under the cap enforcer, no step of the rack trace ever
///    exceeds the cap — not even between ticks (enforcement acts on
///    worst-case busy power, so a wake transient cannot overshoot),
///  - DETERMINISM: same-seed reruns are byte-identical, and sharded runs
///    are byte-identical between serial and parallel shard execution.
class ControlledTraffic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControlledTraffic, ClosedLoopInvariantsHoldOverRandomizedTriples) {
  const std::uint64_t seed = GetParam();
  const std::array<const char*, 4> processes = {"poisson", "mmpp", "diurnal",
                                                "bursty"};
  const std::array<std::pair<unsigned, unsigned>, 4> mixes = {
      {{4, 2}, {8, 0}, {0, 3}, {6, 3}}};
  const std::array<const char*, 4> policies = {"frozen", "power_gate",
                                               "dvfs", "power_cap"};

  const std::vector<traffic::TrafficClass> classes = {
      traffic::TrafficClass{control_wl(), 1.0, traffic::SloTarget{}}};

  std::size_t triples = 0;
  std::uint64_t total_ticks = 0;
  std::uint64_t total_actuations = 0;
  for (const char* process : processes) {
    for (const auto& [n_a9, n_k10] : mixes) {
      const auto cluster = model::make_a9_k10_cluster(n_a9, n_k10);
      const double capacity =
          traffic::cluster_capacity_per_s(cluster, classes);
      const model::TimeEnergyModel hi(cluster, control_wl());
      const model::TimeEnergyModel lo(at_min_frequency(cluster),
                                      control_wl());
      for (const char* policy : policies) {
        // Per-triple randomization of load, tick cadence and cap level.
        Rng rng(seed * 7919 + triples * 131);
        const double rate = capacity * rng.uniform(0.25, 0.6);
        const double span = 1000.0 / rate;  // expected makespan

        traffic::TrafficOptions opts;
        opts.requests = 1000;
        opts.seed = seed * 1000 + triples;
        opts.shards = (triples % 2 == 0) ? 1 : 3;
        opts.control.period = Seconds{span / 12.0};
        opts.control.min_event_spacing = Seconds{span / 48.0};
        opts.control.wake_delay = Seconds{span / 24.0};
        opts.control.wake_energy = Joules{1.0};
        opts.control.sleep_power = Watts{0.3};
        opts.control.record_power_trace = true;

        Watts cap{0.0};
        if (std::string(policy) == "frozen") {
          opts.control.controller = control::make_frozen();
        } else if (std::string(policy) == "power_gate") {
          opts.control.controller = control::make_power_gate();
        } else if (std::string(policy) == "dvfs") {
          opts.control.controller = control::make_dvfs_governor(
              {.latency_headroom = 0.5,
               .default_target = Seconds{rng.uniform(0.5, 4.0) / rate *
                                         static_cast<double>(
                                             cluster.total_nodes())}});
        } else {
          // Feasible by throttling alone: strictly above the all-slowest
          // floor, strictly below the configured all-busy draw.
          cap = Watts{lo.busy_power().value() +
                      rng.uniform(0.35, 0.9) * (hi.busy_power().value() -
                                                lo.busy_power().value())};
          opts.control.controller = control::make_power_cap({.cap = cap});
        }

        // Streamed telemetry rides along on every triple; window width
        // and sketch accuracy are randomized per triple. These draws sit
        // after the controller draws so the pre-existing sequences (and
        // therefore the golden behaviour above) are untouched.
        opts.stream.window = Seconds{span / rng.uniform(8.0, 24.0)};
        opts.stream.sketch_epsilon = rng.uniform(0.002, 0.02);

        const auto arrivals = control_arrivals(process, rate);
        const auto r = simulate_traffic(cluster, classes, *arrivals, opts);
        const std::string tag = std::string(process) + "/" +
                                cluster.label() + "/" + policy +
                                " seed=" + std::to_string(seed);

        ASSERT_EQ(r.completed + r.failed, r.offered) << tag;
        ASSERT_TRUE(r.control.enabled) << tag;
        total_ticks += r.control.ticks;
        total_actuations += r.control.sleeps + r.control.point_changes;

        // ENERGY LEDGER: trace integral + wake penalties == exact energy.
        ASSERT_FALSE(r.control.trace.empty()) << tag;
        const double reintegrated =
            r.control.trace.energy(r.makespan).value() +
            r.control.wake_energy.value();
        EXPECT_NEAR(r.energy.value(), reintegrated,
                    std::max(1e-9, 1e-9 * r.energy.value()))
            << tag;

        // AVAILABILITY: every dispatch landed on an active node.
        EXPECT_TRUE(r.control.all_dispatches_available) << tag;

        // POWER CAP: no trace step exceeds the budget, even between
        // ticks (wake transients included — enforcement is worst-case).
        if (cap.value() > 0.0) {
          for (const auto& step : r.control.trace.steps()) {
            ASSERT_LE(step.level.value(),
                      cap.value() * (1.0 + 1e-12) + 1e-9)
                << tag << " t=" << step.start.value();
          }
        }

        // DETERMINISM: rerun byte-identical; sharded runs additionally
        // byte-identical between serial and parallel shard execution.
        traffic::TrafficOptions again = opts;
        again.parallel_shards = (opts.shards == 1) || !opts.parallel_shards;
        const auto r2 =
            simulate_traffic(cluster, classes, *arrivals, again);
        ASSERT_EQ(r.to_json().dump(), r2.to_json().dump()) << tag;
        ASSERT_EQ(r.control.to_json().dump(), r2.control.to_json().dump())
            << tag;
        ASSERT_EQ(r.energy.value(), r2.energy.value()) << tag;  // bit-exact

        // STREAMED TIMELINE: conservation laws tie the windowed
        // aggregates back to the run's exact totals, and the streamed
        // view is as deterministic as the run itself (byte-identical
        // across the rerun, which flips serial vs parallel shards).
        const obs::stream::StreamTimeline& tl = r.timeline;
        ASSERT_FALSE(tl.empty()) << tag;
        ASSERT_EQ(tl.to_json().dump(), r2.timeline.to_json().dump()) << tag;
        std::uint64_t w_arrivals = 0;
        std::uint64_t w_completions = 0;
        std::uint64_t w_shed = 0;
        std::uint64_t w_sojourns = 0;
        double w_energy = 0.0;
        double w_wake = 0.0;
        for (const auto& w : tl.windows) {
          w_arrivals += w.arrivals;
          w_completions += w.completions;
          w_shed += w.shed;
          w_sojourns += w.sojourn_count;
          w_energy += w.energy.value();
          w_wake += w.wake.value();
          ASSERT_LE(w.sojourn_p50.value(), w.sojourn_p95.value() + 1e-12)
              << tag << " window=" << w.index;
          ASSERT_LE(w.sojourn_p95.value(), w.sojourn_p99.value() + 1e-12)
              << tag << " window=" << w.index;
          double class_energy = 0.0;
          double class_wake = 0.0;
          for (const auto& c : w.classes) {
            class_energy += c.energy.value();
            class_wake += c.wake.value();
          }
          ASSERT_NEAR(w.energy.value(), class_energy,
                      std::max(1e-9, 1e-9 * w.energy.value()))
              << tag << " window=" << w.index;
          ASSERT_NEAR(w.wake.value(), class_wake,
                      std::max(1e-9, 1e-9 * w.wake.value()))
              << tag << " window=" << w.index;
        }
        EXPECT_EQ(w_arrivals, r.offered) << tag;
        EXPECT_EQ(w_completions, r.completed) << tag;
        EXPECT_EQ(w_shed, r.shed_bucket + r.shed_queue) << tag;
        EXPECT_EQ(w_sojourns, r.completed) << tag;
        // The streamed energy re-integrates to the same exact ledger the
        // power trace proves: windows sum to the trace integral, and with
        // wake lumps added, to the run's exact energy.
        EXPECT_NEAR(w_energy, r.control.trace.energy(r.makespan).value(),
                    std::max(1e-9, 1e-9 * w_energy))
            << tag;
        EXPECT_NEAR(w_energy + w_wake, r.energy.value(),
                    std::max(1e-9, 1e-9 * r.energy.value()))
            << tag;
        EXPECT_NEAR(tl.total_energy.value(), w_energy,
                    std::max(1e-9, 1e-9 * w_energy))
            << tag;
        EXPECT_NEAR(tl.total_wake.value(), w_wake,
                    std::max(1e-9, 1e-9 * std::max(w_wake, 1.0)))
            << tag;

        // FLIGHT RECORDER: every controller tick is in the ledger, with
        // predictions populated and realized effects filled one window
        // later (only a shard's final tick may stay unrealized).
        const obs::stream::FlightRecorder& fr = r.control.flight;
        ASSERT_EQ(fr.size(), r.control.ticks) << tag;
        EXPECT_EQ(fr.dropped(), 0u) << tag;
        std::map<std::uint32_t, std::uint64_t> last_tick;
        for (std::size_t i = 0; i < fr.size(); ++i) {
          const auto& rec = fr.at(i);
          auto [it, fresh] = last_tick.try_emplace(rec.shard, rec.tick);
          if (!fresh) it->second = std::max(it->second, rec.tick);
        }
        for (std::size_t i = 0; i < fr.size(); ++i) {
          const auto& rec = fr.at(i);
          ASSERT_GT(rec.predicted_power.value(), 0.0)
              << tag << " tick=" << rec.tick;
          if (rec.tick < last_tick[rec.shard]) {
            ASSERT_TRUE(rec.realized_valid)
                << tag << " shard=" << rec.shard << " tick=" << rec.tick;
            ASSERT_GT(rec.realized_power.value(), 0.0)
                << tag << " tick=" << rec.tick;
          }
        }

        // SKETCH ACCURACY vs exact order statistics: a randomized
        // (n, epsilon, distribution, shard split) instance per triple —
        // 256 instances across the suite's four seeds.
        {
          Rng srng(seed * 104729 + triples * 53);
          const std::size_t n = 200 + srng.uniform_int(3000);
          const double eps = srng.uniform(0.002, 0.02);
          const std::size_t parts = 1 + triples % 3;
          std::vector<obs::stream::QuantileSketch> shard_sk;
          for (std::size_t p = 0; p < parts; ++p) shard_sk.emplace_back(eps);
          std::vector<double> values;
          values.reserve(n);
          for (std::size_t i = 0; i < n; ++i) {
            double v = 0.0;
            switch (srng.uniform_int(4)) {
              case 0: v = srng.uniform(0.0, 1.0); break;
              case 1: v = static_cast<double>(srng.uniform_int(8)); break;
              case 2: v = srng.exponential(3.0); break;
              default: v = 1e3 + srng.uniform(0.0, 1e3); break;
            }
            values.push_back(v);
            shard_sk[i % parts].insert(v);
          }
          obs::stream::QuantileSketch sk = std::move(shard_sk[0]);
          for (std::size_t p = 1; p < parts; ++p) sk.merge(shard_sk[p]);
          ASSERT_EQ(sk.count(), n) << tag;
          ASSERT_LE(sk.buckets(), obs::stream::QuantileSketch::max_buckets())
              << tag;
          std::vector<double> sorted = values;
          std::sort(sorted.begin(), sorted.end());
          const double dn = static_cast<double>(n);
          for (const double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99}) {
            const double got = sk.quantile(q);
            const auto rank = static_cast<std::size_t>(
                std::clamp(std::ceil(q * dn), 1.0, dn));
            const double exact = sorted[rank - 1];
            ASSERT_NEAR(got, exact, sk.epsilon() * std::abs(exact) + 1e-12)
                << tag << " q=" << q << " n=" << n << " eps=" << eps;
          }
        }

        ++triples;
      }
    }
  }
  // 4 processes x 4 mixes x 4 controllers per seed; the suite-level count
  // (x4 seeds) is the ISSUE's >= 200 triple floor.
  EXPECT_EQ(triples, 64u);
  EXPECT_GT(total_ticks, 0u);
  // The sweep is not vacuous: controllers actually actuated somewhere.
  EXPECT_GT(total_actuations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlledTraffic,
                         ::testing::Values(1, 2, 3, 4));

// -------------------------------------------------------- observability

TEST(ObsInvariants, RandomizedClusterRunsSatisfyAccountingInvariants) {
#if !HCEP_OBS
  GTEST_SKIP() << "simulator instrumentation compiled out (HCEP_OBS=OFF)";
#endif
  // 1000 randomized (cluster, workload, load) configurations; for each:
  //  - every DES event the kernel counted belongs to exactly one of the
  //    simulator's categories (arrival, completion, power step),
  //  - the power trace rebuilt from the *exported* counter events
  //    re-integrates to the run's exact energy within 1e-6 relative,
  //  - job spans in the exported trace are well-formed (never-negative
  //    nesting, balanced, one span per completed job).
  Rng rng(20260807);
  for (int iter = 0; iter < 1000; ++iter) {
    workload::Workload w;
    w.name = "rand";
    w.units_per_job = rng.uniform(1e4, 1e6);
    w.demand["A9"] = workload::NodeDemand{
        rng.uniform(1e3, 1e5), rng.uniform(1e2, 1e5), Bytes{0.0}};
    w.demand["K10"] = workload::NodeDemand{
        rng.uniform(1e3, 1e5), rng.uniform(1e2, 1e5), Bytes{0.0}};
    const model::TimeEnergyModel m(
        model::make_a9_k10_cluster(
            static_cast<unsigned>(1 + rng.uniform_int(4)),
            static_cast<unsigned>(1 + rng.uniform_int(3))),
        w);

    cluster::SimOptions opts;
    opts.utilization = rng.uniform(0.0, 0.9);
    opts.batch_size = static_cast<unsigned>(1 + rng.uniform_int(3));
    opts.min_jobs = 3 + rng.uniform_int(8);
    opts.seed = rng.uniform_int(1u << 30);
    // Synthetic workloads have no calibrated-overheads table row; the
    // invariants are overhead-independent anyway.
    opts.use_testbed_overheads = false;

    obs::Observer o;
    cluster::SimResult r;
    {
      obs::ScopedObserver scope(o);
      r = cluster::simulate(m, opts);
    }
    ASSERT_EQ(o.tracer.dropped(), 0u) << "iter " << iter;

    const obs::MetricsSnapshot snap = o.metrics.snapshot();
    EXPECT_EQ(snap.counter("des.events"),
              snap.counter("sim.arrival_events") +
                  snap.counter("sim.completion_events") +
                  snap.counter("sim.power_events"))
        << "iter " << iter;
    EXPECT_EQ(snap.counter("sim.jobs_arrived"), r.jobs_arrived);
    EXPECT_EQ(snap.counter("sim.jobs_completed"), r.jobs_completed);

    const power::PowerTrace track =
        obs::counter_track(o.tracer, "cluster_W");
    const double exact = r.energy_exact.value();
    EXPECT_NEAR(track.energy(r.window).value(), exact,
                std::max(1e-9, std::abs(exact) * 1e-6))
        << "iter " << iter;

    std::int64_t depth = 0;
    std::uint64_t job_spans = 0;
    for (const auto& ev : o.tracer.events()) {
      if (ev.type == obs::EventType::kBegin) {
        ++depth;
        // Job spans only: per-node execution spans also open here.
        if (o.tracer.string_at(ev.name) == "job") ++job_spans;
      } else if (ev.type == obs::EventType::kEnd) {
        --depth;
        ASSERT_GE(depth, 0) << "iter " << iter;
      }
    }
    EXPECT_EQ(depth, 0) << "iter " << iter;
    EXPECT_EQ(job_spans, r.jobs_completed) << "iter " << iter;
  }
}

}  // namespace
