// Property-based suites: invariants that must hold over randomized inputs
// (random power curves, random demand mixes, random traces), checked over
// many seeds via TEST_P sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "hcep/cluster/simulator.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/obs/power_probe.hpp"
#include "hcep/power/curve.hpp"
#include "hcep/queueing/md1.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/util/math.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/workload/node_ops.hpp"

namespace {

using namespace hcep;

/// Random monotone-nondecreasing power curve with positive peak.
power::PowerCurve random_curve(Rng& rng) {
  const std::size_t knots = 3 + rng.uniform_int(8);
  const double idle = rng.uniform(1.0, 100.0);
  PiecewiseLinear samples;
  double level = idle;
  for (std::size_t i = 0; i < knots; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(knots - 1);
    samples.add(u, level);
    level += rng.uniform(0.0, 40.0);
  }
  return power::PowerCurve::sampled(std::move(samples));
}

class RandomCurves : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCurves, EpmEqualsOneMinusTwicePgWeightedArea) {
  // Identity relating the two families of metrics:
  //   EPM = 1 - 2 * Int_0^1 PG(u) * u du
  // (both sides measure the normalized area between P(u)/P_peak and the
  // ideal line).
  Rng rng(GetParam());
  const auto curve = random_curve(rng);
  const double pg_area = trapezoid(
      [&](double u) {
        return u < 1e-9 ? 0.0 : metrics::pg(curve, u) * u;
      },
      1e-9, 1.0, 4000);
  EXPECT_NEAR(metrics::epm(curve), 1.0 - 2.0 * pg_area, 1e-3);
}

TEST_P(RandomCurves, MetricRangesAndEndpoints) {
  Rng rng(GetParam() ^ 0xabcdULL);
  const auto curve = random_curve(rng);
  const double i = metrics::ipr(curve);
  EXPECT_GE(i, 0.0);
  EXPECT_LE(i, 1.0);
  EXPECT_NEAR(metrics::dpr(curve), (1.0 - i) * 100.0, 1e-9);
  // PG at u=1 vanishes by construction (power normalized by P(1)).
  EXPECT_NEAR(metrics::pg(curve, 1.0), 0.0, 1e-12);
  // EPM of a monotone curve with idle >= 0 stays within [0 - eps, 2].
  EXPECT_GT(metrics::epm(curve), -1e-9);
  EXPECT_LT(metrics::epm(curve), 2.0);
}

TEST_P(RandomCurves, SumPreservesIpBounds) {
  // Cluster composition: the IPR of a sum of curves lies between the
  // member IPRs (weighted mediant property).
  Rng rng(GetParam() ^ 0x1234ULL);
  const auto a = random_curve(rng);
  const auto b = random_curve(rng);
  const double ia = metrics::ipr(a);
  const double ib = metrics::ipr(b);
  const double isum = metrics::ipr(a + b);
  EXPECT_GE(isum, std::min(ia, ib) - 1e-9);
  EXPECT_LE(isum, std::max(ia, ib) + 1e-9);
}

TEST_P(RandomCurves, ScalingLeavesNormalizedMetricsInvariant) {
  Rng rng(GetParam() ^ 0x5678ULL);
  const auto curve = random_curve(rng);
  const auto scaled = curve.scaled(rng.uniform(2.0, 50.0));
  EXPECT_NEAR(metrics::ipr(curve), metrics::ipr(scaled), 1e-9);
  EXPECT_NEAR(metrics::epm(curve), metrics::epm(scaled), 1e-9);
  EXPECT_NEAR(metrics::pg(curve, 0.4), metrics::pg(scaled, 0.4), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCurves,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---------------------------------------------------------------- model

class RandomMixes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMixes, ThroughputAdditiveAndTimeConsistent) {
  // For random demands and random mixes: cluster throughput is the sum of
  // group rates, and T_P * throughput == work.
  Rng rng(GetParam());
  workload::Workload w;
  w.name = "random";
  w.units_per_job = rng.uniform(1e4, 1e7);
  w.demand["A9"] = workload::NodeDemand{
      rng.uniform(1e3, 1e6), rng.uniform(1e2, 1e6),
      Bytes{rng.uniform(0.0, 100.0)}};
  w.demand["K10"] = workload::NodeDemand{
      rng.uniform(1e3, 1e6), rng.uniform(1e2, 1e6),
      Bytes{rng.uniform(0.0, 100.0)}};

  const auto n_a9 = static_cast<unsigned>(1 + rng.uniform_int(16));
  const auto n_k10 = static_cast<unsigned>(1 + rng.uniform_int(8));
  model::TimeEnergyModel m(model::make_a9_k10_cluster(n_a9, n_k10), w);

  const double thr_a9 =
      workload::unit_throughput(w.demand_for("A9"), hw::cortex_a9(),
                                hw::cortex_a9().cores,
                                hw::cortex_a9().dvfs.max()) *
      n_a9;
  const double thr_k10 =
      workload::unit_throughput(w.demand_for("K10"), hw::opteron_k10(),
                                hw::opteron_k10().cores,
                                hw::opteron_k10().dvfs.max()) *
      n_k10;
  EXPECT_NEAR(m.peak_throughput(), thr_a9 + thr_k10,
              (thr_a9 + thr_k10) * 1e-9);

  const auto t = m.execution_time(w.units_per_job);
  EXPECT_NEAR(t.t_p.value() * m.peak_throughput(), w.units_per_job,
              w.units_per_job * 1e-6);
}

TEST_P(RandomMixes, EnergyBoundedByPowerEnvelope) {
  Rng rng(GetParam() ^ 0x9999ULL);
  workload::Workload w;
  w.name = "random";
  w.units_per_job = rng.uniform(1e4, 1e6);
  w.demand["A9"] = workload::NodeDemand{rng.uniform(1e3, 1e5),
                                        rng.uniform(1e2, 1e5), Bytes{0.0}};
  w.demand["K10"] = workload::NodeDemand{rng.uniform(1e3, 1e5),
                                         rng.uniform(1e2, 1e5), Bytes{0.0}};
  model::TimeEnergyModel m(model::make_a9_k10_cluster(3, 2), w);
  const auto t = m.execution_time(w.units_per_job).t_p;
  const auto e = m.job_energy(w.units_per_job).e_p;
  EXPECT_GE(e.value(), (m.idle_power() * t).value() * (1.0 - 1e-9));
  EXPECT_LE(e.value(), (m.busy_power() * t).value() * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMixes,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ------------------------------------------------------------- queueing

class RandomQueues : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomQueues, CdfMonotoneAndPercentileConsistent) {
  Rng rng(GetParam());
  const Seconds d{rng.uniform(1e-3, 2.0)};
  const double rho = rng.uniform(0.05, 0.93);
  const queueing::MD1 q = queueing::MD1::from_utilization(d, rho);

  double prev = -1.0;
  for (double k = 0.0; k <= 12.0; k += 0.25) {
    const double c = q.wait_cdf(d * k);
    EXPECT_GE(c, prev - 1e-8) << "k=" << k;
    prev = c;
  }
  for (double p : {60.0, 90.0, 99.0}) {
    const Seconds t = q.wait_percentile(p);
    EXPECT_GE(q.wait_cdf(t), p / 100.0 - 1e-5);
  }
  // M/M/1 with equal mean waits more: deterministic service dominates.
  const queueing::MM1 mm1(d, rho / d.value());
  EXPECT_GE(mm1.mean_wait().value(), q.mean_wait().value() - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueues,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------- arrival generators

/// First `n` arrival instants of a pristine clone under a fresh seed.
std::vector<double> draw_arrivals(const traffic::ArrivalProcess& process,
                                  std::size_t n, std::uint64_t seed) {
  auto gen = process.clone();
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  Seconds t{0.0};
  while (out.size() < n) {
    t = gen->next(t, rng);
    if (std::isinf(t.value())) break;
    out.push_back(t.value());
  }
  return out;
}

/// The generator catalog exercised by the properties below.
std::vector<std::unique_ptr<traffic::ArrivalProcess>> generator_catalog() {
  std::vector<std::unique_ptr<traffic::ArrivalProcess>> out;
  out.push_back(traffic::make_poisson(80.0));
  out.push_back(traffic::make_deterministic(80.0));
  out.push_back(traffic::make_bursty(30.0, Seconds{2.0}, 300.0,
                                     Seconds{0.2}));
  out.push_back(traffic::make_diurnal(100.0, 0.6, Seconds{20.0}));
  out.push_back(traffic::make_replay(
      {Seconds{0.1}, Seconds{0.4}, Seconds{0.5}, Seconds{0.9}},
      /*loop=*/true));
  return out;
}

class ArrivalGenerators : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArrivalGenerators, EmpiricalRateConvergesToDeclaredMeanRate) {
  for (const auto& gen : generator_catalog()) {
    const auto t = draw_arrivals(*gen, 50000, GetParam());
    ASSERT_EQ(t.size(), 50000u) << gen->name();
    const double span = t.back() - t.front();
    ASSERT_GT(span, 0.0) << gen->name();
    const double empirical = static_cast<double>(t.size() - 1) / span;
    // 10%: wide enough for the MMPP's slow (per-dwell-cycle) mixing.
    EXPECT_NEAR(empirical, gen->mean_rate_per_s(),
                0.10 * gen->mean_rate_per_s())
        << gen->name();
  }
}

TEST_P(ArrivalGenerators, ArrivalInstantsAreStrictlyOrdered) {
  for (const auto& gen : generator_catalog()) {
    const auto t = draw_arrivals(*gen, 5000, GetParam());
    for (std::size_t i = 1; i < t.size(); ++i)
      ASSERT_GE(t[i], t[i - 1]) << gen->name() << " i=" << i;
    EXPECT_GE(t.front(), 0.0) << gen->name();
  }
}

TEST_P(ArrivalGenerators, SameSeedStreamsAreIdentical) {
  for (const auto& gen : generator_catalog()) {
    const auto a = draw_arrivals(*gen, 20000, GetParam());
    const auto b = draw_arrivals(*gen, 20000, GetParam());
    ASSERT_EQ(a.size(), b.size()) << gen->name();
    for (std::size_t i = 0; i < a.size(); ++i)
      ASSERT_EQ(a[i], b[i]) << gen->name() << " i=" << i;  // bit-exact
  }
}

TEST_P(ArrivalGenerators, DifferentSeedsProduceDifferentStochasticStreams) {
  for (const auto& gen : generator_catalog()) {
    if (gen->name() == "deterministic" || gen->name() == "replay")
      continue;  // seed-independent by design
    const auto a = draw_arrivals(*gen, 100, GetParam());
    const auto b = draw_arrivals(*gen, 100, GetParam() + 1);
    EXPECT_NE(a, b) << gen->name();
  }
}

TEST_P(ArrivalGenerators, PoissonInterArrivalsAreExponentialAndIndependent) {
  const double rate = 80.0;
  const auto t = draw_arrivals(*traffic::make_poisson(rate), 50000,
                               GetParam());
  std::vector<double> gaps;
  gaps.reserve(t.size());
  gaps.push_back(t.front());
  for (std::size_t i = 1; i < t.size(); ++i)
    gaps.push_back(t[i] - t[i - 1]);

  const auto n = static_cast<double>(gaps.size());
  double sum = 0.0;
  for (const double g : gaps) sum += g;
  const double mean = sum / n;
  double var = 0.0;
  for (const double g : gaps) var += (g - mean) * (g - mean);
  var /= n - 1.0;

  // Exponential(rate): mean 1/rate, coefficient of variation exactly 1.
  EXPECT_NEAR(mean, 1.0 / rate, 0.03 / rate);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);

  // Independence: lag-1 autocorrelation of the gap sequence vanishes
  // (SE = 1/sqrt(n) ~ 0.0045; 0.03 is a >6-sigma gate).
  double lag1 = 0.0;
  for (std::size_t i = 1; i < gaps.size(); ++i)
    lag1 += (gaps[i] - mean) * (gaps[i - 1] - mean);
  lag1 /= (n - 1.0) * var;
  EXPECT_LT(std::abs(lag1), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrivalGenerators,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// -------------------------------------------------------- observability

TEST(ObsInvariants, RandomizedClusterRunsSatisfyAccountingInvariants) {
#if !HCEP_OBS
  GTEST_SKIP() << "simulator instrumentation compiled out (HCEP_OBS=OFF)";
#endif
  // 1000 randomized (cluster, workload, load) configurations; for each:
  //  - every DES event the kernel counted belongs to exactly one of the
  //    simulator's categories (arrival, completion, power step),
  //  - the power trace rebuilt from the *exported* counter events
  //    re-integrates to the run's exact energy within 1e-6 relative,
  //  - job spans in the exported trace are well-formed (never-negative
  //    nesting, balanced, one span per completed job).
  Rng rng(20260807);
  for (int iter = 0; iter < 1000; ++iter) {
    workload::Workload w;
    w.name = "rand";
    w.units_per_job = rng.uniform(1e4, 1e6);
    w.demand["A9"] = workload::NodeDemand{
        rng.uniform(1e3, 1e5), rng.uniform(1e2, 1e5), Bytes{0.0}};
    w.demand["K10"] = workload::NodeDemand{
        rng.uniform(1e3, 1e5), rng.uniform(1e2, 1e5), Bytes{0.0}};
    const model::TimeEnergyModel m(
        model::make_a9_k10_cluster(
            static_cast<unsigned>(1 + rng.uniform_int(4)),
            static_cast<unsigned>(1 + rng.uniform_int(3))),
        w);

    cluster::SimOptions opts;
    opts.utilization = rng.uniform(0.0, 0.9);
    opts.batch_size = static_cast<unsigned>(1 + rng.uniform_int(3));
    opts.min_jobs = 3 + rng.uniform_int(8);
    opts.seed = rng.uniform_int(1u << 30);
    // Synthetic workloads have no calibrated-overheads table row; the
    // invariants are overhead-independent anyway.
    opts.use_testbed_overheads = false;

    obs::Observer o;
    cluster::SimResult r;
    {
      obs::ScopedObserver scope(o);
      r = cluster::simulate(m, opts);
    }
    ASSERT_EQ(o.tracer.dropped(), 0u) << "iter " << iter;

    const obs::MetricsSnapshot snap = o.metrics.snapshot();
    EXPECT_EQ(snap.counter("des.events"),
              snap.counter("sim.arrival_events") +
                  snap.counter("sim.completion_events") +
                  snap.counter("sim.power_events"))
        << "iter " << iter;
    EXPECT_EQ(snap.counter("sim.jobs_arrived"), r.jobs_arrived);
    EXPECT_EQ(snap.counter("sim.jobs_completed"), r.jobs_completed);

    const power::PowerTrace track =
        obs::counter_track(o.tracer, "cluster_W");
    const double exact = r.energy_exact.value();
    EXPECT_NEAR(track.energy(r.window).value(), exact,
                std::max(1e-9, std::abs(exact) * 1e-6))
        << "iter " << iter;

    std::int64_t depth = 0;
    std::uint64_t job_spans = 0;
    for (const auto& ev : o.tracer.events()) {
      if (ev.type == obs::EventType::kBegin) {
        ++depth;
        // Job spans only: per-node execution spans also open here.
        if (o.tracer.string_at(ev.name) == "job") ++job_spans;
      } else if (ev.type == obs::EventType::kEnd) {
        --depth;
        ASSERT_GE(depth, 0) << "iter " << iter;
      }
    }
    EXPECT_EQ(depth, 0) << "iter " << iter;
    EXPECT_EQ(job_spans, r.jobs_completed) << "iter " << iter;
  }
}

}  // namespace
