// KnightShift composite-node analysis (extension).
#include <gtest/gtest.h>

#include "hcep/analysis/knightshift.hpp"
#include "hcep/analysis/single_node.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::analysis;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

TEST(KnightShift, ThresholdIsCapacityRatio) {
  const auto r = analyze_knightshift(wl("EP"));
  // EP: A9 ~14.7M units/s, K10 ~98M units/s -> threshold ~0.15.
  EXPECT_GT(r.switch_threshold, 0.05);
  EXPECT_LT(r.switch_threshold, 0.5);
  EXPECT_GT(r.peak_throughput, 0.0);
}

TEST(KnightShift, LowUtilizationPowerIsKnightClass) {
  const auto spec = default_knightshift();
  const auto r = analyze_knightshift(wl("EP"), spec);
  // Below the threshold only the knight + sleeping primary draw power:
  // single-digit watts instead of the K10's 45 W idle floor.
  const Watts low = r.curve.at(r.switch_threshold * 0.5);
  EXPECT_LT(low.value(), 10.0);
  EXPECT_GE(low.value(),
            (spec.knight.power.idle + spec.primary_sleep).value());
}

TEST(KnightShift, WakeStepIsVisible) {
  const auto r = analyze_knightshift(wl("EP"));
  const Watts before = r.curve.at(r.switch_threshold * 0.99);
  const Watts after = r.curve.at(r.switch_threshold + 1e-3);
  EXPECT_GT(after.value(), before.value() + 30.0);  // the K10 wakes
}

TEST(KnightShift, MoreProportionalThanBareBrawnyNode) {
  // The whole point of KnightShift: the composite's EPM beats the bare
  // K10's because the idle floor collapses at low utilization.
  const auto ks = analyze_knightshift(wl("EP"));
  const auto k10 = analyze_single_node(wl("EP"), hw::opteron_k10());
  EXPECT_GT(ks.report.epm, k10.report.epm);
  EXPECT_LT(ks.report.ipr, k10.report.ipr);
}

TEST(KnightShift, LiteralLdrIsInformative) {
  // The composite curve is non-linear, so the literal Table 3 LDR is
  // non-zero (unlike every linear profile in the paper).
  const auto r = analyze_knightshift(wl("EP"));
  EXPECT_GT(std::abs(r.report.ldr_literal), 0.05);
}

TEST(KnightShift, WorksForEveryProgram) {
  for (const auto& name : workload::program_names()) {
    const auto r = analyze_knightshift(wl(name));
    EXPECT_GT(r.switch_threshold, 0.0) << name;
    EXPECT_LT(r.switch_threshold, 1.0) << name;
    EXPECT_GT(r.report.epm, 0.0) << name;
    // Curve endpoints: composite idle far below primary idle; peak above
    // primary busy-at-full minus the knight shadow.
    EXPECT_LT(r.curve.idle().value(), 10.0) << name;
    EXPECT_GT(r.curve.peak().value(), 45.0) << name;
  }
}

TEST(KnightShift, RejectsInvertedRoles) {
  KnightShiftSpec spec = default_knightshift();
  std::swap(spec.knight, spec.primary);  // brawny "knight"
  EXPECT_THROW((void)analyze_knightshift(wl("EP"), spec),
               PreconditionError);
}

TEST(KnightShift, RejectsMissingDemand) {
  KnightShiftSpec spec = default_knightshift();
  spec.knight = hw::cortex_a15();  // not characterized in paper catalog
  EXPECT_THROW((void)analyze_knightshift(wl("EP"), spec),
               PreconditionError);
}

}  // namespace
