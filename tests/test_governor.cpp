// DVFS governor study (extension): race-to-idle vs pacing. The offline
// study is cross-checked by the closed-loop section below: the
// control::DvfsGovernor makes the same pace-vs-race trade online, from
// DES-clock ticks under live traffic, with assertions derived from the
// ledger rather than from wall-clock positions.
#include <gtest/gtest.h>

#include <memory>

#include "hcep/analysis/governor.hpp"
#include "hcep/control/controllers.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::analysis;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

TEST(Governor, PacingNeverWorseThanRacing) {
  // Race-to-idle is itself one of the candidate operating points, so the
  // pacing optimum can only match or beat it.
  const auto r = run_governor_study(wl("EP"));
  for (const auto& pt : r.points) {
    EXPECT_LE(pt.pace_power.value(), pt.race_power.value() + 1e-9)
        << "u=" << pt.utilization;
    EXPECT_GE(pt.saving_percent, -1e-9);
  }
}

TEST(Governor, FullLoadLeavesNoPacingRoom) {
  const auto r = run_governor_study(wl("EP"));
  const auto& last = r.points.back();
  ASSERT_DOUBLE_EQ(last.utilization, 1.0);
  // At u=1 only the fastest point covers the demand.
  EXPECT_NEAR(last.pace_power.value(), last.race_power.value(),
              last.race_power.value() * 1e-9);
  EXPECT_NEAR(last.saving_percent, 0.0, 1e-6);
}

TEST(Governor, LowUtilizationSavesMost) {
  const auto r = run_governor_study(wl("blackscholes"));
  // Savings shrink (weakly) as utilization rises toward capacity.
  EXPECT_GT(r.points.front().saving_percent,
            r.points.back().saving_percent);
  EXPECT_GT(r.points.front().saving_percent, 1.0);  // pacing pays at 10 %
}

TEST(Governor, PacingImprovesProportionality) {
  const auto r = run_governor_study(wl("EP"));
  EXPECT_GE(r.pace_report.epm, r.race_report.epm - 1e-9);
  // The pacing curve lies at or below the race curve pointwise.
  for (double u = 0.1; u <= 1.0; u += 0.1) {
    EXPECT_LE(r.pace_curve.at(u).value(),
              r.race_curve.at(u).value() + 1e-6)
        << "u=" << u;
  }
}

TEST(Governor, ChosenPointsHaveLabels) {
  const auto r = run_governor_study(wl("EP"));
  for (const auto& pt : r.points) EXPECT_FALSE(pt.pace_label.empty());
}

TEST(Governor, HomogeneousMixesWork) {
  GovernorStudyOptions opts;
  opts.mix = {6, 0};
  const auto a9_only = run_governor_study(wl("EP"), opts);
  EXPECT_EQ(a9_only.points.size(), 10u);
  opts.mix = {0, 3};
  const auto k10_only = run_governor_study(wl("EP"), opts);
  EXPECT_EQ(k10_only.points.size(), 10u);
}

TEST(Governor, CustomGridRespected) {
  GovernorStudyOptions opts;
  opts.utilizations = {0.25, 0.75};
  const auto r = run_governor_study(wl("EP"), opts);
  ASSERT_EQ(r.points.size(), 2u);
  EXPECT_DOUBLE_EQ(r.points[0].utilization, 0.25);
  EXPECT_DOUBLE_EQ(r.points[1].utilization, 0.75);
  // The pace curve must still cover [0, 1] for the metric suite.
  EXPECT_NO_THROW((void)metrics::analyze(r.pace_curve));
}

TEST(Governor, Validation) {
  GovernorStudyOptions opts;
  opts.mix = {0, 0};
  EXPECT_THROW((void)run_governor_study(wl("EP"), opts), PreconditionError);
  opts.mix = {2, 1};
  opts.utilizations = {0.0};
  EXPECT_THROW((void)run_governor_study(wl("EP"), opts), PreconditionError);
  opts.utilizations = {1.5};
  EXPECT_THROW((void)run_governor_study(wl("EP"), opts), PreconditionError);
}

// ----------------------------------------------- closed-loop cross-check

struct GovernorRun {
  traffic::TrafficResult result;
  Seconds slo{};
};

/// One governed (or open-loop) run at `utilization` of cluster capacity,
/// with an SLO sized in service-times so the scenario is load-derived.
GovernorRun governed_run(double utilization, double latency_headroom,
                         bool governed) {
  const auto cluster = model::make_a9_k10_cluster(6, 3);
  const double capacity = traffic::cluster_capacity_per_s(
      cluster, {traffic::TrafficClass{wl("EP"), 1.0, traffic::SloTarget{}}});
  const Seconds slo{600.0 / capacity};
  const std::vector<traffic::TrafficClass> classes = {
      traffic::TrafficClass{wl("EP"), 1.0, traffic::SloTarget{slo, 0.99}}};

  traffic::TrafficOptions opts;
  opts.requests = 4000;
  opts.seed = 1234;
  if (governed) {
    opts.control.controller = control::make_dvfs_governor(
        {.latency_headroom = latency_headroom});
    opts.control.period = Seconds{25.0 / capacity};
  }
  const auto arrivals = traffic::make_poisson(utilization * capacity);
  return {traffic::simulate_traffic(cluster, classes, *arrivals, opts),
          slo};
}

TEST(GovernorClosedLoop, PacingSavesEnergyAtLowUtilization) {
  // The online analogue of LowUtilizationSavesMost: with the cluster
  // mostly idle, the governor drops to slower points and spends less.
  const auto open = governed_run(0.2, 0.5, false);
  const auto paced = governed_run(0.2, 0.5, true);
  EXPECT_EQ(paced.result.completed, open.result.completed);
  EXPECT_GT(paced.result.control.point_changes, 0u);
  EXPECT_EQ(paced.result.control.sleeps, 0u);  // DVFS never parks nodes
  EXPECT_LT(paced.result.energy.value(), open.result.energy.value());
  // Pacing is latency-aware, not latency-free: p99 stays under the SLO.
  EXPECT_LE(paced.result.sojourn.p99.value(), paced.slo.value());
}

TEST(GovernorClosedLoop, HighUtilizationLeavesNoPacingRoom) {
  // FullLoadLeavesNoPacingRoom + LowUtilizationSavesMost, online: near
  // capacity the queue-aware prediction keeps choosing fast points, so
  // the governed run tracks the open loop (savings collapse toward zero)
  // while a mostly-idle cluster still yields real savings.
  const auto open = governed_run(0.85, 0.2, false);
  const auto paced = governed_run(0.85, 0.2, true);
  EXPECT_EQ(paced.result.completed, open.result.completed);
  EXPECT_LE(paced.result.sojourn.p99.value(), paced.slo.value());
  // Whatever pacing it found must not have cost energy overall.
  EXPECT_LE(paced.result.energy.value(),
            open.result.energy.value() * 1.001);

  const auto open_low = governed_run(0.2, 0.2, false);
  const auto paced_low = governed_run(0.2, 0.2, true);
  const double save_high =
      1.0 - paced.result.energy.value() / open.result.energy.value();
  const double save_low =
      1.0 - paced_low.result.energy.value() / open_low.result.energy.value();
  EXPECT_GT(save_low, save_high + 0.02);
}

TEST(GovernorClosedLoop, HeadroomOrdersTheTrade) {
  // Smaller headroom fraction = tighter effective target = faster
  // points. Faster points win on BOTH axes for this fleet: lower tail
  // latency by construction, and lower total energy too — the
  // race-to-idle lesson, online: slower points stretch the busy horizon
  // and pay the idle floor for longer than their dynamic-power saving.
  const auto conservative = governed_run(0.3, 0.2, true);
  const auto relaxed = governed_run(0.3, 0.9, true);
  EXPECT_LE(conservative.result.sojourn.p99.value(),
            relaxed.result.sojourn.p99.value());
  EXPECT_LE(conservative.result.energy.value(),
            relaxed.result.energy.value());
  // Both stay inside the SLO at this load.
  EXPECT_LE(relaxed.result.sojourn.p99.value(), relaxed.slo.value());
}

TEST(GovernorClosedLoop, DeterministicForFixedSeed) {
  const auto a = governed_run(0.4, 0.5, true);
  const auto b = governed_run(0.4, 0.5, true);
  EXPECT_EQ(a.result.to_json().dump(), b.result.to_json().dump());
  EXPECT_EQ(a.result.control.to_json().dump(),
            b.result.control.to_json().dump());
}

}  // namespace
