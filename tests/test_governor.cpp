// DVFS governor study (extension): race-to-idle vs pacing.
#include <gtest/gtest.h>

#include "hcep/analysis/governor.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::analysis;

const workload::Workload& wl(const std::string& name) {
  static const auto kCatalog = workload::paper_workloads();
  for (const auto& w : kCatalog)
    if (w.name == name) return w;
  throw std::runtime_error("missing workload " + name);
}

TEST(Governor, PacingNeverWorseThanRacing) {
  // Race-to-idle is itself one of the candidate operating points, so the
  // pacing optimum can only match or beat it.
  const auto r = run_governor_study(wl("EP"));
  for (const auto& pt : r.points) {
    EXPECT_LE(pt.pace_power.value(), pt.race_power.value() + 1e-9)
        << "u=" << pt.utilization;
    EXPECT_GE(pt.saving_percent, -1e-9);
  }
}

TEST(Governor, FullLoadLeavesNoPacingRoom) {
  const auto r = run_governor_study(wl("EP"));
  const auto& last = r.points.back();
  ASSERT_DOUBLE_EQ(last.utilization, 1.0);
  // At u=1 only the fastest point covers the demand.
  EXPECT_NEAR(last.pace_power.value(), last.race_power.value(),
              last.race_power.value() * 1e-9);
  EXPECT_NEAR(last.saving_percent, 0.0, 1e-6);
}

TEST(Governor, LowUtilizationSavesMost) {
  const auto r = run_governor_study(wl("blackscholes"));
  // Savings shrink (weakly) as utilization rises toward capacity.
  EXPECT_GT(r.points.front().saving_percent,
            r.points.back().saving_percent);
  EXPECT_GT(r.points.front().saving_percent, 1.0);  // pacing pays at 10 %
}

TEST(Governor, PacingImprovesProportionality) {
  const auto r = run_governor_study(wl("EP"));
  EXPECT_GE(r.pace_report.epm, r.race_report.epm - 1e-9);
  // The pacing curve lies at or below the race curve pointwise.
  for (double u = 0.1; u <= 1.0; u += 0.1) {
    EXPECT_LE(r.pace_curve.at(u).value(),
              r.race_curve.at(u).value() + 1e-6)
        << "u=" << u;
  }
}

TEST(Governor, ChosenPointsHaveLabels) {
  const auto r = run_governor_study(wl("EP"));
  for (const auto& pt : r.points) EXPECT_FALSE(pt.pace_label.empty());
}

TEST(Governor, HomogeneousMixesWork) {
  GovernorStudyOptions opts;
  opts.mix = {6, 0};
  const auto a9_only = run_governor_study(wl("EP"), opts);
  EXPECT_EQ(a9_only.points.size(), 10u);
  opts.mix = {0, 3};
  const auto k10_only = run_governor_study(wl("EP"), opts);
  EXPECT_EQ(k10_only.points.size(), 10u);
}

TEST(Governor, CustomGridRespected) {
  GovernorStudyOptions opts;
  opts.utilizations = {0.25, 0.75};
  const auto r = run_governor_study(wl("EP"), opts);
  ASSERT_EQ(r.points.size(), 2u);
  EXPECT_DOUBLE_EQ(r.points[0].utilization, 0.25);
  EXPECT_DOUBLE_EQ(r.points[1].utilization, 0.75);
  // The pace curve must still cover [0, 1] for the metric suite.
  EXPECT_NO_THROW((void)metrics::analyze(r.pace_curve));
}

TEST(Governor, Validation) {
  GovernorStudyOptions opts;
  opts.mix = {0, 0};
  EXPECT_THROW((void)run_governor_study(wl("EP"), opts), PreconditionError);
  opts.mix = {2, 1};
  opts.utilizations = {0.0};
  EXPECT_THROW((void)run_governor_study(wl("EP"), opts), PreconditionError);
  opts.utilizations = {1.5};
  EXPECT_THROW((void)run_governor_study(wl("EP"), opts), PreconditionError);
}

}  // namespace
