// Configuration space, power budgets, Pareto frontier.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hcep/config/budget.hpp"
#include "hcep/config/pareto.hpp"
#include "hcep/config/space.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::config;
using namespace hcep::literals;

const workload::Workload& ep() {
  static const workload::Workload kEp = workload::make_workload("EP");
  return kEp;
}

TEST(ConfigSpace, Footnote4CountIs36380) {
  // 10 ARM x 5 freq x 4 cores and 10 AMD x 3 freq x 6 cores:
  // 36,000 mixed + 200 ARM-only + 180 AMD-only = 36,380.
  const ConfigSpace space = make_a9_k10_space(10, 10);
  EXPECT_EQ(space.size(), 36380u);
}

TEST(ConfigSpace, SingleTypeCounts) {
  EXPECT_EQ(make_a9_k10_space(10, 0).size(), 200u);  // 10 x 4 x 5
  EXPECT_EQ(make_a9_k10_space(0, 10).size(), 180u);  // 10 x 6 x 3
  EXPECT_EQ(make_a9_k10_space(1, 1).size(),
            20u + 18u + 20u * 18u);
}

TEST(ConfigSpace, EveryDecodedConfigIsValid) {
  const ConfigSpace space = make_a9_k10_space(2, 2);
  std::set<std::string> signatures;
  space.for_each([&](const model::ClusterSpec& cfg, std::uint64_t) {
    cfg.validate();
    std::string sig;
    for (const auto& g : cfg.groups) {
      sig += g.spec.name + ":" + std::to_string(g.count) + ":" +
             std::to_string(g.cores()) + ":" +
             std::to_string(g.freq().value()) + ";";
    }
    const bool inserted = signatures.insert(sig).second;
    EXPECT_TRUE(inserted) << "duplicate configuration " << sig;
  });
  EXPECT_EQ(signatures.size(), space.size());
}

TEST(ConfigSpace, IndexDecodeIsStable) {
  const ConfigSpace space = make_a9_k10_space(3, 2);
  for (std::uint64_t i : std::vector<std::uint64_t>{0, 7, space.size() - 1}) {
    const model::ClusterSpec a = space.config_at(i);
    const model::ClusterSpec b = space.config_at(i);
    EXPECT_EQ(a.label(), b.label());
  }
  EXPECT_THROW((void)space.config_at(space.size()), PreconditionError);
}

TEST(ConfigSpace, CustomCoreAndFrequencyChoices) {
  TypeOptions t{hw::cortex_a9(), 2, {2, 4}, {0.8_GHz, 1.4_GHz}, {}};
  EXPECT_EQ(t.tuples(), 2u * 2u * 2u);
  const ConfigSpace space({t});
  EXPECT_EQ(space.size(), 8u);
  space.for_each([&](const model::ClusterSpec& cfg, std::uint64_t) {
    ASSERT_EQ(cfg.groups.size(), 1u);
    EXPECT_TRUE(cfg.groups[0].cores() == 2 || cfg.groups[0].cores() == 4);
  });
}

TEST(ConfigSpace, RejectsInvalidOptions) {
  EXPECT_THROW(ConfigSpace({}), PreconditionError);
  TypeOptions bad_core{hw::cortex_a9(), 2, {9}, {}, {}};
  EXPECT_THROW(ConfigSpace({bad_core}), PreconditionError);
  TypeOptions bad_freq{hw::cortex_a9(), 2, {}, {9_GHz}, {}};
  EXPECT_THROW(ConfigSpace({bad_freq}), PreconditionError);
}

TEST(Budget, SubstitutionRatioIsEight) {
  EXPECT_EQ(substitution_ratio(), 8u);
}

TEST(Budget, MixNameplateAccounting) {
  EXPECT_DOUBLE_EQ(mix_nameplate_power(0, 16).value(), 960.0);
  EXPECT_DOUBLE_EQ(mix_nameplate_power(32, 12).value(),
                   160.0 + 80.0 + 720.0);
  EXPECT_DOUBLE_EQ(mix_nameplate_power(128, 0).value(), 640.0 + 320.0);
}

TEST(Budget, PaperMixesAreTheFiveFromFigure7) {
  const auto mixes = paper_budget_mixes();
  ASSERT_EQ(mixes.size(), 5u);
  EXPECT_EQ(mixes[0].label(), "16K10");
  EXPECT_EQ(mixes[1].label(), "32A9:12K10");
  EXPECT_EQ(mixes[2].label(), "64A9:8K10");
  EXPECT_EQ(mixes[3].label(), "96A9:4K10");
  EXPECT_EQ(mixes[4].label(), "128A9");
  for (const auto& m : mixes) {
    EXPECT_LE(m.nameplate_power().value(), 1000.0) << m.label();
  }
}

TEST(Budget, GeneralBudgetsRespectTheCap) {
  for (double budget : {300.0, 500.0, 2000.0}) {
    const auto mixes = budget_mixes(Watts{budget}, 2);
    EXPECT_FALSE(mixes.empty());
    for (const auto& m : mixes)
      EXPECT_LE(m.nameplate_power().value(), budget) << m.label();
  }
  EXPECT_THROW((void)budget_mixes(10_W), PreconditionError);  // < one K10
  EXPECT_THROW((void)budget_mixes(1_kW, 0), PreconditionError);
}

TEST(Budget, GeneralizedMixesForOtherNodePairs) {
  // The footnote-3 derivation generalizes: A15 (12 W + 2.5 W switch
  // share) vs XeonE5 (130 W) gives ratio floor(130/14.5) = 8.
  const auto wimpy = hw::cortex_a15();
  const auto brawny = hw::xeon_e5();
  EXPECT_EQ(substitution_ratio_for(wimpy, brawny), 8u);
  // And the paper pair reproduces its own ratio through the generic path.
  EXPECT_EQ(substitution_ratio_for(hw::cortex_a9(), hw::opteron_k10()), 8u);

  const auto mixes = budget_mixes_for(wimpy, brawny, Watts{1000.0}, 2);
  ASSERT_GE(mixes.size(), 3u);
  for (const auto& mix : mixes) {
    mix.validate();
    EXPECT_LE(mix.nameplate_power().value(), 1000.0) << mix.label();
  }
  // Endpoints: all-brawny first, all-wimpy last.
  EXPECT_EQ(mixes.front().groups.back().spec.name, "XeonE5");
  EXPECT_EQ(mixes.back().groups.front().spec.name, "A15");

  EXPECT_THROW(
      (void)substitution_ratio_for(hw::opteron_k10(), hw::cortex_a9()),
      PreconditionError);
  EXPECT_THROW((void)budget_mixes_for(wimpy, brawny, Watts{10.0}),
               PreconditionError);
}

TEST(EvaluateSpace, EvaluatesEveryConfiguration) {
  const ConfigSpace space = make_a9_k10_space(2, 1);
  const auto evals = evaluate_space(space, ep());
  ASSERT_EQ(evals.size(), space.size());
  for (std::size_t i = 0; i < evals.size(); ++i) {
    EXPECT_GT(evals.time(i).value(), 0.0);
    EXPECT_GT(evals.energy(i).value(), 0.0);
    EXPECT_GT(evals.busy_power(i), evals.idle_power(i));
  }
}

TEST(EvaluateSpace, FastPathMatchesNaiveOracle) {
  // The memoized table is built from the same workload primitives the
  // per-config TimeEnergyModel uses and the fused evaluator repeats its
  // floating-point grouping, so the two paths agree to ~machine epsilon.
  // Sampled across the full footnote-4 space (36,380 configurations).
  const ConfigSpace space = make_a9_k10_space(10, 10);
  ASSERT_EQ(space.size(), 36380u);
  const auto fast = evaluate_space(space, ep());

  std::uint64_t checked = 0;
  for (std::uint64_t i = 0; i < space.size(); i += 29) {  // 1255 samples
    model::ClusterSpec cfg = space.config_at(i);
    model::TimeEnergyModel m(cfg, ep());
    const double t = m.execution_time(ep().units_per_job).t_p.value();
    const double e = m.job_energy(ep().units_per_job).e_p.value();
    EXPECT_NEAR(fast.times()[i] / t, 1.0, 1e-9) << "config " << i;
    EXPECT_NEAR(fast.energies()[i] / e, 1.0, 1e-9) << "config " << i;
    EXPECT_NEAR(fast.idle_powers()[i] / m.idle_power().value(), 1.0, 1e-9);
    EXPECT_NEAR(fast.busy_powers()[i] / m.busy_power().value(), 1.0, 1e-9);
    ++checked;
  }
  EXPECT_GE(checked, 1000u);
}

TEST(EvaluateSpace, NaivePathAgreesExactlyOnSmallSpace) {
  const ConfigSpace space = make_a9_k10_space(3, 2);
  const auto fast = evaluate_space(space, ep());
  const auto naive = evaluate_space_naive(space, ep());
  ASSERT_EQ(fast.size(), naive.size());
  for (std::size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(naive[i].index, i);
    EXPECT_NEAR(fast.times()[i] / naive[i].time.value(), 1.0, 1e-9);
    EXPECT_NEAR(fast.energies()[i] / naive[i].energy.value(), 1.0, 1e-9);
    EXPECT_NEAR(fast.idle_powers()[i] / naive[i].idle_power.value(), 1.0,
                1e-9);
    EXPECT_NEAR(fast.busy_powers()[i] / naive[i].busy_power.value(), 1.0,
                1e-9);
  }
}

TEST(EvaluateSpace, MaterializeMatchesConfigAt) {
  const ConfigSpace space = make_a9_k10_space(2, 2);
  const auto evals = evaluate_space(space, ep());
  for (std::uint64_t i : std::vector<std::uint64_t>{0, 17, space.size() - 1}) {
    const Evaluation e = evals.materialize(i);
    EXPECT_EQ(e.index, i);
    EXPECT_EQ(e.config.label(), space.config_at(i).label());
    EXPECT_DOUBLE_EQ(e.time.value(), evals.times()[i]);
    EXPECT_DOUBLE_EQ(e.energy.value(), evals.energies()[i]);
  }
  EXPECT_THROW((void)evals.materialize(evals.size()), PreconditionError);
}

TEST(ConfigSpace, DecodeAtRoundTripsThroughConfigAt) {
  // decode_at + point_at must agree with the materialized ClusterSpec for
  // every configuration: same group order, counts, cores and frequencies.
  const ConfigSpace space = make_a9_k10_space(3, 2);
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    DecodedGroup groups[kMaxTypes];
    const std::size_t n = space.decode_at(i, groups);
    const model::ClusterSpec cfg = space.config_at(i);
    ASSERT_EQ(n, cfg.groups.size()) << "config " << i;
    for (std::size_t g = 0; g < n; ++g) {
      const OperatingPoint op = space.point_at(groups[g].type, groups[g].point);
      EXPECT_EQ(space.types()[groups[g].type].spec.name,
                cfg.groups[g].spec.name);
      EXPECT_EQ(groups[g].count, cfg.groups[g].count);
      EXPECT_EQ(op.cores, cfg.groups[g].cores());
      EXPECT_EQ(op.frequency.value(), cfg.groups[g].freq().value());
    }
  }
  DecodedGroup scratch[kMaxTypes];
  EXPECT_THROW((void)space.decode_at(space.size(), scratch),
               PreconditionError);
}

TEST(ConfigSpace, ForEachDecodedMatchesDecodeAt) {
  const ConfigSpace space = make_a9_k10_space(2, 3);
  std::uint64_t expected = 0;
  space.for_each_decoded([&](const DecodedGroup* groups, std::size_t n,
                             std::uint64_t index) {
    ASSERT_EQ(index, expected++);
    DecodedGroup reference[kMaxTypes];
    ASSERT_EQ(space.decode_at(index, reference), n);
    for (std::size_t g = 0; g < n; ++g) {
      EXPECT_EQ(groups[g].type, reference[g].type);
      EXPECT_EQ(groups[g].count, reference[g].count);
      EXPECT_EQ(groups[g].point, reference[g].point);
    }
  });
  EXPECT_EQ(expected, space.size());
}

TEST(ConfigSpace, RejectsMoreThanMaxTypes) {
  std::vector<TypeOptions> types;
  for (std::size_t i = 0; i < kMaxTypes + 1; ++i) {
    TypeOptions t;
    t.spec = hw::cortex_a9();
    t.spec.name += "_" + std::to_string(i);
    types.push_back(std::move(t));
  }
  EXPECT_THROW(ConfigSpace(std::move(types)), PreconditionError);
}

TEST(OperatingPointTable, CachesEveryTupleOnce) {
  // Footnote-4 space: 4 cores x 5 freqs (A9) + 6 cores x 3 freqs (K10)
  // = 38 distinct operating points for 36,380 configurations.
  const ConfigSpace space = make_a9_k10_space(10, 10);
  const OperatingPointTable table(space, ep());
  ASSERT_EQ(table.num_types(), 2u);
  EXPECT_EQ(table.points_for(0), 20u);
  EXPECT_EQ(table.points_for(1), 18u);
  EXPECT_DOUBLE_EQ(table.units_per_job(), ep().units_per_job);
  for (std::size_t t = 0; t < table.num_types(); ++t) {
    EXPECT_GT(table.idle_power(t).value(), 0.0);
    for (std::size_t p = 0; p < table.points_for(t); ++p) {
      const OperatingPointEntry& e = table.entry(t, p);
      EXPECT_GT(e.t_cpu.value(), 0.0);
      EXPECT_GT(e.throughput, 0.0);
      EXPECT_GT(e.busy_power.value(), 0.0);
    }
  }
}

TEST(EvaluateSpace, RejectsUncoveredNodeTypes) {
  workload::CatalogOptions opts;
  opts.nodes = {hw::cortex_a9()};
  const workload::Workload a9_only = workload::make_workload("EP", opts);
  const ConfigSpace space = make_a9_k10_space(1, 1);
  EXPECT_THROW((void)evaluate_space(space, a9_only), PreconditionError);
}

TEST(ParetoFront, NoMemberIsDominated) {
  const ConfigSpace space = make_a9_k10_space(3, 2);
  const auto evals = evaluate_space(space, ep());
  const auto front = pareto_front(evals);
  ASSERT_FALSE(front.empty());
  // Sorted by time, strictly decreasing energy.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].time, front[i - 1].time);
    EXPECT_LT(front[i].energy, front[i - 1].energy);
  }
  // Property: nothing in the full set dominates a frontier member.
  for (const auto& f : front) {
    for (std::size_t i = 0; i < evals.size(); ++i) {
      const double t = evals.times()[i];
      const double e = evals.energies()[i];
      const bool dominates =
          t <= f.time.value() && e <= f.energy.value() &&
          (t < f.time.value() || e < f.energy.value());
      EXPECT_FALSE(dominates)
          << "config " << i << " dominates " << f.config.label();
    }
  }
}

TEST(ParetoFront, SetAndVectorOverloadsAgree) {
  const ConfigSpace space = make_a9_k10_space(2, 2);
  const auto set_front = pareto_front(evaluate_space(space, ep()));
  const auto vec_front = pareto_front(evaluate_space_naive(space, ep()));
  ASSERT_EQ(set_front.size(), vec_front.size());
  for (std::size_t i = 0; i < set_front.size(); ++i) {
    EXPECT_NEAR(set_front[i].time.value() / vec_front[i].time.value(), 1.0,
                1e-9);
    EXPECT_NEAR(set_front[i].energy.value() / vec_front[i].energy.value(),
                1.0, 1e-9);
  }
}

TEST(ParetoFront, FrontierEndpoints) {
  const ConfigSpace space = make_a9_k10_space(3, 2);
  auto evals = evaluate_space(space, ep());
  const auto front = pareto_front(evals);
  const auto fastest_eval = fastest(evals);
  ASSERT_TRUE(fastest_eval.has_value());
  EXPECT_DOUBLE_EQ(front.front().time.value(),
                   fastest_eval->time.value());
  // The last frontier member carries the global minimum energy.
  double min_energy = 1e300;
  for (double e : evals.energies()) min_energy = std::min(min_energy, e);
  EXPECT_DOUBLE_EQ(front.back().energy.value(), min_energy);
}

TEST(ParetoFront, EmptyInputYieldsEmptyFront) {
  EXPECT_TRUE(pareto_front(std::vector<Evaluation>{}).empty());
  EXPECT_FALSE(fastest(std::vector<Evaluation>{}).has_value());
  EXPECT_FALSE(min_energy_within_deadline(std::vector<Evaluation>{},
                                          Seconds{1.0})
                   .has_value());
  const EvaluationSet empty_set;
  EXPECT_TRUE(pareto_front(empty_set).empty());
  EXPECT_FALSE(fastest(empty_set).has_value());
  EXPECT_FALSE(
      min_energy_within_deadline(empty_set, Seconds{1.0}).has_value());
  EXPECT_FALSE(min_edp(empty_set).has_value());
}

TEST(EnergyDelay, ProductsAndMinimum) {
  const ConfigSpace space = make_a9_k10_space(3, 2);
  const auto evals = evaluate_space(space, ep());

  // EDP/ED2P formulas.
  const Evaluation e0 = evals.materialize(0);
  EXPECT_DOUBLE_EQ(energy_delay_product(e0).value(),
                   e0.energy.value() * e0.time.value());
  EXPECT_DOUBLE_EQ(energy_delay2_product(e0).value(),
                   e0.energy.value() * e0.time.value() * e0.time.value());

  // The EDP optimum is never dominated: it must sit on the frontier.
  const auto best = min_edp(evals);
  ASSERT_TRUE(best.has_value());
  for (std::size_t i = 0; i < evals.size(); ++i)
    EXPECT_GE(evals.energies()[i] * evals.times()[i],
              energy_delay_product(*best).value() - 1e-12);
  const auto front = pareto_front(evals);
  bool on_front = false;
  for (const auto& f : front) {
    if (f.time == best->time && f.energy == best->energy) on_front = true;
  }
  EXPECT_TRUE(on_front);

  // ED2P weights latency harder: its pick is at least as fast.
  const auto best2 = min_edp(evals, /*squared=*/true);
  ASSERT_TRUE(best2.has_value());
  EXPECT_LE(best2->time, best->time);

  EXPECT_FALSE(min_edp(std::vector<Evaluation>{}).has_value());
}

TEST(MinEnergyWithinDeadline, PicksCheapestFeasible) {
  const ConfigSpace space = make_a9_k10_space(3, 2);
  const auto evals = evaluate_space(space, ep());
  const auto fastest_eval = fastest(evals);
  ASSERT_TRUE(fastest_eval.has_value());

  // Generous deadline: must return the global energy minimum.
  const auto loose =
      min_energy_within_deadline(evals, Seconds{1e9});
  ASSERT_TRUE(loose.has_value());
  for (double e : evals.energies()) EXPECT_GE(e, loose->energy.value());

  // Impossible deadline: nothing qualifies.
  const auto none = min_energy_within_deadline(
      evals, fastest_eval->time * 0.5);
  EXPECT_FALSE(none.has_value());

  // Tight-but-feasible deadline: result respects it.
  const auto tight =
      min_energy_within_deadline(evals, fastest_eval->time * 1.2);
  ASSERT_TRUE(tight.has_value());
  EXPECT_LE(tight->time, fastest_eval->time * 1.2);
}

}  // namespace
