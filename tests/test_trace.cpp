// Load-trace replay (extension): diurnal/step profiles through the
// cluster model.
#include <gtest/gtest.h>

#include "hcep/cluster/trace.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/catalog.hpp"

namespace {

using namespace hcep;
using namespace hcep::cluster;
using namespace hcep::literals;

const workload::Workload& ep() {
  static const workload::Workload kEp = workload::make_workload("EP");
  return kEp;
}

model::TimeEnergyModel ep_model() {
  return {model::make_a9_k10_cluster(4, 2), ep()};
}

TEST(LoadTrace, FlatIsConstant) {
  const LoadTrace t = LoadTrace::flat(100_s, 0.4);
  EXPECT_DOUBLE_EQ(t.at(0_s), 0.4);
  EXPECT_DOUBLE_EQ(t.at(50_s), 0.4);
  EXPECT_DOUBLE_EQ(t.horizon().value(), 100.0);
  EXPECT_DOUBLE_EQ(t.peak(), 0.4);
}

TEST(LoadTrace, DiurnalOscillatesWithinBounds) {
  const LoadTrace t = LoadTrace::diurnal(86400_s, 0.2, 0.8);
  EXPECT_NEAR(t.at(0_s), 0.5, 1e-9);  // midpoint at t=0
  double lo = 1.0, hi = 0.0;
  for (double x = 0; x <= 86400; x += 600) {
    const double u = t.at(Seconds{x});
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    EXPECT_GE(u, 0.2 - 1e-9);
    EXPECT_LE(u, 0.8 + 1e-9);
  }
  EXPECT_NEAR(lo, 0.2, 0.02);
  EXPECT_NEAR(hi, 0.8, 0.02);
  EXPECT_NEAR(t.peak(), 0.8, 0.02);
}

TEST(LoadTrace, StepShapeAndEdges) {
  const LoadTrace t = LoadTrace::step(100_s, 0.1, 0.7, 40_s, 20_s);
  EXPECT_NEAR(t.at(10_s), 0.1, 1e-6);
  EXPECT_NEAR(t.at(50_s), 0.7, 1e-6);
  EXPECT_NEAR(t.at(90_s), 0.1, 1e-6);
  EXPECT_DOUBLE_EQ(t.horizon().value(), 100.0);

  // Step starting at zero.
  const LoadTrace t0 = LoadTrace::step(50_s, 0.1, 0.6, 0_s, 10_s);
  EXPECT_NEAR(t0.at(5_s), 0.6, 1e-6);
  EXPECT_NEAR(t0.at(30_s), 0.1, 1e-6);
}

TEST(LoadTrace, Validation) {
  EXPECT_THROW((void)LoadTrace::flat(0_s, 0.5), PreconditionError);
  EXPECT_THROW((void)LoadTrace::flat(1_s, 1.0), PreconditionError);
  EXPECT_THROW((void)LoadTrace::diurnal(1_s, 0.8, 0.2), PreconditionError);
  EXPECT_THROW((void)LoadTrace::step(10_s, 0.1, 0.5, 8_s, 5_s),
               PreconditionError);
  EXPECT_THROW(LoadTrace(PiecewiseLinear({1.0, 2.0}, {0.1, 0.2})),
               PreconditionError);  // must start at t=0
}

TEST(Replay, FlatTraceMatchesAnalyticPower) {
  const auto m = ep_model();
  // Long flat window: realized utilization and power converge to model.
  const LoadTrace t = LoadTrace::flat(Seconds{60.0}, 0.5);
  const auto r = replay_trace(m, t, {.bucket = Seconds{10.0}, .seed = 5});
  EXPECT_NEAR(r.average_power.value(), m.average_power(0.5).value(),
              m.average_power(0.5).value() * 0.05);
  EXPECT_GT(r.jobs_completed, 100u);
}

TEST(Replay, ZeroLoadDrawsIdleExactly) {
  const auto m = ep_model();
  const LoadTrace t = LoadTrace::flat(Seconds{10.0}, 0.0);
  const auto r = replay_trace(m, t);
  EXPECT_EQ(r.jobs_completed, 0u);
  EXPECT_NEAR(r.average_power.value(), m.idle_power().value(), 1e-9);
  EXPECT_NEAR(r.total_energy.value(),
              (m.idle_power() * Seconds{10.0}).value(), 1e-6);
}

TEST(Replay, BucketsFollowTheDiurnalShape) {
  const auto m = ep_model();
  const LoadTrace t = LoadTrace::diurnal(Seconds{120.0}, 0.1, 0.7);
  const auto r = replay_trace(m, t, {.bucket = Seconds{5.0}, .seed = 11});
  ASSERT_EQ(r.buckets.size(), 24u);
  // Peak-load buckets draw more power than trough buckets.
  const auto& quarter = r.buckets[6];   // ~peak of the sine
  const auto& three_q = r.buckets[18];  // ~trough
  EXPECT_GT(quarter.target_utilization, three_q.target_utilization);
  EXPECT_GT(quarter.average_power.value(), three_q.average_power.value());
}

TEST(Replay, EnergyEqualsBucketSum) {
  const auto m = ep_model();
  const LoadTrace t = LoadTrace::diurnal(Seconds{60.0}, 0.2, 0.6);
  const auto r = replay_trace(m, t, {.bucket = Seconds{6.0}});
  Joules sum{0.0};
  for (const auto& b : r.buckets)
    sum += b.average_power * Seconds{6.0};
  EXPECT_NEAR(sum.value(), r.total_energy.value(),
              r.total_energy.value() * 1e-9);
}

TEST(Replay, StepTraceRaisesP95DuringTheBurst) {
  const auto m = ep_model();
  const LoadTrace t = LoadTrace::step(Seconds{60.0}, 0.1, 0.85,
                                      Seconds{20.0}, Seconds{20.0});
  const auto r = replay_trace(m, t, {.bucket = Seconds{10.0}, .seed = 9});
  ASSERT_EQ(r.buckets.size(), 6u);
  // Burst buckets (2, 3) see more jobs and higher p95 than quiet ones.
  EXPECT_GT(r.buckets[2].jobs, r.buckets[0].jobs);
  EXPECT_GT(r.buckets[3].p95_response.value(),
            r.buckets[0].p95_response.value());
  EXPECT_GE(r.worst_p95.value(), r.buckets[3].p95_response.value());
}

TEST(Replay, DeterministicForFixedSeed) {
  const auto m = ep_model();
  const LoadTrace t = LoadTrace::diurnal(Seconds{30.0}, 0.2, 0.6);
  const auto a = replay_trace(m, t, {.bucket = Seconds{5.0}, .seed = 3});
  const auto b = replay_trace(m, t, {.bucket = Seconds{5.0}, .seed = 3});
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_DOUBLE_EQ(a.total_energy.value(), b.total_energy.value());
}

TEST(Replay, Validation) {
  const auto m = ep_model();
  const LoadTrace t = LoadTrace::flat(Seconds{10.0}, 0.3);
  TraceReplayOptions o;
  o.bucket = Seconds{20.0};  // wider than the horizon
  EXPECT_THROW((void)replay_trace(m, t, o), PreconditionError);
}

}  // namespace
