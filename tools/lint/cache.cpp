#include "cache.hpp"

#include <cstdlib>
#include <fstream>
#include <vector>

namespace hcep::lint {
namespace {

constexpr const char* kMagic = "hcep-lint-cache v2";

/// One-line escaping for free-text fields (messages may contain
/// backticks, never newlines or tabs — but escape both anyway).
std::string esc(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else if (c == '\t') out += "\\t";
    else out.push_back(c);
  }
  return out;
}

std::string unesc(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    if (s[i] == 'n') out.push_back('\n');
    else if (s[i] == 't') out.push_back('\t');
    else out.push_back(s[i]);
  }
  return out;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ResultCache ResultCache::load(const std::string& path) {
  ResultCache cache;
  std::ifstream in(path);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return cache;
  Entry* current = nullptr;
  while (std::getline(in, line)) {
    const std::vector<std::string> f = split_tabs(line);
    if (f.empty()) continue;
    if (f[0] == "file" && f.size() == 6) {
      Entry e;
      e.key.size = std::strtoull(f[2].c_str(), nullptr, 10);
      e.key.mtime_ns = std::strtoll(f[3].c_str(), nullptr, 10);
      e.key.content_hash = std::strtoull(f[4].c_str(), nullptr, 16);
      e.facts.path = unesc(f[1]);
      e.facts.uses_shard_markers = f[5] == "1";
      current = &cache.entries_.emplace(e.facts.path, std::move(e))
                     .first->second;
    } else if (current == nullptr) {
      continue;
    } else if (f[0] == "inc" && f.size() == 2) {
      current->facts.includes.push_back(unesc(f[1]));
    } else if (f[0] == "ms" && f.size() == 3) {
      current->facts.mutable_statics.push_back(
          {std::strtoull(f[1].c_str(), nullptr, 10), unesc(f[2])});
    } else if (f[0] == "finding" && f.size() == 4) {
      current->facts.findings.push_back(
          {current->facts.path, std::strtoull(f[1].c_str(), nullptr, 10),
           unesc(f[2]), unesc(f[3])});
    }
  }
  return cache;
}

std::optional<FileFacts> ResultCache::lookup(const std::string& relpath,
                                             const CacheKey& key) const {
  const auto it = entries_.find(relpath);
  if (it == entries_.end()) return std::nullopt;
  const CacheKey& k = it->second.key;
  const bool mtime_hit = k.size == key.size && k.mtime_ns == key.mtime_ns;
  if (!mtime_hit && k.content_hash != key.content_hash) return std::nullopt;
  if (k.size != key.size) return std::nullopt;
  return it->second.facts;
}

void ResultCache::store(const std::string& relpath, const CacheKey& key,
                        const FileFacts& facts) {
  entries_[relpath] = Entry{key, facts};
}

bool ResultCache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << kMagic << "\n";
  for (const auto& [rel, e] : entries_) {
    out << "file\t" << esc(rel) << "\t" << e.key.size << "\t"
        << e.key.mtime_ns << "\t" << std::hex << e.key.content_hash
        << std::dec << "\t" << (e.facts.uses_shard_markers ? 1 : 0) << "\n";
    for (const auto& inc : e.facts.includes) out << "inc\t" << esc(inc) << "\n";
    for (const auto& ms : e.facts.mutable_statics)
      out << "ms\t" << ms.line << "\t" << esc(ms.name) << "\n";
    for (const auto& f : e.facts.findings)
      out << "finding\t" << f.line << "\t" << esc(f.rule) << "\t"
          << esc(f.message) << "\n";
  }
  return static_cast<bool>(out);
}

}  // namespace hcep::lint
