#include "scope.hpp"

#include <algorithm>

namespace hcep::lint {
namespace {

bool is_kw(const Token& t, const char* kw) {
  return t.kind == TokenKind::kIdentifier && t.text == kw;
}

bool any_kw(const Token& t, std::initializer_list<const char*> kws) {
  if (t.kind != TokenKind::kIdentifier) return false;
  return std::any_of(kws.begin(), kws.end(),
                     [&](const char* k) { return t.text == k; });
}

/// The "declaration head": tokens since the last `;`/`{`/`}` boundary.
/// Classifying an opening brace only ever needs this window.
struct Head {
  std::vector<const Token*> toks;

  void clear() { toks.clear(); }
  void push(const Token& t) { toks.push_back(&t); }

  bool contains_kw(std::initializer_list<const char*> kws) const {
    return std::any_of(toks.begin(), toks.end(),
                       [&](const Token* t) { return any_kw(*t, kws); });
  }

  /// Top-level `=` (outside parens/brackets/angles) means the brace
  /// starts an initializer or a lambda body, never a named scope.
  bool has_top_level_assign() const {
    int paren = 0, angle = 0, square = 0;
    for (const Token* t : toks) {
      if (t->kind != TokenKind::kPunct) continue;
      const std::string& p = t->text;
      if (p == "(") ++paren;
      else if (p == ")") paren = std::max(0, paren - 1);
      else if (p == "[") ++square;
      else if (p == "]") square = std::max(0, square - 1);
      else if (p == "<") ++angle;
      else if (p == ">") angle = std::max(0, angle - 1);
      else if (p == "=" && paren == 0 && angle == 0 && square == 0)
        return true;
    }
    return false;
  }

  /// Name of the identifier immediately before the first top-level
  /// parenthesis group (the function name of `T name(args) ... {`), or ""
  /// when the shape does not match. Parens nested in template angle
  /// brackets (std::function<void()>) are not top-level.
  std::string function_name() const {
    int angle = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = *toks[i];
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "<") ++angle;
      else if (t.text == ">") angle = std::max(0, angle - 1);
      else if (t.text == "(" && angle == 0) {
        if (i == 0) return "";
        const Token& prev = *toks[i - 1];
        if (prev.kind == TokenKind::kIdentifier) return prev.text;
        return "";
      }
    }
    return "";
  }

  /// `namespace a::b {` -> "a::b"; "" for anonymous namespaces.
  std::string namespace_name() const {
    std::string name;
    bool seen_kw = false;
    for (const Token* t : toks) {
      if (is_kw(*t, "namespace") || is_kw(*t, "inline")) {
        seen_kw = seen_kw || is_kw(*t, "namespace");
        continue;
      }
      if (!seen_kw) continue;
      if (t->kind == TokenKind::kIdentifier) name += t->text;
      else if (t->kind == TokenKind::kPunct && t->text == "::") name += "::";
      else break;
    }
    return name;
  }

  /// `template <...> struct Foo : Bar {` -> "Foo".
  std::string class_name() const {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (any_kw(*toks[i], {"class", "struct", "union", "enum"})) {
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          const Token& t = *toks[j];
          if (any_kw(t, {"class", "struct", "alignas", "final"})) continue;
          if (t.kind == TokenKind::kPunct &&
              (t.text == "[" || t.text == "]" || t.text == "(" ||
               t.text == ")"))
            continue;  // attributes / alignas arguments
          if (t.kind == TokenKind::kIdentifier) return t.text;
          break;  // `:` base clause or `{` right away: anonymous
        }
        return "";
      }
    }
    return "";
  }
};

}  // namespace

std::vector<ScopeInfo> track_scopes(const std::vector<Token>& tokens) {
  std::vector<ScopeInfo> out(tokens.size());
  std::vector<Scope> stack;
  Head head;

  auto snapshot = [&]() {
    ScopeInfo info;
    for (const Scope& s : stack) {
      switch (s.kind) {
        case ScopeKind::kNamespace:
          if (!s.name.empty()) {
            if (!info.namespace_path.empty()) info.namespace_path += "::";
            info.namespace_path += s.name;
          }
          break;
        case ScopeKind::kClassLike:
          info.class_name = s.name;
          break;
        case ScopeKind::kFunction:
          info.in_function = true;
          info.function_name = s.name;
          break;
        case ScopeKind::kBlock:
          break;
      }
    }
    if (!stack.empty()) {
      const ScopeKind top = stack.back().kind;
      info.at_namespace_scope = top == ScopeKind::kNamespace;
      info.at_class_scope = top == ScopeKind::kClassLike;
    }
    // Blocks inside a function body still count as function context; a
    // bare block at file scope (rare) does not restore namespace scope.
    info.depth = stack.size();
    return info;
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];

    if (t.kind == TokenKind::kPunct && t.text == "}") {
      if (!stack.empty()) stack.pop_back();
      out[i] = snapshot();
      head.clear();
      continue;
    }

    out[i] = snapshot();  // `{` and everything else belong to the outer scope

    if (t.kind == TokenKind::kPunct && t.text == "{") {
      Scope s{ScopeKind::kBlock, ""};
      const bool named_scope_ctx =
          stack.empty() || stack.back().kind == ScopeKind::kNamespace ||
          stack.back().kind == ScopeKind::kClassLike;
      if (head.contains_kw({"namespace"})) {
        s = {ScopeKind::kNamespace, head.namespace_name()};
      } else if (head.contains_kw({"class", "struct", "union", "enum"}) &&
                 !head.has_top_level_assign()) {
        s = {ScopeKind::kClassLike, head.class_name()};
      } else if (named_scope_ctx && !head.has_top_level_assign() &&
                 !head.contains_kw({"if", "for", "while", "switch", "catch",
                                    "do", "else", "try", "return"})) {
        const std::string fn = head.function_name();
        if (!fn.empty()) s = {ScopeKind::kFunction, fn};
      }
      stack.push_back(s);
      head.clear();
      continue;
    }

    if (t.kind == TokenKind::kPunct && t.text == ";") {
      head.clear();
      continue;
    }
    if (t.kind == TokenKind::kPunct && t.text == ":") {
      // Access specifiers and case labels end a head; mem-init `:` after
      // a ctor's `(...)` must keep it.
      if (head.toks.size() == 1 &&
          any_kw(*head.toks.front(),
                 {"public", "private", "protected", "default"})) {
        head.clear();
        continue;
      }
      if (!head.toks.empty() && is_kw(*head.toks.front(), "case")) {
        head.clear();
        continue;
      }
    }
    if (t.kind == TokenKind::kDirective) continue;
    head.push(t);
  }
  return out;
}

}  // namespace hcep::lint
