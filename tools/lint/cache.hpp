// hcep-lint result cache: skip re-analyzing unchanged files.
//
// A full-tree scan tokenizes and scope-tracks every file under src/;
// with the cache, a file whose (size, mtime, FNV-1a content hash) triple
// is unchanged reuses its serialized FileFacts from the previous run.
// Facts — not findings — are what get cached: the cross-file project
// pass (shard reachability) re-derives its findings from cached facts on
// every run, so editing one TU correctly re-evaluates every cross-file
// consequence while still only re-tokenizing the one file.
//
// The mtime check is a fast-path hint only: a mtime/size hit is trusted
// without hashing; a miss falls back to the content hash before
// re-analyzing, so `touch` or a checkout does not invalidate the cache.
// Format is a line-oriented text file, versioned; an unreadable or
// version-mismatched cache is silently ignored (the scan is then merely
// cold, never wrong).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "facts.hpp"

namespace hcep::lint {

struct CacheKey {
  std::uint64_t size = 0;
  std::int64_t mtime_ns = 0;
  std::uint64_t content_hash = 0;  ///< FNV-1a 64 of the file bytes
};

std::uint64_t fnv1a64(const std::string& bytes);

class ResultCache {
 public:
  /// Loads `path`; missing/corrupt/old-version files yield an empty cache.
  static ResultCache load(const std::string& path);

  /// Facts for `relpath` if the key matches (mtime+size fast path, hash
  /// slow path); nullopt on miss.
  std::optional<FileFacts> lookup(const std::string& relpath,
                                  const CacheKey& key) const;

  void store(const std::string& relpath, const CacheKey& key,
             const FileFacts& facts);

  /// Writes the cache back (deterministic order). Returns false on IO
  /// error.
  bool save(const std::string& path) const;

  std::size_t entries() const { return entries_.size(); }

 private:
  struct Entry {
    CacheKey key;
    FileFacts facts;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace hcep::lint
