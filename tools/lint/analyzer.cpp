#include "analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "lexer.hpp"
#include "scope.hpp"

namespace hcep::lint {
namespace {

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The identifier heuristic for "this double claims to be a physical
/// quantity": exact unit words, or unit-word / unit-symbol suffixes.
bool names_physical_unit(const std::string& name) {
  static const std::vector<std::string> kExact = {
      "energy", "power",    "freq",    "frequency", "joules",
      "watts",  "hertz",    "latency", "deadline",  "sojourn"};
  static const std::vector<std::string> kSuffix = {
      "_energy", "_power", "_freq",    "_frequency", "_joules",
      "_watts",  "_hertz", "_hz",      "_j",         "_w",
      "_kwh",    "_mhz",   "_ghz",     "_latency",   "_deadline",
      "_sojourn"};
  const std::string l = lower(name);
  for (const auto& e : kExact)
    if (l == e) return true;
  for (const auto& s : kSuffix)
    if (l.size() > s.size() && ends_with(l, s)) return true;
  return false;
}

/// Control-plane signal names that denote power/energy without naming
/// the physical unit outright.
bool names_control_signal(const std::string& name) {
  static const std::vector<std::string> kExact = {"cap", "budget", "draw",
                                                  "savings", "penalty"};
  static const std::vector<std::string> kSuffix = {
      "_cap", "_budget", "_draw", "_savings", "_penalty", "_floor"};
  const std::string l = lower(name);
  for (const auto& e : kExact)
    if (l == e) return true;
  for (const auto& s : kSuffix)
    if (l.size() > s.size() && ends_with(l, s)) return true;
  return false;
}

/// Parameter names that legitimately stay naked doubles on a
/// Quantity-typed signature: dimensionless ratios, probabilities,
/// shape/scale parameters, interpolation knobs.
bool dimensionless_param_name(const std::string& name) {
  static const std::set<std::string> kAllow = {
      "q",        "p",       "rho",         "u",         "x",
      "k",        "n",       "ratio",       "frac",      "fraction",
      "share",    "weight",  "factor",      "scale",     "alpha",
      "beta",     "gamma",   "quantile",    "percentile", "prob",
      "probability", "utilization", "load",  "tolerance", "eps",
      "epsilon",  "rel_tol", "abs_tol",     "seed",      "confidence",
      "slack",    "margin",  "multiplier",  "exponent",  "headroom"};
  const std::string l = lower(name);
  if (kAllow.count(l)) return true;
  return ends_with(l, "_ratio") || ends_with(l, "_frac") ||
         ends_with(l, "_fraction") || ends_with(l, "_share") ||
         ends_with(l, "_weight") || ends_with(l, "_factor") ||
         ends_with(l, "_scale") || ends_with(l, "_prob") ||
         ends_with(l, "_quantile") || ends_with(l, "_percentile") ||
         ends_with(l, "_utilization") || ends_with(l, "_tolerance") ||
         ends_with(l, "_headroom");
}

/// hcep::units Quantity alias names (plus the template itself).
bool quantity_type_name(const std::string& name) {
  static const std::set<std::string> kAliases = {
      "Quantity",       "Seconds",       "Joules",
      "Watts",          "Cycles",        "Hertz",
      "Bytes",          "BytesPerSecond", "Ops",
      "OpsPerSecond",   "JoulesPerOp",   "JouleSeconds",
      "JouleSecondsSquared", "Microseconds", "Milliseconds",
      "Millijoules",    "Kilojoules",    "KilowattHours",
      "Milliwatts",     "Kilowatts",     "Megahertz",
      "Gigahertz"};
  return kAliases.count(name) > 0;
}

bool is_specifier(const std::string& t) {
  static const std::set<std::string> kSpecs = {
      "static",   "virtual", "constexpr", "consteval", "constinit",
      "inline",   "friend",  "explicit",  "mutable",   "extern",
      "typename", "const"};
  return kSpecs.count(t) > 0;
}

bool punct(const Token& t, const char* s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}
bool ident(const Token& t, const char* s) {
  return t.kind == TokenKind::kIdentifier && t.text == s;
}
bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }

/// Index of the matching closer for the opener at `open` (handles `>>`
/// when closing angle brackets). Returns tokens.size() when unmatched.
std::size_t match_forward(const std::vector<Token>& ts, std::size_t open,
                          const char* o, const char* c) {
  int depth = 0;
  const bool angles = std::string(o) == "<";
  for (std::size_t i = open; i < ts.size(); ++i) {
    const Token& t = ts[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == o) ++depth;
    else if (t.text == c) {
      if (--depth == 0) return i;
    } else if (angles && t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return i;
    } else if (angles && (t.text == ";" || t.text == "{")) {
      return ts.size();  // not a template argument list after all
    }
  }
  return ts.size();
}

/// The analyzer for one file: tokens + scopes + path flags in, facts out.
class FileAnalyzer {
 public:
  FileAnalyzer(const std::string& source, const std::string& relpath)
      : path_(relpath), lr_(lex(source)), ts_(lr_.tokens),
        scopes_(track_scopes(ts_)) {}

  FileFacts run() {
    facts_.path = path_;
    collect_includes_and_markers();
    collect_container_decls();
    collect_floatish_vars();
    scan_iteration_flows();
    scan_rng_constructions();
    scan_banned_calls();
    scan_simple_header_rules();
    scan_fed_identity();
    scan_function_decls();
    collect_mutable_statics();
    finalize_member_rng();
    std::sort(facts_.findings.begin(), facts_.findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    return std::move(facts_);
  }

 private:
  void add(std::size_t line, const std::string& rule,
           const std::string& message) {
    if (suppressed(lr_, line, rule)) return;
    facts_.findings.push_back({path_, line, rule, message});
  }

  bool header() const {
    return ends_with(path_, ".hpp") || ends_with(path_, ".h");
  }

  // --- includes + shard markers ---------------------------------------------

  void collect_includes_and_markers() {
    for (const Token& t : ts_) {
      if (t.kind == TokenKind::kDirective) {
        const std::size_t q1 = t.text.find('"');
        if (t.text.find("include") != std::string::npos &&
            q1 != std::string::npos) {
          const std::size_t q2 = t.text.find('"', q1 + 1);
          if (q2 != std::string::npos)
            facts_.includes.push_back(t.text.substr(q1 + 1, q2 - q1 - 1));
        }
      } else if (t.kind == TokenKind::kIdentifier &&
                 (t.text == "ShardedSimulator" || t.text == "parallel_for")) {
        facts_.uses_shard_markers = true;
      }
    }
  }

  // --- container declarations -----------------------------------------------

  /// `std::(unordered_)map|set<Key, ...> name` — records hash-container
  /// variables for the iteration-flow pass and fires the pointer-key /
  /// thread-id-identity / blanket unordered rules at the declaration.
  void collect_container_decls() {
    for (std::size_t i = 0; i + 3 < ts_.size(); ++i) {
      if (!ident(ts_[i], "std") || !punct(ts_[i + 1], "::")) continue;
      const std::string& c = ts_[i + 2].text;
      const bool unordered = c == "unordered_map" || c == "unordered_set" ||
                             c == "unordered_multimap" ||
                             c == "unordered_multiset";
      const bool ordered = c == "map" || c == "set" || c == "multimap" ||
                           c == "multiset";
      if ((!unordered && !ordered) || !punct(ts_[i + 3], "<")) continue;
      const std::size_t close = match_forward(ts_, i + 3, "<", ">");
      if (close >= ts_.size()) continue;
      const std::size_t line = ts_[i].line;

      // First top-level template argument = the key type.
      std::vector<const Token*> key;
      int depth = 0;
      for (std::size_t j = i + 4; j < close; ++j) {
        const Token& t = ts_[j];
        if (punct(t, "<") || punct(t, "(")) ++depth;
        if (punct(t, ">") || punct(t, ")")) --depth;
        if (punct(t, ">>")) depth -= 2;
        if (depth == 0 && punct(t, ",")) break;
        key.push_back(&t);
      }
      const bool key_is_pointer =
          !key.empty() && key.back()->kind == TokenKind::kPunct &&
          key.back()->text == "*";
      bool key_is_thread_id = false;
      for (std::size_t j = 0; j + 2 < key.size(); ++j)
        if (ident(*key[j], "thread") && punct(*key[j + 1], "::") &&
            ident(*key[j + 2], "id"))
          key_is_thread_id = true;

      if (key_is_pointer)
        add(line, "pointer-key",
            "std::" + c +
                " keyed by a pointer iterates/compares in allocation-"
                "address order, which differs every run under ASLR; key "
                "by a stable id");
      if (key_is_thread_id)
        add(line, "thread-id-identity",
            "std::" + c +
                " keyed by std::thread::id is schedule-dependent; use the "
                "pool's dense worker index");

      if (unordered) {
        if (is_deterministic_output_path(path_))
          add(line, "unordered-iteration",
              "hash-container in a deterministic report/JSON path; "
              "iteration order would break the byte-identical same-seed "
              "guarantee — use std::map or sort the keys");
        // Variable name, if this is a declaration: `> name` then a
        // declarator terminator (`;`, `=`, `{`, `,`, `)`), possibly
        // through `&`/`*`.
        std::size_t j = close + 1;
        while (j < ts_.size() && (punct(ts_[j], "&") || punct(ts_[j], "*") ||
                                  ident(ts_[j], "const")))
          ++j;
        if (j < ts_.size() && is_ident(ts_[j])) {
          const std::string& name = ts_[j].text;
          if (j + 1 < ts_.size() &&
              (punct(ts_[j + 1], ";") || punct(ts_[j + 1], "=") ||
               punct(ts_[j + 1], "{") || punct(ts_[j + 1], ",") ||
               punct(ts_[j + 1], ")")))
            unordered_vars_.insert(name);
        }
      }
    }
  }

  // --- float-ish variable table ---------------------------------------------

  /// `double x` / `float x` / `Joules x` declarations: the accumulator
  /// type table for float-order-reduction.
  void collect_floatish_vars() {
    for (std::size_t i = 0; i + 1 < ts_.size(); ++i) {
      const Token& t = ts_[i];
      if (!is_ident(t)) continue;
      if (t.text != "double" && t.text != "float" &&
          !quantity_type_name(t.text))
        continue;
      std::size_t j = i + 1;
      while (j < ts_.size() && (punct(ts_[j], "&") || punct(ts_[j], "*")))
        ++j;
      if (j >= ts_.size() || !is_ident(ts_[j])) continue;
      if (j + 1 < ts_.size() &&
          (punct(ts_[j + 1], ";") || punct(ts_[j + 1], "=") ||
           punct(ts_[j + 1], "{") || punct(ts_[j + 1], ",") ||
           punct(ts_[j + 1], ")")))
        floatish_vars_.insert(ts_[j].text);
    }
  }

  // --- iteration flows -------------------------------------------------------

  /// Range-fors (and iterator fors) whose range is a known unordered
  /// container: iteration that feeds accumulation (`+=`), container
  /// appends, or stream output is hash-order-sensitive.
  void scan_iteration_flows() {
    for (std::size_t i = 0; i + 1 < ts_.size(); ++i) {
      if (!ident(ts_[i], "for") || !punct(ts_[i + 1], "(")) continue;
      const std::size_t close = match_forward(ts_, i + 1, "(", ")");
      if (close >= ts_.size()) continue;

      bool over_unordered = false;
      // Range-for: identifiers after the top-level `:`.
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (punct(ts_[j], "(")) ++depth;
        if (punct(ts_[j], ")")) --depth;
        if (depth == 1 && punct(ts_[j], ":")) {
          colon = j;
          break;
        }
      }
      const std::size_t from = colon != 0 ? colon + 1 : i + 2;
      for (std::size_t j = from; j < close; ++j)
        if (is_ident(ts_[j]) && unordered_vars_.count(ts_[j].text) &&
            // iterator form: require .begin()/.end() right after the name
            (colon != 0 ||
             (j + 2 < close && punct(ts_[j + 1], ".") &&
              (ident(ts_[j + 2], "begin") || ident(ts_[j + 2], "end")))))
          over_unordered = true;
      if (!over_unordered) continue;

      // Loop body: `{...}` or a single statement.
      std::size_t body_begin = close + 1, body_end;
      if (body_begin < ts_.size() && punct(ts_[body_begin], "{")) {
        body_end = match_forward(ts_, body_begin, "{", "}");
      } else {
        body_end = body_begin;
        while (body_end < ts_.size() && !punct(ts_[body_end], ";")) ++body_end;
      }

      bool flows = false;
      for (std::size_t j = body_begin; j < body_end && j < ts_.size(); ++j) {
        const Token& t = ts_[j];
        if (punct(t, "+=") || punct(t, "<<")) flows = true;
        if (is_ident(t) &&
            (t.text == "push_back" || t.text == "emplace_back" ||
             t.text == "insert" || t.text == "append" || t.text == "emplace"))
          flows = true;
        if (punct(t, "+=") && j > 0 && is_ident(ts_[j - 1])) {
          const std::string& lhs = ts_[j - 1].text;
          if (floatish_vars_.count(lhs) || names_physical_unit(lhs))
            add(t.line, "float-order-reduction",
                "float accumulation `" + lhs +
                    " +=` inside unordered-container iteration: the sum "
                    "depends on hash order; reduce over a sorted sequence");
        }
      }
      if (flows)
        add(ts_[i].line, "unordered-iteration",
            "iteration over an unordered container feeds accumulation or "
            "export; hash order would leak into results — use std::map "
            "or sort the keys first");
    }
  }

  // --- Rng seed flow ---------------------------------------------------------

  void scan_rng_constructions() {
    if (contains(path_, "util/rng")) return;  // the generator itself
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      if (!ident(ts_[i], "Rng")) continue;
      // `hcep::Rng` — same token; `class Rng` / `Rng::` / `Rng&` are not
      // constructions.
      if (i > 0 && (ident(ts_[i - 1], "class") || ident(ts_[i - 1], "struct")))
        continue;
      if (i + 1 < ts_.size() &&
          (punct(ts_[i + 1], "::") || punct(ts_[i + 1], "&") ||
           punct(ts_[i + 1], "*") || punct(ts_[i + 1], ">") ||
           punct(ts_[i + 1], ",") || punct(ts_[i + 1], ")") ||
           punct(ts_[i + 1], ";")))
        continue;
      const ScopeInfo& sc = scopes_[i];
      const std::size_t line = ts_[i].line;

      // Temporary: `Rng()` / `Rng{}` not preceded by a declarator name.
      if (i + 1 < ts_.size() &&
          (punct(ts_[i + 1], "(") || punct(ts_[i + 1], "{"))) {
        const char* open = ts_[i + 1].text == "(" ? "(" : "{";
        const char* closech = ts_[i + 1].text == "(" ? ")" : "}";
        const std::size_t close = match_forward(ts_, i + 1, open, closech);
        if (close == i + 2)
          add(line, "rng-seed-flow",
              "default-constructed hcep::Rng temporary: the seed must be "
              "threaded from a parameter or config");
        else if (close < ts_.size() && all_literal_args(i + 2, close))
          add(line, "rng-seed-flow",
              "hcep::Rng seeded with a hard-coded literal: thread the "
              "seed from a parameter or config instead");
        continue;
      }

      if (i + 1 >= ts_.size() || !is_ident(ts_[i + 1])) continue;
      const std::string& name = ts_[i + 1].text;
      const std::size_t after = i + 2;
      if (after >= ts_.size()) continue;

      if (punct(ts_[after], ";")) {
        // `Rng name;`
        if (sc.at_class_scope)
          member_rngs_.push_back({i + 1, name});
        else
          add(line, "rng-seed-flow",
              "`Rng " + name +
                  "` default-constructed without a seed; thread the seed "
                  "from a parameter or config");
        continue;
      }
      if (punct(ts_[after], "{")) {
        const std::size_t close = match_forward(ts_, after, "{", "}");
        if (close == after + 1) {
          if (sc.at_class_scope)
            member_rngs_.push_back({i + 1, name});
          else
            add(line, "rng-seed-flow",
                "`Rng " + name +
                    "{}` default-constructed without a seed; thread the "
                    "seed from a parameter or config");
        } else if (close < ts_.size() && all_literal_args(after + 1, close)) {
          add(line, "rng-seed-flow",
              "`Rng " + name +
                  "` seeded with a hard-coded literal; thread the seed "
                  "from a parameter or config");
        }
        continue;
      }
      if (punct(ts_[after], "(") && sc.in_function) {
        // `Rng name(args)` in a function body: a construction (at class/
        // namespace scope the same shape is a function declaration).
        const std::size_t close = match_forward(ts_, after, "(", ")");
        if (close < ts_.size() && close > after + 1 &&
            all_literal_args(after + 1, close))
          add(line, "rng-seed-flow",
              "`Rng " + name +
                  "` seeded with a hard-coded literal; thread the seed "
                  "from a parameter or config");
      }
    }
  }

  bool all_literal_args(std::size_t from, std::size_t to) const {
    bool any = false;
    for (std::size_t j = from; j < to; ++j) {
      if (ts_[j].kind == TokenKind::kNumber) { any = true; continue; }
      if (ts_[j].kind == TokenKind::kPunct &&
          (ts_[j].text == "," || ts_[j].text == "-" || ts_[j].text == "+"))
        continue;
      return false;  // an identifier (threaded seed) or expression
    }
    return any;
  }

  /// Member `Rng` fields collected by scan_rng_constructions: clean only
  /// if some mem-initializer / assignment seeds them elsewhere in the
  /// file (`rng_(opts.seed)`, `rng_ = Rng(seed)`, ...).
  void finalize_member_rng() {
    for (const auto& [name_index, name] : member_rngs_) {
      bool seeded = false;
      for (std::size_t i = 0; i + 1 < ts_.size() && !seeded; ++i) {
        if (!ident(ts_[i], name.c_str())) continue;
        if (i == name_index) continue;  // the declaration itself
        if (punct(ts_[i + 1], "(") || punct(ts_[i + 1], "{")) {
          const char* o = ts_[i + 1].text == "(" ? "(" : "{";
          const char* c = ts_[i + 1].text == "(" ? ")" : "}";
          const std::size_t close = match_forward(ts_, i + 1, o, c);
          if (close > i + 2 && close < ts_.size()) seeded = true;
        } else if (punct(ts_[i + 1], "=")) {
          seeded = true;
        }
      }
      if (!seeded)
        add(ts_[name_index].line, "rng-seed-flow",
            "member `Rng " + name +
                "` is never seeded from a parameter/config (no "
                "mem-initializer or assignment found in this file)");
    }
  }

  // --- banned calls ----------------------------------------------------------

  void scan_banned_calls() {
    for (std::size_t i = 0; i + 1 < ts_.size(); ++i) {
      const Token& t = ts_[i];
      if (!is_ident(t)) continue;
      if (t.text != "rand" && t.text != "srand" && t.text != "time") continue;
      if (!punct(ts_[i + 1], "(")) continue;
      std::string which = t.text;
      if (i > 0) {
        const Token& prev = ts_[i - 1];
        if (punct(prev, "::")) {
          if (i >= 2 && ident(ts_[i - 2], "std")) which = "std::" + which;
          else continue;  // some_ns::time — not libc
        } else if (punct(prev, ".") || punct(prev, "->")) {
          continue;  // member call
        } else if (is_ident(prev) && prev.text != "return") {
          continue;  // `Seconds time(...)` — a declaration
        }
      }
      add(t.line, "banned-call",
          "`" + which +
              "()` breaks same-seed reproducibility; use hcep::Rng / "
              "simulated time");
    }
  }

  // --- simple header rules (unit-double family, std::function) --------------

  void scan_simple_header_rules() {
    const bool pub = is_public_header(path_);
    const bool ctrl = pub && is_control_header(path_);
    const bool hot = pub && is_hot_path_header(path_);
    for (std::size_t i = 0; i + 1 < ts_.size(); ++i) {
      const Token& t = ts_[i];
      if (hot && ident(t, "std") && punct(ts_[i + 1], "::") &&
          i + 2 < ts_.size() && ident(ts_[i + 2], "function")) {
        add(t.line, "std-function-hot-path",
            "std::function in a DES/traffic hot-path header heap-"
            "allocates every event capture (16-byte SBO); use "
            "des::Callback (48-byte inline budget) or a template "
            "parameter");
      }
      if (!pub || !ident(t, "double") || !is_ident(ts_[i + 1])) continue;
      if (i + 2 >= ts_.size()) continue;
      const Token& follow = ts_[i + 2];
      const bool decl_pos =
          punct(follow, ";") || punct(follow, "=") || punct(follow, "{") ||
          punct(follow, "(") || punct(follow, ",") || punct(follow, ")");
      if (!decl_pos) continue;
      const std::string& name = ts_[i + 1].text;
      if (names_physical_unit(name))
        add(t.line, "unit-double",
            "naked `double " + name +
                "` claims a physical unit; use the hcep::units Quantity "
                "type (Joules/Watts/Seconds/Hertz/...)");
      if (ctrl && names_control_signal(name))
        add(t.line, "control-unit-double",
            "raw `double " + name +
                "` power/energy signal in a control-plane header; "
                "controllers must exchange hcep::units quantities "
                "(Watts/Joules) so a W-vs-J slip cannot compile");
    }
  }

  // --- fed site identity ------------------------------------------------------

  /// `Site *` in a federation header: a site addressed by pointer is an
  /// allocation-address identity (ASLR-randomized per run), which the
  /// fleet's byte-determinism contract forbids. Note a pointer to the
  /// site *vector* (`std::vector<Site>*`) tokenizes as `Site > *` and
  /// deliberately does not match — only the element type itself used as
  /// a pointer is site identity.
  void scan_fed_identity() {
    if (!header() || !is_fed_header(path_)) return;
    for (std::size_t i = 0; i + 1 < ts_.size(); ++i) {
      if (!ident(ts_[i], "Site") || !punct(ts_[i + 1], "*")) continue;
      add(ts_[i].line, "site-id-determinism",
          "`Site*` used as site identity orders/compares by allocation "
          "address, which ASLR re-randomizes every run; identify sites "
          "by their index in the scenario's site vector");
    }
  }

  // --- function declarations: nodiscard + unit-flow --------------------------

  void scan_function_decls() {
    const bool pub = is_public_header(path_);
    const bool eval = is_evaluator_header(path_);
    if (!pub && !eval) return;

    for (std::size_t i = 0; i + 2 < ts_.size(); ++i) {
      const ScopeInfo& sc = scopes_[i];
      if (sc.in_function) continue;  // declarations only
      if (!is_ident(ts_[i])) continue;

      // Return type: value-ish single token, quantity alias, or
      // std::size_t / std::uint64_t / std::optional<..> / std::vector<..>.
      std::size_t after_type = 0;
      std::string ret = ts_[i].text;
      bool ret_quantity = quantity_type_name(ret);
      bool ret_value = ret_quantity || ret == "double" || ret == "float";
      if (ident(ts_[i], "std") && punct(ts_[i + 1], "::") &&
          i + 2 < ts_.size() && is_ident(ts_[i + 2])) {
        const std::string& inner = ts_[i + 2].text;
        if (inner == "size_t" || inner == "uint64_t") {
          ret = "std::" + inner;
          ret_value = true;
          after_type = i + 3;
        } else if ((inner == "optional" || inner == "vector") &&
                   i + 3 < ts_.size() && punct(ts_[i + 3], "<")) {
          const std::size_t close = match_forward(ts_, i + 3, "<", ">");
          if (close < ts_.size()) {
            ret = "std::" + inner + "<...>";
            ret_value = true;
            after_type = close + 1;
          }
        }
      } else if (ret_value) {
        after_type = i + 1;
        if (ret == "Quantity" && punct(ts_[i + 1], "<")) {
          const std::size_t close = match_forward(ts_, i + 1, "<", ">");
          if (close >= ts_.size()) continue;
          after_type = close + 1;
        }
      }
      if (!ret_value || after_type == 0 || after_type + 1 >= ts_.size())
        continue;

      // Name + parameter list.
      if (!is_ident(ts_[after_type])) continue;
      const std::string fname = ts_[after_type].text;
      if (!punct(ts_[after_type + 1], "(")) continue;
      const std::size_t close = match_forward(ts_, after_type + 1, "(", ")");
      if (close >= ts_.size()) continue;

      // Declaration position: walk back over specifiers / attributes /
      // template heads to a statement boundary. Anything else (an
      // expression, `=`, `return`) disqualifies.
      bool decl_pos = true, has_nodiscard = false;
      for (std::size_t j = i; j-- > 0;) {
        const Token& p = ts_[j];
        if (punct(p, ";") || punct(p, "{") || punct(p, "}") ||
            punct(p, ":") || p.kind == TokenKind::kDirective)
          break;
        if (punct(p, "]") ) {
          // attribute block `[[...]]`: scan it for nodiscard
          std::size_t k = j;
          while (k-- > 0 && !punct(ts_[k], "[")) {
            if (ident(ts_[k], "nodiscard")) has_nodiscard = true;
          }
          j = k > 0 ? k : 0;
          if (k > 0 && punct(ts_[k - 1], "[")) j = k - 1;
          continue;
        }
        if (punct(p, ">")) {
          // template head `template <...>`: skip backwards to `template`
          int depth = 1;
          std::size_t k = j;
          while (k-- > 0 && depth > 0) {
            if (punct(ts_[k], ">")) ++depth;
            if (punct(ts_[k], "<")) --depth;
          }
          if (k > 0 && ident(ts_[k - 1], "template")) {
            j = k - 1;
            continue;
          }
          decl_pos = false;
          break;
        }
        if (punct(p, "::")) continue;  // qualified return type (hcep::Joules)
        if (is_ident(p) && is_specifier(p.text)) continue;
        if (is_ident(p) && j + 1 < ts_.size() && punct(ts_[j + 1], "::"))
          continue;  // namespace qualifier of the return type
        decl_pos = false;
        break;
      }
      if (!decl_pos) continue;

      if (eval && !has_nodiscard && !sc.in_function) {
        // A following `{` makes this a definition — still a declaration
        // site; both need the attribute. Exclude constructor-ish or
        // control contexts by the shape checks above.
        add(ts_[i].line, "nodiscard",
            "value-returning evaluator `" + fname + "` lacks [[nodiscard]]");
      }

      if (pub && ret_quantity) {
        // unit-flow: Quantity-returning signature with naked double params.
        int depth = 0;
        std::vector<std::vector<const Token*>> params(1);
        for (std::size_t j = after_type + 2; j < close; ++j) {
          const Token& t = ts_[j];
          if (punct(t, "(") || punct(t, "<") || punct(t, "[")) ++depth;
          if (punct(t, ")") || punct(t, ">") || punct(t, "]")) --depth;
          if (depth == 0 && punct(t, ",")) {
            params.emplace_back();
            continue;
          }
          params.back().push_back(&t);
        }
        for (const auto& param : params) {
          bool has_double = false, past_default = false;
          std::string pname;
          for (const Token* t : param) {
            if (punct(*t, "=")) past_default = true;
            if (past_default) continue;
            if (ident(*t, "double")) has_double = true;
            if (is_ident(*t)) pname = t->text;
          }
          if (has_double && !pname.empty() && pname != "double" &&
              !dimensionless_param_name(pname))
            add(ts_[i].line, "unit-flow",
                "`" + fname + "` returns " + ret +
                    " but takes naked `double " + pname +
                    "`; a Quantity-typed boundary must not accept "
                    "untyped physical values — type the parameter");
        }
      }
    }
  }

  // --- mutable statics (facts only; project pass decides) --------------------

  void collect_mutable_statics() {
    if (!header()) return;
    static const std::set<std::string> kSafe = {
        "const",    "constexpr", "constinit",          "thread_local",
        "atomic",   "mutex",     "shared_mutex",       "once_flag",
        "condition_variable", "atomic_flag"};
    for (std::size_t i = 0; i + 1 < ts_.size(); ++i) {
      if (!ident(ts_[i], "static")) continue;
      bool safe = false, is_function = false;
      std::string name;
      std::size_t j = i + 1;
      for (; j < ts_.size(); ++j) {
        const Token& t = ts_[j];
        if (punct(t, ";") || punct(t, "=") || punct(t, "{") || punct(t, "["))
          break;
        if (punct(t, "(")) {
          is_function = j > 0 && is_ident(ts_[j - 1]);
          break;
        }
        if (punct(t, "<")) {
          const std::size_t close = match_forward(ts_, j, "<", ">");
          if (close >= ts_.size()) break;
          for (std::size_t k = j; k < close; ++k)
            if (is_ident(ts_[k]) && kSafe.count(ts_[k].text)) safe = true;
          j = close;
          continue;
        }
        if (is_ident(t)) {
          if (kSafe.count(t.text)) safe = true;
          name = t.text;
        }
      }
      if (safe || is_function || name.empty()) continue;
      if (suppressed(lr_, ts_[i].line, "shared-mutable-static")) continue;
      facts_.mutable_statics.push_back({ts_[i].line, name});
    }
  }

  std::string path_;
  LexResult lr_;
  const std::vector<Token>& ts_;
  std::vector<ScopeInfo> scopes_;
  std::set<std::string> unordered_vars_;
  std::set<std::string> floatish_vars_;
  /// (name-token index, member name) of class-scope `Rng` fields.
  std::vector<std::pair<std::size_t, std::string>> member_rngs_;
  FileFacts facts_;
};

}  // namespace

FileFacts analyze_source(const std::string& source,
                         const std::string& relpath) {
  return FileAnalyzer(source, relpath).run();
}

std::vector<Finding> project_findings(const std::vector<FileFacts>& files) {
  // Resolve quoted includes against src/include/ (the project's only
  // include root) and against the including file's own directory.
  std::map<std::string, const FileFacts*> by_path;
  for (const auto& f : files) by_path[f.path] = &f;

  auto resolve = [&](const std::string& from,
                     const std::string& inc) -> const FileFacts* {
    auto it = by_path.find("src/include/" + inc);
    if (it != by_path.end()) return it->second;
    const std::size_t slash = from.rfind('/');
    if (slash != std::string::npos) {
      it = by_path.find(from.substr(0, slash + 1) + inc);
      if (it != by_path.end()) return it->second;
    }
    return nullptr;
  };

  // BFS from shard-marker TUs over include edges.
  std::set<std::string> reachable;
  std::vector<const FileFacts*> queue;
  for (const auto& f : files)
    if (f.uses_shard_markers && reachable.insert(f.path).second)
      queue.push_back(&f);
  while (!queue.empty()) {
    const FileFacts* f = queue.back();
    queue.pop_back();
    for (const auto& inc : f->includes) {
      const FileFacts* target = resolve(f->path, inc);
      if (target != nullptr && reachable.insert(target->path).second)
        queue.push_back(target);
    }
  }

  std::vector<Finding> out;
  for (const auto& f : files) {
    if (reachable.count(f.path) == 0) continue;
    for (const auto& ms : f.mutable_statics)
      out.push_back(
          {f.path, ms.line, "shared-mutable-static",
           "mutable static `" + ms.name +
               "` in a header reachable from ShardedSimulator/"
               "parallel_for code; shards would race on it — use "
               "std::atomic, thread_local, const, or per-shard state"});
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.line < b.line;
  });
  return out;
}

bool is_public_header(const std::string& relpath) {
  return contains(relpath, "src/include/");
}
bool is_control_header(const std::string& relpath) {
  return contains(relpath, "include/hcep/control/");
}
bool is_hot_path_header(const std::string& relpath) {
  if (!contains(relpath, "include/hcep/")) return false;
  return contains(relpath, "/des/") || contains(relpath, "/traffic/");
}
bool is_evaluator_header(const std::string& relpath) {
  if (!contains(relpath, "include/hcep/")) return false;
  return contains(relpath, "/model/") || contains(relpath, "/metrics/") ||
         contains(relpath, "/config/") || contains(relpath, "/power/") ||
         contains(relpath, "/workload/") || contains(relpath, "/traffic/") ||
         contains(relpath, "/obs/stream");
}
bool is_deterministic_output_path(const std::string& relpath) {
  return contains(relpath, "report") || contains(relpath, "export") ||
         contains(relpath, "json") || contains(relpath, "csv") ||
         contains(relpath, "/table");
}
bool is_fed_header(const std::string& relpath) {
  return contains(relpath, "include/hcep/fed/");
}

}  // namespace hcep::lint
