// hcep-lint scope tracker: brace/namespace/class/function structure over
// the token stream.
//
// The rule passes need to know, for any token, whether it sits at
// namespace scope, inside a class body, or inside a function body (and
// which one): a `static` local in a function is a different hazard from
// a `static` data member, and a `Rng rng;` class member is judged by its
// mem-initializers while a `Rng rng;` local is a finding on its own.
//
// The tracker is a single forward pass that classifies every `{` by the
// tokens that precede it:
//   namespace <name...> {            -> Namespace scope
//   class/struct/union/enum ... {    -> ClassLike scope
//   ...name ( params ) [specs] {     -> Function scope (incl. ctors,
//                                       operators, lambdas degrade to
//                                       Block)
//   anything else                    -> Block
// and records, for every token index, the innermost enclosing scope of
// each kind. Heuristic by construction — it does not parse C++ — but
// exact on this codebase's style, and the fixtures in tests/test_lint.cpp
// pin the cases the rules rely on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace hcep::lint {

enum class ScopeKind { kNamespace, kClassLike, kFunction, kBlock };

struct Scope {
  ScopeKind kind;
  std::string name;  ///< namespace/class/function name ("" if anonymous)
};

/// Per-token view of the enclosing scope stack.
struct ScopeInfo {
  std::string namespace_path;  ///< "hcep::control" at the token
  std::string class_name;      ///< innermost enclosing class ("" if none)
  std::string function_name;   ///< innermost enclosing function ("" if none)
  bool in_function = false;
  /// Directly at namespace (or file) scope: not inside any class body,
  /// function body or plain block.
  bool at_namespace_scope = true;
  /// Directly inside a class body (member-declaration position).
  bool at_class_scope = false;
  std::size_t depth = 0;  ///< brace depth
};

/// Computes scope info for every token; result[i] describes tokens[i].
/// Size always equals tokens.size().
std::vector<ScopeInfo> track_scopes(const std::vector<Token>& tokens);

}  // namespace hcep::lint
