// hcep-lint analyzer: the per-file symbol/rule pass and the cross-file
// project pass.
//
// Pipeline (see docs/STATIC_ANALYSIS.md §2):
//   lex() -> track_scopes() -> per-file symbol collection + file-local
//   rules -> FileFacts                          (analyze_source, cacheable)
//   all FileFacts -> include graph -> shard-reachable set ->
//   shared-mutable-static findings              (project_findings)
#pragma once

#include <string>
#include <vector>

#include "facts.hpp"

namespace hcep::lint {

/// Runs the per-file pass over one translation unit. `relpath` is the
/// repo-relative generic path ("src/include/hcep/des/simulator.hpp");
/// path shape decides which rule families apply.
FileFacts analyze_source(const std::string& source, const std::string& relpath);

/// Cross-file pass: builds the include graph over all analyzed files,
/// marks everything transitively included by shard-marker TUs
/// (ShardedSimulator / parallel_for users), and turns MutableStatic
/// facts in reachable headers into shared-mutable-static findings.
std::vector<Finding> project_findings(const std::vector<FileFacts>& files);

// --- Path classification (shared with the driver and tests) -----------------

bool is_public_header(const std::string& relpath);
bool is_control_header(const std::string& relpath);
bool is_hot_path_header(const std::string& relpath);
bool is_evaluator_header(const std::string& relpath);
bool is_deterministic_output_path(const std::string& relpath);
bool is_fed_header(const std::string& relpath);

}  // namespace hcep::lint
