# Compile-(fail|pass) driver for the dimensional-analysis harness.
# Usage:
#   cmake -DCXX=<compiler> -DINCLUDE_DIR=<dir> -DSOURCE=<file>
#         -DEXPECT=fail|ok -P compile_fail.cmake
# EXPECT=fail: the snippet must NOT compile (a wrong-dimension program).
# EXPECT=ok:   the snippet must compile (control — proves the harness
#              would notice a broken include path rather than pass
#              everything vacuously).

execute_process(
  COMMAND ${CXX} -std=c++20 -fsyntax-only -I${INCLUDE_DIR} ${SOURCE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "fail")
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "${SOURCE} compiled but must not: the units layer failed to reject "
      "wrong-dimension arithmetic")
  endif()
  message(STATUS "${SOURCE} rejected as required")
elseif(EXPECT STREQUAL "ok")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${SOURCE} must compile but failed:\n${err}")
  endif()
  message(STATUS "${SOURCE} compiled as required")
else()
  message(FATAL_ERROR "EXPECT must be 'fail' or 'ok', got '${EXPECT}'")
endif()
