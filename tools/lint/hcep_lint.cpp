// hcep-lint driver: the project's determinism/units auditor.
//
// Byte-determinism per (seed, shards) is this repo's load-bearing
// invariant — the frozen-controller oracle, the serial/parallel timeline
// identity, and every BENCH_*.json gate depend on it. The analyzer
// behind this driver is a real multi-pass checker (not line regexes):
//
//   pass 1  lexer.cpp     comment/string/raw-string-aware tokenizer
//   pass 2  scope.cpp     brace/namespace/class/function scope tracking
//   pass 3  analyzer.cpp  per-file symbol collection + file-local rules
//   pass 4  analyzer.cpp  include graph -> shard-reachable headers ->
//                         cross-file rules
//
// Rule catalog lives in rules.hpp (one SARIF descriptor per rule).
// Findings emit as text (stdout) and optionally SARIF 2.1.0 (--sarif)
// for CI PR annotation. A checked-in baseline (--baseline) supports
// ratcheting: only findings beyond the baselined count fail the scan.
// A per-file mtime+hash cache (--cache) keeps the full-tree scan fast
// enough to stay a default `lint`-label ctest.
//
// Suppress a finding by appending
//   // hcep-lint: allow(<rule>)
// to the offending line (grep-able, reviewed like any other annotation).
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
// `--selftest <fixture-root>` scans a tree seeded with one-or-more live
// violations AND a suppressed twin per rule and exits 0 only when every
// rule fires exactly its expected count — the proof that a planted bug
// actually fails the build and that suppressions actually silence.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "cache.hpp"
#include "rules.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;

namespace hcep::lint {
namespace {

struct Options {
  fs::path root;
  fs::path sarif_path;
  fs::path baseline_path;
  fs::path cache_path;
  bool selftest = false;
  bool update_baseline = false;
  bool list_rules = false;
};

struct ScanResult {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t cache_hits = 0;
};

bool has_ext(const fs::path& p, std::initializer_list<const char*> exts) {
  const std::string e = p.extension().string();
  for (const char* x : exts)
    if (e == x) return true;
  return false;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

/// Scans <root>/src, using (and updating) the cache when one is given.
ScanResult scan_tree(const fs::path& root, ResultCache* cache) {
  const fs::path src = root / "src";
  if (!fs::exists(src)) {
    std::cerr << "hcep-lint: no src/ under " << root << "\n";
    std::exit(2);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    if (!has_ext(entry.path(), {".hpp", ".h", ".cpp", ".cc"})) continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // deterministic report order

  ScanResult result;
  std::vector<FileFacts> facts;
  facts.reserve(files.size());
  for (const auto& f : files) {
    const std::string rel = fs::relative(f, root).generic_string();
    CacheKey key;
    key.size = static_cast<std::uint64_t>(fs::file_size(f));
    key.mtime_ns = static_cast<std::int64_t>(
        fs::last_write_time(f).time_since_epoch().count());
    bool hit = false;
    if (cache != nullptr) {
      // mtime+size fast path first; on miss, hash the content before
      // giving up (checkouts and touch(1) change mtime, not bytes).
      if (auto cached = cache->lookup(rel, key)) {
        facts.push_back(std::move(*cached));
        hit = true;
      } else {
        const std::string text = read_file(f);
        key.content_hash = fnv1a64(text);
        if (auto rehashed = cache->lookup(rel, key)) {
          cache->store(rel, key, *rehashed);  // refresh mtime
          facts.push_back(std::move(*rehashed));
          hit = true;
        } else {
          FileFacts ff = analyze_source(text, rel);
          cache->store(rel, key, ff);
          facts.push_back(std::move(ff));
        }
      }
    } else {
      facts.push_back(analyze_source(read_file(f), rel));
    }
    result.cache_hits += hit ? 1 : 0;
    ++result.files_scanned;
  }

  for (const auto& ff : facts)
    result.findings.insert(result.findings.end(), ff.findings.begin(),
                           ff.findings.end());
  const std::vector<Finding> cross = project_findings(facts);
  result.findings.insert(result.findings.end(), cross.begin(), cross.end());
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

// --- Baseline (ratcheting) ---------------------------------------------------

using BaselineCounts = std::map<std::pair<std::string, std::string>, long>;

BaselineCounts load_baseline(const fs::path& path) {
  BaselineCounts counts;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string rule, file;
    long count = 0;
    if (ss >> rule >> file >> count) counts[{rule, file}] = count;
  }
  return counts;
}

BaselineCounts count_findings(const std::vector<Finding>& findings) {
  BaselineCounts counts;
  for (const auto& f : findings) ++counts[{f.rule, f.file}];
  return counts;
}

bool write_baseline(const fs::path& path, const BaselineCounts& counts) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# hcep-lint baseline: accepted findings per (rule, file).\n"
      << "# A scan fails only on findings beyond these counts; shrink a\n"
      << "# count (or delete a line) as findings are fixed — the ratchet\n"
      << "# only turns one way. Regenerate with --update-baseline.\n";
  for (const auto& [key, count] : counts)
    out << key.first << " " << key.second << " " << count << "\n";
  return static_cast<bool>(out);
}

// --- Reporting ---------------------------------------------------------------

int report(const ScanResult& scan, const Options& opt) {
  const std::vector<Finding>& findings = scan.findings;

  if (!opt.sarif_path.empty()) {
    std::ofstream out(opt.sarif_path, std::ios::trunc);
    out << to_sarif(findings);
    if (!out) {
      std::cerr << "hcep-lint: cannot write SARIF to " << opt.sarif_path
                << "\n";
      return 2;
    }
  }

  BaselineCounts baseline;
  if (!opt.baseline_path.empty() && !opt.update_baseline)
    baseline = load_baseline(opt.baseline_path);

  // Findings beyond the baselined per-(rule,file) count are "new".
  BaselineCounts seen;
  std::vector<const Finding*> fresh;
  std::size_t baselined = 0;
  for (const auto& f : findings) {
    const long allowed = [&] {
      const auto it = baseline.find({f.rule, f.file});
      return it == baseline.end() ? 0L : it->second;
    }();
    if (++seen[{f.rule, f.file}] > allowed) fresh.push_back(&f);
    else ++baselined;
  }

  for (const Finding* f : fresh)
    std::cout << f->file << ":" << f->line << ": [" << f->rule << "] "
              << f->message << "\n";

  // Stale baseline entries (counts above reality) are ratchet slack:
  // report them so they get tightened, but do not fail the build.
  std::size_t stale = 0;
  for (const auto& [key, allowed] : baseline) {
    const auto it = seen.find(key);
    const long actual = it == seen.end() ? 0 : it->second;
    if (actual < allowed) {
      std::cout << "hcep-lint: baseline entry `" << key.first << " "
                << key.second << "` allows " << allowed << " but only "
                << actual << " remain — ratchet it down\n";
      ++stale;
    }
  }

  std::cout << "hcep-lint: scanned " << scan.files_scanned << " file(s), "
            << scan.cache_hits << " cache hit(s)\n";
  if (opt.update_baseline) {
    if (!write_baseline(opt.baseline_path, count_findings(findings))) {
      std::cerr << "hcep-lint: cannot write baseline " << opt.baseline_path
                << "\n";
      return 2;
    }
    std::cout << "hcep-lint: baseline updated (" << findings.size()
              << " finding(s) accepted)\n";
    return 0;
  }
  if (fresh.empty()) {
    std::cout << "hcep-lint: clean";
    if (baselined > 0) std::cout << " (" << baselined << " baselined)";
    std::cout << "\n";
    return 0;
  }
  std::cout << "hcep-lint: " << fresh.size() << " new finding(s)";
  if (baselined > 0) std::cout << " (+" << baselined << " baselined)";
  std::cout << "\n";
  return 1;
}

// --- Selftest ----------------------------------------------------------------

int selftest(const fs::path& fixtures) {
  const ScanResult scan = scan_tree(fixtures, nullptr);
  // Per-rule seeded-violation counts. Every rule in the catalog must
  // appear here with a nonzero count, and every fixture plants a
  // suppressed twin next to each live violation, so an off-count in
  // either direction fails: a rule that stopped firing, a rule that
  // fires on its twin, and a rule with no fixture are all defects.
  const std::map<std::string, std::size_t> expected = {
      {"unit-double", 3},          {"control-unit-double", 2},
      {"nodiscard", 3},            {"unordered-iteration", 2},
      {"banned-call", 1},          {"std-function-hot-path", 1},
      {"rng-seed-flow", 3},        {"pointer-key", 2},
      {"thread-id-identity", 1},   {"float-order-reduction", 1},
      {"shared-mutable-static", 1},{"unit-flow", 1},
      {"site-id-determinism", 2}};
  std::map<std::string, std::size_t> fired;
  for (const auto& f : scan.findings) ++fired[f.rule];
  int rc = 0;
  for (const auto& rule : rule_catalog()) {
    if (!expected.count(rule.id)) {
      std::cout << "selftest: rule " << rule.id
                << " is in the catalog but has no fixture expectation\n";
      rc = 1;
    }
  }
  for (const auto& [rule, want] : expected) {
    if (!known_rule(rule)) {
      std::cout << "selftest: expectation for unknown rule " << rule << "\n";
      rc = 1;
      continue;
    }
    const std::size_t got = fired.count(rule) ? fired.at(rule) : 0;
    if (got == want) {
      std::cout << "selftest: rule " << rule << " fired " << got << "/"
                << want << "\n";
    } else {
      std::cout << "selftest: rule " << rule << " fired " << got
                << " time(s), expected " << want
                << " (suppressed twins must stay silent)\n";
      for (const auto& f : scan.findings)
        if (f.rule == rule)
          std::cout << "  at " << f.file << ":" << f.line << "\n";
      rc = 1;
    }
  }
  for (const auto& [rule, got] : fired) {
    if (!expected.count(rule)) {
      std::cout << "selftest: unexpected rule " << rule << " fired " << got
                << " time(s)\n";
      rc = 1;
    }
  }
  std::cout << "selftest: " << scan.findings.size() << " finding(s) total\n";
  return rc;
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "hcep-lint: " << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = value("--root");
    } else if (arg == "--selftest") {
      opt.selftest = true;
      opt.root = value("--selftest");
    } else if (arg == "--sarif") {
      opt.sarif_path = value("--sarif");
    } else if (arg == "--baseline") {
      opt.baseline_path = value("--baseline");
    } else if (arg == "--update-baseline") {
      opt.update_baseline = true;
    } else if (arg == "--cache") {
      opt.cache_path = value("--cache");
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: hcep-lint --root <repo> [--sarif out.sarif]\n"
          << "                 [--baseline file [--update-baseline]]\n"
          << "                 [--cache file]\n"
          << "       hcep-lint --selftest <fixtures>\n"
          << "       hcep-lint --list-rules\n";
      return 0;
    } else {
      std::cerr << "hcep-lint: unknown argument " << arg << "\n";
      return 2;
    }
  }
  if (opt.list_rules) {
    for (const auto& r : rule_catalog())
      std::cout << r.id << "\n  " << r.summary << "\n";
    return 0;
  }
  if (opt.root.empty()) {
    std::cerr << "hcep-lint: --root is required\n";
    return 2;
  }
  if (opt.update_baseline && opt.baseline_path.empty()) {
    std::cerr << "hcep-lint: --update-baseline requires --baseline\n";
    return 2;
  }
  if (opt.selftest) return selftest(opt.root);

  if (!opt.cache_path.empty()) {
    ResultCache cache = ResultCache::load(opt.cache_path.string());
    const ScanResult scan = scan_tree(opt.root, &cache);
    if (!cache.save(opt.cache_path.string()))
      std::cerr << "hcep-lint: warning: cannot write cache "
                << opt.cache_path << "\n";
    return report(scan, opt);
  }
  return report(scan_tree(opt.root, nullptr), opt);
}

}  // namespace
}  // namespace hcep::lint

int main(int argc, char** argv) { return hcep::lint::run(argc, argv); }
