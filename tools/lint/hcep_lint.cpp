// hcep-lint: project-specific static checks the compiler cannot express.
//
// A deliberately small, libclang-free checker (the container has no
// clang-tidy): line-oriented regex heuristics tuned to this codebase's
// conventions, precise enough to gate CI. The rules encode decisions made
// in earlier PRs:
//
//   unit-double          Public headers must not declare naked `double`
//                        fields/functions whose names claim a physical
//                        unit (*_energy, *_power, *_freq*, *_j, *_w,
//                        *_hz, ...). Use the hcep::units Quantity types —
//                        the whole point of compile-time dimensional
//                        analysis is that such a double cannot exist.
//   control-unit-double  Stricter vocabulary for the closed-loop control
//                        surface (include/hcep/control/): power/energy
//                        signals crossing the Controller/Actuator
//                        interface also go by cap, budget, draw, savings,
//                        penalty, floor — a raw `double` under any of
//                        those names is a W-vs-J slip waiting to happen
//                        and must be a units quantity too.
//   unordered-iteration  Report/JSON/export translation units feed
//                        byte-identical same-seed artifacts (PR 3
//                        guarantee); std::unordered_{map,set} iteration
//                        order is nondeterministic, so those TUs must not
//                        use the hash containers at all.
//   nodiscard            Model/metrics/config/power evaluators returning
//                        a value must be [[nodiscard]]: dropping a
//                        computed Joules/Watts on the floor is always a
//                        bug.
//   banned-call          rand()/srand()/time() in src/ break same-seed
//                        reproducibility; use hcep::Rng and simulated
//                        clocks.
//   std-function-hot-path
//                        The DES/traffic hot-path headers (include/hcep/
//                        {des,traffic}/) must not declare std::function:
//                        its 16-byte SBO heap-allocates every kernel
//                        capture, which is exactly what the des::Callback
//                        rewrite removed (one malloc per scheduled event
//                        plus one per priority_queue::top() copy). Use
//                        des::Callback or a template parameter.
//
// Suppress a finding by appending
//   // hcep-lint: allow(<rule>)
// to the offending line (grep-able, reviewed like any other annotation).
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
// `--selftest <fixture-root>` scans a tree seeded with one violation per
// rule and exits 0 only when every rule fires — the proof demanded by the
// acceptance criteria that a planted unit bug actually fails the build.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  fs::path root;
  bool selftest = false;
  bool list_rules = false;
};

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

bool suppressed(const std::string& line, const std::string& rule) {
  return contains(line, "hcep-lint: allow(" + rule + ")") ||
         contains(line, "NOLINT(" + rule + ")");
}

/// Strips // comments and string literals so rules don't fire on prose.
/// (Block comments are handled coarsely: lines inside /* ... */ are
/// blanked by the caller's state machine.)
std::string code_only(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  bool in_string = false, in_char = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') { ++i; continue; }
      if (c == '"') in_string = false;
      continue;
    }
    if (in_char) {
      if (c == '\\') { ++i; continue; }
      if (c == '\'') in_char = false;
      continue;
    }
    if (c == '"') { in_string = true; continue; }
    if (c == '\'') { in_char = true; continue; }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    out.push_back(c);
  }
  return out;
}

/// The identifier heuristic for "this double claims to be a physical
/// quantity": exact unit words, or unit-word / unit-symbol suffixes.
bool names_physical_unit(const std::string& name) {
  static const std::vector<std::string> kExact = {
      "energy", "power",    "freq",    "frequency", "joules",
      "watts",  "hertz",    "latency", "deadline",  "sojourn"};
  static const std::vector<std::string> kSuffix = {
      "_energy", "_power", "_freq",    "_frequency", "_joules",
      "_watts",  "_hertz", "_hz",      "_j",         "_w",
      "_kwh",    "_mhz",   "_ghz",     "_latency",   "_deadline",
      "_sojourn"};
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  for (const auto& e : kExact)
    if (lower == e) return true;
  for (const auto& s : kSuffix)
    if (lower.size() > s.size() &&
        lower.compare(lower.size() - s.size(), s.size(), s) == 0)
      return true;
  return false;
}

using LineRule = void (*)(const fs::path&, std::size_t, const std::string&,
                          const std::string&, std::vector<Finding>&);

// --- Rule: unit-double -------------------------------------------------------

void rule_unit_double(const fs::path& file, std::size_t lineno,
                      const std::string& raw, const std::string& code,
                      std::vector<Finding>& out) {
  // Matches `double <ident>` in field, parameter or function-declaration
  // position; the identifier decides whether a unit type was required.
  static const std::regex decl(
      R"(\bdouble\s+([A-Za-z_][A-Za-z0-9_]*)\s*[;={(,)])");
  auto begin = std::sregex_iterator(code.begin(), code.end(), decl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (!names_physical_unit(name)) continue;
    if (suppressed(raw, "unit-double")) continue;
    out.push_back({file.string(), lineno, "unit-double",
                   "naked `double " + name +
                       "` claims a physical unit; use the hcep::units "
                       "Quantity type (Joules/Watts/Seconds/Hertz/...)"});
  }
}

// --- Rule: control-unit-double ----------------------------------------------

/// Control-plane signal names that denote power/energy without naming the
/// physical unit outright: the rack cap, power budgets, instantaneous
/// draw, gating savings, wake penalties, sleep floors.
bool names_control_signal(const std::string& name) {
  static const std::vector<std::string> kExact = {"cap", "budget", "draw",
                                                  "savings", "penalty"};
  static const std::vector<std::string> kSuffix = {
      "_cap", "_budget", "_draw", "_savings", "_penalty", "_floor"};
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  for (const auto& e : kExact)
    if (lower == e) return true;
  for (const auto& s : kSuffix)
    if (lower.size() > s.size() &&
        lower.compare(lower.size() - s.size(), s.size(), s) == 0)
      return true;
  return false;
}

void rule_control_unit_double(const fs::path& file, std::size_t lineno,
                              const std::string& raw, const std::string& code,
                              std::vector<Finding>& out) {
  static const std::regex decl(
      R"(\bdouble\s+([A-Za-z_][A-Za-z0-9_]*)\s*[;={(,)])");
  auto begin = std::sregex_iterator(code.begin(), code.end(), decl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    // The physical-unit vocabulary is already covered by unit-double;
    // this rule adds the control-plane synonyms on top.
    if (!names_control_signal(name)) continue;
    if (suppressed(raw, "control-unit-double")) continue;
    out.push_back({file.string(), lineno, "control-unit-double",
                   "raw `double " + name +
                       "` power/energy signal in a control-plane header; "
                       "controllers must exchange hcep::units quantities "
                       "(Watts/Joules) so a W-vs-J slip cannot compile"});
  }
}

// --- Rule: unordered-iteration ----------------------------------------------

void rule_unordered(const fs::path& file, std::size_t lineno,
                    const std::string& raw, const std::string& code,
                    std::vector<Finding>& out) {
  static const std::regex hash(R"(\bstd::unordered_(map|set|multimap|multiset)\b)");
  if (!std::regex_search(code, hash)) return;
  if (suppressed(raw, "unordered-iteration")) return;
  out.push_back({file.string(), lineno, "unordered-iteration",
                 "hash-container in a deterministic report/JSON path; "
                 "iteration order would break the byte-identical "
                 "same-seed guarantee — use std::map or sort the keys"});
}

// --- Rule: nodiscard ---------------------------------------------------------

/// Value-returning evaluator declarations in the model-facing headers.
/// Heuristic: a line that *starts* a declaration with a value-ish return
/// type and an identifier + '(' must carry [[nodiscard]] on the same or
/// the previous line. Assignments, control flow and locals inside inline
/// bodies are excluded by requiring declaration position (leading
/// whitespace then type).
void check_nodiscard(const fs::path& file,
                     const std::vector<std::string>& lines,
                     std::vector<Finding>& out) {
  static const std::regex decl(
      R"(^\s*(?:static\s+|virtual\s+|constexpr\s+|friend\s+)*)"
      R"((double|float|Seconds|Joules|Watts|Hertz|Cycles|Bytes|BytesPerSecond|)"
      R"(OpsPerSecond|JoulesPerOp|JouleSeconds|JouleSecondsSquared|)"
      R"(std::(?:size_t|uint64_t|optional<[^;]*>|vector<[^;]*>))\s+)"
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
  static const std::regex control(R"(\b(if|for|while|switch|return)\b)");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string code = code_only(lines[i]);
    std::smatch m;
    if (!std::regex_search(code, m, decl)) continue;
    if (std::regex_search(code, control)) continue;
    if (contains(code, "=")) continue;  // assignment / default-arg lambda
    if (contains(code, "[[nodiscard]]")) continue;
    if (i > 0 && contains(code_only(lines[i - 1]), "[[nodiscard]]")) continue;
    if (suppressed(lines[i], "nodiscard")) continue;
    out.push_back({file.string(), i + 1, "nodiscard",
                   "value-returning evaluator `" + m[2].str() +
                       "` lacks [[nodiscard]]"});
  }
}

// --- Rule: banned-call -------------------------------------------------------

void rule_banned(const fs::path& file, std::size_t lineno,
                 const std::string& raw, const std::string& code,
                 std::vector<Finding>& out) {
  // `(^|[^\w.:>])` blocks members (.time(), ->time()), qualified names
  // and identifiers *_time( / *rand(; an explicit std:: qualification is
  // matched separately. A declaration `Seconds time(std::size_t)` is told
  // apart from a call by what precedes the token: calls follow an
  // operator, a statement boundary or `return`, declarations follow a
  // type name.
  static const std::regex bare(R"((^|[^A-Za-z0-9_.:>])(rand|srand|time)\s*\()");
  static const std::regex qualified(R"(\bstd::(rand|srand|time)\s*\()");
  std::smatch m;
  std::string which;
  if (std::regex_search(code, m, qualified)) {
    which = "std::" + m[1].str();
  } else if (std::regex_search(code, m, bare)) {
    // Position of the function token itself (group 2).
    const auto tok = static_cast<std::size_t>(m.position(2));
    std::size_t i = tok;
    while (i > 0 && code[i - 1] == ' ') --i;
    if (i > 0 && (std::isalnum(static_cast<unsigned char>(code[i - 1])) ||
                  code[i - 1] == '_')) {
      std::size_t w = i;
      while (w > 0 && (std::isalnum(static_cast<unsigned char>(code[w - 1])) ||
                       code[w - 1] == '_'))
        --w;
      if (code.substr(w, i - w) != "return") return;  // declaration
    }
    which = m[2].str();
  } else {
    return;
  }
  if (suppressed(raw, "banned-call")) return;
  out.push_back({file.string(), lineno, "banned-call",
                 "`" + which +
                     "()` breaks same-seed reproducibility; use hcep::Rng "
                     "/ simulated time"});
}

// --- Rule: std-function-hot-path --------------------------------------------

void rule_std_function(const fs::path& file, std::size_t lineno,
                       const std::string& raw, const std::string& code,
                       std::vector<Finding>& out) {
  if (!contains(code, "std::function")) return;
  if (suppressed(raw, "std-function-hot-path")) return;
  out.push_back({file.string(), lineno, "std-function-hot-path",
                 "std::function in a DES/traffic hot-path header heap-"
                 "allocates every event capture (16-byte SBO); use "
                 "des::Callback (48-byte inline budget) or a template "
                 "parameter"});
}

// --- Driver ------------------------------------------------------------------

std::vector<std::string> read_lines(const fs::path& p) {
  std::ifstream in(p);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool has_ext(const fs::path& p, std::initializer_list<const char*> exts) {
  const std::string e = p.extension().string();
  for (const char* x : exts)
    if (e == x) return true;
  return false;
}

/// Deterministic-output translation units: anything producing the JSON /
/// table artifacts whose bytes the same-seed tests compare.
bool deterministic_output_path(const fs::path& p) {
  const std::string s = p.generic_string();
  return contains(s, "report") || contains(s, "export") ||
         contains(s, "json") || contains(s, "/table");
}

/// Event-kernel hot-path headers: every type declared here sits on the
/// per-event path of the DES or traffic simulators.
bool hot_path_header(const fs::path& p) {
  const std::string s = p.generic_string();
  if (!contains(s, "include/hcep/")) return false;
  return contains(s, "/des/") || contains(s, "/traffic/");
}

/// Closed-loop control surface: the Controller/Actuator interface and the
/// policy option structs, where every power/energy signal must be typed.
bool control_header(const fs::path& p) {
  return contains(p.generic_string(), "include/hcep/control/");
}

/// Headers whose evaluators must be [[nodiscard]]: the model-facing
/// public surface, plus the streaming-telemetry headers (narrowed to
/// /obs/stream* so the ambient-instrumentation obs headers keep their
/// fire-and-forget probe style).
bool evaluator_header(const fs::path& p) {
  const std::string s = p.generic_string();
  if (!contains(s, "include/hcep/")) return false;
  return contains(s, "/model/") || contains(s, "/metrics/") ||
         contains(s, "/config/") || contains(s, "/power/") ||
         contains(s, "/workload/") || contains(s, "/traffic/") ||
         contains(s, "/obs/stream");
}

void scan_file(const fs::path& file, const fs::path& root,
               std::vector<Finding>& out) {
  const std::vector<std::string> lines = read_lines(file);
  const std::string rel = fs::relative(file, root).generic_string();
  const bool is_public_header = contains(rel, "src/include/");
  const bool in_src = rel.rfind("src/", 0) == 0;

  bool in_block_comment = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string code = code_only(lines[i]);
    // Coarse block-comment state machine (good enough for this tree:
    // no code after */ on the same line).
    if (in_block_comment) {
      const auto end = code.find("*/");
      if (end == std::string::npos) continue;
      code = code.substr(end + 2);
      in_block_comment = false;
    }
    const auto start = code.find("/*");
    if (start != std::string::npos) {
      if (code.find("*/", start + 2) == std::string::npos)
        in_block_comment = true;
      code = code.substr(0, start);
    }

    if (is_public_header)
      rule_unit_double(file, i + 1, lines[i], code, out);
    if (is_public_header && control_header(file))
      rule_control_unit_double(file, i + 1, lines[i], code, out);
    if (is_public_header && hot_path_header(file))
      rule_std_function(file, i + 1, lines[i], code, out);
    if (in_src && deterministic_output_path(file))
      rule_unordered(file, i + 1, lines[i], code, out);
    if (in_src)
      rule_banned(file, i + 1, lines[i], code, out);
  }

  if (evaluator_header(file)) check_nodiscard(file, lines, out);
}

std::vector<Finding> scan_tree(const fs::path& root) {
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  const fs::path src = root / "src";
  if (!fs::exists(src)) {
    std::cerr << "hcep-lint: no src/ under " << root << "\n";
    std::exit(2);
  }
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    if (!has_ext(entry.path(), {".hpp", ".h", ".cpp", ".cc"})) continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // deterministic report order
  for (const auto& f : files) scan_file(f, root, findings);
  return findings;
}

int report(const std::vector<Finding>& findings) {
  for (const auto& f : findings)
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  if (findings.empty()) {
    std::cout << "hcep-lint: clean\n";
    return 0;
  }
  std::cout << "hcep-lint: " << findings.size() << " finding(s)\n";
  return 1;
}

int selftest(const fs::path& fixtures) {
  const std::vector<Finding> findings = scan_tree(fixtures);
  // Per-rule seeded-violation counts: the model fixture plants one
  // unit-double + one nodiscard, the traffic fixture plants one of each
  // again (latency/sojourn identifier forms), the obs/stream fixture a
  // third pair (streaming aggregates), report_bad.cpp plants the
  // hash-container and the rand() call, the des fixture plants the
  // std::function hot-path hit, and the control fixture plants two
  // control-vocabulary doubles (cap, power_budget). Each live bug has a
  // suppressed twin that must stay silent, so the counts are exact.
  const std::map<std::string, std::size_t> expected = {
      {"unit-double", 3},
      {"control-unit-double", 2},
      {"nodiscard", 3},
      {"unordered-iteration", 1},
      {"banned-call", 1},
      {"std-function-hot-path", 1}};
  std::map<std::string, std::size_t> fired;
  for (const auto& f : findings) ++fired[f.rule];
  int rc = 0;
  for (const auto& [rule, want] : expected) {
    const std::size_t got = fired.count(rule) ? fired.at(rule) : 0;
    if (got == want) {
      std::cout << "selftest: rule " << rule << " fired " << got
                << "/" << want << "\n";
    } else {
      std::cout << "selftest: rule " << rule << " fired " << got
                << " time(s), expected " << want
                << " (suppressed twins must stay silent)\n";
      rc = 1;
    }
  }
  std::cout << "selftest: " << findings.size() << " finding(s) total\n";
  for (const auto& [rule, got] : fired) {
    if (!expected.count(rule)) {
      std::cout << "selftest: unexpected rule " << rule << "\n";
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--selftest" && i + 1 < argc) {
      opt.selftest = true;
      opt.root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: hcep-lint --root <repo> | --selftest <fixtures>\n";
      return 0;
    } else {
      std::cerr << "hcep-lint: unknown argument " << arg << "\n";
      return 2;
    }
  }
  if (opt.root.empty()) {
    std::cerr << "hcep-lint: --root is required\n";
    return 2;
  }
  if (opt.selftest) return selftest(opt.root);
  return report(scan_tree(opt.root));
}
