// hcep-lint lexer: a comment/string/raw-string-aware C++ tokenizer.
//
// The old checker worked on comment-stripped *lines*, which cannot see a
// declaration split across lines, a raw string containing `rand()`, or a
// line-continuation comment swallowing the next line. This pass turns a
// translation unit into a flat token stream once; every later pass
// (scope tracking, symbol collection, rules) consumes tokens, never raw
// text. Preprocessor directives are captured as single Directive tokens
// (with line continuations folded) so the include-graph pass can parse
// them and the rule passes can skip macro bodies uniformly.
//
// Suppression comments are extracted here as a side table: any comment
// containing `hcep-lint: allow(<rule>)` or `NOLINT(<rule>)` registers
// <rule> as suppressed on the comment's line.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace hcep::lint {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords (the lexer does not split them)
  kNumber,      ///< pp-numbers: 10, 0x1f, 1e-9, 1'000'000, 3.f
  kString,      ///< string literal (any prefix, incl. raw); text is the body
  kChar,        ///< character literal; text is the body
  kPunct,       ///< operators and punctuation, greedily matched (::, ->, <<=)
  kDirective,   ///< whole preprocessor line, continuations folded
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line = 0;  ///< 1-based line of the token's first character
};

struct LexResult {
  std::vector<Token> tokens;
  /// line -> rules suppressed on that line via allow()/NOLINT() comments.
  std::map<std::size_t, std::set<std::string>> suppressions;
};

/// Tokenizes one translation unit. Never fails: unterminated constructs
/// are closed at end-of-file (the linter must degrade, not crash, on
/// half-written code).
LexResult lex(const std::string& source);

/// True when `line` carries a suppression for `rule` in `lr`.
bool suppressed(const LexResult& lr, std::size_t line, const std::string& rule);

}  // namespace hcep::lint
