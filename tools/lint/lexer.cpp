#include "lexer.hpp"

#include <cctype>

namespace hcep::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators, longest first so greedy matching works.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", ".*"};

/// Records allow()/NOLINT() rule names found in a comment body.
void scan_suppressions(const std::string& comment, std::size_t line,
                       std::map<std::size_t, std::set<std::string>>& out) {
  static const std::string kMarkers[] = {"hcep-lint: allow(", "NOLINT("};
  for (const auto& marker : kMarkers) {
    std::size_t pos = 0;
    while ((pos = comment.find(marker, pos)) != std::string::npos) {
      const std::size_t open = pos + marker.size();
      const std::size_t close = comment.find(')', open);
      if (close == std::string::npos) break;
      out[line].insert(comment.substr(open, close - open));
      pos = close;
    }
  }
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  LexResult run() {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++i_;
        continue;
      }
      if (c == '\\' && i_ + 1 < src_.size() && src_[i_ + 1] == '\n') {
        ++line_;
        i_ += 2;  // backslash-newline splice outside any token
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (ident_start(c)) {
        lex_identifier_or_literal_prefix();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        lex_number();
        continue;
      }
      if (c == '"') {
        lex_string(false);
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      lex_punct();
    }
    return std::move(result_);
  }

 private:
  char peek(std::size_t off) const {
    return i_ + off < src_.size() ? src_[i_ + off] : '\0';
  }

  void emit(TokenKind kind, std::string text, std::size_t line) {
    result_.tokens.push_back({kind, std::move(text), line});
  }

  /// `// ...` — a trailing backslash continues the comment onto the next
  /// line (a classic way to accidentally comment out code; the tokenizer
  /// must swallow the continuation so rules never see that code, and the
  /// fixture tests pin this down).
  void lex_line_comment() {
    const std::size_t start_line = line_;
    std::string body;
    i_ += 2;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\' && peek(1) == '\n') {
        body.push_back('\n');
        ++line_;
        i_ += 2;
        continue;
      }
      if (c == '\\' && peek(1) == '\r' && peek(2) == '\n') {
        body.push_back('\n');
        ++line_;
        i_ += 3;
        continue;
      }
      if (c == '\n') break;
      body.push_back(c);
      ++i_;
    }
    scan_suppressions(body, start_line, result_.suppressions);
  }

  void lex_block_comment() {
    const std::size_t start_line = line_;
    std::string body;
    i_ += 2;
    while (i_ < src_.size()) {
      if (src_[i_] == '*' && peek(1) == '/') {
        i_ += 2;
        break;
      }
      if (src_[i_] == '\n') ++line_;
      body.push_back(src_[i_]);
      ++i_;
    }
    scan_suppressions(body, start_line, result_.suppressions);
  }

  /// Identifiers — but `R"`, `u8R"`, `LR"`, `u8"`, `L'` etc. are literal
  /// prefixes, so an identifier immediately followed by a quote hands
  /// over to the literal lexers.
  void lex_identifier_or_literal_prefix() {
    const std::size_t start = i_;
    while (i_ < src_.size() && ident_char(src_[i_])) ++i_;
    const std::string word = src_.substr(start, i_ - start);
    if (i_ < src_.size() && src_[i_] == '"') {
      const bool raw = !word.empty() && word.back() == 'R';
      if (raw || word == "u8" || word == "u" || word == "U" || word == "L") {
        lex_string(raw);
        return;
      }
    }
    if (i_ < src_.size() && src_[i_] == '\'' &&
        (word == "u8" || word == "u" || word == "U" || word == "L")) {
      lex_char();
      return;
    }
    emit(TokenKind::kIdentifier, word, line_);
  }

  /// pp-number: digits, digit separators, hex/exponent letters, and
  /// `.`/`e+`/`p-` continuations. Over-broad by design (matches the
  /// preprocessor's own token class).
  void lex_number() {
    const std::size_t start_line = line_;
    std::string text;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (ident_char(c) || c == '\'' || c == '.') {
        text.push_back(c);
        ++i_;
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') && i_ < src_.size() &&
            (src_[i_] == '+' || src_[i_] == '-')) {
          text.push_back(src_[i_]);
          ++i_;
        }
        continue;
      }
      break;
    }
    emit(TokenKind::kNumber, text, start_line);
  }

  void lex_string(bool raw) {
    const std::size_t start_line = line_;
    std::string body;
    ++i_;  // opening quote
    if (raw) {
      // R"delim( ... )delim" — nothing inside is an escape.
      std::string delim;
      while (i_ < src_.size() && src_[i_] != '(') delim.push_back(src_[i_++]);
      ++i_;  // '('
      const std::string close = ")" + delim + "\"";
      const std::size_t end = src_.find(close, i_);
      const std::size_t stop = end == std::string::npos ? src_.size() : end;
      for (std::size_t j = i_; j < stop; ++j)
        if (src_[j] == '\n') ++line_;
      body = src_.substr(i_, stop - i_);
      i_ = stop == src_.size() ? stop : stop + close.size();
    } else {
      while (i_ < src_.size() && src_[i_] != '"') {
        if (src_[i_] == '\\' && i_ + 1 < src_.size()) {
          body.push_back(src_[i_ + 1]);
          i_ += 2;
          continue;
        }
        if (src_[i_] == '\n') break;  // unterminated: close at line end
        body.push_back(src_[i_]);
        ++i_;
      }
      if (i_ < src_.size() && src_[i_] == '"') ++i_;
    }
    emit(TokenKind::kString, body, start_line);
  }

  void lex_char() {
    const std::size_t start_line = line_;
    std::string body;
    ++i_;
    while (i_ < src_.size() && src_[i_] != '\'') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) {
        body.push_back(src_[i_ + 1]);
        i_ += 2;
        continue;
      }
      if (src_[i_] == '\n') break;
      body.push_back(src_[i_]);
      ++i_;
    }
    if (i_ < src_.size() && src_[i_] == '\'') ++i_;
    emit(TokenKind::kChar, body, start_line);
  }

  /// One whole preprocessor logical line (continuations folded, comments
  /// stripped) as a single token.
  void lex_directive() {
    const std::size_t start_line = line_;
    std::string text;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\' && peek(1) == '\n') {
        text.push_back(' ');
        ++line_;
        i_ += 2;
        continue;
      }
      if (c == '\n') break;
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        break;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        text.push_back(' ');
        continue;
      }
      text.push_back(c);
      ++i_;
    }
    emit(TokenKind::kDirective, text, start_line);
  }

  void lex_punct() {
    for (const char* p : kPuncts) {
      const std::size_t n = std::string::traits_type::length(p);
      if (src_.compare(i_, n, p) == 0) {
        emit(TokenKind::kPunct, p, line_);
        i_ += n;
        return;
      }
    }
    emit(TokenKind::kPunct, std::string(1, src_[i_]), line_);
    ++i_;
  }

  const std::string& src_;
  std::size_t i_ = 0;
  std::size_t line_ = 1;
  bool at_line_start_ = true;
  LexResult result_;
};

}  // namespace

LexResult lex(const std::string& source) { return Lexer(source).run(); }

bool suppressed(const LexResult& lr, std::size_t line,
                const std::string& rule) {
  const auto it = lr.suppressions.find(line);
  return it != lr.suppressions.end() && it->second.count(rule) > 0;
}

}  // namespace hcep::lint
