#include "sarif.hpp"

#include <cstdio>
#include <map>
#include <sstream>

#include "rules.hpp"

namespace hcep::lint {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  // ruleId -> index into the driver's rules array (required by SARIF for
  // result.ruleIndex).
  std::map<std::string, std::size_t> rule_index;
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i)
    rule_index[catalog[i].id] = i;

  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"hcep-lint\",\n"
     << "          \"version\": \"2.0.0\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/hcep/docs/STATIC_ANALYSIS.md\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const RuleSpec& r = catalog[i];
    os << "            {\n"
       << "              \"id\": \"" << json_escape(r.id) << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << json_escape(r.summary) << "\" },\n"
       << "              \"fullDescription\": { \"text\": \""
       << json_escape(r.help) << "\" },\n"
       << "              \"defaultConfiguration\": { \"level\": \"error\" }\n"
       << "            }" << (i + 1 < catalog.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n";
    const auto it = rule_index.find(f.rule);
    if (it != rule_index.end())
      os << "          \"ruleIndex\": " << it->second << ",\n";
    os << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \"" << json_escape(f.message)
       << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << json_escape(f.file) << "\" },\n"
       << "                \"region\": { \"startLine\": " << f.line << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace hcep::lint
