// hcep-lint per-file facts: everything the cross-file passes and the
// result cache need to know about one translation unit.
//
// The per-file pass (analyzer.cpp) is the expensive part — tokenize,
// track scopes, collect symbols, run the file-local rules. Its complete
// output is this struct, which is (a) serializable, so the mtime+hash
// cache can skip unchanged files across runs, and (b) sufficient input
// for the project pass (include graph, shard reachability), so cached
// files never need re-tokenizing even when the cross-file answer
// changes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hcep::lint {

struct Finding {
  std::string file;  ///< repo-relative generic path
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// A `static` non-const, non-atomic variable declared in a header: only
/// a hazard when the header is reachable from sharded/parallel code,
/// which the project pass decides with the include graph.
struct MutableStatic {
  std::size_t line = 0;
  std::string name;
};

struct FileFacts {
  std::string path;  ///< repo-relative generic path ("src/...")
  /// Quoted #include paths as written (`hcep/des/simulator.hpp`).
  std::vector<std::string> includes;
  /// TU mentions ShardedSimulator or parallel_for: its transitive
  /// includes form the shard-reachable set.
  bool uses_shard_markers = false;
  std::vector<MutableStatic> mutable_statics;
  /// Findings decidable from this file alone (all rules except
  /// shared-mutable-static).
  std::vector<Finding> findings;
};

}  // namespace hcep::lint
