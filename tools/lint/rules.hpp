// hcep-lint rule catalog: one authoritative table of every rule the
// analyzer implements. The SARIF exporter emits one rule descriptor per
// entry (the acceptance contract demands >= 1 descriptor per implemented
// rule), --list-rules prints it, and the selftest cross-checks that the
// fixture tree exercises every id listed here.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hcep::lint {

struct RuleSpec {
  const char* id;
  const char* summary;  ///< one line, shown in SARIF shortDescription
  const char* help;     ///< rationale + fix, shown in SARIF fullDescription
};

inline const std::vector<RuleSpec>& rule_catalog() {
  static const std::vector<RuleSpec> kRules = {
      {"unit-double",
       "naked double claims a physical unit in a public header",
       "Fields/params/functions named *_energy, *_power, *_latency, ... "
       "must use the hcep::units Quantity types so a W-vs-J slip cannot "
       "compile."},
      {"control-unit-double",
       "raw double power/energy signal in a control-plane header",
       "The Controller/Actuator surface also names power in control "
       "vocabulary (cap, budget, draw, savings, penalty, floor); those "
       "must be Watts/Joules quantities too."},
      {"nodiscard",
       "value-returning evaluator lacks [[nodiscard]]",
       "Model/metrics/config/power/traffic evaluators whose result is a "
       "computed quantity must be [[nodiscard]]: dropping Joules on the "
       "floor is always a bug."},
      {"banned-call",
       "rand()/srand()/time() breaks same-seed reproducibility",
       "All stochastic APIs take a seeded hcep::Rng and all clocks are "
       "simulated; wall-clock or libc randomness makes same-seed runs "
       "diverge."},
      {"std-function-hot-path",
       "std::function in a DES/traffic hot-path header",
       "std::function's 16-byte SBO heap-allocates every kernel capture; "
       "use des::Callback (48-byte inline budget) or a template "
       "parameter."},
      {"unordered-iteration",
       "hash-container iteration can leak nondeterministic order",
       "std::unordered_{map,set} iteration order varies across libc++/"
       "libstdc++ and hash seeds. Banned outright in report/export/JSON "
       "TUs; anywhere else, iterating one into an accumulation or export "
       "breaks the byte-identical same-seed guarantee — use std::map or "
       "sort the keys first."},
      {"rng-seed-flow",
       "hcep::Rng constructed without a threaded seed",
       "Every Rng must be seeded from a parameter/config so (seed, "
       "shards) fully determines the run. Default-constructed or "
       "literal-seeded Rng hides a second seed source."},
      {"pointer-key",
       "pointer-keyed container orders by address",
       "A std::map/set keyed (or compared) by pointer iterates in "
       "allocation-address order, which ASLR re-randomizes every run; "
       "key by a stable id instead."},
      {"thread-id-identity",
       "thread id / address used as identity",
       "std::thread::id values and thread addresses differ run to run; "
       "using them as keys or ordering makes output schedule-dependent. "
       "Use the pool's dense worker index."},
      {"float-order-reduction",
       "floating-point reduction in unordered iteration order",
       "Float addition is not associative: accumulating energy/latency "
       "while iterating a hash container makes the sum depend on hash "
       "order. Reduce over a sorted or naturally ordered sequence."},
      {"shared-mutable-static",
       "mutable static state in a shard-reachable header",
       "Headers transitively included by ShardedSimulator/parallel_for "
       "code must not declare non-const, non-atomic statics: shards "
       "would race on them and break serial/parallel byte-identity. Use "
       "std::atomic, thread_local, const, or per-shard state."},
      {"site-id-determinism",
       "Site identified by pointer in a federation header",
       "Federation placement must be byte-reproducible: a `Site*` used "
       "as identity (member, key, or comparator) orders and hashes by "
       "allocation address, which ASLR re-randomizes every run. Identify "
       "sites by their index in the scenario's site vector (or by name)."},
      {"unit-flow",
       "naked double parameter crosses a Quantity-typed API boundary",
       "A function that returns an hcep::units Quantity but takes a "
       "non-dimensionless double parameter reintroduces the unit "
       "ambiguity the typed boundary exists to remove; type the "
       "parameter."},
  };
  return kRules;
}

inline bool known_rule(const std::string& id) {
  for (const auto& r : rule_catalog())
    if (id == r.id) return true;
  return false;
}

}  // namespace hcep::lint
