// hcep-lint selftest fixture: the rng-seed-flow rule. Every hcep::Rng
// must be constructed with a seed threaded from a parameter or config —
// a default-constructed or literal-seeded generator silently pins every
// run to one stream and breaks the (seed, shards) determinism sweep.
// Three live violations (default local, literal seed, never-seeded
// member), one suppressed twin, and seeded controls that must stay
// silent. Also exercises the tokenizer: violations hidden inside a raw
// string and behind a line-continuation comment must NOT fire. Scanned
// only by `hcep-lint --selftest`; not part of the build.
#include <cstdint>
#include <string>

namespace hcep::cluster {

void fixture_locals(std::uint64_t seed) {
  // LIVE rng-seed-flow: default-constructed local.
  Rng local;

  // LIVE rng-seed-flow: hard-coded literal seed.
  Rng fixed(12345);

  // Suppressed twin: must stay silent.
  Rng quiet;  // hcep-lint: allow(rng-seed-flow)

  // Control: seed threaded from the parameter.
  Rng seeded(seed);

  // Control: tokenizer must not see into strings — this raw string
  // mentions rand() and a default-constructed Rng.
  const std::string doc = R"doc(call rand() or `Rng r;` here)doc";

  // Control: a line-continuation comment swallows the next line, \
  std::srand(7);
  (void)local; (void)fixed; (void)quiet; (void)seeded; (void)doc;
}

struct FixtureEngine {
  // LIVE rng-seed-flow: member generator never seeded anywhere in this
  // file (no mem-initializer, no assignment).
  Rng orphan_rng_;
};

struct FixtureSeeded {
  explicit FixtureSeeded(std::uint64_t seed) : rng_(seed) {}

  // Control: seeded via the constructor's mem-initializer above.
  Rng rng_;
};

}  // namespace hcep::cluster
