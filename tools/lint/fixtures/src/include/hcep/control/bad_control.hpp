// hcep-lint selftest fixture: control-unit-double violations — raw
// doubles carrying power/energy under the control-plane vocabulary (cap,
// budget, draw, savings, penalty) rather than physical-unit names, which
// the base unit-double rule would miss. Scanned only by
// `hcep-lint --selftest`; not part of the build.
#pragma once

namespace hcep::control {

struct BadControlOptions {
  // LIVE control-unit-double: the rack cap is watts, not a double.
  double cap = 1000.0;

  // LIVE control-unit-double: suffix form (also missed by unit-double).
  double power_budget = 1000.0;

  // Suppressed twin: must stay silent.
  double draw = 0.0;  // hcep-lint: allow(control-unit-double)

  // Controls: ratios and counts are legitimately dimensionless.
  double headroom = 0.25;
  double shard_share = 1.0;
};

}  // namespace hcep::control
