// hcep-lint selftest fixture: site-id-determinism. Federation routing
// must identify sites by their index in the scenario's site vector —
// a Site* is an allocation-address identity that ASLR re-randomizes
// every run, so anything ordered or keyed by it (and anything that
// compares two of them) breaks the byte-identical same-seed fleet
// guarantee. Two live violations (a plain pointer member and a
// pointer-keyed map, which also fires pointer-key) plus a suppressed
// twin, and a stable-index control.
// Scanned only by `hcep-lint --selftest`; not part of the build.
#pragma once

#include <cstddef>
#include <map>

namespace hcep::fed {

struct Site;

struct FixtureRoutingState {
  // LIVE site-id-determinism: address-based site identity.
  Site* home = nullptr;

  // LIVE site-id-determinism + LIVE pointer-key: iterates in
  // allocation-address order on top of the identity problem.
  std::map<Site*, double> window_by_site;

  // Suppressed twin: must stay silent.
  Site* mirror = nullptr;  // hcep-lint: allow(site-id-determinism)

  // Control: the dense scenario index is the right identity.
  std::size_t home_index = 0;
};

}  // namespace hcep::fed
