// hcep-lint selftest fixture: streaming-telemetry rules added with
// hcep::obs::stream — /obs/stream* headers are evaluator headers (their
// value-returning aggregates must be [[nodiscard]]) and, like every
// public header, may not declare naked unit doubles. One live violation
// per rule plus a suppressed twin. This tree is scanned only by
// `hcep-lint --selftest`; it is not part of the build.
#pragma once

namespace hcep::obs::stream {

struct BadStreamSurface {
  // LIVE unit-double: a window aggregate claiming to hold joules.
  double window_energy = 0.0;

  // Suppressed twin: must stay silent.
  double wake_joules = 0.0;  // hcep-lint: allow(unit-double)

  // LIVE nodiscard: a value-returning sketch evaluator missing the
  // attribute — silently dropping a computed quantile is always a bug.
  double quantile_at(double q) const;

  // Suppressed twin.
  std::uint64_t window_count() const;  // hcep-lint: allow(nodiscard)

  // Controls: compliant declarations must not fire.
  [[nodiscard]] double epsilon_bound() const;
  [[nodiscard]] std::uint64_t dropped_records() const;
};

}  // namespace hcep::obs::stream
