// hcep-lint selftest fixture: traffic-header rules added with the
// hcep::traffic subsystem — SLO-flavoured identifiers (latency, deadline,
// sojourn) now count as physical-unit names, and /traffic/ headers are
// evaluator headers whose value-returning functions must be
// [[nodiscard]]. One live violation per rule plus a suppressed twin.
// This tree is scanned only by `hcep-lint --selftest`; it is not part of
// the build.
#pragma once

namespace hcep::traffic {

struct BadTrafficSurface {
  // LIVE unit-double: a naked double claiming to hold an SLO latency.
  double tail_latency = 0.0;

  // Suppressed twin: must stay silent.
  double sojourn = 0.0;  // hcep-lint: allow(unit-double)

  // LIVE nodiscard: a value-returning SLO evaluator without
  // [[nodiscard]] — dropping the computed deadline is always a bug.
  Seconds deadline_for(std::size_t cls) const;

  // Suppressed twin.
  Seconds backoff_hint() const;  // hcep-lint: allow(nodiscard)

  // Controls: compliant declarations must not fire.
  [[nodiscard]] Seconds admit_horizon() const;
  [[nodiscard]] double weight_share() const;
};

}  // namespace hcep::traffic
