// hcep-lint selftest fixture: the std-function-hot-path rule added with
// the calendar-queue DES kernel rewrite. include/hcep/des/ (and
// /traffic/) headers sit on the per-event path; a std::function member
// or parameter there reintroduces the per-event heap allocation the
// des::Callback rewrite removed. One live violation plus a suppressed
// twin. This tree is scanned only by `hcep-lint --selftest`; it is not
// part of the build.
#pragma once

#include <functional>

namespace hcep::des {

struct BadDesSurface {
  // LIVE std-function-hot-path: a per-event callback stored in a
  // std::function — every scheduled event would heap-allocate.
  std::function<void()> on_complete;

  // Suppressed twin: must stay silent.
  std::function<void()> on_drop;  // hcep-lint: allow(std-function-hot-path)

  // Control: the kernel's own callback type is fine.
  void schedule(int slot);
};

}  // namespace hcep::des
