// hcep-lint selftest fixture: one live violation per header rule plus a
// suppressed twin, so the selftest proves both detection and suppression.
// This tree is scanned only by `hcep-lint --selftest`; it is not part of
// the build.
#pragma once

namespace hcep::model {

struct BadSurface {
  // LIVE unit-double: exactly the seeded bug from the acceptance
  // criteria — a naked double claiming to hold joules.
  double energy_j = 0.0;

  // Suppressed twin: must stay silent.
  double busy_power = 0.0;  // hcep-lint: allow(unit-double)

  // LIVE nodiscard: a value-returning evaluator without [[nodiscard]].
  double evaluate() const;

  // Suppressed twin.
  double evaluate_dropped() const;  // hcep-lint: allow(nodiscard)

  // Control: a compliant evaluator must not fire.
  [[nodiscard]] double evaluate_checked() const;
};

}  // namespace hcep::model
