// hcep-lint selftest fixture: the unit-flow rule. A Quantity-returning
// signature in a public header is a typed unit boundary; accepting a
// naked `double` for a physical value there reopens exactly the W-vs-J
// confusion hcep::units exists to make uncompilable. One live violation,
// one suppressed twin, and two controls (an allowlisted dimensionless
// parameter name, and a double RETURN — ratios of quantities are
// legitimately dimensionless). Every declaration carries [[nodiscard]]
// so the nodiscard rule stays out of this file's counts. Scanned only
// by `hcep-lint --selftest`; not part of the build.
#pragma once

namespace hcep::model {

struct UnitFlowSurface {
  // LIVE unit-flow: `dissipation` is watts arriving as a naked double.
  [[nodiscard]] hcep::Joules energy_for(double dissipation,
                                        hcep::Seconds dt) const;

  // Suppressed twin: must stay silent.
  [[nodiscard]] hcep::Watts power_at(double overhead) const;  // hcep-lint: allow(unit-flow)

  // Control: `factor` is on the dimensionless-name allowlist.
  [[nodiscard]] hcep::Joules scaled(double factor, hcep::Joules base) const;

  // Control: double return with Quantity params is a ratio — fine.
  [[nodiscard]] double ratio_of(hcep::Joules a, hcep::Joules b) const;
};

}  // namespace hcep::model
