// hcep-lint selftest fixture: reachability control for
// shared-mutable-static. No shard-marker TU includes this header, so the
// mutable static below is single-threaded state and must NOT fire — if
// it does, the include-graph pass has lost its reachability gating.
// Scanned only by `hcep-lint --selftest`; not part of the build.
#pragma once

#include <cstdint>

namespace hcep::shared {

// Mutable static, but unreachable from ShardedSimulator/parallel_for
// code: silent by design.
static std::uint64_t g_never_shared = 0;

}  // namespace hcep::shared
