// hcep-lint selftest fixture: the shared-mutable-static cross-file rule.
// This header is included (transitively) from a TU that uses
// parallel_for, so the include-graph pass marks it shard-reachable: a
// mutable static here is state every shard races on. One live violation,
// one suppressed twin, and const/constexpr/atomic/thread_local/function
// controls that must stay silent. Scanned only by `hcep-lint
// --selftest`; not part of the build.
#pragma once

#include <atomic>
#include <cstdint>

namespace hcep::shared {

// LIVE shared-mutable-static: plain mutable static in a shard-reachable
// header.
static std::uint64_t g_event_count = 0;

// Suppressed twin: must stay silent.
static std::uint64_t g_debug_ticks = 0;  // hcep-lint: allow(shared-mutable-static)

// Controls: immutable, atomic, per-thread, and function statics are all
// fine.
static const double kScale = 2.0;
static constexpr int kMaxShards = 64;
static std::atomic<std::uint64_t> g_live_count{0};
static thread_local int t_scratch = 0;
static int clamp_shards(int n);

}  // namespace hcep::shared
