// hcep-lint selftest fixture: identity-key rules. A container keyed by
// a pointer iterates in allocation-address order (different every run
// under ASLR); one keyed by std::thread::id depends on the scheduler.
// Both leak nondeterminism into anything that iterates them — even
// through std::map, whose comparator is the pointer/id itself. One live
// violation plus a suppressed twin per rule, and a stable-id control.
// Scanned only by `hcep-lint --selftest`; not part of the build.
#include <map>
#include <thread>

namespace hcep::cluster {

struct FixtureNode {
  int id = 0;
};

struct FixtureRegistry {
  // LIVE pointer-key: ordered by allocation address.
  std::map<const FixtureNode*, int> by_node;

  // Suppressed twin: must stay silent.
  std::map<const FixtureNode*, int> legacy_by_node;  // hcep-lint: allow(pointer-key)

  // LIVE thread-id-identity: ordered by scheduler-assigned ids.
  std::map<std::thread::id, int> per_thread;

  // Suppressed twin: must stay silent.
  std::map<std::thread::id, int> old_per_thread;  // hcep-lint: allow(thread-id-identity)

  // Control: a dense stable id is the right key.
  std::map<int, int> by_worker_index;
};

}  // namespace hcep::cluster
