// hcep-lint selftest fixture: iteration-flow rules. The path carries no
// report/json/csv marker, so the blanket hash-container-in-output-TU
// rule stays silent here — what fires is the flow analysis: iterating
// an unordered container into an accumulation (unordered-iteration) and
// a float `+=` reduction inside that loop (float-order-reduction). One
// live loop, one fully suppressed twin, and a non-accumulating control.
// Scanned only by `hcep-lint --selftest`; not part of the build.
#include <cstddef>
#include <string>
#include <unordered_map>

namespace hcep::cluster {

double fixture_hash_order_sum(
    const std::unordered_map<std::string, double>& by_node) {
  // LIVE unordered-iteration (the for) + float-order-reduction (the +=):
  // the sum's rounding depends on hash order.
  double total_energy = 0.0;
  for (const auto& kv : by_node) {
    total_energy += kv.second;
  }

  // Suppressed twins: must stay silent.
  double total_watts = 0.0;
  for (const auto& kv : by_node) {  // hcep-lint: allow(unordered-iteration)
    total_watts += kv.second;  // hcep-lint: allow(float-order-reduction)
  }

  // Control: iteration that does not accumulate or export is
  // order-insensitive and must not fire.
  std::size_t overloaded = 0;
  for (const auto& kv : by_node) {
    if (kv.second > 1.0) ++overloaded;
  }

  return total_energy + total_watts + static_cast<double>(overloaded);
}

}  // namespace hcep::cluster
