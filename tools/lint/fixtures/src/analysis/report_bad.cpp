// hcep-lint selftest fixture: one live violation per TU rule plus a
// suppressed twin. The path contains "report", so the file is treated as
// a deterministic-output translation unit. Not part of the build.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace hcep::analysis {

int fixture_entry() {
  // LIVE unordered-iteration: hash-map in a report path.
  std::unordered_map<std::string, double> totals;

  // Suppressed twin.
  std::unordered_set<int> seen;  // hcep-lint: allow(unordered-iteration)

  // LIVE banned-call.
  const int r = rand();

  // Suppressed twin.
  const int s = rand();  // hcep-lint: allow(banned-call)

  // Controls that must stay silent: member/qualified/identifier forms.
  // (rand/time inside comments and strings are also silent.)
  const char* text = "call time() and rand() here";
  return r + s + static_cast<int>(totals.size() + seen.size()) +
         static_cast<int>(text[0]);
}

}  // namespace hcep::analysis
