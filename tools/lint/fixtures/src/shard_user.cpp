// hcep-lint selftest fixture: the shard-marker TU for the cross-file
// shared-mutable-static rule. Mentioning parallel_for makes this file a
// BFS root in the include-graph pass; the quoted include below pulls
// hcep/shared/bad_counters.hpp into the shard-reachable set (resolved
// against the tree's src/include/ root). unreachable.hpp is deliberately
// NOT included. Scanned only by `hcep-lint --selftest`; not part of the
// build.
#include "hcep/shared/bad_counters.hpp"

namespace hcep::cluster {

void fixture_run_shards(int shards) {
  parallel_for(0, shards, [](int) { ++hcep::shared::g_event_count; });
}

}  // namespace hcep::cluster
