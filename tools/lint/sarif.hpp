// hcep-lint SARIF 2.1.0 exporter.
//
// SARIF (Static Analysis Results Interchange Format) is what GitHub code
// scanning ingests to annotate PR diffs. One run object, one driver with
// a rule descriptor per catalog entry (rules.hpp), one result per
// finding with a file/line physical location. The output is deliberately
// minimal-but-valid: it parses under the 2.1.0 schema and round-trips
// through the repo's own strict JsonValue::parse (tested in
// tests/test_lint.cpp).
#pragma once

#include <string>
#include <vector>

#include "facts.hpp"

namespace hcep::lint {

/// Serializes findings as a SARIF 2.1.0 document. Findings must already
/// be in deterministic order; the document is byte-stable for a given
/// input (a lint invariant of this repo's report tooling).
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace hcep::lint
