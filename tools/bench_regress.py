#!/usr/bin/env python3
"""Benchmark regression gate.

Runs one suite of google-benchmark binaries with
``--benchmark_format=json``, writes the merged results to an output JSON
file, and fails (exit 1) when any gated benchmark regresses by more than
the threshold against the suite's checked-in baseline at the repository
root. Suites: ``sweep`` (perf_enumeration + perf_pareto vs
``BENCH_sweep.json``, the default), ``traffic`` (perf_traffic vs
``BENCH_traffic.json``), ``des`` (perf_des vs ``BENCH_des.json``),
``control`` (perf_control vs ``BENCH_control.json``), ``stream``
(perf_stream vs ``BENCH_stream.json``) and ``lint`` (the hcep_lint
analyzer's own wall-clock vs ``BENCH_lint.json`` — not a
google-benchmark binary; see below).

The ``lint`` suite times full-tree scans of the repository with the
static analyzer: a cold scan (empty result cache — every file is
tokenized, scope-tracked and analyzed) and a warm scan (all files hit
the mtime+hash cache). Both report files/second as
``items_per_second`` so the same gate machinery applies, and a
``min_ratio`` gate demands the warm scan stay well above the cold one —
if the cache stops hitting, the ratio collapses to 1 and the gate
fails even on a machine where absolute speed drifted.

The gate compares ``items_per_second`` for serial benchmarks only:
google-benchmark's CPU timer measures the main benchmark thread, so
thread-pool variants under-report work and are recorded but never gated
(the ``des`` suite records BM_ShardedTraffic/1..8 wall-clock scaling this
way — on a single-core builder the shards serialize, so scaling is
reported, not gated).

Suites may additionally declare ``ratio_gates``: within-run throughput
ratios between a fast and a slow implementation measured minutes apart at
most (e.g. the calendar-queue DES kernel vs the seed binary-heap +
std::function replica). Unlike the absolute gates these need no baseline
and survive machine-speed changes — a builder twice as slow fails both
sides equally — so they are enforced in smoke runs too. A gate with
``min_ratio`` demands fast/slow stay ABOVE it (the fast side must keep
its speedup); a gate with ``max_ratio`` demands it stay BELOW (the slow
side is an instrumented variant whose overhead is bounded, e.g. the
control suite's <= 5% tick-overhead gate for the frozen controller).

Usage:
  tools/bench_regress.py [--suite sweep|traffic] [--build-dir build]
                         [--baseline BENCH_<suite>.json]
                         [--output build/BENCH_<suite>.json]
                         [--threshold 0.20] [--smoke] [--update-baseline]

``--smoke`` runs a short, filtered pass for ctest (seconds, not minutes)
and relaxes the threshold to 0.60 unless one is given explicitly: on a
shared machine a quick sample is too noisy for a 20% gate, but still
catches order-of-magnitude regressions like an accidental fallback to
the naive path. ``--update-baseline`` rewrites the baseline block in
place (run after intentional performance changes, on a quiet machine).
"""

import argparse
import json
import os
import re
import subprocess
import sys
import time

# Per-suite configuration. ``gated`` lists serial benchmarks with stable
# CPU-time throughput; everything else is recorded for reference but not
# gated. ``smoke_filter`` keeps the ctest pass to seconds.
SUITES = {
    "sweep": {
        "binaries": ["perf_enumeration", "perf_pareto"],
        "baseline": "BENCH_sweep.json",
        "gated": [
            "BM_ConfigDecode",
            "BM_DecodeAt",
            "BM_FullSweep",
            "BM_EvaluateSpace/10/1",
            "BM_ParetoFront",
        ],
        "smoke_filter": (
            "BM_ConfigDecode|BM_DecodeAt|BM_FullSweep$|"
            "BM_EvaluateSpace/10/1|BM_ParetoFront$"
        ),
    },
    "traffic": {
        "binaries": ["perf_traffic"],
        "baseline": "BENCH_traffic.json",
        "gated": [
            "BM_PoissonArrivals",
            "BM_TokenBucketAcquire",
            "BM_SimulateTraffic/16384",
            "BM_AdmissionSloPath/131072",
            "BM_AdmissionSloPath/1048576",
        ],
        # The smoke pass swaps the >1M-request gate for the 128k size:
        # the path is identical, the wall time is ctest-friendly.
        "smoke_filter": (
            "BM_PoissonArrivals$|BM_TokenBucketAcquire$|"
            "BM_SimulateTraffic/16384$|BM_AdmissionSloPath/131072$"
        ),
    },
    "des": {
        "binaries": ["perf_des"],
        "baseline": "BENCH_des.json",
        "gated": [
            "BM_ChurnCalendar/65536",
            "BM_EventQueueChurn/100000",
            "BM_CallbackInline",
        ],
        # Within-run kernel-vs-seed-replica ratios. Thresholds sit below
        # the ratios measured on a quiet single-core builder (2.4x / 2.0x
        # / 2.0x best-of-3; see docs/PERF.md) by enough margin to absorb
        # the +-30% thermal noise observed on shared machines, while
        # still catching any change that drags the calendar kernel back
        # toward heap+std::function parity.
        "ratio_gates": [
            {"fast": "BM_ChurnCalendar/65536",
             "slow": "BM_ChurnLegacy/65536", "min_ratio": 1.5},
            {"fast": "BM_ChurnCalendar/1048576",
             "slow": "BM_ChurnLegacy/1048576", "min_ratio": 1.4},
            {"fast": "BM_ChurnBimodalCalendar/65536",
             "slow": "BM_ChurnBimodalLegacy/65536", "min_ratio": 1.3},
        ],
        # Churn iterations execute 2M events each, so even the smoke pass
        # measures the gated ratios at full depth; the 1M-pending pair and
        # the sharded end-to-end runs are full-suite only.
        "smoke_filter": (
            "BM_ChurnCalendar/65536$|BM_ChurnLegacy/65536$|"
            "BM_ChurnBimodalCalendar/65536$|BM_ChurnBimodalLegacy/65536$|"
            "BM_EventQueueChurn/100000$|BM_CallbackInline$"
        ),
    },
    "control": {
        "binaries": ["perf_control"],
        "baseline": "BENCH_control.json",
        "gated": [
            "BM_OpenLoopTraffic/1048576",
            "BM_FrozenControlTraffic/1048576",
            "BM_PowerGateTick/64",
        ],
        # The ISSUE's tick-overhead bound: the frozen (no-op) controller
        # reproduces the open-loop run byte-identically, so open/frozen
        # throughput is pure control-plane overhead. <= 5% at 1M requests
        # (full runs); the 128k smoke pair gets slack for timer noise on
        # a short sample.
        "ratio_gates": [
            {"fast": "BM_OpenLoopTraffic/1048576",
             "slow": "BM_FrozenControlTraffic/1048576", "max_ratio": 1.05},
            {"fast": "BM_OpenLoopTraffic/131072",
             "slow": "BM_FrozenControlTraffic/131072", "max_ratio": 1.15},
        ],
        "smoke_filter": (
            "BM_OpenLoopTraffic/131072$|BM_FrozenControlTraffic/131072$|"
            "BM_PowerGateTick/64$"
        ),
    },
    "stream": {
        "binaries": ["perf_stream"],
        "baseline": "BENCH_stream.json",
        "gated": [
            "BM_StreamOffTraffic/1048576",
            "BM_StreamOnTraffic/1048576",
            "BM_SketchInsert/1000",
        ],
        # The ISSUE's streaming-overhead bound: the collector is purely
        # observational (off/on runs are byte-identical modulo the
        # timeline itself), so off/on throughput is pure telemetry cost.
        # <= 5% at 1M requests (full runs) is the authoritative gate;
        # the 128k pair is a ~100 ms sample whose run-to-run cv is close
        # to 10% on shared builders, so it only gets a sanity bound.
        "ratio_gates": [
            {"fast": "BM_StreamOffTraffic/1048576",
             "slow": "BM_StreamOnTraffic/1048576", "max_ratio": 1.05},
            {"fast": "BM_StreamOffTraffic/131072",
             "slow": "BM_StreamOnTraffic/131072", "max_ratio": 1.30},
        ],
        "smoke_filter": (
            "BM_StreamOffTraffic/131072$|BM_StreamOnTraffic/131072$|"
            "BM_SketchInsert/1000$"
        ),
    },
    "fed": {
        "binaries": ["perf_fed"],
        "baseline": "BENCH_fed.json",
        "gated": [
            "BM_OpenLoopTraffic/1048576",
            "BM_FedSingleSite/1048576",
            "BM_RouterDecision",
        ],
        # The ISSUE's federation-overhead bound: a single-site fleet run
        # is the same demand through the same cluster plus the whole
        # routing pipeline (generation, placement, replay, ledger merge),
        # so open/fed throughput is pure federation cost. <= 5% at 1M
        # requests (full runs); the 128k smoke pair gets slack for timer
        # noise on a short sample.
        "ratio_gates": [
            {"fast": "BM_OpenLoopTraffic/1048576",
             "slow": "BM_FedSingleSite/1048576", "max_ratio": 1.05},
            {"fast": "BM_OpenLoopTraffic/131072",
             "slow": "BM_FedSingleSite/131072", "max_ratio": 1.15},
        ],
        "smoke_filter": (
            "BM_OpenLoopTraffic/131072$|BM_FedSingleSite/131072$|"
            "BM_RouterDecision$"
        ),
    },
    "lint": {
        # Custom wall-clock runner (run_lint_suite), not google-benchmark:
        # the analyzer must stay fast enough to remain a default `lint`
        # ctest, so its scan time is gated like any other hot path.
        "binaries": [],
        "runner": "lint",
        "baseline": "BENCH_lint.json",
        "gated": ["LintScanCold", "LintScanWarm"],
        # The cache contract, machine-independently: a warm scan only
        # stats+reads files, so it must beat the cold scan handily. The
        # measured ratio is >5x on a quiet builder; 2x absorbs noise
        # while still failing if cache hits stop happening.
        "ratio_gates": [
            {"fast": "LintScanWarm", "slow": "LintScanCold",
             "min_ratio": 2.0},
        ],
        "smoke_filter": None,
    },
}


def run_lint_suite(build_dir, repo_root, smoke):
    """Times hcep_lint full-tree scans: cold (no cache) and warm.

    Returns a ``measured`` dict in the same shape as run_benchmark's
    output: files/second as items_per_second, seconds as real_time.
    """
    binary = os.path.join(build_dir, "tools", "lint", "hcep_lint")
    if not os.path.exists(binary):
        print(f"bench_regress: missing analyzer binary {binary}",
              file=sys.stderr)
        return None
    cache = os.path.join(build_dir, "hcep_lint_bench_cache.txt")
    reps = 1 if smoke else 3

    def scan():
        start = time.perf_counter()
        out = subprocess.run(
            [binary, "--root", repo_root, "--cache", cache],
            capture_output=True, text=True).stdout
        elapsed = time.perf_counter() - start
        m = re.search(r"scanned (\d+) file", out)
        return elapsed, int(m.group(1)) if m else 0

    results = {}
    # Cold: delete the cache before every rep; best-of-N wall clock.
    cold = []
    for _ in range(reps):
        if os.path.exists(cache):
            os.remove(cache)
        cold.append(scan())
    best, files = min(cold, key=lambda r: r[0])
    results["LintScanCold"] = {
        "items_per_second": files / best if best > 0 else None,
        "real_time": best, "cpu_time": best, "time_unit": "s"}
    # Warm: the cache file left by the last cold rep now covers the tree.
    scan()  # prime (refreshes mtimes recorded in the cache)
    best, files = min((scan() for _ in range(max(reps, 2))),
                      key=lambda r: r[0])
    results["LintScanWarm"] = {
        "items_per_second": files / best if best > 0 else None,
        "real_time": best, "cpu_time": best, "time_unit": "s"}
    return results


def run_benchmark(path, min_time, bench_filter=None):
    cmd = [path, "--benchmark_format=json", f"--benchmark_min_time={min_time}"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    out = subprocess.run(cmd, capture_output=True, text=True, check=True).stdout
    # perf_enumeration prints its footnote-4 startup check before the JSON.
    return json.loads(out[out.index("{"):])


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--suite", default="sweep", choices=sorted(SUITES),
                    help="which benchmark suite to run (default: sweep)")
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (default: the suite's "
                         "BENCH_<suite>.json at the repository root)")
    ap.add_argument("--output", default=None,
                    help="where to write measured results "
                         "(default: <build-dir>/BENCH_<suite>.json)")
    ap.add_argument("--threshold", type=float, default=None,
                    help="max allowed fractional regression (default 0.20, "
                         "or 0.60 with --smoke)")
    ap.add_argument("--smoke", action="store_true",
                    help="short filtered run for ctest")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline block from this run")
    args = ap.parse_args()

    suite = SUITES[args.suite]
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = args.baseline or os.path.join(repo_root,
                                                  suite["baseline"])
    output_path = args.output or os.path.join(args.build_dir,
                                              suite["baseline"])
    threshold = args.threshold if args.threshold is not None else (
        0.60 if args.smoke else 0.20)
    min_time = 0.025 if args.smoke else 0.25
    bench_filter = suite["smoke_filter"] if args.smoke else None

    if suite.get("runner") == "lint":
        measured = run_lint_suite(args.build_dir, repo_root, args.smoke)
        if measured is None:
            return 2
    else:
        measured = {}
        for binary in suite["binaries"]:
            path = os.path.join(args.build_dir, "bench", binary)
            if not os.path.exists(path):
                print(f"bench_regress: missing benchmark binary {path}",
                      file=sys.stderr)
                return 2
            for b in run_benchmark(path, min_time, bench_filter)["benchmarks"]:
                measured[b["name"]] = {
                    "items_per_second": b.get("items_per_second"),
                    "real_time": b["real_time"],
                    "cpu_time": b["cpu_time"],
                    "time_unit": b["time_unit"],
                }

    os.makedirs(os.path.dirname(os.path.abspath(output_path)), exist_ok=True)
    with open(output_path, "w") as f:
        json.dump({"benchmarks": measured}, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_regress: wrote {len(measured)} results to {output_path}")

    try:
        with open(baseline_path) as f:
            baseline_doc = json.load(f)
    except FileNotFoundError:
        baseline_doc = {}
    baseline = baseline_doc.get("baseline", {})

    if args.update_baseline:
        baseline_doc["baseline"] = {
            name: {"items_per_second": measured[name]["items_per_second"]}
            for name in suite["gated"]
            if measured.get(name, {}).get("items_per_second")
        }
        with open(baseline_path, "w") as f:
            json.dump(baseline_doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_regress: baseline updated in {baseline_path}")
        return 0

    if not baseline:
        print(f"bench_regress: no baseline block in {baseline_path}; "
              "run with --update-baseline to create one", file=sys.stderr)
        return 2

    failed = []
    for name in suite["gated"]:
        base = baseline.get(name, {}).get("items_per_second")
        cur = measured.get(name, {}).get("items_per_second")
        if base is None or cur is None:
            continue
        ratio = cur / base
        status = "OK" if ratio >= 1.0 - threshold else "REGRESSED"
        print(f"  {name:30s} baseline={base:12.4g}/s  "
              f"current={cur:12.4g}/s  ratio={ratio:6.3f}  {status}")
        if ratio < 1.0 - threshold:
            failed.append(name)

    for gate in suite.get("ratio_gates", []):
        fast = measured.get(gate["fast"], {}).get("items_per_second")
        slow = measured.get(gate["slow"], {}).get("items_per_second")
        if fast is None or slow is None:
            continue  # pair filtered out of this run
        ratio = fast / slow
        bounds = []
        ok = True
        if "min_ratio" in gate:
            bounds.append(f"min {gate['min_ratio']:.2f}x")
            ok = ok and ratio >= gate["min_ratio"]
        if "max_ratio" in gate:
            bounds.append(f"max {gate['max_ratio']:.2f}x")
            ok = ok and ratio <= gate["max_ratio"]
        print(f"  {gate['fast']} vs {gate['slow']}: "
              f"{ratio:.2f}x ({', '.join(bounds)})  "
              f"{'OK' if ok else 'OUT OF BOUNDS'}")
        if not ok:
            failed.append(f"{gate['fast']} vs {gate['slow']}")

    if failed:
        print(f"bench_regress: FAIL — {', '.join(failed)} regressed more "
              f"than {threshold:.0%} vs {baseline_path}", file=sys.stderr)
        return 1
    print(f"bench_regress: all gated benchmarks within {threshold:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
