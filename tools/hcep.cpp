// hcep — command-line front end to the reproduction library.
//
//   hcep help                         this text
//   hcep report [path]               full markdown report (default REPORT.md)
//   hcep table <4|6|7|8>             one paper table on stdout
//   hcep metrics <program> <nA9> <nK10>
//                                    proportionality metrics of one mix
//   hcep sweep <program> [maxA9 maxK10]
//                                    Pareto frontier over the config space
//   hcep response <program>          Figures 11/12-style p95 table
//   hcep sensitivity <program>       seed-perturbation robustness
//   hcep governor <program> [nA9 nK10]
//                                    race-to-idle vs DVFS pacing
//   hcep autoscale <program>         diurnal autoscaling vs static fleet
//   hcep export <json|figures> [path]
//                                    machine-readable study results
//   hcep control <program|synthetic> [...]
//                                    closed-loop control vs open loop
//   hcep trace <program|synthetic> [path]
//                                    traced DES run exported as JSONL
//   hcep profile <trace.jsonl> [--interval S] [--json p] [--folded p]
//                [--prom p]          analyze an exported trace
//   hcep timeline <program|synthetic> [...]
//                                    streamed windowed telemetry
//   hcep diff <a.json> <b.json>      compare two timeline exports
//   hcep fed [--policy P] [...]      3-site federated fleet run with
//                                    energy/carbon-aware global routing
//
// Exit code 0 on success, 1 on usage errors, 2 on runtime failures
// (`hcep diff` returns 0 when identical within tolerance, 1 otherwise).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "hcep/hcep.hpp"

#include "hcep/fed/curves.hpp"
#include "hcep/fed/fleet.hpp"

namespace {

using namespace hcep;

int usage() {
  std::cerr
      << "usage: hcep <command> [args]\n"
         "  report [path]                   full markdown report\n"
         "  table <4|6|7|8>                 one paper table\n"
         "  metrics <program> <nA9> <nK10>  metrics of one mix\n"
         "  sweep <program> [maxA9 maxK10]  Pareto frontier\n"
         "  response <program>              p95 vs utilization\n"
         "  sensitivity <program>           seed robustness\n"
         "  governor <program> [nA9 nK10]   race vs pace\n"
         "  autoscale <program>             autoscaling vs static fleet\n"
         "  export json [path]              full study as JSON\n"
         "  traffic <program|synthetic> [--arrivals poisson|deterministic|"
         "bursty|diurnal]\n"
         "          [--util U] [--requests N] [--policy P] [--seed S] "
         "[--slo-ms MS]\n"
         "          [--bucket-rate R] [--bucket-burst B] [--max-queue D] "
         "[--retries K]\n"
         "          [--json path]           request-level simulation\n"
         "  control <program|synthetic> [--controller power_gate|dvfs|"
         "power_cap|frozen]\n"
         "          [--arrivals diurnal|mmpp|poisson] [--util U] "
         "[--requests N]\n"
         "          [--seed S] [--shards K] [--period S] [--cap W] "
         "[--slo-ms MS]\n"
         "          [--json path]           closed-loop vs open-loop run\n"
         "  trace <program|synthetic> [path]  traced DES run -> JSONL\n"
         "  profile <trace.jsonl> [--interval S] [--json p] [--folded p] "
         "[--prom p]\n"
         "                                  analyze an exported trace\n"
         "  timeline <program|synthetic> [--arrivals A] [--util U] "
         "[--requests N]\n"
         "          [--policy P] [--seed S] [--shards K] [--window S] "
         "[--epsilon E]\n"
         "          [--json path] [--csv path]  streamed windowed telemetry\n"
         "  diff <a.json> <b.json> [--rel T] [--abs T] [--json path]\n"
         "                                  compare two timeline exports\n"
         "  fed [--policy nearest|round-robin|pinned|cheapest-energy|"
         "lowest-carbon|slo-hybrid]\n"
         "      [--requests N] [--seed S] [--shards K] [--pinned I] "
         "[--json path]\n"
         "                                  3-site federated fleet run\n"
         "  selftest <profile|diff|fed>     pipeline self-checks\n"
         "programs: EP memcached x264 blackscholes Julius RSA-2048\n";
  return 1;
}

const core::PaperStudy& study() {
  static const core::PaperStudy kStudy;
  return kStudy;
}

int cmd_report(const std::vector<std::string>& args) {
  const std::string path = args.empty() ? "REPORT.md" : args[0];
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  analysis::ReportOptions options;
  options.include_observability = true;
  options.include_traffic = true;
  out << analysis::render_report(study(), options);
  std::cout << "wrote " << path << "\n";
  return 0;
}

int cmd_table(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string which = args[0];
  if (which == "4") {
    TextTable t({"Domain", "Program", "time err[%]", "energy err[%]"});
    for (const auto& r : study().table4())
      t.add_row({r.domain, r.program, fmt(r.time_error_percent, 1),
                 fmt(r.energy_error_percent, 1)});
    std::cout << t;
    return 0;
  }
  if (which == "6" || which == "7") {
    TextTable t({"Program", "Node", "PPR", "DPR", "IPR", "EPM"});
    for (const auto& a : study().single_node_analyses())
      t.add_row({a.program, a.node,
                 a.ppr_peak >= 100 ? fmt_grouped(a.ppr_peak)
                                   : fmt(a.ppr_peak, 2),
                 fmt(a.report.dpr, 2), fmt(a.report.ipr, 2),
                 fmt(a.report.epm, 2)});
    std::cout << t;
    return 0;
  }
  if (which == "8") {
    for (const auto& program : workload::program_names()) {
      TextTable t({"Mix", "DPR", "IPR", "EPM"});
      for (const auto& m : study().budget_mix_analyses(program))
        t.add_row({m.label, fmt(m.report.dpr, 2), fmt(m.report.ipr, 2),
                   fmt(m.report.epm, 2)});
      std::cout << "[" << program << "]\n" << t << "\n";
    }
    return 0;
  }
  return usage();
}

int cmd_metrics(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  const auto& w = study().workload(args[0]);
  const auto n_a9 = static_cast<unsigned>(std::stoul(args[1]));
  const auto n_k10 = static_cast<unsigned>(std::stoul(args[2]));
  model::TimeEnergyModel m(model::make_a9_k10_cluster(n_a9, n_k10), w);
  const auto r = metrics::analyze(m.power_curve());
  std::cout << "mix " << m.cluster().label() << " running " << w.name
            << ":\n"
            << "  T_P " << m.job_time() << "   E_P "
            << m.job_energy(w.units_per_job).e_p << "\n"
            << "  idle " << m.idle_power() << "   busy " << m.busy_power()
            << "   nameplate " << m.cluster().nameplate_power() << "\n"
            << "  DPR " << fmt(r.dpr, 2) << "  IPR " << fmt(r.ipr, 2)
            << "  EPM " << fmt(r.epm, 2) << "  PPR@peak "
            << fmt(m.ppr(1.0), 2) << "\n";
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto& w = study().workload(args[0]);
  const unsigned max_a9 =
      args.size() > 1 ? static_cast<unsigned>(std::stoul(args[1])) : 10;
  const unsigned max_k10 =
      args.size() > 2 ? static_cast<unsigned>(std::stoul(args[2])) : 5;
  const auto space = config::make_a9_k10_space(max_a9, max_k10);
  std::cout << "evaluating " << space.size() << " configurations...\n";
  const auto evals = config::evaluate_space(space, w);
  const auto front = config::pareto_front(evals);
  TextTable t({"config", "T_P [ms]", "E_P [J]", "EDP [J*s]"});
  for (const auto& e : front)
    t.add_row({e.config.label(), fmt(e.time.value() * 1e3, 2),
               fmt(e.energy.value(), 2),
               fmt(config::energy_delay_product(e).value(), 4)});
  std::cout << t;
  const auto edp = config::min_edp(evals);
  std::cout << "EDP optimum: " << edp->config.label() << "\n";
  return 0;
}

int cmd_response(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto r = study().response_study(args[0]);
  std::cout << "deadline " << r.deadline << "\n";
  TextTable t({"mix", "meets", "service [ms]", "p95@50% [ms]",
               "p95@90% [ms]"});
  for (const auto& m : r.mixes) {
    const auto at = [&](double up) -> double {
      for (const auto& pt : m.points)
        if (pt.utilization_percent == up) return pt.p95_analytic.value();
      return 0.0;
    };
    t.add_row({m.mix.label(), m.meets_deadline ? "yes" : "NO",
               fmt(m.service_time.value() * 1e3, 2), fmt(at(50) * 1e3, 2),
               fmt(at(90) * 1e3, 2)});
  }
  std::cout << t;
  return 0;
}

int cmd_sensitivity(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto r = analysis::run_sensitivity_study(args[0]);
  std::cout << "trials: " << r.trials << "\n"
            << "Table 6 winner flips: " << r.winner_flips << "\n"
            << "Table 8 DPR(64A9:8K10): " << fmt(r.dpr_mixed.mean(), 2)
            << " +/- " << fmt(r.dpr_mixed.stddev(), 2) << "\n"
            << "Fig 9 (25,7) crossover: "
            << fmt(r.crossover_25_7.mean(), 3) << " +/- "
            << fmt(r.crossover_25_7.stddev(), 3) << "\n";
  return 0;
}

int cmd_autoscale(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto& w = study().workload(args[0]);
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(32, 12), w);
  const auto day =
      cluster::LoadTrace::diurnal(Seconds{600.0}, 0.1, 0.8);
  const auto r = cluster::autoscale_replay(m, day);
  std::cout << "fleet 32A9:12K10 over a diurnal day (compressed):\n"
            << "  energy " << fmt(r.total_energy.value() / 1e3, 1)
            << " kJ   avg power " << fmt(r.average_power.value(), 1)
            << " W   worst p95 " << fmt(r.worst_p95.value() * 1e3, 1)
            << " ms\n"
            << "  effective EPM " << fmt(r.effective_report.epm, 2)
            << " (static fleet: " << fmt(r.static_report.epm, 2) << ")\n"
            << "  effective idle floor "
            << fmt(r.effective_curve.idle().value(), 1) << " W (static: "
            << fmt(m.idle_power().value(), 1) << " W)\n";
  return 0;
}

int cmd_export(const std::vector<std::string>& args) {
  if (args.empty() || args[0] != "json") return usage();
  const std::string path = args.size() > 1 ? args[1] : "study.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  out << analysis::export_study(study()).dump_pretty() << "\n";
  std::cout << "wrote " << path << "\n";
  return 0;
}

// ----------------------------------------------------------- telemetry

/// Deterministic workload for trace/selftest runs that must not pay for
/// kernel characterization (no calibrated-overheads table row needed).
workload::Workload synthetic_workload() {
  workload::Workload w;
  w.name = "synthetic";
  w.units_per_job = 5e5;
  w.demand["A9"] = workload::NodeDemand{5e4, 1e4, Bytes{0.0}};
  w.demand["K10"] = workload::NodeDemand{5e4, 1e4, Bytes{0.0}};
  return w;
}

/// Runs one traced cluster simulation into `observer`.
cluster::SimResult traced_run(const std::string& program,
                              obs::Observer& observer) {
  const bool synthetic = program == "synthetic";
  const workload::Workload w =
      synthetic ? synthetic_workload() : study().workload(program);
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), w);
  cluster::SimOptions options;
  options.utilization = 0.6;
  options.batch_size = 2;
  options.min_jobs = 50;
  options.seed = 20260807;
  options.use_testbed_overheads = !synthetic;
  obs::ScopedObserver scope(observer);
  return cluster::simulate(m, options);
}

int cmd_trace(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string path = args.size() > 1 ? args[1] : "trace.jsonl";
  obs::Observer observer;
  const cluster::SimResult r = traced_run(args[0], observer);
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  out << observer.tracer.jsonl();
  std::cout << "wrote " << observer.tracer.size() << " events ("
            << observer.tracer.dropped() << " dropped, "
            << r.jobs_completed << " jobs) to " << path << "\n";
#if !HCEP_OBS
  std::cout << "note: observability instrumentation is compiled out "
               "(HCEP_OBS=OFF); the trace is empty\n";
#endif
  return 0;
}

int cmd_profile(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string trace_path = args[0];
  double interval = 0.0;
  std::string json_path, folded_path, prom_path;
  for (std::size_t i = 1; i < args.size(); i += 2) {
    if (i + 1 >= args.size()) return usage();
    if (args[i] == "--interval")
      interval = std::stod(args[i + 1]);
    else if (args[i] == "--json")
      json_path = args[i + 1];
    else if (args[i] == "--folded")
      folded_path = args[i + 1];
    else if (args[i] == "--prom")
      prom_path = args[i + 1];
    else
      return usage();
  }

  std::ifstream in(trace_path);
  if (!in) {
    std::cerr << "cannot read " << trace_path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const obs::Trace trace = obs::read_trace_jsonl(buffer.str());

  const double horizon =
      trace.events.empty() ? 0.0 : trace.events.back().ts;
  if (interval <= 0.0) interval = horizon > 0.0 ? horizon / 8.0 : 1.0;
  const obs::RunReport report =
      obs::make_run_report(trace, trace_path, interval);
  const auto& p = report.profile;

  std::cout << "trace " << trace_path << ": " << p.events << " events ("
            << p.dropped << " dropped), horizon " << fmt(p.horizon_s, 3)
            << " s, critical path " << fmt(p.critical_path_s, 3)
            << " s, idle " << fmt(p.idle_s, 3) << " s\n";
  // Silent data loss is the one thing a profile must never hide: echo
  // the report's warning lines (ring drops, flight-recorder evictions).
  for (const std::string& warning : report.warnings())
    std::cout << "WARNING: " << warning << "\n";
  if (p.unmatched_begins + p.unmatched_ends > 0) {
    std::cout << "  (" << p.unmatched_begins << " unmatched begins, "
              << p.unmatched_ends
              << " unmatched ends: ring truncation)\n";
  }
  if (!p.spans.empty()) {
    TextTable t({"span", "count", "wall [s]", "self [s]", "min [ms]",
                 "max [ms]", "wait [s]"});
    for (const auto& s : p.spans)
      t.add_row({s.category + ":" + s.name, std::to_string(s.count),
                 fmt(s.wall_s, 3), fmt(s.self_s, 3),
                 fmt(s.min_s * 1e3, 2), fmt(s.max_s * 1e3, 2),
                 fmt(s.wait_s, 3)});
    std::cout << t;
  }
  if (p.queue.jobs > 0) {
    std::cout << "queue: " << p.queue.jobs << " jobs, mean wait "
              << fmt(p.queue.mean_wait_s * 1e3, 2) << " ms, mean service "
              << fmt(p.queue.mean_service_s * 1e3, 2) << " ms, p95 wait "
              << fmt(p.queue.p95_wait_s * 1e3, 2) << " ms, p95 service "
              << fmt(p.queue.p95_service_s * 1e3, 2) << " ms\n";
  }
  for (const auto& r : report.rollups) {
    std::cout << "counter " << r.channel << ": " << r.windows.size()
              << " windows of " << fmt(r.interval_s, 3)
              << " s, total energy " << fmt(r.total_energy_j.value(), 3)
              << " J\n";
  }

  const auto write_file = [](const std::string& path,
                             const std::string& content) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return false;
    }
    out << content;
    std::cout << "wrote " << path << "\n";
    return true;
  };
  if (!json_path.empty() && !write_file(json_path, report.json() + "\n"))
    return 2;
  if (!folded_path.empty() &&
      !write_file(folded_path, obs::folded_stacks(trace)))
    return 2;
  if (!prom_path.empty() &&
      !write_file(prom_path, obs::prometheus_text(report.metrics)))
    return 2;
  return 0;
}

/// End-to-end smoke of the telemetry pipeline, wired into ctest: trace a
/// synthetic run to JSONL, profile it through the real `profile` command
/// path, then re-parse and cross-check the artifacts.
int cmd_selftest_profile() {
  const std::string trace_path = "hcep_selftest_trace.jsonl";
  const std::string json_path = "hcep_selftest_report.json";
  const std::string folded_path = "hcep_selftest.folded";
  const std::string prom_path = "hcep_selftest.prom";

  obs::Observer observer;
  const cluster::SimResult r = traced_run("synthetic", observer);
  {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 2;
    }
    out << observer.tracer.jsonl();
  }
  if (cmd_profile({trace_path, "--json", json_path, "--folded",
                   folded_path, "--prom", prom_path}) != 0) {
    return 2;
  }

  // The emitted report must be valid JSON and agree with the trace.
  std::ifstream in(json_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonValue report = JsonValue::parse(buffer.str());
  const auto events =
      static_cast<std::uint64_t>(report.at("profile").at("events").as_int());
  if (events != observer.tracer.size()) {
    std::cerr << "selftest: report events " << events << " != traced "
              << observer.tracer.size() << "\n";
    return 2;
  }

#if HCEP_OBS
  // Live-instrumentation cross-checks: windowed energy attribution must
  // re-integrate to the simulator's exact energy, and a same-seed rerun
  // must reproduce the trace bytes.
  const obs::Trace trace = obs::Trace::from(observer.tracer);
  const obs::SeriesRollup rollup = obs::rollup_counter(
      trace, "cluster_W", r.window.value() / 8.0, r.window.value());
  const double exact = r.energy_exact.value();
  if (std::abs(rollup.total_energy_j.value() - exact) >
      std::abs(exact) * 1e-9) {
    std::cerr << "selftest: rollup energy " << rollup.total_energy_j.value()
              << " J != exact " << exact << " J\n";
    return 2;
  }
  obs::Observer replay;
  traced_run("synthetic", replay);
  if (replay.tracer.jsonl() != observer.tracer.jsonl()) {
    std::cerr << "selftest: same-seed rerun produced different trace "
                 "bytes\n";
    return 2;
  }
#else
  std::cout << "selftest: structural checks only (HCEP_OBS=OFF)\n";
#endif
  std::cout << "selftest profile: ok\n";
  return 0;
}

/// Determinism + sensitivity smoke of the streamed timeline and the diff
/// tooling, wired into ctest: a same-seed rerun must diff empty, and
/// extending the run must flag exactly the windows whose exported bytes
/// actually changed — with the shared prefix untouched.
int cmd_selftest_diff() {
  const workload::Workload w = synthetic_workload();
  const model::ClusterSpec spec = model::make_a9_k10_cluster(4, 2);
  const std::vector<traffic::TrafficClass> classes{
      traffic::TrafficClass{w, 1.0, traffic::SloTarget{}}};
  const double rate =
      0.7 * traffic::cluster_capacity_per_s(spec, classes);

  // Fixed window width across runs: the diff requires matching shapes,
  // and the perturbed run must land its changes in the TAIL windows.
  const auto run = [&](std::uint64_t requests) {
    traffic::TrafficOptions options;
    options.requests = requests;
    options.seed = 99;
    options.stream.window = Seconds{4000.0 / rate / 64.0};
    const auto arrivals = traffic::make_poisson(rate);
    return traffic::simulate_traffic(spec, classes, *arrivals, options)
        .timeline;
  };

  const obs::stream::StreamTimeline a = run(4000);
  const obs::stream::StreamTimeline rerun = run(4000);
  if (a.to_json().dump() != rerun.to_json().dump()) {
    std::cerr << "selftest: same-seed timelines are not byte-identical\n";
    return 2;
  }
  if (!obs::stream::diff_timelines(a, rerun).empty()) {
    std::cerr << "selftest: same-seed diff is not empty\n";
    return 2;
  }

  // Perturb one option (200 extra requests) and require the diff to
  // flag exactly the windows whose JSON bytes differ — no more, no less.
  const obs::stream::StreamTimeline b = run(4200);
  const obs::stream::TimelineDiff d = obs::stream::diff_timelines(a, b);
  if (d.empty()) {
    std::cerr << "selftest: extended run produced an empty diff\n";
    return 2;
  }
  const JsonValue ja = a.to_json();
  const JsonValue jb = b.to_json();
  const JsonValue& wa = ja.at("windows");
  const JsonValue& wb = jb.at("windows");
  std::vector<std::uint64_t> expected;
  const std::size_t shared = std::min(wa.size(), wb.size());
  for (std::size_t i = 0; i < shared; ++i) {
    if (wa.at(i).dump() != wb.at(i).dump())
      expected.push_back(static_cast<std::uint64_t>(i));
  }
  for (std::size_t i = shared; i < std::max(wa.size(), wb.size()); ++i)
    expected.push_back(static_cast<std::uint64_t>(i));
  if (d.flagged_windows() != expected) {
    std::cerr << "selftest: flagged windows do not match the byte-level "
                 "differences\n";
    return 2;
  }
  if (expected.empty() || expected.front() == 0) {
    std::cerr << "selftest: expected an unchanged shared window prefix\n";
    return 2;
  }
  std::cout << "selftest diff: ok (" << expected.size() << "/"
            << std::max(wa.size(), wb.size()) << " windows changed, first "
            << expected.front() << ")\n";
  return 0;
}

// ----------------------------------------------------------------- fed

/// The keystone federation scenario at CLI scale: three regions
/// ("alpha" twice the size of "beta"/"gamma") with diurnal demand
/// peaking a third of a compressed day apart, tariff and carbon curves
/// peaking with each region's local load, interactive (memcached,
/// tight SLO) plus batch (x264, loose SLO) traffic, and a WAN whose
/// transit excludes remote sites for interactive requests. The same
/// shape as tests/test_fed.cpp's FleetScenario; see docs/FEDERATION.md.
struct FedScenario {
  std::vector<fed::Site> sites;
  hw::InterSiteNetwork network;
  std::vector<traffic::TrafficClass> classes;
  fed::FleetOptions options;
};

FedScenario make_fed_scenario(std::uint64_t requests_per_site,
                              std::uint64_t seed) {
  FedScenario sc;
  const std::vector<unsigned> k10 = {4, 2, 2};
  const char* names[] = {"alpha", "beta", "gamma"};

  const auto probe = model::make_a9_k10_cluster(0, 1);
  const std::vector<traffic::TrafficClass> mc_only = {
      {study().workload("memcached"), 1.0, {}}};
  const std::vector<traffic::TrafficClass> x264_only = {
      {study().workload("x264"), 1.0, {}}};
  const Seconds s_i{1.0 / traffic::cluster_capacity_per_s(probe, mc_only)};
  const Seconds s_b{1.0 / traffic::cluster_capacity_per_s(probe, x264_only)};
  const Seconds slo_i{12.0 * s_i.value()};
  const Seconds slo_b{40.0 * s_b.value()};
  sc.classes = {
      {study().workload("memcached"), 0.80, traffic::SloTarget{slo_i, 0.95}},
      {study().workload("x264"), 0.20, traffic::SloTarget{slo_b, 0.95}}};

  sc.network = hw::InterSiteNetwork::uniform(3, Seconds{0.5 * slo_i.value()},
                                             BytesPerSecond{0.0});

  double fleet_capacity = 0.0;
  for (const unsigned n : k10)
    fleet_capacity += traffic::cluster_capacity_per_s(
        model::make_a9_k10_cluster(0, n), sc.classes);
  const double site_rate = 0.55 * fleet_capacity / 3.0;
  const Seconds period{static_cast<double>(requests_per_site) / site_rate};

  for (std::size_t s = 0; s < 3; ++s) {
    fed::Site site;
    site.name = names[s];
    site.cluster = model::make_a9_k10_cluster(0, k10[s]);
    site.rack_budget = site.cluster.nameplate_power();
    const Seconds offset{period.value() * static_cast<double>(s) / 3.0};
    site.arrivals = traffic::make_diurnal(site_rate, 0.85, period, offset);
    // The sinusoidal load peaks a quarter period past its offset; the
    // tariff and carbon curves peak with the local load.
    const Seconds price_peak{offset.value() + 0.25 * period.value()};
    site.price = fed::make_diurnal_curve(0.10, 0.8, period, price_peak,
                                         /*seed=*/100 + s, /*jitter=*/0.03);
    site.carbon = fed::make_diurnal_curve(420.0, 0.6, period, price_peak,
                                          /*seed=*/200 + s, /*jitter=*/0.03);
    sc.sites.push_back(std::move(site));
  }

  sc.options.requests_per_site = requests_per_site;
  sc.options.seed = seed;
  sc.options.stream.window = Seconds{period.value() / 48.0};
  sc.options.router.headroom = 0.60;
  sc.options.router.transit_slack = 0.25;
  // Short relative to the diurnal ramp — see RouterOptions::load_window.
  sc.options.router.load_window = Seconds{6.0 * s_b.value()};
  return sc;
}

int cmd_fed(const std::vector<std::string>& args) {
  std::string policy_name = "slo-hybrid";
  std::uint64_t requests = 3000;
  std::uint64_t seed = 1;
  std::size_t shards = 1;
  std::size_t pinned = 0;
  std::string json_path;
  for (std::size_t i = 0; i < args.size(); i += 2) {
    if (i + 1 >= args.size()) return usage();
    const std::string& key = args[i];
    const std::string& value = args[i + 1];
    if (key == "--policy")
      policy_name = value;
    else if (key == "--requests")
      requests = std::stoull(value);
    else if (key == "--seed")
      seed = std::stoull(value);
    else if (key == "--shards")
      shards = std::stoul(value);
    else if (key == "--pinned")
      pinned = std::stoul(value);
    else if (key == "--json")
      json_path = value;
    else
      return usage();
  }

  FedScenario sc = make_fed_scenario(requests, seed);
  sc.options.router.policy = fed::parse_route_policy(policy_name);
  sc.options.router.pinned_site = pinned;
  sc.options.shards = shards;
  const fed::FleetReport r =
      fed::simulate_fleet(sc.sites, sc.network, sc.classes, sc.options);

  std::cout << "fleet of " << r.sites.size() << " sites, policy "
            << r.router_policy << ", seed " << r.seed << ", "
            << requests << " req/site:\n"
            << "  offered " << r.offered << "  completed " << r.completed
            << "  failed " << r.failed << "  cross-site " << r.cross_site
            << "\n  energy " << fmt(r.energy.value(), 1) << " J  cost $"
            << fmt(r.energy_cost, 4) << "  carbon " << fmt(r.carbon_g, 1)
            << " g  horizon " << fmt(r.horizon.value(), 1) << " s\n";
  TextTable sites_t(
      {"site", "routed", "local", "energy [J]", "cost [$]", "carbon [g]"});
  for (const auto& s : r.sites)
    sites_t.add_row({s.name, std::to_string(s.routed),
                     std::to_string(s.local), fmt(s.energy.value(), 1),
                     fmt(s.energy_cost, 4), fmt(s.carbon_g, 1)});
  std::cout << sites_t;
  TextTable cls_t({"class", "completed", "violations", "e2e p99 [ms]",
                   "slo [ms]", "mean transit [ms]"});
  for (const auto& c : r.classes)
    cls_t.add_row({c.name, std::to_string(c.completed),
                   std::to_string(c.slo_violations),
                   fmt(c.e2e.p99.value() * 1e3, 1),
                   fmt(c.slo.latency.value() * 1e3, 1),
                   fmt(c.mean_transit.value() * 1e3, 2)});
  std::cout << cls_t;
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    out << r.to_json().dump_pretty() << "\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

/// `hcep selftest fed`: the federation determinism contract through the
/// public surface — a same-seed fleet run must serialize byte-identically
/// across repeated runs AND across shard counts (shards only decide
/// whether the per-site simulations run concurrently), while a different
/// seed must produce a different document.
int cmd_selftest_fed() {
  const auto dump = [](std::uint64_t seed, std::size_t shards) {
    FedScenario sc = make_fed_scenario(900, seed);
    sc.options.shards = shards;
    return fed::simulate_fleet(sc.sites, sc.network, sc.classes, sc.options)
        .to_json()
        .dump_pretty();
  };
  const std::string first = dump(20260809, 1);
  if (dump(20260809, 1) != first) {
    std::cerr << "selftest: same-seed fleet reruns are not byte-identical\n";
    return 2;
  }
  for (const std::size_t shards : {std::size_t{2}, std::size_t{3}}) {
    if (dump(20260809, shards) != first) {
      std::cerr << "selftest: fleet report changed with shards="
                << shards << "\n";
      return 2;
    }
  }
  if (dump(20260810, 1) == first) {
    std::cerr << "selftest: different seeds produced identical fleets\n";
    return 2;
  }
  std::cout << "selftest fed: ok (" << first.size()
            << "-byte report stable across reruns and shards 1/2/3)\n";
  return 0;
}

int cmd_selftest(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  if (args[0] == "profile") return cmd_selftest_profile();
  if (args[0] == "diff") return cmd_selftest_diff();
  if (args[0] == "fed") return cmd_selftest_fed();
  return usage();
}

// ------------------------------------------------------------- traffic

int cmd_traffic(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const bool synthetic = args[0] == "synthetic";
  const workload::Workload w =
      synthetic ? synthetic_workload() : study().workload(args[0]);

  std::string arrivals_name = "poisson";
  std::string policy_name = "join-shortest-queue";
  double util = 0.7;
  double slo_ms = 0.0;
  std::string json_path;
  traffic::TrafficOptions options;
  for (std::size_t i = 1; i < args.size(); i += 2) {
    if (i + 1 >= args.size()) return usage();
    const std::string& key = args[i];
    const std::string& value = args[i + 1];
    if (key == "--arrivals")
      arrivals_name = value;
    else if (key == "--policy")
      policy_name = value;
    else if (key == "--util")
      util = std::stod(value);
    else if (key == "--requests")
      options.requests = std::stoull(value);
    else if (key == "--seed")
      options.seed = std::stoull(value);
    else if (key == "--bucket-rate")
      options.admission.bucket_rate_per_s = std::stod(value);
    else if (key == "--bucket-burst")
      options.admission.bucket_burst = std::stod(value);
    else if (key == "--max-queue")
      options.admission.max_queue_depth = std::stoull(value);
    else if (key == "--retries")
      options.retry.max_attempts =
          1 + static_cast<std::uint32_t>(std::stoul(value));
    else if (key == "--slo-ms")
      slo_ms = std::stod(value);
    else if (key == "--json")
      json_path = value;
    else
      return usage();
  }

  bool policy_found = false;
  for (const auto p : cluster::all_dispatch_policies()) {
    if (cluster::to_string(p) == policy_name) {
      options.policy = p;
      policy_found = true;
    }
  }
  if (!policy_found) {
    std::cerr << "unknown policy " << policy_name << "\n";
    return 1;
  }

  std::vector<traffic::TrafficClass> classes{
      traffic::TrafficClass{w, 1.0, traffic::SloTarget{}}};
  if (slo_ms > 0.0)
    classes[0].slo = traffic::SloTarget{Seconds{slo_ms * 1e-3}, 0.95};
  const double capacity = traffic::cluster_capacity_per_s(
      model::make_a9_k10_cluster(4, 2), classes);
  const double rate = util * capacity;

  std::unique_ptr<traffic::ArrivalProcess> arrivals;
  if (arrivals_name == "poisson")
    arrivals = traffic::make_poisson(rate);
  else if (arrivals_name == "deterministic")
    arrivals = traffic::make_deterministic(rate);
  else if (arrivals_name == "bursty")
    // 4:1 quiet/burst dwell split with the same long-run mean rate.
    arrivals = traffic::make_bursty(0.5 * rate, Seconds{4.0 / rate * 100.0},
                                    3.0 * rate, Seconds{1.0 / rate * 100.0});
  else if (arrivals_name == "diurnal")
    arrivals = traffic::make_diurnal(rate, 0.5, Seconds{200.0 / rate});
  else {
    std::cerr << "unknown arrival process " << arrivals_name << "\n";
    return 1;
  }

  const auto r = traffic::simulate_traffic(model::make_a9_k10_cluster(4, 2),
                                           classes, *arrivals, options);

  std::cout << w.name << " over 4xA9 + 2xK10, " << r.arrival_process
            << " arrivals at " << fmt(rate, 1) << " req/s (util "
            << fmt(util * 100.0, 0) << "% of " << fmt(capacity, 1)
            << " req/s), policy " << policy_name << ":\n"
            << "  offered " << r.offered << "  admitted " << r.admitted
            << "  shed " << r.shed_bucket + r.shed_queue << " (bucket "
            << r.shed_bucket << ", queue " << r.shed_queue << ")  retries "
            << r.retries << "  completed " << r.completed << "  failed "
            << r.failed << "\n";
  TextTable t({"latency", "mean [ms]", "p50 [ms]", "p95 [ms]", "p99 [ms]",
               "max [ms]"});
  const auto row = [&](const std::string& label,
                       const traffic::LatencySummary& s) {
    t.add_row({label, fmt(s.mean.value() * 1e3, 2),
               fmt(s.p50.value() * 1e3, 2), fmt(s.p95.value() * 1e3, 2),
               fmt(s.p99.value() * 1e3, 2), fmt(s.max.value() * 1e3, 2)});
  };
  row("queue wait", r.wait);
  row("service", r.service);
  row("sojourn", r.sojourn);
  std::cout << t;
  std::cout << "  energy " << fmt(r.energy.value(), 1) << " J over "
            << fmt(r.makespan.value(), 2) << " s  ("
            << fmt(r.energy_per_request.value(), 2)
            << " J/request, average power " << fmt(r.average_power.value(), 1)
            << " W)\n";
  if (!r.classes.empty() && r.classes[0].slo.enabled()) {
    const auto& c = r.classes[0];
    std::cout << "  SLO p95 <= " << fmt(slo_ms, 1) << " ms: "
              << c.slo_violations << " violations ("
              << fmt(100.0 * c.violation_fraction(), 1) << "%) — "
              << (c.slo_met() ? "met" : "MISSED") << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    out << r.to_json().dump_pretty() << "\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

// ------------------------------------------------------ timeline / diff

/// Streamed traffic run: tumbling-window telemetry computed online
/// during the simulation and exported as a deterministic timeline
/// document (JSON and/or RFC 4180 CSV).
int cmd_timeline(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const bool synthetic = args[0] == "synthetic";
  const workload::Workload w =
      synthetic ? synthetic_workload() : study().workload(args[0]);

  std::string arrivals_name = "poisson";
  std::string policy_name = "join-shortest-queue";
  double util = 0.7;
  double window_s = 0.0;
  std::string json_path, csv_path;
  traffic::TrafficOptions options;
  for (std::size_t i = 1; i < args.size(); i += 2) {
    if (i + 1 >= args.size()) return usage();
    const std::string& key = args[i];
    const std::string& value = args[i + 1];
    if (key == "--arrivals")
      arrivals_name = value;
    else if (key == "--policy")
      policy_name = value;
    else if (key == "--util")
      util = std::stod(value);
    else if (key == "--requests")
      options.requests = std::stoull(value);
    else if (key == "--seed")
      options.seed = std::stoull(value);
    else if (key == "--shards")
      options.shards = std::stoull(value);
    else if (key == "--window")
      window_s = std::stod(value);
    else if (key == "--epsilon")
      options.stream.sketch_epsilon = std::stod(value);
    else if (key == "--json")
      json_path = value;
    else if (key == "--csv")
      csv_path = value;
    else
      return usage();
  }

  bool policy_found = false;
  for (const auto p : cluster::all_dispatch_policies()) {
    if (cluster::to_string(p) == policy_name) {
      options.policy = p;
      policy_found = true;
    }
  }
  if (!policy_found) {
    std::cerr << "unknown policy " << policy_name << "\n";
    return 1;
  }

  std::vector<traffic::TrafficClass> classes{
      traffic::TrafficClass{w, 1.0, traffic::SloTarget{}}};
  const model::ClusterSpec spec = model::make_a9_k10_cluster(4, 2);
  const double capacity = traffic::cluster_capacity_per_s(spec, classes);
  const double rate = util * capacity;

  std::unique_ptr<traffic::ArrivalProcess> arrivals;
  if (arrivals_name == "poisson")
    arrivals = traffic::make_poisson(rate);
  else if (arrivals_name == "deterministic")
    arrivals = traffic::make_deterministic(rate);
  else if (arrivals_name == "bursty")
    arrivals = traffic::make_bursty(0.5 * rate, Seconds{4.0 / rate * 100.0},
                                    3.0 * rate, Seconds{1.0 / rate * 100.0});
  else if (arrivals_name == "diurnal")
    arrivals = traffic::make_diurnal(rate, 0.5, Seconds{200.0 / rate});
  else {
    std::cerr << "unknown arrival process " << arrivals_name << "\n";
    return 1;
  }

  // Default width: ~64 windows over the nominal run span, so the table
  // stays readable at any --requests scale.
  if (window_s <= 0.0)
    window_s = static_cast<double>(options.requests) / rate / 64.0;
  options.stream.window = Seconds{window_s};

  const auto r = traffic::simulate_traffic(spec, classes, *arrivals, options);
  const obs::stream::StreamTimeline& tl = r.timeline;

  std::uint64_t total_nodes = 0;
  for (const auto& c : tl.node_classes) total_nodes += c.nodes;
  std::cout << w.name << " over 4xA9 + 2xK10, " << r.arrival_process
            << " arrivals at " << fmt(rate, 1) << " req/s: "
            << tl.windows.size() << " windows of "
            << fmt(tl.window.value(), 3) << " s (sketch epsilon "
            << fmt(tl.sketch_epsilon, 4) << "), total energy "
            << fmt(tl.total_energy.value(), 1) << " J + "
            << fmt(tl.total_wake.value(), 1) << " J wake transients\n";

  TextTable t({"win", "t0 [s]", "arrive", "done", "shed", "util",
               "p95 [ms]", "energy [J]"});
  const std::size_t stride =
      tl.windows.empty() ? 1 : std::max<std::size_t>(1, tl.windows.size() / 12);
  for (std::size_t i = 0; i < tl.windows.size(); i += stride) {
    const auto& win = tl.windows[i];
    double busy = 0.0;
    for (const auto& c : win.classes) busy += c.busy.value();
    const double span =
        std::min(win.t1.value(), tl.horizon.value()) - win.t0.value();
    const double u =
        total_nodes > 0 && span > 0.0
            ? busy / (static_cast<double>(total_nodes) * span)
            : 0.0;
    t.add_row({std::to_string(win.index), fmt(win.t0.value(), 2),
               std::to_string(win.arrivals), std::to_string(win.completions),
               std::to_string(win.shed), fmt(u, 3),
               fmt(win.sojourn_p95.value() * 1e3, 2),
               fmt(win.energy.value(), 1)});
  }
  std::cout << t;

  const auto write_file = [](const std::string& path,
                             const std::string& content) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return false;
    }
    out << content;
    std::cout << "wrote " << path << "\n";
    return true;
  };
  if (!json_path.empty() &&
      !write_file(json_path, tl.to_json().dump() + "\n"))
    return 2;
  if (!csv_path.empty() && !write_file(csv_path, tl.csv())) return 2;
  return 0;
}

/// Loads a timeline document: either a raw `hcep timeline --json` export
/// or a run report / result bundle with an embedded "stream" section.
obs::stream::StreamTimeline load_timeline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buffer.str());
  const JsonValue* stream = doc.find("stream");
  return obs::stream::StreamTimeline::from_json(
      stream != nullptr ? *stream : doc);
}

/// Window-by-window comparison of two timeline exports. Exit 0 when the
/// runs agree within tolerance, 1 when any metric is flagged.
int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  obs::stream::DiffTolerances tol;
  std::string json_path;
  for (std::size_t i = 2; i < args.size(); i += 2) {
    if (i + 1 >= args.size()) return usage();
    if (args[i] == "--rel")
      tol.rel = std::stod(args[i + 1]);
    else if (args[i] == "--abs")
      tol.abs = std::stod(args[i + 1]);
    else if (args[i] == "--json")
      json_path = args[i + 1];
    else
      return usage();
  }

  const obs::stream::StreamTimeline a = load_timeline(args[0]);
  const obs::stream::StreamTimeline b = load_timeline(args[1]);
  const obs::stream::TimelineDiff d = obs::stream::diff_timelines(a, b, tol);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    out << d.to_json().dump() << "\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (d.shape_mismatch)
    std::cout << "shape mismatch: " << d.note << "\n";
  if (d.empty()) {
    std::cout << "identical: " << d.windows_compared
              << " windows agree within tolerance (rel " << fmt(tol.rel, 12)
              << ", abs " << fmt(tol.abs, 15) << ")\n";
    return 0;
  }

  TextTable t({"win", "metric", "a", "b"});
  const std::size_t shown = std::min<std::size_t>(d.entries.size(), 20);
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& e = d.entries[i];
    t.add_row({std::to_string(e.window), e.metric, fmt(e.a, 6),
               fmt(e.b, 6)});
  }
  std::cout << t;
  if (shown < d.entries.size())
    std::cout << "  ... " << d.entries.size() - shown << " more\n";
  const auto flagged = d.flagged_windows();
  std::cout << d.entries.size() << " metric deltas across "
            << flagged.size() << " windows (" << d.windows_compared
            << " compared in both runs)\n";
  return 1;
}

// ------------------------------------------------------------- control

/// Closed-loop traffic run vs the open-loop baseline on the same seed and
/// arrival stream: the keystone comparison of docs/CONTROL.md.
int cmd_control(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const bool synthetic = args[0] == "synthetic";
  const workload::Workload w =
      synthetic ? synthetic_workload() : study().workload(args[0]);

  std::string controller_name = "power_gate";
  std::string arrivals_name = "diurnal";
  double util = 0.5;
  double slo_ms = 50.0;
  double cap_w = 1000.0;
  std::string json_path;
  traffic::TrafficOptions options;
  options.requests = 20000;
  for (std::size_t i = 1; i < args.size(); i += 2) {
    if (i + 1 >= args.size()) return usage();
    const std::string& key = args[i];
    const std::string& value = args[i + 1];
    if (key == "--controller")
      controller_name = value;
    else if (key == "--arrivals")
      arrivals_name = value;
    else if (key == "--util")
      util = std::stod(value);
    else if (key == "--requests")
      options.requests = std::stoull(value);
    else if (key == "--seed")
      options.seed = std::stoull(value);
    else if (key == "--shards")
      options.shards = std::stoull(value);
    else if (key == "--period")
      options.control.period = Seconds{std::stod(value)};
    else if (key == "--cap")
      cap_w = std::stod(value);
    else if (key == "--slo-ms")
      slo_ms = std::stod(value);
    else if (key == "--json")
      json_path = value;
    else
      return usage();
  }

  std::vector<traffic::TrafficClass> classes{
      traffic::TrafficClass{w, 1.0, traffic::SloTarget{}}};
  if (slo_ms > 0.0)
    classes[0].slo = traffic::SloTarget{Seconds{slo_ms * 1e-3}, 0.95};
  const model::ClusterSpec spec = model::make_a9_k10_cluster(4, 2);
  const double capacity = traffic::cluster_capacity_per_s(spec, classes);
  const double rate = util * capacity;

  std::unique_ptr<traffic::ArrivalProcess> arrivals;
  if (arrivals_name == "poisson")
    arrivals = traffic::make_poisson(rate);
  else if (arrivals_name == "diurnal")
    arrivals = traffic::make_diurnal(rate, 0.6, Seconds{400.0 / rate});
  else if (arrivals_name == "mmpp")
    arrivals = traffic::make_mmpp(
        {{0.4 * rate, Seconds{200.0 / rate}},
         {2.2 * rate, Seconds{100.0 / rate}}});
  else {
    std::cerr << "unknown arrival process " << arrivals_name << "\n";
    return 1;
  }

  if (controller_name == "power_gate" || controller_name == "power-gate")
    options.control.controller = control::make_power_gate({});
  else if (controller_name == "dvfs")
    options.control.controller = control::make_dvfs_governor({});
  else if (controller_name == "power_cap" || controller_name == "power-cap")
    options.control.controller =
        control::make_power_cap({.cap = Watts{cap_w}});
  else if (controller_name == "frozen")
    options.control.controller = control::make_frozen();
  else {
    std::cerr << "unknown controller " << controller_name << "\n";
    return 1;
  }

  traffic::TrafficOptions open = options;
  open.control = control::ControlOptions{};  // open loop
  const auto base = traffic::simulate_traffic(spec, classes, *arrivals, open);
  const auto r = traffic::simulate_traffic(spec, classes, *arrivals, options);

  std::cout << w.name << " over 4xA9 + 2xK10, " << r.arrival_process
            << " arrivals at " << fmt(rate, 1) << " req/s (util "
            << fmt(util * 100.0, 0) << "%), controller "
            << r.control.controller << ":\n";
  TextTable t({"run", "energy [J]", "J/request", "p99 [ms]", "completed",
               "shed"});
  const auto row = [&](const std::string& label,
                       const traffic::TrafficResult& x) {
    t.add_row({label, fmt(x.energy.value(), 1),
               fmt(x.energy_per_request.value(), 3),
               fmt(x.sojourn.p99.value() * 1e3, 2),
               std::to_string(x.completed),
               std::to_string(x.shed_bucket + x.shed_queue)});
  };
  row("open loop", base);
  row("closed loop", r);
  std::cout << t;
  const double saved =
      base.energy.value() > 0.0
          ? 100.0 * (1.0 - r.energy.value() / base.energy.value())
          : 0.0;
  std::cout << "  control: " << r.control.ticks << " ticks ("
            << r.control.event_ticks << " event-triggered), "
            << r.control.sleeps << " sleeps, " << r.control.wakes
            << " wakes, " << r.control.point_changes << " point changes\n"
            << "  gating saved " << fmt(r.control.gating_savings.value(), 1)
            << " J, wake transients cost "
            << fmt(r.control.wake_energy.value(), 1) << " J  ("
            << fmt(saved, 1) << "% total energy vs open loop)\n";
  if (!r.classes.empty() && r.classes[0].slo.enabled()) {
    const auto& c = r.classes[0];
    std::cout << "  SLO p95 <= " << fmt(slo_ms, 1) << " ms: "
              << (c.slo_met() ? "met" : "MISSED") << " ("
              << fmt(100.0 * c.violation_fraction(), 1)
              << "% violations)\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    JsonValue doc = JsonValue::object();
    doc.set("open_loop", base.to_json());
    doc.set("closed_loop", r.to_json());
    doc.set("control", r.control.to_json());
    out << doc.dump_pretty() << "\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

int cmd_governor(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  analysis::GovernorStudyOptions opts;
  if (args.size() > 2) {
    opts.mix = {static_cast<unsigned>(std::stoul(args[1])),
                static_cast<unsigned>(std::stoul(args[2]))};
  }
  const auto r =
      analysis::run_governor_study(study().workload(args[0]), opts);
  TextTable t({"util", "race [W]", "pace [W]", "saving"});
  for (const auto& pt : r.points)
    t.add_row({fmt(pt.utilization * 100, 0) + "%",
               fmt(pt.race_power.value(), 1), fmt(pt.pace_power.value(), 1),
               fmt(pt.saving_percent, 1) + "%"});
  std::cout << t;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "help" || cmd == "--help" || cmd == "-h") return usage();
    if (cmd == "report") return cmd_report(args);
    if (cmd == "table") return cmd_table(args);
    if (cmd == "metrics") return cmd_metrics(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "response") return cmd_response(args);
    if (cmd == "sensitivity") return cmd_sensitivity(args);
    if (cmd == "governor") return cmd_governor(args);
    if (cmd == "autoscale") return cmd_autoscale(args);
    if (cmd == "export") return cmd_export(args);
    if (cmd == "traffic") return cmd_traffic(args);
    if (cmd == "control") return cmd_control(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "profile") return cmd_profile(args);
    if (cmd == "timeline") return cmd_timeline(args);
    if (cmd == "diff") return cmd_diff(args);
    if (cmd == "fed") return cmd_fed(args);
    if (cmd == "selftest") return cmd_selftest(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
