// hcep — command-line front end to the reproduction library.
//
//   hcep help                         this text
//   hcep report [path]               full markdown report (default REPORT.md)
//   hcep table <4|6|7|8>             one paper table on stdout
//   hcep metrics <program> <nA9> <nK10>
//                                    proportionality metrics of one mix
//   hcep sweep <program> [maxA9 maxK10]
//                                    Pareto frontier over the config space
//   hcep response <program>          Figures 11/12-style p95 table
//   hcep sensitivity <program>       seed-perturbation robustness
//   hcep governor <program> [nA9 nK10]
//                                    race-to-idle vs DVFS pacing
//   hcep autoscale <program>         diurnal autoscaling vs static fleet
//   hcep export <json|figures> [path]
//                                    machine-readable study results
//
// Exit code 0 on success, 1 on usage errors, 2 on runtime failures.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "hcep/hcep.hpp"

namespace {

using namespace hcep;

int usage() {
  std::cerr
      << "usage: hcep <command> [args]\n"
         "  report [path]                   full markdown report\n"
         "  table <4|6|7|8>                 one paper table\n"
         "  metrics <program> <nA9> <nK10>  metrics of one mix\n"
         "  sweep <program> [maxA9 maxK10]  Pareto frontier\n"
         "  response <program>              p95 vs utilization\n"
         "  sensitivity <program>           seed robustness\n"
         "  governor <program> [nA9 nK10]   race vs pace\n"
         "  autoscale <program>             autoscaling vs static fleet\n"
         "  export json [path]              full study as JSON\n"
         "programs: EP memcached x264 blackscholes Julius RSA-2048\n";
  return 1;
}

const core::PaperStudy& study() {
  static const core::PaperStudy kStudy;
  return kStudy;
}

int cmd_report(const std::vector<std::string>& args) {
  const std::string path = args.empty() ? "REPORT.md" : args[0];
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  out << analysis::render_report(study());
  std::cout << "wrote " << path << "\n";
  return 0;
}

int cmd_table(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string which = args[0];
  if (which == "4") {
    TextTable t({"Domain", "Program", "time err[%]", "energy err[%]"});
    for (const auto& r : study().table4())
      t.add_row({r.domain, r.program, fmt(r.time_error_percent, 1),
                 fmt(r.energy_error_percent, 1)});
    std::cout << t;
    return 0;
  }
  if (which == "6" || which == "7") {
    TextTable t({"Program", "Node", "PPR", "DPR", "IPR", "EPM"});
    for (const auto& a : study().single_node_analyses())
      t.add_row({a.program, a.node,
                 a.ppr_peak >= 100 ? fmt_grouped(a.ppr_peak)
                                   : fmt(a.ppr_peak, 2),
                 fmt(a.report.dpr, 2), fmt(a.report.ipr, 2),
                 fmt(a.report.epm, 2)});
    std::cout << t;
    return 0;
  }
  if (which == "8") {
    for (const auto& program : workload::program_names()) {
      TextTable t({"Mix", "DPR", "IPR", "EPM"});
      for (const auto& m : study().budget_mix_analyses(program))
        t.add_row({m.label, fmt(m.report.dpr, 2), fmt(m.report.ipr, 2),
                   fmt(m.report.epm, 2)});
      std::cout << "[" << program << "]\n" << t << "\n";
    }
    return 0;
  }
  return usage();
}

int cmd_metrics(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  const auto& w = study().workload(args[0]);
  const auto n_a9 = static_cast<unsigned>(std::stoul(args[1]));
  const auto n_k10 = static_cast<unsigned>(std::stoul(args[2]));
  model::TimeEnergyModel m(model::make_a9_k10_cluster(n_a9, n_k10), w);
  const auto r = metrics::analyze(m.power_curve());
  std::cout << "mix " << m.cluster().label() << " running " << w.name
            << ":\n"
            << "  T_P " << m.job_time() << "   E_P "
            << m.job_energy(w.units_per_job).e_p << "\n"
            << "  idle " << m.idle_power() << "   busy " << m.busy_power()
            << "   nameplate " << m.cluster().nameplate_power() << "\n"
            << "  DPR " << fmt(r.dpr, 2) << "  IPR " << fmt(r.ipr, 2)
            << "  EPM " << fmt(r.epm, 2) << "  PPR@peak "
            << fmt(m.ppr(1.0), 2) << "\n";
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto& w = study().workload(args[0]);
  const unsigned max_a9 =
      args.size() > 1 ? static_cast<unsigned>(std::stoul(args[1])) : 10;
  const unsigned max_k10 =
      args.size() > 2 ? static_cast<unsigned>(std::stoul(args[2])) : 5;
  const auto space = config::make_a9_k10_space(max_a9, max_k10);
  std::cout << "evaluating " << space.size() << " configurations...\n";
  const auto evals = config::evaluate_space(space, w);
  const auto front = config::pareto_front(evals);
  TextTable t({"config", "T_P [ms]", "E_P [J]", "EDP [J*s]"});
  for (const auto& e : front)
    t.add_row({e.config.label(), fmt(e.time.value() * 1e3, 2),
               fmt(e.energy.value(), 2),
               fmt(config::energy_delay_product(e), 4)});
  std::cout << t;
  const auto edp = config::min_edp(evals);
  std::cout << "EDP optimum: " << edp->config.label() << "\n";
  return 0;
}

int cmd_response(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto r = study().response_study(args[0]);
  std::cout << "deadline " << r.deadline << "\n";
  TextTable t({"mix", "meets", "service [ms]", "p95@50% [ms]",
               "p95@90% [ms]"});
  for (const auto& m : r.mixes) {
    const auto at = [&](double up) -> double {
      for (const auto& pt : m.points)
        if (pt.utilization_percent == up) return pt.p95_analytic.value();
      return 0.0;
    };
    t.add_row({m.mix.label(), m.meets_deadline ? "yes" : "NO",
               fmt(m.service_time.value() * 1e3, 2), fmt(at(50) * 1e3, 2),
               fmt(at(90) * 1e3, 2)});
  }
  std::cout << t;
  return 0;
}

int cmd_sensitivity(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto r = analysis::run_sensitivity_study(args[0]);
  std::cout << "trials: " << r.trials << "\n"
            << "Table 6 winner flips: " << r.winner_flips << "\n"
            << "Table 8 DPR(64A9:8K10): " << fmt(r.dpr_mixed.mean(), 2)
            << " +/- " << fmt(r.dpr_mixed.stddev(), 2) << "\n"
            << "Fig 9 (25,7) crossover: "
            << fmt(r.crossover_25_7.mean(), 3) << " +/- "
            << fmt(r.crossover_25_7.stddev(), 3) << "\n";
  return 0;
}

int cmd_autoscale(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto& w = study().workload(args[0]);
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(32, 12), w);
  const auto day =
      cluster::LoadTrace::diurnal(Seconds{600.0}, 0.1, 0.8);
  const auto r = cluster::autoscale_replay(m, day);
  std::cout << "fleet 32A9:12K10 over a diurnal day (compressed):\n"
            << "  energy " << fmt(r.total_energy.value() / 1e3, 1)
            << " kJ   avg power " << fmt(r.average_power.value(), 1)
            << " W   worst p95 " << fmt(r.worst_p95.value() * 1e3, 1)
            << " ms\n"
            << "  effective EPM " << fmt(r.effective_report.epm, 2)
            << " (static fleet: " << fmt(r.static_report.epm, 2) << ")\n"
            << "  effective idle floor "
            << fmt(r.effective_curve.idle().value(), 1) << " W (static: "
            << fmt(m.idle_power().value(), 1) << " W)\n";
  return 0;
}

int cmd_export(const std::vector<std::string>& args) {
  if (args.empty() || args[0] != "json") return usage();
  const std::string path = args.size() > 1 ? args[1] : "study.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  out << analysis::export_study(study()).dump_pretty() << "\n";
  std::cout << "wrote " << path << "\n";
  return 0;
}

int cmd_governor(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  analysis::GovernorStudyOptions opts;
  if (args.size() > 2) {
    opts.mix = {static_cast<unsigned>(std::stoul(args[1])),
                static_cast<unsigned>(std::stoul(args[2]))};
  }
  const auto r =
      analysis::run_governor_study(study().workload(args[0]), opts);
  TextTable t({"util", "race [W]", "pace [W]", "saving"});
  for (const auto& pt : r.points)
    t.add_row({fmt(pt.utilization * 100, 0) + "%",
               fmt(pt.race_power.value(), 1), fmt(pt.pace_power.value(), 1),
               fmt(pt.saving_percent, 1) + "%"});
  std::cout << t;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "help" || cmd == "--help" || cmd == "-h") return usage();
    if (cmd == "report") return cmd_report(args);
    if (cmd == "table") return cmd_table(args);
    if (cmd == "metrics") return cmd_metrics(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "response") return cmd_response(args);
    if (cmd == "sensitivity") return cmd_sensitivity(args);
    if (cmd == "governor") return cmd_governor(args);
    if (cmd == "autoscale") return cmd_autoscale(args);
    if (cmd == "export") return cmd_export(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
