# Builds tools/hcep with observability compiled out (the obs-off preset's
# configuration) and runs its telemetry selftest, proving the analysis
# pipeline still works — structurally — when every instrumentation site
# is compiled away. Invoked by ctest as:
#   cmake -DSOURCE_DIR=... -DBINARY_DIR=... -P obs_off_check.cmake
foreach(var SOURCE_DIR BINARY_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "obs_off_check: ${var} not set")
  endif()
endforeach()

set(build_dir "${BINARY_DIR}/obs-off-check")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${build_dir}"
          -DHCEP_OBS=OFF -DHCEP_BUILD_TESTS=OFF -DHCEP_BUILD_BENCH=OFF
          -DCMAKE_BUILD_TYPE=Release
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_off_check: configure failed")
endif()

include(ProcessorCount)
ProcessorCount(ncpu)
if(ncpu EQUAL 0)
  set(ncpu 2)
endif()
execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${build_dir}" --target hcep
          --parallel ${ncpu}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_off_check: build failed")
endif()

execute_process(
  COMMAND "${build_dir}/tools/hcep" selftest profile
  WORKING_DIRECTORY "${build_dir}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_off_check: selftest failed")
endif()
message(STATUS "obs_off_check: ok")
