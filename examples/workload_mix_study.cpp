// Workload mix study: which application domains benefit from inter-node
// heterogeneity, and which should stay homogeneous?
//
//   $ ./workload_mix_study
//
// For every program, compares three iso-budget clusters (all-wimpy,
// all-brawny, mixed) on job energy at a fixed relative deadline, and
// relates the outcome to the PPR rule of Section III-E: heterogeneity
// pays off exactly when the wimpy node's PPR beats the brawny node's.
#include <iostream>

#include "hcep/hcep.hpp"

int main() {
  using namespace hcep;

  const core::PaperStudy study;
  const auto all_a9 = model::make_a9_k10_cluster(128, 0);
  const auto mixed = model::make_a9_k10_cluster(64, 8);
  const auto all_k10 = model::make_a9_k10_cluster(0, 16);

  TextTable table({"Program", "wimpy PPR > brawny?", "E 128A9 [J]",
                   "E 64A9:8K10 [J]", "E 16K10 [J]", "fastest",
                   "min energy"});
  for (const auto& w : study.workloads()) {
    const auto a9 = analysis::analyze_single_node(w, hw::cortex_a9());
    const auto k10 = analysis::analyze_single_node(w, hw::opteron_k10());

    struct Entry {
      const char* name;
      Seconds time{};
      Joules energy{};
    };
    Entry entries[3] = {{"128A9"}, {"64A9:8K10"}, {"16K10"}};
    const model::ClusterSpec* clusters[3] = {&all_a9, &mixed, &all_k10};
    for (int i = 0; i < 3; ++i) {
      const model::TimeEnergyModel m(*clusters[i], w);
      entries[i].time = m.job_time();
      entries[i].energy = m.job_energy(w.units_per_job).e_p;
    }

    const Entry* fastest = &entries[0];
    const Entry* cheapest = &entries[0];
    for (const Entry& e : entries) {
      if (e.time < fastest->time) fastest = &e;
      if (e.energy < cheapest->energy) cheapest = &e;
    }

    table.add_row({w.name, a9.ppr_peak > k10.ppr_peak ? "yes" : "no",
                   fmt(entries[0].energy.value(), 2),
                   fmt(entries[1].energy.value(), 2),
                   fmt(entries[2].energy.value(), 2), fastest->name,
                   cheapest->name});
  }
  std::cout << table
            << "\nreading: programs where the wimpy PPR wins (EP, memcached,\n"
               "blackscholes, Julius) minimize energy on A9-heavy clusters;\n"
               "x264 and RSA-2048 want the brawny nodes\n";
  return 0;
}
