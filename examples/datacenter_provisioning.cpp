// Datacenter provisioning: given a rack power budget and a per-job
// response-time SLA, pick the cluster mix that serves a workload with the
// least energy per job — the decision the paper's analysis supports.
//
//   $ ./datacenter_provisioning [program] [budget_watts] [sla_p95_ms]
//
// For each mix within the budget the example finds the min-energy
// operating point whose M/D/1 95th-percentile response at the target
// utilization stays within the SLA, then ranks the feasible mixes.
#include <cstdlib>
#include <iostream>
#include <optional>

#include "hcep/hcep.hpp"

int main(int argc, char** argv) {
  using namespace hcep;
  using namespace hcep::literals;

  const std::string program = argc > 1 ? argv[1] : "EP";
  const Watts budget{argc > 2 ? std::atof(argv[2]) : 1000.0};
  const Seconds sla{(argc > 3 ? std::atof(argv[3]) : 120.0) * 1e-3};
  constexpr double kTargetUtilization = 0.6;

  std::cout << "provisioning for " << program << " under " << budget
            << " with p95 SLA " << sla << " at "
            << kTargetUtilization * 100 << " % utilization\n\n";

  const workload::Workload w = workload::make_workload(program);
  const auto mixes = config::budget_mixes(budget, 2);

  struct Candidate {
    std::string label;
    Seconds service{};
    Seconds p95{};
    Joules energy{};
    Watts idle{};
  };
  std::optional<Candidate> best;

  TextTable table({"mix", "T_P [ms]", "p95 [ms]", "E_P [J]", "idle [W]",
                   "meets SLA"});
  for (const auto& mix : mixes) {
    const model::TimeEnergyModel m(mix, w);
    const Seconds service = m.job_time();
    const Joules energy = m.job_energy(w.units_per_job).e_p;

    // SLA check via the dispatcher's M/D/1 queue.
    const auto q = queueing::MD1::from_utilization(service,
                                                   kTargetUtilization);
    const Seconds p95 = q.response_percentile(95.0);
    const bool ok = p95 <= sla;

    table.add_row({mix.label(), fmt(service.value() * 1e3, 2),
                   fmt(p95.value() * 1e3, 2), fmt(energy.value(), 2),
                   fmt(m.idle_power().value(), 1), ok ? "yes" : "no"});
    if (ok && (!best || energy < best->energy)) {
      best = Candidate{mix.label(), service, p95, energy, m.idle_power()};
    }
  }
  std::cout << table << "\n";

  if (best) {
    std::cout << "recommended mix: " << best->label << " — "
              << fmt(best->energy.value(), 2) << " J/job, p95 "
              << fmt(best->p95.value() * 1e3, 2) << " ms, idle floor "
              << fmt(best->idle.value(), 1) << " W\n";
  } else {
    std::cout << "no mix within " << budget << " meets the SLA; relax the "
              << "deadline or raise the budget\n";
    return 1;
  }
  return 0;
}
