// Quickstart: model one workload on one heterogeneous cluster.
//
//   $ ./quickstart
//
// Walks the library's core loop in ~40 lines: build a calibrated workload
// profile (the kernels really run), describe a cluster, and ask the
// time-energy model for job time, job energy and the proportionality
// metrics.
#include <iostream>

#include "hcep/hcep.hpp"

int main() {
  using namespace hcep;

  // 1. A calibrated workload profile: characterizes the blackscholes
  //    kernel on the A9 and K10 node models and pins it to the paper's
  //    published PPR/IPR seeds.
  const workload::Workload w = workload::make_workload("blackscholes");
  std::cout << "workload: " << w.name << " (" << w.work_unit << "), "
            << w.units_per_job << " units per job\n";

  // 2. A cluster: 8 wimpy A9 nodes + 2 brawny K10 nodes, full cores, max
  //    frequency, switch overhead accounted.
  const model::ClusterSpec cluster = model::make_a9_k10_cluster(8, 2);
  std::cout << "cluster:  " << cluster.label() << " ("
            << cluster.total_nodes() << " nodes, nameplate "
            << cluster.nameplate_power() << ")\n";

  // 3. The Table 2 time-energy model.
  const model::TimeEnergyModel m(cluster, w);
  std::cout << "job time T_P:    " << m.job_time() << "\n"
            << "job energy E_P:  " << m.job_energy(w.units_per_job).e_p
            << "\n"
            << "idle power:      " << m.idle_power() << "\n"
            << "busy power:      " << m.busy_power() << "\n"
            << "peak throughput: " << m.peak_throughput() << " "
            << w.work_unit << "/s\n";

  // 4. Energy-proportionality metrics over the power-vs-utilization curve.
  const auto report = metrics::analyze(m.power_curve());
  std::cout << "DPR " << report.dpr << "  IPR " << report.ipr << "  EPM "
            << report.epm << "\n";

  // 5. The queueing view: 95th-percentile response time at 70 % load.
  const auto q = queueing::MD1::from_utilization(m.job_time(), 0.7);
  std::cout << "p95 response @70% utilization: "
            << q.response_percentile(95.0) << "\n";
  return 0;
}
