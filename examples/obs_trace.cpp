// Observability walkthrough: trace a simulated cluster run and export
// it for chrome://tracing.
//
//   $ ./obs_trace [out_dir]
//
// Installs an obs::Observer around a cluster simulation, then writes
//   <out_dir>/cluster_trace.json   Chrome trace_event JSON — open it in
//                                  chrome://tracing or ui.perfetto.dev to
//                                  see job spans, arrival instants and the
//                                  cluster_W power counter track
//   <out_dir>/cluster_trace.jsonl  the same events, one object per line
//   <out_dir>/cluster_power.csv    the exact power trace (t_s,power_w)
//   <out_dir>/metrics.json         merged counter/histogram snapshot
// and prints the headline counters.
#include <fstream>
#include <iostream>
#include <string>

#include "hcep/cluster/simulator.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/obs/power_probe.hpp"
#include "hcep/workload/catalog.hpp"

int main(int argc, char** argv) {
  using namespace hcep;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const workload::Workload w = workload::make_workload("EP");
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2), w);

  // Everything constructed inside the scope reports to this observer:
  // the DES kernel counts its events, the cluster simulator emits job
  // spans and mirrors its power trace onto the "cluster_W" track.
  obs::Observer observer;
  cluster::SimResult result;
  {
    obs::ScopedObserver scope(observer);
    cluster::SimOptions opts;
    opts.utilization = 0.6;
    opts.min_jobs = 200;
    result = cluster::simulate(m, opts);
  }

  const auto write = [&](const std::string& name, const std::string& body) {
    const std::string path = out_dir + "/" + name;
    std::ofstream f(path);
    f << body;
    std::cout << "wrote " << path << "\n";
  };
  write("cluster_trace.json", observer.tracer.chrome_trace_json());
  write("cluster_trace.jsonl", observer.tracer.jsonl());
  write("cluster_power.csv",
        obs::counter_track(observer.tracer, "cluster_W").empty()
            ? std::string("t_s,power_w\n")
            : [&] {
                std::string csv = "t_s,power_w\n";
                for (const auto& s :
                     obs::counter_track(observer.tracer, "cluster_W")
                         .steps()) {
                  csv += std::to_string(s.start.value()) + "," +
                         std::to_string(s.level.value()) + "\n";
                }
                return csv;
              }());
  write("metrics.json", observer.metrics.snapshot().to_json().dump_pretty());

  const obs::MetricsSnapshot snap = observer.metrics.snapshot();
  std::cout << "jobs completed:  " << result.jobs_completed << "\n"
            << "des events:      " << snap.counter("des.events") << "\n"
            << "  arrivals:      " << snap.counter("sim.arrival_events")
            << "\n"
            << "  completions:   " << snap.counter("sim.completion_events")
            << "\n"
            << "  power steps:   " << snap.counter("sim.power_events")
            << "\n"
            << "trace events:    " << observer.tracer.recorded() << " ("
            << observer.tracer.dropped() << " dropped)\n"
            << "exact energy:    " << result.energy_exact << "\n"
            << "measured energy: " << result.energy_measured << "\n";
  return 0;
}
