// Intra-node heterogeneity (big.LITTLE) expressed with the same model.
//
//   $ ./big_little
//
// The paper targets INTER-node heterogeneity and cites ARM big.LITTLE
// power management (Muthukaruppan et al., DAC'13) as the intra-chip
// sibling. A big.LITTLE socket is, to this model, a two-group cluster in
// one chassis: a "big" group (A15-class cores) and a "LITTLE" group
// (A9-class cores) sharing one idle floor. This example compares three
// sockets — all-big, all-LITTLE, and big.LITTLE — on the paper's metrics,
// showing the methodology transfers across the heterogeneity boundary.
#include <iostream>

#include "hcep/hcep.hpp"

namespace {

using namespace hcep;

/// A socket as a cluster: n_big A15-class + n_little A9-class "nodes"
/// (cores-as-nodes abstraction; the shared idle floor is attributed to
/// the big group's spec).
model::ClusterSpec make_socket(unsigned n_big, unsigned n_little) {
  model::ClusterSpec socket;
  if (n_big > 0) {
    socket.groups.push_back(
        model::NodeGroup{hw::cortex_a15(), n_big, 0, Hertz{}});
  }
  if (n_little > 0) {
    socket.groups.push_back(
        model::NodeGroup{hw::cortex_a9(), n_little, 0, Hertz{}});
  }
  socket.validate();
  return socket;
}

}  // namespace

int main() {
  workload::CatalogOptions opts;
  opts.nodes = {hw::cortex_a9(), hw::cortex_a15(), hw::opteron_k10()};
  const auto workloads = workload::paper_workloads(opts);

  std::cout << "big.LITTLE study: 2 big (A15-class) / 4 LITTLE (A9-class)\n\n";
  TextTable table({"Program", "socket", "thr [u/s]", "busy [W]",
                   "PPR@peak", "IPR", "EPM"});
  for (const auto& w : workloads) {
    struct Case {
      const char* name;
      model::ClusterSpec socket;
    };
    const Case cases[] = {
        {"2 big", make_socket(2, 0)},
        {"4 LITTLE", make_socket(0, 4)},
        {"big.LITTLE", make_socket(2, 4)},
    };
    for (const auto& c : cases) {
      const model::TimeEnergyModel m(c.socket, w);
      const auto curve = m.power_curve();
      const auto r = metrics::analyze(curve);
      const double ppr = metrics::ppr(curve, m.peak_throughput(), 1.0);
      table.add_row({w.name, c.name, fmt_grouped(m.peak_throughput()),
                     fmt(m.busy_power().value(), 1),
                     ppr >= 100 ? fmt_grouped(ppr) : fmt(ppr, 2),
                     fmt(r.ipr, 2), fmt(r.epm, 2)});
    }
  }
  std::cout << table
            << "\nreading: the same inter-node machinery prices intra-node\n"
               "mixes; the big.LITTLE socket interpolates its parents on\n"
               "every metric, exactly as the cluster mixes do in Table 8\n";
  return 0;
}
