// Exports gnuplot-ready data files for every figure of the paper.
//
//   $ ./export_figures [output-dir]
//   $ gnuplot -e "plot for [i=0:5] 'fig7_cluster_ep.dat' index i w lp"
#include <filesystem>
#include <iostream>

#include "hcep/hcep.hpp"

namespace {

using namespace hcep;

std::vector<double> util_grid() {
  return {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "figdata";
  std::filesystem::create_directories(dir);

  const core::PaperStudy study;
  unsigned files = 0;
  const auto save = [&](const SeriesWriter& w, const std::string& name) {
    w.save((dir / name).string());
    ++files;
  };

  // Figures 5/6: single-node proportionality and PPR per program.
  for (const auto* program : {"EP", "x264", "blackscholes"}) {
    const auto& w = study.workload(program);
    const auto a9 = analysis::analyze_single_node(w, hw::cortex_a9());
    const auto k10 = analysis::analyze_single_node(w, hw::opteron_k10());

    SeriesWriter prop;
    prop.begin_series("ideal");
    for (double u : util_grid()) prop.point(u, u);
    for (const auto* a : {&k10, &a9}) {
      prop.begin_series(a->node);
      for (double u : util_grid())
        prop.point(u, metrics::percent_of_peak(a->curve, u));
    }
    save(prop, std::string("fig5_") + program + ".dat");

    SeriesWriter pprw;
    for (const auto* a : {&k10, &a9}) {
      pprw.begin_series(a->node);
      for (double u : util_grid())
        pprw.point(u, metrics::ppr(a->curve, a->peak_throughput, u / 100.0));
    }
    save(pprw, std::string("fig6_") + program + ".dat");
  }

  // Figures 7/8: budget mixes for EP.
  {
    const auto mixes = analysis::analyze_mixes(config::paper_budget_mixes(),
                                               study.workload("EP"));
    SeriesWriter prop;
    prop.begin_series("ideal");
    for (double u : util_grid()) prop.point(u, u);
    for (const auto& m : mixes) {
      prop.begin_series(m.label);
      for (double u : util_grid())
        prop.point(u, metrics::percent_of_peak(m.curve, u));
    }
    save(prop, "fig7_cluster_ep.dat");

    SeriesWriter pprw;
    for (const auto& m : mixes) {
      pprw.begin_series(m.label);
      for (double u : util_grid())
        pprw.point(u,
                   metrics::ppr(m.curve, m.peak_throughput, u / 100.0) / 1e6);
    }
    save(pprw, "fig8_cluster_ep.dat");
  }

  // Figures 9-12: Pareto mixes + response times for EP and x264.
  for (const auto* program : {"EP", "x264"}) {
    const auto pareto = study.pareto_study(program, false);
    SeriesWriter prop;
    prop.begin_series("ideal");
    for (double u : util_grid()) prop.point(u, u);
    for (const auto& m : pareto.mixes) {
      prop.begin_series(m.mix.label());
      for (double u : util_grid()) {
        prop.point(u, metrics::percent_of_peak(m.curve, u,
                                               pareto.reference_peak));
      }
    }
    save(prop, std::string(program == std::string("EP") ? "fig9" : "fig10") +
                   "_pareto.dat");

    const auto response = study.response_study(program);
    SeriesWriter resp;
    for (const auto& m : response.mixes) {
      resp.begin_series(m.mix.label());
      for (const auto& pt : m.points)
        resp.point(pt.utilization_percent, pt.p95_analytic.value());
    }
    save(resp, std::string(program == std::string("EP") ? "fig11" : "fig12") +
                   "_response.dat");
  }

  std::cout << "wrote " << files << " data files to " << dir << "/\n"
            << "plot e.g.: gnuplot -e \"set logscale y; plot for [i=0:4] '"
            << (dir / "fig11_response.dat").string()
            << "' index i using 1:2 with linespoints\"\n";
  return 0;
}
