// Full reproduction report: runs every study and writes REPORT.md.
//
//   $ ./paper_report [output-path]
#include <fstream>
#include <iostream>

#include "hcep/analysis/report.hpp"
#include "hcep/core/paper_study.hpp"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "REPORT.md";

  std::cout << "running the full reproduction (characterization, "
               "calibration, all studies)...\n";
  const hcep::core::PaperStudy study;
  const std::string report = hcep::analysis::render_report(study);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  out << report;
  std::cout << "wrote " << report.size() << " bytes to " << path << "\n";
  return 0;
}
