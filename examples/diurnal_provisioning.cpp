// Diurnal provisioning: which 1 kW mix serves a day of real-looking load
// with the least energy?
//
//   $ ./diurnal_provisioning [program] [low_util] [high_util]
//
// Replays a 24 h day/night sine (compressed to a simulated day) through
// every budget mix and reports energy-per-day, average power and the
// worst bucket p95 — the numbers a capacity planner actually compares.
#include <cstdlib>
#include <iostream>

#include "hcep/hcep.hpp"

int main(int argc, char** argv) {
  using namespace hcep;
  using namespace hcep::literals;

  const std::string program = argc > 1 ? argv[1] : "EP";
  const double low = argc > 2 ? std::atof(argv[2]) : 0.15;
  const double high = argc > 3 ? std::atof(argv[3]) : 0.85;

  const workload::Workload w = workload::make_workload(program);
  // A "day" compressed to 10 minutes of simulated time keeps the replay
  // fast while spanning thousands of jobs; energies scale linearly.
  const auto day = cluster::LoadTrace::diurnal(600_s, low, high);

  std::cout << "replaying a diurnal day (" << low * 100 << "%-" << high * 100
            << "% utilization) of " << program << " over the 1 kW mixes\n\n";

  TextTable table({"mix", "energy/day [kJ]", "avg power [W]",
                   "worst bucket p95 [ms]", "jobs"});
  std::string best_label;
  double best_energy = 1e300;
  for (const auto& mix : config::paper_budget_mixes()) {
    const model::TimeEnergyModel m(mix, w);
    cluster::TraceReplayOptions opts;
    opts.bucket = 25_s;
    const auto r = cluster::replay_trace(m, day, opts);
    table.add_row({mix.label(), fmt(r.total_energy.value() / 1e3, 1),
                   fmt(r.average_power.value(), 1),
                   fmt(r.worst_p95.value() * 1e3, 1),
                   std::to_string(r.jobs_completed)});
    if (r.total_energy.value() < best_energy) {
      best_energy = r.total_energy.value();
      best_label = mix.label();
    }
  }
  std::cout << table << "\nleast energy per day: " << best_label << " ("
            << fmt(best_energy / 1e3, 1) << " kJ)\n"
            << "note: mixes see the same utilization profile; absolute "
               "work differs with capacity.\nFor iso-work comparisons "
               "scale the utilization by capacity ratios.\n";
  return 0;
}
