// What-if analysis with node types beyond the paper's testbed.
//
//   $ ./whatif_newnode
//
// The paper validates on Cortex-A9 and Opteron K10; the methodology is
// node-agnostic. This example characterizes the six kernels on the
// catalog's extension nodes (Cortex-A15, Xeon-class) with NO paper
// calibration — pure synthetic-substrate measurements — and repeats the
// single-node proportionality/PPR comparison, then models a
// three-way-heterogeneous cluster.
#include <iostream>

#include "hcep/hcep.hpp"

int main() {
  using namespace hcep;

  workload::CatalogOptions opts;
  opts.nodes = {hw::cortex_a9(), hw::cortex_a15(), hw::opteron_k10(),
                hw::xeon_e5()};
  opts.calibrate = true;  // calibrates A9/K10 only; extensions stay raw

  std::cout << "characterizing all six kernels on four node types...\n\n";
  const auto workloads = workload::paper_workloads(opts);

  TextTable table({"Program", "Node", "PPR [(u/s)/W]", "IPR", "EPM"});
  for (const auto& w : workloads) {
    for (const auto* node_name : {"A9", "A15", "K10", "XeonE5"}) {
      const auto a =
          analysis::analyze_single_node(w, hw::by_name(node_name));
      table.add_row({w.name, node_name,
                     a.ppr_peak >= 100 ? fmt_grouped(a.ppr_peak)
                                       : fmt(a.ppr_peak, 2),
                     fmt(a.report.ipr, 2), fmt(a.report.epm, 2)});
    }
  }
  std::cout << table << "\n";

  // A three-type heterogeneous cluster under a 1 kW nameplate budget:
  // 40 A9 + 10 A15 + 8 K10 = 200 + 120 + 480 W + switches.
  model::ClusterSpec cluster;
  cluster.groups.push_back(model::NodeGroup{hw::cortex_a9(), 40, 0, Hertz{}});
  cluster.groups.push_back(
      model::NodeGroup{hw::cortex_a15(), 10, 0, Hertz{}});
  cluster.groups.push_back(
      model::NodeGroup{hw::opteron_k10(), 8, 0, Hertz{}});
  cluster.overhead_power = hw::switch_power_for(50);
  cluster.validate();

  std::cout << "three-type cluster " << cluster.label() << " (nameplate "
            << cluster.nameplate_power() << "):\n";
  TextTable mix_table({"Program", "T_P [ms]", "E_P [J]", "IPR", "EPM"});
  for (const auto& w : workloads) {
    const model::TimeEnergyModel m(cluster, w);
    const auto r = metrics::analyze(m.power_curve());
    mix_table.add_row({w.name, fmt(m.job_time().value() * 1e3, 2),
                       fmt(m.job_energy(w.units_per_job).e_p.value(), 2),
                       fmt(r.ipr, 2), fmt(r.epm, 2)});
  }
  std::cout << mix_table
            << "\nnote: extension-node numbers come from the raw cost model\n"
               "(no published seeds exist to calibrate against)\n";
  return 0;
}
