// Sweet-spot exploration: the energy-deadline Pareto frontier over the
// full heterogeneous configuration space (nodes x cores x frequency per
// type), the "sweet region" of the paper's prior work [31].
//
//   $ ./sweetspot_explorer [program] [max_a9] [max_k10]
//
// Evaluates every configuration in parallel, extracts the frontier, and
// shows the energy saved by relaxing the execution-time deadline.
#include <cstdlib>
#include <iostream>

#include "hcep/hcep.hpp"

int main(int argc, char** argv) {
  using namespace hcep;

  const std::string program = argc > 1 ? argv[1] : "EP";
  const unsigned max_a9 = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 16;
  const unsigned max_k10 =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 6;

  const workload::Workload w = workload::make_workload(program);
  const config::ConfigSpace space = config::make_a9_k10_space(max_a9, max_k10);
  std::cout << "exploring " << space.size() << " configurations (<= "
            << max_a9 << " A9, <= " << max_k10 << " K10) for " << program
            << "...\n";

  const auto evals = config::evaluate_space(space, w);
  const auto frontier = config::pareto_front(evals);
  std::cout << "Pareto frontier: " << frontier.size()
            << " non-dominated configurations\n\n";

  TextTable table({"config (n,c,f per type)", "T_P [ms]", "E_P [J]",
                   "idle [W]", "busy [W]"});
  for (const auto& e : frontier) {
    std::string desc;
    for (const auto& g : e.config.groups) {
      if (!desc.empty()) desc += " + ";
      desc += std::to_string(g.count) + g.spec.name + "/" +
              std::to_string(g.cores()) + "c@" +
              fmt(g.freq().value() / 1e9, 1) + "GHz";
    }
    table.add_row({desc, fmt(e.time.value() * 1e3, 2),
                   fmt(e.energy.value(), 2), fmt(e.idle_power.value(), 1),
                   fmt(e.busy_power.value(), 1)});
  }
  std::cout << table << "\n";

  // Deadline relaxation sweep: how much energy does slack buy?
  const auto fastest_eval = config::fastest(evals);
  std::cout << "energy vs deadline (relative to the fastest configuration, "
            << fmt(fastest_eval->time.value() * 1e3, 2) << " ms):\n";
  TextTable sweep({"deadline", "picked config", "E_P [J]", "saving"});
  const Joules e_fastest = fastest_eval->energy;
  for (double slack : {1.0, 1.2, 1.5, 2.0, 3.0, 5.0}) {
    const auto pick =
        config::min_energy_within_deadline(evals, fastest_eval->time * slack);
    sweep.add_row(
        {fmt(slack, 1) + "x fastest", pick->config.label(),
         fmt(pick->energy.value(), 2),
         fmt((1.0 - pick->energy / e_fastest) * 100.0, 1) + "%"});
  }
  std::cout << sweep;
  return 0;
}
