#include "hcep/cluster/scaleout_sim.hpp"

#include <algorithm>
#include <vector>

#include "hcep/cluster/phase_trace.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/util/stats.hpp"

namespace hcep::cluster {

ScaleoutResult simulate_scaleout(const model::TimeEnergyModel& m,
                                 const ScaleoutOptions& options) {
  require(options.utilization >= 0.0 && options.utilization < 1.0,
          "simulate_scaleout: utilization must lie in [0, 1)");
  require(options.min_jobs > 0, "simulate_scaleout: min_jobs must be > 0");

  const auto& workload = m.workload();
  const model::TimeResult split = m.execution_time(workload.units_per_job);
  const Seconds service = split.t_p;
  const auto& groups = m.cluster().groups;

  // Pre-render each group's per-node phase trace for one job (relative to
  // the job's start); jobs are identical, so one render suffices.
  struct GroupPlan {
    std::vector<power::PowerSample> steps;  ///< relative phase steps
    Seconds busy{};                         ///< share duration
    Watts idle{};
  };
  std::vector<GroupPlan> plans;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const auto& g = groups[i];
    GroupPlan plan;
    plan.idle = g.spec.power.idle;
    if (g.count > 0 && split.groups[i].units_per_node > 0.0) {
      const power::PowerTrace trace = node_phase_trace(
          workload.demand_for(g.spec.name), g.spec, g.cores(), g.freq(),
          split.groups[i].units_per_node,
          workload.power_scale_for(g.spec.name));
      plan.steps = trace.steps();
      plan.busy = split.groups[i].per_node.total;
    }
    plans.push_back(std::move(plan));
  }

  const double u = options.utilization;
  const double lambda = u > 0.0 ? u / service.value() : 0.0;
  const Seconds window =
      u > 0.0
          ? service * (static_cast<double>(options.min_jobs) / u)
          : service * static_cast<double>(options.min_jobs);

  // Sequentially generate the M/D/1 sample path (service deterministic),
  // appending each job's phase steps to every group's trace.
  Rng rng(options.seed);
  std::vector<power::PowerTrace> traces(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i)
    traces[i].step(Seconds{0.0}, plans[i].idle);

  RunningStats response_stats;
  std::vector<double> responses;
  double clock = 0.0;
  double server_free = 0.0;
  ScaleoutResult out;
  double busy_time = 0.0;

  if (lambda > 0.0) {
    for (;;) {
      clock += rng.exponential(lambda);
      if (clock >= window.value()) break;
      ++out.jobs_arrived;
      const double start = std::max(clock, server_free);
      server_free = start + service.value();
      busy_time += service.value();
      ++out.jobs_completed;
      const double response = server_free - clock;
      response_stats.add(response);
      responses.push_back(response);

      for (std::size_t i = 0; i < groups.size(); ++i) {
        for (const auto& s : plans[i].steps)
          traces[i].step(Seconds{start} + s.start, s.level);
        // The phase renderer ends at the share's busy time; nodes whose
        // share is shorter than T_P idle until the job completes (already
        // the idle level from the renderer's final step).
      }
    }
  }

  out.window = window;
  out.measured_utilization = std::min(1.0, busy_time / window.value());
  if (out.jobs_completed > 0) {
    out.mean_response = Seconds{response_stats.mean()};
    out.p95_response = Seconds{percentile_inplace(responses, 95.0)};
  }

  power::PowerMeter meter({}, options.seed ^ 0xfadeULL);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    NodeChannel ch;
    ch.node_name = groups[i].spec.name;
    ch.count = groups[i].count;
    ch.energy_per_node = traces[i].energy(window);
    ch.average_power_per_node = ch.energy_per_node / window;
    ch.metered_energy_per_node = meter.measure_energy(traces[i], window);
    out.cluster_energy +=
        ch.energy_per_node * static_cast<double>(ch.count);
    out.channels.push_back(std::move(ch));
  }
  out.average_power = out.cluster_energy / window;
  return out;
}

}  // namespace hcep::cluster
