#include "hcep/cluster/overheads.hpp"

#include "hcep/util/error.hpp"

namespace hcep::cluster {

using namespace hcep::literals;

WorkloadOverheads testbed_overheads(const std::string& program) {
  // time_factor reflects how much the analytic model under-predicts each
  // program's execution time on the simulated testbed; power_factor the
  // busy-power deviation. Magnitudes sized to land the Table 4 error
  // ranges (time: EP 3 %, memcached 10 %, x264 11 %, blackscholes 4 %,
  // Julius 13 %, RSA 2 %; energy: 10/8/10/7/1/8 %).
  if (program == "EP")
    return {.time_factor = 1.030, .power_factor = 1.068, .dispatch = 120.0_us,
            .service_noise_cv = 0.015};
  if (program == "memcached")
    return {.time_factor = 1.095, .power_factor = 0.982, .dispatch = 180.0_us,
            .service_noise_cv = 0.040};
  if (program == "x264")
    return {.time_factor = 1.110, .power_factor = 0.990, .dispatch = 150.0_us,
            .service_noise_cv = 0.035};
  if (program == "blackscholes")
    return {.time_factor = 1.040, .power_factor = 1.028, .dispatch = 120.0_us,
            .service_noise_cv = 0.020};
  if (program == "Julius")
    return {.time_factor = 1.130, .power_factor = 0.885, .dispatch = 160.0_us,
            .service_noise_cv = 0.030};
  if (program == "RSA-2048")
    return {.time_factor = 1.020, .power_factor = 1.060, .dispatch = 100.0_us,
            .service_noise_cv = 0.015};
  throw PreconditionError("testbed_overheads: unknown program '" + program +
                          "'");
}

WorkloadOverheads ideal_overheads() {
  return {.time_factor = 1.0, .power_factor = 1.0, .dispatch = Seconds{0.0},
          .service_noise_cv = 0.0};
}

}  // namespace hcep::cluster
