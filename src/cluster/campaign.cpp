#include "hcep/cluster/campaign.hpp"

#include <algorithm>

#include "hcep/util/error.hpp"

namespace hcep::cluster {

power::PowerCurve CampaignResult::measured_curve() const {
  require(!points.empty(), "CampaignResult: no points");
  PiecewiseLinear curve;
  double last_u = -1.0;
  double last_p = 0.0;
  for (const auto& pt : points) {
    // Use the target utilization as the knot (the measured one jitters);
    // skip duplicates defensively.
    if (pt.target_utilization <= last_u) continue;
    curve.add(pt.target_utilization, pt.average_power.value());
    last_u = pt.target_utilization;
    last_p = pt.average_power.value();
  }
  if (last_u < 1.0) curve.add(1.0, last_p);
  return power::PowerCurve::sampled(std::move(curve));
}

CampaignResult run_campaign(const model::TimeEnergyModel& model,
                            const CampaignOptions& options) {
  std::vector<double> grid = options.utilizations;
  if (grid.empty()) {
    grid = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95};
  }
  require(std::is_sorted(grid.begin(), grid.end()),
          "run_campaign: utilization grid must be sorted");

  CampaignResult out;
  out.points.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SimOptions sim_opts;
    sim_opts.utilization = grid[i];
    sim_opts.min_jobs = options.min_jobs;
    sim_opts.seed = options.seed + i * 7919;
    sim_opts.use_testbed_overheads = options.use_testbed_overheads;
    const SimResult r = simulate(model, sim_opts);

    CampaignPoint pt;
    pt.target_utilization = grid[i];
    pt.measured_utilization = r.measured_utilization;
    pt.average_power = r.average_power;
    pt.throughput =
        r.window.value() > 0.0 ? r.units_completed / r.window.value() : 0.0;
    pt.p95_response = r.p95_response;
    pt.mean_response = r.mean_response;
    out.points.push_back(pt);
  }
  return out;
}

}  // namespace hcep::cluster
