#include "hcep/cluster/campaign.hpp"

#include <algorithm>

#include "hcep/util/error.hpp"

namespace hcep::cluster {

power::PowerCurve CampaignResult::measured_curve() const {
  require(!points.empty(), "CampaignResult: no points");
  // Use the target utilization as the knot (the measured one jitters).
  // A repeated target (re-measured grid point) replaces the previous
  // knot's power instead of being dropped, so the final measurement
  // survives even when the grid ends on a duplicate.
  std::vector<double> us;
  std::vector<double> ps;
  for (const auto& pt : points) {
    if (!us.empty() && pt.target_utilization <= us.back()) {
      ps.back() = pt.average_power.value();
      continue;
    }
    us.push_back(pt.target_utilization);
    ps.push_back(pt.average_power.value());
  }
  if (us.back() < 1.0) {
    us.push_back(1.0);
    ps.push_back(ps.back());
  }
  return power::PowerCurve::sampled(
      PiecewiseLinear(std::move(us), std::move(ps)));
}

CampaignResult run_campaign(const model::TimeEnergyModel& model,
                            const CampaignOptions& options) {
  std::vector<double> grid = options.utilizations;
  if (grid.empty()) {
    grid = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95};
  }
  require(std::is_sorted(grid.begin(), grid.end()),
          "run_campaign: utilization grid must be sorted");

  CampaignResult out;
  out.points.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SimOptions sim_opts;
    sim_opts.utilization = grid[i];
    sim_opts.min_jobs = options.min_jobs;
    sim_opts.seed = options.seed + i * 7919;
    sim_opts.use_testbed_overheads = options.use_testbed_overheads;
    const SimResult r = simulate(model, sim_opts);

    CampaignPoint pt;
    pt.target_utilization = grid[i];
    pt.measured_utilization = r.measured_utilization;
    pt.average_power = r.average_power;
    pt.throughput =
        r.window.value() > 0.0 ? r.units_completed / r.window.value() : 0.0;
    pt.p95_response = r.p95_response;
    pt.mean_response = r.mean_response;
    out.points.push_back(pt);
  }
  return out;
}

}  // namespace hcep::cluster
