#include "hcep/cluster/simulator.hpp"

#include <algorithm>
#include <deque>

#include "hcep/des/simulator.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/obs/power_probe.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/util/stats.hpp"

namespace hcep::cluster {

namespace {

/// Static per-run description of the cluster/workload pair.
struct RunPlan {
  Seconds model_job_time{};
  Seconds expected_service{};      ///< with testbed overheads applied
  Watts idle_power{};              ///< cluster idle floor
  std::vector<Watts> group_dynamic;  ///< dyn power of each group (all nodes)
  std::vector<double> group_busy_fraction;  ///< t_i / T_P per group
  std::vector<double> group_units;          ///< units per group per job
  WorkloadOverheads ovh;
};

RunPlan make_plan(const model::TimeEnergyModel& m, bool use_overheads) {
  RunPlan plan;
  plan.ovh = use_overheads ? testbed_overheads(m.workload().name)
                           : ideal_overheads();

  const model::TimeResult time = m.execution_time(m.workload().units_per_job);
  plan.model_job_time = time.t_p;
  plan.expected_service =
      time.t_p * plan.ovh.time_factor + plan.ovh.dispatch;
  plan.idle_power = m.idle_power();

  const auto& groups = m.cluster().groups;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const auto& g = groups[i];
    Watts dyn{0.0};
    if (g.count > 0) {
      const Watts busy = workload::busy_power(
          m.workload().demand_for(g.spec.name), g.spec, g.cores(), g.freq(),
          m.workload().power_scale_for(g.spec.name));
      dyn = (busy - g.spec.power.idle) * static_cast<double>(g.count) *
            plan.ovh.power_factor;
    }
    plan.group_dynamic.push_back(dyn);
    plan.group_busy_fraction.push_back(
        time.t_p.value() > 0.0
            ? time.groups[i].per_node.total.value() / time.t_p.value()
            : 0.0);
    plan.group_units.push_back(time.groups[i].units_per_node *
                               static_cast<double>(g.count));
  }
  return plan;
}

/// Mutable run state shared by all event callbacks. Each callback
/// captures one SimCtx* plus a few value parameters, so every event fits
/// des::Callback's inline buffer (static_asserted at the schedule sites)
/// and the kernel hot path never allocates.
struct SimCtx {
  const model::TimeEnergyModel& m;
  const SimOptions& options;
  const RunPlan& plan;
  double lambda = 0.0;
  Seconds window{};
  Rng rng;
  obs::Observer* o = nullptr;
#if HCEP_OBS
  obs::MetricId jobs_arrived_m = 0, jobs_completed_m = 0;
  obs::MetricId arrival_ev_m = 0, completion_ev_m = 0, power_ev_m = 0;
  obs::StringId cat_s = 0, job_s = 0, wait_s = 0, arrival_s = 0, batch_s = 0;
  obs::StringId node_cat_s = 0, node_id_s = 0;
  std::vector<obs::StringId> group_name_s;
#endif
  des::Simulator sim;
  // The exact power timeline goes through the probe: same PowerTrace as
  // before, plus a "cluster_W" counter track on the active tracer.
  obs::PowerProbe probe;
  Watts level{};
  SimResult out;
  std::deque<Seconds> queue;  // arrival times of waiting jobs
  bool server_busy = false;
  RunningStats service_stats;
  RunningStats response_stats;
  P2Quantile p95{0.95};
  Seconds busy_time{};

  SimCtx(const model::TimeEnergyModel& model, const SimOptions& opts,
         const RunPlan& run_plan)
      : m(model),
        options(opts),
        plan(run_plan),
        rng(opts.seed),
#if HCEP_OBS
        o(obs::current()),
#endif
        probe(o, "cluster_W"),
        level(run_plan.idle_power) {
#if HCEP_OBS
    if (o != nullptr) {
      jobs_arrived_m = o->metrics.counter("sim.jobs_arrived");
      jobs_completed_m = o->metrics.counter("sim.jobs_completed");
      arrival_ev_m = o->metrics.counter("sim.arrival_events");
      completion_ev_m = o->metrics.counter("sim.completion_events");
      power_ev_m = o->metrics.counter("sim.power_events");
      cat_s = o->tracer.intern("cluster");
      job_s = o->tracer.intern("job");
      wait_s = o->tracer.intern("wait_s");
      arrival_s = o->tracer.intern("arrival");
      batch_s = o->tracer.intern("batch");
      // Per-node execution spans carry the group's name and the node id
      // the span executed on, so the profiler can attribute time per node.
      node_cat_s = o->tracer.intern("node");
      node_id_s = o->tracer.intern("node_id");
      group_name_s.reserve(m.cluster().groups.size());
      for (const auto& g : m.cluster().groups)
        group_name_s.push_back(o->tracer.intern(g.spec.name));
    }
#endif
    probe.step(Seconds{0.0}, level);
    out.counters.reserve(m.cluster().groups.size());
    for (const auto& g : m.cluster().groups)
      out.counters.push_back(GroupCounters{g.spec.name, 0, 0, 0, 0});
  }

  void adjust(Watts delta) {
    level += delta;
    probe.step(sim.now(), level);
#if HCEP_OBS
    if (o != nullptr) o->metrics.add(power_ev_m);
#endif
  }

  void group_power_on(std::size_t i, Watts dyn) {
    adjust(dyn);
#if HCEP_OBS
    if (o != nullptr) {
      o->tracer.begin(sim.now().value(), node_cat_s, group_name_s[i],
                      node_id_s, static_cast<double>(i));
    }
#endif
  }

  void group_power_off(std::size_t i, Watts dyn) {
#if HCEP_OBS
    if (o != nullptr) {
      o->tracer.end(sim.now().value(), node_cat_s, group_name_s[i]);
    }
#endif
    adjust(-dyn);
  }

  void try_start_service() {
    if (server_busy || queue.empty()) return;
    server_busy = true;
    const Seconds arrival = queue.front();
    queue.pop_front();
#if HCEP_OBS
    if (o != nullptr) {
      o->tracer.begin(sim.now().value(), cat_s, job_s, wait_s,
                      (sim.now() - arrival).value());
    }
#endif

    // Realized service time: model time x systematic factor x jitter.
    double jitter = 1.0;
    if (plan.ovh.service_noise_cv > 0.0) {
      jitter = std::max(0.2, rng.normal(1.0, plan.ovh.service_noise_cv));
    }
    const Seconds exec = plan.model_job_time * (plan.ovh.time_factor * jitter);
    const Seconds service = exec + plan.ovh.dispatch;
    const Seconds start_exec = sim.now() + plan.ovh.dispatch;
    const Seconds done = start_exec + exec;

    // Dispatch phase holds idle power; each group then draws its dynamic
    // power until its share completes.
    for (std::size_t i = 0; i < plan.group_dynamic.size(); ++i) {
      if (plan.group_dynamic[i].value() <= 0.0) continue;
      const Watts dyn = plan.group_dynamic[i];
      const Seconds group_end = start_exec + exec * plan.group_busy_fraction[i];
      // The node-span begin/end piggyback on the power-step callbacks
      // already scheduled here, so tracing adds no DES events (keeping
      // des.events == arrival + completion + power intact).
      auto on = [this, i, dyn] { group_power_on(i, dyn); };
      static_assert(des::Callback::stores_inline<decltype(on)>);
      sim.schedule_at(start_exec, std::move(on));
      auto off = [this, i, dyn] { group_power_off(i, dyn); };
      static_assert(des::Callback::stores_inline<decltype(off)>);
      sim.schedule_at(group_end, std::move(off));
    }

    const Seconds busy_from = sim.now();
    auto cb = [this, arrival, service, busy_from] {
      complete(arrival, service, busy_from);
    };
    static_assert(des::Callback::stores_inline<decltype(cb)>);
    sim.schedule_at(done, std::move(cb));
  }

  void complete(Seconds arrival, Seconds service, Seconds busy_from) {
    server_busy = false;
#if HCEP_OBS
    if (o != nullptr) {
      o->tracer.end(sim.now().value(), cat_s, job_s);
      o->metrics.add(completion_ev_m);
      o->metrics.add(jobs_completed_m);
    }
#endif
    ++out.jobs_completed;
    out.units_completed += m.workload().units_per_job;
    // Clip the busy interval to the observation window so the realized
    // utilization matches the window the energy is integrated over.
    const Seconds clipped_end = std::min(sim.now(), window);
    if (clipped_end > busy_from)
      busy_time += clipped_end - std::min(busy_from, window);
    service_stats.add(service.value());
    const double response = (sim.now() - arrival).value();
    response_stats.add(response);
    p95.add(response);
    out.response_samples.push_back(response);
    const auto& demand_groups = m.cluster().groups;
    for (std::size_t i = 0; i < out.counters.size(); ++i) {
      const auto& d = m.workload().demand_for(demand_groups[i].spec.name);
      out.counters[i].work_cycles += plan.group_units[i] * d.cycles_core;
      out.counters[i].stall_cycles += plan.group_units[i] * d.cycles_mem;
      out.counters[i].io_bytes += plan.group_units[i] * d.io_bytes.value();
      out.counters[i].jobs_served += demand_groups[i].count > 0 ? 1 : 0;
    }
    try_start_service();
  }

  /// Poisson arrival process, stopped at the window edge.
  void schedule_next_arrival() {
    if (lambda <= 0.0) return;
    const Seconds next = sim.now() + Seconds{rng.exponential(lambda)};
    if (next > window) return;
    auto cb = [this] { on_arrival(); };
    static_assert(des::Callback::stores_inline<decltype(cb)>);
    sim.schedule_at(next, std::move(cb));
  }

  void on_arrival() {
#if HCEP_OBS
    if (o != nullptr) {
      o->metrics.add(arrival_ev_m);
      o->metrics.add(jobs_arrived_m, options.batch_size);
      o->tracer.instant(sim.now().value(), cat_s, arrival_s, batch_s,
                        static_cast<double>(options.batch_size));
    }
#endif
    for (unsigned b = 0; b < options.batch_size; ++b) {
      ++out.jobs_arrived;
      queue.push_back(sim.now());
    }
    try_start_service();
    schedule_next_arrival();
  }
};

}  // namespace

SimResult simulate(const model::TimeEnergyModel& m, const SimOptions& options) {
  require(options.utilization >= 0.0 && options.utilization < 1.0,
          "simulate: utilization must lie in [0, 1)");
  require(options.min_jobs > 0, "simulate: min_jobs must be positive");
  require(options.batch_size >= 1, "simulate: batch_size must be >= 1");

  const RunPlan plan = make_plan(m, options.use_testbed_overheads);
  const double u = options.utilization;

  SimCtx ctx(m, options, plan);
  // Batch arrivals: the batch rate carries batch_size jobs each, so it is
  // scaled down to keep the offered utilization at the target.
  ctx.lambda = u > 0.0 ? u / (plan.expected_service.value() *
                              static_cast<double>(options.batch_size))
                       : 0.0;
  ctx.window = options.window;
  if (ctx.window.value() <= 0.0) {
    ctx.window = u > 0.0 ? plan.expected_service *
                               (static_cast<double>(options.min_jobs) / u)
                         : plan.expected_service *
                               static_cast<double>(options.min_jobs);
  }

  ctx.schedule_next_arrival();
  // Run: process all events (in-flight jobs past the window drain too).
  ctx.sim.run();

#if HCEP_OBS
  if (ctx.o != nullptr) {
    // Ring drops are silent data loss: surface the tally as a live gauge
    // so metric snapshots expose it without decoding the trace.
    ctx.o->metrics.set(ctx.o->metrics.gauge("obs.trace_dropped"),
                       static_cast<double>(ctx.o->tracer.dropped()));
  }
#endif

  SimResult out = std::move(ctx.out);
  out.window = ctx.window;
  out.energy_exact = ctx.probe.energy(ctx.window);
  power::PowerMeter meter(options.meter, options.seed ^ 0x5eedULL);
  out.energy_measured = meter.measure_energy(ctx.probe.trace(), ctx.window);
  out.average_power = out.energy_exact / ctx.window;
  out.measured_utilization =
      std::min(1.0, ctx.busy_time.value() / ctx.window.value());
  if (out.jobs_completed > 0) {
    out.mean_service = Seconds{ctx.service_stats.mean()};
    out.mean_response = Seconds{ctx.response_stats.mean()};
    out.p95_response = Seconds{ctx.p95.value()};
  }
  return out;
}

JobMeasurement measure_batch(const model::TimeEnergyModel& m,
                             std::uint64_t jobs, std::uint64_t seed,
                             bool use_testbed_overheads) {
  require(jobs > 0, "measure_batch: need at least one job");
  const RunPlan plan = make_plan(m, use_testbed_overheads);
  Rng rng(seed);
#if HCEP_OBS
  obs::PowerProbe probe(obs::current(), "batch_W");
#else
  obs::PowerProbe probe(nullptr, "batch_W");
#endif

  Seconds now{0.0};
  probe.step(now, plan.idle_power);
  for (std::uint64_t j = 0; j < jobs; ++j) {
    double jitter = 1.0;
    if (plan.ovh.service_noise_cv > 0.0)
      jitter = std::max(0.2, rng.normal(1.0, plan.ovh.service_noise_cv));
    const Seconds exec = plan.model_job_time * (plan.ovh.time_factor * jitter);
    const Seconds start_exec = now + plan.ovh.dispatch;

    // Group power steps within the job, merged into the trace in time
    // order: collect (time, delta) and apply.
    std::vector<std::pair<Seconds, Watts>> deltas;
    for (std::size_t i = 0; i < plan.group_dynamic.size(); ++i) {
      if (plan.group_dynamic[i].value() <= 0.0) continue;
      deltas.emplace_back(start_exec, plan.group_dynamic[i]);
      deltas.emplace_back(start_exec + exec * plan.group_busy_fraction[i],
                          -plan.group_dynamic[i]);
    }
    std::sort(deltas.begin(), deltas.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    Watts level = probe.trace().at(now);
    for (const auto& [t, dw] : deltas) {
      level += dw;
      probe.step(t, level);
    }
    now = start_exec + exec;
    probe.step(now, plan.idle_power);
  }

  power::PowerMeter meter({}, seed ^ 0xbeefULL);
  JobMeasurement out;
  out.time_per_job = now / static_cast<double>(jobs);
  out.energy_per_job =
      meter.measure_energy(probe.trace(), now) / static_cast<double>(jobs);
  return out;
}

}  // namespace hcep::cluster
