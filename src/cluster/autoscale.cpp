#include "hcep/cluster/autoscale.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "hcep/obs/obs.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/util/stats.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::cluster {

namespace {

struct NodeKind {
  double rate;     ///< units/s serving
  double idle_w;   ///< W while up (booting or serving-idle)
  double dyn_w;    ///< extra W while executing work
};

/// Cluster state over a time segment.
struct Segment {
  double start = 0.0;
  double rate = 0.0;    ///< serving capacity
  double base_w = 0.0;  ///< power with no job running (sleep+idle mix)
  double dyn_w = 0.0;   ///< extra power when a job is executing
  double active = 0.0;  ///< serving node count
};

}  // namespace

AutoscaleResult autoscale_replay(const model::TimeEnergyModel& m,
                                 const LoadTrace& trace,
                                 const AutoscaleOptions& options) {
  require(options.control_period.value() > 0.0,
          "autoscale_replay: control period must be positive");
  require(options.headroom >= 0.0, "autoscale_replay: negative headroom");
  require(options.boot_delay.value() >= 0.0,
          "autoscale_replay: negative boot delay");
  require(options.min_active_fraction >= 0.0 &&
              options.min_active_fraction <= 1.0,
          "autoscale_replay: min_active_fraction outside [0, 1]");

  const auto& workload = m.workload();
  // Flatten the fleet, ordered by work-per-watt (greedy activation order).
  std::vector<NodeKind> nodes;
  for (const auto& g : m.cluster().groups) {
    if (g.count == 0) continue;
    const auto& d = workload.demand_for(g.spec.name);
    const double rate =
        workload::unit_throughput(d, g.spec, g.cores(), g.freq());
    const Watts busy = workload::busy_power(
        d, g.spec, g.cores(), g.freq(),
        workload.power_scale_for(g.spec.name));
    for (unsigned i = 0; i < g.count; ++i) {
      nodes.push_back(NodeKind{rate, g.spec.power.idle.value(),
                               (busy - g.spec.power.idle).value()});
    }
  }
  require(!nodes.empty(), "autoscale_replay: empty fleet");
  std::sort(nodes.begin(), nodes.end(), [](const NodeKind& a,
                                           const NodeKind& b) {
    return a.rate / (a.idle_w + a.dyn_w) > b.rate / (b.idle_w + b.dyn_w);
  });

  double fleet_capacity = 0.0;
  for (const auto& n : nodes) fleet_capacity += n.rate;
  const auto min_active = std::max<std::size_t>(
      1, static_cast<std::size_t>(options.min_active_fraction *
                                  static_cast<double>(nodes.size())));

  const double horizon = trace.horizon().value();
  const double dt = options.control_period.value();
  const double boot = options.boot_delay.value();
  const double sleep_w = options.sleep_power.value();

  // Controller sweep: per step decide the active prefix size; build the
  // (rate, power) timeline with boot transitions.
  std::vector<Segment> segments;
  std::size_t serving = nodes.size();  // start fully on (warm fleet)
  std::size_t committed = nodes.size();
  std::vector<double> serve_from(nodes.size(), 0.0);

  const auto aggregate = [&](double t) {
    Segment s;
    s.start = t;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i < committed) {
        if (serve_from[i] <= t) {
          s.rate += nodes[i].rate;
          s.dyn_w += nodes[i].dyn_w;
          s.active += 1.0;
          s.base_w += nodes[i].idle_w;
        } else {
          s.base_w += nodes[i].idle_w;  // booting: idle power, no work
        }
      } else {
        s.base_w += sleep_w;
      }
    }
    return s;
  };

#if HCEP_OBS
  obs::Observer* o = obs::current();
  obs::StringId cat_s = 0, up_s = 0, down_s = 0, delta_s = 0, commit_s = 0;
  obs::MetricId decisions_m = 0;
  if (o != nullptr) {
    cat_s = o->tracer.intern("autoscale");
    up_s = o->tracer.intern("scale_up");
    down_s = o->tracer.intern("scale_down");
    delta_s = o->tracer.intern("delta");
    commit_s = o->tracer.intern("committed_nodes");
    decisions_m = o->metrics.counter("autoscale.decisions");
    o->tracer.counter(0.0, cat_s, commit_s,
                      static_cast<double>(committed));
  }
#endif
  for (double t = 0.0; t < horizon; t += dt) {
    const double demand = trace.at(Seconds{t}) * fleet_capacity;
    const double target = demand * (1.0 + options.headroom);
    std::size_t want = 0;
    double cap = 0.0;
    while (want < nodes.size() && (cap < target || want < min_active)) {
      cap += nodes[want].rate;
      ++want;
    }
    if (want > committed) {
      for (std::size_t i = committed; i < want; ++i)
        serve_from[i] = t + boot;  // wake
    } else if (want < committed) {
      // Park immediately (LIFO within the efficiency order).
    }
#if HCEP_OBS
    if (o != nullptr && want != committed) {
      o->metrics.add(decisions_m);
      o->tracer.instant(t, cat_s, want > committed ? up_s : down_s, delta_s,
                        static_cast<double>(want) -
                            static_cast<double>(committed));
      o->tracer.counter(t, cat_s, commit_s, static_cast<double>(want));
    }
#endif
    committed = want;
    segments.push_back(aggregate(t));
    // A boot completing mid-step changes the aggregates: add an edge.
    if (boot > 0.0 && boot < dt) {
      segments.push_back(aggregate(t + boot));
    }
    serving = committed;
  }
  (void)serving;

  const auto segment_at = [&](double t) -> std::size_t {
    std::size_t lo = 0, hi = segments.size();
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (segments[mid].start <= t) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  const auto integrate = [&](double a, double b, auto field) {
    double acc = 0.0;
    std::size_t si = segment_at(a);
    double t = a;
    while (t < b && si < segments.size()) {
      const double seg_end =
          si + 1 < segments.size() ? segments[si + 1].start : b;
      const double edge = std::min(b, seg_end);
      acc += field(segments[si]) * (edge - t);
      t = edge;
      ++si;
    }
    return acc;
  };
  const auto finish_time = [&](double start, double work) {
    std::size_t si = segment_at(start);
    double t = start;
    double remaining = work;
    while (true) {
      const double seg_end = si + 1 < segments.size()
                                 ? segments[si + 1].start
                                 : horizon * 2.0;
      const double rate = segments[si].rate;
      if (rate > 0.0) {
        const double can_do = rate * (seg_end - t);
        if (can_do >= remaining) return t + remaining / rate;
        remaining -= can_do;
      }
      t = seg_end;
      if (si + 1 < segments.size()) {
        ++si;
      } else {
        require(segments[si].rate > 0.0,
                "autoscale_replay: fleet parked with work outstanding");
        return t + remaining / segments[si].rate;
      }
    }
  };

  // Job stream: non-homogeneous Poisson via thinning, served FIFO.
  Rng rng(options.seed);
  const Seconds unit_service{workload.units_per_job / fleet_capacity};
  const double lambda_max = trace.peak() / unit_service.value();

  const std::size_t n_buckets = 24;
  const double bucket_w = horizon / static_cast<double>(n_buckets);
  std::vector<AutoscaleBucket> buckets(n_buckets);
  std::vector<std::vector<double>> responses(n_buckets);
  std::vector<double> work_in_bucket(n_buckets, 0.0);
  std::vector<std::pair<double, double>> serving_ivals;

  double t = 0.0;
  double server_free = 0.0;
  std::uint64_t completed = 0;
  if (lambda_max > 0.0) {
    while (true) {
      t += rng.exponential(lambda_max);
      if (t >= horizon) break;
      if (rng.uniform01() * lambda_max >
          trace.at(Seconds{t}) / unit_service.value()) {
        continue;
      }
      const double start = std::max(t, server_free);
      const double done = finish_time(start, workload.units_per_job);
      server_free = done;
      ++completed;
      serving_ivals.emplace_back(start, done);
      const auto bi = std::min(n_buckets - 1,
                               static_cast<std::size_t>(t / bucket_w));
      responses[bi].push_back(done - t);
      work_in_bucket[bi] += workload.units_per_job;
    }
  }

  // Per-bucket accounting.
  std::vector<double> bucket_dyn(n_buckets, 0.0);
  for (const auto& [a, b] : serving_ivals) {
    double lo = std::min(a, horizon);
    const double hi = std::min(b, horizon);
    while (lo < hi) {
      const auto bi = std::min(n_buckets - 1,
                               static_cast<std::size_t>(lo / bucket_w));
      const double edge =
          std::min(hi, (static_cast<double>(bi) + 1.0) * bucket_w);
      bucket_dyn[bi] +=
          integrate(lo, edge, [](const Segment& s) { return s.dyn_w; });
      lo = edge;
    }
  }

  Joules energy{0.0};
  Seconds worst_p95{0.0};
  std::map<double, RunningStats> profile;  // fleet utilization -> power
  for (std::size_t i = 0; i < n_buckets; ++i) {
    AutoscaleBucket& b = buckets[i];
    b.start = Seconds{bucket_w * static_cast<double>(i)};
    b.target_utilization = trace.at(b.start + Seconds{bucket_w / 2});
    const double base = integrate(b.start.value(),
                                  b.start.value() + bucket_w,
                                  [](const Segment& s) { return s.base_w; });
    const double active = integrate(
        b.start.value(), b.start.value() + bucket_w,
        [](const Segment& s) { return s.active; });
    b.active_fraction =
        active / (bucket_w * static_cast<double>(nodes.size()));
    b.average_power = Watts{(base + bucket_dyn[i]) / bucket_w};
    b.jobs = responses[i].size();
    if (!responses[i].empty()) {
      b.p95_response = Seconds{percentile_inplace(responses[i], 95.0)};
      worst_p95 = std::max(worst_p95, b.p95_response);
    }
    energy += b.average_power * Seconds{bucket_w};

    const double fleet_util =
        work_in_bucket[i] / (fleet_capacity * bucket_w);
    profile[std::round(fleet_util * 50.0) / 50.0].add(
        b.average_power.value());
  }
  // Effective power profile: averaged bucket samples, anchored at the
  // parked floor (u = 0) and the full-fleet busy power (u = 1).
  const double parked_floor =
      static_cast<double>(nodes.size() - min_active) * sleep_w +
      [&] {
        double idle = 0.0;
        for (std::size_t i = 0; i < min_active; ++i) idle += nodes[i].idle_w;
        return idle;
      }();
  PiecewiseLinear samples;
  samples.add(0.0, parked_floor);
  for (const auto& [u, stats] : profile) {
    if (u <= 0.0 || u >= 1.0) continue;
    samples.add(u, stats.mean());
  }
  samples.add(1.0, m.busy_power().value());
  power::PowerCurve effective =
      power::PowerCurve::sampled(std::move(samples));
  metrics::ProportionalityReport effective_report =
      metrics::analyze(effective);
  metrics::ProportionalityReport static_report =
      metrics::analyze(m.power_curve());

  return AutoscaleResult{
      .buckets = std::move(buckets),
      .total_energy = energy,
      .average_power = energy / trace.horizon(),
      .jobs_completed = completed,
      .worst_p95 = worst_p95,
      .effective_curve = std::move(effective),
      .effective_report = effective_report,
      .static_report = static_report,
  };
}

}  // namespace hcep::cluster
