#include "hcep/cluster/replication.hpp"

#include <cmath>

#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"

namespace hcep::cluster {

double t_critical_95(std::size_t degrees_of_freedom) {
  require(degrees_of_freedom >= 1, "t_critical_95: df must be >= 1");
  // Two-sided 95 % quantiles of Student's t.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
      2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
      2.048,  2.045, 2.042};
  if (degrees_of_freedom <= 30) return kTable[degrees_of_freedom - 1];
  if (degrees_of_freedom <= 40) return 2.021;
  if (degrees_of_freedom <= 60) return 2.000;
  if (degrees_of_freedom <= 120) return 1.980;
  return 1.960;  // normal limit
}

Estimate replicate(const std::function<double(std::uint64_t)>& metric,
                   std::size_t replications, std::uint64_t base_seed) {
  require(replications >= 2, "replicate: need at least two replications");

  // Independent seeds from a splitmix stream.
  SplitMix64 seeder(base_seed);
  RunningStats stats;
  for (std::size_t i = 0; i < replications; ++i)
    stats.add(metric(seeder.next()));

  Estimate out;
  out.replications = replications;
  out.mean = stats.mean();
  out.half_width = t_critical_95(replications - 1) *
                   std::sqrt(stats.variance() /
                             static_cast<double>(replications));
  return out;
}

}  // namespace hcep::cluster
