#include "hcep/cluster/dispatch.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "hcep/des/simulator.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/util/stats.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::cluster {

std::string to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kRandom: return "random";
    case DispatchPolicy::kJoinShortestQueue: return "join-shortest-queue";
    case DispatchPolicy::kFastestFirst: return "fastest-first";
    case DispatchPolicy::kLeastEnergy: return "least-energy";
  }
  return "unknown";
}

std::vector<DispatchPolicy> all_dispatch_policies() {
  return {DispatchPolicy::kRoundRobin, DispatchPolicy::kRandom,
          DispatchPolicy::kJoinShortestQueue, DispatchPolicy::kFastestFirst,
          DispatchPolicy::kLeastEnergy};
}

namespace {

/// One physical node: per-program service/dynamic-power tables plus live
/// queue state.
struct Node {
  std::string type;
  std::vector<Seconds> service;  ///< indexed by program
  std::vector<Watts> dynamic;    ///< extra power while serving, per program
  Watts idle{};
  std::size_t queued = 0;
  Seconds free_at{};
  std::uint64_t served = 0;
  Seconds busy_time{};
};

/// Shared engine for single- and mixed-stream dispatch.
MixedDispatchResult run_engine(const model::ClusterSpec& cluster,
                               const std::vector<MixedStream>& streams,
                               const DispatchOptions& options) {
  cluster.validate();
  require(options.utilization > 0.0 && options.utilization < 1.0,
          "simulate_dispatch: utilization must lie in (0, 1)");
  require(options.jobs > 0, "simulate_dispatch: need at least one job");
  require(!streams.empty(), "simulate_dispatch: no job streams");

  // Normalized stream weights and their cumulative distribution.
  double weight_total = 0.0;
  for (const auto& s : streams) {
    require(s.weight > 0.0, "simulate_dispatch: non-positive stream weight");
    weight_total += s.weight;
  }
  std::vector<double> cumulative;
  {
    double acc = 0.0;
    for (const auto& s : streams) {
      acc += s.weight / weight_total;
      cumulative.push_back(acc);
    }
    cumulative.back() = 1.0;
  }

  // Materialize nodes with per-program service/power tables.
  std::vector<Node> nodes;
  for (const auto& g : cluster.groups) {
    if (g.count == 0) continue;
    std::vector<Seconds> service;
    std::vector<Watts> dynamic;
    for (const auto& s : streams) {
      require(s.workload.has_node(g.spec.name),
              "simulate_dispatch: workload '" + s.workload.name +
                  "' lacks demand for '" + g.spec.name + "'");
      const auto& demand = s.workload.demand_for(g.spec.name);
      const double rate =
          workload::unit_throughput(demand, g.spec, g.cores(), g.freq());
      service.push_back(Seconds{s.workload.units_per_job / rate});
      const Watts busy = workload::busy_power(
          demand, g.spec, g.cores(), g.freq(),
          s.workload.power_scale_for(g.spec.name));
      dynamic.push_back(busy - g.spec.power.idle);
    }
    for (unsigned i = 0; i < g.count; ++i) {
      nodes.push_back(Node{.type = g.spec.name,
                           .service = service,
                           .dynamic = dynamic,
                           .idle = g.spec.power.idle,
                           .queued = 0,
                           .free_at = Seconds{0.0},
                           .served = 0,
                           .busy_time = Seconds{0.0}});
    }
  }
  require(!nodes.empty(), "simulate_dispatch: empty cluster");

  // Offered load: each node's sustainable job rate under the mixed diet,
  // summed; utilization scales it.
  double capacity_jobs = 0.0;
  for (const auto& n : nodes) {
    double mean_service = 0.0;
    for (std::size_t s = 0; s < streams.size(); ++s)
      mean_service += streams[s].weight / weight_total *
                      n.service[s].value();
    capacity_jobs += 1.0 / mean_service;
  }
  const double lambda = options.utilization * capacity_jobs;

  Rng rng(options.seed);
  des::Simulator sim;

#if HCEP_OBS
  obs::Observer* o = obs::current();
  obs::MetricId dispatched_m = 0, depth_m = 0;
  obs::StringId cat_s = 0, dispatch_s = 0, node_s = 0;
  if (o != nullptr) {
    dispatched_m = o->metrics.counter("dispatch.jobs");
    depth_m = o->metrics.histogram("dispatch.target_queue_depth",
                                   {0, 1, 2, 4, 8, 16, 32, 64});
    cat_s = o->tracer.intern("dispatch");
    dispatch_s = o->tracer.intern(to_string(options.policy));
    node_s = o->tracer.intern("node");
  }
#endif

  std::size_t rr_cursor = 0;
  const auto pick_node = [&](std::size_t program) -> std::size_t {
    switch (options.policy) {
      case DispatchPolicy::kRoundRobin: {
        const std::size_t i = rr_cursor;
        rr_cursor = (rr_cursor + 1) % nodes.size();
        return i;
      }
      case DispatchPolicy::kRandom:
        return static_cast<std::size_t>(rng.uniform_int(nodes.size()));
      case DispatchPolicy::kJoinShortestQueue: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < nodes.size(); ++i) {
          if (nodes[i].queued < nodes[best].queued ||
              (nodes[i].queued == nodes[best].queued &&
               nodes[i].service[program] < nodes[best].service[program])) {
            best = i;
          }
        }
        return best;
      }
      case DispatchPolicy::kFastestFirst: {
        std::size_t best = 0;
        double best_eta = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          const double backlog =
              std::max(0.0, (nodes[i].free_at - sim.now()).value());
          const double eta = backlog + nodes[i].service[program].value();
          if (eta < best_eta) {
            best_eta = eta;
            best = i;
          }
        }
        return best;
      }
      case DispatchPolicy::kLeastEnergy: {
        std::size_t best = 0;
        double best_score = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          const double joules = nodes[i].dynamic[program].value() *
                                nodes[i].service[program].value();
          const double backlog =
              std::max(0.0, (nodes[i].free_at - sim.now()).value());
          // Energy dominates; backlog breaks ties at the millijoule scale.
          const double score = joules + backlog * 1e-3;
          if (score < best_score) {
            best_score = score;
            best = i;
          }
        }
        return best;
      }
    }
    throw PreconditionError("simulate_dispatch: unknown policy");
  };

  RunningStats response_stats;
  std::vector<double> responses;
  responses.reserve(options.jobs);
  std::vector<RunningStats> stream_stats(streams.size());
  std::vector<std::vector<double>> stream_responses(streams.size());
  Joules dynamic_energy{0.0};
  Seconds makespan{0.0};
  std::uint64_t dispatched = 0;

  std::function<void()> arrive = [&]() {
    if (dispatched >= options.jobs) return;
    ++dispatched;
    const Seconds arrival = sim.now();

    // Sample the job's program by weight.
    const double coin = rng.uniform01();
    std::size_t program = 0;
    while (program + 1 < streams.size() && coin > cumulative[program])
      ++program;

    const std::size_t i = pick_node(program);
    Node& n = nodes[i];
#if HCEP_OBS
    if (o != nullptr) {
      o->metrics.add(dispatched_m);
      o->metrics.observe(depth_m, static_cast<double>(n.queued));
      o->tracer.instant(sim.now().value(), cat_s, dispatch_s, node_s,
                        static_cast<double>(i));
    }
#endif
    ++n.queued;
    const Seconds start = std::max(arrival, n.free_at);
    const Seconds done = start + n.service[program];
    n.free_at = done;
    sim.schedule_at(done, [&, i, program, arrival]() {
      Node& node = nodes[i];
      --node.queued;
      ++node.served;
      node.busy_time += node.service[program];
      dynamic_energy += node.dynamic[program] * node.service[program];
      const double response = (sim.now() - arrival).value();
      response_stats.add(response);
      responses.push_back(response);
      stream_stats[program].add(response);
      stream_responses[program].push_back(response);
      makespan = std::max(makespan, sim.now());
    });
    sim.schedule_in(Seconds{rng.exponential(lambda)}, arrive);
  };
  sim.schedule_in(Seconds{rng.exponential(lambda)}, arrive);
  sim.run();

  MixedDispatchResult out;
  out.overall.jobs = options.jobs;
  out.overall.makespan = makespan;
  out.overall.mean_response = Seconds{response_stats.mean()};
  out.overall.p95_response = Seconds{percentile_inplace(responses, 95.0)};

  Watts idle_floor{0.0};
  for (const auto& n : nodes) idle_floor += n.idle;
  out.overall.energy = idle_floor * makespan + dynamic_energy;
  out.overall.average_power = out.overall.energy / makespan;
  out.overall.energy_per_job =
      out.overall.energy / static_cast<double>(options.jobs);

  // Per node type.
  for (const auto& n : nodes) {
    auto it = std::find_if(
        out.overall.nodes.begin(), out.overall.nodes.end(),
        [&](const NodeLoad& l) { return l.node_name == n.type; });
    if (it == out.overall.nodes.end()) {
      out.overall.nodes.push_back(NodeLoad{n.type, 0, 0.0});
      it = out.overall.nodes.end() - 1;
    }
    it->jobs_served += n.served;
    it->busy_fraction += n.busy_time.value();
  }
  for (auto& l : out.overall.nodes) {
    double count = 0;
    for (const auto& n : nodes)
      if (n.type == l.node_name) count += 1.0;
    l.busy_fraction /= std::max(1.0, count) * makespan.value();
  }

  // Per program.
  for (std::size_t s = 0; s < streams.size(); ++s) {
    StreamStats st;
    st.program = streams[s].workload.name;
    st.jobs = stream_stats[s].count();
    if (st.jobs > 0) {
      st.mean_response = Seconds{stream_stats[s].mean()};
      st.p95_response =
          Seconds{percentile_inplace(stream_responses[s], 95.0)};
    }
    out.per_program.push_back(std::move(st));
  }
  return out;
}

}  // namespace

DispatchResult simulate_dispatch(const model::ClusterSpec& cluster,
                                 const workload::Workload& workload,
                                 const DispatchOptions& options) {
  return run_engine(cluster, {MixedStream{workload, 1.0}}, options).overall;
}

MixedDispatchResult simulate_mixed_dispatch(
    const model::ClusterSpec& cluster, const std::vector<MixedStream>& streams,
    const DispatchOptions& options) {
  return run_engine(cluster, streams, options);
}

}  // namespace hcep::cluster
