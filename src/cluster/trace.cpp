#include "hcep/cluster/trace.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "hcep/power/meter.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/util/stats.hpp"

namespace hcep::cluster {

LoadTrace::LoadTrace(PiecewiseLinear profile) : profile_(std::move(profile)) {
  require(!profile_.empty(), "LoadTrace: empty profile");
  require(profile_.front_x() == 0.0, "LoadTrace: profile must start at t=0");
  for (double y : profile_.ys())
    require(y >= 0.0 && y < 1.0, "LoadTrace: utilization outside [0, 1)");
}

LoadTrace LoadTrace::diurnal(Seconds period, double low, double high,
                             std::size_t knots) {
  require(period.value() > 0.0, "LoadTrace::diurnal: non-positive period");
  require(low >= 0.0 && high < 1.0 && low <= high,
          "LoadTrace::diurnal: bad utilization range");
  require(knots >= 3, "LoadTrace::diurnal: need at least three knots");
  const double mid = 0.5 * (low + high);
  const double amp = 0.5 * (high - low);
  PiecewiseLinear profile;
  for (std::size_t i = 0; i < knots; ++i) {
    const double t = period.value() * static_cast<double>(i) /
                     static_cast<double>(knots - 1);
    const double u = std::clamp(
        mid + amp * std::sin(2.0 * std::numbers::pi * t / period.value()),
        low, high);
    profile.add(t, u);
  }
  return LoadTrace(std::move(profile));
}

LoadTrace LoadTrace::step(Seconds horizon, double low, double high,
                          Seconds start, Seconds width) {
  require(horizon.value() > 0.0, "LoadTrace::step: non-positive horizon");
  require(start.value() >= 0.0 && (start + width) <= horizon,
          "LoadTrace::step: step outside the horizon");
  require(low >= 0.0 && low < 1.0 && high >= 0.0 && high < 1.0,
          "LoadTrace::step: utilization outside [0, 1)");
  constexpr double kEdge = 1e-9;
  require(start.value() == 0.0 || start.value() > kEdge,
          "LoadTrace::step: step start too close to zero");
  require(width.value() > kEdge, "LoadTrace::step: step width too small");
  PiecewiseLinear profile;
  if (start.value() > 0.0) {
    profile.add(0.0, low);
    profile.add(start.value() - kEdge, low);
    profile.add(start.value(), high);
  } else {
    profile.add(0.0, high);
  }
  const double end = (start + width).value();
  profile.add(end, high);
  if (end + kEdge < horizon.value()) {
    profile.add(end + kEdge, low);
    profile.add(horizon.value(), low);
  }
  return LoadTrace(std::move(profile));
}

LoadTrace LoadTrace::flat(Seconds horizon, double level) {
  require(horizon.value() > 0.0, "LoadTrace::flat: non-positive horizon");
  require(level >= 0.0 && level < 1.0, "LoadTrace::flat: bad level");
  return LoadTrace(PiecewiseLinear({0.0, horizon.value()}, {level, level}));
}

double LoadTrace::at(Seconds t) const { return profile_(t.value()); }

Seconds LoadTrace::horizon() const { return Seconds{profile_.back_x()}; }

double LoadTrace::peak() const {
  double best = 0.0;
  for (double y : profile_.ys()) best = std::max(best, y);
  return best;
}

TraceReplayResult replay_trace(const model::TimeEnergyModel& model,
                               const LoadTrace& trace,
                               const TraceReplayOptions& options) {
  const Seconds horizon = trace.horizon();
  Seconds bucket = options.bucket;
  if (bucket.value() <= 0.0) bucket = horizon / 24.0;
  require(bucket.value() > 0.0 && bucket <= horizon,
          "replay_trace: bad bucket width");

  const Seconds service =
      model.execution_time(model.workload().units_per_job).t_p;
  const double lambda_max = trace.peak() / service.value();
  const Watts idle = model.idle_power();
  const Watts dynamic = model.busy_power() - idle;

  Rng rng(options.seed);

  // Non-homogeneous Poisson arrivals by thinning against lambda_max,
  // served FIFO by the whole cluster (the paper's M/D/1 view).
  const std::size_t n_buckets = static_cast<std::size_t>(
      std::ceil(horizon.value() / bucket.value()));
  std::vector<TraceBucket> buckets(n_buckets);
  std::vector<std::vector<double>> responses(n_buckets);
  std::vector<double> busy_in_bucket(n_buckets, 0.0);

  double t = 0.0;
  double server_free = 0.0;
  std::uint64_t completed = 0;

  // Charge a busy interval [a, b) to the bucket accounting.
  const auto charge_busy = [&](double a, double b) {
    a = std::max(0.0, a);
    b = std::min(b, horizon.value());
    while (a < b) {
      const auto bi = std::min(
          n_buckets - 1, static_cast<std::size_t>(a / bucket.value()));
      const double edge =
          std::min(b, (static_cast<double>(bi) + 1.0) * bucket.value());
      busy_in_bucket[bi] += edge - a;
      a = edge;
    }
  };

  if (lambda_max > 0.0) {
    while (true) {
      t += rng.exponential(lambda_max);
      if (t >= horizon.value()) break;
      // Thinning: accept with probability lambda(t)/lambda_max.
      if (rng.uniform01() * lambda_max > trace.at(Seconds{t}) / service.value())
        continue;
      const double start = std::max(t, server_free);
      const double done = start + service.value();
      server_free = done;
      ++completed;
      charge_busy(start, done);
      const auto bi = std::min(
          n_buckets - 1, static_cast<std::size_t>(t / bucket.value()));
      responses[bi].push_back(done - t);
    }
  }

  TraceReplayResult out;
  out.jobs_completed = completed;

  Joules energy{0.0};
  Seconds worst_p95{0.0};
  for (std::size_t i = 0; i < n_buckets; ++i) {
    TraceBucket& b = buckets[i];
    b.start = bucket * static_cast<double>(i);
    const double width =
        std::min(bucket.value(), horizon.value() - b.start.value());
    // Trace average over the bucket (4-point rule is plenty for the
    // piecewise-linear profile).
    double acc = 0.0;
    for (int k = 0; k < 4; ++k)
      acc += trace.at(b.start + Seconds{width * (k + 0.5) / 4.0});
    b.target_utilization = acc / 4.0;
    b.realized_utilization = busy_in_bucket[i] / width;
    b.average_power = idle + dynamic * b.realized_utilization;
    b.jobs = responses[i].size();
    if (!responses[i].empty()) {
      b.p95_response = Seconds{percentile_inplace(responses[i], 95.0)};
      worst_p95 = std::max(worst_p95, b.p95_response);
    }
    energy += b.average_power * Seconds{width};
  }

  out.buckets = std::move(buckets);
  out.total_energy = energy;
  out.average_power = energy / horizon;
  out.worst_p95 = worst_p95;
  return out;
}

}  // namespace hcep::cluster
