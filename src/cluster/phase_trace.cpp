#include "hcep/cluster/phase_trace.hpp"

#include <algorithm>
#include <vector>

#include "hcep/util/error.hpp"

namespace hcep::cluster {

PhaseBreakdown phase_breakdown(const workload::NodeDemand& demand,
                               const hw::NodeSpec& node,
                               unsigned active_cores, Hertz frequency,
                               double units) {
  require(units > 0.0, "phase_breakdown: non-positive work");
  const workload::UnitTime per_unit =
      workload::unit_time(demand, node, active_cores, frequency);

  PhaseBreakdown out;
  const Seconds core = per_unit.core * units;
  const Seconds mem = per_unit.mem * units;
  out.overlap = std::min(core, mem);
  out.compute_only = std::max(Seconds{0.0}, core - mem);
  out.stall_only = std::max(Seconds{0.0}, mem - core);
  out.io_total = per_unit.io * units;
  out.total = std::max(std::max(core, mem), out.io_total);
  return out;
}

power::PowerTrace node_phase_trace(const workload::NodeDemand& demand,
                                   const hw::NodeSpec& node,
                                   unsigned active_cores, Hertz frequency,
                                   double units, double power_scale) {
  const PhaseBreakdown ph =
      phase_breakdown(demand, node, active_cores, frequency, units);

  const double dvfs = node.power.dvfs_scale(frequency, node.dvfs.max());
  const double cores = static_cast<double>(active_cores);
  const Watts p_act =
      node.power.core_active * (cores * dvfs * power_scale);
  const Watts p_stall =
      node.power.core_stalled * (cores * dvfs * power_scale);
  const Watts p_mem = node.power.mem_active * power_scale;
  const Watts p_net = node.power.net_active * power_scale;
  const Watts idle = node.power.idle;

  // Boundaries where the active component set changes.
  const double t_overlap = ph.overlap.value();
  const double t_cpu =
      t_overlap + ph.compute_only.value() + ph.stall_only.value();
  const double t_io = ph.io_total.value();
  const double t_end = ph.total.value();

  std::vector<double> edges{0.0, t_overlap, t_cpu, t_io, t_end};
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  power::PowerTrace trace;
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    const double mid = 0.5 * (edges[i] + edges[i + 1]);
    Watts level = idle;
    if (mid < t_overlap) {
      level += p_act + p_mem;
    } else if (mid < t_cpu) {
      // Past the overlap, exactly one of compute-only / stall-only
      // remains (the other has zero width).
      level += ph.compute_only.value() > 0.0 ? p_act : p_stall + p_mem;
    }
    if (mid < t_io) level += p_net;
    trace.step(Seconds{edges[i]}, level);
  }
  trace.step(Seconds{t_end}, idle);
  return trace;
}

}  // namespace hcep::cluster
