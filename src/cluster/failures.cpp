#include "hcep/cluster/failures.hpp"

#include <algorithm>
#include <vector>

#include "hcep/obs/obs.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/util/stats.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::cluster {

namespace {

/// Aggregate cluster state over a time segment.
struct Segment {
  double start = 0.0;
  double rate = 0.0;      ///< units/s of the up nodes
  double idle_w = 0.0;    ///< idle power of the up nodes
  double dyn_w = 0.0;     ///< dynamic power of the up nodes when serving
  double nodes_up = 0.0;
};

}  // namespace

FailureResult simulate_with_failures(const model::TimeEnergyModel& m,
                                     const FailureOptions& options) {
  require(options.utilization >= 0.0 && options.utilization < 1.0,
          "simulate_with_failures: utilization must lie in [0, 1)");
  require(options.min_jobs > 0, "simulate_with_failures: min_jobs > 0");
  require(options.node_mtbf.value() > 0.0,
          "simulate_with_failures: MTBF must be positive");
  require(options.repair_time.value() >= 0.0,
          "simulate_with_failures: negative repair time");

  const auto& workload = m.workload();
  const Seconds healthy_service =
      m.execution_time(workload.units_per_job).t_p;
  const double u = options.utilization;
  const double window =
      (u > 0.0 ? healthy_service.value() *
                     static_cast<double>(options.min_jobs) / u
               : healthy_service.value() *
                     static_cast<double>(options.min_jobs));
  // Failures can push service past the window; simulate the timeline with
  // headroom so jobs can drain.
  const double horizon = window * 4.0 + 100.0 * healthy_service.value();

  // Per-node static characteristics.
  struct NodeKind {
    double rate;
    double idle;
    double dyn;
  };
  std::vector<NodeKind> nodes;
  for (const auto& g : m.cluster().groups) {
    if (g.count == 0) continue;
    const auto& d = workload.demand_for(g.spec.name);
    const double rate =
        workload::unit_throughput(d, g.spec, g.cores(), g.freq());
    const Watts busy =
        workload::busy_power(d, g.spec, g.cores(), g.freq(),
                             workload.power_scale_for(g.spec.name));
    for (unsigned i = 0; i < g.count; ++i) {
      nodes.push_back(NodeKind{rate, g.spec.power.idle.value(),
                               (busy - g.spec.power.idle).value()});
    }
  }
  require(!nodes.empty(), "simulate_with_failures: empty cluster");

  // Per-node up/down renewal processes -> change events.
  Rng rng(options.seed);
  struct Change {
    double t;
    std::size_t node;
    bool up;
  };
  std::vector<Change> changes;
  std::uint64_t failures = 0;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    double t = rng.exponential(1.0 / options.node_mtbf.value());
    while (t < horizon) {
      changes.push_back(Change{t, n, false});
      ++failures;
      t += options.repair_time.value();
      if (t >= horizon) break;
      changes.push_back(Change{t, n, true});
      t += rng.exponential(1.0 / options.node_mtbf.value());
    }
  }
  std::sort(changes.begin(), changes.end(),
            [](const Change& a, const Change& b) { return a.t < b.t; });

#if HCEP_OBS
  // Failure/repair instants plus a nodes_up counter track, so the fleet
  // timeline renders alongside the power tracks in chrome://tracing.
  if (obs::Observer* o = obs::current(); o != nullptr) {
    o->metrics.add(o->metrics.counter("failures.node_failures"), failures);
    const obs::StringId cat = o->tracer.intern("failures");
    const obs::StringId fail_s = o->tracer.intern("node_failure");
    const obs::StringId repair_s = o->tracer.intern("node_repair");
    const obs::StringId node_s = o->tracer.intern("node");
    const obs::StringId up_s = o->tracer.intern("nodes_up");
    double up = static_cast<double>(nodes.size());
    o->tracer.counter(0.0, cat, up_s, up);
    for (const auto& ch : changes) {
      o->tracer.instant(ch.t, cat, ch.up ? repair_s : fail_s, node_s,
                        static_cast<double>(ch.node));
      up += ch.up ? 1.0 : -1.0;
      o->tracer.counter(ch.t, cat, up_s, up);
    }
  }
#endif

  // Build aggregate segments.
  std::vector<Segment> segments;
  {
    Segment cur;
    cur.start = 0.0;
    for (const auto& n : nodes) {
      cur.rate += n.rate;
      cur.idle_w += n.idle;
      cur.dyn_w += n.dyn;
      cur.nodes_up += 1.0;
    }
    segments.push_back(cur);
    for (const auto& ch : changes) {
      Segment next = segments.back();
      next.start = ch.t;
      const double sign = ch.up ? 1.0 : -1.0;
      next.rate += sign * nodes[ch.node].rate;
      next.idle_w += sign * nodes[ch.node].idle;
      next.dyn_w += sign * nodes[ch.node].dyn;
      next.nodes_up += sign;
      segments.push_back(next);
    }
  }
  const auto segment_at = [&](double t) -> std::size_t {
    std::size_t lo = 0, hi = segments.size();
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (segments[mid].start <= t) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  };

  // Integrate a quantity selected by `field` over [a, b).
  const auto integrate = [&](double a, double b, auto field) {
    double acc = 0.0;
    std::size_t si = segment_at(a);
    double t = a;
    while (t < b) {
      const double seg_end =
          si + 1 < segments.size() ? segments[si + 1].start : horizon;
      const double edge = std::min(b, seg_end);
      acc += field(segments[si]) * (edge - t);
      t = edge;
      ++si;
      if (si >= segments.size()) break;
    }
    return acc;
  };

  // Serve Poisson arrivals FIFO; a job's service integrates the surviving
  // capacity from its start until its work is done.
  const double lambda = u > 0.0 ? u / healthy_service.value() : 0.0;
  const auto finish_time = [&](double start, double work) {
    std::size_t si = segment_at(start);
    double t = start;
    double remaining = work;
    while (true) {
      const double seg_end =
          si + 1 < segments.size() ? segments[si + 1].start : horizon;
      const double rate = segments[si].rate;
      if (rate > 0.0) {
        const double can_do = rate * (seg_end - t);
        if (can_do >= remaining) return t + remaining / rate;
        remaining -= can_do;
      }
      t = seg_end;
      ++si;
      require(si < segments.size(),
              "simulate_with_failures: work ran past the horizon (raise "
              "MTBF or shorten the window)");
    }
  };

  FailureResult out;
  RunningStats response_stats;
  RunningStats service_stats;
  std::vector<double> responses;
  std::vector<std::pair<double, double>> serving;  // busy intervals

  double clock = 0.0;
  double server_free = 0.0;
  if (lambda > 0.0) {
    while (true) {
      clock += rng.exponential(lambda);
      if (clock >= window) break;
      const double start = std::max(clock, server_free);
      const double done = finish_time(start, workload.units_per_job);
      server_free = done;
      ++out.jobs_completed;
      serving.emplace_back(start, done);
      service_stats.add(done - start);
      response_stats.add(done - clock);
      responses.push_back(done - clock);
    }
  }

  out.window = Seconds{window};
  out.failures = failures;
  out.availability =
      integrate(0.0, window, [](const Segment& s) { return s.nodes_up; }) /
      (window * static_cast<double>(nodes.size()));

  // Energy: idle floor of up nodes over the window, plus dynamic power of
  // up nodes during (clipped) serving intervals.
  double energy =
      integrate(0.0, window, [](const Segment& s) { return s.idle_w; });
  for (const auto& [a, b] : serving) {
    const double lo = std::min(a, window);
    const double hi = std::min(b, window);
    if (hi > lo) {
      energy +=
          integrate(lo, hi, [](const Segment& s) { return s.dyn_w; });
    }
  }
  out.energy = Joules{energy};
  out.average_power = out.energy / out.window;

  if (out.jobs_completed > 0) {
    out.mean_response = Seconds{response_stats.mean()};
    out.p95_response = Seconds{percentile_inplace(responses, 95.0)};
    out.service_inflation =
        service_stats.mean() / healthy_service.value();
  }
  return out;
}

}  // namespace hcep::cluster
