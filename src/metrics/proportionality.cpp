#include "hcep/metrics/proportionality.hpp"

#include <algorithm>
#include <cmath>

#include "hcep/util/error.hpp"

namespace hcep::metrics {

namespace {
void check_peak(const power::PowerCurve& curve) {
  require(curve.peak().value() > 0.0, "metrics: curve peak must be positive");
}
}  // namespace

double ipr(const power::PowerCurve& curve) {
  check_peak(curve);
  return curve.idle() / curve.peak();
}

double dpr(const power::PowerCurve& curve) {
  return 100.0 * (1.0 - ipr(curve));
}

double epm(const power::PowerCurve& curve) {
  check_peak(curve);
  // Normalized areas over u in [0, 1]: ideal integrates to 1/2.
  const double p_area = curve.area() / curve.peak().value();
  constexpr double kIdealArea = 0.5;
  return 1.0 - (p_area - kIdealArea) / kIdealArea;
}

double ldr(const power::PowerCurve& curve, std::size_t grid) {
  check_peak(curve);
  require(grid >= 2, "ldr: need at least two grid points");
  const double idle = curve.idle().value();
  const double span = curve.peak().value() - idle;
  double best = 0.0;
  for (std::size_t i = 0; i <= grid; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(grid);
    const double secant = idle + span * u;
    if (secant <= 0.0) continue;
    const double dev = (curve.at(u).value() - secant) / secant;
    if (std::abs(dev) > std::abs(best)) best = dev;
  }
  return best;
}

double ldr_paper(const power::PowerCurve& curve) {
  // The paper's Tables 7/8 report LDR numerically equal to EPM (both
  // 1 - IPR for its linear profiles); see the header note.
  return epm(curve);
}

double pg(const power::PowerCurve& curve, double u) {
  check_peak(curve);
  require(u > 0.0 && u <= 1.0, "pg: utilization outside (0, 1]");
  const double p = curve.at(u) / curve.peak();
  return (p - u) / u;
}

double ppr(const power::PowerCurve& curve, double peak_throughput, double u) {
  require(peak_throughput > 0.0, "ppr: non-positive peak throughput");
  require(u > 0.0 && u <= 1.0, "ppr: utilization outside (0, 1]");
  const double power_w = curve.at(u).value();
  require(power_w > 0.0, "ppr: zero power");
  return peak_throughput * u / power_w;
}

ProportionalityReport analyze(const power::PowerCurve& curve) {
  ProportionalityReport r;
  r.dpr = dpr(curve);
  r.ipr = ipr(curve);
  r.epm = epm(curve);
  r.ldr_literal = ldr(curve);
  r.ldr_paper = ldr_paper(curve);
  return r;
}

double percent_of_peak(const power::PowerCurve& curve,
                       double utilization_percent, Watts reference_peak) {
  require(utilization_percent >= 0.0 && utilization_percent <= 100.0,
          "percent_of_peak: utilization % outside [0, 100]");
  const double peak = reference_peak.value() > 0.0 ? reference_peak.value()
                                                   : curve.peak().value();
  require(peak > 0.0, "percent_of_peak: zero reference peak");
  return 100.0 * curve.at(utilization_percent / 100.0).value() / peak;
}

bool is_sublinear_at(const power::PowerCurve& curve, double u,
                     Watts reference_peak) {
  require(u > 0.0 && u <= 1.0, "is_sublinear_at: utilization outside (0, 1]");
  require(reference_peak.value() > 0.0,
          "is_sublinear_at: reference peak must be positive");
  return curve.at(u).value() < u * reference_peak.value();
}

double sublinear_crossover(const power::PowerCurve& curve,
                           Watts reference_peak, std::size_t grid) {
  require(grid >= 2, "sublinear_crossover: need at least two grid points");
  for (std::size_t i = 1; i <= grid; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(grid);
    if (is_sublinear_at(curve, u, reference_peak)) return u;
  }
  return 1.0 + 1.0 / static_cast<double>(grid);  // never sub-linear
}

}  // namespace hcep::metrics
