#include "hcep/config/space.hpp"

#include "hcep/hw/catalog.hpp"
#include "hcep/util/error.hpp"

namespace hcep::config {

std::uint64_t TypeOptions::tuples() const {
  if (!operating_points.empty()) {
    return static_cast<std::uint64_t>(max_nodes) * operating_points.size();
  }
  const std::uint64_t cores =
      core_counts.empty() ? spec.cores : core_counts.size();
  const std::uint64_t freqs =
      frequencies.empty() ? spec.dvfs.size() : frequencies.size();
  return static_cast<std::uint64_t>(max_nodes) * cores * freqs;
}

ConfigSpace::ConfigSpace(std::vector<TypeOptions> types)
    : types_(std::move(types)) {
  require(!types_.empty(), "ConfigSpace: no node types");
  require(types_.size() <= kMaxTypes, "ConfigSpace: too many node types");
  std::uint64_t product = 1;
  for (const auto& t : types_) {
    require(t.max_nodes >= 1, "ConfigSpace: max_nodes must be >= 1");
    t.spec.validate();
    for (unsigned c : t.core_counts)
      require(c >= 1 && c <= t.spec.cores,
              "ConfigSpace: core choice out of range for " + t.spec.name);
    for (Hertz f : t.frequencies)
      require(f >= t.spec.dvfs.min() && f <= t.spec.dvfs.max(),
              "ConfigSpace: frequency choice outside ladder of " +
                  t.spec.name);
    for (const OperatingPoint& op : t.operating_points) {
      require(op.cores >= 1 && op.cores <= t.spec.cores,
              "ConfigSpace: operating-point cores out of range for " +
                  t.spec.name);
      require(op.frequency >= t.spec.dvfs.min() &&
                  op.frequency <= t.spec.dvfs.max(),
              "ConfigSpace: operating-point frequency outside ladder of " +
                  t.spec.name);
    }
    radix_.push_back(t.tuples() + 1);
    product *= radix_.back();
  }
  size_ = product - 1;  // exclude the all-absent combination
}

std::size_t ConfigSpace::points_for(std::size_t type) const {
  const TypeOptions& t = types_[type];
  if (!t.operating_points.empty()) return t.operating_points.size();
  const std::size_t cores =
      t.core_counts.empty() ? t.spec.cores : t.core_counts.size();
  const std::size_t freqs =
      t.frequencies.empty() ? t.spec.dvfs.size() : t.frequencies.size();
  return cores * freqs;
}

OperatingPoint ConfigSpace::point_at(std::size_t type,
                                     std::size_t point) const {
  const TypeOptions& t = types_[type];
  if (!t.operating_points.empty()) return t.operating_points[point];
  const std::size_t freqs =
      t.frequencies.empty() ? t.spec.dvfs.size() : t.frequencies.size();
  const std::size_t ci = point / freqs;
  const std::size_t fi = point % freqs;
  OperatingPoint op;
  op.cores = t.core_counts.empty() ? static_cast<unsigned>(ci + 1)
                                   : t.core_counts[ci];
  op.frequency =
      t.frequencies.empty() ? t.spec.dvfs.step(fi) : t.frequencies[fi];
  return op;
}

std::size_t ConfigSpace::decode_at(std::uint64_t index,
                                   DecodedGroup* out) const {
  require(index < size_, "ConfigSpace::decode_at: index out of range");
  std::uint64_t code = index + 1;  // code 0 is the excluded empty cluster

  std::size_t n = 0;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    const std::uint64_t digit = code % radix_[i];
    code /= radix_[i];
    if (digit == 0) continue;  // type absent

    // Digit layout per type: point is the fastest-varying axis (frequency
    // innermost for cross-product types), node count the slowest.
    const std::uint64_t points = points_for(i);
    const std::uint64_t d = digit - 1;
    out[n].type = static_cast<std::uint32_t>(i);
    out[n].point = static_cast<std::uint32_t>(d % points);
    out[n].count = static_cast<std::uint32_t>(d / points + 1);
    ++n;
  }
  return n;
}

model::ClusterSpec ConfigSpace::config_at(std::uint64_t index) const {
  require(index < size_, "ConfigSpace::config_at: index out of range");
  DecodedGroup decoded[kMaxTypes];  // constructor caps types at kMaxTypes
  const std::size_t n = decode_at(index, decoded);

  model::ClusterSpec cluster;
  cluster.groups.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const DecodedGroup& g = decoded[k];
    const OperatingPoint op = point_at(g.type, g.point);
    model::NodeGroup group;
    group.spec = types_[g.type].spec;
    group.count = g.count;
    group.active_cores = op.cores;
    group.frequency = op.frequency;
    cluster.groups.push_back(std::move(group));
  }
  return cluster;
}

void ConfigSpace::for_each(
    const std::function<void(const model::ClusterSpec&, std::uint64_t)>& fn)
    const {
  for (std::uint64_t i = 0; i < size_; ++i) fn(config_at(i), i);
}

void ConfigSpace::for_each_decoded(
    const std::function<void(const DecodedGroup*, std::size_t,
                             std::uint64_t)>& fn) const {
  // Mixed-radix odometer over per-type digits; `present` keeps the
  // DecodedGroup list compacted so fn never sees absent types.
  const std::size_t t = types_.size();
  std::vector<std::uint64_t> digit(t, 0);
  std::vector<std::uint64_t> points(t);
  for (std::size_t i = 0; i < t; ++i) points[i] = points_for(i);
  DecodedGroup groups[kMaxTypes];

  for (std::uint64_t index = 0; index < size_; ++index) {
    // Increment the odometer (code = index + 1, least-significant first).
    for (std::size_t i = 0; i < t; ++i) {
      if (++digit[i] < radix_[i]) break;
      digit[i] = 0;
    }
    std::size_t n = 0;
    for (std::size_t i = 0; i < t; ++i) {
      if (digit[i] == 0) continue;
      const std::uint64_t d = digit[i] - 1;
      groups[n].type = static_cast<std::uint32_t>(i);
      groups[n].point = static_cast<std::uint32_t>(d % points[i]);
      groups[n].count = static_cast<std::uint32_t>(d / points[i] + 1);
      ++n;
    }
    fn(groups, n, index);
  }
}

ConfigSpace make_a9_k10_space(unsigned arm, unsigned amd) {
  std::vector<TypeOptions> types;
  if (arm > 0) types.push_back(TypeOptions{hw::cortex_a9(), arm, {}, {}, {}});
  if (amd > 0) types.push_back(TypeOptions{hw::opteron_k10(), amd, {}, {}, {}});
  return ConfigSpace(std::move(types));
}

}  // namespace hcep::config
