#include "hcep/config/space.hpp"

#include "hcep/hw/catalog.hpp"
#include "hcep/util/error.hpp"

namespace hcep::config {

std::uint64_t TypeOptions::tuples() const {
  if (!operating_points.empty()) {
    return static_cast<std::uint64_t>(max_nodes) * operating_points.size();
  }
  const std::uint64_t cores =
      core_counts.empty() ? spec.cores : core_counts.size();
  const std::uint64_t freqs =
      frequencies.empty() ? spec.dvfs.size() : frequencies.size();
  return static_cast<std::uint64_t>(max_nodes) * cores * freqs;
}

ConfigSpace::ConfigSpace(std::vector<TypeOptions> types)
    : types_(std::move(types)) {
  require(!types_.empty(), "ConfigSpace: no node types");
  std::uint64_t product = 1;
  for (const auto& t : types_) {
    require(t.max_nodes >= 1, "ConfigSpace: max_nodes must be >= 1");
    t.spec.validate();
    for (unsigned c : t.core_counts)
      require(c >= 1 && c <= t.spec.cores,
              "ConfigSpace: core choice out of range for " + t.spec.name);
    for (Hertz f : t.frequencies)
      require(f >= t.spec.dvfs.min() && f <= t.spec.dvfs.max(),
              "ConfigSpace: frequency choice outside ladder of " +
                  t.spec.name);
    for (const OperatingPoint& op : t.operating_points) {
      require(op.cores >= 1 && op.cores <= t.spec.cores,
              "ConfigSpace: operating-point cores out of range for " +
                  t.spec.name);
      require(op.frequency >= t.spec.dvfs.min() &&
                  op.frequency <= t.spec.dvfs.max(),
              "ConfigSpace: operating-point frequency outside ladder of " +
                  t.spec.name);
    }
    radix_.push_back(t.tuples() + 1);
    product *= radix_.back();
  }
  size_ = product - 1;  // exclude the all-absent combination
}

model::ClusterSpec ConfigSpace::config_at(std::uint64_t index) const {
  require(index < size_, "ConfigSpace::config_at: index out of range");
  std::uint64_t code = index + 1;  // code 0 is the excluded empty cluster

  model::ClusterSpec cluster;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    const std::uint64_t digit = code % radix_[i];
    code /= radix_[i];
    if (digit == 0) continue;  // type absent

    const TypeOptions& t = types_[i];
    model::NodeGroup group;
    group.spec = t.spec;

    std::uint64_t d = digit - 1;
    if (!t.operating_points.empty()) {
      const std::uint64_t pi = d % t.operating_points.size();
      d /= t.operating_points.size();
      group.count = static_cast<unsigned>(d + 1);
      group.active_cores = t.operating_points[pi].cores;
      group.frequency = t.operating_points[pi].frequency;
    } else {
      const std::uint64_t freq_count =
          t.frequencies.empty() ? t.spec.dvfs.size() : t.frequencies.size();
      const std::uint64_t core_count =
          t.core_counts.empty() ? t.spec.cores : t.core_counts.size();
      const std::uint64_t fi = d % freq_count;
      d /= freq_count;
      const std::uint64_t ci = d % core_count;
      d /= core_count;
      group.count = static_cast<unsigned>(d + 1);
      group.active_cores = t.core_counts.empty()
                               ? static_cast<unsigned>(ci + 1)
                               : t.core_counts[ci];
      group.frequency = t.frequencies.empty() ? t.spec.dvfs.step(fi)
                                              : t.frequencies[fi];
    }
    cluster.groups.push_back(std::move(group));
  }
  return cluster;
}

void ConfigSpace::for_each(
    const std::function<void(const model::ClusterSpec&, std::uint64_t)>& fn)
    const {
  for (std::uint64_t i = 0; i < size_; ++i) fn(config_at(i), i);
}

ConfigSpace make_a9_k10_space(unsigned arm, unsigned amd) {
  std::vector<TypeOptions> types;
  if (arm > 0) types.push_back(TypeOptions{hw::cortex_a9(), arm, {}, {}, {}});
  if (amd > 0) types.push_back(TypeOptions{hw::opteron_k10(), amd, {}, {}, {}});
  return ConfigSpace(std::move(types));
}

}  // namespace hcep::config
