#include "hcep/config/prune.hpp"

#include <vector>

#include "hcep/util/error.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::config {

namespace {

struct Candidate {
  OperatingPoint op;
  double throughput = 0.0;  ///< per node, units/s
  Watts busy{};
};

/// True when b dominates a: at least the throughput at no more power,
/// strictly better in one coordinate.
bool dominates(const Candidate& b, const Candidate& a) {
  const bool geq = b.throughput >= a.throughput && b.busy <= a.busy;
  const bool strict = b.throughput > a.throughput || b.busy < a.busy;
  return geq && strict;
}

}  // namespace

ConfigSpace prune_operating_points(const ConfigSpace& space,
                                   const workload::Workload& workload,
                                   PruneStats* stats) {
  if (stats) {
    stats->configurations_before = space.size();
    stats->per_type.clear();
  }

  std::vector<TypeOptions> pruned_types;
  for (const TypeOptions& t : space.types()) {
    require(workload.has_node(t.spec.name),
            "prune_operating_points: workload '" + workload.name +
                "' lacks demand for '" + t.spec.name + "'");
    const auto& demand = workload.demand_for(t.spec.name);
    const double kappa = workload.power_scale_for(t.spec.name);

    // Materialize the type's operating points.
    std::vector<Candidate> candidates;
    if (!t.operating_points.empty()) {
      for (const OperatingPoint& op : t.operating_points) {
        candidates.push_back(Candidate{op, 0.0, Watts{}});
      }
    } else {
      std::vector<unsigned> cores = t.core_counts;
      if (cores.empty()) {
        for (unsigned c = 1; c <= t.spec.cores; ++c) cores.push_back(c);
      }
      std::vector<Hertz> freqs = t.frequencies;
      if (freqs.empty()) freqs = t.spec.dvfs.steps();
      for (unsigned c : cores) {
        for (Hertz f : freqs) {
          candidates.push_back(Candidate{OperatingPoint{c, f}, 0.0, Watts{}});
        }
      }
    }
    for (auto& cand : candidates) {
      cand.throughput = workload::unit_throughput(
          demand, t.spec, cand.op.cores, cand.op.frequency);
      cand.busy = workload::busy_power(demand, t.spec, cand.op.cores,
                                       cand.op.frequency, kappa);
    }

    // Keep the non-dominated set.
    std::vector<OperatingPoint> kept;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      bool is_dominated = false;
      for (std::size_t j = 0; j < candidates.size() && !is_dominated; ++j) {
        if (i == j) continue;
        if (dominates(candidates[j], candidates[i])) is_dominated = true;
        // Exact ties: keep the first occurrence only.
        if (!is_dominated && j < i &&
            candidates[j].throughput == candidates[i].throughput &&
            candidates[j].busy == candidates[i].busy) {
          is_dominated = true;
        }
      }
      if (!is_dominated) kept.push_back(candidates[i].op);
    }
    require(!kept.empty(), "prune_operating_points: pruned everything");
    if (stats) stats->per_type.emplace_back(kept.size(), candidates.size());

    TypeOptions nt;
    nt.spec = t.spec;
    nt.max_nodes = t.max_nodes;
    nt.operating_points = std::move(kept);
    pruned_types.push_back(std::move(nt));
  }

  ConfigSpace pruned(std::move(pruned_types));
  if (stats) stats->configurations_after = pruned.size();
  return pruned;
}

}  // namespace hcep::config
