#include "hcep/config/evaluation_set.hpp"

#include "hcep/util/error.hpp"

namespace hcep::config {

Evaluation EvaluationSet::materialize(std::size_t i) const {
  require(space_ != nullptr,
          "EvaluationSet::materialize: set not bound to a ConfigSpace");
  require(i < size(), "EvaluationSet::materialize: index out of range");
  Evaluation e;
  e.index = i;
  e.config = space_->config_at(i);
  e.time = this->time(i);
  e.energy = energy(i);
  e.idle_power = idle_power(i);
  e.busy_power = busy_power(i);
  return e;
}

}  // namespace hcep::config
