#include "hcep/config/operating_points.hpp"

#include <algorithm>

#include "hcep/util/error.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::config {

OperatingPointTable::OperatingPointTable(const ConfigSpace& space,
                                         const workload::Workload& workload)
    : units_per_job_(workload.units_per_job),
      io_request_interval_(workload.io_request_interval) {
  types_.reserve(space.types().size());
  for (std::size_t i = 0; i < space.types().size(); ++i) {
    const TypeOptions& t = space.types()[i];
    require(workload.has_node(t.spec.name),
            "OperatingPointTable: workload '" + workload.name +
                "' lacks demand for node type '" + t.spec.name + "'");
    const workload::NodeDemand& d = workload.demand_for(t.spec.name);
    const double kappa = workload.power_scale_for(t.spec.name);
    const Hertz f_max = t.spec.dvfs.max();

    TypeTable table;
    table.idle_power = t.spec.power.idle;
    const std::size_t points = space.points_for(i);
    table.points.reserve(points);
    for (std::size_t p = 0; p < points; ++p) {
      const OperatingPoint op = space.point_at(i, p);
      const workload::UnitTime ut =
          workload::unit_time(d, t.spec, op.cores, op.frequency);

      OperatingPointEntry e;
      e.t_core = ut.core;
      e.t_mem = ut.mem;
      e.t_cpu = ut.cpu;
      e.t_io = ut.io;
      e.throughput =
          workload::unit_throughput(d, t.spec, op.cores, op.frequency);
      e.busy_power =
          workload::busy_power(d, t.spec, op.cores, op.frequency, kappa);
      // Fold (cores * dvfs * kappa) into the Table 2 rates exactly as the
      // TimeEnergyModel energy rows group them, so the fused path repeats
      // the naive path's floating-point operations verbatim.
      const double cores = static_cast<double>(op.cores);
      const double dvfs = t.spec.power.dvfs_scale(op.frequency, f_max);
      e.p_core_active = t.spec.power.core_active * (cores * dvfs * kappa);
      e.p_core_stall = t.spec.power.core_stalled * (cores * dvfs * kappa);
      e.p_mem = t.spec.power.mem_active * kappa;
      e.p_net = t.spec.power.net_active * kappa;
      table.points.push_back(e);
    }
    types_.push_back(std::move(table));
  }
}

PointMetrics OperatingPointTable::evaluate(const DecodedGroup* groups,
                                           std::size_t n,
                                           double units) const {
  // Stack scratch (kMaxTypes caps n): one table lookup per group, and the
  // time-pass intermediates carry over into the energy pass instead of
  // being recomputed. Same floating-point operations in the same order as
  // TimeEnergyModel, so both passes agree to machine precision.
  const OperatingPointEntry* ent[kMaxTypes];
  double cnt[kMaxTypes];
  Watts idle[kMaxTypes];
  double per_node_units[kMaxTypes];
  Seconds t_io[kMaxTypes];

  // Rate-matched split: work shares are proportional to group throughput.
  double total_rate = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    ent[k] = &entry(groups[k].type, groups[k].point);
    cnt[k] = static_cast<double>(groups[k].count);
    idle[k] = idle_power(groups[k].type);
    total_rate += ent[k]->throughput * cnt[k];
  }
  // Division is the hot loop's costliest operation: one reciprocal of the
  // cluster rate replaces the per-group share divisions. The per-node
  // share units*(thr*cnt)/total/cnt reduces to units*thr/total — within
  // an ulp of the naive grouping, far inside the 1e-9 oracle tolerance.
  const double inv_total_rate = 1.0 / total_rate;

  // The typed arithmetic below lowers to the exact double operations of
  // the pre-units implementation (Quantity is a transparent double and
  // W * s -> J is a single multiply), so fused/naive equivalence holds
  // bit-for-bit.
  PointMetrics out;
  // Pass 1: per-group completion times -> T_P (Table 2 time rows).
  for (std::size_t k = 0; k < n; ++k) {
    const OperatingPointEntry& e = *ent[k];
    per_node_units[k] = units * e.throughput * inv_total_rate;
    const Seconds t_cpu = e.t_cpu * per_node_units[k];
    const Seconds io_transfer = e.t_io * per_node_units[k];
    const Seconds io_floor = io_request_interval_ / cnt[k];
    t_io[k] = std::max(io_transfer, io_floor);
    out.time = std::max(out.time, std::max(t_cpu, t_io[k]));
  }

  // Pass 2: Table 2 energy rows plus the cluster power floors, summed in
  // the same order as TimeEnergyModel::job_energy.
  for (std::size_t k = 0; k < n; ++k) {
    const OperatingPointEntry& e = *ent[k];
    const Seconds t_core = e.t_core * per_node_units[k];
    const Seconds t_mem = e.t_mem * per_node_units[k];
    const Seconds stall = std::max(Seconds{}, t_mem - t_core);

    const Joules e_cpu_active = e.p_core_active * t_core * cnt[k];
    const Joules e_cpu_stall = e.p_core_stall * stall * cnt[k];
    const Joules e_mem = e.p_mem * t_mem * cnt[k];
    const Joules e_net = e.p_net * t_io[k] * cnt[k];
    const Joules e_idle = idle[k] * out.time * cnt[k];
    out.energy += e_cpu_active + e_cpu_stall + e_mem + e_net + e_idle;

    out.idle_power += idle[k] * cnt[k];
    out.busy_power += e.busy_power * cnt[k];
  }
  return out;
}

}  // namespace hcep::config
