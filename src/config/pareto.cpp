#include "hcep/config/pareto.hpp"

#include <algorithm>
#include <limits>

#include "hcep/util/error.hpp"

namespace hcep::config {

std::vector<Evaluation> evaluate_space(const ConfigSpace& space,
                                       const workload::Workload& workload,
                                       ThreadPool* pool) {
  // Pre-check type coverage once instead of throwing per configuration.
  for (const auto& t : space.types()) {
    require(workload.has_node(t.spec.name),
            "evaluate_space: workload '" + workload.name +
                "' lacks demand for node type '" + t.spec.name + "'");
  }

  std::vector<Evaluation> out(space.size());
  auto evaluate_one = [&](std::size_t i) {
    model::ClusterSpec cfg = space.config_at(i);
    model::TimeEnergyModel m(cfg, workload);
    Evaluation& e = out[i];
    e.index = i;
    e.time = m.execution_time(workload.units_per_job).t_p;
    e.energy = m.job_energy(workload.units_per_job).e_p;
    e.idle_power = m.idle_power();
    e.busy_power = m.busy_power();
    e.config = std::move(cfg);
  };

  ThreadPool& p = pool ? *pool : ThreadPool::global();
  parallel_for(p, 0, space.size(), evaluate_one, 256);
  return out;
}

std::vector<Evaluation> pareto_front(std::vector<Evaluation> evaluations) {
  if (evaluations.empty()) return evaluations;
  std::sort(evaluations.begin(), evaluations.end(),
            [](const Evaluation& a, const Evaluation& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.energy < b.energy;
            });
  std::vector<Evaluation> front;
  double best_energy = std::numeric_limits<double>::infinity();
  for (auto& e : evaluations) {
    if (e.energy.value() < best_energy) {
      best_energy = e.energy.value();
      front.push_back(std::move(e));
    }
  }
  return front;
}

std::optional<Evaluation> min_energy_within_deadline(
    const std::vector<Evaluation>& evaluations, Seconds deadline) {
  std::optional<Evaluation> best;
  for (const auto& e : evaluations) {
    if (e.time > deadline) continue;
    if (!best || e.energy < best->energy) best = e;
  }
  return best;
}

std::optional<Evaluation> fastest(
    const std::vector<Evaluation>& evaluations) {
  std::optional<Evaluation> best;
  for (const auto& e : evaluations) {
    if (!best || e.time < best->time) best = e;
  }
  return best;
}

double energy_delay_product(const Evaluation& e) {
  return e.energy.value() * e.time.value();
}

double energy_delay2_product(const Evaluation& e) {
  return e.energy.value() * e.time.value() * e.time.value();
}

std::optional<Evaluation> min_edp(const std::vector<Evaluation>& evaluations,
                                  bool squared) {
  std::optional<Evaluation> best;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& e : evaluations) {
    const double score =
        squared ? energy_delay2_product(e) : energy_delay_product(e);
    if (score < best_score) {
      best_score = score;
      best = e;
    }
  }
  return best;
}

}  // namespace hcep::config
