#include "hcep/config/pareto.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "hcep/obs/obs.hpp"
#include "hcep/util/error.hpp"

namespace hcep::config {

EvaluationSet evaluate_space(const ConfigSpace& space,
                             const workload::Workload& workload,
                             ThreadPool* pool) {
  // One heavyweight pass: per-tuple unit times, throughputs and power
  // rates. Also validates workload coverage of every type up front.
  const OperatingPointTable table(space, workload);

  EvaluationSet out(&space, space.size());

  const std::size_t num_types = space.types().size();
  std::uint64_t radix[kMaxTypes];
  std::uint64_t points[kMaxTypes];
  for (std::size_t i = 0; i < num_types; ++i) {
    radix[i] = space.types()[i].tuples() + 1;
    points[i] = space.points_for(i);
  }

  // Chunked sweep: each chunk seeds a mixed-radix odometer with one
  // div/mod chain, then advances digits incrementally — the hot loop is
  // pure table arithmetic with no per-configuration division and no
  // ClusterSpec/NodeSpec/Workload construction or heap allocation.
  constexpr std::uint64_t kChunk = 1024;
  const std::uint64_t n_cfg = space.size();
  const std::uint64_t n_chunks = (n_cfg + kChunk - 1) / kChunk;

#if HCEP_OBS
  // Chunks execute on pool workers, so the caller's observer is captured
  // here rather than re-resolved per chunk (workers only see the global
  // fallback). The metrics fast path is per-thread sharded, so concurrent
  // chunk writers never contend.
  obs::Observer* o = obs::current();
  obs::MetricId configs_m = 0, chunks_m = 0, chunk_us_m = 0;
  if (o != nullptr) {
    configs_m = o->metrics.counter("sweep.configs");
    chunks_m = o->metrics.counter("sweep.chunks");
    chunk_us_m = o->metrics.histogram(
        "sweep.chunk_us", {10, 50, 100, 500, 1000, 5000, 10000, 50000});
  }
#endif

  auto sweep_chunk = [&](std::size_t c) {
#if HCEP_OBS
    const auto chunk_start = o != nullptr
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
#endif
    const std::uint64_t begin = c * kChunk;
    const std::uint64_t end = std::min(n_cfg, begin + kChunk);

    // Per-type digit plus its decoded (point, count); digit 0 = absent.
    std::uint64_t digit[kMaxTypes];
    std::uint32_t point[kMaxTypes];
    std::uint32_t count[kMaxTypes];
    std::uint64_t code = begin + 1;  // code 0 is the empty cluster
    for (std::size_t i = 0; i < num_types; ++i) {
      digit[i] = code % radix[i];
      code /= radix[i];
      const std::uint64_t d = digit[i] > 0 ? digit[i] - 1 : 0;
      point[i] = static_cast<std::uint32_t>(d % points[i]);
      count[i] = static_cast<std::uint32_t>(d / points[i] + 1);
    }

    DecodedGroup groups[kMaxTypes];
    for (std::uint64_t index = begin; index < end; ++index) {
      std::size_t n = 0;
      for (std::size_t i = 0; i < num_types; ++i) {
        if (digit[i] == 0) continue;
        groups[n].type = static_cast<std::uint32_t>(i);
        groups[n].count = count[i];
        groups[n].point = point[i];
        ++n;
      }
      const PointMetrics m = table.evaluate_job(groups, n);
      out.set(index, m.time, m.energy, m.idle_power, m.busy_power);

      // Advance the odometer (least-significant digit first).
      for (std::size_t i = 0; i < num_types; ++i) {
        if (++digit[i] == radix[i]) {
          digit[i] = 0;  // carry into the next type
          continue;
        }
        if (digit[i] == 1) {
          point[i] = 0;
          count[i] = 1;
        } else if (++point[i] == points[i]) {
          point[i] = 0;
          ++count[i];
        }
        break;
      }
    }
#if HCEP_OBS
    if (o != nullptr) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - chunk_start);
      o->metrics.add(configs_m, end - begin);
      o->metrics.add(chunks_m);
      o->metrics.observe(chunk_us_m, static_cast<double>(elapsed.count()));
    }
#endif
  };

  ThreadPool& p = pool ? *pool : ThreadPool::global();
  parallel_for(p, 0, n_chunks, sweep_chunk, 1);
  return out;
}

std::vector<Evaluation> evaluate_space_naive(
    const ConfigSpace& space, const workload::Workload& workload,
    ThreadPool* pool) {
  // Pre-check type coverage once instead of throwing per configuration.
  for (const auto& t : space.types()) {
    require(workload.has_node(t.spec.name),
            "evaluate_space: workload '" + workload.name +
                "' lacks demand for node type '" + t.spec.name + "'");
  }

  std::vector<Evaluation> out(space.size());
  auto evaluate_one = [&](std::size_t i) {
    model::ClusterSpec cfg = space.config_at(i);
    model::TimeEnergyModel m(cfg, workload);
    Evaluation& e = out[i];
    e.index = i;
    e.time = m.execution_time(workload.units_per_job).t_p;
    e.energy = m.job_energy(workload.units_per_job).e_p;
    e.idle_power = m.idle_power();
    e.busy_power = m.busy_power();
    e.config = std::move(cfg);
  };

  ThreadPool& p = pool ? *pool : ThreadPool::global();
  parallel_for(p, 0, space.size(), evaluate_one, 256);
  return out;
}

std::vector<Evaluation> pareto_front(std::vector<Evaluation> evaluations) {
  if (evaluations.empty()) return evaluations;
  std::sort(evaluations.begin(), evaluations.end(),
            [](const Evaluation& a, const Evaluation& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.energy < b.energy;
            });
  std::vector<Evaluation> front;
  double best_energy = std::numeric_limits<double>::infinity();
  for (auto& e : evaluations) {
    if (e.energy.value() < best_energy) {
      best_energy = e.energy.value();
      front.push_back(std::move(e));
    }
  }
  return front;
}

std::vector<Evaluation> pareto_front(const EvaluationSet& evals) {
  if (evals.empty()) return {};
  const std::vector<double>& time = evals.times();
  const std::vector<double>& energy = evals.energies();
  const std::size_t n = evals.size();

  // Bucketed domination prefilter: bucket the time axis, take the prefix
  // minimum of per-bucket energies, and drop every point beaten on energy
  // by some strictly earlier bucket (which is strictly faster, so the
  // dropped point is dominated). Frontier members are never dominated and
  // always survive; the sort below then runs on a small candidate set.
  double t_lo = time[0];
  double t_hi = time[0];
  for (std::size_t i = 1; i < n; ++i) {
    t_lo = std::min(t_lo, time[i]);
    t_hi = std::max(t_hi, time[i]);
  }
  const std::size_t kBuckets = 1024;
  const double width = (t_hi - t_lo) / static_cast<double>(kBuckets);
  std::vector<double> bucket_min;
  const double inf = std::numeric_limits<double>::infinity();
  auto bucket_of = [&](double t) {
    const auto b = static_cast<std::size_t>((t - t_lo) / width);
    return std::min(b, kBuckets - 1);
  };
  if (width > 0.0) {
    bucket_min.assign(kBuckets, inf);
    for (std::size_t i = 0; i < n; ++i) {
      double& slot = bucket_min[bucket_of(time[i])];
      slot = std::min(slot, energy[i]);
    }
    double running = inf;
    for (double& slot : bucket_min) {  // prefix min over faster buckets
      const double here = slot;
      slot = running;
      running = std::min(running, here);
    }
  }

  // Compact (time, energy, index) keys sort contiguously — no random
  // access into the metric columns per comparison, and no string-bearing
  // Evaluation structs are swapped.
  struct Key {
    double time;
    double energy;
    std::uint64_t index;
  };
  std::vector<Key> keys;
  for (std::size_t i = 0; i < n; ++i) {
    if (width > 0.0 && bucket_min[bucket_of(time[i])] <= energy[i]) {
      continue;  // dominated by a strictly faster bucket's best energy
    }
    keys.push_back(Key{time[i], energy[i], i});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.energy != b.energy) return a.energy < b.energy;
    return a.index < b.index;
  });

  std::vector<Evaluation> front;
  double best_energy = std::numeric_limits<double>::infinity();
  for (const Key& k : keys) {
    if (k.energy < best_energy) {
      best_energy = k.energy;
      front.push_back(evals.materialize(k.index));
    }
  }
  return front;
}

std::optional<Evaluation> min_energy_within_deadline(
    const std::vector<Evaluation>& evaluations, Seconds deadline) {
  std::optional<Evaluation> best;
  for (const auto& e : evaluations) {
    if (e.time > deadline) continue;
    if (!best || e.energy < best->energy) best = e;
  }
  return best;
}

std::optional<Evaluation> min_energy_within_deadline(
    const EvaluationSet& evals, Seconds deadline) {
  std::size_t best = evals.size();
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < evals.size(); ++i) {
    if (evals.times()[i] > deadline.value()) continue;
    if (evals.energies()[i] < best_energy) {
      best_energy = evals.energies()[i];
      best = i;
    }
  }
  if (best == evals.size()) return std::nullopt;
  return evals.materialize(best);
}

std::optional<Evaluation> fastest(
    const std::vector<Evaluation>& evaluations) {
  std::optional<Evaluation> best;
  for (const auto& e : evaluations) {
    if (!best || e.time < best->time) best = e;
  }
  return best;
}

std::optional<Evaluation> fastest(const EvaluationSet& evals) {
  if (evals.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < evals.size(); ++i) {
    if (evals.times()[i] < evals.times()[best]) best = i;
  }
  return evals.materialize(best);
}

JouleSeconds energy_delay_product(const Evaluation& e) {
  return e.energy * e.time;
}

JouleSecondsSquared energy_delay2_product(const Evaluation& e) {
  return e.energy * e.time * e.time;
}

std::optional<Evaluation> min_edp(const std::vector<Evaluation>& evaluations,
                                  bool squared) {
  std::optional<Evaluation> best;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& e : evaluations) {
    const double score = squared ? energy_delay2_product(e).value()
                                 : energy_delay_product(e).value();
    if (score < best_score) {
      best_score = score;
      best = e;
    }
  }
  return best;
}

std::optional<Evaluation> min_edp(const EvaluationSet& evals, bool squared) {
  std::size_t best = evals.size();
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < evals.size(); ++i) {
    const double t = evals.times()[i];
    const double score = evals.energies()[i] * t * (squared ? t : 1.0);
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  if (best == evals.size()) return std::nullopt;
  return evals.materialize(best);
}

}  // namespace hcep::config
