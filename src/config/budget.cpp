#include "hcep/config/budget.hpp"

#include "hcep/hw/catalog.hpp"
#include "hcep/util/error.hpp"

namespace hcep::config {

using namespace hcep::literals;

Watts mix_nameplate_power(unsigned n_a9, unsigned n_k10) {
  return hw::cortex_a9().nameplate_peak * static_cast<double>(n_a9) +
         hw::opteron_k10().nameplate_peak * static_cast<double>(n_k10) +
         hw::switch_power_for(n_a9);
}

unsigned substitution_ratio() {
  // 60 W / (5 W + 20 W / 8) = 8 (footnote 3).
  const double a9_amortized =
      hw::cortex_a9().nameplate_peak.value() +
      hw::a9_switch_power().value() /
          static_cast<double>(hw::a9_nodes_per_switch());
  return static_cast<unsigned>(hw::opteron_k10().nameplate_peak.value() /
                               a9_amortized);
}

std::vector<model::ClusterSpec> budget_mixes(Watts budget, unsigned k10_step) {
  require(budget.value() > 0.0, "budget_mixes: non-positive budget");
  require(k10_step >= 1, "budget_mixes: k10_step must be >= 1");

  const auto max_k10 = static_cast<unsigned>(
      budget.value() / hw::opteron_k10().nameplate_peak.value());
  require(max_k10 >= 1, "budget_mixes: budget below one K10 node");

  const unsigned ratio = substitution_ratio();
  std::vector<model::ClusterSpec> out;
  for (unsigned removed = 0; removed <= max_k10; removed += k10_step) {
    const unsigned n_k10 = max_k10 - removed;
    const unsigned n_a9 = removed * ratio;
    require(mix_nameplate_power(n_a9, n_k10) <= budget,
            "budget_mixes: internal accounting exceeded the budget");
    out.push_back(model::make_a9_k10_cluster(n_a9, n_k10));
    if (n_k10 < k10_step) break;  // next step would underflow
  }
  return out;
}

unsigned substitution_ratio_for(const hw::NodeSpec& wimpy,
                                const hw::NodeSpec& brawny) {
  const double wimpy_amortized =
      wimpy.nameplate_peak.value() +
      hw::a9_switch_power().value() /
          static_cast<double>(hw::a9_nodes_per_switch());
  const auto ratio = static_cast<unsigned>(brawny.nameplate_peak.value() /
                                           wimpy_amortized);
  require(ratio >= 1, "substitution_ratio_for: wimpy node costs more than "
                      "the brawny node");
  return ratio;
}

std::vector<model::ClusterSpec> budget_mixes_for(const hw::NodeSpec& wimpy,
                                                 const hw::NodeSpec& brawny,
                                                 Watts budget,
                                                 unsigned brawny_step) {
  require(budget.value() > 0.0, "budget_mixes_for: non-positive budget");
  require(brawny_step >= 1, "budget_mixes_for: brawny_step must be >= 1");
  const auto max_brawny = static_cast<unsigned>(
      budget.value() / brawny.nameplate_peak.value());
  require(max_brawny >= 1, "budget_mixes_for: budget below one brawny node");

  const unsigned ratio = substitution_ratio_for(wimpy, brawny);
  std::vector<model::ClusterSpec> out;
  for (unsigned removed = 0; removed <= max_brawny;
       removed += brawny_step) {
    const unsigned n_brawny = max_brawny - removed;
    const unsigned n_wimpy = removed * ratio;
    out.push_back(
        model::make_two_type_cluster(wimpy, n_wimpy, brawny, n_brawny));
    require(out.back().nameplate_power() <= budget,
            "budget_mixes_for: internal accounting exceeded the budget");
    if (n_brawny < brawny_step) break;
  }
  return out;
}

std::vector<model::ClusterSpec> paper_budget_mixes() {
  auto mixes = budget_mixes(1_kW, 4);
  require(mixes.size() == 5, "paper_budget_mixes: expected five 1 kW mixes");
  return mixes;
}

}  // namespace hcep::config
