#include "hcep/kernels/kvstore.hpp"

#include <bit>
#include <cstring>

#include "hcep/util/error.hpp"

namespace hcep::kernels {

namespace {
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

FlatKvTable::FlatKvTable(std::size_t capacity) {
  require(capacity >= 1, "FlatKvTable: zero capacity");
  const std::size_t pow2 = std::bit_ceil(capacity * 2);  // load factor <= 0.5
  slots_.resize(pow2);
  mask_ = pow2 - 1;
}

std::size_t FlatKvTable::bucket(std::uint64_t key) const {
  return static_cast<std::size_t>(mix(key)) & mask_;
}

bool FlatKvTable::set(std::uint64_t key, const unsigned char* value) {
  require(key != kEmpty, "FlatKvTable: reserved key");
  std::size_t i = bucket(key);
  last_probes_ = 0;
  for (std::size_t probes = 0; probes <= mask_; ++probes) {
    ++last_probes_;
    Slot& s = slots_[i];
    if (s.key == kEmpty || s.key == key) {
      if (s.key == kEmpty) {
        if (2 * (size_ + 1) > slots_.size()) return false;  // keep LF <= 0.5
        ++size_;
      }
      s.key = key;
      std::memcpy(s.value, value, kValueSize);
      return true;
    }
    i = (i + 1) & mask_;
  }
  return false;
}

bool FlatKvTable::get(std::uint64_t key, unsigned char* out) const {
  std::size_t i = bucket(key);
  last_probes_ = 0;
  for (std::size_t probes = 0; probes <= mask_; ++probes) {
    ++last_probes_;
    const Slot& s = slots_[i];
    if (s.key == key) {
      std::memcpy(out, s.value, kValueSize);
      return true;
    }
    if (s.key == kEmpty) return false;
    i = (i + 1) & mask_;
  }
  return false;
}

KvStoreKernel::KvStoreKernel(std::size_t entries) : entries_(entries) {
  require(entries_ >= 1, "KvStoreKernel: need at least one entry");
}

KernelResult KvStoreKernel::run(std::uint64_t units, Rng& rng) {
  Rng local = rng.split(3);
  FlatKvTable table(entries_);

  // Populate with `entries_` fixed-size values (memslap uses fixed
  // key/value sizes, uniform popularity).
  unsigned char value[FlatKvTable::kValueSize];
  for (std::size_t k = 0; k < entries_; ++k) {
    for (auto& b : value)
      b = static_cast<unsigned char>(mix(k * 1315423911ULL + &b - value));
    const bool ok = table.set(static_cast<std::uint64_t>(k), value);
    require(ok, "KvStoreKernel: population overflow");
  }

  // 9:1 GET:SET mix, uniform key popularity.
  constexpr std::size_t kRequestBytes = 40;  // key + protocol overhead
  constexpr std::size_t kResponseBytes = FlatKvTable::kValueSize + 24;
  const std::uint64_t bytes_per_get = kRequestBytes + kResponseBytes;

  OpCounts ops;
  std::uint64_t checksum = 0;
  std::uint64_t served = 0;
  unsigned char out[FlatKvTable::kValueSize];
  std::uint64_t requests = 0;
  while (served < units) {
    const std::uint64_t key = local.uniform_int(entries_);
    ++requests;
    if (requests % 10 == 0) {  // SET
      for (std::size_t b = 0; b < sizeof(value); ++b)
        value[b] = static_cast<unsigned char>(key + b);
      table.set(key, value);
      served += kRequestBytes + FlatKvTable::kValueSize;
      ops.io_bytes += Bytes{kRequestBytes + FlatKvTable::kValueSize};
    } else {  // GET
      const bool hit = table.get(key, out);
      require(hit, "KvStoreKernel: populated key missing");
      checksum = checksum * 1099511628211ULL + out[key % sizeof(out)];
      served += bytes_per_get;
      ops.io_bytes += Bytes{static_cast<double>(bytes_per_get)};
    }
    // Hash + probe walk + copy: ~30 integer ops per request.
    ops.int_ops += 22 + 8 * table.last_probes();
    ops.branch_ops += 4 + table.last_probes();
    // Each probe touches a 72B slot outside the cache (18 MB table), and
    // the value copy streams kValueSize bytes.
    ops.mem_traffic +=
        Bytes{static_cast<double>(table.last_probes() * 72 +
                                  FlatKvTable::kValueSize)};
  }
  ops.work_units = served;

  KernelResult result;
  result.counts = ops;
  result.checksum = checksum;
  return result;
}

}  // namespace hcep::kernels
