#include "hcep/kernels/rsa.hpp"

#include <bit>

#include "hcep/util/error.hpp"

namespace hcep::kernels {

namespace {

constexpr std::size_t kLimbs = UInt2048::kLimbs;
constexpr std::size_t kWideLimbs = 2 * kLimbs;
using Wide = std::array<std::uint64_t, kWideLimbs>;
__extension__ typedef unsigned __int128 uint128;

std::size_t wide_bit_length(const Wide& w) {
  for (std::size_t i = kWideLimbs; i-- > 0;) {
    if (w[i] != 0)
      return i * 64 + (64 - static_cast<std::size_t>(std::countl_zero(w[i])));
  }
  return 0;
}

/// Compares w with (n << shift); returns <0, 0, >0.
int compare_shifted(const Wide& w, const UInt2048& n, std::size_t shift) {
  const std::size_t limb_shift = shift / 64;
  const unsigned bit_shift = static_cast<unsigned>(shift % 64);
  // Virtual limb i of (n << shift).
  auto shifted_limb = [&](std::size_t i) -> std::uint64_t {
    if (i < limb_shift) return 0;
    const std::size_t j = i - limb_shift;
    std::uint64_t lo = j < kLimbs ? n.limb(j) : 0;
    if (bit_shift == 0) return lo;
    std::uint64_t carry = (j >= 1 && j - 1 < kLimbs) ? n.limb(j - 1) : 0;
    return (lo << bit_shift) | (carry >> (64 - bit_shift));
  };
  for (std::size_t i = kWideLimbs; i-- > 0;) {
    const std::uint64_t a = w[i];
    const std::uint64_t b = shifted_limb(i);
    if (a != b) return a < b ? -1 : 1;
  }
  return 0;
}

/// w -= (n << shift); requires w >= (n << shift).
void sub_shifted(Wide& w, const UInt2048& n, std::size_t shift,
                 std::uint64_t& add_ops) {
  const std::size_t limb_shift = shift / 64;
  const unsigned bit_shift = static_cast<unsigned>(shift % 64);
  std::uint64_t borrow = 0;
  for (std::size_t i = limb_shift; i < kWideLimbs; ++i) {
    const std::size_t j = i - limb_shift;
    std::uint64_t lo = j < kLimbs ? n.limb(j) : 0;
    std::uint64_t sub;
    if (bit_shift == 0) {
      sub = lo;
    } else {
      std::uint64_t carry = (j >= 1 && j - 1 < kLimbs) ? n.limb(j - 1) : 0;
      sub = (lo << bit_shift) | (carry >> (64 - bit_shift));
    }
    const uint128 sub_total =
        static_cast<uint128>(sub) + borrow;
    const uint128 before = w[i];
    if (before < sub_total) {
      w[i] = static_cast<std::uint64_t>(
          (static_cast<uint128>(1) << 64) + before - sub_total);
      borrow = 1;
    } else {
      w[i] = static_cast<std::uint64_t>(before - sub_total);
      borrow = 0;
    }
    ++add_ops;
  }
}

/// Reduces w modulo n in place (binary shift-subtract division).
void reduce(Wide& w, const UInt2048& n, std::size_t n_bits,
            std::uint64_t& add_ops) {
  std::size_t w_bits = wide_bit_length(w);
  while (w_bits >= n_bits) {
    std::size_t shift = w_bits - n_bits;
    if (compare_shifted(w, n, shift) < 0) {
      if (shift == 0) break;
      --shift;
    }
    sub_shifted(w, n, shift, add_ops);
    w_bits = wide_bit_length(w);
  }
}

UInt2048 to_narrow(const Wide& w) {
  UInt2048 out;
  for (std::size_t i = 0; i < kLimbs; ++i) out.set_limb(i, w[i]);
  return out;
}

}  // namespace

UInt2048 UInt2048::random_below(const UInt2048& modulus, Rng& rng) {
  require(!modulus.is_zero(), "UInt2048::random_below: zero modulus");
  UInt2048 out;
  do {
    for (std::size_t i = 0; i < kLimbs; ++i) out.limbs_[i] = rng.next();
    // Mask the top limb down to the modulus bit length to keep the
    // rejection rate below 50%.
    const std::size_t bits = modulus.bit_length();
    const std::size_t top = (bits - 1) / 64;
    for (std::size_t i = top + 1; i < kLimbs; ++i) out.limbs_[i] = 0;
    const unsigned keep = static_cast<unsigned>(bits - top * 64);
    if (keep < 64) out.limbs_[top] &= (1ULL << keep) - 1;
  } while (!(out < modulus));
  return out;
}

bool UInt2048::operator<(const UInt2048& o) const {
  for (std::size_t i = kLimbs; i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i];
  }
  return false;
}

bool UInt2048::is_zero() const {
  for (std::uint64_t l : limbs_)
    if (l != 0) return false;
  return true;
}

int UInt2048::bit(std::size_t i) const {
  return static_cast<int>((limbs_[i / 64] >> (i % 64)) & 1ULL);
}

std::size_t UInt2048::bit_length() const {
  for (std::size_t i = kLimbs; i-- > 0;) {
    if (limbs_[i] != 0)
      return i * 64 +
             (64 - static_cast<std::size_t>(std::countl_zero(limbs_[i])));
  }
  return 0;
}

void UInt2048::sub(const UInt2048& o) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const std::uint64_t a = limbs_[i];
    const std::uint64_t b = o.limbs_[i];
    const std::uint64_t t = a - b;
    const std::uint64_t r = t - borrow;
    borrow = (a < b) || (t < borrow) ? 1 : 0;
    limbs_[i] = r;
  }
}

std::uint64_t UInt2048::fold() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t l : limbs_) {
    h ^= l;
    h *= 0x100000001b3ULL;
  }
  return h;
}

ModContext::ModContext(const UInt2048& modulus) : modulus_(modulus) {
  require(!modulus_.is_zero(), "ModContext: zero modulus");
  require(modulus_.bit(0) == 1, "ModContext: modulus must be odd (RSA)");
}

UInt2048 ModContext::mul_mod(const UInt2048& a, const UInt2048& b) {
  Wide w{};
  for (std::size_t i = 0; i < kLimbs; ++i) {
    if (a.limb(i) == 0) continue;
    std::uint64_t carry = 0;
    const uint128 ai = a.limb(i);
    for (std::size_t j = 0; j < kLimbs; ++j) {
      const uint128 cur =
          static_cast<uint128>(w[i + j]) + ai * b.limb(j) + carry;
      w[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
      ++limb_mul_ops_;
    }
    std::size_t k = i + kLimbs;
    while (carry != 0 && k < kWideLimbs) {
      const uint128 cur =
          static_cast<uint128>(w[k]) + carry;
      w[k] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
      ++limb_add_ops_;
      ++k;
    }
  }
  reduce(w, modulus_, modulus_.bit_length(), limb_add_ops_);
  return to_narrow(w);
}

UInt2048 ModContext::pow_f4(const UInt2048& a) {
  // 65537 = 2^16 + 1: sixteen squarings and one multiply.
  UInt2048 acc = a;
  for (int i = 0; i < 16; ++i) acc = mul_mod(acc, acc);
  return mul_mod(acc, a);
}

void ModContext::reset_counters() {
  limb_mul_ops_ = 0;
  limb_add_ops_ = 0;
}

KernelResult RsaKernel::run(std::uint64_t units, Rng& rng) {
  Rng local = rng.split(2);

  // A fixed odd 2048-bit "modulus" (deterministic pseudo-modulus; primality
  // is irrelevant to the arithmetic cost being characterized).
  UInt2048 modulus;
  SplitMix64 sm(0x415341'32303438ULL);  // "RSA 2048"
  for (std::size_t i = 0; i < UInt2048::kLimbs; ++i)
    modulus.set_limb(i, sm.next());
  modulus.set_limb(UInt2048::kLimbs - 1,
                   modulus.limb(UInt2048::kLimbs - 1) | (1ULL << 63));
  modulus.set_limb(0, modulus.limb(0) | 1ULL);

  ModContext ctx(modulus);
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < units; ++i) {
    const UInt2048 sig = UInt2048::random_below(modulus, local);
    const UInt2048 recovered = ctx.pow_f4(sig);
    checksum ^= recovered.fold() + 0x9e3779b97f4a7c15ULL * (i + 1);
  }

  OpCounts ops;
  ops.crypto_ops = ctx.limb_mul_ops();           // wide multiply-accumulate
  ops.int_ops = ctx.limb_add_ops() + units * 64; // reduction + bookkeeping
  ops.branch_ops = ctx.limb_add_ops() / 8;
  ops.work_units = units;
  // Working set (two 2048-bit operands + modulus) is cache resident; only
  // the signatures stream in.
  ops.mem_traffic = Bytes{static_cast<double>(units) * 256.0};
  ops.io_bytes = Bytes{static_cast<double>(units) * 256.0};

  KernelResult result;
  result.counts = ops;
  result.checksum = checksum;
  return result;
}

}  // namespace hcep::kernels
