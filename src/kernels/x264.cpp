#include "hcep/kernels/x264.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "hcep/util/error.hpp"

namespace hcep::kernels {

X264Kernel::X264Kernel(unsigned width, unsigned height)
    : width_(width), height_(height) {
  require(width_ % 16 == 0 && height_ % 16 == 0,
          "X264Kernel: dimensions must be multiples of 16");
  require(width_ >= 32 && height_ >= 32, "X264Kernel: frame too small");
}

std::uint32_t X264Kernel::sad16(const std::uint8_t* a, std::size_t stride_a,
                                const std::uint8_t* b, std::size_t stride_b) {
  std::uint32_t acc = 0;
  for (unsigned y = 0; y < 16; ++y) {
    for (unsigned x = 0; x < 16; ++x) {
      acc += static_cast<std::uint32_t>(
          std::abs(static_cast<int>(a[y * stride_a + x]) -
                   static_cast<int>(b[y * stride_b + x])));
    }
  }
  return acc;
}

void X264Kernel::dct4x4(std::int16_t block[16]) {
  // H.264 forward core transform: butterfly on rows then columns.
  for (int i = 0; i < 4; ++i) {
    std::int16_t* r = block + 4 * i;
    const std::int16_t s0 = static_cast<std::int16_t>(r[0] + r[3]);
    const std::int16_t s1 = static_cast<std::int16_t>(r[1] + r[2]);
    const std::int16_t d0 = static_cast<std::int16_t>(r[0] - r[3]);
    const std::int16_t d1 = static_cast<std::int16_t>(r[1] - r[2]);
    r[0] = static_cast<std::int16_t>(s0 + s1);
    r[2] = static_cast<std::int16_t>(s0 - s1);
    r[1] = static_cast<std::int16_t>(2 * d0 + d1);
    r[3] = static_cast<std::int16_t>(d0 - 2 * d1);
  }
  for (int i = 0; i < 4; ++i) {
    std::int16_t* c = block + i;
    const std::int16_t s0 = static_cast<std::int16_t>(c[0] + c[12]);
    const std::int16_t s1 = static_cast<std::int16_t>(c[4] + c[8]);
    const std::int16_t d0 = static_cast<std::int16_t>(c[0] - c[12]);
    const std::int16_t d1 = static_cast<std::int16_t>(c[4] - c[8]);
    c[0] = static_cast<std::int16_t>(s0 + s1);
    c[8] = static_cast<std::int16_t>(s0 - s1);
    c[4] = static_cast<std::int16_t>(2 * d0 + d1);
    c[12] = static_cast<std::int16_t>(d0 - 2 * d1);
  }
}

KernelResult X264Kernel::run(std::uint64_t units, Rng& rng) {
  Rng local = rng.split(4);
  const std::size_t plane = static_cast<std::size_t>(width_) * height_;
  std::vector<std::uint8_t> ref(plane);
  std::vector<std::uint8_t> cur(plane);

  // Synthesize a reference frame: smooth gradient + noise (gives motion
  // estimation realistic non-flat content).
  for (unsigned y = 0; y < height_; ++y) {
    for (unsigned x = 0; x < width_; ++x) {
      ref[y * width_ + x] = static_cast<std::uint8_t>(
          (x * 3 + y * 2 + local.uniform_int(32)) & 0xff);
    }
  }

  OpCounts ops;
  std::uint64_t checksum = 0;

  for (std::uint64_t frame = 0; frame < units; ++frame) {
    // Current frame: reference shifted by a global motion vector + noise.
    const int gmx = static_cast<int>(local.uniform_int(5)) - 2;
    const int gmy = static_cast<int>(local.uniform_int(5)) - 2;
    for (unsigned y = 0; y < height_; ++y) {
      for (unsigned x = 0; x < width_; ++x) {
        const unsigned sx = static_cast<unsigned>(
            std::clamp<int>(static_cast<int>(x) + gmx, 0,
                            static_cast<int>(width_) - 1));
        const unsigned sy = static_cast<unsigned>(
            std::clamp<int>(static_cast<int>(y) + gmy, 0,
                            static_cast<int>(height_) - 1));
        cur[y * width_ + x] = static_cast<std::uint8_t>(
            ref[sy * width_ + sx] + (local.uniform_int(8) == 0 ? 1 : 0));
      }
    }
    ops.int_ops += plane / 4;  // frame synthesis isn't charged fully

    std::uint64_t frame_cost = 0;
    for (unsigned by = 0; by + 16 <= height_; by += 16) {
      for (unsigned bx = 0; bx + 16 <= width_; bx += 16) {
        const std::uint8_t* mb = &cur[by * width_ + bx];

        // Diamond-search motion estimation in a ±8 window.
        int best_dx = 0, best_dy = 0;
        auto sad_at = [&](int dx, int dy) -> std::uint32_t {
          const int rx = std::clamp<int>(static_cast<int>(bx) + dx, 0,
                                         static_cast<int>(width_) - 16);
          const int ry = std::clamp<int>(static_cast<int>(by) + dy, 0,
                                         static_cast<int>(height_) - 16);
          ops.int_ops += 16 * 16 * 3;  // abs-diff-accumulate per pixel
          ops.mem_traffic += Bytes{16 * 16 * 2};  // both blocks stream
          return sad16(mb, width_, &ref[static_cast<unsigned>(ry) * width_ +
                                        static_cast<unsigned>(rx)],
                       width_);
        };
        std::uint32_t best = sad_at(0, 0);
        for (int step = 4; step >= 1; step /= 2) {
          bool improved = true;
          while (improved) {
            improved = false;
            static constexpr int kDx[4] = {1, -1, 0, 0};
            static constexpr int kDy[4] = {0, 0, 1, -1};
            for (int d = 0; d < 4; ++d) {
              const int dx = best_dx + kDx[d] * step;
              const int dy = best_dy + kDy[d] * step;
              if (std::abs(dx) > 8 || std::abs(dy) > 8) continue;
              const std::uint32_t s = sad_at(dx, dy);
              ops.branch_ops += 1;
              if (s < best) {
                best = s;
                best_dx = dx;
                best_dy = dy;
                improved = true;
              }
            }
          }
        }

        // Residual: 16 4x4 sub-blocks -> DCT + dead-zone quantization.
        const int rx = std::clamp<int>(static_cast<int>(bx) + best_dx, 0,
                                       static_cast<int>(width_) - 16);
        const int ry = std::clamp<int>(static_cast<int>(by) + best_dy, 0,
                                       static_cast<int>(height_) - 16);
        const std::uint8_t* pred = &ref[static_cast<unsigned>(ry) * width_ +
                                        static_cast<unsigned>(rx)];
        for (unsigned sy = 0; sy < 16; sy += 4) {
          for (unsigned sx = 0; sx < 16; sx += 4) {
            std::int16_t block[16];
            for (unsigned y = 0; y < 4; ++y) {
              for (unsigned x = 0; x < 4; ++x) {
                block[y * 4 + x] = static_cast<std::int16_t>(
                    static_cast<int>(mb[(sy + y) * width_ + sx + x]) -
                    static_cast<int>(pred[(sy + y) * width_ + sx + x]));
              }
            }
            dct4x4(block);
            for (std::int16_t coeff : block) {
              const int q = coeff / 8;  // flat quantizer
              frame_cost += static_cast<std::uint64_t>(std::abs(q));
            }
            ops.int_ops += 16 * 2 /*residual*/ + 64 /*dct*/ + 16 /*quant*/;
            ops.mem_traffic += Bytes{16 * 2};
          }
        }
      }
    }

    checksum = checksum * 16777619ULL + frame_cost;
    std::swap(ref, cur);
    // Whole current + reference planes stream through memory once more for
    // reconstruction/writeback.
    ops.mem_traffic += Bytes{static_cast<double>(plane) * 2.0};
  }

  ops.work_units = units;
  ops.io_bytes = Bytes{static_cast<double>(units) * 1e4};  // bitstream out

  KernelResult result;
  result.counts = ops;
  result.checksum = checksum;
  return result;
}

}  // namespace hcep::kernels
