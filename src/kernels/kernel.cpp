#include "hcep/kernels/kernel.hpp"

#include "hcep/util/error.hpp"

namespace hcep::kernels {

OpCounts& OpCounts::operator+=(const OpCounts& o) {
  int_ops += o.int_ops;
  fp_ops += o.fp_ops;
  branch_ops += o.branch_ops;
  crypto_ops += o.crypto_ops;
  mem_traffic += o.mem_traffic;
  io_bytes += o.io_bytes;
  work_units += o.work_units;
  return *this;
}

OpCounts OpCounts::per_unit() const {
  require(work_units > 0, "OpCounts::per_unit: no work recorded");
  const double n = static_cast<double>(work_units);
  OpCounts out;
  out.int_ops = static_cast<std::uint64_t>(static_cast<double>(int_ops) / n);
  out.fp_ops = static_cast<std::uint64_t>(static_cast<double>(fp_ops) / n);
  out.branch_ops =
      static_cast<std::uint64_t>(static_cast<double>(branch_ops) / n);
  out.crypto_ops =
      static_cast<std::uint64_t>(static_cast<double>(crypto_ops) / n);
  out.mem_traffic = mem_traffic / n;
  out.io_bytes = io_bytes / n;
  out.work_units = 1;
  return out;
}

}  // namespace hcep::kernels
