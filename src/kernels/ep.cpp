#include "hcep/kernels/ep.hpp"

#include <cmath>

namespace hcep::kernels {

KernelResult EpKernel::run(std::uint64_t units, Rng& rng) {
  tallies_.fill(0);

  // NAS EP uses the r250-style multiplicative LCG x_{k+1} = a*x_k mod 2^46;
  // we run the same recurrence in 64-bit arithmetic.
  constexpr std::uint64_t kA = 0x5DEECE66DULL;
  constexpr std::uint64_t kMask = (1ULL << 46) - 1;
  std::uint64_t x = (rng.split(0).next() & kMask) | 1ULL;

  double sum_x = 0.0, sum_y = 0.0;
  std::uint64_t generated = 0;
  OpCounts ops;

  while (generated < units) {
    // Draw a candidate pair in (-1, 1)^2.
    x = (kA * x) & kMask;
    const double u1 =
        2.0 * (static_cast<double>(x) * 0x1.0p-46) - 1.0;
    x = (kA * x) & kMask;
    const double u2 =
        2.0 * (static_cast<double>(x) * 0x1.0p-46) - 1.0;
    generated += 2;
    ops.int_ops += 4;   // two LCG steps: multiply + mask each
    ops.fp_ops += 6;    // scale/shift both candidates, r^2 accumulation
    ops.branch_ops += 1;

    const double r2 = u1 * u1 + u2 * u2;
    if (r2 >= 1.0 || r2 == 0.0) continue;  // rejected pair

    // Accepted: produce two independent Gaussians.
    const double factor = std::sqrt(-2.0 * std::log(r2) / r2);
    const double gx = u1 * factor;
    const double gy = u2 * factor;
    sum_x += gx;
    sum_y += gy;
    ops.fp_ops += 14;  // sqrt, log, divide, two products, two accumulations

    const double m = std::max(std::abs(gx), std::abs(gy));
    const auto bin = static_cast<std::size_t>(m);
    if (bin < tallies_.size()) ++tallies_[bin];
    ops.int_ops += 2;
    ops.branch_ops += 1;
  }

  ops.work_units = generated;
  // EP's working set is the generator state + tallies: fully cache
  // resident; memory traffic is negligible (we charge one cacheline per
  // 4096 numbers for the tally writes).
  ops.mem_traffic = Bytes{static_cast<double>(generated) / 4096.0 * 64.0};
  ops.io_bytes = Bytes{0};

  KernelResult result;
  result.counts = ops;
  std::uint64_t checksum =
      static_cast<std::uint64_t>(std::llround(sum_x * 1e6)) * 0x9e3779b97f4a7c15ULL;
  checksum ^= static_cast<std::uint64_t>(std::llround(sum_y * 1e6));
  for (std::uint64_t t : tallies_) checksum = checksum * 31 + t;
  result.checksum = checksum;
  return result;
}

}  // namespace hcep::kernels
