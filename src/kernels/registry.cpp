#include "hcep/kernels/registry.hpp"

#include "hcep/kernels/blackscholes.hpp"
#include "hcep/kernels/ep.hpp"
#include "hcep/kernels/julius.hpp"
#include "hcep/kernels/kvstore.hpp"
#include "hcep/kernels/rsa.hpp"
#include "hcep/kernels/x264.hpp"
#include "hcep/util/error.hpp"

namespace hcep::kernels {

std::vector<std::string> kernel_names() {
  return {"EP", "memcached", "x264", "blackscholes", "Julius", "RSA-2048"};
}

KernelPtr make_kernel(const std::string& name) {
  if (name == "EP") return std::make_unique<EpKernel>();
  if (name == "memcached") return std::make_unique<KvStoreKernel>();
  if (name == "x264") return std::make_unique<X264Kernel>();
  if (name == "blackscholes") return std::make_unique<BlackScholesKernel>();
  if (name == "Julius") return std::make_unique<JuliusKernel>();
  if (name == "RSA-2048") return std::make_unique<RsaKernel>();
  throw PreconditionError("make_kernel: unknown program '" + name + "'");
}

std::vector<KernelPtr> make_all_kernels() {
  std::vector<KernelPtr> out;
  for (const auto& name : kernel_names()) out.push_back(make_kernel(name));
  return out;
}

}  // namespace hcep::kernels
