#include "hcep/kernels/blackscholes.hpp"

#include <cmath>

namespace hcep::kernels {

namespace {

// PARSEC's CNDF: cumulative normal distribution via the Abramowitz-Stegun
// 5-coefficient polynomial approximation.
double cndf(double x) {
  const bool negative = x < 0.0;
  if (negative) x = -x;
  const double k = 1.0 / (1.0 + 0.2316419 * x);
  const double pdf = std::exp(-0.5 * x * x) * 0.3989422804014327;
  double poly = k * (0.319381530 +
                     k * (-0.356563782 +
                          k * (1.781477937 +
                               k * (-1.821255978 + k * 1.330274429))));
  const double value = 1.0 - pdf * poly;
  return negative ? 1.0 - value : value;
}

}  // namespace

double BlackScholesKernel::price(double spot, double strike, double rate,
                                 double volatility, double expiry, bool call) {
  const double sqrt_t = std::sqrt(expiry);
  const double d1 = (std::log(spot / strike) +
                     (rate + 0.5 * volatility * volatility) * expiry) /
                    (volatility * sqrt_t);
  const double d2 = d1 - volatility * sqrt_t;
  const double discounted_strike = strike * std::exp(-rate * expiry);
  if (call) return spot * cndf(d1) - discounted_strike * cndf(d2);
  return discounted_strike * cndf(-d2) - spot * cndf(-d1);
}

KernelResult BlackScholesKernel::run(std::uint64_t units, Rng& rng) {
  Rng local = rng.split(1);
  OpCounts ops;
  double acc = 0.0;
  for (std::uint64_t i = 0; i < units; ++i) {
    const double spot = local.uniform(10.0, 200.0);
    const double strike = local.uniform(10.0, 200.0);
    const double rate = local.uniform(0.005, 0.1);
    const double vol = local.uniform(0.05, 0.9);
    const double expiry = local.uniform(0.05, 2.0);
    const bool call = (i & 1) == 0;
    acc += price(spot, strike, rate, vol, expiry, call);

    // One pricing: log, exp x2, sqrt, 2 CNDF evaluations (exp + 9-term
    // polynomial each) plus the d1/d2 arithmetic.
    ops.fp_ops += 58;
    ops.int_ops += 4;
    ops.branch_ops += 3;
  }
  ops.work_units = units;
  // PARSEC streams a 36-byte option record per pricing; the array is read
  // once so it misses the cache at streaming rate.
  ops.mem_traffic = Bytes{static_cast<double>(units) * 36.0};
  ops.io_bytes = Bytes{0};

  KernelResult result;
  result.counts = ops;
  result.checksum = static_cast<std::uint64_t>(std::llround(acc * 1e3));
  return result;
}

}  // namespace hcep::kernels
