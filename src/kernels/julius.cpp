#include "hcep/kernels/julius.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hcep/util/error.hpp"

namespace hcep::kernels {

JuliusKernel::JuliusKernel(unsigned states, unsigned mixtures, unsigned dims)
    : states_(states), mixtures_(mixtures), dims_(dims) {
  require(states_ >= 2, "JuliusKernel: need at least two states");
  require(mixtures_ >= 1, "JuliusKernel: need at least one mixture");
  require(dims_ >= 1, "JuliusKernel: need at least one feature dimension");
}

KernelResult JuliusKernel::run(std::uint64_t units, Rng& rng) {
  Rng local = rng.split(5);

  // Model: per-state Gaussian mixtures (diagonal covariance) + left-to-right
  // transitions (self-loop or advance).
  const std::size_t gaussians = static_cast<std::size_t>(states_) * mixtures_;
  std::vector<double> means(gaussians * dims_);
  std::vector<double> inv_var(gaussians * dims_);
  std::vector<double> log_weight(gaussians);
  for (auto& m : means) m = local.normal(0.0, 1.0);
  for (auto& v : inv_var) v = 1.0 / local.uniform(0.5, 2.0);
  for (auto& w : log_weight)
    w = std::log(1.0 / static_cast<double>(mixtures_));
  const double log_self = std::log(0.6);
  const double log_next = std::log(0.4);

  std::vector<double> alpha(states_, -std::numeric_limits<double>::infinity());
  std::vector<double> next(states_);
  alpha[0] = 0.0;

  std::vector<double> feat(dims_);
  OpCounts ops;

  for (std::uint64_t t = 0; t < units; ++t) {
    // Synthetic MFCC frame drifting through the state means.
    const std::size_t target =
        static_cast<std::size_t>((t * states_) / std::max<std::uint64_t>(units, 1)) %
        states_;
    for (unsigned d = 0; d < dims_; ++d) {
      feat[d] = means[(target * mixtures_) * dims_ + d] +
                local.normal(0.0, 0.3);
    }
    ops.fp_ops += dims_ * 2;

    // Emission scores: log-sum over mixtures of diagonal Gaussians
    // (max-approximation, as real decoders use).
    for (unsigned s = 0; s < states_; ++s) {
      double best = -std::numeric_limits<double>::infinity();
      for (unsigned m = 0; m < mixtures_; ++m) {
        const std::size_t g = static_cast<std::size_t>(s) * mixtures_ + m;
        double d2 = 0.0;
        for (unsigned d = 0; d < dims_; ++d) {
          const double diff = feat[d] - means[g * dims_ + d];
          d2 += diff * diff * inv_var[g * dims_ + d];
        }
        best = std::max(best, log_weight[g] - 0.5 * d2);
        ops.fp_ops += dims_ * 3 + 2;
        ops.branch_ops += 1;
      }
      // Viterbi recursion (left-to-right: from s or s-1).
      const double stay = alpha[s] + log_self;
      const double advance =
          s > 0 ? alpha[s - 1] + log_next
                : -std::numeric_limits<double>::infinity();
      next[s] = std::max(stay, advance) + best;
      ops.fp_ops += 3;
      ops.branch_ops += 1;
    }
    alpha.swap(next);
    ops.int_ops += states_ * 4;
    // Model parameters stream each frame: means + variances touched once.
    ops.mem_traffic += Bytes{static_cast<double>(gaussians * dims_ * 2) * 8.0};
  }

  last_score_ = *std::max_element(alpha.begin(), alpha.end());
  ops.work_units = units;
  // Audio in: ~2 bytes/sample at the acoustic frame rate equivalent.
  ops.io_bytes = Bytes{static_cast<double>(units) * 320.0};

  KernelResult result;
  result.counts = ops;
  result.checksum =
      static_cast<std::uint64_t>(std::llround(std::abs(last_score_) * 1e3));
  return result;
}

}  // namespace hcep::kernels
