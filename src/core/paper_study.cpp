#include "hcep/core/paper_study.hpp"

#include "hcep/config/budget.hpp"
#include "hcep/util/error.hpp"

namespace hcep::core {

PaperStudy::PaperStudy(const workload::CatalogOptions& options)
    : workloads_(workload::paper_workloads(options)) {}

const workload::Workload& PaperStudy::workload(
    const std::string& program) const {
  for (const auto& w : workloads_)
    if (w.name == program) return w;
  throw PreconditionError("PaperStudy: unknown program '" + program + "'");
}

std::vector<analysis::ValidationRow> PaperStudy::table4() const {
  return analysis::validate_all(workloads_);
}

std::vector<analysis::NodeWorkloadAnalysis> PaperStudy::single_node_analyses()
    const {
  const hw::NodeSpec a9 = hw::cortex_a9();
  const hw::NodeSpec k10 = hw::opteron_k10();
  std::vector<analysis::NodeWorkloadAnalysis> out;
  out.reserve(workloads_.size() * 2);
  for (const auto& w : workloads_) {
    out.push_back(analysis::analyze_single_node(w, a9));
    out.push_back(analysis::analyze_single_node(w, k10));
  }
  return out;
}

std::vector<analysis::MixAnalysis> PaperStudy::budget_mix_analyses(
    const std::string& program) const {
  return analysis::analyze_mixes(config::paper_budget_mixes(),
                                 workload(program));
}

analysis::ParetoStudyResult PaperStudy::pareto_study(
    const std::string& program, bool compute_frontier) const {
  analysis::ParetoStudyOptions opts;
  opts.compute_frontier = compute_frontier;
  return analysis::run_pareto_study(workload(program), opts);
}

analysis::ResponseStudyResult PaperStudy::response_study(
    const std::string& program, bool cross_check_des) const {
  analysis::ResponseStudyOptions opts;
  opts.cross_check_des = cross_check_des;
  return analysis::run_response_study(workload(program), opts);
}

}  // namespace hcep::core
