#include "hcep/workload/demand.hpp"

#include "hcep/util/error.hpp"

namespace hcep::workload {

NodeDemand NodeDemand::scaled(double k) const {
  return NodeDemand{.cycles_core = cycles_core * k,
                    .cycles_mem = cycles_mem * k,
                    .io_bytes = io_bytes * k};
}

const NodeDemand& Workload::demand_for(const std::string& node) const {
  const auto it = demand.find(node);
  require(it != demand.end(),
          "Workload '" + name + "': no demand for node type '" + node + "'");
  return it->second;
}

double Workload::power_scale_for(const std::string& node) const {
  const auto it = power_cal.find(node);
  return it == power_cal.end() ? 1.0 : it->second.power_scale;
}

bool Workload::has_node(const std::string& node) const {
  return demand.contains(node);
}

}  // namespace hcep::workload
