#include "hcep/workload/catalog.hpp"

#include <cmath>

#include "hcep/hw/catalog.hpp"
#include "hcep/kernels/registry.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/calibrate.hpp"
#include "hcep/workload/characterize.hpp"

namespace hcep::workload {

using namespace hcep::literals;

std::vector<std::string> program_names() {
  return kernels::kernel_names();
}

double default_units_per_job(const std::string& program) {
  // Sized so one job's service time on the paper's validation cluster
  // lands where the paper's response-time figures live: EP jobs take
  // ~10-25 ms on the 32 A9 + 12 K10 mixes (Fig. 11's axis), x264 jobs
  // take ~0.5-1.5 s (Fig. 12's axis). Other programs follow their
  // domains: a 1 MB memcached batch, 100k-option pricing batches, ~1
  // minute of 16 kHz audio, a 2000-verification TLS burst.
  if (program == "EP") return 2.0e7;           // random numbers
  if (program == "memcached") return 1.0e6;    // bytes served
  if (program == "x264") return 500.0;         // frames
  if (program == "blackscholes") return 1.0e5; // options
  if (program == "Julius") return 3.0e5;       // samples
  if (program == "RSA-2048") return 2000.0;    // verifications
  throw PreconditionError("default_units_per_job: unknown program '" +
                          program + "'");
}

namespace {

Seconds default_io_interval(const std::string& program) {
  // Only memcached is request-paced over the NIC; the floor is far below
  // the transfer time so it seldom binds (Table 2's max(T_IOT, 1/lambda)).
  if (program == "memcached") return 50.0_us;
  return Seconds{0.0};
}

}  // namespace

Workload with_input_scale(Workload w, double factor) {
  require(factor > 0.0, "with_input_scale: factor must be positive");
  w.units_per_job *= factor;
  return w;
}

Workload make_workload(const std::string& program,
                       const CatalogOptions& options) {
  std::vector<hw::NodeSpec> nodes = options.nodes;
  if (nodes.empty()) nodes = {hw::cortex_a9(), hw::opteron_k10()};

  const auto kernel = kernels::make_kernel(program);

  Workload w;
  w.name = program;
  w.work_unit = kernel->work_unit();
  w.units_per_job = default_units_per_job(program);
  w.io_request_interval = default_io_interval(program);

  const auto base_units = default_characterization_units(program);
  const auto units = static_cast<std::uint64_t>(std::llround(
      static_cast<double>(base_units) * std::max(options.units_factor, 0.01)));

  for (const hw::NodeSpec& node : nodes) {
    w.demand[node.name] =
        characterize(*kernel, node, std::max<std::uint64_t>(units, 1),
                     options.seed);
    if (options.calibrate) {
      if (const auto target = paper_target(program, node.name)) {
        calibrate_node(w, node, *target);
      }
    }
  }
  return w;
}

std::vector<Workload> paper_workloads(const CatalogOptions& options) {
  std::vector<Workload> out;
  out.reserve(program_names().size());
  for (const auto& program : program_names())
    out.push_back(make_workload(program, options));
  return out;
}

}  // namespace hcep::workload
