#include "hcep/workload/calibrate.hpp"

#include "hcep/util/error.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::workload {

const std::map<std::string, std::map<std::string, CalibrationTarget>>&
paper_targets() {
  // Table 6 (PPR, work units per second per watt) and Table 7 (IPR).
  static const std::map<std::string, std::map<std::string, CalibrationTarget>>
      kTargets = {
          {"EP",
           {{"A9", {.ppr = 6048057.0, .ipr = 0.74}},
            {"K10", {.ppr = 1414922.0, .ipr = 0.65}}}},
          {"memcached",
           {{"A9", {.ppr = 5224004.0, .ipr = 0.83}},
            {"K10", {.ppr = 268067.0, .ipr = 0.89}}}},
          {"x264",
           {{"A9", {.ppr = 0.7, .ipr = 0.64}},
            {"K10", {.ppr = 1.0, .ipr = 0.62}}}},
          {"blackscholes",
           {{"A9", {.ppr = 11413.0, .ipr = 0.68}},
            {"K10", {.ppr = 2902.0, .ipr = 0.63}}}},
          {"Julius",
           {{"A9", {.ppr = 69654.0, .ipr = 0.70}},
            {"K10", {.ppr = 21390.0, .ipr = 0.62}}}},
          {"RSA-2048",
           {{"A9", {.ppr = 968.0, .ipr = 0.64}},
            {"K10", {.ppr = 1091.0, .ipr = 0.59}}}},
      };
  return kTargets;
}

std::optional<CalibrationTarget> paper_target(const std::string& program,
                                              const std::string& node) {
  const auto pit = paper_targets().find(program);
  if (pit == paper_targets().end()) return std::nullopt;
  const auto nit = pit->second.find(node);
  if (nit == pit->second.end()) return std::nullopt;
  return nit->second;
}

Watts target_peak_power(const hw::NodeSpec& node,
                        const CalibrationTarget& target) {
  require(target.ipr > 0.0 && target.ipr < 1.0,
          "calibrate: IPR must lie in (0, 1)");
  return node.power.idle / target.ipr;
}

double target_peak_throughput(const hw::NodeSpec& node,
                              const CalibrationTarget& target) {
  require(target.ppr > 0.0, "calibrate: PPR must be positive");
  return target.ppr * target_peak_power(node, target).value();
}

void calibrate_node(Workload& w, const hw::NodeSpec& node,
                    const CalibrationTarget& target) {
  require(w.has_node(node.name),
          "calibrate_node: workload '" + w.name +
              "' has no characterized demand for '" + node.name + "'");

  const Watts p_peak = target_peak_power(node, target);
  const double x_peak = target_peak_throughput(node, target);

  // 1. Pin throughput: scale demand so 1 / T_unit(c_max, f_max) = x_peak.
  NodeDemand& demand = w.demand.at(node.name);
  const double x_raw =
      unit_throughput(demand, node, node.cores, node.dvfs.max());
  demand = demand.scaled(x_raw / x_peak);

  // 2. Pin busy power: the dynamic component mix is scale-invariant in the
  //    demand, so a single multiplicative factor reaches the target peak.
  const Watts p_raw =
      busy_power(demand, node, node.cores, node.dvfs.max(), 1.0);
  const Watts dyn_raw = p_raw - node.power.idle;
  require(dyn_raw.value() > 0.0,
          "calibrate_node: raw busy power does not exceed idle");
  const double kappa = (p_peak - node.power.idle) / dyn_raw;

  w.power_cal[node.name] = NodePowerCal{
      .power_scale = kappa,
      .peak_power = p_peak,
      .peak_throughput = x_peak,
  };
}

}  // namespace hcep::workload
