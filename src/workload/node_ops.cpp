#include "hcep/workload/node_ops.hpp"

#include <algorithm>

#include "hcep/util/error.hpp"

namespace hcep::workload {

UnitTime unit_time(const NodeDemand& demand, const hw::NodeSpec& node,
                   unsigned active_cores, Hertz f) {
  require(active_cores >= 1 && active_cores <= node.cores,
          "unit_time: active core count out of range for " + node.name);
  require(f.value() > 0.0, "unit_time: non-positive frequency");

  UnitTime t;
  t.core = Cycles{demand.cycles_core} / f / static_cast<double>(active_cores);
  t.mem = Cycles{demand.cycles_mem} / f /
          node.cost.mem_parallelism(active_cores);
  t.cpu = std::max(t.core, t.mem);
  t.io = demand.io_bytes / node.nic_bandwidth;
  t.total = std::max(t.cpu, t.io);
  return t;
}

double unit_throughput(const NodeDemand& demand, const hw::NodeSpec& node,
                       unsigned active_cores, Hertz f) {
  const Seconds t = unit_time(demand, node, active_cores, f).total;
  require(t.value() > 0.0, "unit_throughput: zero unit time");
  return 1.0 / t.value();
}

Watts busy_power(const NodeDemand& demand, const hw::NodeSpec& node,
                 unsigned active_cores, Hertz f, double power_scale) {
  const UnitTime t = unit_time(demand, node, active_cores, f);
  require(t.total.value() > 0.0, "busy_power: zero unit time");

  const double dvfs = node.power.dvfs_scale(f, node.dvfs.max());
  const double cores = static_cast<double>(active_cores);
  const Seconds stall = std::max(Seconds{0.0}, t.mem - t.core);

  // Per-unit dynamic energy by component (Table 2 energy rows).
  const Joules e_core_act = node.power.core_active * (cores * dvfs) * t.core;
  const Joules e_core_stall =
      node.power.core_stalled * (cores * dvfs) * stall;
  const Joules e_mem = node.power.mem_active * t.mem;
  const Joules e_net = node.power.net_active * t.io;

  const Watts dynamic =
      (e_core_act + e_core_stall + e_mem + e_net) / t.total;
  return node.power.idle + dynamic * power_scale;
}

Joules unit_energy(const NodeDemand& demand, const hw::NodeSpec& node,
                   unsigned active_cores, Hertz f, double power_scale) {
  const UnitTime t = unit_time(demand, node, active_cores, f);
  return busy_power(demand, node, active_cores, f, power_scale) * t.total;
}

}  // namespace hcep::workload
