#include "hcep/workload/characterize.hpp"

#include "hcep/util/error.hpp"

namespace hcep::workload {

NodeDemand demand_from_counts(const kernels::OpCounts& per_unit,
                              const hw::NodeSpec& node) {
  const hw::CostModel& cm = node.cost;
  NodeDemand d;
  d.cycles_core = static_cast<double>(per_unit.int_ops) * cm.cpi_int +
                  static_cast<double>(per_unit.fp_ops) * cm.cpi_fp +
                  static_cast<double>(per_unit.branch_ops) * cm.cpi_branch +
                  static_cast<double>(per_unit.crypto_ops) * cm.cpi_crypto /
                      cm.crypto_speedup;
  // Memory-stall cycles at f_max: stream time over the node's sustainable
  // bandwidth, expressed in core cycles (Table 2 keeps stalls in cycles).
  const Seconds mem_time = per_unit.mem_traffic / cm.mem_bandwidth;
  d.cycles_mem = (node.dvfs.max() * mem_time).value();
  d.io_bytes = per_unit.io_bytes;
  return d;
}

NodeDemand characterize(kernels::Kernel& kernel, const hw::NodeSpec& node,
                        std::uint64_t units, std::uint64_t seed) {
  require(units > 0, "characterize: need at least one work unit");
  Rng rng(seed);
  const kernels::KernelResult result = kernel.run(units, rng);
  require(result.counts.work_units > 0,
          "characterize: kernel reported no work");
  // Use exact per-unit averages (double precision) rather than the
  // truncated integer per_unit() to avoid quantization on small runs.
  const double n = static_cast<double>(result.counts.work_units);
  kernels::OpCounts avg;
  avg.int_ops = result.counts.int_ops;
  avg.fp_ops = result.counts.fp_ops;
  avg.branch_ops = result.counts.branch_ops;
  avg.crypto_ops = result.counts.crypto_ops;
  avg.mem_traffic = result.counts.mem_traffic;
  avg.io_bytes = result.counts.io_bytes;
  avg.work_units = 1;

  NodeDemand total = demand_from_counts(avg, node);
  return total.scaled(1.0 / n);
}

std::uint64_t default_characterization_units(const std::string& program) {
  if (program == "EP") return 400000;
  if (program == "memcached") return 200000;  // bytes served
  if (program == "x264") return 4;            // frames
  if (program == "blackscholes") return 40000;
  if (program == "Julius") return 3000;       // samples
  if (program == "RSA-2048") return 6;        // verifies
  throw PreconditionError("default_characterization_units: unknown program '" +
                          program + "'");
}

}  // namespace hcep::workload
