#include "hcep/util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "hcep/util/error.hpp"

namespace hcep {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double value) {
  require(std::isfinite(value), "JsonValue: non-finite number");
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::number(std::int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.integral_ = true;
  v.int_number_ = value;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::push(JsonValue v) {
  require(kind_ == Kind::kArray, "JsonValue::push: not an array");
  items_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  require(kind_ == Kind::kObject, "JsonValue::set: not an object");
  for (const auto& [k, unused] : fields_)
    require(k != key, "JsonValue::set: duplicate key '" + key + "'");
  fields_.emplace_back(key, std::move(v));
  return *this;
}

bool JsonValue::as_bool() const {
  require(kind_ == Kind::kBool, "JsonValue::as_bool: not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  require(kind_ == Kind::kNumber, "JsonValue::as_number: not a number");
  return integral_ ? static_cast<double>(int_number_) : number_;
}

std::int64_t JsonValue::as_int() const {
  require(kind_ == Kind::kNumber && integral_,
          "JsonValue::as_int: not an integral number");
  return int_number_;
}

const std::string& JsonValue::as_string() const {
  require(kind_ == Kind::kString, "JsonValue::as_string: not a string");
  return string_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  require(kind_ == Kind::kObject, "JsonValue::size: not a container");
  return fields_.size();
}

const JsonValue& JsonValue::at(std::size_t index) const {
  require(kind_ == Kind::kArray, "JsonValue::at(index): not an array");
  require(index < items_.size(), "JsonValue::at(index): out of range");
  return items_[index];
}

const JsonValue* JsonValue::find(std::string_view key) const {
  require(kind_ == Kind::kObject, "JsonValue::find: not an object");
  for (const auto& [k, v] : fields_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  require(v != nullptr,
          "JsonValue::at: missing key '" + std::string(key) + "'");
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::fields()
    const {
  require(kind_ == Kind::kObject, "JsonValue::fields: not an object");
  return fields_;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

void append_indent(std::string& out, int indent) {
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

/// Strict RFC 8259 recursive-descent parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    require(pos_ == text_.size(),
            "JsonValue::parse: trailing characters at offset " +
                std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw PreconditionError("JsonValue::parse: " + what + " at offset " +
                            std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    // Basic-plane only; surrogate pairs are not produced by our writer
    // (json_escape emits \uXXXX solely for C0 controls).
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = c == '+' || c == '-' ? integral : false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1))
      fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size())
        return JsonValue::number(static_cast<std::int64_t>(v));
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    require(std::isfinite(d), "JsonValue::parse: non-finite number");
    return JsonValue::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void JsonValue::write(std::string& out, int indent, bool pretty) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      char buf[40];
      if (integral_) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(int_number_));
      } else {
        std::snprintf(buf, sizeof buf, "%.12g", number_);
      }
      out += buf;
      return;
    }
    case Kind::kString:
      out += '"' + json_escape(string_) + '"';
      return;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        if (pretty) append_indent(out, indent + 1);
        items_[i].write(out, indent + 1, pretty);
      }
      if (pretty && !items_.empty()) append_indent(out, indent);
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i) out += ',';
        if (pretty) append_indent(out, indent + 1);
        out += '"' + json_escape(fields_[i].first) + "\":";
        if (pretty) out += ' ';
        fields_[i].second.write(out, indent + 1, pretty);
      }
      if (pretty && !fields_.empty()) append_indent(out, indent);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  write(out, 0, false);
  return out;
}

std::string JsonValue::dump_pretty() const {
  std::string out;
  write(out, 0, true);
  return out;
}

}  // namespace hcep
