#include "hcep/util/json.hpp"

#include <cmath>
#include <cstdio>

#include "hcep/util/error.hpp"

namespace hcep {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double value) {
  require(std::isfinite(value), "JsonValue: non-finite number");
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::number(std::int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.integral_ = true;
  v.int_number_ = value;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::push(JsonValue v) {
  require(kind_ == Kind::kArray, "JsonValue::push: not an array");
  items_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  require(kind_ == Kind::kObject, "JsonValue::set: not an object");
  for (const auto& [k, unused] : fields_)
    require(k != key, "JsonValue::set: duplicate key '" + key + "'");
  fields_.emplace_back(key, std::move(v));
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {
void append_indent(std::string& out, int indent) {
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}
}  // namespace

void JsonValue::write(std::string& out, int indent, bool pretty) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      char buf[40];
      if (integral_) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(int_number_));
      } else {
        std::snprintf(buf, sizeof buf, "%.12g", number_);
      }
      out += buf;
      return;
    }
    case Kind::kString:
      out += '"' + json_escape(string_) + '"';
      return;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        if (pretty) append_indent(out, indent + 1);
        items_[i].write(out, indent + 1, pretty);
      }
      if (pretty && !items_.empty()) append_indent(out, indent);
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i) out += ',';
        if (pretty) append_indent(out, indent + 1);
        out += '"' + json_escape(fields_[i].first) + "\":";
        if (pretty) out += ' ';
        fields_[i].second.write(out, indent + 1, pretty);
      }
      if (pretty && !fields_.empty()) append_indent(out, indent);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  write(out, 0, false);
  return out;
}

std::string JsonValue::dump_pretty() const {
  std::string out;
  write(out, 0, true);
  return out;
}

}  // namespace hcep
