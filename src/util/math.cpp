#include "hcep/util/math.hpp"

#include <algorithm>
#include <cmath>

#include "hcep/util/error.hpp"

namespace hcep {

double percent_error(double a, double b) {
  require(b != 0.0, "percent_error: reference value is zero");
  return std::abs(a - b) / std::abs(b) * 100.0;
}

bool approx_equal(double a, double b, double rel, double abs) {
  const double diff = std::abs(a - b);
  if (diff <= abs) return true;
  return diff <= rel * std::max(std::abs(a), std::abs(b));
}

double trapezoid(const std::function<double(double)>& f, double a, double b,
                 std::size_t n) {
  require(n >= 1, "trapezoid: need at least one panel");
  const double h = (b - a) / static_cast<double>(n);
  double acc = 0.5 * (f(a) + f(b));
  for (std::size_t i = 1; i < n; ++i)
    acc += f(a + h * static_cast<double>(i));
  return acc * h;
}

double trapezoid(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "trapezoid: mismatched sample arrays");
  require(xs.size() >= 2, "trapezoid: need at least two samples");
  double acc = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    require(xs[i] > xs[i - 1], "trapezoid: xs must be strictly increasing");
    acc += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
  }
  return acc;
}

double bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol, std::size_t max_iter) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  require(std::signbit(flo) != std::signbit(fhi),
          "bisect: f(lo) and f(hi) must differ in sign");
  for (std::size_t it = 0; it < max_iter; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (std::isnan(fmid))
      throw NumericalError("bisect: f(mid) is NaN");
    if (fmid == 0.0 || (hi - lo) < tol) return mid;
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  throw NumericalError("bisect: failed to converge");
}

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  require(xs_.size() == ys_.size(), "PiecewiseLinear: mismatched knot arrays");
  for (std::size_t i = 1; i < xs_.size(); ++i)
    require(xs_[i] > xs_[i - 1], "PiecewiseLinear: xs must be strictly increasing");
}

void PiecewiseLinear::add(double x, double y) {
  require(xs_.empty() || x > xs_.back(),
          "PiecewiseLinear::add: knots must be added in increasing x order");
  xs_.push_back(x);
  ys_.push_back(y);
}

double PiecewiseLinear::front_x() const {
  require(!xs_.empty(), "PiecewiseLinear: empty curve");
  return xs_.front();
}

double PiecewiseLinear::back_x() const {
  require(!xs_.empty(), "PiecewiseLinear: empty curve");
  return xs_.back();
}

double PiecewiseLinear::operator()(double x) const {
  require(!xs_.empty(), "PiecewiseLinear: empty curve");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - xs_.begin());
  const double t = (x - xs_[i - 1]) / (xs_[i] - xs_[i - 1]);
  return ys_[i - 1] + t * (ys_[i] - ys_[i - 1]);
}

double PiecewiseLinear::integral(double a, double b) const {
  require(!xs_.empty(), "PiecewiseLinear: empty curve");
  if (a > b) return -integral(b, a);
  if (a == b) return 0.0;
  // Walk segment boundaries between a and b, treating the curve as clamped
  // (constant) outside the knot range.
  double acc = 0.0;
  double x0 = a;
  double y0 = (*this)(a);
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    const double xk = xs_[i];
    if (xk <= x0) continue;
    if (xk >= b) break;
    const double yk = ys_[i];
    acc += 0.5 * (y0 + yk) * (xk - x0);
    x0 = xk;
    y0 = yk;
  }
  acc += 0.5 * (y0 + (*this)(b)) * (b - x0);
  return acc;
}

PiecewiseLinear PiecewiseLinear::scaled(double k) const {
  std::vector<double> ys = ys_;
  for (auto& y : ys) y *= k;
  return PiecewiseLinear{xs_, std::move(ys)};
}

PiecewiseLinear operator+(const PiecewiseLinear& a, const PiecewiseLinear& b) {
  require(!a.empty() && !b.empty(), "PiecewiseLinear+: empty operand");
  std::vector<double> xs;
  xs.reserve(a.size() + b.size());
  std::merge(a.xs_.begin(), a.xs_.end(), b.xs_.begin(), b.xs_.end(),
             std::back_inserter(xs));
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::vector<double> ys;
  ys.reserve(xs.size());
  for (double x : xs) ys.push_back(a(x) + b(x));
  return PiecewiseLinear{std::move(xs), std::move(ys)};
}

double gamma_p(double a, double x) {
  require(a > 0.0, "gamma_p: shape must be positive");
  require(x >= 0.0, "gamma_p: negative argument");
  if (x == 0.0) return 0.0;

  const double log_gamma_a = std::lgamma(a);
  if (x < a + 1.0) {
    // Series: P(a,x) = x^a e^-x / Gamma(a) * sum x^n / (a (a+1) ... (a+n)).
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::abs(term) < std::abs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
  }
  // Continued fraction for Q(a,x) (modified Lentz).
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma_a) * h;
  return 1.0 - q;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  require(n >= 2, "linspace: need at least two points");
  std::vector<double> out(n);
  const double h = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = lo + h * static_cast<double>(i);
  out.back() = hi;
  return out;
}

}  // namespace hcep
