#include "hcep/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "hcep/util/error.hpp"

namespace hcep {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "TextTable: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_grouped(double v) {
  const bool negative = v < 0;
  auto n = static_cast<long long>(std::llround(std::abs(v)));
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

void SeriesWriter::begin_series(const std::string& name) {
  if (any_series_) out_ += "\n\n";  // gnuplot index separator
  any_series_ = true;
  out_ += "# " + name + "\n";
}

void SeriesWriter::point(double x, double y) {
  require(any_series_, "SeriesWriter::point: begin_series first");
  out_ += fmt(x, 6) + " " + fmt(y, 6) + "\n";
}

void SeriesWriter::point(double x, const std::vector<double>& ys) {
  require(any_series_, "SeriesWriter::point: begin_series first");
  out_ += fmt(x, 6);
  for (double y : ys) {
    out_ += ' ';
    out_ += fmt(y, 6);
  }
  out_ += '\n';
}

void SeriesWriter::save(const std::string& path) const {
  std::ofstream f(path);
  require(static_cast<bool>(f), "SeriesWriter::save: cannot open " + path);
  f << out_;
  require(static_cast<bool>(f), "SeriesWriter::save: write failed " + path);
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : width_(header.size()) {
  require(width_ > 0, "CsvWriter: empty header");
  emit(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  require(row.size() == width_, "CsvWriter: row width mismatch");
  emit(row);
}

void CsvWriter::emit(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ += ',';
    const std::string& field = row[i];
    if (field.find_first_of(",\"\n") != std::string::npos) {
      out_ += '"';
      for (char ch : field) {
        if (ch == '"') out_ += '"';
        out_ += ch;
      }
      out_ += '"';
    } else {
      out_ += field;
    }
  }
  out_ += '\n';
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream f(path);
  require(static_cast<bool>(f), "CsvWriter::save: cannot open " + path);
  f << out_;
  require(static_cast<bool>(f), "CsvWriter::save: write failed " + path);
}

}  // namespace hcep
