#include "hcep/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace hcep {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

Rng Rng::split(unsigned n) const {
  Rng out = *this;
  for (unsigned i = 0; i <= n; ++i) out.jump();
  return out;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % n;
}

double Rng::exponential(double rate) {
  // -log(1 - U) / rate; 1 - uniform01() is in (0, 1].
  return -std::log(1.0 - uniform01()) / rate;
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 1.0 - uniform01();  // (0, 1]
  double u2 = uniform01();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::gamma(double shape, double scale) {
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double u = 1.0 - uniform01();  // (0, 1]
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - uniform01();  // (0, 1]
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

}  // namespace hcep
