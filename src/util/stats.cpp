#include "hcep/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "hcep/util/error.hpp"

namespace hcep {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  require(n_ > 0, "RunningStats::mean: no samples");
  return mean_;
}

double RunningStats::variance() const {
  require(n_ > 1, "RunningStats::variance: need at least two samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  require(n_ > 0, "RunningStats::min: no samples");
  return min_;
}

double RunningStats::max() const {
  require(n_ > 0, "RunningStats::max: no samples");
  return max_;
}

double percentile(std::span<const double> samples, double p) {
  std::vector<double> copy(samples.begin(), samples.end());
  return percentile_inplace(copy, p);
}

double percentile_inplace(std::vector<double>& samples, double p) {
  require(!samples.empty(), "percentile: no samples");
  require(p >= 0.0 && p <= 100.0, "percentile: p out of [0, 100]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  require(q > 0.0 && q < 1.0, "P2Quantile: q must be in (0, 1)");
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
      desired_[0] = 1;
      desired_[1] = 1 + 2 * q_;
      desired_[2] = 1 + 4 * q_;
      desired_[3] = 3 + 2 * q_;
      desired_[4] = 5;
      increments_[0] = 0;
      increments_[1] = q_ / 2;
      increments_[2] = q_;
      increments_[3] = (1 + q_) / 2;
      increments_[4] = 1;
    }
    return;
  }
  ++count_;

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers with the parabolic (fallback: linear) formula.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double np = positions_[i + 1] - positions_[i];
    const double nm = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && np > 1.0) || (d <= -1.0 && nm < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      const double hp = heights_[i + 1] - heights_[i];
      const double hm = heights_[i - 1] - heights_[i];
      double candidate =
          heights_[i] + sign / (np - nm) *
                            ((sign - nm) * hp / np + (np - sign) * hm / nm);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        // Parabolic prediction left the bracket; fall back to linear.
        const int j = sign > 0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  require(count_ > 0, "P2Quantile::value: no samples");
  if (count_ < 5) {
    std::vector<double> tmp(heights_, heights_ + count_);
    return percentile_inplace(tmp, q_ * 100.0);
  }
  return heights_[2];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  require(hi > lo, "Histogram: hi must exceed lo");
  require(bins >= 1, "Histogram: need at least one bin");
}

void Histogram::add(double x, double weight) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::percentile(double p) const {
  require(total_ > 0.0, "Histogram::percentile: empty histogram");
  require(p >= 0.0 && p <= 100.0, "Histogram::percentile: p out of range");
  const double target = p / 100.0 * total_;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (acc >= target) return bin_hi(i);
  }
  return hi_;
}

}  // namespace hcep
