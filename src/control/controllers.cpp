#include "hcep/control/controllers.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

namespace hcep::control {

namespace {

/// Node indices ranked most-work-per-watt first at current operating
/// points (the greedy order cluster::autoscale_replay powers the fleet
/// in), ties broken by index for determinism.
std::vector<std::size_t> efficiency_order(const TickContext& ctx,
                                          const Actuator& act) {
  std::vector<std::size_t> order(ctx.num_nodes);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> score(ctx.num_nodes);
  for (std::size_t i = 0; i < ctx.num_nodes; ++i) {
    const NodeStatus& s = ctx.nodes[i];
    const Watts busy = act.busy_power(i, s.point);
    score[i] = busy.value() > 0.0
                   ? act.service_rate(i, s.point) / busy.value()
                   : 0.0;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return score[a] > score[b];
                   });
  return order;
}

class PowerGateController final : public Controller {
 public:
  explicit PowerGateController(PowerGateOptions options)
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "power_gate"; }

  void tick(const TickContext& ctx, Actuator& act) override {
    const std::size_t n = ctx.num_nodes;
    // The first tick (t = 0) has an empty window: observe only.
    if (n == 0 || ctx.now.value() <= 0.0) return;

    const std::vector<std::size_t> order = efficiency_order(ctx, act);
    const std::size_t min_keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(options_.min_active_fraction *
                         static_cast<double>(n))));
    const double target =
        ctx.window_arrivals_per_s * (1.0 + options_.headroom);

    std::uint64_t total_queued = 0;
    std::size_t dispatchable = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total_queued += ctx.nodes[i].queued;
      if (ctx.nodes[i].state == PowerState::kActive) ++dispatchable;
    }
    const bool congested =
        static_cast<double>(total_queued) >
        options_.wake_queue_depth *
            static_cast<double>(std::max<std::size_t>(1, dispatchable));

    // Keep the most efficient non-sleeping prefix covering the target.
    std::vector<bool> keep(n, false);
    double capacity = 0.0;
    std::size_t kept = 0;
    for (const std::size_t i : order) {
      if (ctx.nodes[i].state == PowerState::kSleeping) continue;
      if (kept < min_keep || capacity < target) {
        keep[i] = true;
        ++kept;
        capacity += act.service_rate(i, ctx.nodes[i].point);
      }
    }

    // Park the rest — but only nodes whose window stayed cool (a hot
    // node outside the keep set signals the rate estimate is lagging).
    for (const std::size_t i : order) {
      const NodeStatus& s = ctx.nodes[i];
      if (keep[i] || s.state != PowerState::kActive) continue;
      if (s.utilization <= options_.park_utilization) act.sleep_node(i);
    }

    // Wake back: enough capacity for the rate target, plus one extra
    // node per congested tick (queue pressure beats the rate signal).
    bool woke_for_pressure = !congested;
    for (const std::size_t i : order) {
      if (ctx.nodes[i].state == PowerState::kActive) continue;
      const bool need_rate = capacity < target;
      if (!need_rate && woke_for_pressure) break;
      if (act.wake_node(i)) {
        capacity += act.service_rate(i, ctx.nodes[i].point);
        if (!need_rate) woke_for_pressure = true;
      }
    }
  }

  [[nodiscard]] std::unique_ptr<Controller> clone() const override {
    return std::make_unique<PowerGateController>(options_);
  }

 private:
  PowerGateOptions options_;
};

class DvfsGovernor final : public Controller {
 public:
  explicit DvfsGovernor(DvfsGovernorOptions options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "dvfs_governor"; }

  void tick(const TickContext& ctx, Actuator& act) override {
    Seconds slo = options_.default_target;
    bool any_slo = false;
    for (std::size_t c = 0; c < ctx.num_classes; ++c) {
      const Seconds lat = ctx.classes[c].slo_latency;
      if (lat.value() <= 0.0) continue;
      slo = any_slo ? std::min(slo, lat) : lat;
      any_slo = true;
    }
    const Seconds target = slo * options_.latency_headroom;

    for (std::size_t i = 0; i < ctx.num_nodes; ++i) {
      const NodeStatus& s = ctx.nodes[i];
      if (s.state == PowerState::kSleeping) continue;
      const std::size_t points = act.num_points(s.type);
      const double depth = static_cast<double>(s.queued) + 1.0;

      // Lowest-power point whose predicted sojourn (drain the queue plus
      // one service at that point) meets the headroom target; fastest
      // point when none does.
      bool found = false;
      std::uint32_t pick = 0;
      Watts pick_power{};
      double best_rate = -1.0;
      std::uint32_t fastest = 0;
      for (std::size_t p = 0; p < points; ++p) {
        const auto point = static_cast<std::uint32_t>(p);
        const double rate = act.service_rate(i, point);
        if (rate > best_rate) {
          best_rate = rate;
          fastest = point;
        }
        const Seconds predicted = act.mean_service(i, point) * depth;
        if (predicted <= target) {
          const Watts power = act.busy_power(i, point);
          if (!found || power < pick_power) {
            found = true;
            pick = point;
            pick_power = power;
          }
        }
      }
      if (!found) pick = fastest;
      if (pick != s.point) act.set_operating_point(i, pick);
    }
  }

  [[nodiscard]] std::unique_ptr<Controller> clone() const override {
    return std::make_unique<DvfsGovernor>(options_);
  }

 private:
  DvfsGovernorOptions options_;
};

class PowerCapController final : public Controller {
 public:
  explicit PowerCapController(PowerCapOptions options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "power_cap"; }

  void tick(const TickContext& ctx, Actuator& act) override {
    const std::size_t n = ctx.num_nodes;
    if (n == 0) return;
    const Watts limit = options_.cap * ctx.shard_share;
    const Watts restore_limit = limit * (1.0 - options_.guard);
    Watts worst = ctx.worst_case_power;

    // Local mirror of the fleet (ctx is a snapshot; our own actuations
    // must feed back into the accounting within this tick).
    std::vector<std::uint32_t> point(n);
    std::vector<bool> sleeping(n);
    for (std::size_t i = 0; i < n; ++i) {
      point[i] = ctx.nodes[i].point;
      sleeping[i] = ctx.nodes[i].state == PowerState::kSleeping;
    }

    const std::vector<std::size_t> order = efficiency_order(ctx, act);

    // Enforce: biggest single-step power reduction first.
    while (worst > limit) {
      std::size_t best = n;
      Watts best_delta{0.0};
      for (std::size_t i = 0; i < n; ++i) {
        if (sleeping[i] || point[i] == 0) continue;
        const Watts delta =
            act.busy_power(i, point[i]) - act.busy_power(i, point[i] - 1);
        if (delta > best_delta) {
          best_delta = delta;
          best = i;
        }
      }
      if (best < n) {
        act.set_operating_point(best, point[best] - 1);
        --point[best];
        worst -= best_delta;
        continue;
      }
      // Every node at its slowest point: park the least efficient idle
      // node (never sheds queued work — draining is not even needed
      // since only empty nodes are parked here).
      bool parked = false;
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const std::size_t i = *it;
        const NodeStatus& s = ctx.nodes[i];
        if (sleeping[i] || s.state != PowerState::kActive || s.queued > 0 ||
            s.backlog.value() > 0.0) {
          continue;
        }
        if (act.sleep_node(i)) {
          sleeping[i] = true;
          worst -= act.busy_power(i, point[i]) - s.sleep_power;
          parked = true;
          break;
        }
      }
      if (!parked) break;  // cap infeasible this tick; retry next tick
    }

    if (worst > restore_limit) return;

    // Restore capacity under the guard band: wakes first (most efficient
    // first), then the cheapest point upgrades.
    for (const std::size_t i : order) {
      if (!sleeping[i]) continue;
      const Watts delta =
          act.busy_power(i, point[i]) - ctx.nodes[i].sleep_power;
      if (worst + delta > restore_limit) continue;
      if (act.wake_node(i)) {
        sleeping[i] = false;
        worst += delta;
      }
    }
    while (true) {
      std::size_t best = n;
      Watts best_delta{0.0};
      bool found = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (sleeping[i]) continue;
        if (static_cast<std::size_t>(point[i]) + 1 >=
            act.num_points(ctx.nodes[i].type)) {
          continue;
        }
        const Watts delta =
            act.busy_power(i, point[i] + 1) - act.busy_power(i, point[i]);
        if (worst + delta > restore_limit) continue;
        if (!found || delta < best_delta) {
          found = true;
          best_delta = delta;
          best = i;
        }
      }
      if (!found) break;
      act.set_operating_point(best, point[best] + 1);
      ++point[best];
      worst += best_delta;
    }
  }

  [[nodiscard]] std::unique_ptr<Controller> clone() const override {
    return std::make_unique<PowerCapController>(options_);
  }

 private:
  PowerCapOptions options_;
};

class FrozenController final : public Controller {
 public:
  [[nodiscard]] std::string name() const override { return "frozen"; }
  void tick(const TickContext&, Actuator&) override {}
  [[nodiscard]] std::unique_ptr<Controller> clone() const override {
    return std::make_unique<FrozenController>();
  }
};

}  // namespace

std::unique_ptr<Controller> make_power_gate(PowerGateOptions options) {
  return std::make_unique<PowerGateController>(options);
}

std::unique_ptr<Controller> make_dvfs_governor(DvfsGovernorOptions options) {
  return std::make_unique<DvfsGovernor>(options);
}

std::unique_ptr<Controller> make_power_cap(PowerCapOptions options) {
  return std::make_unique<PowerCapController>(options);
}

std::unique_ptr<Controller> make_frozen() {
  return std::make_unique<FrozenController>();
}

}  // namespace hcep::control
