#include "hcep/control/controller.hpp"

namespace hcep::control {

const char* to_string(PowerState state) {
  switch (state) {
    case PowerState::kActive: return "active";
    case PowerState::kDraining: return "draining";
    case PowerState::kSleeping: return "sleeping";
  }
  return "?";
}

JsonValue ControlSummary::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("enabled", JsonValue::boolean(enabled));
  o.set("controller", JsonValue::string(controller));
  o.set("ticks", JsonValue::number(static_cast<std::int64_t>(ticks)));
  o.set("event_ticks",
        JsonValue::number(static_cast<std::int64_t>(event_ticks)));
  o.set("sleeps", JsonValue::number(static_cast<std::int64_t>(sleeps)));
  o.set("wakes", JsonValue::number(static_cast<std::int64_t>(wakes)));
  o.set("point_changes",
        JsonValue::number(static_cast<std::int64_t>(point_changes)));
  o.set("gating_savings_j", JsonValue::number(gating_savings.value()));
  o.set("wake_energy_j", JsonValue::number(wake_energy.value()));
  o.set("all_dispatches_available",
        JsonValue::boolean(all_dispatches_available));
  o.set("trace_steps",
        JsonValue::number(static_cast<std::int64_t>(trace.steps().size())));
  // The flight recorder is additive: runs without one keep the historic
  // document shape byte-for-byte.
  if (!flight.empty() || flight.dropped() > 0) {
    o.set("flight", flight.to_json());
  }
  return o;
}

}  // namespace hcep::control
