#include "hcep/queueing/mdc.hpp"

#include "hcep/util/error.hpp"

namespace hcep::queueing {

double erlang_c(double offered_load, unsigned servers) {
  require(servers >= 1, "erlang_c: need at least one server");
  require(offered_load >= 0.0, "erlang_c: negative offered load");
  require(offered_load < static_cast<double>(servers),
          "erlang_c: offered load must be below the server count");
  if (offered_load == 0.0) return 0.0;

  // Erlang-B recurrence: B(0) = 1, B(k) = a B(k-1) / (k + a B(k-1)).
  double b = 1.0;
  for (unsigned k = 1; k <= servers; ++k) {
    b = offered_load * b / (static_cast<double>(k) + offered_load * b);
  }
  // Erlang-C from Erlang-B.
  const double c = static_cast<double>(servers);
  const double rho = offered_load / c;
  return b / (1.0 - rho + rho * b);
}

MDc::MDc(Seconds service, double arrival_rate_per_s, unsigned servers)
    : service_(service), lambda_(arrival_rate_per_s), servers_(servers) {
  require(service_.value() > 0.0, "MDc: service time must be positive");
  require(lambda_ >= 0.0, "MDc: negative arrival rate");
  require(servers_ >= 1, "MDc: need at least one server");
  require(utilization() < 1.0, "MDc: utilization must be below 1");
}

MDc MDc::from_utilization(Seconds service, double utilization,
                          unsigned servers) {
  require(service.value() > 0.0, "MDc: service time must be positive");
  require(utilization >= 0.0 && utilization < 1.0,
          "MDc: utilization must lie in [0, 1)");
  return MDc(service,
             utilization * static_cast<double>(servers) / service.value(),
             servers);
}

double MDc::utilization() const {
  return lambda_ * service_.value() / static_cast<double>(servers_);
}

double MDc::wait_probability() const {
  return erlang_c(lambda_ * service_.value(), servers_);
}

Seconds MDc::mean_wait() const {
  const double rho = utilization();
  if (rho == 0.0) return Seconds{0.0};
  // Wq(M/M/c) = ErlangC / (c mu - lambda); halved for deterministic
  // service (Allen-Cunneen with C_a^2 = 1, C_s^2 = 0).
  const double mu = 1.0 / service_.value();
  const double mmc_wait =
      wait_probability() / (static_cast<double>(servers_) * mu - lambda_);
  return Seconds{0.5 * mmc_wait};
}

Seconds MDc::mean_response() const { return mean_wait() + service_; }

}  // namespace hcep::queueing
