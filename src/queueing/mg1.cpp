#include "hcep/queueing/mg1.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "hcep/util/error.hpp"
#include "hcep/util/math.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/util/stats.hpp"

namespace hcep::queueing {

MG1::MG1(Seconds mean_service, double arrival_rate_per_s, double scv)
    : service_(mean_service), lambda_(arrival_rate_per_s), scv_(scv) {
  require(service_.value() > 0.0, "MG1: service time must be positive");
  require(lambda_ >= 0.0, "MG1: negative arrival rate");
  require(scv_ >= 0.0, "MG1: negative SCV");
  require(utilization() < 1.0, "MG1: utilization must be below 1");
}

MG1 MG1::from_utilization(Seconds mean_service, double utilization,
                          double scv) {
  require(mean_service.value() > 0.0, "MG1: service time must be positive");
  require(utilization >= 0.0 && utilization < 1.0,
          "MG1: utilization must lie in [0, 1)");
  return MG1(mean_service, utilization / mean_service.value(), scv);
}

double MG1::utilization() const { return lambda_ * service_.value(); }

Seconds MG1::mean_wait() const {
  const double rho = utilization();
  return Seconds{rho * service_.value() * (1.0 + scv_) /
                 (2.0 * (1.0 - rho))};
}

Seconds MG1::mean_response() const { return mean_wait() + service_; }

namespace {

/// Second and third raw moments of a gamma service matching (mean, scv).
/// (scv = 0 degenerates to the deterministic moments.)
void service_moments(double mean, double scv, double& m2, double& m3) {
  m2 = mean * mean * (1.0 + scv);
  m3 = mean * mean * mean * (1.0 + scv) * (1.0 + 2.0 * scv);
}

}  // namespace

double MG1::wait_variance() const {
  const double rho = utilization();
  if (rho == 0.0) return 0.0;
  double m2, m3;
  service_moments(service_.value(), scv_, m2, m3);
  // Takacs: E[W] = lam m2 / (2(1-rho)); E[W^2] = 2 E[W]^2 + lam m3/(3(1-rho)).
  const double ew = lambda_ * m2 / (2.0 * (1.0 - rho));
  const double ew2 =
      2.0 * ew * ew + lambda_ * m3 / (3.0 * (1.0 - rho));
  return ew2 - ew * ew;
}

double MG1::wait_cdf(Seconds t) const {
  if (t.value() < 0.0) return 0.0;
  const double rho = utilization();
  if (rho == 0.0) return 1.0;
  if (t.value() == 0.0) return 1.0 - rho;  // the P(W = 0) atom
  // Conditional wait (W | W > 0): mean and variance.
  const double ew = mean_wait().value();
  const double ew2 = wait_variance() + ew * ew;
  const double m1 = ew / rho;
  const double v1 = ew2 / rho - m1 * m1;
  if (v1 <= 0.0 || m1 <= 0.0) {
    // Degenerate: treat the conditional wait as a point mass at m1.
    return t.value() >= m1 ? 1.0 : 1.0 - rho;
  }
  const double shape = m1 * m1 / v1;
  const double scale = v1 / m1;
  return std::clamp(1.0 - rho + rho * gamma_p(shape, t.value() / scale),
                    0.0, 1.0);
}

Seconds MG1::wait_percentile(double p) const {
  require(p > 0.0 && p < 100.0, "MG1::wait_percentile: p out of (0, 100)");
  const double target = p / 100.0;
  if (wait_cdf(Seconds{0.0}) >= target) return Seconds{0.0};
  double hi = std::max(mean_wait().value(), service_.value());
  while (wait_cdf(Seconds{hi}) < target) hi *= 2.0;
  const double t = bisect(
      [&](double x) { return wait_cdf(Seconds{x}) - target; }, 0.0, hi,
      hi * 1e-12);
  return Seconds{t};
}

Seconds MG1::response_percentile(double p) const {
  return wait_percentile(p) + service_;
}

MG1SimResult simulate_mg1(Seconds mean_service, double arrival_rate_per_s,
                          double scv, std::uint64_t jobs,
                          std::uint64_t seed) {
  require(mean_service.value() > 0.0,
          "simulate_mg1: service time must be positive");
  require(jobs > 0, "simulate_mg1: need at least one job");
  require(scv >= 0.0, "simulate_mg1: negative SCV");
  Rng rng(seed);

  const double mean = mean_service.value();
  double clock = 0.0;
  double server_free = 0.0;
  RunningStats wait_stats;
  std::vector<double> responses;
  responses.reserve(jobs);

  for (std::uint64_t i = 0; i < jobs; ++i) {
    clock += rng.exponential(arrival_rate_per_s);
    double service = mean;
    if (scv > 0.0) {
      const double shape = 1.0 / scv;
      service = rng.gamma(shape, mean / shape);
    }
    const double start = std::max(clock, server_free);
    const double wait = start - clock;
    server_free = start + service;
    wait_stats.add(wait);
    responses.push_back(wait + service);
  }

  MG1SimResult out;
  out.mean_wait_s = wait_stats.mean();
  out.p95_response_s = percentile_inplace(responses, 95.0);
  return out;
}

}  // namespace hcep::queueing
