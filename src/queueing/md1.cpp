#include "hcep/queueing/md1.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "hcep/util/error.hpp"
#include "hcep/util/math.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/util/stats.hpp"

namespace hcep::queueing {

MD1::MD1(Seconds service, double arrival_rate_per_s)
    : service_(service), lambda_(arrival_rate_per_s) {
  require(service_.value() > 0.0, "MD1: service time must be positive");
  require(lambda_ >= 0.0, "MD1: negative arrival rate");
  require(utilization() < 1.0, "MD1: utilization must be below 1");
}

MD1 MD1::from_utilization(Seconds service, double utilization) {
  require(service.value() > 0.0, "MD1: service time must be positive");
  require(utilization >= 0.0 && utilization < 1.0,
          "MD1: utilization must lie in [0, 1)");
  return MD1(service, utilization / service.value());
}

double MD1::utilization() const { return lambda_ * service_.value(); }

Seconds MD1::mean_wait() const {
  const double rho = utilization();
  return Seconds{rho * service_.value() / (2.0 * (1.0 - rho))};
}

Seconds MD1::mean_response() const { return mean_wait() + service_; }

double MD1::mean_in_system() const {
  return lambda_ * mean_response().value();
}

namespace {

/// Erlang's exact M/D/1 waiting-time CDF,
///   F_W(t) = (1 - rho) sum_{k=0}^{floor(t/D)} (-x_k)^k e^{x_k} / k!,
/// with x_k = lambda (t - k D) >= 0. The series alternates and the leading
/// term grows like e^{lambda t}; in long double it is accurate while
/// lambda t stays below kSeriesLimit. Above that the caller switches to
/// the geometric-tail extrapolation.
double erlang_series(double t, double service, double lambda, double rho) {
  const auto k_max = static_cast<long long>(std::floor(t / service));
  long double sum = 0.0L;
  for (long long k = 0; k <= k_max; ++k) {
    long double x =
        static_cast<long double>(lambda) *
        (static_cast<long double>(t) - static_cast<long double>(k) * service);
    // Floating rounding can push x just below zero when t sits on a panel
    // edge (t = kD); clamp, or log(x) poisons the sum with NaN.
    if (x < 0.0L) x = 0.0L;
    long double mag;
    if (k == 0) {
      mag = std::exp(x);
    } else if (x == 0.0L) {
      mag = 0.0L;  // (-x)^k vanishes at the panel edge
    } else {
      // term = (-x)^k e^x / k!, built in log space for the magnitude.
      mag = std::exp(x + static_cast<long double>(k) * std::log(x) -
                     std::lgamma(static_cast<long double>(k) + 1.0L));
    }
    sum += (k % 2 == 0) ? mag : -mag;
  }
  const double value = static_cast<double>((1.0L - rho) * sum);
  return std::clamp(value, 0.0, 1.0);
}

/// Decay rate of the M/D/1 waiting-time tail: the positive root of
/// lambda (e^{theta D} - 1) = theta.
double tail_decay_rate(double service, double lambda) {
  const auto f = [&](double theta) {
    return lambda * (std::exp(theta * service) - 1.0) - theta;
  };
  // f(0) = 0 and f'(0) = lambda D - 1 < 0; the second root is positive.
  // Bracket it by doubling.
  double hi = 1.0 / service;
  while (f(hi) < 0.0) hi *= 2.0;
  return bisect(f, 1e-12 / service, hi, 1e-14 / service);
}

/// Exact coefficient of the geometric tail P(W > t) ~ C e^{-theta t}:
/// the residue of (1 - W*(s))/s at the dominant pole s = -theta of the
/// Pollaczek-Khinchine transform W*(s) = (1-rho)s / (s - lambda(1-e^{-sD}))
/// gives C = (1-rho) / (rho e^{theta D} - 1). Unlike anchoring the
/// constant on the alternating series (whose cancellation noise at the
/// switchover point used to leak into the far tail at rho >= 0.98), this
/// closed form is accurate to double precision at any utilization.
double tail_constant(double service, double rho, double theta) {
  return (1.0 - rho) / (rho * std::exp(theta * service) - 1.0);
}

// Max lambda*t for the direct series. The alternating sum cancels terms of
// magnitude ~e^{lambda t}; beyond ~18 the residual noise exceeds what
// percentile inversion tolerates, so the geometric tail takes over.
constexpr double kSeriesLimit = 18.0;

}  // namespace

double MD1::wait_cdf(Seconds t) const {
  if (t.value() < 0.0) return 0.0;
  const double rho = utilization();
  if (rho == 0.0) return 1.0;
  const double ts = t.value();
  const double d = service_.value();

  if (lambda_ * ts <= kSeriesLimit) return erlang_series(ts, d, lambda_, rho);

  // Geometric tail with the exact asymptotic constant.
  const double theta = tail_decay_rate(d, lambda_);
  const double tail = tail_constant(d, rho, theta) * std::exp(-theta * ts);
  return std::clamp(1.0 - tail, 0.0, 1.0);
}

double MD1::response_cdf(Seconds t) const {
  return wait_cdf(t - service_);
}

Seconds MD1::wait_percentile(double p) const {
  require(p > 0.0 && p < 100.0, "MD1::wait_percentile: p out of (0, 100)");
  const double target = p / 100.0;
  if (wait_cdf(Seconds{0.0}) >= target) return Seconds{0.0};

  // Past the series switchover the CDF is exactly our geometric tail, so
  // extreme percentiles (rho >= 0.98, p >= 99.9) invert in closed form
  // instead of bisecting a 1 - epsilon plateau:
  //   1 - C e^{-theta t} = target  =>  t = ln(C / (1 - target)) / theta.
  const double boundary = kSeriesLimit / lambda_;
  if (wait_cdf(Seconds{boundary}) < target) {
    const double rho = utilization();
    const double theta = tail_decay_rate(service_.value(), lambda_);
    const double c = tail_constant(service_.value(), rho, theta);
    return Seconds{std::log(c / (1.0 - target)) / theta};
  }

  // Percentile lies in the series region; bracket by doubling from the
  // mean (capped at the switchover) and bisect.
  double hi = std::min(std::max(mean_wait().value(), service_.value()),
                       boundary);
  while (wait_cdf(Seconds{hi}) < target) hi = std::min(hi * 2.0, boundary);
  const double t = bisect(
      [&](double x) { return wait_cdf(Seconds{x}) - target; }, 0.0, hi,
      hi * 1e-12);
  return Seconds{t};
}

Seconds MD1::response_percentile(double p) const {
  return wait_percentile(p) + service_;
}

MM1::MM1(Seconds mean_service, double arrival_rate_per_s)
    : service_(mean_service), lambda_(arrival_rate_per_s) {
  require(service_.value() > 0.0, "MM1: service time must be positive");
  require(lambda_ >= 0.0, "MM1: negative arrival rate");
  require(utilization() < 1.0, "MM1: utilization must be below 1");
}

double MM1::utilization() const { return lambda_ * service_.value(); }

Seconds MM1::mean_wait() const {
  const double rho = utilization();
  return Seconds{rho * service_.value() / (1.0 - rho)};
}

Seconds MM1::mean_response() const { return mean_wait() + service_; }

double MM1::response_cdf(Seconds t) const {
  if (t.value() < 0.0) return 0.0;
  // Sojourn time is exponential with rate mu - lambda.
  const double mu = 1.0 / service_.value();
  return 1.0 - std::exp(-(mu - lambda_) * t.value());
}

Seconds MM1::response_percentile(double p) const {
  require(p > 0.0 && p < 100.0, "MM1::response_percentile: p out of range");
  const double mu = 1.0 / service_.value();
  return Seconds{-std::log(1.0 - p / 100.0) / (mu - lambda_)};
}

QueueSimResult simulate_md1(Seconds service, double arrival_rate_per_s,
                            std::uint64_t jobs, std::uint64_t seed) {
  require(service.value() > 0.0, "simulate_md1: service time must be positive");
  require(jobs > 0, "simulate_md1: need at least one job");
  Rng rng(seed);

  const double d = service.value();
  double clock = 0.0;           // arrival clock
  double server_free = 0.0;     // time the server next becomes idle
  RunningStats wait_stats;
  RunningStats response_stats;
  std::vector<double> responses;
  responses.reserve(jobs);
  double busy_time = 0.0;

  for (std::uint64_t i = 0; i < jobs; ++i) {
    clock += rng.exponential(arrival_rate_per_s);
    const double start = std::max(clock, server_free);
    const double wait = start - clock;
    server_free = start + d;
    busy_time += d;
    wait_stats.add(wait);
    response_stats.add(wait + d);
    responses.push_back(wait + d);
  }

  QueueSimResult out;
  out.mean_wait_s = wait_stats.mean();
  out.mean_response_s = response_stats.mean();
  out.p95_response_s = percentile_inplace(responses, 95.0);
  out.measured_utilization = busy_time / server_free;
  return out;
}

}  // namespace hcep::queueing
