#include "hcep/analysis/governor.hpp"

#include <limits>

#include "hcep/hw/catalog.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/table.hpp"

namespace hcep::analysis {

namespace {

struct OperatingPoint {
  model::ClusterSpec config;
  double throughput = 0.0;  ///< units/s at this (c, f)
  Watts idle{};
  Watts busy{};
  std::string label;
};

std::vector<OperatingPoint> enumerate_points(
    const MixCounts& mix, const workload::Workload& workload) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  const hw::NodeSpec k10 = hw::opteron_k10();

  std::vector<OperatingPoint> out;
  const unsigned a9_cores = mix.a9 > 0 ? a9.cores : 1;
  const std::size_t a9_freqs = mix.a9 > 0 ? a9.dvfs.size() : 1;
  const unsigned k10_cores = mix.k10 > 0 ? k10.cores : 1;
  const std::size_t k10_freqs = mix.k10 > 0 ? k10.dvfs.size() : 1;

  for (unsigned ca = 1; ca <= a9_cores; ++ca) {
    for (std::size_t fa = 0; fa < a9_freqs; ++fa) {
      for (unsigned ck = 1; ck <= k10_cores; ++ck) {
        for (std::size_t fk = 0; fk < k10_freqs; ++fk) {
          model::ClusterSpec cfg;
          std::string label;
          if (mix.a9 > 0) {
            cfg.groups.push_back(
                model::NodeGroup{a9, mix.a9, ca, a9.dvfs.step(fa)});
            label += "A9@" + std::to_string(ca) + "c/" +
                     fmt(a9.dvfs.step(fa).value() / 1e9, 1) + "GHz";
          }
          if (mix.k10 > 0) {
            cfg.groups.push_back(
                model::NodeGroup{k10, mix.k10, ck, k10.dvfs.step(fk)});
            if (!label.empty()) label += "+";
            label += "K10@" + std::to_string(ck) + "c/" +
                     fmt(k10.dvfs.step(fk).value() / 1e9, 1) + "GHz";
          }
          model::TimeEnergyModel m(cfg, workload);
          out.push_back(OperatingPoint{
              .config = std::move(cfg),
              .throughput = m.peak_throughput(),
              .idle = m.idle_power(),
              .busy = m.busy_power(),
              .label = std::move(label),
          });
        }
      }
    }
  }
  return out;
}

/// Average power of an operating point serving absolute demand
/// `demand_rate` (units/s): the point runs busy for the fraction of time
/// demand requires, idling otherwise.
Watts power_at_demand(const OperatingPoint& pt, double demand_rate) {
  const double occupancy = demand_rate / pt.throughput;  // <= 1 required
  return pt.idle + (pt.busy - pt.idle) * occupancy;
}

}  // namespace

GovernorStudyResult run_governor_study(const workload::Workload& workload,
                                       const GovernorStudyOptions& options) {
  require(options.mix.a9 + options.mix.k10 > 0,
          "run_governor_study: empty mix");
  std::vector<double> grid = options.utilizations;
  if (grid.empty()) grid = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  const auto points = enumerate_points(options.mix, workload);
  require(!points.empty(), "run_governor_study: no operating points");

  // Reference: the fastest point (c_max, f_max) — race-to-idle baseline.
  const OperatingPoint* reference = &points.front();
  for (const auto& pt : points) {
    if (pt.throughput > reference->throughput) reference = &pt;
  }

  GovernorStudyResult out{
      .points = {},
      .pace_curve = power::PowerCurve::linear(reference->idle,
                                              reference->busy),  // replaced
      .race_curve =
          power::PowerCurve::linear(reference->idle, reference->busy),
      .race_report = {},
      .pace_report = {},
  };

  PiecewiseLinear pace_samples;
  pace_samples.add(0.0, reference->idle.value());

  for (double u : grid) {
    require(u > 0.0 && u <= 1.0,
            "run_governor_study: utilization outside (0, 1]");
    const double demand = u * reference->throughput;

    GovernorPoint gp;
    gp.utilization = u;
    gp.race_power = out.race_curve.at(u);

    // Pace: cheapest point whose capacity covers the demand.
    Watts best{std::numeric_limits<double>::infinity()};
    const OperatingPoint* chosen = nullptr;
    for (const auto& pt : points) {
      if (pt.throughput + 1e-9 < demand) continue;  // cannot keep up
      const Watts p = power_at_demand(pt, demand);
      if (p < best) {
        best = p;
        chosen = &pt;
      }
    }
    require(chosen != nullptr,
            "run_governor_study: no operating point covers the demand");
    gp.pace_power = best;
    gp.pace_label = chosen->label;
    gp.saving_percent =
        (gp.race_power - gp.pace_power) / gp.race_power * 100.0;

    pace_samples.add(u, gp.pace_power.value());
    out.points.push_back(std::move(gp));
  }

  // A custom grid may stop short of u = 1; close the curve at the
  // race-to-idle peak so the metric suite's [0, 1] domain is covered.
  if (pace_samples.back_x() < 1.0)
    pace_samples.add(1.0, reference->busy.value());
  out.pace_curve = power::PowerCurve::sampled(std::move(pace_samples));
  out.race_report = metrics::analyze(out.race_curve);
  out.pace_report = metrics::analyze(out.pace_curve);
  return out;
}

}  // namespace hcep::analysis
