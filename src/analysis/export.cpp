#include "hcep/analysis/export.hpp"

#include "hcep/config/budget.hpp"

namespace hcep::analysis {

namespace {

JsonValue report_json(const metrics::ProportionalityReport& r) {
  return JsonValue::object()
      .set("dpr", JsonValue::number(r.dpr))
      .set("ipr", JsonValue::number(r.ipr))
      .set("epm", JsonValue::number(r.epm))
      .set("ldr_literal", JsonValue::number(r.ldr_literal))
      .set("ldr_paper", JsonValue::number(r.ldr_paper));
}

}  // namespace

JsonValue to_json(const ValidationRow& row) {
  return JsonValue::object()
      .set("program", JsonValue::string(row.program))
      .set("domain", JsonValue::string(row.domain))
      .set("model_time_s", JsonValue::number(row.model_time.value()))
      .set("measured_time_s", JsonValue::number(row.measured_time.value()))
      .set("model_energy_j", JsonValue::number(row.model_energy.value()))
      .set("measured_energy_j",
           JsonValue::number(row.measured_energy.value()))
      .set("time_error_percent", JsonValue::number(row.time_error_percent))
      .set("energy_error_percent",
           JsonValue::number(row.energy_error_percent));
}

JsonValue to_json(const NodeWorkloadAnalysis& a) {
  return JsonValue::object()
      .set("program", JsonValue::string(a.program))
      .set("node", JsonValue::string(a.node))
      .set("work_unit", JsonValue::string(a.work_unit))
      .set("ppr_peak", JsonValue::number(a.ppr_peak))
      .set("peak_throughput", JsonValue::number(a.peak_throughput))
      .set("idle_w", JsonValue::number(a.idle_power.value()))
      .set("peak_w", JsonValue::number(a.peak_power.value()))
      .set("metrics", report_json(a.report));
}

JsonValue to_json(const MixAnalysis& m) {
  return JsonValue::object()
      .set("mix", JsonValue::string(m.label))
      .set("idle_w", JsonValue::number(m.idle_power.value()))
      .set("peak_w", JsonValue::number(m.peak_power.value()))
      .set("nameplate_w", JsonValue::number(m.nameplate.value()))
      .set("peak_throughput", JsonValue::number(m.peak_throughput))
      .set("metrics", report_json(m.report));
}

JsonValue to_json(const ParetoMixAnalysis& m) {
  return JsonValue::object()
      .set("mix", JsonValue::string(m.mix.label()))
      .set("crossover_utilization",
           JsonValue::number(m.crossover_utilization))
      .set("sublinear_at_half", JsonValue::boolean(m.sublinear_at_half))
      .set("best_job_time_s", JsonValue::number(m.best_job_time.value()))
      .set("best_job_energy_j",
           JsonValue::number(m.best_job_energy.value()));
}

JsonValue to_json(const MixResponse& m) {
  JsonValue points = JsonValue::array();
  for (const auto& pt : m.points) {
    points.push(JsonValue::object()
                    .set("utilization_percent",
                         JsonValue::number(pt.utilization_percent))
                    .set("p95_s", JsonValue::number(pt.p95_analytic.value())));
  }
  return JsonValue::object()
      .set("mix", JsonValue::string(m.mix.label()))
      .set("meets_deadline", JsonValue::boolean(m.meets_deadline))
      .set("service_s", JsonValue::number(m.service_time.value()))
      .set("job_energy_j", JsonValue::number(m.job_energy.value()))
      .set("points", std::move(points));
}

JsonValue export_study(const core::PaperStudy& study) {
  JsonValue root = JsonValue::object();
  root.set("paper",
           JsonValue::string("Ramapantulu/Loghin/Teo, IEEE CLUSTER 2016"));

  JsonValue table4 = JsonValue::array();
  for (const auto& row : study.table4()) table4.push(to_json(row));
  root.set("table4", std::move(table4));

  JsonValue singles = JsonValue::array();
  for (const auto& a : study.single_node_analyses())
    singles.push(to_json(a));
  root.set("single_node", std::move(singles));

  JsonValue table8 = JsonValue::object();
  for (const auto& program : workload::program_names()) {
    JsonValue mixes = JsonValue::array();
    for (const auto& m : study.budget_mix_analyses(program))
      mixes.push(to_json(m));
    table8.set(program, std::move(mixes));
  }
  root.set("table8", std::move(table8));

  JsonValue pareto = JsonValue::object();
  JsonValue response = JsonValue::object();
  for (const auto* program : {"EP", "x264"}) {
    JsonValue mixes = JsonValue::array();
    for (const auto& m : study.pareto_study(program, false).mixes)
      mixes.push(to_json(m));
    pareto.set(program, std::move(mixes));

    JsonValue rmixes = JsonValue::array();
    for (const auto& m : study.response_study(program).mixes)
      rmixes.push(to_json(m));
    response.set(program, std::move(rmixes));
  }
  root.set("pareto", std::move(pareto));
  root.set("response", std::move(response));
  return root;
}

}  // namespace hcep::analysis
