#include "hcep/analysis/pareto_study.hpp"

#include <limits>

#include "hcep/hw/catalog.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/util/error.hpp"

namespace hcep::analysis {

std::string MixCounts::label() const {
  return std::to_string(a9) + "A9:" + std::to_string(k10) + "K10";
}

std::vector<MixCounts> paper_pareto_mixes() {
  return {{32, 12}, {25, 10}, {25, 8}, {25, 7}, {25, 5}};
}

namespace {

model::ClusterSpec mix_cluster(const MixCounts& mix) {
  return model::make_a9_k10_cluster(mix.a9, mix.k10);
}

/// Evaluates every (c, f) operating point of a fixed mix via the memoized
/// operating-point table, in parallel. Index order matches the historical
/// quadruple loop: (c_A9, f_A9, c_K10, f_K10) with frequency innermost.
std::vector<config::Evaluation> operating_points(
    const MixCounts& mix, const workload::Workload& workload) {
  require(mix.a9 + mix.k10 > 0, "operating_points: empty mix");

  // A one-node-per-type space is enough to drive the table: operating
  // points are node-count independent, and the mix fixes the counts.
  std::vector<config::TypeOptions> types;
  if (mix.a9 > 0) {
    config::TypeOptions a9;
    a9.spec = hw::cortex_a9();
    types.push_back(std::move(a9));
  }
  if (mix.k10 > 0) {
    config::TypeOptions k10;
    k10.spec = hw::opteron_k10();
    types.push_back(std::move(k10));
  }
  const config::ConfigSpace space(std::move(types));
  const config::OperatingPointTable table(space, workload);

  const std::size_t k10_type = mix.a9 > 0 ? 1 : 0;
  const std::size_t a9_points = mix.a9 > 0 ? space.points_for(0) : 1;
  const std::size_t k10_points = mix.k10 > 0 ? space.points_for(k10_type) : 1;

  std::vector<config::Evaluation> out(a9_points * k10_points);
  auto evaluate_one = [&](std::size_t i) {
    config::DecodedGroup groups[2];
    std::size_t n = 0;
    if (mix.a9 > 0) {
      groups[n++] = {0, mix.a9, static_cast<std::uint32_t>(i / k10_points)};
    }
    if (mix.k10 > 0) {
      groups[n++] = {static_cast<std::uint32_t>(k10_type), mix.k10,
                     static_cast<std::uint32_t>(i % k10_points)};
    }
    const config::PointMetrics m = table.evaluate_job(groups, n);

    model::ClusterSpec cfg;
    for (std::size_t g = 0; g < n; ++g) {
      const config::OperatingPoint op =
          space.point_at(groups[g].type, groups[g].point);
      cfg.groups.push_back(model::NodeGroup{space.types()[groups[g].type].spec,
                                            groups[g].count, op.cores,
                                            op.frequency});
    }
    cfg.overhead_power = hw::switch_power_for(mix.a9);

    config::Evaluation& e = out[i];
    e.index = i;
    e.time = Seconds{m.time};
    e.energy = Joules{m.energy};
    e.idle_power = Watts{m.idle_power};
    e.busy_power = Watts{m.busy_power};
    e.config = std::move(cfg);
  };
  parallel_for(ThreadPool::global(), 0, out.size(), evaluate_one, 8);
  return out;
}

}  // namespace

std::optional<config::Evaluation> best_operating_point(
    const MixCounts& mix, const workload::Workload& workload,
    Seconds deadline) {
  return config::min_energy_within_deadline(operating_points(mix, workload),
                                            deadline);
}

config::Evaluation fastest_operating_point(const MixCounts& mix,
                                           const workload::Workload& workload) {
  auto best = config::fastest(operating_points(mix, workload));
  require(best.has_value(), "fastest_operating_point: empty mix");
  return *best;
}

ParetoStudyResult run_pareto_study(const workload::Workload& workload,
                                   const ParetoStudyOptions& options) {
  require(options.max_a9 + options.max_k10 > 0,
          "run_pareto_study: empty node budget");

  ParetoStudyResult out;
  std::vector<MixCounts> mixes =
      options.mixes.empty() ? paper_pareto_mixes() : options.mixes;

  // Reference = the largest mix's busy power (the paper normalizes the
  // Figure 9/10 percent axis to the full 32:12 configuration).
  require(!mixes.empty(), "run_pareto_study: no mixes");
  {
    model::TimeEnergyModel ref(mix_cluster(mixes.front()), workload);
    out.reference_peak = ref.busy_power();
    for (const auto& mix : mixes) {
      model::TimeEnergyModel m(mix_cluster(mix), workload);
      out.reference_peak = std::max(out.reference_peak, m.busy_power());
    }
  }

  for (const auto& mix : mixes) {
    model::TimeEnergyModel m(mix_cluster(mix), workload);
    ParetoMixAnalysis a{
        .mix = mix,
        .curve = m.power_curve(),
        .crossover_utilization = 0.0,
        .sublinear_at_half = false,
        .best_job_time = m.execution_time(workload.units_per_job).t_p,
        .best_job_energy = m.job_energy(workload.units_per_job).e_p,
    };
    a.crossover_utilization =
        metrics::sublinear_crossover(a.curve, out.reference_peak);
    a.sublinear_at_half =
        metrics::is_sublinear_at(a.curve, 0.5, out.reference_peak);
    out.mixes.push_back(std::move(a));
  }

  if (options.compute_frontier) {
    config::ConfigSpace space =
        config::make_a9_k10_space(options.max_a9, options.max_k10);
    out.frontier =
        config::pareto_front(config::evaluate_space(space, workload));
  }
  return out;
}

}  // namespace hcep::analysis
