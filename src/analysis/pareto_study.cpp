#include "hcep/analysis/pareto_study.hpp"

#include <limits>

#include "hcep/hw/catalog.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/util/error.hpp"

namespace hcep::analysis {

std::string MixCounts::label() const {
  return std::to_string(a9) + "A9:" + std::to_string(k10) + "K10";
}

std::vector<MixCounts> paper_pareto_mixes() {
  return {{32, 12}, {25, 10}, {25, 8}, {25, 7}, {25, 5}};
}

namespace {

model::ClusterSpec mix_cluster(const MixCounts& mix) {
  return model::make_a9_k10_cluster(mix.a9, mix.k10);
}

/// Evaluates every (c, f) operating point of a fixed mix.
std::vector<config::Evaluation> operating_points(
    const MixCounts& mix, const workload::Workload& workload) {
  require(mix.a9 + mix.k10 > 0, "operating_points: empty mix");
  const hw::NodeSpec a9 = hw::cortex_a9();
  const hw::NodeSpec k10 = hw::opteron_k10();

  // Enumerate (c, f) per present type; absent types contribute one "slot".
  std::vector<config::Evaluation> out;
  const auto a9_cores = mix.a9 > 0 ? a9.cores : 1;
  const auto a9_freqs = mix.a9 > 0 ? a9.dvfs.size() : 1;
  const auto k10_cores = mix.k10 > 0 ? k10.cores : 1;
  const auto k10_freqs = mix.k10 > 0 ? k10.dvfs.size() : 1;

  std::uint64_t index = 0;
  for (unsigned ca = 1; ca <= a9_cores; ++ca) {
    for (std::size_t fa = 0; fa < a9_freqs; ++fa) {
      for (unsigned ck = 1; ck <= k10_cores; ++ck) {
        for (std::size_t fk = 0; fk < k10_freqs; ++fk) {
          model::ClusterSpec cfg;
          if (mix.a9 > 0) {
            cfg.groups.push_back(
                model::NodeGroup{a9, mix.a9, ca, a9.dvfs.step(fa)});
          }
          if (mix.k10 > 0) {
            cfg.groups.push_back(
                model::NodeGroup{k10, mix.k10, ck, k10.dvfs.step(fk)});
          }
          cfg.overhead_power = hw::switch_power_for(mix.a9);
          model::TimeEnergyModel m(cfg, workload);
          config::Evaluation e;
          e.index = index++;
          e.time = m.execution_time(workload.units_per_job).t_p;
          e.energy = m.job_energy(workload.units_per_job).e_p;
          e.idle_power = m.idle_power();
          e.busy_power = m.busy_power();
          e.config = std::move(cfg);
          out.push_back(std::move(e));
        }
      }
    }
  }
  return out;
}

}  // namespace

std::optional<config::Evaluation> best_operating_point(
    const MixCounts& mix, const workload::Workload& workload,
    Seconds deadline) {
  return config::min_energy_within_deadline(operating_points(mix, workload),
                                            deadline);
}

config::Evaluation fastest_operating_point(const MixCounts& mix,
                                           const workload::Workload& workload) {
  auto best = config::fastest(operating_points(mix, workload));
  require(best.has_value(), "fastest_operating_point: empty mix");
  return *best;
}

ParetoStudyResult run_pareto_study(const workload::Workload& workload,
                                   const ParetoStudyOptions& options) {
  require(options.max_a9 + options.max_k10 > 0,
          "run_pareto_study: empty node budget");

  ParetoStudyResult out;
  std::vector<MixCounts> mixes =
      options.mixes.empty() ? paper_pareto_mixes() : options.mixes;

  // Reference = the largest mix's busy power (the paper normalizes the
  // Figure 9/10 percent axis to the full 32:12 configuration).
  require(!mixes.empty(), "run_pareto_study: no mixes");
  {
    model::TimeEnergyModel ref(mix_cluster(mixes.front()), workload);
    out.reference_peak = ref.busy_power();
    for (const auto& mix : mixes) {
      model::TimeEnergyModel m(mix_cluster(mix), workload);
      out.reference_peak = std::max(out.reference_peak, m.busy_power());
    }
  }

  for (const auto& mix : mixes) {
    model::TimeEnergyModel m(mix_cluster(mix), workload);
    ParetoMixAnalysis a{
        .mix = mix,
        .curve = m.power_curve(),
        .crossover_utilization = 0.0,
        .sublinear_at_half = false,
        .best_job_time = m.execution_time(workload.units_per_job).t_p,
        .best_job_energy = m.job_energy(workload.units_per_job).e_p,
    };
    a.crossover_utilization =
        metrics::sublinear_crossover(a.curve, out.reference_peak);
    a.sublinear_at_half =
        metrics::is_sublinear_at(a.curve, 0.5, out.reference_peak);
    out.mixes.push_back(std::move(a));
  }

  if (options.compute_frontier) {
    config::ConfigSpace space =
        config::make_a9_k10_space(options.max_a9, options.max_k10);
    out.frontier =
        config::pareto_front(config::evaluate_space(space, workload));
  }
  return out;
}

}  // namespace hcep::analysis
