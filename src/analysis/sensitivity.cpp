#include "hcep/analysis/sensitivity.hpp"

#include <algorithm>

#include "hcep/analysis/pareto_study.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/workload/calibrate.hpp"
#include "hcep/workload/catalog.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::analysis {

SensitivityResult run_sensitivity_study(const std::string& program,
                                        const SensitivityOptions& options) {
  require(options.trials >= 1, "run_sensitivity_study: need >= 1 trial");
  require(options.ppr_noise >= 0.0 && options.ipr_noise >= 0.0,
          "run_sensitivity_study: negative noise");

  // Characterize once, uncalibrated; trials only re-calibrate.
  workload::CatalogOptions copts;
  copts.calibrate = false;
  const workload::Workload base = workload::make_workload(program, copts);

  const hw::NodeSpec a9 = hw::cortex_a9();
  const hw::NodeSpec k10 = hw::opteron_k10();
  const auto nominal_a9 = workload::paper_target(program, "A9");
  const auto nominal_k10 = workload::paper_target(program, "K10");
  require(nominal_a9 && nominal_k10,
          "run_sensitivity_study: program lacks paper seeds");
  const bool nominal_a9_wins = nominal_a9->ppr > nominal_k10->ppr;

  Rng rng(options.seed);
  SensitivityResult out;
  out.trials = options.trials;

  const auto perturb = [&](const workload::CalibrationTarget& t) {
    workload::CalibrationTarget p;
    p.ppr = t.ppr * std::max(0.05, rng.normal(1.0, options.ppr_noise));
    p.ipr =
        std::clamp(t.ipr * rng.normal(1.0, options.ipr_noise), 0.05, 0.98);
    return p;
  };

  for (unsigned trial = 0; trial < options.trials; ++trial) {
    workload::Workload w = base;
    const auto ta = perturb(*nominal_a9);
    const auto tk = perturb(*nominal_k10);
    workload::calibrate_node(w, a9, ta);
    workload::calibrate_node(w, k10, tk);

    // Table 6 winner.
    if ((ta.ppr > tk.ppr) != nominal_a9_wins) ++out.winner_flips;

    // Table 8 middle column.
    {
      model::TimeEnergyModel m(model::make_a9_k10_cluster(64, 8), w);
      out.dpr_mixed.add(metrics::dpr(m.power_curve()));
    }

    // Figure 9 boundary: reference is the full 32:12 mix.
    {
      model::TimeEnergyModel ref(model::make_a9_k10_cluster(32, 12), w);
      const Watts ref_peak = ref.busy_power();
      model::TimeEnergyModel m7(model::make_a9_k10_cluster(25, 7), w);
      model::TimeEnergyModel m8(model::make_a9_k10_cluster(25, 8), w);
      const auto c7 = m7.power_curve();
      const auto c8 = m8.power_curve();
      out.crossover_25_7.add(metrics::sublinear_crossover(c7, ref_peak));
      if (metrics::is_sublinear_at(c7, 0.5, ref_peak))
        ++out.sublinear_at_half_25_7;
      if (!metrics::is_sublinear_at(c8, 0.5, ref_peak))
        ++out.superlinear_at_half_25_8;
    }
  }
  return out;
}

}  // namespace hcep::analysis
