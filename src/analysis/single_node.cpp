#include "hcep/analysis/single_node.hpp"

#include "hcep/util/error.hpp"

namespace hcep::analysis {

NodeWorkloadAnalysis analyze_single_node(const workload::Workload& workload,
                                         const hw::NodeSpec& node,
                                         model::CurveFamily family,
                                         double curvature) {
  model::ClusterSpec single;
  single.groups.push_back(model::NodeGroup{node, 1, 0, Hertz{}});
  model::TimeEnergyModel m(std::move(single), workload);

  NodeWorkloadAnalysis out{
      .program = workload.name,
      .node = node.name,
      .work_unit = workload.work_unit,
      .curve = m.power_curve(family, curvature),
      .report = {},
      .peak_throughput = m.peak_throughput(),
      .ppr_peak = 0.0,
      .idle_power = m.idle_power(),
      .peak_power = m.busy_power(),
  };
  out.report = metrics::analyze(out.curve);
  out.ppr_peak = metrics::ppr(out.curve, out.peak_throughput, 1.0);
  return out;
}

std::vector<std::pair<double, double>> proportionality_series(
    const power::PowerCurve& curve, const std::vector<double>& util_percents) {
  std::vector<std::pair<double, double>> out;
  out.reserve(util_percents.size());
  for (double up : util_percents)
    out.emplace_back(up, metrics::percent_of_peak(curve, up));
  return out;
}

std::vector<std::pair<double, double>> ppr_series(
    const power::PowerCurve& curve, double peak_throughput,
    const std::vector<double>& util_percents) {
  std::vector<std::pair<double, double>> out;
  out.reserve(util_percents.size());
  for (double up : util_percents) {
    require(up > 0.0, "ppr_series: utilization must be positive");
    out.emplace_back(up,
                     metrics::ppr(curve, peak_throughput, up / 100.0));
  }
  return out;
}

}  // namespace hcep::analysis
