#include "hcep/analysis/validation.hpp"

#include "hcep/cluster/simulator.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/math.hpp"

namespace hcep::analysis {

std::string program_domain(const std::string& program) {
  if (program == "EP") return "HPC";
  if (program == "memcached") return "Web Server";
  if (program == "x264") return "Streaming video";
  if (program == "blackscholes") return "Financial";
  if (program == "Julius") return "Speech recognition";
  if (program == "RSA-2048") return "Web security";
  throw PreconditionError("program_domain: unknown program '" + program +
                          "'");
}

ValidationRow validate_workload(const workload::Workload& workload,
                                const ValidationOptions& options) {
  model::ClusterSpec cluster = options.cluster;
  if (cluster.groups.empty()) cluster = model::make_a9_k10_cluster(4, 2);

  model::TimeEnergyModel m(cluster, workload);

  ValidationRow row;
  row.program = workload.name;
  row.domain = program_domain(workload.name);
  row.model_time = m.execution_time(workload.units_per_job).t_p;
  row.model_energy = m.job_energy(workload.units_per_job).e_p;

  const cluster::JobMeasurement meas =
      cluster::measure_batch(m, options.jobs, options.seed);
  row.measured_time = meas.time_per_job;
  row.measured_energy = meas.energy_per_job;

  row.time_error_percent =
      percent_error(row.model_time.value(), row.measured_time.value());
  row.energy_error_percent =
      percent_error(row.model_energy.value(), row.measured_energy.value());
  return row;
}

std::vector<ValidationRow> validate_all(
    const std::vector<workload::Workload>& workloads,
    const ValidationOptions& options) {
  std::vector<ValidationRow> out;
  out.reserve(workloads.size());
  for (const auto& w : workloads) out.push_back(validate_workload(w, options));
  return out;
}

}  // namespace hcep::analysis
